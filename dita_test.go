package dita_test

import (
	"testing"

	"dita"
)

// TestPublicAPIEndToEnd exercises the full documented quick-start path
// through the facade only: generate → train → snapshot → assign.
func TestPublicAPIEndToEnd(t *testing.T) {
	params := dita.BrightkiteLike()
	params.NumUsers = 150
	params.NumVenues = 200
	params.Days = 8
	data, err := dita.Generate(params)
	if err != nil {
		t.Fatal(err)
	}

	fw, err := dita.Train(dita.TrainingDataFrom(data, 6*24), dita.Config{})
	if err != nil {
		t.Fatal(err)
	}

	inst, err := data.Snapshot(dita.SnapshotParams{
		Day: 6, NumTasks: 40, NumWorkers: 30, ValidHours: 5, RadiusKm: 25, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, alg := range []dita.Algorithm{dita.MTA, dita.IA, dita.EIA, dita.DIA, dita.MI} {
		set, m := fw.Assign(inst, alg, 1)
		if err := set.Validate(len(inst.Tasks), len(inst.Workers)); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if m.Assigned == 0 {
			t.Errorf("%v assigned nothing", alg)
		}
	}

	// Ablation masks through the facade.
	for _, mask := range []dita.Components{dita.All, dita.WP, dita.AP, dita.AW} {
		ev := fw.Prepare(inst, mask, 2)
		set, _ := fw.AssignPrepared(inst, ev, dita.IA, nil)
		if set.Len() == 0 {
			t.Errorf("mask %v assigned nothing", mask)
		}
	}

	// Feasible pairs helper.
	pairs := dita.FeasiblePairs(inst, 5)
	if len(pairs) == 0 {
		t.Error("no feasible pairs on a generous instance")
	}
}

func TestDatasetSaveLoadThroughFacade(t *testing.T) {
	params := dita.FoursquareLike()
	params.NumUsers = 80
	params.NumVenues = 100
	params.Days = 3
	data, err := dita.Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := data.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := dita.LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumCheckIns() != data.NumCheckIns() {
		t.Errorf("round trip lost check-ins: %d vs %d", loaded.NumCheckIns(), data.NumCheckIns())
	}
}
