// Command dita-serve is the production front-end of the streaming
// engine: a long-lived HTTP/JSON service that loads a sealed framework
// artifact (fwio), holds one assignment engine per region, ingests
// worker/task arrivals and departures on endpoints, fires assignment
// instants on its configured trigger, and exposes per-region metrics.
// On SIGINT/SIGTERM it drains: in-flight instants complete, ticker
// loops stop, and — when -assign-csv is set — the streaming assignment
// CSV is atomically persisted, byte-identical to a dita-sim -stream
// replay of the same event sequence.
//
// Endpoints (region defaults to "default"):
//
//	POST   /v1/{region}/workers       {"user","x","y","radius","at"}    -> {"worker_id"}
//	DELETE /v1/{region}/workers/{id}                                    -> 404 if not pooled
//	POST   /v1/{region}/tasks         {"x","y","publish","valid",...}   -> {"task_id"}
//	DELETE /v1/{region}/tasks/{id}                                      -> 404 if not pooled
//	POST   /v1/{region}/instant       {"at"}                            -> instant result
//	GET    /v1/{region}/metrics                                         -> totals + latency
//	GET    /healthz
//
// Triggers: -trigger manual fires only on explicit /instant requests
// (the deterministic replay mode the CI smoke uses); -trigger batch
// fires inline as soon as -batch events accumulate; -trigger tick fires
// every -tick of wall time at the scaled simulation clock
// (-sim-start + elapsed × -time-scale).
//
// Usage:
//
//	dita-serve -framework fw.json -addr :8080 -trigger tick -tick 2s
//	dita-serve -framework fw.json -trigger manual -assign-csv out.csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dita/internal/assign"
	"dita/internal/engine"
	"dita/internal/fwio"
	"dita/internal/influence"
)

func main() {
	log.SetFlags(0)
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		fwPath     = flag.String("framework", "", "sealed framework artifact to serve (required; see dita-bench -train-out)")
		regions    = flag.String("regions", "default", "comma-separated region names, one engine each")
		algName    = flag.String("alg", "IA", "algorithm: MTA, IA, EIA, DIA, MI or MIX")
		mask       = flag.String("mask", "IA", "influence components: IA (all), IA-WP, IA-AP or IA-AW")
		seed       = flag.Uint64("seed", 1, "influence-session seed")
		par        = flag.Int("parallel", 0, "worker pool bound per instant (0 = all cores)")
		sessionCap = flag.Int("session-cap", 0, "bound each region's influence cache to this many entries, FIFO eviction (0 = unbounded)")
		trigName   = flag.String("trigger", "manual", "instant trigger: manual, tick or batch")
		tick       = flag.Duration("tick", 2*time.Second, "wall-time instant period for -trigger tick (also the batch fallback when set)")
		batch      = flag.Int("batch", 64, "event-count threshold for -trigger batch")
		simStart   = flag.Float64("sim-start", 0, "simulation time (hours) at process start, for tick-triggered instants")
		timeScale  = flag.Float64("time-scale", 1, "simulation hours per wall hour for tick-triggered instants")
		csvPath    = flag.String("assign-csv", "", "write the streaming assignment CSV here on drain (single region only)")
	)
	flag.Parse()

	if *fwPath == "" {
		log.Fatal("dita-serve: -framework is required")
	}
	alg, err := assign.ParseAlgorithm(*algName)
	if err != nil {
		log.Fatal(err)
	}
	comps, err := parseMask(*mask)
	if err != nil {
		log.Fatal(err)
	}
	var trig engine.Trigger
	switch *trigName {
	case "manual":
		trig = engine.ManualTrigger{}
	case "tick":
		trig = engine.TickTrigger{Every: *tick}
	case "batch":
		trig = engine.BatchTrigger{N: *batch}
	default:
		log.Fatalf("unknown -trigger %q (want manual, tick or batch)", *trigName)
	}

	fw, info, err := fwio.Load(*fwPath)
	if err != nil {
		log.Fatalf("framework: %v", err)
	}
	log.Printf("serving framework %s (sha256 %.12s…, source %q)", *fwPath, info.Checksum, info.Source)

	procStart := time.Now() //dita:wallclock
	scale := *timeScale
	base := *simStart
	cfg := serverConfig{
		engine: engine.Config{
			Algorithm:       alg,
			Components:      comps,
			Seed:            *seed,
			Parallelism:     *par,
			SessionCapacity: *sessionCap,
			Trigger:         trig,
			Clock:           func() time.Duration { return time.Since(procStart) }, //dita:wallclock
		},
		regions: splitRegions(*regions),
		csvPath: *csvPath,
		simNow:  func() float64 { return base + time.Since(procStart).Hours()*scale }, //dita:wallclock
	}
	srv, err := newServer(fw, cfg)
	if err != nil {
		log.Fatal(err)
	}
	srv.startTickers()

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (regions %s, trigger %s)", *addr, *regions, *trigName)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case got := <-sig:
		log.Printf("%s: draining", got)
	case err := <-done:
		log.Fatalf("serve: %v", err)
	}
	// Stop accepting, finish in-flight handlers, then drain the engines
	// and persist the CSV. The shutdown context bounds how long lingering
	// connections can hold the exit, not the drain itself.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := srv.Drain(); err != nil {
		log.Fatal(err)
	}
	if *csvPath != "" {
		log.Printf("assignment CSV drained to %s", *csvPath)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
}

func splitRegions(s string) []string {
	var out []string
	for _, r := range strings.Split(s, ",") {
		if r = strings.TrimSpace(r); r != "" {
			out = append(out, r)
		}
	}
	return out
}

func parseMask(s string) (influence.Components, error) {
	switch s {
	case "IA", "all", "ALL":
		return influence.All, nil
	case "IA-WP", "WP":
		return influence.WP, nil
	case "IA-AP", "AP":
		return influence.AP, nil
	case "IA-AW", "AW":
		return influence.AW, nil
	}
	return 0, fmt.Errorf("unknown mask %q (want IA, IA-WP, IA-AP or IA-AW)", s)
}
