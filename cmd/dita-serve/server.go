package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dita/internal/atomicio"
	"dita/internal/core"
	"dita/internal/engine"
	"dita/internal/geo"
	"dita/internal/model"
)

// serverConfig parameterizes a Server independently of flag parsing so
// tests can construct one directly.
type serverConfig struct {
	engine engine.Config
	// regions are the region names to serve, one engine each.
	regions []string
	// csvPath, when set, makes every region retain its instant results
	// and Drain write the streaming assignment CSV there (single-region
	// servers only — the CSV has no region column).
	csvPath string
	// simNow returns the current simulation time in hours for
	// tick-triggered instants; nil servers fire only on explicit
	// /instant requests and batch thresholds.
	simNow func() float64
}

// region is one independently served engine. The mutex serializes every
// engine access: the engine's session caches are single-threaded by
// contract, so concurrent arrivals and instants queue here — queue time
// is part of the latency a production deployment must watch, which is
// why fires record the pending depth they drained.
type region struct {
	name string
	mu   sync.Mutex
	eng  *engine.Engine
	// instants retained for the drain CSV (csvPath servers only).
	instants []engine.InstantResult
	keep     bool
	// latency/queue aggregates for the metrics endpoint.
	sumPrepare   time.Duration
	sumPairMaint time.Duration
	sumAssign    time.Duration
	maxPrepare   time.Duration
	lastAt       float64
	lastAssigned int
	lastDepth    int
}

// Server is the dita-serve HTTP front-end: one engine per region behind
// a mutex, JSON endpoints for the engine's event model, and a drain path
// that completes in-flight instants and persists the assignment CSV.
type Server struct {
	cfg      serverConfig
	mux      *http.ServeMux
	regions  map[string]*region
	names    []string // sorted, for deterministic drain order
	draining atomic.Bool
	stop     chan struct{}
	tickers  sync.WaitGroup
	drainErr error
	drain    sync.Once
	// testHookFire, when set, runs inside the instant critical section
	// (region lock held, before the engine fires) — the seam the drain
	// test uses to hold an instant in flight.
	testHookFire func()
}

func newServer(fw *core.Framework, cfg serverConfig) (*Server, error) {
	if len(cfg.regions) == 0 {
		return nil, fmt.Errorf("serve: no regions")
	}
	if cfg.csvPath != "" && len(cfg.regions) != 1 {
		return nil, fmt.Errorf("serve: -assign-csv needs exactly one region, got %d", len(cfg.regions))
	}
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		regions: make(map[string]*region, len(cfg.regions)),
		stop:    make(chan struct{}),
	}
	for _, name := range cfg.regions {
		if _, dup := s.regions[name]; dup {
			return nil, fmt.Errorf("serve: duplicate region %q", name)
		}
		eng, err := engine.New(fw, cfg.engine)
		if err != nil {
			return nil, err
		}
		s.regions[name] = &region{name: name, eng: eng, keep: cfg.csvPath != ""}
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)

	s.mux.HandleFunc("POST /v1/{region}/workers", s.handleWorkerArrive)
	s.mux.HandleFunc("DELETE /v1/{region}/workers/{id}", s.handleWorkerDepart)
	s.mux.HandleFunc("POST /v1/{region}/tasks", s.handleTaskArrive)
	s.mux.HandleFunc("DELETE /v1/{region}/tasks/{id}", s.handleTaskWithdraw)
	s.mux.HandleFunc("POST /v1/{region}/instant", s.handleInstant)
	s.mux.HandleFunc("GET /v1/{region}/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s, nil
}

// ServeHTTP makes the server mountable under httptest and http.Server
// alike.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// startTickers launches one wall-clock firing loop per region when the
// engine's trigger asks for periodic instants. The loops stop at Drain.
func (s *Server) startTickers() {
	trig := s.cfg.engine.Trigger
	if trig == nil || trig.TickEvery() <= 0 || s.cfg.simNow == nil {
		return
	}
	for _, name := range s.names {
		r := s.regions[name]
		s.tickers.Add(1)
		go func() {
			defer s.tickers.Done()
			tk := time.NewTicker(trig.TickEvery()) //dita:wallclock
			defer tk.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-tk.C:
					now := s.cfg.simNow()
					r.mu.Lock()
					s.fireLocked(r, now)
					r.mu.Unlock()
				}
			}
		}()
	}
}

// Drain ends the serving loop deterministically: ticker loops stop, new
// events are refused with 503, in-flight instants run to completion
// (their region lock is awaited), and each retained region's assignment
// CSV is atomically persisted. Safe to call more than once; later calls
// return the first drain's result.
func (s *Server) Drain() error {
	s.drain.Do(func() {
		s.draining.Store(true)
		close(s.stop)
		s.tickers.Wait()
		if s.cfg.csvPath == "" {
			return
		}
		for _, name := range s.names {
			r := s.regions[name]
			r.mu.Lock()
			csv := engine.AssignCSV(r.instants)
			r.mu.Unlock()
			if err := atomicio.WriteFile(s.cfg.csvPath, csv, 0o644); err != nil {
				s.drainErr = fmt.Errorf("serve: drain CSV: %w", err)
				return
			}
		}
	})
	return s.drainErr
}

// fireLocked runs one instant with r.mu held and updates the region's
// aggregates.
func (s *Server) fireLocked(r *region, at float64) engine.InstantResult {
	if s.testHookFire != nil {
		s.testHookFire()
	}
	depth := r.eng.Pending()
	ir := r.eng.Fire(at)
	r.sumPrepare += ir.Prepare
	r.sumPairMaint += ir.PairMaint
	r.sumAssign += ir.Metrics.CPU
	if ir.Prepare > r.maxPrepare {
		r.maxPrepare = ir.Prepare
	}
	r.lastAt = at
	r.lastAssigned = len(ir.Assigned)
	r.lastDepth = depth
	if r.keep {
		r.instants = append(r.instants, ir)
	}
	return ir
}

// region resolves the request's {region} path value; nil means the
// response is already written.
func (s *Server) region(w http.ResponseWriter, req *http.Request) *region {
	r, ok := s.regions[req.PathValue("region")]
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown region %q", req.PathValue("region")))
		return nil
	}
	return r
}

// refuseDraining rejects state-changing requests once Drain has begun.
func (s *Server) refuseDraining(w http.ResponseWriter) bool {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return true
	}
	return false
}

type workerReq struct {
	User   int32   `json:"user"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Radius float64 `json:"radius"`
	At     float64 `json:"at"`
}

type taskReq struct {
	X          float64 `json:"x"`
	Y          float64 `json:"y"`
	Publish    float64 `json:"publish"`
	Valid      float64 `json:"valid"`
	Categories []int32 `json:"categories"`
	Venue      int32   `json:"venue"`
}

type instantReq struct {
	At float64 `json:"at"`
}

// instantResp is the wire form of an instant: counts, latencies and the
// matched pairs in platform-stable identities.
type instantResp struct {
	At          float64               `json:"at"`
	Online      int                   `json:"online"`
	Open        int                   `json:"open"`
	Expired     int                   `json:"expired"`
	Assigned    []engine.AssignedPair `json:"assigned"`
	PrepareMs   float64               `json:"prepare_ms"`
	PairMaintMs float64               `json:"pair_maint_ms"`
	AssignMs    float64               `json:"assign_ms"`
}

func toInstantResp(ir engine.InstantResult) instantResp {
	return instantResp{
		At: ir.At, Online: ir.OnlineWorkers, Open: ir.OpenTasks,
		Expired: ir.Expired, Assigned: ir.Assigned,
		PrepareMs:   durMs(ir.Prepare),
		PairMaintMs: durMs(ir.PairMaint),
		AssignMs:    durMs(ir.Metrics.CPU),
	}
}

func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (s *Server) handleWorkerArrive(w http.ResponseWriter, req *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	r := s.region(w, req)
	if r == nil {
		return
	}
	var body workerReq
	if !decodeJSON(w, req, &body) {
		return
	}
	if body.Radius < 0 {
		writeErr(w, http.StatusBadRequest, "negative radius")
		return
	}
	r.mu.Lock()
	ap, err := r.eng.Apply(engine.Event{
		Kind: engine.WorkerArrive, At: body.At,
		Worker: engine.WorkerArrival{
			User: model.WorkerID(body.User), Loc: geo.Point{X: body.X, Y: body.Y},
			Radius: body.Radius, At: body.At,
		},
	})
	resp := map[string]any{"worker_id": ap.WorkerID}
	if err == nil && ap.FireNow {
		resp["instant"] = toInstantResp(s.fireLocked(r, body.At))
	}
	r.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTaskArrive(w http.ResponseWriter, req *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	r := s.region(w, req)
	if r == nil {
		return
	}
	var body taskReq
	if !decodeJSON(w, req, &body) {
		return
	}
	if body.Valid <= 0 {
		writeErr(w, http.StatusBadRequest, "non-positive validity")
		return
	}
	cats := make([]model.CategoryID, len(body.Categories))
	for i, c := range body.Categories {
		cats[i] = model.CategoryID(c)
	}
	r.mu.Lock()
	ap, err := r.eng.Apply(engine.Event{
		Kind: engine.TaskArrive, At: body.Publish,
		Task: engine.TaskArrival{
			Loc: geo.Point{X: body.X, Y: body.Y}, Publish: body.Publish,
			Valid: body.Valid, Categories: cats, Venue: model.VenueID(body.Venue),
		},
	})
	resp := map[string]any{"task_id": ap.TaskID}
	if err == nil && ap.FireNow {
		resp["instant"] = toInstantResp(s.fireLocked(r, body.Publish))
	}
	r.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWorkerDepart(w http.ResponseWriter, req *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	r := s.region(w, req)
	if r == nil {
		return
	}
	id, ok := parseID(w, req)
	if !ok {
		return
	}
	r.mu.Lock()
	_, err := r.eng.Apply(engine.Event{Kind: engine.WorkerDepart, WorkerID: model.WorkerID(id)})
	r.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"departed": id})
}

func (s *Server) handleTaskWithdraw(w http.ResponseWriter, req *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	r := s.region(w, req)
	if r == nil {
		return
	}
	id, ok := parseID(w, req)
	if !ok {
		return
	}
	r.mu.Lock()
	_, err := r.eng.Apply(engine.Event{Kind: engine.TaskExpire, TaskID: model.TaskID(id)})
	r.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"withdrawn": id})
}

func (s *Server) handleInstant(w http.ResponseWriter, req *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	r := s.region(w, req)
	if r == nil {
		return
	}
	var body instantReq
	if !decodeJSON(w, req, &body) {
		return
	}
	r.mu.Lock()
	ir := s.fireLocked(r, body.At)
	r.mu.Unlock()
	writeJSON(w, http.StatusOK, toInstantResp(ir))
}

// metricsResp is the per-region observability snapshot: pool and queue
// depths, cumulative engine totals, and latency aggregates.
type metricsResp struct {
	Region  string        `json:"region"`
	Online  int           `json:"online"`
	Open    int           `json:"open"`
	Pending int           `json:"pending"`
	Totals  engine.Totals `json:"totals"`
	Latency struct {
		PrepareTotalMs   float64 `json:"prepare_total_ms"`
		PrepareMaxMs     float64 `json:"prepare_max_ms"`
		PairMaintTotalMs float64 `json:"pair_maint_total_ms"`
		AssignTotalMs    float64 `json:"assign_total_ms"`
	} `json:"latency"`
	LastInstant struct {
		At         float64 `json:"at"`
		Assigned   int     `json:"assigned"`
		QueueDepth int     `json:"queue_depth"`
	} `json:"last_instant"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	r := s.region(w, req)
	if r == nil {
		return
	}
	r.mu.Lock()
	var m metricsResp
	m.Region = r.name
	m.Online = r.eng.Online()
	m.Open = r.eng.Open()
	m.Pending = r.eng.Pending()
	m.Totals = r.eng.Totals()
	m.Latency.PrepareTotalMs = durMs(r.sumPrepare)
	m.Latency.PrepareMaxMs = durMs(r.maxPrepare)
	m.Latency.PairMaintTotalMs = durMs(r.sumPairMaint)
	m.Latency.AssignTotalMs = durMs(r.sumAssign)
	m.LastInstant.At = r.lastAt
	m.LastInstant.Assigned = r.lastAssigned
	m.LastInstant.QueueDepth = r.lastDepth
	r.mu.Unlock()
	writeJSON(w, http.StatusOK, m)
}

func parseID(w http.ResponseWriter, req *http.Request) (int64, bool) {
	id, err := strconv.ParseInt(req.PathValue("id"), 10, 32)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad id %q", req.PathValue("id")))
		return 0, false
	}
	return id, true
}

// decodeJSON strictly decodes the request body; unknown fields and
// malformed payloads are rejected with 400 so a client typo cannot be
// silently half-applied.
func decodeJSON(w http.ResponseWriter, req *http.Request, v any) bool {
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad payload: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
