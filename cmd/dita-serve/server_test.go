package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dita/internal/assign"
	"dita/internal/core"
	"dita/internal/dataset"
	"dita/internal/engine"
	"dita/internal/lda"
	"dita/internal/simulate"
	"dita/internal/trace"
)

func testFramework(t *testing.T) (*core.Framework, *dataset.Data) {
	t.Helper()
	p := dataset.BrightkiteLike()
	p.NumUsers = 120
	p.NumVenues = 150
	p.Days = 5
	p.Seed = 33
	data, err := dataset.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cutoff := 4 * 24.0
	docs, vocab := data.Documents(cutoff)
	fw, err := core.Train(core.TrainingData{
		Graph:     data.Graph,
		Histories: data.HistoriesBefore(cutoff),
		Documents: docs,
		Vocab:     vocab,
		Records:   data.CheckInsBefore(cutoff),
	}, core.Config{LDA: lda.Config{Topics: 8, TrainIters: 25}})
	if err != nil {
		t.Fatal(err)
	}
	return fw, data
}

func testServer(t *testing.T, fw *core.Framework, cfg serverConfig) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.regions == nil {
		cfg.regions = []string{"default"}
	}
	cfg.engine.Algorithm = assign.IA
	if cfg.engine.Seed == 0 {
		cfg.engine.Seed = 7
	}
	srv, err := newServer(fw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// do issues one JSON request and decodes the JSON response into out
// (out may be nil).
func do(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	switch b := body.(type) {
	case nil:
		rd = bytes.NewReader(nil)
	case string:
		rd = bytes.NewReader([]byte(b))
	default:
		raw, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestServeRoundTrips(t *testing.T) {
	fw, data := testFramework(t)
	srv, ts := testServer(t, fw, serverConfig{engine: engine.Config{Trigger: engine.ManualTrigger{}}})
	_ = srv

	var health map[string]string
	if code := do(t, "GET", ts.URL+"/healthz", nil, &health); code != 200 || health["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, health)
	}

	// Arrivals mint consecutive stable ids.
	ws, tks, err := trace.Build(data, trace.Params{Arrivals: 20, Seed: 3, Start: 96, Spread: 4, RadiusKm: 25, ValidMin: 4, ValidSpan: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, wa := range ws {
		var got struct {
			WorkerID int `json:"worker_id"`
		}
		body := workerReq{User: int32(wa.User), X: wa.Loc.X, Y: wa.Loc.Y, Radius: wa.Radius, At: wa.At}
		if code := do(t, "POST", ts.URL+"/v1/default/workers", body, &got); code != 200 {
			t.Fatalf("worker arrival %d: status %d", i, code)
		}
		if got.WorkerID != i {
			t.Fatalf("worker %d minted id %d", i, got.WorkerID)
		}
	}
	for i, ta := range tks {
		var got struct {
			TaskID int `json:"task_id"`
		}
		cats := make([]int32, len(ta.Categories))
		for k, c := range ta.Categories {
			cats[k] = int32(c)
		}
		body := taskReq{X: ta.Loc.X, Y: ta.Loc.Y, Publish: ta.Publish, Valid: ta.Valid, Categories: cats, Venue: int32(ta.Venue)}
		if code := do(t, "POST", ts.URL+"/v1/default/tasks", body, &got); code != 200 {
			t.Fatalf("task arrival %d: status %d", i, code)
		}
		if got.TaskID != i {
			t.Fatalf("task %d minted id %d", i, got.TaskID)
		}
	}

	// Departure round-trip: 200 once, 404 after.
	if code := do(t, "DELETE", ts.URL+"/v1/default/workers/0", nil, nil); code != 200 {
		t.Fatalf("departure: status %d", code)
	}
	if code := do(t, "DELETE", ts.URL+"/v1/default/workers/0", nil, nil); code != 404 {
		t.Fatalf("second departure: status %d, want 404", code)
	}
	if code := do(t, "DELETE", ts.URL+"/v1/default/tasks/5", nil, nil); code != 200 {
		t.Fatalf("withdrawal: status %d", code)
	}
	if code := do(t, "DELETE", ts.URL+"/v1/default/tasks/999", nil, nil); code != 404 {
		t.Fatalf("unknown withdrawal: status %d, want 404", code)
	}

	// An explicit instant assigns and reports stable-id pairs.
	var ir instantResp
	if code := do(t, "POST", ts.URL+"/v1/default/instant", instantReq{At: 101}, &ir); code != 200 {
		t.Fatalf("instant: status %d", code)
	}
	if len(ir.Assigned) == 0 {
		t.Fatal("instant assigned nothing; test pools too sparse")
	}
	for _, pr := range ir.Assigned {
		if pr.Worker == 0 {
			t.Error("departed worker 0 was assigned")
		}
		if pr.Task == 5 {
			t.Error("withdrawn task 5 was assigned")
		}
	}

	// Metrics reflect the run.
	var m metricsResp
	if code := do(t, "GET", ts.URL+"/v1/default/metrics", nil, &m); code != 200 {
		t.Fatalf("metrics: status %d", code)
	}
	if m.Totals.Instants != 1 || m.Totals.Assigned != len(ir.Assigned) {
		t.Fatalf("metrics totals %+v, want 1 instant / %d assigned", m.Totals, len(ir.Assigned))
	}
	if m.Totals.Departed != 1 || m.Totals.Cancelled != 1 {
		t.Fatalf("metrics totals %+v, want 1 departed / 1 cancelled", m.Totals)
	}
	if m.Online != 20-1-len(ir.Assigned) {
		t.Fatalf("online %d after %d assigned and 1 departure", m.Online, len(ir.Assigned))
	}
	if m.LastInstant.At != 101 || m.LastInstant.Assigned != len(ir.Assigned) {
		t.Fatalf("last instant %+v", m.LastInstant)
	}
}

func TestServeMalformedPayloadsRejected(t *testing.T) {
	fw, _ := testFramework(t)
	_, ts := testServer(t, fw, serverConfig{engine: engine.Config{Trigger: engine.ManualTrigger{}}})
	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"truncated json", "POST", "/v1/default/workers", `{"user": 1,`, 400},
		{"unknown field", "POST", "/v1/default/workers", `{"user":1,"velocity":9}`, 400},
		{"wrong type", "POST", "/v1/default/tasks", `{"publish":"noon"}`, 400},
		{"negative radius", "POST", "/v1/default/workers", `{"user":1,"radius":-2}`, 400},
		{"zero validity", "POST", "/v1/default/tasks", `{"x":1,"y":1}`, 400},
		{"instant junk", "POST", "/v1/default/instant", `nope`, 400},
		{"unknown region", "POST", "/v1/mars/workers", `{"user":1}`, 404},
		{"unknown region metrics", "GET", "/v1/mars/metrics", "", 404},
		{"bad id", "DELETE", "/v1/default/workers/abc", "", 400},
		{"wrong method", "GET", "/v1/default/workers", "", 405},
	}
	for _, c := range cases {
		if code := do(t, c.method, ts.URL+c.path, c.body, nil); code != c.want {
			t.Errorf("%s: status %d, want %d", c.name, code, c.want)
		}
	}
	// Nothing was half-applied: the pools are untouched.
	var m metricsResp
	do(t, "GET", ts.URL+"/v1/default/metrics", nil, &m)
	if m.Online != 0 || m.Open != 0 || m.Totals.Events != 0 {
		t.Fatalf("rejected payloads mutated state: %+v", m)
	}
}

func TestServeBatchTriggerFiresInline(t *testing.T) {
	fw, data := testFramework(t)
	_, ts := testServer(t, fw, serverConfig{engine: engine.Config{Trigger: engine.BatchTrigger{N: 4}}})
	ws, _, err := trace.Build(data, trace.Params{Arrivals: 4, Seed: 3, Start: 96, Spread: 1, RadiusKm: 25, ValidMin: 4, ValidSpan: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, wa := range ws {
		var got map[string]json.RawMessage
		body := workerReq{User: int32(wa.User), X: wa.Loc.X, Y: wa.Loc.Y, Radius: wa.Radius, At: wa.At}
		if code := do(t, "POST", ts.URL+"/v1/default/workers", body, &got); code != 200 {
			t.Fatalf("arrival %d: status %d", i, code)
		}
		_, fired := got["instant"]
		if want := i == 3; fired != want {
			t.Fatalf("arrival %d: instant fired %v, want %v", i, fired, want)
		}
	}
	var m metricsResp
	do(t, "GET", ts.URL+"/v1/default/metrics", nil, &m)
	if m.Totals.Instants != 1 || m.Pending != 0 {
		t.Fatalf("after batch fire: %+v", m)
	}
}

// TestServeRegionsAreIsolated: two regions hold independent engines —
// ids, pools and instants in one never leak into the other.
func TestServeRegionsAreIsolated(t *testing.T) {
	fw, data := testFramework(t)
	_, ts := testServer(t, fw, serverConfig{
		engine:  engine.Config{Trigger: engine.ManualTrigger{}},
		regions: []string{"east", "west"},
	})
	ws, _, err := trace.Build(data, trace.Params{Arrivals: 3, Seed: 3, Start: 96, Spread: 1, RadiusKm: 25, ValidMin: 4, ValidSpan: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, wa := range ws {
		body := workerReq{User: int32(wa.User), X: wa.Loc.X, Y: wa.Loc.Y, Radius: wa.Radius, At: wa.At}
		if code := do(t, "POST", ts.URL+"/v1/east/workers", body, nil); code != 200 {
			t.Fatal("east arrival failed")
		}
	}
	var east, west metricsResp
	do(t, "GET", ts.URL+"/v1/east/metrics", nil, &east)
	do(t, "GET", ts.URL+"/v1/west/metrics", nil, &west)
	if east.Online != 3 || west.Online != 0 {
		t.Fatalf("east %d / west %d online, want 3 / 0", east.Online, west.Online)
	}
	// A fresh west arrival mints id 0: id spaces are per-region.
	var got struct {
		WorkerID int `json:"worker_id"`
	}
	body := workerReq{User: int32(ws[0].User), X: ws[0].Loc.X, Y: ws[0].Loc.Y, Radius: 25, At: 96}
	do(t, "POST", ts.URL+"/v1/west/workers", body, &got)
	if got.WorkerID != 0 {
		t.Fatalf("west minted id %d, want 0", got.WorkerID)
	}
}

// TestServeDrainCompletesInFlightInstant is the drain gate: an instant
// that is already inside its critical section when Drain begins must
// complete, and its assignments must land in the drained CSV; events
// arriving after the drain are refused.
func TestServeDrainCompletesInFlightInstant(t *testing.T) {
	fw, data := testFramework(t)
	csvPath := filepath.Join(t.TempDir(), "serve.csv")
	srv, ts := testServer(t, fw, serverConfig{
		engine:  engine.Config{Trigger: engine.ManualTrigger{}},
		csvPath: csvPath,
	})
	ws, tks, err := trace.Build(data, trace.Params{Arrivals: 25, Seed: 3, Start: 96, Spread: 2, RadiusKm: 25, ValidMin: 6, ValidSpan: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, wa := range ws {
		body := workerReq{User: int32(wa.User), X: wa.Loc.X, Y: wa.Loc.Y, Radius: wa.Radius, At: wa.At}
		if code := do(t, "POST", ts.URL+"/v1/default/workers", body, nil); code != 200 {
			t.Fatal("arrival failed")
		}
	}
	for _, ta := range tks {
		body := taskReq{X: ta.Loc.X, Y: ta.Loc.Y, Publish: ta.Publish, Valid: ta.Valid, Venue: int32(ta.Venue)}
		if code := do(t, "POST", ts.URL+"/v1/default/tasks", body, nil); code != 200 {
			t.Fatal("task failed")
		}
	}

	// Hold the instant in flight: the hook blocks inside the critical
	// section until released, while Drain runs concurrently.
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.testHookFire = func() {
		close(entered)
		<-release
	}
	instantDone := make(chan instantResp, 1)
	go func() {
		var ir instantResp
		do(t, "POST", ts.URL+"/v1/default/instant", instantReq{At: 99}, &ir)
		instantDone <- ir
	}()
	<-entered
	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain() }()
	// The instant is mid-flight holding the region lock; releasing it
	// must let both the instant and the drain complete.
	close(release)
	ir := <-instantDone
	if err := <-drainDone; err != nil {
		t.Fatal(err)
	}
	if len(ir.Assigned) == 0 {
		t.Fatal("in-flight instant assigned nothing; test pools too sparse")
	}

	// The drained CSV contains exactly the in-flight instant's pairs.
	raw, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	if lines[0] != "at,task,worker,user,influence,travel_km" {
		t.Fatalf("CSV header %q", lines[0])
	}
	if len(lines)-1 != len(ir.Assigned) {
		t.Fatalf("%d CSV rows, %d in-flight assignments", len(lines)-1, len(ir.Assigned))
	}
	for _, pr := range ir.Assigned {
		prefix := fmt.Sprintf("99,%d,%d,", pr.Task, pr.Worker)
		found := false
		for _, l := range lines[1:] {
			if strings.HasPrefix(l, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("assignment %+v missing from drained CSV", pr)
		}
	}

	// Post-drain events are refused, and a second drain is a no-op.
	if code := do(t, "POST", ts.URL+"/v1/default/workers", workerReq{User: 1, Radius: 1}, nil); code != 503 {
		t.Fatalf("post-drain arrival: status %d, want 503", code)
	}
	if code := do(t, "POST", ts.URL+"/v1/default/instant", instantReq{At: 100}, nil); code != 503 {
		t.Fatalf("post-drain instant: status %d, want 503", code)
	}
	if err := srv.Drain(); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestServeMatchesSimulateReplay is the in-process form of the CI serve
// smoke: the same trace replayed once through simulate.Platform and once
// through the HTTP endpoints (grid admissions + explicit instants) must
// drain a byte-identical assignment CSV.
func TestServeMatchesSimulateReplay(t *testing.T) {
	fw, data := testFramework(t)
	tp := trace.Params{Arrivals: 60, Seed: 13, Start: 96, Spread: 12, RadiusKm: 25, ValidMin: 3, ValidSpan: 3}
	ws, tks, err := trace.Build(data, tp)
	if err != nil {
		t.Fatal(err)
	}
	const start, step, horizon = 96.0, 1.0, 14.0

	p, err := simulate.New(fw, simulate.Config{
		Algorithm: assign.IA, Step: step, Start: start, Horizon: horizon, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(ws, tks)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAssigned == 0 {
		t.Fatal("replay assigned nothing; trace too sparse to gate anything")
	}
	want := engine.AssignCSV(res.Instants)

	csvPath := filepath.Join(t.TempDir(), "serve.csv")
	srv, ts := testServer(t, fw, serverConfig{
		engine:  engine.Config{Trigger: engine.ManualTrigger{}},
		csvPath: csvPath,
	})
	wi, ti := 0, 0
	count := int(math.Floor(horizon/step + 1e-9))
	for i := 0; i <= count; i++ {
		now := start + float64(i)*step
		for wi < len(ws) && ws[wi].At <= now {
			wa := ws[wi]
			body := workerReq{User: int32(wa.User), X: wa.Loc.X, Y: wa.Loc.Y, Radius: wa.Radius, At: wa.At}
			if code := do(t, "POST", ts.URL+"/v1/default/workers", body, nil); code != 200 {
				t.Fatal("arrival failed")
			}
			wi++
		}
		for ti < len(tks) && tks[ti].Publish <= now {
			ta := tks[ti]
			cats := make([]int32, len(ta.Categories))
			for k, c := range ta.Categories {
				cats[k] = int32(c)
			}
			body := taskReq{X: ta.Loc.X, Y: ta.Loc.Y, Publish: ta.Publish, Valid: ta.Valid, Categories: cats, Venue: int32(ta.Venue)}
			if code := do(t, "POST", ts.URL+"/v1/default/tasks", body, nil); code != 200 {
				t.Fatal("task failed")
			}
			ti++
		}
		if code := do(t, "POST", ts.URL+"/v1/default/instant", instantReq{At: now}, nil); code != 200 {
			t.Fatal("instant failed")
		}
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("served assignment CSV diverged from the simulate replay")
	}
}
