// Command dita-lint runs the repository's determinism/durability
// static-analysis suite (internal/lint) over the named packages and
// fails on any violation. CI runs it as a hard gate; locally:
//
//	go run ./cmd/dita-lint ./...
//
// Each diagnostic names the violated invariant:
//
//	maporder     order-sensitive work inside range-over-map
//	wallclock    time.Now/Since or global math/rand in deterministic
//	             code (timing sites opt out via //dita:wallclock)
//	atomicwrite  in-place file writes outside internal/atomicio
//	poolpurity   writes to captured state in pool chunk closures
//	floatreduce  scheduling-dependent float reductions
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"dita/internal/lint"
)

func main() {
	log.SetFlags(0)
	only := flag.String("only", "", "comma-separated analyzer subset to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dita-lint [-only analyzers] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				log.Fatalf("dita-lint: unknown analyzer %q", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns)
	if err != nil {
		log.Fatalf("dita-lint: %v", err)
	}

	failed := false
	for _, pkg := range pkgs {
		for _, d := range lint.Run(pkg, analyzers) {
			failed = true
			fmt.Println(d)
		}
	}
	if failed {
		os.Exit(1)
	}
}
