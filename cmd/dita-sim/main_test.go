package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"dita/internal/atomicio"
	"dita/internal/faultinject"
	"dita/internal/model"
)

// helperInstance is the fixed assignment the fault-injection helper
// dumps: small enough to write instantly, rich enough that a torn CSV
// would be visibly shorter than the real one.
func helperInstance() (*model.Instance, *model.AssignmentSet) {
	inst := &model.Instance{
		Workers: []model.Worker{
			{ID: 0, User: 7},
			{ID: 1, User: 3},
			{ID: 2, User: 11},
		},
		Tasks: make([]model.Task, 3),
	}
	set := &model.AssignmentSet{
		Pairs:     []model.Assignment{{Task: 0, Worker: 2}, {Task: 1, Worker: 0}, {Task: 2, Worker: 1}},
		Influence: []float64{0.125, 0.0625, 0.4375},
		TravelKm:  []float64{1.5, 2.25, 0.75},
	}
	return inst, set
}

const helperWant = "task,worker,user,influence,travel_km\n" +
	"0,2,11,0.125,1.5\n" +
	"1,0,7,0.0625,2.25\n" +
	"2,1,3,0.4375,0.75\n"

// TestAssignCSVSurvivesTornWrite re-executes the test binary with a
// faultinject crash armed inside the -assign-csv write path and asserts
// that a run killed mid-dump never leaves a partial CSV at the
// destination: the target is either absent or still holds its previous
// content in full, and the only debris is the *.tmp file every artifact
// loader already skips.
func TestAssignCSVSurvivesTornWrite(t *testing.T) {
	if target := os.Getenv("DITA_SIM_HELPER_CSV"); target != "" {
		inst, set := helperInstance()
		if err := writeAssignCSV(target, inst, set); err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}

	run := func(spec, target string) error {
		cmd := exec.Command(os.Args[0], "-test.run", "TestAssignCSVSurvivesTornWrite")
		cmd.Env = append(os.Environ(), "DITA_SIM_HELPER_CSV="+target)
		if spec != "" {
			cmd.Env = append(cmd.Env, faultinject.EnvVar+"="+spec)
		}
		_, err := cmd.CombinedOutput()
		return err
	}

	t.Run("clean run writes the deterministic CSV", func(t *testing.T) {
		target := filepath.Join(t.TempDir(), "assign.csv")
		if err := run("", target); err != nil {
			t.Fatalf("helper failed without faults armed: %v", err)
		}
		got, err := os.ReadFile(target)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != helperWant {
			t.Errorf("assignment CSV:\n%s\nwant:\n%s", got, helperWant)
		}
	})

	t.Run("crash mid-dump leaves no file at the destination", func(t *testing.T) {
		target := filepath.Join(t.TempDir(), "assign.csv")
		if err := run("atomicio.pre-rename:crash", target); err == nil {
			t.Fatal("helper survived its armed crash")
		}
		if _, err := os.Stat(target); !os.IsNotExist(err) {
			t.Errorf("partial CSV visible at the destination after a torn write: %v", err)
		}
		if _, err := os.Stat(target + atomicio.TempSuffix); err != nil {
			t.Errorf("expected only *.tmp debris after the crash: %v", err)
		}
	})

	t.Run("crash mid-overwrite keeps the old CSV intact", func(t *testing.T) {
		target := filepath.Join(t.TempDir(), "assign.csv")
		old := "task,worker,user,influence,travel_km\n9,9,9,1,1\n"
		if err := os.WriteFile(target, []byte(old), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run("atomicio.pre-rename:crash", target); err == nil {
			t.Fatal("helper survived its armed crash")
		}
		got, err := os.ReadFile(target)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != old {
			t.Errorf("previous CSV corrupted by a torn overwrite:\n%s\nwant:\n%s", got, old)
		}
	})
}
