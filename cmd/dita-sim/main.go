// Command dita-sim runs one task-assignment instance end to end: it
// loads (or generates) a dataset, trains the DITA framework, snapshots
// one day, runs the chosen algorithm and prints the assignment and its
// metrics. It is the manual-inspection tool of the repository.
//
// Usage:
//
//	dita-sim -preset bk -day 25 -tasks 500 -workers 400 -alg IA
//	dita-sim -data ./data/bk -day 25 -alg EIA -mask IA-AW -v
//	dita-sim -preset bk -alg MI -pairs tiled -assign-csv /tmp/tiled.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"dita/internal/assign"
	"dita/internal/atomicio"
	"dita/internal/core"
	"dita/internal/dataset"
	"dita/internal/influence"
	"dita/internal/model"
)

func main() {
	log.SetFlags(0)
	var (
		dataDir = flag.String("data", "", "load a dataset directory written by dita-datagen (overrides -preset)")
		preset  = flag.String("preset", "bk", "generate a dataset preset: bk or fs")
		day     = flag.Int("day", 25, "evaluation day (training uses days before it)")
		tasks   = flag.Int("tasks", 500, "|S| tasks in the instance")
		workers = flag.Int("workers", 400, "|W| workers in the instance")
		valid   = flag.Float64("valid", 5, "task valid time ϕ in hours")
		radius  = flag.Float64("radius", 25, "worker reachable radius r in km")
		algName = flag.String("alg", "IA", "algorithm: MTA, IA, EIA, DIA, MI or MIX (exact max-influence ablation)")
		mask    = flag.String("mask", "IA", "influence components: IA (all), IA-WP, IA-AP or IA-AW")
		seed    = flag.Uint64("seed", 1, "instance sampling seed")
		par     = flag.Int("parallel", 0, "worker pool bound for the online phase (0 = all cores)")
		pairs   = flag.String("pairs", "global", "feasibility scan: global (one grid pass) or tiled (spatial partitioning); outputs are bit-identical")
		csvPath = flag.String("assign-csv", "", "write the assignment as CSV to this path (deterministic; for diffing runs)")
		verbose = flag.Bool("v", false, "print every assigned pair")
	)
	flag.Parse()

	alg, err := assign.ParseAlgorithm(*algName)
	if err != nil {
		log.Fatal(err)
	}
	comps, err := parseMask(*mask)
	if err != nil {
		log.Fatal(err)
	}

	var data *dataset.Data
	if *dataDir != "" {
		data, err = dataset.Load(*dataDir)
		if err != nil {
			log.Fatalf("load: %v", err)
		}
	} else {
		var p dataset.Params
		switch *preset {
		case "bk":
			p = dataset.BrightkiteLike()
		case "fs":
			p = dataset.FoursquareLike()
		default:
			log.Fatalf("unknown preset %q", *preset)
		}
		start := time.Now() //dita:wallclock
		data, err = dataset.Generate(p)
		if err != nil {
			log.Fatalf("generate: %v", err)
		}
		fmt.Printf("dataset %s generated in %.1fs (%d check-ins)\n",
			p.Name, time.Since(start).Seconds(), data.NumCheckIns()) //dita:wallclock
	}

	cutoff := float64(*day) * 24
	start := time.Now() //dita:wallclock
	docs, vocab := data.Documents(cutoff)
	fw, err := core.Train(core.TrainingData{
		Graph:     data.Graph,
		Histories: data.HistoriesBefore(cutoff),
		Documents: docs,
		Vocab:     vocab,
		Records:   data.CheckInsBefore(cutoff),
	}, core.Config{TopWillingnessLocations: 8})
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	fmt.Printf("framework trained in %.1fs\n", time.Since(start).Seconds()) //dita:wallclock

	inst, err := data.Snapshot(dataset.SnapshotParams{
		Day: *day, NumTasks: *tasks, NumWorkers: *workers,
		ValidHours: *valid, RadiusKm: *radius, Seed: *seed,
	})
	if err != nil {
		log.Fatalf("snapshot: %v", err)
	}

	start = time.Now() //dita:wallclock
	sess := fw.PrepareSession(comps, *seed, *par)
	ev := sess.Prepare(inst)
	fmt.Printf("influence model (%s) prepared in %.1fs\n", comps, time.Since(start).Seconds()) //dita:wallclock

	var feas []assign.Pair
	scanTiles := 0
	switch *pairs {
	case "global":
		feas = assign.FeasiblePairs(inst, fw.Speed())
	case "tiled":
		feas, scanTiles = assign.TiledFeasiblePairs(inst, fw.Speed(), *par)
	default:
		log.Fatalf("unknown -pairs mode %q (want global or tiled)", *pairs)
	}
	set, m, ts := fw.AssignPreparedPairsTiled(inst, ev, alg, feas, *par)
	ts.Tiles = scanTiles
	if err := set.Validate(len(inst.Tasks), len(inst.Workers)); err != nil {
		log.Fatalf("invalid assignment: %v", err)
	}

	fmt.Printf("\n%s on day %d (|S|=%d, |W|=%d, ϕ=%gh, r=%gkm):\n",
		alg, *day, *tasks, *workers, *valid, *radius)
	fmt.Printf("  assigned tasks       %d\n", m.Assigned)
	fmt.Printf("  feasible pairs       %d\n", m.Feasible)
	if ts.Tiles > 0 {
		fmt.Printf("  spatial tiles        %d\n", ts.Tiles)
	}
	fmt.Printf("  graph components     %d (largest %d pairs)\n", ts.Components, ts.LargestComponent)
	fmt.Printf("  average influence    %.4f\n", m.AI)
	fmt.Printf("  average propagation  %.4f\n", m.AP)
	fmt.Printf("  average travel       %.2f km\n", m.TravelKm)
	fmt.Printf("  assignment CPU       %s\n", m.CPU.Round(time.Millisecond))

	if *csvPath != "" {
		if err := writeAssignCSV(*csvPath, inst, set); err != nil {
			log.Fatalf("assign-csv: %v", err)
		}
		fmt.Printf("  assignment CSV       %s (%d rows)\n", *csvPath, set.Len())
	}

	if *verbose {
		fmt.Println("\nassignments:")
		for i, pr := range set.Pairs {
			fmt.Printf("  task %4d -> worker %4d (user %4d)  if=%.4f  d=%.2fkm\n",
				pr.Task, pr.Worker, inst.Workers[pr.Worker].User,
				set.Influence[i], set.TravelKm[i])
		}
	}
}

// writeAssignCSV dumps the assignment in a fully deterministic text
// form: floats print as the shortest decimal that parses back exactly,
// so two runs that are bit-identical produce byte-identical files — the
// property the tiled-vs-global CI smoke diffs on. The write goes
// through atomicio like every other artifact write, so a run killed
// mid-dump can never leave a torn CSV where the smoke's cmp (or any
// other consumer) would read it.
func writeAssignCSV(path string, inst *model.Instance, set *model.AssignmentSet) error {
	var b strings.Builder
	b.WriteString("task,worker,user,influence,travel_km\n")
	for i, pr := range set.Pairs {
		fmt.Fprintf(&b, "%d,%d,%d,%s,%s\n",
			pr.Task, pr.Worker, inst.Workers[pr.Worker].User,
			strconv.FormatFloat(set.Influence[i], 'g', -1, 64),
			strconv.FormatFloat(set.TravelKm[i], 'g', -1, 64))
	}
	return atomicio.WriteFile(path, []byte(b.String()), 0o644)
}

func parseMask(s string) (influence.Components, error) {
	switch s {
	case "IA", "all", "ALL":
		return influence.All, nil
	case "IA-WP", "WP":
		return influence.WP, nil
	case "IA-AP", "AP":
		return influence.AP, nil
	case "IA-AW", "AW":
		return influence.AW, nil
	}
	return 0, fmt.Errorf("unknown mask %q (want IA, IA-WP, IA-AP or IA-AW)", s)
}
