// Command dita-sim runs one task-assignment instance end to end: it
// loads (or generates) a dataset, trains the DITA framework, snapshots
// one day, runs the chosen algorithm and prints the assignment and its
// metrics. It is the manual-inspection tool of the repository.
//
// Usage:
//
//	dita-sim -preset bk -day 25 -tasks 500 -workers 400 -alg IA
//	dita-sim -data ./data/bk -day 25 -alg EIA -mask IA-AW -v
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"dita/internal/assign"
	"dita/internal/core"
	"dita/internal/dataset"
	"dita/internal/influence"
)

func main() {
	log.SetFlags(0)
	var (
		dataDir = flag.String("data", "", "load a dataset directory written by dita-datagen (overrides -preset)")
		preset  = flag.String("preset", "bk", "generate a dataset preset: bk or fs")
		day     = flag.Int("day", 25, "evaluation day (training uses days before it)")
		tasks   = flag.Int("tasks", 500, "|S| tasks in the instance")
		workers = flag.Int("workers", 400, "|W| workers in the instance")
		valid   = flag.Float64("valid", 5, "task valid time ϕ in hours")
		radius  = flag.Float64("radius", 25, "worker reachable radius r in km")
		algName = flag.String("alg", "IA", "algorithm: MTA, IA, EIA, DIA or MI")
		mask    = flag.String("mask", "IA", "influence components: IA (all), IA-WP, IA-AP or IA-AW")
		seed    = flag.Uint64("seed", 1, "instance sampling seed")
		par     = flag.Int("parallel", 0, "worker pool bound for the online phase (0 = all cores)")
		verbose = flag.Bool("v", false, "print every assigned pair")
	)
	flag.Parse()

	alg, err := assign.ParseAlgorithm(*algName)
	if err != nil {
		log.Fatal(err)
	}
	comps, err := parseMask(*mask)
	if err != nil {
		log.Fatal(err)
	}

	var data *dataset.Data
	if *dataDir != "" {
		data, err = dataset.Load(*dataDir)
		if err != nil {
			log.Fatalf("load: %v", err)
		}
	} else {
		var p dataset.Params
		switch *preset {
		case "bk":
			p = dataset.BrightkiteLike()
		case "fs":
			p = dataset.FoursquareLike()
		default:
			log.Fatalf("unknown preset %q", *preset)
		}
		start := time.Now()
		data, err = dataset.Generate(p)
		if err != nil {
			log.Fatalf("generate: %v", err)
		}
		fmt.Printf("dataset %s generated in %.1fs (%d check-ins)\n",
			p.Name, time.Since(start).Seconds(), data.NumCheckIns())
	}

	cutoff := float64(*day) * 24
	start := time.Now()
	docs, vocab := data.Documents(cutoff)
	fw, err := core.Train(core.TrainingData{
		Graph:     data.Graph,
		Histories: data.HistoriesBefore(cutoff),
		Documents: docs,
		Vocab:     vocab,
		Records:   data.CheckInsBefore(cutoff),
	}, core.Config{TopWillingnessLocations: 8})
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	fmt.Printf("framework trained in %.1fs\n", time.Since(start).Seconds())

	inst, err := data.Snapshot(dataset.SnapshotParams{
		Day: *day, NumTasks: *tasks, NumWorkers: *workers,
		ValidHours: *valid, RadiusKm: *radius, Seed: *seed,
	})
	if err != nil {
		log.Fatalf("snapshot: %v", err)
	}

	start = time.Now()
	sess := fw.PrepareSession(comps, *seed, *par)
	ev := sess.Prepare(inst)
	fmt.Printf("influence model (%s) prepared in %.1fs\n", comps, time.Since(start).Seconds())

	set, m := fw.AssignPrepared(inst, ev, alg, nil)
	if err := set.Validate(len(inst.Tasks), len(inst.Workers)); err != nil {
		log.Fatalf("invalid assignment: %v", err)
	}

	fmt.Printf("\n%s on day %d (|S|=%d, |W|=%d, ϕ=%gh, r=%gkm):\n",
		alg, *day, *tasks, *workers, *valid, *radius)
	fmt.Printf("  assigned tasks       %d\n", m.Assigned)
	fmt.Printf("  feasible pairs       %d\n", m.Feasible)
	fmt.Printf("  average influence    %.4f\n", m.AI)
	fmt.Printf("  average propagation  %.4f\n", m.AP)
	fmt.Printf("  average travel       %.2f km\n", m.TravelKm)
	fmt.Printf("  assignment CPU       %s\n", m.CPU.Round(time.Millisecond))

	if *verbose {
		fmt.Println("\nassignments:")
		for i, pr := range set.Pairs {
			fmt.Printf("  task %4d -> worker %4d (user %4d)  if=%.4f  d=%.2fkm\n",
				pr.Task, pr.Worker, inst.Workers[pr.Worker].User,
				set.Influence[i], set.TravelKm[i])
		}
	}
}

func parseMask(s string) (influence.Components, error) {
	switch s {
	case "IA", "all", "ALL":
		return influence.All, nil
	case "IA-WP", "WP":
		return influence.WP, nil
	case "IA-AP", "AP":
		return influence.AP, nil
	case "IA-AW", "AW":
		return influence.AW, nil
	}
	return 0, fmt.Errorf("unknown mask %q (want IA, IA-WP, IA-AP or IA-AW)", s)
}
