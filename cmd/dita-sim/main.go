// Command dita-sim runs one task-assignment instance end to end: it
// loads (or generates) a dataset, trains the DITA framework, snapshots
// one day, runs the chosen algorithm and prints the assignment and its
// metrics. It is the manual-inspection tool of the repository.
//
// With -stream it instead replays a deterministic arrival trace
// (internal/trace) through the streaming engine on a fixed instant grid
// (simulate.Platform) and writes the streaming assignment CSV — the
// batch reference the CI serve smoke diffs byte for byte against a live
// dita-serve fed the identical trace by dita-bench -serve-load.
//
// -train-out seals the trained framework into a fwio artifact;
// -framework loads one instead of training (the source fingerprint must
// match this run's dataset and cutoff).
//
// Usage:
//
//	dita-sim -preset bk -day 25 -tasks 500 -workers 400 -alg IA
//	dita-sim -data ./data/bk -day 25 -alg EIA -mask IA-AW -v
//	dita-sim -preset bk -alg MI -pairs tiled -assign-csv /tmp/tiled.csv
//	dita-sim -stream -train-out /tmp/fw.json -assign-csv /tmp/stream.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"dita/internal/assign"
	"dita/internal/atomicio"
	"dita/internal/core"
	"dita/internal/dataset"
	"dita/internal/engine"
	"dita/internal/fwio"
	"dita/internal/influence"
	"dita/internal/model"
	"dita/internal/simulate"
	"dita/internal/trace"
)

func main() {
	log.SetFlags(0)
	var (
		dataDir = flag.String("data", "", "load a dataset directory written by dita-datagen (overrides -preset)")
		preset  = flag.String("preset", "bk", "generate a dataset preset: bk or fs")
		day     = flag.Int("day", 25, "evaluation day (training uses days before it)")
		tasks   = flag.Int("tasks", 500, "|S| tasks in the instance")
		workers = flag.Int("workers", 400, "|W| workers in the instance")
		valid   = flag.Float64("valid", 5, "task valid time ϕ in hours")
		radius  = flag.Float64("radius", 25, "worker reachable radius r in km")
		algName = flag.String("alg", "IA", "algorithm: MTA, IA, EIA, DIA, MI or MIX (exact max-influence ablation)")
		mask    = flag.String("mask", "IA", "influence components: IA (all), IA-WP, IA-AP or IA-AW")
		seed    = flag.Uint64("seed", 1, "instance sampling seed")
		par     = flag.Int("parallel", 0, "worker pool bound for the online phase (0 = all cores)")
		pairs   = flag.String("pairs", "global", "feasibility scan: global (one grid pass) or tiled (spatial partitioning); outputs are bit-identical")
		csvPath = flag.String("assign-csv", "", "write the assignment as CSV to this path (deterministic; for diffing runs)")
		verbose = flag.Bool("v", false, "print every assigned pair")

		fwPath   = flag.String("framework", "", "load a sealed framework artifact instead of training (source must match this run)")
		trainOut = flag.String("train-out", "", "seal the trained framework into this fwio artifact")

		stream     = flag.Bool("stream", false, "replay an arrival trace through the streaming engine instead of one snapshot instance")
		arrivals   = flag.Int("arrivals", 400, "stream: workers and tasks in the trace (one of each per index)")
		traceSeed  = flag.Uint64("trace-seed", 1, "stream: trace sampling seed")
		spread     = flag.Float64("spread", 12, "stream: arrival window length in hours, starting at the evaluation day")
		validSpan  = flag.Float64("valid-span", 2, "stream: task validity is uniform in [-valid, -valid + -valid-span)")
		step       = flag.Float64("step", 0.5, "stream: hours between assignment instants")
		horizon    = flag.Float64("horizon", 24, "stream: simulated hours after the evaluation day")
		sessionCap = flag.Int("session-cap", 0, "stream: bound the influence cache to this many entries, FIFO eviction (0 = unbounded)")
	)
	flag.Parse()

	alg, err := assign.ParseAlgorithm(*algName)
	if err != nil {
		log.Fatal(err)
	}
	comps, err := parseMask(*mask)
	if err != nil {
		log.Fatal(err)
	}

	var data *dataset.Data
	if *dataDir != "" {
		data, err = dataset.Load(*dataDir)
		if err != nil {
			log.Fatalf("load: %v", err)
		}
	} else {
		var p dataset.Params
		switch *preset {
		case "bk":
			p = dataset.BrightkiteLike()
		case "fs":
			p = dataset.FoursquareLike()
		default:
			log.Fatalf("unknown preset %q", *preset)
		}
		start := time.Now() //dita:wallclock
		data, err = dataset.Generate(p)
		if err != nil {
			log.Fatalf("generate: %v", err)
		}
		fmt.Printf("dataset %s generated in %.1fs (%d check-ins)\n",
			p.Name, time.Since(start).Seconds(), data.NumCheckIns()) //dita:wallclock
	}

	cutoff := float64(*day) * 24
	source := frameworkSource(data.Params, cutoff)
	var fw *core.Framework
	if *fwPath != "" {
		loaded, info, err := fwio.Load(*fwPath)
		if err != nil {
			log.Fatalf("framework: %v", err)
		}
		if info.Source != source {
			log.Fatalf("%s: artifact trained on %q, this run needs %q", *fwPath, info.Source, source)
		}
		fmt.Printf("loaded framework from %s (sha256 %.12s…)\n", *fwPath, info.Checksum)
		fw = loaded
	} else {
		start := time.Now() //dita:wallclock
		docs, vocab := data.Documents(cutoff)
		fw, err = core.Train(core.TrainingData{
			Graph:     data.Graph,
			Histories: data.HistoriesBefore(cutoff),
			Documents: docs,
			Vocab:     vocab,
			Records:   data.CheckInsBefore(cutoff),
		}, core.Config{TopWillingnessLocations: 8})
		if err != nil {
			log.Fatalf("train: %v", err)
		}
		fmt.Printf("framework trained in %.1fs\n", time.Since(start).Seconds()) //dita:wallclock
	}
	if *trainOut != "" {
		sum, err := fwio.Write(*trainOut, fw, source)
		if err != nil {
			log.Fatalf("train-out: %v", err)
		}
		fmt.Printf("framework sealed to %s (sha256 %.12s…)\n", *trainOut, sum)
	}

	if *stream {
		runStream(fw, data, streamParams{
			alg: alg, comps: comps, seed: *seed, par: *par, sessionCap: *sessionCap,
			arrivals: *arrivals, traceSeed: *traceSeed, start: cutoff, spread: *spread,
			radius: *radius, validMin: *valid, validSpan: *validSpan,
			step: *step, horizon: *horizon, csvPath: *csvPath,
		})
		return
	}

	inst, err := data.Snapshot(dataset.SnapshotParams{
		Day: *day, NumTasks: *tasks, NumWorkers: *workers,
		ValidHours: *valid, RadiusKm: *radius, Seed: *seed,
	})
	if err != nil {
		log.Fatalf("snapshot: %v", err)
	}

	start := time.Now() //dita:wallclock
	sess := fw.PrepareSession(comps, *seed, *par)
	ev := sess.Prepare(inst)
	fmt.Printf("influence model (%s) prepared in %.1fs\n", comps, time.Since(start).Seconds()) //dita:wallclock

	var feas []assign.Pair
	scanTiles := 0
	switch *pairs {
	case "global":
		feas = assign.FeasiblePairs(inst, fw.Speed())
	case "tiled":
		feas, scanTiles = assign.TiledFeasiblePairs(inst, fw.Speed(), *par)
	default:
		log.Fatalf("unknown -pairs mode %q (want global or tiled)", *pairs)
	}
	set, m, ts := fw.AssignPreparedPairsTiled(inst, ev, alg, feas, *par)
	ts.Tiles = scanTiles
	if err := set.Validate(len(inst.Tasks), len(inst.Workers)); err != nil {
		log.Fatalf("invalid assignment: %v", err)
	}

	fmt.Printf("\n%s on day %d (|S|=%d, |W|=%d, ϕ=%gh, r=%gkm):\n",
		alg, *day, *tasks, *workers, *valid, *radius)
	fmt.Printf("  assigned tasks       %d\n", m.Assigned)
	fmt.Printf("  feasible pairs       %d\n", m.Feasible)
	if ts.Tiles > 0 {
		fmt.Printf("  spatial tiles        %d\n", ts.Tiles)
	}
	fmt.Printf("  graph components     %d (largest %d pairs)\n", ts.Components, ts.LargestComponent)
	fmt.Printf("  average influence    %.4f\n", m.AI)
	fmt.Printf("  average propagation  %.4f\n", m.AP)
	fmt.Printf("  average travel       %.2f km\n", m.TravelKm)
	fmt.Printf("  assignment CPU       %s\n", m.CPU.Round(time.Millisecond))

	if *csvPath != "" {
		if err := writeAssignCSV(*csvPath, inst, set); err != nil {
			log.Fatalf("assign-csv: %v", err)
		}
		fmt.Printf("  assignment CSV       %s (%d rows)\n", *csvPath, set.Len())
	}

	if *verbose {
		fmt.Println("\nassignments:")
		for i, pr := range set.Pairs {
			fmt.Printf("  task %4d -> worker %4d (user %4d)  if=%.4f  d=%.2fkm\n",
				pr.Task, pr.Worker, inst.Workers[pr.Worker].User,
				set.Influence[i], set.TravelKm[i])
		}
	}
}

// streamParams bundles everything the -stream replay needs.
type streamParams struct {
	alg        assign.Algorithm
	comps      influence.Components
	seed       uint64
	par        int
	sessionCap int

	arrivals            int
	traceSeed           uint64
	start, spread       float64
	radius              float64
	validMin, validSpan float64
	step, horizon       float64
	csvPath             string
}

// runStream replays a deterministic arrival trace through the streaming
// engine on the instant grid and prints the run summary. The trace is
// rebuilt from (dataset, trace params) rather than shipped, so an
// independent process with the same flags — dita-bench -serve-load
// against a live dita-serve — replays the identical workload, and the
// two assignment CSVs can be diffed byte for byte.
func runStream(fw *core.Framework, data *dataset.Data, p streamParams) {
	ws, ts, err := trace.Build(data, trace.Params{
		Arrivals: p.arrivals, Seed: p.traceSeed, Start: p.start, Spread: p.spread,
		RadiusKm: p.radius, ValidMin: p.validMin, ValidSpan: p.validSpan,
	})
	if err != nil {
		log.Fatalf("trace: %v", err)
	}
	plat, err := simulate.New(fw, simulate.Config{
		Algorithm: p.alg, Components: p.comps, Seed: p.seed, Parallelism: p.par,
		Step: p.step, Start: p.start, Horizon: p.horizon, SessionCapacity: p.sessionCap,
	})
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Now() //dita:wallclock
	res, err := plat.Run(ws, ts)
	if err != nil {
		log.Fatalf("stream: %v", err)
	}
	elapsed := time.Since(wall) //dita:wallclock
	totals := plat.Engine().Totals()

	fmt.Printf("\n%s streamed over [%g, %g]h in %g-h instants (%d arrivals each side):\n",
		p.alg, p.start, p.start+p.horizon, p.step, p.arrivals)
	fmt.Printf("  instants             %d\n", totals.Instants)
	fmt.Printf("  assigned tasks       %d\n", totals.Assigned)
	fmt.Printf("  expired tasks        %d\n", totals.Expired)
	fmt.Printf("  completion rate      %.4f\n", res.CompletionRate)
	fmt.Printf("  still online/open    %d/%d\n", plat.Online(), plat.Open())
	fmt.Printf("  replay wall time     %s\n", elapsed.Round(time.Millisecond))

	if p.csvPath != "" {
		csv := engine.AssignCSV(res.Instants)
		if err := atomicio.WriteFile(p.csvPath, csv, 0o644); err != nil {
			log.Fatalf("assign-csv: %v", err)
		}
		fmt.Printf("  assignment CSV       %s (%d rows)\n", p.csvPath, totals.Assigned)
	}
}

// frameworkSource canonically identifies a framework's training input —
// the dataset parameters that shape the training set plus the
// offline/online cutoff. It must stay formatted exactly as dita-bench
// writes it, so artifacts sealed by either tool interoperate: a
// -framework load refuses an artifact fitted for a different run.
func frameworkSource(dp dataset.Params, cutoffHours float64) string {
	return fmt.Sprintf("dataset=%s users=%d venues=%d days=%d dataset-seed=%d cutoff-h=%g",
		dp.Name, dp.NumUsers, dp.NumVenues, dp.Days, dp.Seed, cutoffHours)
}

// writeAssignCSV dumps the assignment in a fully deterministic text
// form: floats print as the shortest decimal that parses back exactly,
// so two runs that are bit-identical produce byte-identical files — the
// property the tiled-vs-global CI smoke diffs on. The write goes
// through atomicio like every other artifact write, so a run killed
// mid-dump can never leave a torn CSV where the smoke's cmp (or any
// other consumer) would read it.
func writeAssignCSV(path string, inst *model.Instance, set *model.AssignmentSet) error {
	var b strings.Builder
	b.WriteString("task,worker,user,influence,travel_km\n")
	for i, pr := range set.Pairs {
		fmt.Fprintf(&b, "%d,%d,%d,%s,%s\n",
			pr.Task, pr.Worker, inst.Workers[pr.Worker].User,
			strconv.FormatFloat(set.Influence[i], 'g', -1, 64),
			strconv.FormatFloat(set.TravelKm[i], 'g', -1, 64))
	}
	return atomicio.WriteFile(path, []byte(b.String()), 0o644)
}

func parseMask(s string) (influence.Components, error) {
	switch s {
	case "IA", "all", "ALL":
		return influence.All, nil
	case "IA-WP", "WP":
		return influence.WP, nil
	case "IA-AP", "AP":
		return influence.AP, nil
	case "IA-AW", "AW":
		return influence.AW, nil
	}
	return 0, fmt.Errorf("unknown mask %q (want IA, IA-WP, IA-AP or IA-AW)", s)
}
