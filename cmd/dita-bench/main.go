// Command dita-bench regenerates the paper's evaluation figures (5–16)
// on the simulated Brightkite-like and FourSquare-like datasets and
// prints each figure's series as aligned tables (and optionally CSV).
//
// Usage:
//
//	dita-bench [-datasets bk,fs] [-figures all|5,9,15] [-scale full|quick]
//	           [-csv dir] [-days n]
//
// A full run with -scale full uses Table II defaults (|S|=1500, |W|=1200,
// ϕ=5h, r=25km, sweeps as in the paper) and takes a few minutes; -scale
// quick shrinks instance sizes ~5× for a fast smoke pass.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"dita/internal/core"
	"dita/internal/dataset"
	"dita/internal/experiments"
)

func main() {
	log.SetFlags(0)
	var (
		datasetsFlag = flag.String("datasets", "bk,fs", "comma-separated datasets: bk, fs")
		figuresFlag  = flag.String("figures", "all", "comma-separated figure numbers (5-16) or 'all'")
		scale        = flag.String("scale", "full", "experiment scale: full (Table II) or quick")
		csvDir       = flag.String("csv", "", "directory to also write per-figure CSV files")
		days         = flag.Int("days", 0, "override the number of evaluation days")
		seed         = flag.Uint64("seed", 42, "experiment seed")
	)
	flag.Parse()

	wanted := map[int]bool{}
	if *figuresFlag == "all" {
		for f := 5; f <= 16; f++ {
			wanted[f] = true
		}
	} else {
		for _, tok := range strings.Split(*figuresFlag, ",") {
			f, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || f < 5 || f > 16 {
				log.Fatalf("bad figure %q (want 5..16)", tok)
			}
			wanted[f] = true
		}
	}

	for _, name := range strings.Split(*datasetsFlag, ",") {
		name = strings.TrimSpace(strings.ToLower(name))
		var dp dataset.Params
		switch name {
		case "bk":
			dp = dataset.BrightkiteLike()
		case "fs":
			dp = dataset.FoursquareLike()
		default:
			log.Fatalf("unknown dataset %q (want bk or fs)", name)
		}
		runDataset(dp, wanted, *scale, *csvDir, *days, *seed)
	}
}

func runDataset(dp dataset.Params, wanted map[int]bool, scale, csvDir string, daysOverride int, seed uint64) {
	isBK := dp.Name == "BK"
	// Figures on this dataset: odd numbers are BK, even are FS, except
	// the ablation figures 5-8 which the paper shows for both (panels a
	// and b).
	any := false
	for f := range wanted {
		if f <= 8 || (isBK == (f%2 == 1)) {
			any = true
		}
	}
	if !any {
		return
	}

	params := experiments.Default()
	taskSweep := experiments.TaskSweep
	workerSweep := experiments.WorkerSweep
	if scale == "quick" {
		params = experiments.Quick()
		taskSweep = []int{100, 200, 300, 400, 500}
		workerSweep = []int{80, 160, 240, 320, 400}
	}
	params.Seed = seed
	if daysOverride > 0 {
		params.Days = params.Days[:0]
		last := dp.Days - 1
		for d := last - daysOverride + 1; d <= last; d++ {
			params.Days = append(params.Days, d)
		}
	}

	fmt.Printf("=== dataset %s: generating (%d users, %d venues, %d days, seed %d)\n",
		dp.Name, dp.NumUsers, dp.NumVenues, dp.Days, dp.Seed)
	start := time.Now()
	data, err := dataset.Generate(dp)
	if err != nil {
		log.Fatalf("generate %s: %v", dp.Name, err)
	}
	fmt.Printf("    %d check-ins, %d social edges (%.1fs)\n",
		data.NumCheckIns(), data.Graph.M(), time.Since(start).Seconds())

	start = time.Now()
	runner, err := experiments.NewRunner(data, core.Config{TopWillingnessLocations: 8}, params)
	if err != nil {
		log.Fatalf("train %s: %v", dp.Name, err)
	}
	fmt.Printf("    DITA framework trained (%.1fs): %d RRR sets, %d mobility models\n\n",
		time.Since(start).Seconds(),
		runner.FW.Propagation().NumSets(), runner.FW.Mobility().NumWorkers())

	type job struct {
		fig  int
		only experiments.Metric // zero = all metrics
		run  func() (*experiments.Result, error)
	}
	jobs := []job{
		{5, experiments.MetricAI, func() (*experiments.Result, error) { return runner.AblationTasks(taskSweep) }},
		{6, experiments.MetricAI, func() (*experiments.Result, error) { return runner.AblationWorkers(workerSweep) }},
		{7, experiments.MetricAI, func() (*experiments.Result, error) { return runner.AblationValidTime(experiments.ValidTimeSweep) }},
		{8, experiments.MetricAI, func() (*experiments.Result, error) { return runner.AblationRadius(experiments.RadiusSweep) }},
	}
	if isBK {
		jobs = append(jobs,
			job{9, "", func() (*experiments.Result, error) { return runner.CompareTasks(taskSweep) }},
			job{11, "", func() (*experiments.Result, error) { return runner.CompareWorkers(workerSweep) }},
			job{13, "", func() (*experiments.Result, error) { return runner.CompareValidTime(experiments.ValidTimeSweep) }},
			job{15, "", func() (*experiments.Result, error) { return runner.CompareRadius(experiments.RadiusSweep) }},
		)
	} else {
		jobs = append(jobs,
			job{10, "", func() (*experiments.Result, error) { return runner.CompareTasks(taskSweep) }},
			job{12, "", func() (*experiments.Result, error) { return runner.CompareWorkers(workerSweep) }},
			job{14, "", func() (*experiments.Result, error) { return runner.CompareValidTime(experiments.ValidTimeSweep) }},
			job{16, "", func() (*experiments.Result, error) { return runner.CompareRadius(experiments.RadiusSweep) }},
		)
	}

	for _, j := range jobs {
		if !wanted[j.fig] {
			continue
		}
		start := time.Now()
		res, err := j.run()
		if err != nil {
			log.Fatalf("figure %d on %s: %v", j.fig, dp.Name, err)
		}
		if j.only != "" {
			res.FormatTable(os.Stdout, j.only)
			fmt.Println()
		} else {
			res.FormatAll(os.Stdout, experiments.AllMetrics)
		}
		fmt.Printf("    [figure %d on %s finished in %.1fs]\n\n", j.fig, dp.Name, time.Since(start).Seconds())
		if csvDir != "" {
			if err := writeCSV(csvDir, fmt.Sprintf("fig%02d_%s.csv", j.fig, strings.ToLower(dp.Name)), res); err != nil {
				log.Fatalf("csv: %v", err)
			}
		}
	}
}

func writeCSV(dir, name string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := res.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
