// Command dita-bench regenerates the paper's evaluation figures (5–16)
// on the simulated Brightkite-like and FourSquare-like datasets and
// prints each figure's series as aligned tables (and optionally CSV).
//
// Usage:
//
//	dita-bench [-datasets bk,fs] [-figures all|5,9,15] [-scale full|quick]
//	           [-csv dir] [-days n] [-parallel n] [-rrrbench file.json]
//	           [-simbench file.json]
//	           [-train-out fw_bk.json,fw_fs.json | -framework fw_bk.json,fw_fs.json]
//	           [-shard k/N -shard-out file.json] [-merge 'glob']
//	           [-orchestrate N -shard-dir dir]
//
// A full run with -scale full uses Table II defaults (|S|=1500, |W|=1200,
// ϕ=5h, r=25km, sweeps as in the paper) and takes a few minutes; -scale
// quick shrinks instance sizes ~5× for a fast smoke pass.
//
// -shard k/N runs this process as worker k of an N-way sharded sweep:
// only its deterministic slice of every figure's (sweep value × day)
// job grid is evaluated, and the raw per-job metrics are written to
// -shard-out as a JSON artifact instead of tables. Run all N workers
// (any machines, any order) with identical -datasets/-figures/-scale/
// -days/-seed flags, then combine the artifacts with -merge 'glob',
// which validates the set (no missing, duplicate or overlapping shard)
// and emits the usual tables and CSV — bit-identical to a
// single-process run in every column except cpu_ms, which is each
// process's measured wall clock.
//
// Sharded workers are crash-safe: every completed (figure, x, day) job
// is appended to a checkpoint journal (<shard-out>.journal) before the
// sweep moves on, the final artifact is written atomically
// (write-to-temp + fsync + rename) and sealed with a content checksum
// that every load verifies, and a relaunched worker replays the journal
// and re-runs only unfinished jobs. SIGINT/SIGTERM flush the journal,
// scrub temp files and exit with code 75, which a supervisor treats as
// retryable.
//
// -orchestrate N runs the whole sharded sweep under supervision: it
// spawns the N shard workers as subprocesses (artifacts in -shard-dir),
// restarts crashed, interrupted, corrupt-output or deadline-overrunning
// workers with capped exponential backoff (deterministic jitter),
// fails fast after repeated identical deterministic failures, and
// finishes with the validating merge — one command from nothing to
// fault-tolerant figures. The orchestrator trains each dataset's
// framework exactly once (into -shard-dir) and hands the sealed
// artifact to every worker, so an N-way sweep pays for one training,
// not N.
//
// -train-out trains the framework for each dataset (one artifact path
// per -datasets entry) and exits: the offline phase of Figure 2,
// persisted. The artifact is a versioned JSON envelope sealed with a
// SHA-256 content checksum, written atomically. -framework is the
// serving half: it loads pre-trained artifacts instead of training, in
// normal, shard-worker and orchestrate runs (and -simbench takes a
// single artifact). Every load verifies the seal and that the artifact
// was trained for this run's dataset and cutoff; a sweep served from an
// artifact is bit-identical to one that retrained in-process (cpu_ms
// wall clock aside).
//
// -parallel bounds the worker pool used for the whole training phase
// (dataset generation, LDA Gibbs, mobility fitting, RRR sampling) and
// the (day × sweep-value) fan-out; 0 (the default) means all cores.
// Every figure's series is bit-identical for every setting — only the
// CPU(ms) column, which times each assignment's own wall clock, moves.
//
// -rrrbench skips the figures and instead measures rrr.Build plus the
// training-phase hot spots (datagen, LDA, mobility) at parallelism 1, 2
// and GOMAXPROCS, writing a machine-readable JSON report (ns/op,
// allocs/op, sets/sec, per-phase ms per point) so successive PRs have a
// comparable perf trajectory.
//
// -simbench runs a streaming day twice — rebuilding the online phase
// cold every instant vs. the warm incremental session — and records the
// per-instant influence-preparation and feasible-pair latency into the
// same JSON report (merging with an existing -rrrbench file),
// demonstrating what the session cache skips for carried-over tasks and
// workers. It also measures pair maintenance alone at production-scale
// pools (pair_bench): the cold FeasiblePairs rescan vs. the tiled cold
// scan vs. the incremental assign.PairIndex over a 100-instant churn at
// ~12k standing workers.
//
// -pairbench runs the same pair-maintenance churn as a standalone scale
// sweep: one point per -pair-scale pool size (50k and 100k by default,
// up to 1m), each recording the cold, tiled-cold and incremental-index
// totals plus the tile count, written as the pair_bench_scale array of
// the same JSON report.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"dita/internal/assign"
	"dita/internal/atomicio"
	"dita/internal/core"
	"dita/internal/dataset"
	"dita/internal/experiments"
	"dita/internal/fwio"
	"dita/internal/geo"
	"dita/internal/lda"
	"dita/internal/mobility"
	"dita/internal/model"
	"dita/internal/parallel"
	"dita/internal/randx"
	"dita/internal/rrr"
	"dita/internal/simulate"
	"dita/internal/socialgraph"
)

func main() {
	log.SetFlags(0)
	var (
		datasetsFlag = flag.String("datasets", "bk,fs", "comma-separated datasets: bk, fs")
		figuresFlag  = flag.String("figures", "all", "comma-separated figure numbers (5-16) or 'all'")
		scale        = flag.String("scale", "full", "experiment scale: full (Table II) or quick")
		csvDir       = flag.String("csv", "", "directory to also write per-figure CSV files")
		days         = flag.Int("days", 0, "override the number of evaluation days")
		seed         = flag.Uint64("seed", 42, "experiment seed")
		par          = flag.Int("parallel", 0, "worker pool bound for sampling and sweeps (0 = all cores)")
		rrrBench     = flag.String("rrrbench", "", "write an rrr.Build scaling report to this JSON file and exit")
		simBench     = flag.String("simbench", "", "record per-instant online-phase latency (cold vs warm session) into this JSON file and exit")
		pairBench    = flag.String("pairbench", "", "record the pair-maintenance scale sweep (cold vs tiled vs incremental) into this JSON file and exit")
		pairScale    = flag.String("pair-scale", "50000,100000", "comma-separated steady-state worker-pool sizes for -pairbench")
		trainOut     = flag.String("train-out", "", "train the framework(s) and write sealed artifacts to these paths (one per -datasets entry), then exit")
		framework    = flag.String("framework", "", "load pre-trained framework artifacts from these paths (one per -datasets entry) instead of training")
		shardFlag    = flag.String("shard", "", "run as worker k of an N-way sharded sweep (k/N); requires -shard-out")
		shardOut     = flag.String("shard-out", "", "file the sharded worker writes its raw-metrics JSON artifact to")
		mergeFlag    = flag.String("merge", "", "merge shard artifacts matching this glob into the figures and exit")
		orchestrate  = flag.Int("orchestrate", 0, "supervise an N-way sharded sweep: spawn, retry and merge N shard workers")
		shardDir     = flag.String("shard-dir", "", "directory for the orchestrated workers' artifacts (default: a temp dir, removed on success)")
		shardTimeout = flag.Duration("shard-timeout", 15*time.Minute, "per-attempt deadline for an orchestrated worker (0 = none)")
		retries      = flag.Int("retries", 3, "how many times the orchestrator relaunches a failed worker")
		retryBase    = flag.Duration("retry-base", time.Second, "base delay of the orchestrator's capped exponential backoff")

		serveLoad      = flag.String("serve-load", "", "replay a trace against a running dita-serve at this base URL (e.g. http://127.0.0.1:8080) and exit")
		serveRegion    = flag.String("serve-region", "default", "serve-load: target region")
		servePreset    = flag.String("serve-preset", "bk", "serve-load: dataset preset the trace samples from (must match the server's framework)")
		serveDay       = flag.Int("serve-day", 25, "serve-load: evaluation day; the trace and grid start at day*24h")
		serveArrivals  = flag.Int("serve-arrivals", 400, "serve-load: workers and tasks in the trace")
		serveTraceSeed = flag.Uint64("serve-trace-seed", 1, "serve-load: trace sampling seed")
		serveSpread    = flag.Float64("serve-spread", 12, "serve-load: arrival window length in hours")
		serveRadius    = flag.Float64("serve-radius", 25, "serve-load: worker reachable radius in km")
		serveValid     = flag.Float64("serve-valid", 5, "serve-load: minimum task validity in hours")
		serveValidSpan = flag.Float64("serve-valid-span", 2, "serve-load: task validity is uniform in [valid, valid+span)")
		serveStep      = flag.Float64("serve-step", 0.5, "serve-load: hours between explicit instants (deterministic mode)")
		serveHorizon   = flag.Float64("serve-horizon", 24, "serve-load: simulated hours replayed after the evaluation day")
		serveSpeedup   = flag.Float64("serve-speedup", 0, "serve-load: wall-clock pacing multiple of trace time; 0 = deterministic grid replay with explicit instants")
	)
	flag.Parse()

	if *serveLoad != "" {
		if *shardFlag != "" || *shardOut != "" || *mergeFlag != "" || *orchestrate != 0 || *trainOut != "" || *framework != "" {
			log.Fatal("-serve-load is a standalone client mode; it cannot be combined with -shard/-merge/-orchestrate/-train-out/-framework")
		}
		if err := runServeLoad(serveLoadConfig{
			url: *serveLoad, region: *serveRegion, preset: *servePreset,
			day: *serveDay, arrivals: *serveArrivals, traceSeed: *serveTraceSeed,
			spread: *serveSpread, radius: *serveRadius,
			valid: *serveValid, validSpan: *serveValidSpan,
			step: *serveStep, horizon: *serveHorizon, speedup: *serveSpeedup,
		}); err != nil {
			log.Fatalf("serve-load: %v", err)
		}
		return
	}

	if *rrrBench != "" || *simBench != "" || *pairBench != "" {
		if *shardFlag != "" || *shardOut != "" || *mergeFlag != "" || *orchestrate != 0 {
			log.Fatal("-rrrbench/-simbench/-pairbench are standalone modes; they cannot be combined with -shard/-shard-out/-merge/-orchestrate")
		}
	}
	if *trainOut != "" && *framework != "" {
		log.Fatal("-train-out and -framework are mutually exclusive: train fresh or serve a saved framework, not both")
	}
	if *rrrBench != "" && (*trainOut != "" || *framework != "") {
		log.Fatal("-rrrbench measures training itself; -train-out/-framework do not apply")
	}
	if *mergeFlag != "" && (*trainOut != "" || *framework != "") {
		log.Fatal("-merge combines finished artifacts; -train-out/-framework do not apply")
	}
	if *orchestrate != 0 && *trainOut != "" {
		log.Fatal("-orchestrate trains once into -shard-dir automatically; -train-out is a standalone mode")
	}
	if *trainOut != "" && (*shardFlag != "" || *shardOut != "") {
		log.Fatal("-train-out is a whole-framework training mode; it cannot be combined with -shard/-shard-out")
	}
	names := splitList(*datasetsFlag)
	for _, name := range names {
		if _, err := datasetPreset(name); err != nil {
			log.Fatal(err)
		}
	}
	installSignalHandler()
	if *rrrBench != "" {
		if err := writeRRRBench(*rrrBench); err != nil {
			log.Fatalf("rrrbench: %v", err)
		}
		return
	}
	if *simBench != "" {
		if err := writeSimBench(*simBench, *par, *framework, *trainOut); err != nil {
			log.Fatalf("simbench: %v", err)
		}
		return
	}
	if *pairBench != "" {
		scales, err := parseScales(*pairScale)
		if err != nil {
			log.Fatalf("pairbench: %v", err)
		}
		if err := writePairBench(*pairBench, scales, *par); err != nil {
			log.Fatalf("pairbench: %v", err)
		}
		return
	}
	if *mergeFlag != "" {
		if *shardFlag != "" || *shardOut != "" || *orchestrate != 0 {
			log.Fatal("-merge is a coordinator mode; it cannot be combined with -shard/-shard-out/-orchestrate")
		}
		if err := runMerge(*mergeFlag, *csvDir); err != nil {
			log.Fatalf("merge: %v", err)
		}
		return
	}
	if *orchestrate != 0 {
		if *shardFlag != "" || *shardOut != "" {
			log.Fatal("-orchestrate is a supervisor mode; it cannot be combined with -shard/-shard-out")
		}
		var fwPaths []string
		if *framework != "" {
			// Validate the artifacts now — seal, source, dataset alignment —
			// so a bad path fails here, not inside N workers in parallel.
			var err error
			if _, _, err = loadFrameworks(*framework, names, *scale, *days, *seed, *par); err != nil {
				log.Fatalf("framework: %v", err)
			}
			fwPaths = splitList(*framework)
		}
		err := runOrchestrate(orchestrateConfig{
			workers:    *orchestrate,
			shardDir:   *shardDir,
			csvDir:     *csvDir,
			timeout:    *shardTimeout,
			maxRetries: *retries,
			retryBase:  *retryBase,
			seed:       *seed,
			datasets:   names,
			frameworks: fwPaths,
			trainFramework: func(name, outPath string) (string, error) {
				dp, err := datasetPreset(name)
				if err != nil {
					return "", err
				}
				return trainArtifact(dp, *scale, *days, *seed, *par, outPath)
			},
			workerArgs: []string{
				"-datasets", *datasetsFlag,
				"-figures", *figuresFlag,
				"-scale", *scale,
				"-days", strconv.Itoa(*days),
				"-seed", strconv.FormatUint(*seed, 10),
				"-parallel", strconv.Itoa(*par),
			},
		})
		if err != nil {
			log.Fatalf("orchestrate: %v", err)
		}
		return
	}
	if *trainOut != "" {
		paths := splitList(*trainOut)
		if len(paths) != len(names) {
			log.Fatalf("-train-out needs one artifact path per dataset: %d datasets, %d paths", len(names), len(paths))
		}
		for i, name := range names {
			dp, _ := datasetPreset(name)
			sum, err := trainArtifact(dp, *scale, *days, *seed, *par, paths[i])
			if err != nil {
				log.Fatalf("train-out: %v", err)
			}
			fmt.Printf("trained framework for %s -> %s (sha256 %.12s…)\n", name, paths[i], sum)
		}
		return
	}
	if *shardDir != "" {
		log.Fatal("-shard-dir only applies to -orchestrate")
	}
	var shard experiments.Shard
	if *shardFlag != "" {
		var err error
		if shard, err = experiments.ParseShard(*shardFlag); err != nil {
			log.Fatal(err)
		}
		if *shardOut == "" {
			log.Fatal("-shard requires -shard-out (the artifact the worker writes)")
		}
		if *csvDir != "" {
			log.Fatal("-csv is a coordinator output; a sharded worker holds only a partial grid (pass -csv to -merge instead)")
		}
	} else if *shardOut != "" {
		log.Fatal("-shard-out requires -shard")
	}

	wanted := map[int]bool{}
	if *figuresFlag == "all" {
		for f := 5; f <= 16; f++ {
			wanted[f] = true
		}
	} else {
		for _, tok := range strings.Split(*figuresFlag, ",") {
			f, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || f < 5 || f > 16 {
				log.Fatalf("bad figure %q (want 5..16)", tok)
			}
			wanted[f] = true
		}
	}

	// Pre-trained frameworks are loaded before the journal opens so their
	// checksums can be bound into the journal signature below.
	var (
		fws    []*core.Framework
		fwSums []string
	)
	if *framework != "" {
		var err error
		if fws, fwSums, err = loadFrameworks(*framework, names, *scale, *days, *seed, *par); err != nil {
			log.Fatalf("framework: %v", err)
		}
	}

	// A sharded worker checkpoints every completed job into a journal
	// next to its artifact, so a crashed or killed worker's relaunch
	// resumes mid-grid instead of re-running the whole slice. The
	// journal is bound to the exact invocation (flags, shard, seed) AND
	// the framework source — the artifact checksums when serving saved
	// frameworks, the literal trained-from-seed otherwise — so a journal
	// written under one framework can never splice its jobs into a run
	// under another: a leftover journal from different flags or a
	// foreign framework is rejected, not replayed.
	var journal *experiments.Journal
	if *shardFlag != "" {
		fwSrc := "trained-from-seed"
		if len(fwSums) > 0 {
			fwSrc = strings.Join(fwSums, ",")
		}
		sig := fmt.Sprintf("datasets=%s figures=%s scale=%s days=%d fw=%s", *datasetsFlag, *figuresFlag, *scale, *days, fwSrc)
		var err error
		journal, err = experiments.OpenJournal(*shardOut+journalSuffix, sig, shard, *seed)
		if err != nil {
			log.Fatalf("journal: %v", err)
		}
		activeJournal.Store(journal)
		if journal.Truncated {
			log.Printf("shard %s: journal %s had a torn tail (crashed predecessor); dropped it, intact records kept", shard, journal.Path())
		}
		if n := journal.Resumed(); n > 0 {
			fmt.Printf("shard %s: resumed %d completed jobs from journal %s\n", shard, n, journal.Path())
		}
	}

	var shardFigs []*experiments.SweepRaw
	for i, name := range names {
		dp, _ := datasetPreset(name)
		var fw *core.Framework
		if fws != nil {
			fw = fws[i]
		}
		shardFigs = append(shardFigs, runDataset(dp, fw, wanted, *scale, *csvDir, *days, *seed, *par, shard, *shardFlag != "", journal)...)
	}
	if *shardFlag != "" {
		sr := &experiments.ShardResult{Shard: shard, Seed: *seed, Figures: shardFigs}
		out, err := sr.Encode()
		if err != nil {
			log.Fatalf("shard-out: %v", err)
		}
		if err := atomicio.WriteFile(*shardOut, out, 0o644); err != nil {
			log.Fatalf("shard-out: %v", err)
		}
		// The artifact is sealed and durable; the journal is now
		// redundant and would only confuse a later invocation.
		activeJournal.Store(nil)
		if err := journal.Remove(); err != nil {
			log.Fatalf("journal: %v", err)
		}
		jobs, resumed := 0, 0
		for _, raw := range shardFigs {
			jobs += len(raw.Jobs)
			resumed += raw.Resumed
		}
		fmt.Printf("shard %s: wrote %d figures (%d jobs, %d resumed) to %s\n", shard, len(shardFigs), jobs, resumed, *shardOut)
	}
}

// journalSuffix derives a worker's checkpoint-journal path from its
// artifact path.
const journalSuffix = ".journal"

// retryableExitCode is the exit status a worker uses for "I was
// interrupted, my checkpoint is flushed, run me again" — EX_TEMPFAIL by
// sysexits convention. The orchestrator retries it without counting it
// toward the identical-failure fail-fast.
const retryableExitCode = 75

// activeJournal is the journal the signal handler flushes: set once the
// worker opens it, cleared once the sealed artifact makes it redundant.
var activeJournal atomic.Pointer[experiments.Journal]

// installSignalHandler makes SIGINT/SIGTERM a clean, retryable death:
// flush the checkpoint journal so no completed job is lost, scrub
// in-flight temp files so no *.tmp debris survives, and exit with the
// code supervisors treat as "relaunch me". (SIGKILL is untrappable —
// that path is covered by the journal's per-record fsync and the
// loaders' temp-skipping and checksum validation instead.)
func installSignalHandler() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-ch
		if j := activeJournal.Load(); j != nil {
			j.Sync()
		}
		atomicio.RemoveTemps()
		fmt.Fprintf(os.Stderr, "dita-bench: caught %v; checkpoint flushed, exiting retryable\n", s)
		os.Exit(retryableExitCode)
	}()
}

// runMerge combines the shard artifacts matching glob into full figure
// grids, validates completeness, and emits the usual tables (and CSV):
// the coordinator half of a sharded sweep. No dataset generation or
// training happens here — everything needed is in the artifacts.
func runMerge(glob, csvDir string) error {
	paths, tmps, err := experiments.GlobArtifacts(glob)
	if err != nil {
		return err
	}
	for _, tmp := range tmps {
		log.Printf("warning: skipping leftover temp artifact %s (a writer died mid-write)", tmp)
	}
	if len(paths) == 0 {
		return fmt.Errorf("no shard artifacts match %q", glob)
	}
	shards, err := experiments.LoadShardSet(paths)
	if err != nil {
		return err
	}
	for i, sr := range shards {
		fmt.Printf("loaded shard %s from %s (%d figures)\n", sr.Shard, paths[i], len(sr.Figures))
	}
	raws, err := experiments.MergeRaw(shards)
	if err != nil {
		return err
	}
	fmt.Println()
	for _, raw := range raws {
		res, err := raw.Reduce()
		if err != nil {
			return err
		}
		printFigure(res, experiments.FigureMetrics(raw.Fig))
		if csvDir != "" {
			if err := writeCSV(csvDir, csvName(raw.Fig, raw.Dataset), res); err != nil {
				return err
			}
		}
	}
	return nil
}

// printFigure renders one figure's tables: the single-metric form for
// the ablations, all five tables otherwise.
func printFigure(res *experiments.Result, metrics []experiments.Metric) {
	if len(metrics) == 1 {
		res.FormatTable(os.Stdout, metrics[0])
		fmt.Println()
		return
	}
	res.FormatAll(os.Stdout, metrics)
}

func csvName(fig int, dataset string) string {
	return fmt.Sprintf("fig%02d_%s.csv", fig, strings.ToLower(dataset))
}

// splitList splits a comma-separated flag value into trimmed non-empty
// entries.
func splitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// parseScales parses the -pair-scale list: positive integers, with an
// optional k/m suffix (50k, 1m) since the values are pool sizes.
func parseScales(s string) ([]int, error) {
	var out []int
	for _, tok := range splitList(s) {
		mult := 1
		switch {
		case strings.HasSuffix(tok, "k"), strings.HasSuffix(tok, "K"):
			mult, tok = 1000, tok[:len(tok)-1]
		case strings.HasSuffix(tok, "m"), strings.HasSuffix(tok, "M"):
			mult, tok = 1000000, tok[:len(tok)-1]
		}
		n, err := strconv.Atoi(tok)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -pair-scale entry %q (want a positive pool size, e.g. 50000 or 50k)", tok)
		}
		out = append(out, n*mult)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-pair-scale lists no sizes")
	}
	return out, nil
}

// datasetPreset maps a -datasets entry to its generator parameters.
func datasetPreset(name string) (dataset.Params, error) {
	switch strings.ToLower(name) {
	case "bk":
		return dataset.BrightkiteLike(), nil
	case "fs":
		return dataset.FoursquareLike(), nil
	default:
		return dataset.Params{}, fmt.Errorf("unknown dataset %q (want bk or fs)", name)
	}
}

// evalParams resolves the evaluation protocol for one dataset: the
// scale's parameter set and sweep grids, with the seed, pool bound and
// day-window override applied.
func evalParams(dp dataset.Params, scale string, daysOverride int, seed uint64, par int) (experiments.Params, experiments.Sweeps) {
	params := experiments.Default()
	sweeps := experiments.DefaultSweeps()
	if scale == "quick" {
		params = experiments.Quick()
		sweeps = experiments.QuickSweeps()
	}
	params.Seed = seed
	params.Parallelism = par
	if daysOverride > 0 {
		params.Days = params.Days[:0]
		last := dp.Days - 1
		for d := last - daysOverride + 1; d <= last; d++ {
			params.Days = append(params.Days, d)
		}
	}
	return params, sweeps
}

// trainConfig is the framework training configuration every mode of
// this command shares; artifacts are only interchangeable with
// retraining because both sides use it.
func trainConfig(par int) core.Config {
	return core.Config{TopWillingnessLocations: 8, Parallelism: par}
}

// frameworkSource canonically identifies a framework's training input:
// the dataset generator parameters that matter for the training set and
// the offline/online cutoff. It is recorded into the artifact at
// -train-out and recomputed at -framework load; a mismatch means the
// artifact was fitted for a different run and must not serve it.
func frameworkSource(dp dataset.Params, cutoffHours float64) string {
	return fmt.Sprintf("dataset=%s users=%d venues=%d days=%d dataset-seed=%d cutoff-h=%g",
		dp.Name, dp.NumUsers, dp.NumVenues, dp.Days, dp.Seed, cutoffHours)
}

// trainArtifact runs the offline phase for one dataset — generate,
// train, seal — and writes the framework artifact to outPath, returning
// its content checksum.
func trainArtifact(dp dataset.Params, scale string, daysOverride int, seed uint64, par int, outPath string) (string, error) {
	params, _ := evalParams(dp, scale, daysOverride, seed, par)
	cutoff, err := params.TrainingCutoff()
	if err != nil {
		return "", err
	}
	dp.Parallelism = par
	start := time.Now() //dita:wallclock
	data, err := dataset.Generate(dp)
	if err != nil {
		return "", fmt.Errorf("generate %s: %w", dp.Name, err)
	}
	runner, err := experiments.NewRunner(data, trainConfig(par), params)
	if err != nil {
		return "", fmt.Errorf("train %s: %w", dp.Name, err)
	}
	sum, err := fwio.Write(outPath, runner.FW, frameworkSource(dp, cutoff))
	if err != nil {
		return "", err
	}
	fmt.Printf("    %s: trained in %.1fs (%d RRR sets, %d mobility models)\n",
		dp.Name, time.Since(start).Seconds(), //dita:wallclock
		runner.FW.Propagation().NumSets(), runner.FW.Mobility().NumWorkers())
	return sum, nil
}

// loadFrameworks loads one pre-trained artifact per dataset and checks
// each against the training input this invocation would have used —
// same dataset parameters, same cutoff — so a framework can never serve
// a sweep it was not fitted for. Returns the frameworks and their
// content checksums (the journal-signature binding).
func loadFrameworks(list string, names []string, scale string, daysOverride int, seed uint64, par int) ([]*core.Framework, []string, error) {
	paths := splitList(list)
	if len(paths) != len(names) {
		return nil, nil, fmt.Errorf("-framework needs one artifact per dataset: %d datasets, %d paths", len(names), len(paths))
	}
	var (
		fws  []*core.Framework
		sums []string
	)
	for i, name := range names {
		dp, err := datasetPreset(name)
		if err != nil {
			return nil, nil, err
		}
		params, _ := evalParams(dp, scale, daysOverride, seed, par)
		cutoff, err := params.TrainingCutoff()
		if err != nil {
			return nil, nil, err
		}
		fw, info, err := fwio.Load(paths[i])
		if err != nil {
			return nil, nil, err
		}
		if want := frameworkSource(dp, cutoff); info.Source != want {
			return nil, nil, fmt.Errorf("%s: artifact trained on %q, this run needs %q", paths[i], info.Source, want)
		}
		fmt.Printf("loaded framework for %s from %s (sha256 %.12s…)\n", name, paths[i], info.Checksum)
		fws = append(fws, fw)
		sums = append(sums, info.Checksum)
	}
	return fws, sums, nil
}

// runDataset evaluates the wanted figures on one dataset, serving from
// the pre-trained framework when fw is non-nil and training in-process
// otherwise. In normal mode it prints tables (and optional CSV) and
// returns nil; as a sharded worker it runs only the shard's slice of
// each figure's job grid and returns the raw sweeps for the caller's
// artifact.
func runDataset(dp dataset.Params, fw *core.Framework, wanted map[int]bool, scale, csvDir string, daysOverride int, seed uint64, par int, shard experiments.Shard, workerMode bool, journal *experiments.Journal) []*experiments.SweepRaw {
	any := false
	for f := range wanted {
		if experiments.FigureOnDataset(f, dp.Name) {
			any = true
		}
	}
	if !any {
		return nil
	}

	params, sweeps := evalParams(dp, scale, daysOverride, seed, par)
	params.Shard = shard
	if journal != nil {
		params.Checkpoint = journal
	}

	fmt.Printf("=== dataset %s: generating (%d users, %d venues, %d days, seed %d)\n",
		dp.Name, dp.NumUsers, dp.NumVenues, dp.Days, dp.Seed)
	start := time.Now() //dita:wallclock
	dp.Parallelism = par
	data, err := dataset.Generate(dp)
	if err != nil {
		log.Fatalf("generate %s: %v", dp.Name, err)
	}
	fmt.Printf("    %d check-ins, %d social edges (%.1fs)\n",
		data.NumCheckIns(), data.Graph.M(), time.Since(start).Seconds()) //dita:wallclock

	start = time.Now() //dita:wallclock
	var runner *experiments.Runner
	if fw != nil {
		runner, err = experiments.NewRunnerFromFramework(data, fw, params)
		if err != nil {
			log.Fatalf("framework %s: %v", dp.Name, err)
		}
		fmt.Printf("    DITA framework served from artifact: %d RRR sets, %d mobility models\n\n",
			runner.FW.Propagation().NumSets(), runner.FW.Mobility().NumWorkers())
	} else {
		runner, err = experiments.NewRunner(data, trainConfig(par), params)
		if err != nil {
			log.Fatalf("train %s: %v", dp.Name, err)
		}
		fmt.Printf("    DITA framework trained (%.1fs): %d RRR sets, %d mobility models\n\n",
			time.Since(start).Seconds(), //dita:wallclock
			runner.FW.Propagation().NumSets(), runner.FW.Mobility().NumWorkers())
	}

	var out []*experiments.SweepRaw
	for fig := 5; fig <= 16; fig++ {
		if !wanted[fig] || !runner.HasFigure(fig) {
			continue
		}
		start := time.Now() //dita:wallclock
		if workerMode {
			raw, err := runner.RunFigureRaw(fig, sweeps)
			if err != nil {
				log.Fatalf("figure %d on %s: %v", fig, dp.Name, err)
			}
			fmt.Printf("    [figure %d on %s: shard %s ran %d of %d jobs (%d resumed) in %.1fs]\n",
				fig, dp.Name, shard, len(raw.Jobs), len(raw.Xs)*len(raw.Days), raw.Resumed, time.Since(start).Seconds()) //dita:wallclock
			out = append(out, raw)
			continue
		}
		res, err := runner.RunFigure(fig, sweeps)
		if err != nil {
			log.Fatalf("figure %d on %s: %v", fig, dp.Name, err)
		}
		printFigure(res, experiments.FigureMetrics(fig))
		fmt.Printf("    [figure %d on %s finished in %.1fs]\n\n", fig, dp.Name, time.Since(start).Seconds()) //dita:wallclock
		if csvDir != "" {
			if err := writeCSV(csvDir, csvName(fig, dp.Name), res); err != nil {
				log.Fatalf("csv: %v", err)
			}
		}
	}
	return out
}

func writeCSV(dir, name string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		return err
	}
	return atomicio.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644)
}

// rrrBenchPoint is one scaling measurement of rrr.Build.
type rrrBenchPoint struct {
	Parallelism int     `json:"parallelism"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Sets        int     `json:"sets"`
	SetsPerSec  float64 `json:"sets_per_sec"`
}

// trainingPoint is one scaling measurement of the offline training
// phase: wall-clock per component at a given worker-pool bound. All
// three components are bit-identical across points (same seeds), so the
// deltas isolate pure scheduling gains.
type trainingPoint struct {
	Parallelism int     `json:"parallelism"`
	DatagenMs   float64 `json:"datagen_ms"`
	LDAMs       float64 `json:"lda_ms"`
	MobilityMs  float64 `json:"mobility_ms"`
}

// rrrBenchReport is the machine-readable perf trajectory record
// successive PRs compare against.
type rrrBenchReport struct {
	GoVersion  string          `json:"go_version"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	GraphNodes int             `json:"graph_nodes"`
	GraphEdges int             `json:"graph_edges"`
	Seed       uint64          `json:"seed"`
	Points     []rrrBenchPoint `json:"points"`
	Training   []trainingPoint `json:"training"`
	// ForwardIndexBytes is the retained memory Params.DropForwardIndex
	// retires on the benchmark collection (setOff + setMembers).
	ForwardIndexBytes int64 `json:"forward_index_bytes"`
	// Sim records the streaming online phase: per-instant influence
	// preparation latency with a cold rebuild per instant vs. the warm
	// incremental session (-simbench).
	Sim *simBenchReport `json:"sim,omitempty"`
	// PairBenchScale records the -pairbench scale sweep: the pair
	// maintenance churn at each -pair-scale steady-state pool size.
	PairBenchScale []*pairBenchReport `json:"pair_bench_scale,omitempty"`
}

// simInstantPoint is one assignment instant of the -simbench run: the
// same instant measured with a cold (full rebuild) and a warm (cached
// session) online phase. The two runs make identical assignments, so the
// pools — and therefore the work the instant asks for — are identical
// point for point. ColdMs/WarmMs time the influence preparation;
// ColdPairsMs/WarmPairsMs time the feasible-pair side (full
// workers×tasks rescan vs. incremental pair-index maintenance).
type simInstantPoint struct {
	Instant     int     `json:"instant"`
	At          float64 `json:"at_hours"`
	Workers     int     `json:"workers"`
	Tasks       int     `json:"tasks"`
	ColdMs      float64 `json:"cold_ms"`
	WarmMs      float64 `json:"warm_ms"`
	ColdPairsMs float64 `json:"cold_pairs_ms"`
	WarmPairsMs float64 `json:"warm_pairs_ms"`
}

// simBenchReport is the streaming online-phase trajectory: how much the
// incremental session saves per instant by reusing carried-over state.
type simBenchReport struct {
	Parallelism int               `json:"parallelism"`
	Arrivals    int               `json:"arrivals"`
	Assigned    int               `json:"assigned"`
	Instants    []simInstantPoint `json:"instants"`
	ColdTotalMs float64           `json:"cold_total_ms"`
	WarmTotalMs float64           `json:"warm_total_ms"`
	// WarmSpeedup = ColdTotalMs / WarmTotalMs over instants after the
	// first (the first warm instant is itself cold by definition).
	WarmSpeedup float64 `json:"warm_speedup"`
	// ColdPairsTotalMs/WarmPairsTotalMs total the feasible-pair block:
	// the per-instant full rescan vs. incremental maintenance of the
	// carried-over pair set.
	ColdPairsTotalMs float64 `json:"cold_pairs_total_ms"`
	WarmPairsTotalMs float64 `json:"warm_pairs_total_ms"`
	// PairSpeedup = ColdPairsTotalMs / WarmPairsTotalMs over every
	// instant after the first busy one (the warm index's first instant
	// admits everything, so it is a cold scan by definition). Empty
	// instants count: the warm index pays to stay in sync on them while
	// the cold strategy pays nothing.
	PairSpeedup float64 `json:"pair_speedup"`
	// PairBench measures pair maintenance alone at production-scale
	// pools, where the incremental index is the right tool; the
	// streaming instants above run at a few hundred entities, a scale
	// where the cold CSR rescan's constants still win and the per-pair
	// numbers mostly record index overhead.
	PairBench *pairBenchReport `json:"pair_bench,omitempty"`
}

// pairBenchReport is the pair-maintenance scaling record: the same
// synthetic churn measured with the cold per-instant FeasiblePairs
// rescan, the cold tiled scan (assign.TiledFeasiblePairs) and the warm
// incremental PairIndex. No influence machinery is involved — the
// timings isolate exactly the feasible-pair block of an instant.
type pairBenchReport struct {
	// TargetWorkers is the requested steady-state scale of a -pair-scale
	// sweep point; the default simbench point leaves it zero.
	TargetWorkers      int     `json:"target_workers,omitempty"`
	ExtentKm           float64 `json:"extent_km"` // world edge; grows as sqrt(scale) to hold density constant
	Workers            int     `json:"workers"`   // steady-state pool sizes
	Tasks              int     `json:"tasks"`
	Instants           int     `json:"instants"` // measured (post-warmup) instants
	ArrivalsPerInstant int     `json:"arrivals_per_instant"`
	LivePairs          int     `json:"live_pairs"` // feasible pairs at the final instant
	Tiles              int     `json:"tiles"`      // spatial tiles of the final tiled cold scan
	ColdTotalMs        float64 `json:"cold_total_ms"`
	TiledColdTotalMs   float64 `json:"tiled_cold_total_ms"`
	WarmTotalMs        float64 `json:"warm_total_ms"`
	Speedup            float64 `json:"speedup"` // cold / warm
	// TiledSpeedup = ColdTotalMs / TiledColdTotalMs: what spatial
	// partitioning alone buys a cold scan (independent of carry-over).
	TiledSpeedup float64 `json:"tiled_speedup"`
}

// measurePairBench is the default simbench point: the production-scale
// churn at ~12k standing workers the BENCH trajectory has always
// tracked.
func measurePairBench(par int) (*pairBenchReport, error) {
	return measurePairBenchAt(12000, 100, par)
}

// measurePairBenchAt churns synthetic pools at a chosen scale — tens of
// thousands to a million standing entities, a few percent turnover per
// instant — and times the cold full rescan against the cold tiled scan
// and the warm incremental index on identical pools (one loop computes
// all three, then retires a matched subset, so every instant's inputs
// are bit-identical). The world edge grows as sqrt(scale) so spatial
// density — and with it the per-worker candidate count — stays fixed
// while the pool size moves. The three pair lists are compared every
// instant; a mismatch is a bug, not a measurement.
func measurePairBenchAt(targetWorkers, measured, par int) (*pairBenchReport, error) {
	const (
		baseExtent = 300.0 // km at the 12k-worker baseline
		baseScale  = 12000
		radiusKm   = 6
		lifetime   = 20.0
		warmup     = 40
	)
	arrivals := targetWorkers / warmup // workers and tasks admitted per instant
	if arrivals < 1 {
		arrivals = 1
	}
	extentKm := baseExtent * math.Sqrt(float64(targetWorkers)/baseScale)
	rng := randx.New(31)
	var (
		workers []model.Worker
		tasks   []model.Task
		nextW   model.WorkerID
		nextT   model.TaskID
	)
	ix := assign.NewPairIndexParallel(5, par)
	rep := &pairBenchReport{
		Instants: measured, ArrivalsPerInstant: arrivals, ExtentKm: extentKm,
	}
	if targetWorkers != baseScale {
		rep.TargetWorkers = targetWorkers
	}
	for i := 0; i < warmup+measured; i++ {
		now := float64(i)
		for n := 0; n < arrivals; n++ {
			workers = append(workers, model.Worker{
				ID: nextW, User: nextW,
				Loc:    geo.Point{X: rng.Float64() * extentKm, Y: rng.Float64() * extentKm},
				Radius: radiusKm,
			})
			nextW++
			tasks = append(tasks, model.Task{
				ID:  nextT,
				Loc: geo.Point{X: rng.Float64() * extentKm, Y: rng.Float64() * extentKm},
				// A generous deadline decouples pool size from matching:
				// tasks leave by retirement below, with a tail of expiries.
				Publish: now, Valid: lifetime,
			})
			nextT++
		}
		keptT := tasks[:0]
		for _, t := range tasks {
			if t.Expiry() >= now {
				keptT = append(keptT, t)
			}
		}
		tasks = keptT

		inst := &model.Instance{Now: now, Workers: workers, Tasks: tasks}
		start := time.Now() //dita:wallclock
		cold := assign.FeasiblePairs(inst, 5)
		coldMs := float64(time.Since(start).Microseconds()) / 1000 //dita:wallclock
		start = time.Now()                                         //dita:wallclock
		tiled, tiles := assign.TiledFeasiblePairs(inst, 5, par)
		tiledMs := float64(time.Since(start).Microseconds()) / 1000 //dita:wallclock
		start = time.Now()                                          //dita:wallclock
		warm := ix.Update(inst)
		warmMs := float64(time.Since(start).Microseconds()) / 1000 //dita:wallclock
		if len(cold) != len(warm) {
			return nil, fmt.Errorf("pairbench instant %d: cold %d pairs, warm %d", i, len(cold), len(warm))
		}
		for k := range cold {
			if cold[k] != warm[k] {
				return nil, fmt.Errorf("pairbench instant %d: pair %d diverged (%+v vs %+v)", i, k, cold[k], warm[k])
			}
		}
		if !slices.Equal(cold, tiled) {
			return nil, fmt.Errorf("pairbench instant %d: tiled scan diverged from global (%d vs %d pairs)",
				i, len(tiled), len(cold))
		}
		if i >= warmup {
			rep.ColdTotalMs += coldMs
			rep.TiledColdTotalMs += tiledMs
			rep.WarmTotalMs += warmMs
		}
		rep.Workers, rep.Tasks, rep.LivePairs, rep.Tiles = len(workers), len(tasks), len(cold), tiles

		// The warmup phase only accumulates arrivals, building the pools
		// to production scale; measured instants then retire a matched
		// subset — up to `arrivals` disjoint pairs, taken greedily in
		// pair order — so the pools hold steady while churning.
		if i < warmup {
			continue
		}
		usedW := make([]bool, len(workers))
		usedT := make([]bool, len(tasks))
		retired := 0
		for _, pr := range cold {
			if retired == arrivals {
				break
			}
			if usedW[pr.W] || usedT[pr.T] {
				continue
			}
			usedW[pr.W], usedT[pr.T] = true, true
			retired++
		}
		keptW := workers[:0]
		for k, w := range workers {
			if !usedW[k] {
				keptW = append(keptW, w)
			}
		}
		workers = keptW
		keptT = tasks[:0]
		for k, t := range tasks {
			if !usedT[k] {
				keptT = append(keptT, t)
			}
		}
		tasks = keptT
	}
	if rep.WarmTotalMs > 0 {
		rep.Speedup = rep.ColdTotalMs / rep.WarmTotalMs
	}
	if rep.TiledColdTotalMs > 0 {
		rep.TiledSpeedup = rep.ColdTotalMs / rep.TiledColdTotalMs
	}
	return rep, nil
}

// writePairBench runs the pair-maintenance churn at each requested
// steady-state scale (-pair-scale) and records the points as the
// pair_bench_scale array of the JSON report, merging with an existing
// file like the other bench modes. Larger scales run fewer measured
// instants so a sweep to a million entities stays tractable on one box;
// the per-instant regime is steady either way.
func writePairBench(path string, scales []int, par int) error {
	var points []*pairBenchReport
	for _, scale := range scales {
		measured := 100
		if scale > 200000 {
			measured = 25
		}
		fmt.Printf("pair churn at %d standing workers (%d measured instants)...\n", scale, measured)
		rep, err := measurePairBenchAt(scale, measured, par)
		if err != nil {
			return err
		}
		printPairBench(rep)
		points = append(points, rep)
	}
	var report rrrBenchReport
	if prev, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(prev, &report); err != nil {
			return fmt.Errorf("existing report %s is not mergeable: %w", path, err)
		}
	}
	report.GoVersion = runtime.Version()
	report.GOMAXPROCS = runtime.GOMAXPROCS(0)
	report.PairBenchScale = points
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, append(out, '\n'), 0o644)
}

func printPairBench(pb *pairBenchReport) {
	fmt.Printf("pair maintenance at %dW x %dS (%d instants, %d arrivals/instant, %d live pairs, %d tiles):\n",
		pb.Workers, pb.Tasks, pb.Instants, pb.ArrivalsPerInstant, pb.LivePairs, pb.Tiles)
	fmt.Printf("  cold full scan %.1fms, tiled cold scan %.1fms (%.2fx), incremental index %.1fms (%.1fx)\n",
		pb.ColdTotalMs, pb.TiledColdTotalMs, pb.TiledSpeedup, pb.WarmTotalMs, pb.Speedup)
}

// writeRRRBench measures rrr.Build on a paper-scale graph at
// parallelism 1, 2 and GOMAXPROCS and writes the report as JSON. The
// three collections are bit-identical (same seed), so the points
// isolate pure scheduling gains.
func writeRRRBench(path string) error {
	const benchSeed = 1
	g := socialgraph.GeneratePreferentialAttachment(2400, 3, randx.New(1))
	report := rrrBenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GraphNodes: g.N(),
		GraphEdges: g.M(),
		Seed:       benchSeed,
	}
	pars := []int{1, 2, runtime.GOMAXPROCS(0)}
	slices.Sort(pars)
	pars = slices.Compact(pars)
	var lastColl *rrr.Collection // all points build bit-identical collections
	for _, p := range pars {
		sets := 0
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := rrr.Build(g, rrr.Params{Seed: benchSeed, Parallelism: p})
				sets = c.NumSets()
				lastColl = c
			}
		})
		pt := rrrBenchPoint{
			Parallelism: p,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Sets:        sets,
		}
		if res.NsPerOp() > 0 {
			pt.SetsPerSec = float64(sets) / (float64(res.NsPerOp()) / 1e9)
		}
		report.Points = append(report.Points, pt)
		fmt.Printf("rrr.Build parallelism=%d: %s, %d allocs/op, %.0f sets/sec\n",
			p, time.Duration(res.NsPerOp()), res.AllocsPerOp(), pt.SetsPerSec)
	}
	if lastColl != nil {
		members := int64(0)
		for w := int32(0); w < int32(g.N()); w++ {
			members += int64(lastColl.CoverageCount(w))
		}
		// setMembers mirrors the inverted index entry for entry; setOff
		// adds one offset per set plus the sentinel.
		report.ForwardIndexBytes = 4 * (members + int64(lastColl.NumSets()) + 1)
		fmt.Printf("DropForwardIndex would retire %.1f MiB of the collection\n",
			float64(report.ForwardIndexBytes)/(1<<20))
	}
	var inputs *trainingInputs
	for _, p := range pars {
		tp, in, err := measureTraining(p, inputs)
		if err != nil {
			return err
		}
		inputs = in
		report.Training = append(report.Training, tp)
		fmt.Printf("training parallelism=%d: datagen %.0fms, lda %.0fms, mobility %.0fms\n",
			p, tp.DatagenMs, tp.LDAMs, tp.MobilityMs)
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, append(out, '\n'), 0o644)
}

// writeSimBench runs one streaming day twice — once rebuilding the
// online phase from scratch every instant (ColdPrepare), once on the
// warm incremental session — and records per-instant influence
// preparation latency into the BENCH_rrr.json report (merging with an
// existing file so the rrrbench trajectory is preserved). The two runs
// are bit-identical in everything but latency, so each point isolates
// exactly the recomputation the session cache skips for carried-over
// tasks and workers.
//
// fwPath, when set, loads the framework from a sealed artifact instead
// of training (it must have been saved by a previous simbench's
// trainOut — the benchmark's reduced dataset and cutoff are their own
// training input); trainOut, when set, saves the trained framework for
// later runs.
func writeSimBench(path string, par int, fwPath, trainOut string) error {
	dp := dataset.BrightkiteLike()
	dp.NumUsers = 800
	dp.NumVenues = 1000
	dp.Days = 12
	dp.Parallelism = par
	cutoff := float64(dp.Days-2) * 24
	var fw *core.Framework
	if fwPath != "" {
		loaded, info, err := fwio.Load(fwPath)
		if err != nil {
			return err
		}
		if want := frameworkSource(dp, cutoff); info.Source != want {
			return fmt.Errorf("%s: artifact trained on %q, simbench needs %q", fwPath, info.Source, want)
		}
		fmt.Printf("loaded framework from %s (sha256 %.12s…)\n", fwPath, info.Checksum)
		fw = loaded
	}
	data, err := dataset.Generate(dp)
	if err != nil {
		return err
	}
	if fw == nil {
		docs, vocab := data.Documents(cutoff)
		fw, err = core.Train(core.TrainingData{
			Graph:     data.Graph,
			Histories: data.HistoriesBefore(cutoff),
			Documents: docs,
			Vocab:     vocab,
			Records:   data.CheckInsBefore(cutoff),
		}, trainConfig(par))
		if err != nil {
			return err
		}
	}
	if trainOut != "" {
		sum, err := fwio.Write(trainOut, fw, frameworkSource(dp, cutoff))
		if err != nil {
			return err
		}
		fmt.Printf("saved framework to %s (sha256 %.12s…)\n", trainOut, sum)
	}

	// One evaluation day of arrivals: workers join from their homes,
	// tasks spawn at venues, both spread over the first 20 hours. The
	// count is sized so the standing pools reach the high hundreds — the
	// regime the incremental structures exist for; at toy pool sizes a
	// flat rescan wins on constant factors and the comparison would
	// measure overhead, not the algorithm.
	const arrivals = 3000
	rng := randx.New(7)
	ws := make([]simulate.ArrivingWorker, arrivals)
	ts := make([]simulate.ArrivingTask, arrivals)
	for i := range ws {
		u := model.WorkerID(rng.Intn(dp.NumUsers))
		// Radius 8 km (vs the sweeps' 25) keeps feasibility sparse on the
		// 300 km BK geography, so most workers and tasks genuinely carry
		// over between instants — the protocol regime the incremental
		// session and pair index are built for.
		ws[i] = simulate.ArrivingWorker{
			User: u, Loc: data.Homes[u], Radius: 8, At: cutoff + rng.Float64()*20,
		}
		v := data.Venues[rng.Intn(len(data.Venues))]
		ts[i] = simulate.ArrivingTask{
			Loc: v.Loc, Publish: cutoff + rng.Float64()*20, Valid: 3 + rng.Float64()*3,
			Categories: v.Categories, Venue: v.ID,
		}
	}
	slices.SortStableFunc(ws, func(a, b simulate.ArrivingWorker) int {
		switch {
		case a.At < b.At:
			return -1
		case a.At > b.At:
			return 1
		}
		return 0
	})
	slices.SortStableFunc(ts, func(a, b simulate.ArrivingTask) int {
		switch {
		case a.Publish < b.Publish:
			return -1
		case a.Publish > b.Publish:
			return 1
		}
		return 0
	})

	run := func(cold bool) (*simulate.Result, error) {
		p, err := simulate.New(fw, simulate.Config{
			Algorithm: assign.IA, Step: 1, Start: cutoff, Horizon: 24,
			Seed: 9, Parallelism: par, ColdPrepare: cold, ColdPairs: cold,
		})
		if err != nil {
			return nil, err
		}
		return p.Run(ws, ts)
	}
	coldRes, err := run(true)
	if err != nil {
		return err
	}
	warmRes, err := run(false)
	if err != nil {
		return err
	}
	if len(coldRes.Instants) != len(warmRes.Instants) || coldRes.TotalAssigned != warmRes.TotalAssigned {
		return fmt.Errorf("cold and warm runs diverged: %d/%d instants, %d/%d assigned",
			len(coldRes.Instants), len(warmRes.Instants), coldRes.TotalAssigned, warmRes.TotalAssigned)
	}

	sim := &simBenchReport{
		Parallelism: parallel.Workers(par),
		Arrivals:    arrivals,
		Assigned:    warmRes.TotalAssigned,
	}
	warmAfterFirst, coldAfterFirst := 0.0, 0.0
	warmPairsAfterFirst, coldPairsAfterFirst := 0.0, 0.0
	seen := 0
	for i, ci := range coldRes.Instants {
		wi := warmRes.Instants[i]
		coldMs := float64(ci.Prepare.Microseconds()) / 1000
		warmMs := float64(wi.Prepare.Microseconds()) / 1000
		coldPairsMs := float64(ci.PairMaint.Microseconds()) / 1000
		warmPairsMs := float64(wi.PairMaint.Microseconds()) / 1000
		sim.Instants = append(sim.Instants, simInstantPoint{
			Instant: i, At: ci.At, Workers: ci.OnlineWorkers, Tasks: ci.OpenTasks,
			ColdMs: coldMs, WarmMs: warmMs,
			ColdPairsMs: coldPairsMs, WarmPairsMs: warmPairsMs,
		})
		sim.ColdTotalMs += coldMs
		sim.WarmTotalMs += warmMs
		sim.ColdPairsTotalMs += coldPairsMs
		sim.WarmPairsTotalMs += warmPairsMs
		busy := ci.OnlineWorkers > 0 && ci.OpenTasks > 0
		afterFirstBusy := seen > 0
		if busy {
			if afterFirstBusy {
				coldAfterFirst += coldMs
				warmAfterFirst += warmMs
			}
			seen++
		}
		// The pair ratio counts every instant after the first busy one —
		// including empty instants, where the warm index still pays to
		// stay in sync while the cold strategy genuinely pays nothing.
		if afterFirstBusy {
			coldPairsAfterFirst += coldPairsMs
			warmPairsAfterFirst += warmPairsMs
		}
		fmt.Printf("instant %2d (t=%.0fh, %3dW x %3dS): cold %7.1fms  warm %7.1fms  pairs cold %6.2fms  warm %6.2fms\n",
			i, ci.At, ci.OnlineWorkers, ci.OpenTasks, coldMs, warmMs, coldPairsMs, warmPairsMs)
	}
	if warmAfterFirst > 0 {
		sim.WarmSpeedup = coldAfterFirst / warmAfterFirst
	}
	if warmPairsAfterFirst > 0 {
		sim.PairSpeedup = coldPairsAfterFirst / warmPairsAfterFirst
	}
	fmt.Printf("online phase totals: cold %.1fms, warm %.1fms (%.1fx on carried-over instants)\n",
		sim.ColdTotalMs, sim.WarmTotalMs, sim.WarmSpeedup)
	fmt.Printf("feasible-pair totals: cold %.2fms, warm %.2fms (%.1fx on carried-over instants)\n",
		sim.ColdPairsTotalMs, sim.WarmPairsTotalMs, sim.PairSpeedup)

	pb, err := measurePairBench(par)
	if err != nil {
		return err
	}
	sim.PairBench = pb
	printPairBench(pb)

	// Merge into an existing rrrbench report when one is present, so one
	// JSON file tracks the whole perf trajectory. The environment fields
	// are stamped after the merge: they must describe this run, not the
	// one that wrote the file.
	var report rrrBenchReport
	if prev, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(prev, &report); err != nil {
			return fmt.Errorf("existing report %s is not mergeable: %w", path, err)
		}
	}
	report.GoVersion = runtime.Version()
	report.GOMAXPROCS = runtime.GOMAXPROCS(0)
	report.Sim = sim
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, append(out, '\n'), 0o644)
}

// trainingInputs carries the derived training inputs — documents,
// vocabulary, histories — across measureTraining points, so the bench
// extracts them from one generated dataset instead of regenerating and
// re-deriving at every parallelism. Any worker count generates the
// identical dataset (the determinism contract), so sharing is exact.
type trainingInputs struct {
	docs  [][]int32
	vocab int
	hists map[model.WorkerID]model.History
}

// measureTraining times the three training-phase components at one
// worker-pool bound on a reduced Brightkite-like dataset (big enough to
// keep every pool width busy, small enough for a bench smoke run).
// Dataset generation — the heavyweight component — is timed as a single
// run per point; LDA and mobility, cheap enough to repeat, report the
// minimum of several runs so the recorded trajectory is not
// noise-dominated at the tens-of-ms scale. Pass in = nil on the first
// point; later points reuse the returned inputs, feeding LDA and
// mobility bit-identical documents and histories without re-deriving
// them.
func measureTraining(par int, in *trainingInputs) (trainingPoint, *trainingInputs, error) {
	const reps = 3
	minMs := func(f func() error) (float64, error) {
		best := math.Inf(1)
		for i := 0; i < reps; i++ {
			start := time.Now() //dita:wallclock
			if err := f(); err != nil {
				return 0, err
			}
			if ms := float64(time.Since(start).Microseconds()) / 1000; ms < best { //dita:wallclock
				best = ms
			}
		}
		return best, nil
	}

	dp := dataset.BrightkiteLike()
	dp.NumUsers = 800
	dp.NumVenues = 1000
	dp.Days = 12
	dp.Parallelism = par

	start := time.Now() //dita:wallclock
	data, err := dataset.Generate(dp)
	if err != nil {
		return trainingPoint{}, nil, err
	}
	datagenMs := float64(time.Since(start).Microseconds()) / 1000 //dita:wallclock
	if in == nil {
		cutoff := float64(dp.Days-2) * 24
		docs, vocab := data.Documents(cutoff)
		in = &trainingInputs{docs: docs, vocab: vocab, hists: data.HistoriesBefore(cutoff)}
	}

	ldaMs, err := minMs(func() error {
		_, err := lda.Train(in.docs, in.vocab, lda.Config{Topics: 20, TrainIters: 50, Seed: 1, Parallelism: par})
		return err
	})
	if err != nil {
		return trainingPoint{}, nil, err
	}

	mobilityMs, err := minMs(func() error {
		mobility.Fit(in.hists, mobility.Config{Parallelism: par})
		return nil
	})
	if err != nil {
		return trainingPoint{}, nil, err
	}

	return trainingPoint{Parallelism: par, DatagenMs: datagenMs, LDAMs: ldaMs, MobilityMs: mobilityMs}, in, nil
}
