package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"time"

	"dita/internal/dataset"
	"dita/internal/engine"
	"dita/internal/trace"
)

// serve-load replays a deterministic arrival trace against a running
// dita-serve instance. The trace is rebuilt locally from (dataset
// preset, trace params) — identical flags on dita-sim -stream produce
// the identical workload, so the server's drained assignment CSV can be
// diffed byte for byte against the in-process replay. That diff is the
// CI serve smoke: the live HTTP path and the batch path are the same
// engine fed the same events, and the bytes prove it.
//
// With -serve-speedup 0 (the default) the replay is deterministic: per
// grid instant every due worker is POSTed (in trace order), then every
// due task, then an explicit /instant at the grid time — the exact
// admission order simulate.Platform.Run uses, which is what makes the
// minted platform ids, and therefore the CSVs, line up. With a positive
// speedup the client paces arrivals on the wall clock at that multiple
// of trace time and fires nothing: the server's own trigger (tick or
// batch) decides the instants.
type serveLoadConfig struct {
	url, region string
	preset      string
	day         int
	arrivals    int
	traceSeed   uint64
	spread      float64
	radius      float64
	valid       float64
	validSpan   float64
	step        float64
	horizon     float64
	speedup     float64
}

// Wire forms of the dita-serve endpoints (kept in sync with
// cmd/dita-serve; cmd packages cannot import each other).
type serveWorkerReq struct {
	User   int32   `json:"user"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Radius float64 `json:"radius"`
	At     float64 `json:"at"`
}

type serveTaskReq struct {
	X          float64 `json:"x"`
	Y          float64 `json:"y"`
	Publish    float64 `json:"publish"`
	Valid      float64 `json:"valid"`
	Categories []int32 `json:"categories"`
	Venue      int32   `json:"venue"`
}

type serveMetrics struct {
	Online  int           `json:"online"`
	Open    int           `json:"open"`
	Pending int           `json:"pending"`
	Totals  engine.Totals `json:"totals"`
	Latency struct {
		PrepareTotalMs   float64 `json:"prepare_total_ms"`
		PrepareMaxMs     float64 `json:"prepare_max_ms"`
		PairMaintTotalMs float64 `json:"pair_maint_total_ms"`
		AssignTotalMs    float64 `json:"assign_total_ms"`
	} `json:"latency"`
}

func runServeLoad(cfg serveLoadConfig) error {
	dp, err := datasetPreset(cfg.preset)
	if err != nil {
		return err
	}
	data, err := dataset.Generate(dp)
	if err != nil {
		return fmt.Errorf("generate %s: %w", dp.Name, err)
	}
	gridStart := float64(cfg.day) * 24
	ws, ts, err := trace.Build(data, trace.Params{
		Arrivals: cfg.arrivals, Seed: cfg.traceSeed,
		Start: gridStart, Spread: cfg.spread, RadiusKm: cfg.radius,
		ValidMin: cfg.valid, ValidSpan: cfg.validSpan,
	})
	if err != nil {
		return err
	}

	c := &serveClient{base: strings.TrimRight(cfg.url, "/"), region: cfg.region}
	if err := c.get("/healthz", nil); err != nil {
		return fmt.Errorf("server not reachable: %w", err)
	}

	wall := time.Now() //dita:wallclock
	var posted int
	if cfg.speedup > 0 {
		posted, err = c.replayPaced(ws, ts, gridStart, cfg.speedup)
	} else {
		posted, err = c.replayGrid(ws, ts, gridStart, cfg.step, cfg.horizon)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(wall) //dita:wallclock

	var m serveMetrics
	if err := c.get("/v1/"+cfg.region+"/metrics", &m); err != nil {
		return err
	}
	fmt.Printf("\nserve-load against %s (region %s, %d events in %s):\n",
		cfg.url, cfg.region, posted, elapsed.Round(time.Millisecond))
	fmt.Printf("  instants fired       %d\n", m.Totals.Instants)
	fmt.Printf("  assigned tasks       %d\n", m.Totals.Assigned)
	fmt.Printf("  expired tasks        %d\n", m.Totals.Expired)
	fmt.Printf("  still online/open    %d/%d (pending %d)\n", m.Online, m.Open, m.Pending)
	fmt.Printf("  server prepare       %.1f ms total, %.1f ms max/instant\n",
		m.Latency.PrepareTotalMs, m.Latency.PrepareMaxMs)
	fmt.Printf("  server pair maint    %.1f ms total\n", m.Latency.PairMaintTotalMs)
	fmt.Printf("  server assignment    %.1f ms total\n", m.Latency.AssignTotalMs)
	return nil
}

// replayGrid is the deterministic mode: simulate.Platform.Run's
// admission loop spoken over HTTP — workers then tasks due at each grid
// instant, then the instant itself.
func (c *serveClient) replayGrid(ws []engine.WorkerArrival, ts []engine.TaskArrival, start, step, horizon float64) (int, error) {
	if step <= 0 {
		return 0, fmt.Errorf("serve-load: non-positive step %v", step)
	}
	posted := 0
	wi, ti := 0, 0
	count := int(math.Floor(horizon/step + 1e-9))
	for i := 0; i <= count; i++ {
		now := start + float64(i)*step
		for wi < len(ws) && ws[wi].At <= now {
			if err := c.postWorker(ws[wi]); err != nil {
				return posted, err
			}
			wi++
			posted++
		}
		for ti < len(ts) && ts[ti].Publish <= now {
			if err := c.postTask(ts[ti]); err != nil {
				return posted, err
			}
			ti++
			posted++
		}
		body, _ := json.Marshal(map[string]float64{"at": now})
		if err := c.post("/v1/"+c.region+"/instant", body); err != nil {
			return posted, err
		}
	}
	return posted, nil
}

// replayPaced streams arrivals on the wall clock at speedup× trace
// time and lets the server's own trigger fire the instants.
func (c *serveClient) replayPaced(ws []engine.WorkerArrival, ts []engine.TaskArrival, start, speedup float64) (int, error) {
	wallStart := time.Now() //dita:wallclock
	posted := 0
	wi, ti := 0, 0
	for wi < len(ws) || ti < len(ts) {
		// Next event in trace order, workers before tasks on ties — the
		// same precedence the grid replay admits them with.
		nextIsWorker := ti >= len(ts) || (wi < len(ws) && ws[wi].At <= ts[ti].Publish)
		var at float64
		if nextIsWorker {
			at = ws[wi].At
		} else {
			at = ts[ti].Publish
		}
		due := time.Duration((at - start) / speedup * float64(time.Hour))
		if wait := due - time.Since(wallStart); wait > 0 { //dita:wallclock
			time.Sleep(wait) //dita:wallclock
		}
		var err error
		if nextIsWorker {
			err = c.postWorker(ws[wi])
			wi++
		} else {
			err = c.postTask(ts[ti])
			ti++
		}
		if err != nil {
			return posted, err
		}
		posted++
	}
	return posted, nil
}

type serveClient struct {
	base, region string
}

func (c *serveClient) postWorker(w engine.WorkerArrival) error {
	body, _ := json.Marshal(serveWorkerReq{
		User: int32(w.User), X: w.Loc.X, Y: w.Loc.Y, Radius: w.Radius, At: w.At,
	})
	return c.post("/v1/"+c.region+"/workers", body)
}

func (c *serveClient) postTask(t engine.TaskArrival) error {
	cats := make([]int32, len(t.Categories))
	for i, cat := range t.Categories {
		cats[i] = int32(cat)
	}
	body, _ := json.Marshal(serveTaskReq{
		X: t.Loc.X, Y: t.Loc.Y, Publish: t.Publish, Valid: t.Valid,
		Categories: cats, Venue: int32(t.Venue),
	})
	return c.post("/v1/"+c.region+"/tasks", body)
}

func (c *serveClient) post(path string, body []byte) error {
	resp, err := http.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("POST %s: %s: %s", path, resp.Status, strings.TrimSpace(string(msg)))
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

func (c *serveClient) get(path string, out any) error {
	resp, err := http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(msg)))
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
