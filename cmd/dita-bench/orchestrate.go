// The -orchestrate supervisor: spawn the N shard workers of a sharded
// sweep as subprocesses, keep each one alive through crashes,
// interrupts, deadline overruns and corrupt output with capped
// exponential backoff, distinguish retryable deaths from deterministic
// failures (which fail fast instead of burning retries), and finish
// with the validating merge — one command from nothing to
// fault-tolerant figures.
package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"dita/internal/atomicio"
	"dita/internal/experiments"
	"dita/internal/randx"
)

// orchestrateConfig parameterizes one supervised sharded sweep.
type orchestrateConfig struct {
	workers    int           // shard count N
	shardDir   string        // artifact directory ("" = temp dir, removed on success)
	csvDir     string        // passed through to the final merge
	timeout    time.Duration // per-attempt worker deadline (0 = none)
	maxRetries int           // relaunches per shard beyond the first attempt
	retryBase  time.Duration // backoff base; attempt k waits ~base·2^(k-1), capped
	seed       uint64        // jitter determinism (the workers get it via workerArgs)
	datasets   []string      // dataset names, one framework artifact each
	// frameworks holds pre-trained artifact paths handed in by the user;
	// when empty, the orchestrator trains each dataset's framework once
	// (via trainFramework, into the shard directory) before spawning
	// workers — N workers, one training.
	frameworks     []string
	trainFramework func(name, outPath string) (string, error)
	workerArgs     []string // evaluation flags every worker shares
}

// backoffCap bounds the exponential backoff so a long retry budget
// cannot stretch into hour-long idle gaps.
const backoffCap = 30 * time.Second

// identicalFailureLimit is how many times the same deterministic
// failure signature (exit code + final output line) may repeat before
// the orchestrator stops retrying that shard: a worker that dies the
// same way twice is broken, not unlucky.
const identicalFailureLimit = 2

// runOrchestrate supervises cfg.workers shard workers to completion and
// merges their artifacts. Shards run concurrently, each under its own
// retry loop; the first permanent failure cancels the others.
func runOrchestrate(cfg orchestrateConfig) error {
	if cfg.workers < 1 {
		return fmt.Errorf("-orchestrate %d: need at least one worker", cfg.workers)
	}
	self, err := os.Executable()
	if err != nil {
		return fmt.Errorf("locating own binary: %w", err)
	}
	dir := cfg.shardDir
	ephemeral := dir == ""
	if ephemeral {
		if dir, err = os.MkdirTemp("", "dita-shards-"); err != nil {
			return err
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	// One train, many serves: unless the user supplied pre-trained
	// artifacts, fit each dataset's framework exactly once here and hand
	// the sealed artifact to every worker — the offline phase is paid
	// once per dataset instead of once per shard.
	fwPaths := cfg.frameworks
	if len(fwPaths) == 0 {
		for _, name := range cfg.datasets {
			out := filepath.Join(dir, "framework_"+name+".json")
			sum, err := cfg.trainFramework(name, out)
			if err != nil {
				return fmt.Errorf("training framework for %s: %w", name, err)
			}
			fmt.Printf("trained framework for %s -> %s (sha256 %.12s…)\n", name, out, sum)
			fwPaths = append(fwPaths, out)
		}
	}
	cfg.workerArgs = append(cfg.workerArgs, "-framework", strings.Join(fwPaths, ","))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for k := 0; k < cfg.workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			if err := superviseShard(ctx, self, dir, k, cfg); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
					cancel() // no point finishing a sweep that cannot merge
				}
				mu.Unlock()
			}
		}(k)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	if err := runMerge(filepath.Join(dir, "shard_*.json"), cfg.csvDir); err != nil {
		return err
	}
	if ephemeral {
		return os.RemoveAll(dir)
	}
	// Success leaves the artifacts for inspection but no process debris:
	// journals are removed by the workers themselves, temp files by the
	// atomic-write protocol; anything still matching here is a bug
	// worth hearing about.
	leftovers, _ := filepath.Glob(filepath.Join(dir, "*"+atomicio.TempSuffix))
	journals, _ := filepath.Glob(filepath.Join(dir, "*"+journalSuffix))
	for _, stray := range append(leftovers, journals...) {
		log.Printf("warning: removing stray %s after a successful sweep", stray)
		os.Remove(stray)
	}
	return nil
}

// superviseShard runs worker k's retry loop: launch, classify the
// death, back off, relaunch — until a validated artifact exists or the
// retry budget (or the identical-failure limit) is exhausted.
func superviseShard(ctx context.Context, self, dir string, k int, cfg orchestrateConfig) error {
	artifact := filepath.Join(dir, fmt.Sprintf("shard_%d.json", k))
	shard := fmt.Sprintf("%d/%d", k, cfg.workers)
	failures := map[string]int{}
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil // another shard already failed permanently
		}
		res := launchWorker(ctx, self, shard, artifact, cfg)
		if res.err == nil {
			if sr, err := validateArtifact(artifact, k, cfg); err != nil {
				// Exit 0 with a bad artifact is a lying worker: remove the
				// artifact so the retry starts clean, and retry — the write
				// may have raced a disk hiccup rather than a logic bug.
				os.Remove(artifact)
				res = workerResult{retryable: true, reason: fmt.Sprintf("artifact validation failed: %v", err)}
			} else {
				jobs := 0
				for _, raw := range sr.Figures {
					jobs += len(raw.Jobs)
				}
				fmt.Printf("[shard %s] done after attempt %d: %d figures, %d jobs\n", shard, attempt, len(sr.Figures), jobs)
				return nil
			}
		}
		if ctx.Err() != nil {
			return nil
		}

		if !res.retryable {
			failures[res.reason]++
			if failures[res.reason] >= identicalFailureLimit {
				return fmt.Errorf("shard %s: failing deterministically (%d× %q) — not retrying", shard, failures[res.reason], res.reason)
			}
		}
		if attempt > cfg.maxRetries {
			return fmt.Errorf("shard %s: no valid artifact after %d attempts (last: %s)", shard, attempt, res.reason)
		}
		delay := backoffDelay(cfg.retryBase, attempt, cfg.seed, uint64(k))
		log.Printf("[shard %s] attempt %d failed (%s); retrying in %s", shard, attempt, res.reason, delay)
		select {
		case <-time.After(delay): //dita:wallclock
		case <-ctx.Done():
			return nil
		}
	}
}

// workerResult classifies one worker attempt's death.
type workerResult struct {
	err       error
	retryable bool   // interrupted/killed/timed out — not the worker's fault
	reason    string // human-readable and, for deterministic failures, a stable signature
}

// launchWorker runs one attempt of shard k as a subprocess under the
// per-attempt deadline, streaming its output with a [shard k/N] prefix
// and retaining the last line as the failure signature.
func launchWorker(ctx context.Context, self, shard, artifact string, cfg orchestrateConfig) workerResult {
	attemptCtx := ctx
	var cancel context.CancelFunc
	if cfg.timeout > 0 {
		attemptCtx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	args := append([]string{"-shard", shard, "-shard-out", artifact}, cfg.workerArgs...)
	cmd := exec.CommandContext(attemptCtx, self, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return workerResult{err: err, reason: err.Error()}
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		return workerResult{err: err, reason: fmt.Sprintf("spawn failed: %v", err)}
	}
	lastLine := ""
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) != "" {
			lastLine = line
		}
		fmt.Printf("[shard %s] %s\n", shard, line)
	}
	err = cmd.Wait()
	if err == nil {
		return workerResult{}
	}
	if attemptCtx.Err() == context.DeadlineExceeded {
		return workerResult{err: err, retryable: true, reason: fmt.Sprintf("deadline %s exceeded", cfg.timeout)}
	}
	var exitErr *exec.ExitError
	if errors.As(err, &exitErr) {
		switch code := exitErr.ExitCode(); {
		case code == retryableExitCode:
			return workerResult{err: err, retryable: true, reason: "worker interrupted (exit 75, checkpoint flushed)"}
		case code == -1:
			// Killed by a signal it never got to handle (SIGKILL, OOM):
			// the crash the journal exists for.
			return workerResult{err: err, retryable: true, reason: fmt.Sprintf("killed by signal (%v)", exitErr.ProcessState)}
		default:
			return workerResult{err: err, reason: fmt.Sprintf("exit %d: %s", code, lastLine)}
		}
	}
	return workerResult{err: err, retryable: true, reason: err.Error()}
}

// validateArtifact load-checks a worker's artifact — checksum, shard
// spec and seed — so a lying or torn exit-0 worker is caught here, not
// at the merge.
func validateArtifact(path string, k int, cfg orchestrateConfig) (*experiments.ShardResult, error) {
	sr, err := experiments.LoadShardFile(path)
	if err != nil {
		return nil, err
	}
	if got := sr.Shard.String(); got != fmt.Sprintf("%d/%d", k, cfg.workers) {
		return nil, fmt.Errorf("%s: artifact claims shard %s, want %d/%d", path, got, k, cfg.workers)
	}
	if sr.Seed != cfg.seed {
		return nil, fmt.Errorf("%s: artifact ran under seed %d, want %d", path, sr.Seed, cfg.seed)
	}
	return sr, nil
}

// backoffDelay is the capped exponential backoff with deterministic
// jitter: attempt k of a shard waits base·2^(k-1), capped, plus up to
// 25% jitter derived from (seed, shard, attempt) — reproducible run to
// run, decorrelated shard to shard so relaunches do not stampede.
func backoffDelay(base time.Duration, attempt int, seed, shard uint64) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 1; i < attempt && d < backoffCap; i++ {
		d *= 2
	}
	if d > backoffCap {
		d = backoffCap
	}
	jitter := time.Duration(randx.Mix(seed, shard, uint64(attempt)) % uint64(d/4+1))
	return d + jitter
}
