// Command dita-datagen generates a synthetic geo-social check-in dataset
// (the stand-in for Brightkite/FourSquare) and writes it to a directory
// as CSV files that dita-sim, dita-bench and the library's Load function
// can consume.
//
// Usage:
//
//	dita-datagen -preset bk -out ./data/bk
//	dita-datagen -preset fs -out ./data/fs -users 5000 -days 60 -seed 9
//
// -parallel bounds the generator's worker pool (0 = all cores); the
// written dataset is bit-identical at any setting.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"dita/internal/dataset"
	"dita/internal/model"
)

func main() {
	log.SetFlags(0)
	var (
		preset  = flag.String("preset", "bk", "dataset preset: bk or fs")
		out     = flag.String("out", "", "output directory (required)")
		users   = flag.Int("users", 0, "override number of users")
		venues  = flag.Int("venues", 0, "override number of venues")
		days    = flag.Int("days", 0, "override number of simulated days")
		rate    = flag.Float64("rate", 0, "override check-ins per user per day")
		cityKm  = flag.Float64("city-km", 0, "override world size in km")
		seed    = flag.Uint64("seed", 0, "override the generator seed")
		par     = flag.Int("parallel", 0, "generator worker pool bound (0 = all cores; output is identical at any setting)")
		summary = flag.Bool("summary", true, "print dataset summary statistics")
	)
	flag.Parse()
	if *out == "" {
		log.Fatal("missing required -out directory")
	}

	var p dataset.Params
	switch *preset {
	case "bk":
		p = dataset.BrightkiteLike()
	case "fs":
		p = dataset.FoursquareLike()
	default:
		log.Fatalf("unknown preset %q (want bk or fs)", *preset)
	}
	if *users > 0 {
		p.NumUsers = *users
	}
	if *venues > 0 {
		p.NumVenues = *venues
	}
	if *days > 0 {
		p.Days = *days
	}
	if *rate > 0 {
		p.CheckinsPerUserPerDay = *rate
	}
	if *cityKm > 0 {
		p.CityKm = *cityKm
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	p.Parallelism = *par

	start := time.Now() //dita:wallclock
	data, err := dataset.Generate(p)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	if err := data.Save(*out); err != nil {
		log.Fatalf("save: %v", err)
	}
	fmt.Printf("dataset %q written to %s in %.1fs\n", p.Name, *out, time.Since(start).Seconds()) //dita:wallclock

	if *summary {
		fmt.Printf("  users      %d\n", p.NumUsers)
		fmt.Printf("  venues     %d\n", p.NumVenues)
		fmt.Printf("  friendships %d (directed edges %d)\n", data.Graph.M()/2, data.Graph.M())
		fmt.Printf("  check-ins  %d over %d days (%.2f/user/day realized)\n",
			data.NumCheckIns(), p.Days,
			float64(data.NumCheckIns())/float64(p.NumUsers)/float64(p.Days))
		maxDeg, active := 0, 0
		for u := int32(0); u < int32(p.NumUsers); u++ {
			if d := data.Graph.OutDegree(u); d > maxDeg {
				maxDeg = d
			}
			if len(data.UserCheckIns(model.WorkerID(u))) > 0 {
				active++
			}
		}
		fmt.Printf("  max degree %d, users with ≥1 check-in %d\n", maxDeg, active)
	}
}
