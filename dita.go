// Package dita is the public API of this repository: a from-scratch Go
// implementation of "Influence-aware Task Assignment in Spatial
// Crowdsourcing" (ICDE 2022) — the DITA framework.
//
// The library answers the ITA problem: given workers and spatial tasks at
// a time instance, assign tasks to workers so that (1) the number of
// assigned tasks is maximal and (2) worker-task influence is maximal
// among such assignments. Worker-task influence combines three learned
// factors: LDA-based worker-task affinity, Historical-Acceptance worker
// willingness, and RRR-set-based worker propagation through the social
// network.
//
// # Quick start
//
//	data, _ := dita.Generate(dita.BrightkiteLike())
//	fw, _ := dita.Train(dita.TrainingDataFrom(data, 25*24), dita.Config{})
//	inst, _ := data.Snapshot(dita.SnapshotParams{
//		Day: 25, NumTasks: 500, NumWorkers: 400, ValidHours: 5, RadiusKm: 25,
//	})
//	set, metrics := fw.Assign(inst, dita.IA, 1)
//
// See examples/ for complete programs and internal/experiments for the
// benchmark harness that regenerates every figure of the paper.
package dita

import (
	"dita/internal/assign"
	"dita/internal/core"
	"dita/internal/dataset"
	"dita/internal/influence"
	"dita/internal/model"
	"dita/internal/simulate"
)

// Domain types (see internal/model for full documentation).
type (
	// Task is a spatial task s = (l, p, ϕ, C).
	Task = model.Task
	// Worker is a worker w = (l, r).
	Worker = model.Worker
	// Instance is one assignment round's input.
	Instance = model.Instance
	// Assignment is a single worker-task pair.
	Assignment = model.Assignment
	// AssignmentSet is a complete assignment with realized influences.
	AssignmentSet = model.AssignmentSet
	// CheckIn is one historical task-performing record.
	CheckIn = model.CheckIn
	// History is a worker's time-ordered record list.
	History = model.History
	// WorkerID, TaskID, VenueID and CategoryID are the dense identifier
	// types shared across the library.
	WorkerID   = model.WorkerID
	TaskID     = model.TaskID
	VenueID    = model.VenueID
	CategoryID = model.CategoryID
)

// Framework types.
type (
	// Config gathers all training knobs (zero value = paper defaults).
	Config = core.Config
	// Framework is a trained DITA pipeline.
	Framework = core.Framework
	// TrainingData is the input of Train.
	TrainingData = core.TrainingData
	// Metrics are the per-assignment evaluation measurements.
	Metrics = core.Metrics
	// Session is the incremental online phase: it carries per-task and
	// per-worker influence state across assignment instants, so an
	// instant only pays for newly arrived entities. Open one with
	// Framework.PrepareSession; evaluators are bit-identical to cold
	// Framework.Prepare ones for the same seed.
	Session = core.Session
)

// Train fits the three influence models and returns a ready framework.
func Train(data TrainingData, cfg Config) (*Framework, error) {
	return core.Train(data, cfg)
}

// Assignment algorithms.
type Algorithm = assign.Algorithm

// The five algorithms of the paper's evaluation.
const (
	// MTA maximizes only the number of assigned tasks (baseline).
	MTA = assign.MTA
	// IA is the basic Influence-aware Assignment (min-cost max-flow).
	IA = assign.IA
	// EIA adds location entropy to IA's edge costs.
	EIA = assign.EIA
	// DIA discounts influence by travel cost.
	DIA = assign.DIA
	// MI maximizes only total influence (baseline).
	MI = assign.MI
	// MIX is the exact maximum-influence ablation: the assignment of
	// maximal total influence (maximal cardinality among those), solved by
	// min-cost flow per feasibility component. It is not part of the
	// paper's study — it exists to measure how far the greedy MI sits
	// from the optimum.
	MIX = assign.MIX
)

// Components selects which influence factors are active; used by the
// paper's ablation variants.
type Components = influence.Components

// Component masks.
const (
	// All enables affinity, willingness and propagation (the IA model).
	All = influence.All
	// WP is IA-WP: willingness + propagation.
	WP = influence.WP
	// AP is IA-AP: affinity + propagation.
	AP = influence.AP
	// AW is IA-AW: affinity + willingness.
	AW = influence.AW
)

// Dataset simulation.
type (
	// DatasetParams configures the synthetic geo-social generator.
	DatasetParams = dataset.Params
	// Dataset is a generated (or loaded) geo-social check-in dataset.
	Dataset = dataset.Data
	// SnapshotParams selects one time instance from a dataset.
	SnapshotParams = dataset.SnapshotParams
	// Venue is a check-in location that can spawn tasks.
	Venue = dataset.Venue
)

// BrightkiteLike returns the Brightkite-flavoured dataset preset.
func BrightkiteLike() DatasetParams { return dataset.BrightkiteLike() }

// FoursquareLike returns the FourSquare-flavoured dataset preset.
func FoursquareLike() DatasetParams { return dataset.FoursquareLike() }

// Generate builds a synthetic dataset from the parameters.
func Generate(p DatasetParams) (*Dataset, error) { return dataset.Generate(p) }

// LoadDataset reads a dataset previously written with (*Dataset).Save.
func LoadDataset(dir string) (*Dataset, error) { return dataset.Load(dir) }

// TrainingDataFrom extracts a TrainingData view of everything in the
// dataset strictly before the cutoff (hours since epoch) — the standard
// way to train on history and evaluate on later days.
func TrainingDataFrom(d *Dataset, cutoffHours float64) TrainingData {
	docs, vocab := d.Documents(cutoffHours)
	return TrainingData{
		Graph:     d.Graph,
		Histories: d.HistoriesBefore(cutoffHours),
		Documents: docs,
		Vocab:     vocab,
		Records:   d.CheckInsBefore(cutoffHours),
	}
}

// FeasiblePairs exposes the spatio-temporal feasibility computation: all
// (worker, task) pairs of the instance satisfying the reachable-radius
// and deadline constraints at the given speed (km/h; <=0 means 5).
func FeasiblePairs(inst *Instance, speedKmH float64) []assign.Pair {
	return assign.FeasiblePairs(inst, speedKmH)
}

// TileStats reports the shape of a tiled solve: spatial tile count of a
// tiled feasibility scan, and the component structure of the
// feasibility graph the solver decomposed over.
type TileStats = assign.TileStats

// TiledFeasiblePairs is FeasiblePairs through spatial partitioning: the
// world is cut into reachability-sized tiles scanned independently on up
// to parallelism pool workers (<=0 means all cores). The pair list is
// bit-identical to FeasiblePairs at any parallelism; the extra return is
// the tile count. Meant for the 100k–1M-entity regime — at small pools
// the global scan's constants win.
func TiledFeasiblePairs(inst *Instance, speedKmH float64, parallelism int) ([]assign.Pair, int) {
	return assign.TiledFeasiblePairs(inst, speedKmH, parallelism)
}

// PairIndex carries the feasible-pair set across the instants of a
// streaming run, paying only for arrivals, retirements and deadline
// decay; its output is bit-identical to FeasiblePairs on each instant.
// Sessions maintain one automatically (Session.Pairs / Session.Assign);
// the type is exported for callers that run their own instant loop.
type PairIndex = assign.PairIndex

// NewPairIndex returns an empty incremental feasible-pair index for the
// given travel speed (km/h; <=0 means 5). See assign.PairIndex for the
// identity preconditions streaming callers must uphold.
func NewPairIndex(speedKmH float64) *PairIndex {
	return assign.NewPairIndex(speedKmH)
}

// NewPairIndexParallel is NewPairIndex with a worker-pool bound for the
// admission scans of large arrival bursts (<=0 means all cores); the
// emitted pairs are bit-identical at any setting.
func NewPairIndexParallel(speedKmH float64, parallelism int) *PairIndex {
	return assign.NewPairIndexParallel(speedKmH, parallelism)
}

// Streaming simulation: a platform loop with carry-over state, where a
// worker stays online until assigned and a task remains available until
// it expires.
type (
	// Platform is the streaming simulator's carry-over state.
	Platform = simulate.Platform
	// SimConfig drives a streaming run.
	SimConfig = simulate.Config
	// SimResult aggregates a streaming run.
	SimResult = simulate.Result
	// ArrivingWorker is a worker joining the platform at a given time.
	ArrivingWorker = simulate.ArrivingWorker
	// ArrivingTask is a task published at a given time.
	ArrivingTask = simulate.ArrivingTask
)

// NewPlatform binds a streaming simulator to a trained framework.
func NewPlatform(fw *Framework, cfg SimConfig) (*Platform, error) {
	return simulate.New(fw, cfg)
}
