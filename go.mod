module dita

go 1.24
