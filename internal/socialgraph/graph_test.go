package socialgraph

import (
	"math"
	"testing"
	"testing/quick"

	"dita/internal/randx"
)

func TestNewBasics(t *testing.T) {
	g, err := New(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 5 {
		t.Fatalf("N=%d M=%d, want 4/5", g.N(), g.M())
	}
	if got := g.Out(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Out(0) = %v, want [1 2]", got)
	}
	if got := g.In(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("In(2) = %v, want [0 1]", got)
	}
	if g.OutDegree(0) != 2 || g.InDegree(0) != 1 {
		t.Errorf("degrees of 0 = out %d in %d, want 2/1", g.OutDegree(0), g.InDegree(0))
	}
}

func TestNewDropsSelfLoopsAndDuplicates(t *testing.T) {
	g, err := New(3, []Edge{{0, 1}, {0, 1}, {1, 1}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Errorf("M = %d, want 2 (dup and self-loop dropped)", g.M())
	}
}

func TestNewRejectsOutOfRange(t *testing.T) {
	if _, err := New(2, []Edge{{0, 2}}); err == nil {
		t.Error("edge to node 2 in a 2-node graph accepted")
	}
	if _, err := New(2, []Edge{{-1, 0}}); err == nil {
		t.Error("negative endpoint accepted")
	}
	if _, err := New(-1, nil); err == nil {
		t.Error("negative node count accepted")
	}
}

func TestHasEdge(t *testing.T) {
	g := MustNew(5, []Edge{{0, 3}, {3, 1}, {1, 4}})
	for _, tc := range []struct {
		u, v int32
		want bool
	}{
		{0, 3, true}, {3, 1, true}, {1, 4, true},
		{3, 0, false}, {0, 1, false}, {4, 4, false},
	} {
		if got := g.HasEdge(tc.u, tc.v); got != tc.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", tc.u, tc.v, got, tc.want)
		}
	}
}

func TestInformProb(t *testing.T) {
	// Node 2 has in-degree 3 → each in-edge informs with probability 1/3.
	g := MustNew(4, []Edge{{0, 2}, {1, 2}, {3, 2}, {2, 0}})
	if got := g.InformProb(0, 2); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("InformProb(0,2) = %v, want 1/3", got)
	}
	if got := g.InformProb(2, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("InformProb(2,0) = %v, want 1 (in-degree 1)", got)
	}
	if got := g.InformProb(0, 1); got != 0 {
		t.Errorf("InformProb into isolated-in node = %v, want 0", got)
	}
}

func TestReverse(t *testing.T) {
	g := MustNew(4, []Edge{{0, 1}, {1, 2}, {0, 3}})
	r := g.Reverse()
	if r.M() != g.M() {
		t.Fatalf("reverse changed edge count: %d vs %d", r.M(), g.M())
	}
	for _, e := range g.Edges() {
		if !r.HasEdge(e.To, e.From) {
			t.Errorf("reverse missing edge (%d,%d)", e.To, e.From)
		}
	}
	// In/out adjacency swap.
	for u := int32(0); u < int32(g.N()); u++ {
		if g.OutDegree(u) != r.InDegree(u) || g.InDegree(u) != r.OutDegree(u) {
			t.Errorf("degree mismatch at %d after reverse", u)
		}
	}
}

func TestReversePropertyRandomGraphs(t *testing.T) {
	f := func(seed uint64) bool {
		rng := randx.New(seed)
		g := GenerateErdosRenyi(20, 0.15, rng)
		rr := g.Reverse().Reverse()
		if rr.M() != g.M() {
			return false
		}
		for _, e := range g.Edges() {
			if !rr.HasEdge(e.From, e.To) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBFS(t *testing.T) {
	// 0→1→2→3, 4 unreachable.
	g := MustNew(5, []Edge{{0, 1}, {1, 2}, {2, 3}})
	dist := g.BFS(0)
	want := []int32{0, 1, 2, 3, -1}
	for i, w := range want {
		if dist[i] != w {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], w)
		}
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	// Two components: {0,1,2} (via directed edges either way) and {3,4}.
	g := MustNew(5, []Edge{{0, 1}, {2, 1}, {4, 3}})
	comp, n := g.WeaklyConnectedComponents()
	if n != 2 {
		t.Fatalf("component count = %d, want 2", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("nodes 0-2 not in one component: %v", comp)
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Errorf("nodes 3-4 wrong component: %v", comp)
	}
}

func TestPreferentialAttachmentShape(t *testing.T) {
	rng := randx.New(42)
	const n, m = 500, 3
	g := GeneratePreferentialAttachment(n, m, rng)
	if g.N() != n {
		t.Fatalf("N = %d, want %d", g.N(), n)
	}
	// Symmetric: every edge has its reverse.
	for _, e := range g.Edges() {
		if !g.HasEdge(e.To, e.From) {
			t.Fatalf("PA graph not symmetric: (%d,%d) present, reverse missing", e.From, e.To)
		}
	}
	// Connected (PA attaches every newcomer to the existing component).
	_, comps := g.WeaklyConnectedComponents()
	if comps != 1 {
		t.Errorf("PA graph has %d components, want 1", comps)
	}
	// Heavy tail: the max degree should far exceed the mean.
	meanDeg := float64(g.M()) / float64(n)
	maxDeg := 0
	for u := int32(0); u < int32(n); u++ {
		if d := g.OutDegree(u); d > maxDeg {
			maxDeg = d
		}
	}
	if float64(maxDeg) < 4*meanDeg {
		t.Errorf("max degree %d vs mean %.1f: degree distribution suspiciously flat", maxDeg, meanDeg)
	}
}

func TestPreferentialAttachmentDeterministic(t *testing.T) {
	a := GeneratePreferentialAttachment(200, 2, randx.New(7))
	b := GeneratePreferentialAttachment(200, 2, randx.New(7))
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	rng := randx.New(3)
	const n = 100
	p := 0.1
	g := GenerateErdosRenyi(n, p, rng)
	want := p * float64(n) * float64(n-1)
	got := float64(g.M())
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("ER edge count %v, want ~%v", got, want)
	}
}

func TestDegreeHistogramSumsToN(t *testing.T) {
	g := GeneratePreferentialAttachment(300, 2, randx.New(9))
	total := 0
	for _, c := range g.DegreeHistogram() {
		total += c
	}
	if total != g.N() {
		t.Errorf("histogram total %d, want %d", total, g.N())
	}
}

func TestInformProbSumsToOneOverInNeighbors(t *testing.T) {
	// For every node v with in-degree > 0, Σ_u InformProb(u, v) over its
	// in-neighbors is exactly 1 — the paper's 1/id_e normalization.
	g := GeneratePreferentialAttachment(120, 3, randx.New(21))
	for v := int32(0); v < int32(g.N()); v++ {
		in := g.In(v)
		if len(in) == 0 {
			continue
		}
		sum := 0.0
		for _, u := range in {
			sum += g.InformProb(u, v)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("node %d: in-probabilities sum to %v", v, sum)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := MustNew(0, nil)
	if g.N() != 0 || g.M() != 0 {
		t.Errorf("empty graph N=%d M=%d", g.N(), g.M())
	}
	comp, n := g.WeaklyConnectedComponents()
	if len(comp) != 0 || n != 0 {
		t.Errorf("empty graph components = %v, %d", comp, n)
	}
}
