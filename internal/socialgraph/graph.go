// Package socialgraph implements the directed social network substrate
// the worker-propagation component runs on: a compact CSR graph with both
// out- and in-adjacency, the in-degree-based edge probabilities the paper
// assigns to the Independent Cascade model (P_j = 1/id_e), and generators
// that produce Brightkite/FourSquare-like topologies (heavy-tailed degree
// distributions via preferential attachment).
package socialgraph

import (
	"fmt"
	"sort"

	"dita/internal/randx"
)

// Edge is a directed edge from From to To: From can inform To. The JSON
// tags are part of the framework artifact's pinned wire format (see
// internal/fwio).
type Edge struct {
	From int32 `json:"from"`
	To   int32 `json:"to"`
}

// Graph is an immutable directed graph over n nodes stored in CSR form.
// Both orientations are materialized because forward IC simulation walks
// out-edges while RRR sampling walks in-edges.
type Graph struct {
	n int
	// out adjacency
	outStart []int32
	outTo    []int32
	// in adjacency
	inStart []int32
	inFrom  []int32
}

// New builds a graph over n nodes from the given edge list. Self-loops and
// duplicate edges are dropped; out-of-range endpoints cause an error.
func New(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("socialgraph: negative node count %d", n)
	}
	clean := make([]Edge, 0, len(edges))
	seen := make(map[Edge]bool, len(edges))
	for _, e := range edges {
		if e.From < 0 || int(e.From) >= n || e.To < 0 || int(e.To) >= n {
			return nil, fmt.Errorf("socialgraph: edge (%d,%d) out of range [0,%d)", e.From, e.To, n)
		}
		if e.From == e.To || seen[e] {
			continue
		}
		seen[e] = true
		clean = append(clean, e)
	}
	g := &Graph{n: n}
	g.outStart, g.outTo = buildCSR(n, clean, func(e Edge) (int32, int32) { return e.From, e.To })
	g.inStart, g.inFrom = buildCSR(n, clean, func(e Edge) (int32, int32) { return e.To, e.From })
	return g, nil
}

// MustNew is New but panics on error; intended for generators and tests
// whose inputs are correct by construction.
func MustNew(n int, edges []Edge) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func buildCSR(n int, edges []Edge, key func(Edge) (int32, int32)) (start, adj []int32) {
	start = make([]int32, n+1)
	for _, e := range edges {
		s, _ := key(e)
		start[s+1]++
	}
	for i := 1; i <= n; i++ {
		start[i] += start[i-1]
	}
	adj = make([]int32, len(edges))
	cursor := make([]int32, n)
	copy(cursor, start[:n])
	for _, e := range edges {
		s, t := key(e)
		adj[cursor[s]] = t
		cursor[s]++
	}
	// Sort each adjacency list for determinism and cache-friendly scans.
	for i := 0; i < n; i++ {
		seg := adj[start[i]:start[i+1]]
		sort.Slice(seg, func(a, b int) bool { return seg[a] < seg[b] })
	}
	return start, adj
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of directed edges.
func (g *Graph) M() int { return len(g.outTo) }

// Out returns the out-neighbors of u (nodes u can inform). The returned
// slice aliases internal storage and must not be modified.
func (g *Graph) Out(u int32) []int32 { return g.outTo[g.outStart[u]:g.outStart[u+1]] }

// In returns the in-neighbors of v (nodes that can inform v). The returned
// slice aliases internal storage and must not be modified.
func (g *Graph) In(v int32) []int32 { return g.inFrom[g.inStart[v]:g.inStart[v+1]] }

// OutDegree returns |Out(u)|.
func (g *Graph) OutDegree(u int32) int { return int(g.outStart[u+1] - g.outStart[u]) }

// InDegree returns |In(v)|.
func (g *Graph) InDegree(v int32) int { return int(g.inStart[v+1] - g.inStart[v]) }

// HasEdge reports whether the directed edge (u,v) exists.
func (g *Graph) HasEdge(u, v int32) bool {
	adj := g.Out(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// InformProb returns the paper's informed probability for the edge (u,v):
// 1/id_e where id_e is the in-degree of v (the number of edges sharing v
// as end point). It is zero when v has no in-edges (then no edge (u,v)
// exists either).
func (g *Graph) InformProb(u, v int32) float64 {
	d := g.InDegree(v)
	if d == 0 {
		return 0
	}
	return 1 / float64(d)
}

// Edges reconstructs the (deduplicated, sorted) edge list. Intended for
// persistence and tests, not hot paths.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.M())
	for u := int32(0); u < int32(g.n); u++ {
		for _, v := range g.Out(u) {
			edges = append(edges, Edge{From: u, To: v})
		}
	}
	return edges
}

// Wire is the graph's serialized form: the node count plus the
// deduplicated, sorted edge list. Rebuilding through New recreates the
// CSR arrays bit-identically (New sorts and dedups, and Edges emits the
// already-sorted unique list), so a round trip is DeepEqual-exact.
type Wire struct {
	N     int    `json:"n"`
	Edges []Edge `json:"edges"`
}

// Wire returns the graph's serialized form.
func (g *Graph) Wire() Wire { return Wire{N: g.n, Edges: g.Edges()} }

// FromWire rebuilds a graph from its serialized form, validating every
// edge endpoint against the node count.
func FromWire(w Wire) (*Graph, error) { return New(w.N, w.Edges) }

// Reverse returns a new graph with every edge direction flipped. The RRR
// sampler does not need it (it walks In directly), but the reverse graph
// matches Definition 5 of the paper and is useful in tests.
func (g *Graph) Reverse() *Graph {
	edges := g.Edges()
	rev := make([]Edge, len(edges))
	for i, e := range edges {
		rev[i] = Edge{From: e.To, To: e.From}
	}
	return MustNew(g.n, rev)
}

// BFS runs a breadth-first traversal from src over out-edges and returns
// the hop distance to every node (-1 when unreachable).
func (g *Graph) BFS(src int32) []int32 {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Out(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// WeaklyConnectedComponents labels every node with a component id
// (0-based, by discovery order) ignoring edge directions, and returns the
// label slice plus the component count.
func (g *Graph) WeaklyConnectedComponents() ([]int32, int) {
	comp := make([]int32, g.n)
	for i := range comp {
		comp[i] = -1
	}
	next := int32(0)
	var queue []int32
	for s := int32(0); s < int32(g.n); s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = next
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Out(u) {
				if comp[v] < 0 {
					comp[v] = next
					queue = append(queue, v)
				}
			}
			for _, v := range g.In(u) {
				if comp[v] < 0 {
					comp[v] = next
					queue = append(queue, v)
				}
			}
		}
		next++
	}
	return comp, int(next)
}

// DegreeHistogram returns a map from out-degree to node count; tests use
// it to confirm heavy-tailed generator output.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for u := int32(0); u < int32(g.n); u++ {
		h[g.OutDegree(u)]++
	}
	return h
}

// GeneratePreferentialAttachment builds an undirected preferential-
// attachment (Barabási–Albert) network over n nodes with m edges added
// per arriving node, materialized as a symmetric directed graph — the
// shape of real friendship networks like Brightkite's and FourSquare's,
// whose degree distributions are heavy-tailed. The first m+1 nodes form a
// clique seed.
func GeneratePreferentialAttachment(n, m int, rng *randx.Rand) *Graph {
	if m < 1 {
		m = 1
	}
	if n < m+2 {
		n = m + 2
	}
	// repeated-node list: each endpoint append makes future attachment
	// proportional to degree.
	repeated := make([]int32, 0, 2*n*m)
	var edges []Edge
	addUndirected := func(u, v int32) {
		edges = append(edges, Edge{From: u, To: v}, Edge{From: v, To: u})
		repeated = append(repeated, u, v)
	}
	for u := 0; u <= m; u++ {
		for v := 0; v < u; v++ {
			addUndirected(int32(u), int32(v))
		}
	}
	targets := make(map[int32]bool, m)
	ordered := make([]int32, 0, m)
	for u := m + 1; u < n; u++ {
		for k := range targets {
			delete(targets, k)
		}
		ordered = ordered[:0]
		// Freeze the sampling pool before this node's edges are added so
		// the node never attaches to itself via its own fresh endpoints.
		pool := len(repeated)
		for len(targets) < m {
			t := repeated[rng.Intn(pool)]
			if t != int32(u) && !targets[t] {
				targets[t] = true
				ordered = append(ordered, t)
			}
		}
		for _, t := range ordered {
			addUndirected(int32(u), t)
		}
	}
	return MustNew(n, edges)
}

// GenerateErdosRenyi builds a directed G(n, p) graph; used by tests to
// cross-check estimators on unstructured topologies.
func GenerateErdosRenyi(n int, p float64, rng *randx.Rand) *Graph {
	var edges []Edge
	for u := int32(0); u < int32(n); u++ {
		for v := int32(0); v < int32(n); v++ {
			if u != v && rng.Bool(p) {
				edges = append(edges, Edge{From: u, To: v})
			}
		}
	}
	return MustNew(n, edges)
}
