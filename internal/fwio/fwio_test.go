package fwio

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dita/internal/assign"
	"dita/internal/core"
	"dita/internal/dataset"
	"dita/internal/experiments"
	"dita/internal/lda"
	"dita/internal/rrr"
)

// testData generates the small shared dataset every test here trains
// on; cached across tests in the package run.
var testDataCache *dataset.Data

func testData(t *testing.T) *dataset.Data {
	t.Helper()
	if testDataCache != nil {
		return testDataCache
	}
	p := dataset.BrightkiteLike()
	p.NumUsers = 150
	p.NumVenues = 180
	p.Days = 6
	p.Seed = 23
	data, err := dataset.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	testDataCache = data
	return data
}

const testCutoff = 5 * 24.0

func trainConfig(par int) core.Config {
	return core.Config{
		LDA:                     lda.Config{Topics: 8, TrainIters: 15},
		TopWillingnessLocations: 8,
		Parallelism:             par,
	}
}

func trainAt(t *testing.T, data *dataset.Data, cfg core.Config) *core.Framework {
	t.Helper()
	docs, vocab := data.Documents(testCutoff)
	fw, err := core.Train(core.TrainingData{
		Graph:     data.Graph,
		Histories: data.HistoriesBefore(testCutoff),
		Documents: docs,
		Vocab:     vocab,
		Records:   data.CheckInsBefore(testCutoff),
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

// TestArtifactBitIdenticalAcrossParallelism: training at any worker
// count must seal into the very same bytes — the artifact is the
// model's identity, and Parallelism is not part of it.
func TestArtifactBitIdenticalAcrossParallelism(t *testing.T) {
	data := testData(t)
	base, baseSum, err := Encode(trainAt(t, data, trainConfig(1)), "test-src")
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8} {
		got, sum, err := Encode(trainAt(t, data, trainConfig(par)), "test-src")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, base) {
			t.Fatalf("artifact bytes differ between Parallelism 1 and %d", par)
		}
		if sum != baseSum {
			t.Fatalf("checksum differs between Parallelism 1 and %d: %s vs %s", par, sum, baseSum)
		}
	}
}

// TestRoundTripDeepEqual: decoding an artifact must reproduce the
// trained framework exactly — every component, the stored config, and
// the theta aliasing — and the reloaded framework's assignments must be
// indistinguishable from the trained one's.
func TestRoundTripDeepEqual(t *testing.T) {
	data := testData(t)
	fw := trainAt(t, data, trainConfig(1))
	raw, sum, err := Encode(fw, "test-src")
	if err != nil {
		t.Fatal(err)
	}
	fw2, info, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if info.Source != "test-src" || info.Checksum != sum {
		t.Errorf("info %+v, want source test-src checksum %s", info, sum)
	}
	if !reflect.DeepEqual(fw, fw2) {
		t.Fatal("decoded framework is not DeepEqual to the trained one")
	}
	// Theta aliasing must be rebuilt, not copied: a loaded framework's
	// rows live in its own LDA model exactly as after Train.
	theta := fw2.Theta()
	for u, row := range theta {
		if row != nil && &row[0] != &fw2.LDA().DocTopics(u)[0] {
			t.Fatalf("theta row %d is a copy, not an alias into the LDA model", u)
		}
	}

	inst, err := data.Snapshot(dataset.SnapshotParams{
		Day: 5, NumTasks: 50, NumWorkers: 40, ValidHours: 5, RadiusKm: 25, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range assign.Algorithms {
		setA, mA := fw.Assign(inst, alg, 7)
		setB, mB := fw2.Assign(inst, alg, 7)
		if !reflect.DeepEqual(setA, setB) {
			t.Fatalf("%v: loaded framework's assignment diverged from the trained one's", alg)
		}
		mA.CPU, mB.CPU = 0, 0
		if mA != mB {
			t.Fatalf("%v: metrics %+v vs %+v", alg, mA, mB)
		}
	}
}

// TestLoadVersusRetrainSweep is the one-train-many-serve acceptance
// gate: a sweep served by a loaded artifact must be bit-identical
// (CPU wall clock aside) to one served by an in-process retrain, at
// every evaluation parallelism.
func TestLoadVersusRetrainSweep(t *testing.T) {
	data := testData(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "fw.json")
	if _, err := Write(path, trainAt(t, data, trainConfig(2)), "test-src"); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	sweeps := experiments.Sweeps{Tasks: []int{40, 80}}
	for _, par := range []int{1, 2, 8} {
		p := experiments.Params{
			NumTasks: 60, NumWorkers: 50, ValidHours: 5, RadiusKm: 25,
			Days: []int{5}, Seed: 42, Parallelism: par,
		}
		retrained, err := experiments.NewRunner(data, trainConfig(par), p)
		if err != nil {
			t.Fatal(err)
		}
		served, err := experiments.NewRunnerFromFramework(data, loaded, p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := retrained.RunFigureRaw(9, sweeps)
		if err != nil {
			t.Fatal(err)
		}
		got, err := served.RunFigureRaw(9, sweeps)
		if err != nil {
			t.Fatal(err)
		}
		stripCPU(want)
		stripCPU(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d: served sweep diverged from retrained sweep", par)
		}
	}
}

func stripCPU(sr *experiments.SweepRaw) {
	for i := range sr.Jobs {
		for j := range sr.Jobs[i].Metrics {
			sr.Jobs[i].Metrics[j].CPU = 0
		}
	}
}

// TestDropForwardIndexRoundTrip: the optional forward index must stay
// dropped through a round trip, not be resurrected or half-restored.
func TestDropForwardIndexRoundTrip(t *testing.T) {
	data := testData(t)
	cfg := trainConfig(1)
	cfg.RPO = rrr.Params{DropForwardIndex: true}
	fw := trainAt(t, data, cfg)
	if fw.Propagation().HasForwardIndex() {
		t.Fatal("training with DropForwardIndex kept the index")
	}
	raw, _, err := Encode(fw, "")
	if err != nil {
		t.Fatal(err)
	}
	fw2, _, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if fw2.Propagation().HasForwardIndex() {
		t.Fatal("round trip resurrected the dropped forward index")
	}
	if !reflect.DeepEqual(fw, fw2) {
		t.Fatal("decoded framework is not DeepEqual to the trained one")
	}
}

// TestEncodeRejectsBrokenThetaAliasing: the artifact stores only a
// theta index, so a framework whose theta rows diverged from its LDA
// model cannot be encoded faithfully and must be refused.
func TestEncodeRejectsBrokenThetaAliasing(t *testing.T) {
	data := testData(t)
	fw := trainAt(t, data, trainConfig(1))
	theta := make([][]float64, len(fw.Theta()))
	for u, row := range fw.Theta() {
		if row == nil {
			continue
		}
		theta[u] = append([]float64(nil), row...)
	}
	for u := range theta {
		if theta[u] != nil {
			theta[u][0] += 0.25 // diverge one row from the model
			break
		}
	}
	broken, err := core.Restore(fw.Config(), fw.Graph(), fw.LDA(), theta, fw.Mobility(), fw.Entropy(), fw.Propagation())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Encode(broken, ""); err == nil || !strings.Contains(err.Error(), "theta row") {
		t.Fatalf("encoding a framework with diverged theta rows: got err %v", err)
	}
}

// corrupt mutates a sealed artifact through its generic JSON form and
// re-serializes it without resealing, so the seal no longer matches —
// or the envelope itself is broken.
func corrupt(t *testing.T, raw []byte, mutate func(m map[string]any)) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	mutate(m)
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestLoadRejectsCorruptArtifacts: every way an artifact can go bad on
// disk must be rejected at load — naming the offending path, never
// partially used.
func TestLoadRejectsCorruptArtifacts(t *testing.T) {
	data := testData(t)
	fw := trainAt(t, data, trainConfig(1))
	raw, sum, err := Encode(fw, "test-src")
	if err != nil {
		t.Fatal(err)
	}
	// Flip one hex digit of the recorded checksum: the smallest possible
	// corruption that still parses as a sealed artifact.
	flip := byte('0')
	if sum[0] == '0' {
		flip = '1'
	}
	flippedSum := string(flip) + sum[1:]
	cases := []struct {
		name    string
		data    []byte
		wantErr string
	}{
		{"truncated", raw[:len(raw)/2], "reading framework artifact"},
		{"bit-flipped", bytes.Replace(raw, []byte(sum), []byte(flippedSum), 1), "checksum mismatch"},
		{"unsealed", corrupt(t, raw, func(m map[string]any) { delete(m, "checksum") }), "no content checksum"},
		{"version-skew", corrupt(t, raw, func(m map[string]any) { m["version"] = 2 }), "version 2 not supported"},
		{"wrong-kind", corrupt(t, raw, func(m map[string]any) { m["kind"] = "dita-shard" }), `kind "dita-shard"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), tc.name+".json")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			fw, _, err := Load(path)
			if err == nil {
				t.Fatal("corrupt artifact loaded without error")
			}
			if fw != nil {
				t.Error("corrupt artifact returned a non-nil framework")
			}
			if !strings.Contains(err.Error(), path) {
				t.Errorf("error does not name the offending path %s: %v", path, err)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %v does not mention %q", err, tc.wantErr)
			}
		})
	}
	if _, _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file succeeded")
	}
}
