// Package fwio persists trained core.Framework instances: one train,
// many serves. An artifact carries every fitted component — social
// graph, LDA topic model, per-user theta index, Historical Acceptance
// mobility model, location-entropy table, RRR collection — plus the
// full training configuration, in a versioned JSON envelope sealed with
// a SHA-256 content checksum (the same scheme as experiments shard
// artifacts). Loading rebuilds the framework through core.Restore, and
// the round trip is bit-exact: every downstream output of a loaded
// framework — sessions, assignments, sweep metrics — is DeepEqual to
// what retraining from the same dataset would produce.
//
// The wire format is pinned by the component Wire types
// (socialgraph.Wire, lda.Wire, mobility.Wire, entropy.Wire, rrr.Wire)
// and by Version here; a reader rejects any artifact whose version it
// does not speak, whole — an artifact is never partially used.
package fwio

import (
	"encoding/json"
	"fmt"
	"os"
	"slices"

	"dita/internal/atomicio"
	"dita/internal/core"
	"dita/internal/entropy"
	"dita/internal/lda"
	"dita/internal/mobility"
	"dita/internal/rrr"
	"dita/internal/socialgraph"
)

// Kind identifies framework artifacts; a loader handed some other JSON
// file (a shard artifact, a bench report) fails fast on this field
// rather than deep in component validation.
const Kind = "dita-framework"

// Version is the artifact format version this build writes and reads.
// The compatibility rule is exact match: any change to a component wire
// format, the envelope, or the canonical encoding bumps it, and a
// reader rejects every version it does not speak.
const Version = 1

// artifact is the on-disk envelope. Field order is the canonical
// encoding order (struct marshalling is deterministic); Checksum seals
// the whole.
type artifact struct {
	Kind    string `json:"kind"`
	Version int    `json:"version"`
	// Source identifies the training input (dataset name, dimensions,
	// seed, cutoff); consumers compare it against the input they would
	// have trained on so a framework is never served against a sweep it
	// was not fitted for.
	Source string           `json:"source,omitempty"`
	Config core.Config      `json:"config"`
	Graph  socialgraph.Wire `json:"graph"`
	LDA    lda.Wire         `json:"lda"`
	// ThetaUsers lists, in ascending order, the user ids with a topic
	// mixture (users whose training document was non-empty). The rows
	// themselves live in the LDA model's theta; restoring re-aliases
	// them exactly as core.Train does.
	ThetaUsers  []int32       `json:"theta_users"`
	Mobility    mobility.Wire `json:"mobility"`
	Entropy     entropy.Wire  `json:"entropy"`
	Propagation rrr.Wire      `json:"propagation"`
	// Checksum is the SHA-256 of the artifact's canonical encoding
	// (itself with Checksum empty), recorded by Encode and verified by
	// every load: a torn, truncated or bit-flipped artifact is rejected
	// before any component is used.
	Checksum string `json:"checksum,omitempty"`
}

// payload is the canonical byte form the checksum covers: the artifact
// with its Checksum field empty, marshalled compactly (artifacts reach
// tens of megabytes; indentation would double them). The loader
// re-derives these bytes from the decoded value — JSON round-trips
// every finite float64 bit-exactly, so decode-then-re-encode is stable.
func (a *artifact) payload() ([]byte, error) {
	c := *a
	c.Checksum = ""
	return json.Marshal(&c)
}

// Info describes a loaded artifact: where its training input came from
// and the content checksum that sealed it.
type Info struct {
	Source   string
	Checksum string
}

// Encode serializes a trained framework into a sealed artifact and
// returns the bytes plus the content checksum. source is recorded
// verbatim (see artifact.Source).
func Encode(fw *core.Framework, source string) ([]byte, string, error) {
	theta := fw.Theta()
	users := make([]int32, 0, len(theta))
	for u, row := range theta {
		if row == nil {
			continue
		}
		// Train aliases theta rows into the LDA model's theta; the
		// artifact stores only the index list, so a framework whose rows
		// diverged from the model (a hand-built Restore) cannot be
		// encoded faithfully and must be refused.
		if !slices.Equal(row, fw.LDA().DocTopics(u)) {
			return nil, "", fmt.Errorf("fwio: theta row %d does not match the LDA model's document mixture — framework not encodable", u)
		}
		users = append(users, int32(u))
	}
	a := &artifact{
		Kind:        Kind,
		Version:     Version,
		Source:      source,
		Config:      fw.Config(),
		Graph:       fw.Graph().Wire(),
		LDA:         fw.LDA().Wire(),
		ThetaUsers:  users,
		Mobility:    fw.Mobility().Wire(),
		Entropy:     fw.Entropy().Wire(),
		Propagation: fw.Propagation().Wire(),
	}
	body, err := a.payload()
	if err != nil {
		return nil, "", fmt.Errorf("fwio: encoding framework: %w", err)
	}
	a.Checksum = atomicio.Sum(body)
	out, err := json.Marshal(a)
	if err != nil {
		return nil, "", fmt.Errorf("fwio: encoding framework: %w", err)
	}
	return append(out, '\n'), a.Checksum, nil
}

// Write encodes the framework and writes the artifact atomically (temp
// file + fsync + rename), returning the content checksum. A crash
// mid-write leaves at most a *.tmp file, never a half-written artifact.
func Write(path string, fw *core.Framework, source string) (string, error) {
	data, sum, err := Encode(fw, source)
	if err != nil {
		return "", err
	}
	if err := atomicio.WriteFile(path, data, 0o644); err != nil {
		return "", fmt.Errorf("fwio: writing framework artifact: %w", err)
	}
	return sum, nil
}

// Decode parses a sealed artifact and rebuilds the framework. Checks
// run envelope-out: kind, then version, then the content checksum, then
// per-component wire validation — so a version-skewed artifact is
// reported as such rather than as a checksum or component error, and no
// component is ever built from bytes that failed an earlier check.
func Decode(data []byte) (*core.Framework, Info, error) {
	var a artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, Info{}, fmt.Errorf("fwio: reading framework artifact: %w", err)
	}
	if a.Kind != Kind {
		return nil, Info{}, fmt.Errorf("fwio: not a framework artifact (kind %q, want %q)", a.Kind, Kind)
	}
	if a.Version != Version {
		return nil, Info{}, fmt.Errorf("fwio: artifact version %d not supported (this build reads version %d)", a.Version, Version)
	}
	if a.Checksum == "" {
		return nil, Info{}, fmt.Errorf("fwio: framework artifact carries no content checksum — unsealed or truncated write")
	}
	body, err := a.payload()
	if err != nil {
		return nil, Info{}, fmt.Errorf("fwio: reading framework artifact: %w", err)
	}
	if sum := atomicio.Sum(body); sum != a.Checksum {
		return nil, Info{}, fmt.Errorf("fwio: framework artifact checksum mismatch (recorded %.12s…, content %.12s…) — torn or corrupted write", a.Checksum, sum)
	}

	g, err := socialgraph.FromWire(a.Graph)
	if err != nil {
		return nil, Info{}, fmt.Errorf("fwio: artifact graph: %w", err)
	}
	ldaModel, err := lda.FromWire(a.LDA)
	if err != nil {
		return nil, Info{}, fmt.Errorf("fwio: artifact LDA model: %w", err)
	}
	mob, err := mobility.FromWire(a.Mobility)
	if err != nil {
		return nil, Info{}, fmt.Errorf("fwio: artifact mobility model: %w", err)
	}
	ent, err := entropy.FromWire(a.Entropy)
	if err != nil {
		return nil, Info{}, fmt.Errorf("fwio: artifact entropy table: %w", err)
	}
	prop, err := rrr.FromWire(g, a.Propagation)
	if err != nil {
		return nil, Info{}, fmt.Errorf("fwio: artifact propagation collection: %w", err)
	}
	theta := make([][]float64, g.N())
	for i, u := range a.ThetaUsers {
		if i > 0 && u <= a.ThetaUsers[i-1] {
			return nil, Info{}, fmt.Errorf("fwio: artifact theta_users not strictly ascending at index %d (%d after %d)", i, u, a.ThetaUsers[i-1])
		}
		if u < 0 || int(u) >= g.N() {
			return nil, Info{}, fmt.Errorf("fwio: artifact theta user %d out of range [0,%d)", u, g.N())
		}
		if int(u) >= len(a.LDA.Theta) {
			return nil, Info{}, fmt.Errorf("fwio: artifact theta user %d beyond the LDA model's %d documents", u, len(a.LDA.Theta))
		}
		theta[u] = ldaModel.DocTopics(int(u))
	}
	fw, err := core.Restore(a.Config, g, ldaModel, theta, mob, ent, prop)
	if err != nil {
		return nil, Info{}, fmt.Errorf("fwio: restoring framework: %w", err)
	}
	return fw, Info{Source: a.Source, Checksum: a.Checksum}, nil
}

// Load reads and decodes an artifact file. Every failure names the
// offending path.
func Load(path string) (*core.Framework, Info, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, Info{}, fmt.Errorf("fwio: loading framework artifact: %w", err)
	}
	fw, info, err := Decode(data)
	if err != nil {
		return nil, Info{}, fmt.Errorf("%s: %w", path, err)
	}
	return fw, info, nil
}
