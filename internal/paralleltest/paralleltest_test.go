package paralleltest

import (
	"strings"
	"testing"

	"dita/internal/parallel"
)

// recorder captures Fatalf calls so the harness's failure path can be
// tested without failing the real test.
type recorder struct {
	testing.TB
	failed bool
	msg    string
}

func (r *recorder) Helper() {}

func (r *recorder) Fatalf(format string, args ...any) {
	r.failed = true
	r.msg = strings.ReplaceAll(format, "%", "")
	for range args {
	}
}

func TestWorkerCountsShape(t *testing.T) {
	if len(WorkerCounts) < 3 || WorkerCounts[0] != 1 {
		t.Fatalf("WorkerCounts = %v: must start with the sequential path and cover several pool widths", WorkerCounts)
	}
	seen := map[int]bool{}
	for _, w := range WorkerCounts {
		if w < 1 || seen[w] {
			t.Fatalf("WorkerCounts = %v: entries must be positive and distinct", WorkerCounts)
		}
		seen[w] = true
	}
}

func TestInvariantAcceptsDeterministicComputation(t *testing.T) {
	// A chunk-disciplined computation on the real pool: each item writes
	// only its own slot, so any worker count yields the same slice.
	Invariant(t, func(parallelism int) any {
		out := make([]int, 100)
		parallel.For(parallelism, len(out), func(_, i int) {
			out[i] = i * i
		})
		return out
	})
}

func TestInvariantCatchesWorkerCountDependence(t *testing.T) {
	rec := &recorder{}
	Invariant(rec, func(parallelism int) any {
		return parallelism // observably depends on the knob
	})
	if !rec.failed {
		t.Fatal("harness accepted a result that depends on the worker count")
	}
	if !strings.Contains(rec.msg, "diverged") {
		t.Errorf("failure message %q does not explain the divergence", rec.msg)
	}
}

func TestDescribeTruncatesHugeResults(t *testing.T) {
	huge := make([]byte, 1<<16)
	s := describe(huge)
	if len(s) > 700 {
		t.Errorf("describe returned %d bytes; want a truncated rendering", len(s))
	}
	if !strings.Contains(s, "bytes total") {
		t.Errorf("truncated rendering %q should note the full size", s)
	}
}
