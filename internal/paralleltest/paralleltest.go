// Package paralleltest is the shared determinism test harness for every
// package that exposes a Parallelism knob. The repository-wide contract
// (see internal/parallel) promises bit-identical output at any worker
// count; this package turns that promise into a one-call assertion so
// each parallelized subsystem — RRR sampling, IC Monte Carlo, LDA Gibbs,
// mobility fitting, dataset generation, experiment sweeps — proves
// "parallel == sequential" the same way, and future parallelization PRs
// inherit the suite instead of reinventing it.
//
// Running the harness under `go test -race` doubles as the race check:
// every worker count above one exercises the pool with the detector
// armed.
package paralleltest

import (
	"fmt"
	"reflect"
	"testing"
)

// WorkerCounts are the Parallelism settings every invariance assertion
// exercises: the inline sequential path, the minimal concurrent pool,
// and a pool wider than the work of most test fixtures (which forces
// worker reuse and odd final chunks).
var WorkerCounts = []int{1, 2, 8}

// Invariant runs build at every WorkerCounts setting and fails t unless
// each result is deeply equal to the sequential (Parallelism = 1) one.
//
// build must return the complete observable output of the computation at
// the given worker count. Incidental fields that legitimately vary — CPU
// timings, the Parallelism knob itself if the result retains its config —
// must be normalized (zeroed) by build before returning; everything else
// is compared bit for bit via reflect.DeepEqual, unexported fields
// included.
func Invariant(t testing.TB, build func(parallelism int) any) {
	t.Helper()
	want := build(WorkerCounts[0])
	for _, workers := range WorkerCounts[1:] {
		got := build(workers)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("parallelism %d diverged from sequential result\nsequential: %s\nparallel:   %s",
				workers, describe(want), describe(got))
		}
	}
}

// describe renders a result for the failure message, truncated so a
// multi-megabyte dataset diff does not drown the test log.
func describe(v any) string {
	s := fmt.Sprintf("%+v", v)
	const limit = 600
	if len(s) > limit {
		s = s[:limit] + fmt.Sprintf("... (%d bytes total)", len(s))
	}
	return s
}
