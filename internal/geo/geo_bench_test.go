package geo

import (
	"testing"

	"dita/internal/randx"
)

// BenchmarkGridBuild measures index construction at dataset scale
// (one grid per time instance over the task set).
func BenchmarkGridBuild(b *testing.B) {
	pts := randomPoints(3000, 300, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildGrid(pts, 8)
	}
}

// BenchmarkGridWithin measures one radius query — the per-worker
// feasibility probe (r = 25 km over a 300 km world).
func BenchmarkGridWithin(b *testing.B) {
	pts := randomPoints(3000, 300, 1)
	g := BuildGrid(pts, 8)
	rng := randx.New(2)
	queries := make([]Point, 256)
	for i := range queries {
		queries[i] = Point{rng.Float64() * 300, rng.Float64() * 300}
	}
	var buf []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Within(queries[i%len(queries)], 25, buf[:0])
	}
}

// BenchmarkBruteWithin is the baseline the grid index replaces.
func BenchmarkBruteWithin(b *testing.B) {
	pts := randomPoints(3000, 300, 1)
	q := Point{150, 150}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bruteWithin(pts, q, 25)
	}
}

// BenchmarkGridNearest measures the expanding-ring nearest query used
// by the trajectory generator.
func BenchmarkGridNearest(b *testing.B) {
	pts := randomPoints(3000, 300, 1)
	g := BuildGrid(pts, 8)
	rng := randx.New(3)
	queries := make([]Point, 256)
	for i := range queries {
		queries[i] = Point{rng.Float64() * 300, rng.Float64() * 300}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Nearest(queries[i%len(queries)])
	}
}
