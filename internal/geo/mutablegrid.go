package geo

import (
	"fmt"
	"math"
	"slices"
)

// MutableGrid is a uniform bucket grid over a *changing* set of points,
// keyed by caller-chosen int32 ids. Where Grid (BuildGrid) indexes a
// fixed point set once, MutableGrid supports Insert and Remove between
// queries, which is what the streaming platform needs: workers and tasks
// enter and leave the pool at every instant, and rebuilding an immutable
// index per instant is exactly the cost the incremental feasible-pair
// maintenance exists to avoid.
//
// Cells are cellSize × cellSize squares on an unbounded lattice (buckets
// materialize on demand in a hash map), so the indexed area never needs
// to be known up front. Within uses the same predicate as Grid.Within —
// Dist2(p, q) <= d*d — and returns ids sorted ascending, so results are
// deterministic and bit-compatible with the immutable index.
type MutableGrid struct {
	cellSize float64
	pts      map[int32]Point
	cells    map[uint64][]int32
}

// NewMutableGrid returns an empty mutable grid with the given cell size
// (kilometres). The cell size only affects performance, never results;
// pick something near a quarter of the typical query radius. Non-positive
// values default to 1.
func NewMutableGrid(cellSize float64) *MutableGrid {
	if cellSize <= 0 {
		cellSize = 1
	}
	return &MutableGrid{
		cellSize: cellSize,
		pts:      make(map[int32]Point),
		cells:    make(map[uint64][]int32),
	}
}

// Len returns the number of indexed points.
func (g *MutableGrid) Len() int { return len(g.pts) }

// Contains reports whether id is currently indexed.
func (g *MutableGrid) Contains(id int32) bool {
	_, ok := g.pts[id]
	return ok
}

// Point returns the location stored for id; ok is false when id is not
// indexed.
func (g *MutableGrid) Point(id int32) (Point, bool) {
	p, ok := g.pts[id]
	return p, ok
}

func (g *MutableGrid) key(p Point) uint64 {
	cx := int32(math.Floor(p.X / g.cellSize))
	cy := int32(math.Floor(p.Y / g.cellSize))
	return uint64(uint32(cx))<<32 | uint64(uint32(cy))
}

// Insert indexes p under id. Ids are identities, not positions: inserting
// an id that is already present panics, because a silent overwrite would
// leave the old location's bucket stale.
func (g *MutableGrid) Insert(id int32, p Point) {
	if _, ok := g.pts[id]; ok {
		panic(fmt.Sprintf("geo: MutableGrid id %d inserted twice", id))
	}
	g.pts[id] = p
	k := g.key(p)
	g.cells[k] = append(g.cells[k], id)
}

// Remove drops id from the index. Removing an absent id panics for the
// same identity-hygiene reason Insert does.
func (g *MutableGrid) Remove(id int32) {
	p, ok := g.pts[id]
	if !ok {
		panic(fmt.Sprintf("geo: MutableGrid id %d removed but never inserted", id))
	}
	delete(g.pts, id)
	k := g.key(p)
	bucket := g.cells[k]
	for i, v := range bucket {
		if v == id {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(g.cells, k)
	} else {
		g.cells[k] = bucket
	}
}

// Within appends to dst the ids of all indexed points p with
// Dist(p, q) <= d and returns the extended slice, sorted ascending (the
// same contract as Grid.Within, with ids in place of positions).
func (g *MutableGrid) Within(q Point, d float64, dst []int32) []int32 {
	if len(g.pts) == 0 || d < 0 {
		return dst
	}
	d2 := d * d
	minCX := int64(math.Floor((q.X - d) / g.cellSize))
	maxCX := int64(math.Floor((q.X + d) / g.cellSize))
	minCY := int64(math.Floor((q.Y - d) / g.cellSize))
	maxCY := int64(math.Floor((q.Y + d) / g.cellSize))
	before := len(dst)
	if span := (maxCX - minCX + 1) * (maxCY - minCY + 1); span > int64(len(g.cells)) {
		// The query rectangle covers more cells than are occupied: walk
		// the occupied buckets instead. Map order does not matter — the
		// result is membership-filtered and sorted below.
		for _, bucket := range g.cells {
			for _, id := range bucket {
				if Dist2(g.pts[id], q) <= d2 {
					dst = append(dst, id)
				}
			}
		}
	} else {
		for cy := minCY; cy <= maxCY; cy++ {
			for cx := minCX; cx <= maxCX; cx++ {
				bucket, ok := g.cells[uint64(uint32(cx))<<32|uint64(uint32(cy))]
				if !ok {
					continue
				}
				for _, id := range bucket {
					if Dist2(g.pts[id], q) <= d2 {
						dst = append(dst, id)
					}
				}
			}
		}
	}
	slices.Sort(dst[before:])
	return dst
}
