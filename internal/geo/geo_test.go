package geo

import (
	"math"
	"testing"
	"testing/quick"

	"dita/internal/randx"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDistKnownValues(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"zero", Point{0, 0}, Point{0, 0}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
		{"symmetric offsets", Point{10, 10}, Point{13, 14}, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Dist(tc.p, tc.q); !almostEqual(got, tc.want, 1e-12) {
				t.Errorf("Dist(%v, %v) = %v, want %v", tc.p, tc.q, got, tc.want)
			}
		})
	}
}

func TestDistMetricAxioms(t *testing.T) {
	// Property: Dist is a metric — non-negative, symmetric, zero iff
	// equal (up to fp), and satisfies the triangle inequality.
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		dab, dba := Dist(a, b), Dist(b, a)
		if dab < 0 || dab != dba {
			return false
		}
		// Triangle inequality with an fp tolerance.
		return Dist(a, c) <= dab+Dist(b, c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clamp keeps quick-generated values in a sane numeric range so the
// property is not defeated by inf/NaN-scale inputs.
func clamp(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

func TestDist2ConsistentWithDist(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		d := Dist(a, b)
		return almostEqual(Dist2(a, b), d*d, 1e-6*(1+d*d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTravelTime(t *testing.T) {
	p, q := Point{0, 0}, Point{10, 0}
	if got := TravelTime(p, q, 5); !almostEqual(got, 2, 1e-12) {
		t.Errorf("TravelTime 10km at 5km/h = %v, want 2", got)
	}
	if got := TravelTime(p, q, 0); !math.IsInf(got, 1) {
		t.Errorf("TravelTime at speed 0 = %v, want +Inf", got)
	}
	if got := TravelTime(p, q, -3); !math.IsInf(got, 1) {
		t.Errorf("TravelTime at negative speed = %v, want +Inf", got)
	}
}

func TestLerp(t *testing.T) {
	p, q := Point{0, 0}, Point{10, 20}
	if got := Lerp(p, q, 0); got != p {
		t.Errorf("Lerp t=0 = %v, want %v", got, p)
	}
	if got := Lerp(p, q, 1); got != q {
		t.Errorf("Lerp t=1 = %v, want %v", got, q)
	}
	if got := Lerp(p, q, 0.5); got != (Point{5, 10}) {
		t.Errorf("Lerp t=0.5 = %v, want (5,10)", got)
	}
}

func TestVectorOps(t *testing.T) {
	a, b := Point{1, 2}, Point{3, -4}
	if got := a.Add(b); got != (Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := b.Scale(0.5); got != (Point{1.5, -2}) {
		t.Errorf("Scale = %v", got)
	}
	if got := (Point{3, 4}).Norm(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Point{5, 1}, Point{1, 7})
	if r.Min != (Point{1, 1}) || r.Max != (Point{5, 7}) {
		t.Fatalf("NewRect normalized wrong: %+v", r)
	}
	if r.Width() != 4 || r.Height() != 6 {
		t.Errorf("Width/Height = %v/%v, want 4/6", r.Width(), r.Height())
	}
	if r.Center() != (Point{3, 4}) {
		t.Errorf("Center = %v, want (3,4)", r.Center())
	}
	for _, tc := range []struct {
		p    Point
		want bool
	}{
		{Point{3, 4}, true},
		{Point{1, 1}, true}, // border inclusive
		{Point{5, 7}, true},
		{Point{0.99, 4}, false},
		{Point{3, 7.01}, false},
	} {
		if got := r.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestRectExtendAndBoundOf(t *testing.T) {
	pts := []Point{{3, 3}, {-1, 5}, {2, -2}, {7, 0}}
	r := BoundOf(pts)
	if r.Min != (Point{-1, -2}) || r.Max != (Point{7, 5}) {
		t.Fatalf("BoundOf = %+v", r)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("bound does not contain %v", p)
		}
	}
	if got := BoundOf(nil); got != (Rect{}) {
		t.Errorf("BoundOf(nil) = %+v, want zero Rect", got)
	}
}

func TestRectDistToPoint(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{10, 10})
	tests := []struct {
		p    Point
		want float64
	}{
		{Point{5, 5}, 0},   // inside
		{Point{0, 0}, 0},   // corner
		{Point{15, 5}, 5},  // right of
		{Point{5, -3}, 3},  // below
		{Point{13, 14}, 5}, // diagonal (3,4,5)
		{Point{-3, -4}, 5}, // diagonal other corner
	}
	for _, tc := range tests {
		if got := r.DistToPoint(tc.p); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("DistToPoint(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func randomPoints(n int, extent float64, seed uint64) []Point {
	rng := randx.New(seed)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{rng.Float64() * extent, rng.Float64() * extent}
	}
	return pts
}

func bruteWithin(pts []Point, q Point, d float64) []int {
	var out []int
	for i, p := range pts {
		if Dist(p, q) <= d {
			out = append(out, i)
		}
	}
	return out
}

func TestGridWithinMatchesBruteForce(t *testing.T) {
	for _, n := range []int{0, 1, 17, 400, 2000} {
		pts := randomPoints(n, 100, uint64(n)+7)
		g := BuildGrid(pts, 8)
		rng := randx.New(99)
		for trial := 0; trial < 25; trial++ {
			q := Point{rng.Float64()*120 - 10, rng.Float64()*120 - 10}
			d := rng.Float64() * 30
			got := g.Within(q, d, nil)
			want := bruteWithin(pts, q, d)
			if len(got) != len(want) {
				t.Fatalf("n=%d q=%v d=%.2f: got %d results, want %d", n, q, d, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d q=%v d=%.2f: result %d = %d, want %d", n, q, d, i, got[i], want[i])
				}
			}
		}
	}
}

func TestGridWithinEdgeCases(t *testing.T) {
	pts := []Point{{1, 1}, {1, 1}, {2, 2}}
	g := BuildGrid(pts, 4)
	// Duplicate points both report.
	got := g.Within(Point{1, 1}, 0, nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("duplicate-point query = %v, want [0 1]", got)
	}
	// Negative radius returns nothing.
	if got := g.Within(Point{1, 1}, -1, nil); len(got) != 0 {
		t.Errorf("negative radius = %v, want empty", got)
	}
	// Appends to dst.
	dst := []int{42}
	got = g.Within(Point{2, 2}, 0.1, dst)
	if len(got) != 2 || got[0] != 42 || got[1] != 2 {
		t.Errorf("append semantics broken: %v", got)
	}
}

func TestGridAllIdenticalPoints(t *testing.T) {
	pts := make([]Point, 50)
	for i := range pts {
		pts[i] = Point{3, 3}
	}
	g := BuildGrid(pts, 8)
	if got := g.Within(Point{3, 3}, 0.5, nil); len(got) != 50 {
		t.Errorf("identical points: got %d, want 50", len(got))
	}
	idx, d := g.Nearest(Point{4, 3})
	if idx < 0 || !almostEqual(d, 1, 1e-12) {
		t.Errorf("Nearest on identical points = (%d, %v)", idx, d)
	}
}

func TestGridNearestMatchesBruteForce(t *testing.T) {
	pts := randomPoints(500, 100, 3)
	g := BuildGrid(pts, 8)
	rng := randx.New(17)
	for trial := 0; trial < 50; trial++ {
		q := Point{rng.Float64()*140 - 20, rng.Float64()*140 - 20}
		gotIdx, gotD := g.Nearest(q)
		wantIdx, wantD := -1, math.Inf(1)
		for i, p := range pts {
			if d := Dist(p, q); d < wantD {
				wantIdx, wantD = i, d
			}
		}
		if !almostEqual(gotD, wantD, 1e-9) {
			t.Fatalf("Nearest(%v) dist = %v (idx %d), want %v (idx %d)", q, gotD, gotIdx, wantD, wantIdx)
		}
	}
}

func TestGridNearestEmpty(t *testing.T) {
	g := BuildGrid(nil, 8)
	idx, d := g.Nearest(Point{0, 0})
	if idx != -1 || !math.IsInf(d, 1) {
		t.Errorf("Nearest on empty grid = (%d, %v), want (-1, +Inf)", idx, d)
	}
}

func TestGridPropertyWithinRadiusContainment(t *testing.T) {
	// Property: every reported index is actually within distance d, and
	// growing d never shrinks the result set.
	pts := randomPoints(300, 50, 11)
	g := BuildGrid(pts, 8)
	f := func(qx, qy, d1, d2 float64) bool {
		q := Point{math.Mod(math.Abs(qx), 60), math.Mod(math.Abs(qy), 60)}
		r1 := math.Mod(math.Abs(d1), 25)
		r2 := r1 + math.Mod(math.Abs(d2), 25)
		got1 := g.Within(q, r1, nil)
		got2 := g.Within(q, r2, nil)
		for _, i := range got1 {
			if Dist(pts[i], q) > r1+1e-9 {
				return false
			}
		}
		return len(got2) >= len(got1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
