package geo

import (
	"math"
	"math/rand"
	"testing"
)

func TestTilingCoversBounds(t *testing.T) {
	b := Rect{Min: Point{-3, 2}, Max: Point{17, 9}}
	tl := NewTiling(b, 2.5, 1<<20)
	if tl.Tiles() != tl.NX*tl.NY {
		t.Fatalf("Tiles() = %d, want NX*NY = %d", tl.Tiles(), tl.NX*tl.NY)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		p := Point{
			X: b.Min.X + rng.Float64()*b.Width(),
			Y: b.Min.Y + rng.Float64()*b.Height(),
		}
		tile := tl.TileOf(p)
		if tile < 0 || tile >= tl.Tiles() {
			t.Fatalf("TileOf(%v) = %d out of [0, %d)", p, tile, tl.Tiles())
		}
		tx, ty := tl.Coords(tile)
		if ty*tl.NX+tx != tile {
			t.Fatalf("Coords(%d) = (%d, %d) does not round-trip", tile, tx, ty)
		}
		// The point must actually lie inside (or on the boundary of) the
		// tile's nominal square, modulo border clamping.
		lox := tl.Min.X + float64(tx)*tl.Size
		loy := tl.Min.Y + float64(ty)*tl.Size
		if tx > 0 && p.X < lox-1e-9 || ty > 0 && p.Y < loy-1e-9 {
			t.Fatalf("point %v assigned to tile (%d, %d) starting at (%v, %v)", p, tx, ty, lox, loy)
		}
		if tx < tl.NX-1 && p.X >= lox+tl.Size+1e-9 || ty < tl.NY-1 && p.Y >= loy+tl.Size+1e-9 {
			t.Fatalf("point %v beyond tile (%d, %d)", p, tx, ty)
		}
	}
}

// TestTilingNeighborhood is the geometric guarantee tiled feasibility
// relies on: any two points within one tile size of each other land in
// tiles at most one step apart on each axis, so a 3×3 halo around a
// worker's tile always contains every candidate task.
func TestTilingNeighborhood(t *testing.T) {
	b := Rect{Min: Point{0, 0}, Max: Point{100, 60}}
	tl := NewTiling(b, 7, 1<<20)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		p := Point{X: rng.Float64() * 100, Y: rng.Float64() * 60}
		// Offset by at most the tile size, including exactly the tile size
		// and points pushed onto tile boundaries.
		ang := rng.Float64() * 2 * math.Pi
		r := tl.Size * rng.Float64()
		if i%5 == 0 {
			r = tl.Size // exactly the limit
		}
		q := Point{X: p.X + r*math.Cos(ang), Y: p.Y + r*math.Sin(ang)}
		q.X = math.Min(math.Max(q.X, 0), 100)
		q.Y = math.Min(math.Max(q.Y, 0), 60)
		if Dist(p, q) > tl.Size {
			continue // clamping can only shrink the offset, but stay safe
		}
		px, py := tl.Coords(tl.TileOf(p))
		qx, qy := tl.Coords(tl.TileOf(q))
		if abs(px-qx) > 1 || abs(py-qy) > 1 {
			t.Fatalf("points %v and %v at distance %v ≤ size %v are %d,%d tiles apart",
				p, q, Dist(p, q), tl.Size, abs(px-qx), abs(py-qy))
		}
	}
}

func TestTilingClampGrowsSize(t *testing.T) {
	b := Rect{Min: Point{0, 0}, Max: Point{1000, 1000}}
	tl := NewTiling(b, 0.5, 64)
	if tl.Tiles() > 64 {
		t.Fatalf("tile count %d exceeds cap 64", tl.Tiles())
	}
	if tl.Size < 0.5 {
		t.Fatalf("clamp shrank the tile size to %v", tl.Size)
	}
	// Boundary points of the far corner stay addressable.
	if tile := tl.TileOf(Point{1000, 1000}); tile != tl.Tiles()-1 {
		t.Fatalf("far corner in tile %d, want %d", tile, tl.Tiles()-1)
	}
}

func TestTilingDegenerate(t *testing.T) {
	// Zero-size request (no feasible reach) and a single-point rectangle
	// both degenerate to one tile.
	one := NewTiling(Rect{Min: Point{3, 3}, Max: Point{3, 3}}, 0, 1024)
	if one.Tiles() < 1 {
		t.Fatalf("degenerate tiling has %d tiles", one.Tiles())
	}
	if tile := one.TileOf(Point{3, 3}); tile < 0 || tile >= one.Tiles() {
		t.Fatalf("TileOf on degenerate tiling = %d", tile)
	}
	nan := NewTiling(Rect{Min: Point{0, 0}, Max: Point{10, 10}}, math.NaN(), 1024)
	if nan.Tiles() < 1 || !(nan.Size > 0) {
		t.Fatalf("NaN size produced %d tiles of size %v", nan.Tiles(), nan.Size)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
