package geo

import (
	"reflect"
	"testing"
	"testing/quick"

	"dita/internal/randx"
)

// bruteWithinIDs is the reference predicate: ids of all live points
// within d of q, ascending.
func bruteWithinIDs(pts map[int32]Point, q Point, d float64) []int32 {
	var out []int32
	max := int32(-1)
	for id := range pts {
		if id > max {
			max = id
		}
	}
	for id := int32(0); id <= max; id++ {
		if p, ok := pts[id]; ok && Dist2(p, q) <= d*d {
			out = append(out, id)
		}
	}
	return out
}

// TestMutableGridMatchesBruteForce churns a grid through random inserts,
// removes and queries and checks every query against a brute-force scan.
func TestMutableGridMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		rng := randx.New(seed)
		cell := 0.5 + rng.Float64()*10
		g := NewMutableGrid(cell)
		live := map[int32]Point{}
		next := int32(0)
		for step := 0; step < 120; step++ {
			switch {
			case len(live) == 0 || rng.Float64() < 0.55:
				p := Point{X: rng.Float64()*100 - 50, Y: rng.Float64()*100 - 50}
				g.Insert(next, p)
				live[next] = p
				next++
			default:
				// Remove an arbitrary live id (lowest for determinism).
				for id := int32(0); id < next; id++ {
					if _, ok := live[id]; ok {
						g.Remove(id)
						delete(live, id)
						break
					}
				}
			}
			q := Point{X: rng.Float64()*120 - 60, Y: rng.Float64()*120 - 60}
			d := rng.Float64() * 40
			got := g.Within(q, d, nil)
			want := bruteWithinIDs(live, q, d)
			if !reflect.DeepEqual(got, want) {
				t.Logf("seed %d step %d: got %v want %v", seed, step, got, want)
				return false
			}
			if g.Len() != len(live) {
				t.Logf("seed %d step %d: Len %d want %d", seed, step, g.Len(), len(live))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMutableGridMatchesImmutableGrid: for the same point set, the
// mutable grid's Within answers exactly match BuildGrid's (ids stand in
// for positions).
func TestMutableGridMatchesImmutableGrid(t *testing.T) {
	rng := randx.New(7)
	var pts []Point
	mg := NewMutableGrid(3)
	for i := 0; i < 200; i++ {
		p := Point{X: rng.Float64() * 80, Y: rng.Float64() * 80}
		pts = append(pts, p)
		mg.Insert(int32(i), p)
	}
	ig := BuildGrid(pts, 8)
	for trial := 0; trial < 50; trial++ {
		q := Point{X: rng.Float64() * 90, Y: rng.Float64() * 90}
		d := rng.Float64() * 30
		want := ig.Within(q, d, nil)
		got := mg.Within(q, d, nil)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d ids vs %d positions", trial, len(got), len(want))
		}
		for i := range got {
			if int(got[i]) != want[i] {
				t.Fatalf("trial %d: id %d != position %d", trial, got[i], want[i])
			}
		}
	}
}

// TestMutableGridHugeRadiusFallback: a query radius spanning far more
// cells than exist must still answer correctly (the occupied-bucket
// fallback path).
func TestMutableGridHugeRadiusFallback(t *testing.T) {
	g := NewMutableGrid(0.001)
	g.Insert(4, Point{X: 1, Y: 1})
	g.Insert(2, Point{X: -3, Y: 2})
	g.Insert(9, Point{X: 100, Y: 100})
	got := g.Within(Point{}, 10, nil)
	if want := []int32{2, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestMutableGridIdentityHygiene: double insert and absent remove panic
// instead of silently corrupting buckets.
func TestMutableGridIdentityHygiene(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	g := NewMutableGrid(1)
	g.Insert(1, Point{X: 1})
	expectPanic("double insert", func() { g.Insert(1, Point{X: 2}) })
	expectPanic("absent remove", func() { g.Remove(2) })
}

// TestMutableGridDegenerate: empty grid and negative radius answer
// nothing without panicking.
func TestMutableGridDegenerate(t *testing.T) {
	g := NewMutableGrid(0) // defaults
	if got := g.Within(Point{}, 5, nil); got != nil {
		t.Errorf("empty grid returned %v", got)
	}
	g.Insert(0, Point{})
	if got := g.Within(Point{}, -1, nil); got != nil {
		t.Errorf("negative radius returned %v", got)
	}
	g.Remove(0)
	if g.Len() != 0 {
		t.Errorf("Len %d after removing the only point", g.Len())
	}
}
