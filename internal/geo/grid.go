package geo

import (
	"math"
	"sort"
)

// Grid is a uniform grid spatial index over a fixed set of points. It
// supports radius queries ("which points lie within d of q?"), which is
// the only spatial predicate the assignment algorithms need: a task is
// feasible for a worker when it lies inside the worker's reachable circle.
//
// The index is immutable after construction; Build copies nothing but the
// point slice header, so callers must not mutate the backing array.
type Grid struct {
	pts      []Point
	bounds   Rect
	cellSize float64
	nx, ny   int
	// cells[i] lists point indices in cell i, stored contiguously via
	// start offsets (CSR layout) to keep the index allocation-light.
	cellStart []int32
	cellItems []int32
}

// BuildGrid indexes pts with roughly targetPerCell points per cell. A
// non-positive targetPerCell defaults to 8. BuildGrid handles degenerate
// inputs (empty set, all points identical) gracefully.
func BuildGrid(pts []Point, targetPerCell int) *Grid {
	if targetPerCell <= 0 {
		targetPerCell = 8
	}
	g := &Grid{pts: pts}
	if len(pts) == 0 {
		g.nx, g.ny = 1, 1
		g.cellSize = 1
		g.cellStart = []int32{0, 0}
		return g
	}
	g.bounds = BoundOf(pts)
	w, h := g.bounds.Width(), g.bounds.Height()
	if w <= 0 {
		w = 1e-9
	}
	if h <= 0 {
		h = 1e-9
	}
	// Pick a cell count proportional to n/targetPerCell, shaped to the
	// aspect ratio of the bounding box.
	nCells := float64(len(pts)) / float64(targetPerCell)
	if nCells < 1 {
		nCells = 1
	}
	aspect := w / h
	ny := int(math.Max(1, math.Sqrt(nCells/aspect)))
	nx := int(math.Max(1, math.Ceil(nCells/float64(ny))))
	g.nx, g.ny = nx, ny
	g.cellSize = math.Max(w/float64(nx), h/float64(ny))

	counts := make([]int32, nx*ny+1)
	idx := make([]int32, len(pts))
	for i, p := range pts {
		c := g.cellOf(p)
		idx[i] = int32(c)
		counts[c+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	items := make([]int32, len(pts))
	cursor := make([]int32, nx*ny)
	copy(cursor, counts[:nx*ny])
	for i := range pts {
		c := idx[i]
		items[cursor[c]] = int32(i)
		cursor[c]++
	}
	g.cellStart = counts
	g.cellItems = items
	return g
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.pts) }

// Bounds returns the bounding box of the indexed points.
func (g *Grid) Bounds() Rect { return g.bounds }

func (g *Grid) cellOf(p Point) int {
	cx := int((p.X - g.bounds.Min.X) / g.cellSize)
	cy := int((p.Y - g.bounds.Min.Y) / g.cellSize)
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	return cy*g.nx + cx
}

// Within appends to dst the indices of all points p with Dist(p, q) <= d
// and returns the extended slice. Results are sorted ascending so output
// is deterministic regardless of grid shape.
func (g *Grid) Within(q Point, d float64, dst []int) []int {
	if len(g.pts) == 0 || d < 0 {
		return dst
	}
	d2 := d * d
	minCX := int(math.Floor((q.X - d - g.bounds.Min.X) / g.cellSize))
	maxCX := int(math.Floor((q.X + d - g.bounds.Min.X) / g.cellSize))
	minCY := int(math.Floor((q.Y - d - g.bounds.Min.Y) / g.cellSize))
	maxCY := int(math.Floor((q.Y + d - g.bounds.Min.Y) / g.cellSize))
	minCX = clampInt(minCX, 0, g.nx-1)
	maxCX = clampInt(maxCX, 0, g.nx-1)
	minCY = clampInt(minCY, 0, g.ny-1)
	maxCY = clampInt(maxCY, 0, g.ny-1)
	before := len(dst)
	for cy := minCY; cy <= maxCY; cy++ {
		for cx := minCX; cx <= maxCX; cx++ {
			c := cy*g.nx + cx
			for _, i := range g.cellItems[g.cellStart[c]:g.cellStart[c+1]] {
				if Dist2(g.pts[i], q) <= d2 {
					dst = append(dst, int(i))
				}
			}
		}
	}
	sort.Ints(dst[before:])
	return dst
}

// Nearest returns the index of the point closest to q and its distance.
// It returns (-1, +Inf) for an empty index. Ties break toward the lower
// index for determinism.
func (g *Grid) Nearest(q Point) (int, float64) {
	if len(g.pts) == 0 {
		return -1, math.Inf(1)
	}
	best, bestD2 := -1, math.Inf(1)
	// Expanding ring search around q's cell.
	qcx := clampInt(int((q.X-g.bounds.Min.X)/g.cellSize), 0, g.nx-1)
	qcy := clampInt(int((q.Y-g.bounds.Min.Y)/g.cellSize), 0, g.ny-1)
	maxRing := g.nx
	if g.ny > maxRing {
		maxRing = g.ny
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Once a candidate exists, stop when the nearest possible point in
		// the next ring cannot beat it.
		if best >= 0 {
			minPossible := float64(ring-1) * g.cellSize
			if minPossible > 0 && minPossible*minPossible > bestD2 {
				break
			}
		}
		for cy := qcy - ring; cy <= qcy+ring; cy++ {
			if cy < 0 || cy >= g.ny {
				continue
			}
			for cx := qcx - ring; cx <= qcx+ring; cx++ {
				if cx < 0 || cx >= g.nx {
					continue
				}
				// Only the ring border (interior was scanned earlier).
				if ring > 0 && cx != qcx-ring && cx != qcx+ring && cy != qcy-ring && cy != qcy+ring {
					continue
				}
				c := cy*g.nx + cx
				for _, i := range g.cellItems[g.cellStart[c]:g.cellStart[c+1]] {
					d2 := Dist2(g.pts[i], q)
					if d2 < bestD2 || (d2 == bestD2 && int(i) < best) {
						best, bestD2 = int(i), d2
					}
				}
			}
		}
	}
	return best, math.Sqrt(bestD2)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
