// Package geo provides the planar geometry primitives used throughout the
// DITA framework: points, Euclidean distances in kilometres, bounding
// boxes, and a uniform grid index that answers radius queries over large
// point sets without external dependencies.
//
// The paper measures all travel costs with Euclidean distance over
// check-in coordinates and converts distance to travel time with a fixed
// worker speed (5 km/h by default); both conventions live here so every
// other package shares a single metric.
package geo

import (
	"fmt"
	"math"
)

// Point is a location on the plane. Coordinates are kilometres in an
// arbitrary city-scale frame; the dataset generator and all algorithms
// agree on this unit so distances come out in kilometres directly.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Dist returns the Euclidean distance between p and q in kilometres.
func Dist(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Hypot(dx, dy)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root for comparison-only call sites such as index pruning.
func Dist2(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// TravelTime returns the hours needed to cover the distance between p and
// q at the given speed in km/h. It returns +Inf for non-positive speeds so
// infeasible configurations never pass a deadline check.
func TravelTime(p, q Point, speedKmH float64) float64 {
	if speedKmH <= 0 {
		return math.Inf(1)
	}
	return Dist(p, q) / speedKmH
}

// Lerp linearly interpolates between p and q; t=0 yields p, t=1 yields q.
func Lerp(p, q Point, t float64) Point {
	return Point{X: p.X + (q.X-p.X)*t, Y: p.Y + (q.Y-p.Y)*t}
}

// Add returns the vector sum p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector difference p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Rect is an axis-aligned bounding box. Min is the lower-left corner and
// Max the upper-right corner; a Rect with Min == Max contains one point.
type Rect struct {
	Min, Max Point
}

// NewRect returns the smallest Rect containing both corners, regardless of
// the order in which they are given.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// BoundOf returns the bounding box of the given points. The zero Rect is
// returned for an empty slice.
func BoundOf(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r = r.Extend(p)
	}
	return r
}

// Extend grows r to include p and returns the result.
func (r Rect) Extend(p Point) Rect {
	if p.X < r.Min.X {
		r.Min.X = p.X
	}
	if p.Y < r.Min.Y {
		r.Min.Y = p.Y
	}
	if p.X > r.Max.X {
		r.Max.X = p.X
	}
	if p.Y > r.Max.Y {
		r.Max.Y = p.Y
	}
	return r
}

// Contains reports whether p lies inside r (borders inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Center returns the geometric center of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// DistToPoint returns the distance from p to the closest point of r; it is
// zero when p is inside r. Used by the grid index to prune cells.
func (r Rect) DistToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}
