package geo

import "math"

// Tiling partitions a bounding rectangle into square tiles of a fixed
// size. It is the spatial decomposition behind tiled assignment
// instants: every entity belongs to exactly one tile (the one its
// location falls in, with the usual half-open floor convention), and a
// tile's 3×3 neighbourhood covers every point within one tile size of
// any of its points. Callers that size tiles from a reachability bound
// therefore get a complete candidate set from the halo alone — no
// global scan, no per-pair tile negotiation.
//
// Unlike Grid, a Tiling stores no points; it is pure geometry shared by
// several per-instant point bucketings. The zero value is not usable;
// build one with NewTiling.
type Tiling struct {
	// Min is the lower-left corner of the covered rectangle.
	Min Point
	// Size is the tile edge length (kilometres, like all coordinates).
	Size float64
	// NX, NY are the tile-grid dimensions; tile (tx, ty) has index
	// ty*NX + tx.
	NX, NY int
}

// NewTiling covers bounds with square tiles of the requested size. The
// size is only ever grown, never shrunk: when the requested size would
// produce more than maxTiles tiles it is doubled until the grid fits,
// so a caller's "one tile ≥ one reachability radius" guarantee is
// preserved under the clamp. A non-positive (or NaN) size degenerates
// to a single tile covering the whole rectangle.
func NewTiling(bounds Rect, size float64, maxTiles int) Tiling {
	w, h := bounds.Width(), bounds.Height()
	if w <= 0 {
		w = 1e-9
	}
	if h <= 0 {
		h = 1e-9
	}
	if maxTiles < 1 {
		maxTiles = 1
	}
	if !(size > 0) { // catches non-positive and NaN
		size = math.Max(w, h)
	}
	nx, ny := tilesAcross(w, size), tilesAcross(h, size)
	for nx*ny > maxTiles {
		size *= 2
		nx, ny = tilesAcross(w, size), tilesAcross(h, size)
	}
	return Tiling{Min: bounds.Min, Size: size, NX: nx, NY: ny}
}

// tilesAcross returns how many size-wide tiles cover an extent, with at
// least one tile so degenerate rectangles stay addressable.
func tilesAcross(extent, size float64) int {
	n := int(math.Floor(extent/size)) + 1
	if n < 1 {
		n = 1
	}
	return n
}

// Tiles returns the total tile count NX*NY.
func (t Tiling) Tiles() int { return t.NX * t.NY }

// TileOf returns the index of the tile containing p. Points on a tile
// boundary belong to the higher tile (floor convention); points outside
// the covered rectangle clamp to the border tiles, so the result is
// always a valid index.
func (t Tiling) TileOf(p Point) int {
	tx := int(math.Floor((p.X - t.Min.X) / t.Size))
	ty := int(math.Floor((p.Y - t.Min.Y) / t.Size))
	tx = clampInt(tx, 0, t.NX-1)
	ty = clampInt(ty, 0, t.NY-1)
	return ty*t.NX + tx
}

// Coords returns the (tx, ty) grid coordinates of a tile index.
func (t Tiling) Coords(tile int) (tx, ty int) {
	return tile % t.NX, tile / t.NX
}
