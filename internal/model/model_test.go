package model

import (
	"math"
	"testing"

	"dita/internal/geo"
)

func TestTaskExpiry(t *testing.T) {
	s := Task{Publish: 10, Valid: 5}
	if got := s.Expiry(); got != 15 {
		t.Errorf("Expiry = %v, want 15", got)
	}
}

func TestHistorySortByTime(t *testing.T) {
	h := History{
		{Venue: 2, Arrive: 3},
		{Venue: 0, Arrive: 1},
		{Venue: 1, Arrive: 2},
	}
	h.SortByTime()
	for i := 0; i < len(h)-1; i++ {
		if h[i].Arrive > h[i+1].Arrive {
			t.Fatalf("not sorted at %d: %v", i, h)
		}
	}
	if h[0].Venue != 0 || h[2].Venue != 2 {
		t.Errorf("unexpected order: %+v", h)
	}
}

func TestHistorySortIsStable(t *testing.T) {
	h := History{
		{Venue: 5, Arrive: 1},
		{Venue: 7, Arrive: 1},
		{Venue: 6, Arrive: 1},
	}
	h.SortByTime()
	if h[0].Venue != 5 || h[1].Venue != 7 || h[2].Venue != 6 {
		t.Errorf("equal timestamps reordered: %+v", h)
	}
}

func TestAssignmentSetMetrics(t *testing.T) {
	a := &AssignmentSet{
		Pairs:     []Assignment{{Task: 0, Worker: 0}, {Task: 1, Worker: 1}},
		Influence: []float64{1.0, 3.0},
		TravelKm:  []float64{2.0, 4.0},
	}
	if got := a.Len(); got != 2 {
		t.Errorf("Len = %d", got)
	}
	if got := a.TotalInfluence(); got != 4 {
		t.Errorf("TotalInfluence = %v", got)
	}
	if got := a.AverageInfluence(); got != 2 {
		t.Errorf("AverageInfluence = %v", got)
	}
	if got := a.AverageTravel(); got != 3 {
		t.Errorf("AverageTravel = %v", got)
	}
}

func TestAssignmentSetEmptyMetrics(t *testing.T) {
	a := &AssignmentSet{}
	if a.AverageInfluence() != 0 || a.AverageTravel() != 0 || a.TotalInfluence() != 0 {
		t.Error("empty set metrics not all zero")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	mk := func(pairs ...Assignment) *AssignmentSet {
		return &AssignmentSet{
			Pairs:     pairs,
			Influence: make([]float64, len(pairs)),
			TravelKm:  make([]float64, len(pairs)),
		}
	}
	tests := []struct {
		name string
		a    *AssignmentSet
		ok   bool
	}{
		{"valid", mk(Assignment{0, 0}, Assignment{1, 1}), true},
		{"empty", mk(), true},
		{"dup task", mk(Assignment{0, 0}, Assignment{0, 1}), false},
		{"dup worker", mk(Assignment{0, 0}, Assignment{1, 0}), false},
		{"task out of range", mk(Assignment{5, 0}), false},
		{"worker out of range", mk(Assignment{0, 5}), false},
		{"negative task", mk(Assignment{-1, 0}), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.a.Validate(3, 3)
			if (err == nil) != tc.ok {
				t.Errorf("Validate = %v, want ok=%v", err, tc.ok)
			}
		})
	}
	// Ragged arrays.
	bad := &AssignmentSet{Pairs: []Assignment{{0, 0}}, Influence: nil, TravelKm: []float64{1}}
	if bad.Validate(1, 1) == nil {
		t.Error("ragged set validated")
	}
}

func TestFeasible(t *testing.T) {
	w := Worker{Loc: geo.Point{X: 0, Y: 0}, Radius: 10}
	mkTask := func(x float64, publish, valid float64) Task {
		return Task{Loc: geo.Point{X: x}, Publish: publish, Valid: valid}
	}
	tests := []struct {
		name  string
		s     Task
		now   float64
		speed float64
		want  bool
	}{
		{"in radius, in time", mkTask(5, 0, 2), 0, 5, true},
		{"outside radius", mkTask(11, 0, 100), 0, 5, false},
		{"radius boundary", mkTask(10, 0, 100), 0, 5, true},
		{"deadline too tight", mkTask(10, 0, 1.9), 0, 5, false},
		{"deadline exact", mkTask(10, 0, 2), 0, 5, true},
		{"already expired", mkTask(1, 0, 1), 2, 5, false},
		{"expiry in future relative to now", mkTask(5, 3, 2), 3.5, 5, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Feasible(w, tc.s, tc.now, tc.speed); got != tc.want {
				t.Errorf("Feasible = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestFeasibleZeroSpeed(t *testing.T) {
	w := Worker{Loc: geo.Point{}, Radius: 10}
	s := Task{Loc: geo.Point{X: 5}, Publish: 0, Valid: 100}
	// Division by zero speed yields +Inf travel time → infeasible.
	if Feasible(w, s, 0, 0) {
		t.Error("zero speed feasible for distant task")
	}
	// Except at distance 0, where travel time is NaN/0 — treat
	// colocated tasks as reachable only with positive speed; document
	// the observed behaviour here.
	s0 := Task{Loc: geo.Point{}, Publish: 0, Valid: 1}
	got := Feasible(w, s0, 0, 5)
	if !got {
		t.Error("colocated task infeasible at normal speed")
	}
	_ = math.Inf // keep math import for clarity of intent
}
