// Package model declares the domain types shared by every component of
// the DITA framework: spatial tasks, workers, check-in records, historical
// task-performing records, and task assignments.
//
// Conventions:
//   - time is measured in fractional hours since the dataset epoch;
//   - distances are kilometres (see internal/geo);
//   - identifiers are dense small integers so components can use slices
//     instead of maps on hot paths.
package model

import (
	"fmt"
	"sort"

	"dita/internal/geo"
)

// WorkerID identifies a worker (a user of the underlying geo-social
// network). IDs are dense: 0 <= id < NumWorkers.
type WorkerID int32

// TaskID identifies a spatial task: dense within one snapshot instance,
// or stable across a task's whole lifetime in the streaming simulator
// (the influence session layer keys its per-task cache on it).
type TaskID int32

// VenueID identifies a venue (a check-in location that can spawn tasks).
type VenueID int32

// CategoryID identifies a task/venue category (the LDA vocabulary).
type CategoryID int32

// Task is a spatial task s = (l, p, ϕ, C) per Definition 1 of the paper:
// a location, a publication time, a valid (expiry) duration and a set of
// category labels. Venue records which venue spawned the task so location
// entropy can be looked up.
type Task struct {
	ID         TaskID
	Loc        geo.Point
	Publish    float64 // publication time s.p, hours since epoch
	Valid      float64 // valid duration s.ϕ in hours; expires at Publish+Valid
	Categories []CategoryID
	Venue      VenueID
}

// Expiry returns the instant the task expires (s.p + s.ϕ).
func (t Task) Expiry() float64 { return t.Publish + t.Valid }

// Worker is a worker w = (l, r) per Definition 2: a current location and a
// reachable radius in kilometres. User is the identity of the worker in
// the social network and historical records (stable across time
// instances), while ID identifies the worker on the serving platform: a
// dense snapshot index in single-instance pipelines, or a stable
// platform-level arrival id in the streaming simulator (where a worker
// keeps its ID across every instant it stays online).
type Worker struct {
	ID     WorkerID
	User   WorkerID // stable user identity in the social graph
	Loc    geo.Point
	Radius float64 // reachable distance w.r in km
}

// CheckIn is one historical task-performing record: worker User performed
// a task at Venue/Loc, arriving at Arrive and completing at Complete (both
// hours since epoch). Categories are the venue's category labels.
type CheckIn struct {
	User       WorkerID
	Venue      VenueID
	Loc        geo.Point
	Arrive     float64
	Complete   float64
	Categories []CategoryID
}

// History is a worker's historical task-performing record list S_w,
// ordered by check-in (arrival) time as the HA algorithm requires.
type History []CheckIn

// SortByTime sorts h in ascending arrival-time order (stable, so records
// with identical timestamps keep their original relative order).
func (h History) SortByTime() {
	sort.SliceStable(h, func(i, j int) bool { return h[i].Arrive < h[j].Arrive })
}

// Assignment is one worker-task pair (s, w) of a spatial task assignment.
// Task and Worker reference the instance positionally — they index the
// Instance.Tasks and Instance.Workers slices of the instance the
// assignment was computed for — so they remain meaningful when the
// instance carries platform-stable (non-dense) entity IDs.
type Assignment struct {
	Task   TaskID
	Worker WorkerID
}

// AssignmentSet is a complete assignment A for one time instance together
// with the influence values realized by each pair, which the evaluation
// metrics (AI, AP, travel cost) consume.
type AssignmentSet struct {
	Pairs []Assignment
	// Influence[i] is if(w,s) for Pairs[i].
	Influence []float64
	// TravelKm[i] is the Euclidean distance worker i travels to its task.
	TravelKm []float64
}

// Len returns |A|, the number of assigned tasks.
func (a *AssignmentSet) Len() int { return len(a.Pairs) }

// TotalInfluence returns the summed worker-task influence of the
// assignment.
func (a *AssignmentSet) TotalInfluence() float64 {
	sum := 0.0
	for _, v := range a.Influence {
		sum += v
	}
	return sum
}

// AverageInfluence returns AI = Σ if(w,s) / |A| (Equation 6); it is zero
// for an empty assignment.
func (a *AssignmentSet) AverageInfluence() float64 {
	if len(a.Pairs) == 0 {
		return 0
	}
	return a.TotalInfluence() / float64(len(a.Pairs))
}

// AverageTravel returns the mean travel distance in kilometres; zero for
// an empty assignment.
func (a *AssignmentSet) AverageTravel() float64 {
	if len(a.Pairs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range a.TravelKm {
		sum += v
	}
	return sum / float64(len(a.Pairs))
}

// Validate checks the structural invariants of a task assignment per
// Definition 4: every worker and every task appears at most once, and all
// referenced ids are within range. It returns a descriptive error on the
// first violation found.
func (a *AssignmentSet) Validate(numTasks, numWorkers int) error {
	if len(a.Influence) != len(a.Pairs) || len(a.TravelKm) != len(a.Pairs) {
		return fmt.Errorf("model: ragged assignment set: %d pairs, %d influences, %d travels",
			len(a.Pairs), len(a.Influence), len(a.TravelKm))
	}
	seenTask := make(map[TaskID]bool, len(a.Pairs))
	seenWorker := make(map[WorkerID]bool, len(a.Pairs))
	for _, p := range a.Pairs {
		if p.Task < 0 || int(p.Task) >= numTasks {
			return fmt.Errorf("model: task id %d out of range [0,%d)", p.Task, numTasks)
		}
		if p.Worker < 0 || int(p.Worker) >= numWorkers {
			return fmt.Errorf("model: worker id %d out of range [0,%d)", p.Worker, numWorkers)
		}
		if seenTask[p.Task] {
			return fmt.Errorf("model: task %d assigned twice", p.Task)
		}
		if seenWorker[p.Worker] {
			return fmt.Errorf("model: worker %d assigned twice", p.Worker)
		}
		seenTask[p.Task] = true
		seenWorker[p.Worker] = true
	}
	return nil
}

// Instance is the input of one assignment round: the workers and tasks
// available at time Now. It is the unit the DITA pipeline operates on.
type Instance struct {
	Now     float64 // current time in hours since epoch
	Workers []Worker
	Tasks   []Task
}

// Feasible reports whether task s may be assigned to worker w at time now
// under the paper's two spatio-temporal constraints:
//
//	(i)  d(w.l, s.l) <= w.r                      (reachable range)
//	(ii) now + t(w.l, s.l) <= s.p + s.ϕ          (meets the deadline)
//
// speedKmH converts distance to travel time (5 km/h in the paper).
func Feasible(w Worker, s Task, now, speedKmH float64) bool {
	d := geo.Dist(w.Loc, s.Loc)
	if d > w.Radius {
		return false
	}
	return now+d/speedKmH <= s.Expiry()
}
