package trace

import (
	"reflect"
	"testing"

	"dita/internal/dataset"
)

func testData(t *testing.T) *dataset.Data {
	t.Helper()
	p := dataset.BrightkiteLike()
	p.NumUsers = 80
	p.NumVenues = 120
	p.Days = 3
	p.Seed = 5
	data, err := dataset.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestBuildDeterministicAndSorted(t *testing.T) {
	data := testData(t)
	p := Params{Arrivals: 200, Seed: 9, Start: 48, Spread: 20, RadiusKm: 8, ValidMin: 3, ValidSpan: 3}
	ws1, ts1, err := Build(data, p)
	if err != nil {
		t.Fatal(err)
	}
	ws2, ts2, err := Build(data, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ws1, ws2) || !reflect.DeepEqual(ts1, ts2) {
		t.Fatal("identical Params produced different traces")
	}
	if len(ws1) != p.Arrivals || len(ts1) != p.Arrivals {
		t.Fatalf("trace sizes %d/%d, want %d", len(ws1), len(ts1), p.Arrivals)
	}
	for i := 1; i < len(ws1); i++ {
		if ws1[i].At < ws1[i-1].At {
			t.Fatal("worker stream not time-sorted")
		}
	}
	for i := 1; i < len(ts1); i++ {
		if ts1[i].Publish < ts1[i-1].Publish {
			t.Fatal("task stream not time-sorted")
		}
	}
	for _, w := range ws1 {
		if w.At < p.Start || w.At >= p.Start+p.Spread {
			t.Fatalf("arrival at %v outside window", w.At)
		}
		if w.Radius != p.RadiusKm {
			t.Fatalf("radius %v, want %v", w.Radius, p.RadiusKm)
		}
	}
	for _, task := range ts1 {
		if task.Valid < p.ValidMin || task.Valid >= p.ValidMin+p.ValidSpan {
			t.Fatalf("validity %v outside bounds", task.Valid)
		}
	}
	// Different seeds produce different traces (the sampler is live).
	ws3, _, err := Build(data, Params{Arrivals: 200, Seed: 10, Start: 48, Spread: 20, RadiusKm: 8, ValidMin: 3, ValidSpan: 3})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(ws1, ws3) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestBuildValidation(t *testing.T) {
	data := testData(t)
	if _, _, err := Build(data, Params{Arrivals: 0}); err == nil {
		t.Error("zero arrivals accepted")
	}
	if _, _, err := Build(&dataset.Data{}, Params{Arrivals: 1}); err == nil {
		t.Error("empty dataset accepted")
	}
}
