// Package trace builds deterministic arrival traces from a generated
// dataset: workers joining from their home locations and tasks spawning
// at venues, spread over an evaluation window. The same Params on the
// same dataset always produce the same trace, element for element —
// which is what lets two independent processes agree on a workload
// without shipping it: dita-sim -stream replays a trace through the
// in-process engine while dita-bench -serve-load replays the identical
// trace against a running dita-serve, and the CI serve smoke diffs the
// two assignment CSVs byte for byte.
package trace

import (
	"fmt"
	"slices"

	"dita/internal/dataset"
	"dita/internal/engine"
	"dita/internal/model"
	"dita/internal/randx"
)

// Params describes one arrival trace. All times are hours since the
// dataset epoch.
type Params struct {
	// Arrivals is the number of workers and the number of tasks (one of
	// each per index).
	Arrivals int
	// Seed drives every sampling decision of the trace.
	Seed uint64
	// Start is the beginning of the arrival window.
	Start float64
	// Spread is the window length: arrival times are uniform in
	// [Start, Start+Spread).
	Spread float64
	// RadiusKm is every worker's reachable radius.
	RadiusKm float64
	// ValidMin/ValidSpan bound task validity: ϕ uniform in
	// [ValidMin, ValidMin+ValidSpan).
	ValidMin, ValidSpan float64
}

// Build samples the trace from the dataset: worker i is a uniformly
// drawn user joining from its home, task i spawns at a uniformly drawn
// venue, and both streams come back stably sorted by time (equal
// timestamps keep draw order), ready for grid replay.
func Build(data *dataset.Data, p Params) ([]engine.WorkerArrival, []engine.TaskArrival, error) {
	if p.Arrivals <= 0 {
		return nil, nil, fmt.Errorf("trace: non-positive arrival count %d", p.Arrivals)
	}
	if len(data.Homes) == 0 || len(data.Venues) == 0 {
		return nil, nil, fmt.Errorf("trace: dataset has %d homes, %d venues", len(data.Homes), len(data.Venues))
	}
	rng := randx.New(p.Seed)
	ws := make([]engine.WorkerArrival, p.Arrivals)
	ts := make([]engine.TaskArrival, p.Arrivals)
	for i := range ws {
		u := model.WorkerID(rng.Intn(data.Params.NumUsers))
		ws[i] = engine.WorkerArrival{
			User: u, Loc: data.Homes[u], Radius: p.RadiusKm,
			At: p.Start + rng.Float64()*p.Spread,
		}
		v := data.Venues[rng.Intn(len(data.Venues))]
		ts[i] = engine.TaskArrival{
			Loc: v.Loc, Publish: p.Start + rng.Float64()*p.Spread,
			Valid:      p.ValidMin + rng.Float64()*p.ValidSpan,
			Categories: v.Categories, Venue: v.ID,
		}
	}
	slices.SortStableFunc(ws, func(a, b engine.WorkerArrival) int {
		switch {
		case a.At < b.At:
			return -1
		case a.At > b.At:
			return 1
		}
		return 0
	})
	slices.SortStableFunc(ts, func(a, b engine.TaskArrival) int {
		switch {
		case a.Publish < b.Publish:
			return -1
		case a.Publish > b.Publish:
			return 1
		}
		return 0
	})
	return ws, ts, nil
}
