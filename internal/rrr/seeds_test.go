package rrr

import (
	"testing"

	"dita/internal/ic"
	"dita/internal/randx"
	"dita/internal/socialgraph"
)

func TestTopKSeedsBasics(t *testing.T) {
	g := socialgraph.GeneratePreferentialAttachment(80, 2, randx.New(1))
	c := Build(g, Params{Seed: 2})
	sel := c.TopKSeeds(5)
	if len(sel.Seeds) != 5 || len(sel.Spread) != 5 {
		t.Fatalf("selected %d seeds, %d spreads", len(sel.Seeds), len(sel.Spread))
	}
	seen := map[int32]bool{}
	for _, s := range sel.Seeds {
		if seen[s] {
			t.Fatalf("seed %d picked twice", s)
		}
		seen[s] = true
	}
	// Cumulative spread is nondecreasing and bounded by |W|.
	for i := range sel.Spread {
		if i > 0 && sel.Spread[i] < sel.Spread[i-1] {
			t.Fatalf("spread decreased at %d: %v", i, sel.Spread)
		}
		if sel.Spread[i] < 0 || sel.Spread[i] > float64(g.N())+1e-9 {
			t.Fatalf("spread %v outside [0,%d]", sel.Spread[i], g.N())
		}
	}
}

func TestTopKSeedsFirstIsGreedyWorker(t *testing.T) {
	// The first seed maximizes single-worker coverage, i.e. it has the
	// maximum coverage count.
	g := socialgraph.GeneratePreferentialAttachment(60, 2, randx.New(3))
	c := Build(g, Params{Seed: 4})
	sel := c.TopKSeeds(1)
	if len(sel.Seeds) != 1 {
		t.Fatal("no seed selected")
	}
	best := c.CoverageCount(sel.Seeds[0])
	for w := int32(0); w < int32(g.N()); w++ {
		if c.CoverageCount(w) > best {
			t.Fatalf("worker %d covers %d sets > first seed's %d",
				w, c.CoverageCount(w), best)
		}
	}
	// And its spread estimate equals its informed range.
	if diff := sel.Spread[0] - c.InformedRange(sel.Seeds[0]); diff > 1e-9 || diff < -1e-9 {
		// InformedRange clamps per-root estimates at 1 while TopKSeeds
		// counts raw coverage, so allow a small relative gap.
		rel := diff / sel.Spread[0]
		if rel > 0.05 || rel < -0.05 {
			t.Errorf("first seed spread %v vs informed range %v", sel.Spread[0], c.InformedRange(sel.Seeds[0]))
		}
	}
}

func TestTopKSeedsBeatSingletonsUnderIC(t *testing.T) {
	// The greedy seed set's simulated joint spread must beat the same
	// number of random workers, validating selection quality end to end.
	g := socialgraph.GeneratePreferentialAttachment(120, 2, randx.New(5))
	c := Build(g, Params{Seed: 6})
	sel := c.TopKSeeds(4)
	m := ic.NewModel(g)
	greedySpread := m.Spread(sel.Seeds, 800, randx.New(7))
	randomSeeds := []int32{11, 47, 83, 101}
	randomSpread := m.Spread(randomSeeds, 800, randx.New(8))
	if greedySpread <= randomSpread {
		t.Errorf("greedy seeds spread %v not above random %v", greedySpread, randomSpread)
	}
}

func TestTopKSeedsEdgeCases(t *testing.T) {
	g := socialgraph.GeneratePreferentialAttachment(30, 2, randx.New(9))
	c := Build(g, Params{Seed: 10})
	if sel := c.TopKSeeds(0); len(sel.Seeds) != 0 {
		t.Errorf("k=0 selected %d seeds", len(sel.Seeds))
	}
	sel := c.TopKSeeds(1000)
	if len(sel.Seeds) > g.N() {
		t.Errorf("selected more seeds than workers: %d", len(sel.Seeds))
	}
	// Empty collection.
	empty := Build(socialgraph.MustNew(0, nil), Params{Seed: 1})
	if sel := empty.TopKSeeds(3); len(sel.Seeds) != 0 {
		t.Errorf("empty graph selected seeds")
	}
}

func TestTopKSeedsDeterministic(t *testing.T) {
	g := socialgraph.GeneratePreferentialAttachment(70, 2, randx.New(11))
	c := Build(g, Params{Seed: 12})
	a := c.TopKSeeds(6)
	b := c.TopKSeeds(6)
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatal("seed selection nondeterministic")
		}
	}
}

func TestTopKSeedsMatchesExactGreedy(t *testing.T) {
	// The CELF lazy queue must reproduce the quadratic exact greedy
	// bit for bit — same seeds in the same order, same cumulative
	// spreads — across randomized collections, k regimes and tie-heavy
	// small set families.
	cases := []struct {
		nodes, edges int
		graphSeed    uint64
		buildSeed    uint64
		maxSets      int
	}{
		{40, 2, 101, 201, 0},
		{80, 2, 102, 202, 0},
		{120, 3, 103, 203, 0},
		{60, 1, 104, 204, 500}, // few sets → many equal gains → tie breaks matter
		{25, 2, 105, 205, 64},
	}
	for _, tc := range cases {
		g := socialgraph.GeneratePreferentialAttachment(tc.nodes, tc.edges, randx.New(tc.graphSeed))
		c := Build(g, Params{Seed: tc.buildSeed, MaxSets: tc.maxSets})
		for _, k := range []int{1, 2, 5, 10, tc.nodes} {
			lazy := c.TopKSeeds(k)
			exact := c.topKSeedsExact(k)
			if len(lazy.Seeds) != len(exact.Seeds) {
				t.Fatalf("nodes=%d k=%d: CELF picked %d seeds, exact %d",
					tc.nodes, k, len(lazy.Seeds), len(exact.Seeds))
			}
			for i := range lazy.Seeds {
				if lazy.Seeds[i] != exact.Seeds[i] {
					t.Fatalf("nodes=%d k=%d: seed %d is %d (CELF) vs %d (exact)",
						tc.nodes, k, i, lazy.Seeds[i], exact.Seeds[i])
				}
				if lazy.Spread[i] != exact.Spread[i] {
					t.Fatalf("nodes=%d k=%d: spread %d is %v (CELF) vs %v (exact)",
						tc.nodes, k, i, lazy.Spread[i], exact.Spread[i])
				}
			}
		}
	}
}

func TestTopKSeedsStopsWithExhaustedGain(t *testing.T) {
	// When every remaining candidate has zero marginal gain both
	// selections stop early at the same length.
	g := socialgraph.GeneratePreferentialAttachment(30, 2, randx.New(41))
	c := Build(g, Params{Seed: 42, MaxSets: 32})
	lazy := c.TopKSeeds(30)
	exact := c.topKSeedsExact(30)
	if len(lazy.Seeds) != len(exact.Seeds) {
		t.Fatalf("early-stop lengths differ: CELF %d, exact %d", len(lazy.Seeds), len(exact.Seeds))
	}
	if len(lazy.Seeds) == 30 {
		t.Skip("fixture covered every worker; early-stop path not exercised")
	}
}
