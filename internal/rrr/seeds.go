package rrr

// This file extends the RRR machinery with classic influence
// maximization: selecting the k workers whose joint cascade informs the
// largest expected audience. The paper's MI baseline "selects multiple
// workers for each task"; TopKSeeds is the standard RIS greedy
// max-coverage selection (Borgs et al., Tang et al.) over the same RRR
// sets the RPO estimator already maintains, so a task issuer can ask
// "which k workers should know about this task first?".

// SeedSelection is the result of TopKSeeds: the chosen workers in pick
// order and the estimated number of workers their joint cascade informs
// (marginal spread estimates are cumulative).
type SeedSelection struct {
	Seeds []int32
	// Spread[i] estimates the expected audience of Seeds[0..i].
	Spread []float64
}

// TopKSeeds greedily picks k workers maximizing RRR-set coverage — the
// (1−1/e)-approximate influence-maximization selection. It is
// deterministic given the collection. k is clamped to the graph size.
func (c *Collection) TopKSeeds(k int) SeedSelection {
	n := c.g.N()
	if k > n {
		k = n
	}
	var sel SeedSelection
	if k <= 0 || len(c.roots) == 0 {
		return sel
	}
	covered := make([]bool, len(c.roots)) // RRR sets already covered
	gain := make([]int, n)                // current marginal coverage per worker
	for w := 0; w < n; w++ {
		gain[w] = c.CoverageCount(int32(w))
	}
	totalCovered := 0
	scale := float64(n) / float64(len(c.roots))
	for len(sel.Seeds) < k {
		best, bestGain := -1, -1
		for w := 0; w < n; w++ {
			if gain[w] > bestGain {
				best, bestGain = w, gain[w]
			}
		}
		if best < 0 || bestGain <= 0 {
			break
		}
		// Mark the sets the new seed covers and decrement the marginal
		// gains of every other member of those sets.
		for _, id := range c.cover(int32(best)) {
			if covered[id] {
				continue
			}
			covered[id] = true
			totalCovered++
		}
		// Recompute gains lazily but exactly: subtract coverage overlap.
		// (A CELF queue would be faster; exactness keeps this simple and
		// deterministic, and k is small in practice.)
		for w := 0; w < n; w++ {
			cnt := 0
			for _, id := range c.cover(int32(w)) {
				if !covered[id] {
					cnt++
				}
			}
			gain[w] = cnt
		}
		gain[best] = -1 // never re-pick
		sel.Seeds = append(sel.Seeds, int32(best))
		sel.Spread = append(sel.Spread, scale*float64(totalCovered))
	}
	return sel
}
