package rrr

// This file extends the RRR machinery with classic influence
// maximization: selecting the k workers whose joint cascade informs the
// largest expected audience. The paper's MI baseline "selects multiple
// workers for each task"; TopKSeeds is the standard RIS greedy
// max-coverage selection (Borgs et al., Tang et al.) over the same RRR
// sets the RPO estimator already maintains, so a task issuer can ask
// "which k workers should know about this task first?".
//
// The selection uses the CELF lazy-greedy queue (Leskovec et al.):
// marginal coverage gains are submodular, so a worker's cached gain is
// an upper bound on its true gain and only the queue head ever needs
// recomputation. The result is identical — seed for seed, spread for
// spread — to the exact greedy that recomputes every gain each round
// (topKSeedsExact, kept as the test reference), but the per-round cost
// drops from Σ_w |cover(w)| to a handful of head refreshes.

import "container/heap"

// SeedSelection is the result of TopKSeeds: the chosen workers in pick
// order and the estimated number of workers their joint cascade informs
// (marginal spread estimates are cumulative).
type SeedSelection struct {
	Seeds []int32
	// Spread[i] estimates the expected audience of Seeds[0..i].
	Spread []float64
}

// celfEntry is one lazy-queue element: a candidate worker, its cached
// marginal gain, and the selection round the gain was computed in.
type celfEntry struct {
	worker int32
	gain   int32
	round  int32
}

// celfQueue is a max-heap on (gain desc, worker asc). The worker-id tie
// break makes the lazy selection reproduce the exact greedy's "first
// maximum in ascending scan" choice bit for bit.
type celfQueue []celfEntry

func (q celfQueue) Len() int { return len(q) }
func (q celfQueue) Less(i, j int) bool {
	if q[i].gain != q[j].gain {
		return q[i].gain > q[j].gain
	}
	return q[i].worker < q[j].worker
}
func (q celfQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *celfQueue) Push(x any)   { *q = append(*q, x.(celfEntry)) }
func (q *celfQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// TopKSeeds greedily picks k workers maximizing RRR-set coverage — the
// (1−1/e)-approximate influence-maximization selection — via the CELF
// lazy queue. It is deterministic given the collection and returns
// exactly what the exhaustive greedy recompute would. k is clamped to
// the graph size.
func (c *Collection) TopKSeeds(k int) SeedSelection {
	n := c.g.N()
	if k > n {
		k = n
	}
	var sel SeedSelection
	if k <= 0 || len(c.roots) == 0 {
		return sel
	}
	covered := make([]bool, len(c.roots)) // RRR sets already covered
	q := make(celfQueue, 0, n)
	for w := 0; w < n; w++ {
		if g := c.CoverageCount(int32(w)); g > 0 {
			q = append(q, celfEntry{worker: int32(w), gain: int32(g)})
		}
	}
	heap.Init(&q)
	totalCovered := 0
	scale := float64(n) / float64(len(c.roots))
	for len(sel.Seeds) < k && len(q) > 0 {
		head := q[0]
		// Cached gains are upper bounds (submodularity), so once the head
		// reaches zero nothing can still contribute.
		if head.gain <= 0 {
			break
		}
		round := int32(len(sel.Seeds))
		if head.round != round {
			// Stale bound: refresh the head's true marginal gain in place
			// and let it sift to its real position.
			g := int32(0)
			for _, id := range c.cover(head.worker) {
				if !covered[id] {
					g++
				}
			}
			q[0].gain, q[0].round = g, round
			heap.Fix(&q, 0)
			continue
		}
		// Fresh head: no other candidate can beat it. Select it and mark
		// its sets covered.
		heap.Pop(&q)
		for _, id := range c.cover(head.worker) {
			if !covered[id] {
				covered[id] = true
				totalCovered++
			}
		}
		sel.Seeds = append(sel.Seeds, head.worker)
		sel.Spread = append(sel.Spread, scale*float64(totalCovered))
	}
	return sel
}

// topKSeedsExact is the quadratic reference selection: every round it
// recomputes every worker's marginal coverage and picks the smallest-id
// maximum. Tests assert TopKSeeds matches it exactly; it is not used on
// any production path.
func (c *Collection) topKSeedsExact(k int) SeedSelection {
	n := c.g.N()
	if k > n {
		k = n
	}
	var sel SeedSelection
	if k <= 0 || len(c.roots) == 0 {
		return sel
	}
	covered := make([]bool, len(c.roots))
	gain := make([]int, n)
	for w := 0; w < n; w++ {
		gain[w] = c.CoverageCount(int32(w))
	}
	totalCovered := 0
	scale := float64(n) / float64(len(c.roots))
	for len(sel.Seeds) < k {
		best, bestGain := -1, -1
		for w := 0; w < n; w++ {
			if gain[w] > bestGain {
				best, bestGain = w, gain[w]
			}
		}
		if best < 0 || bestGain <= 0 {
			break
		}
		for _, id := range c.cover(int32(best)) {
			if covered[id] {
				continue
			}
			covered[id] = true
			totalCovered++
		}
		for w := 0; w < n; w++ {
			cnt := 0
			for _, id := range c.cover(int32(w)) {
				if !covered[id] {
					cnt++
				}
			}
			gain[w] = cnt
		}
		gain[best] = -1 // never re-pick
		sel.Seeds = append(sel.Seeds, int32(best))
		sel.Spread = append(sel.Spread, scale*float64(totalCovered))
	}
	return sel
}
