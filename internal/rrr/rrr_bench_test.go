package rrr

import (
	"testing"

	"dita/internal/randx"
	"dita/internal/socialgraph"
)

// BenchmarkBuild measures the full RPO run (Algorithm 1) on a
// paper-scale social graph.
func BenchmarkBuild(b *testing.B) {
	g := socialgraph.GeneratePreferentialAttachment(2400, 3, randx.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(g, Params{Seed: uint64(i)})
	}
}

// BenchmarkBuildEpsilon shows the cost of tightening the approximation
// guarantee — the ε ablation of the RPO design.
func BenchmarkBuildEpsilon(b *testing.B) {
	g := socialgraph.GeneratePreferentialAttachment(1200, 3, randx.New(1))
	for _, eps := range []float64{0.2, 0.1, 0.05} {
		name := "eps=0.20"
		switch eps {
		case 0.1:
			name = "eps=0.10"
		case 0.05:
			name = "eps=0.05"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Build(g, Params{Epsilon: eps, Seed: uint64(i)})
			}
		})
	}
}

// BenchmarkPropagation measures one worker-propagation vector query
// against a prebuilt collection (the per-worker cost during influence
// evaluation).
func BenchmarkPropagation(b *testing.B) {
	g := socialgraph.GeneratePreferentialAttachment(2400, 3, randx.New(1))
	c := Build(g, Params{Seed: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Propagation(int32(i % g.N()))
	}
}

// BenchmarkPropagationSum measures the AP-metric path.
func BenchmarkPropagationSum(b *testing.B) {
	g := socialgraph.GeneratePreferentialAttachment(2400, 3, randx.New(1))
	c := Build(g, Params{Seed: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.PropagationSum(int32(i % g.N()))
	}
}

// BenchmarkBuildParallelism shows RPO scaling over the worker pool on a
// paper-scale graph; "auto" is GOMAXPROCS. Output is bit-identical at
// every setting, so the ratios are pure scheduling gains.
func BenchmarkBuildParallelism(b *testing.B) {
	g := socialgraph.GeneratePreferentialAttachment(2400, 3, randx.New(1))
	for _, bc := range []struct {
		name string
		par  int
	}{{"p=1", 1}, {"p=2", 2}, {"p=auto", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			sets := 0
			for i := 0; i < b.N; i++ {
				c := Build(g, Params{Seed: uint64(i), Parallelism: bc.par})
				sets = c.NumSets()
			}
			b.ReportMetric(float64(sets)*float64(b.N)/b.Elapsed().Seconds(), "sets/sec")
		})
	}
}

// BenchmarkBuildDropForwardIndex isolates the memory effect of the
// opt-in forward-index drop: the collection answers the same queries
// while retiring setOff/setMembers (roughly half the membership bytes).
// Compare bytes/op against BenchmarkBuild for the bench note.
func BenchmarkBuildDropForwardIndex(b *testing.B) {
	g := socialgraph.GeneratePreferentialAttachment(2400, 3, randx.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(g, Params{Seed: uint64(i), DropForwardIndex: true})
	}
}
