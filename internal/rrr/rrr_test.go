package rrr

import (
	"math"
	"slices"
	"testing"

	"dita/internal/ic"
	"dita/internal/paralleltest"
	"dita/internal/randx"
	"dita/internal/socialgraph"
)

func TestBuildSmallGraphBasics(t *testing.T) {
	g := socialgraph.GeneratePreferentialAttachment(60, 2, randx.New(1))
	c := Build(g, Params{Seed: 1})
	if c.NumSets() == 0 {
		t.Fatal("no RRR sets generated")
	}
	st := c.Stats()
	if st.NumSets != c.NumSets() {
		t.Errorf("stats NumSets %d != collection %d", st.NumSets, c.NumSets())
	}
	if st.Iterations < 1 {
		t.Errorf("no halving iterations recorded")
	}
	// Every propagation probability is a probability.
	for ws := int32(0); ws < int32(g.N()); ws++ {
		wp := c.Propagation(ws)
		if wp[ws] != 0 {
			t.Fatalf("self propagation of %d = %v, want 0", ws, wp[ws])
		}
		for wi, p := range wp {
			if p < 0 || p > 1 {
				t.Fatalf("Ppro(%d,%d) = %v outside [0,1]", ws, wi, p)
			}
		}
	}
}

func TestDegenerateGraphs(t *testing.T) {
	empty := socialgraph.MustNew(0, nil)
	c := Build(empty, Params{Seed: 1})
	if c.NumSets() != 0 {
		t.Errorf("empty graph produced %d sets", c.NumSets())
	}
	single := socialgraph.MustNew(1, nil)
	c = Build(single, Params{Seed: 1})
	if got := c.Propagation(0); len(got) != 1 || got[0] != 0 {
		t.Errorf("single-node propagation = %v", got)
	}
	// No edges: nobody informs anybody.
	isolated := socialgraph.MustNew(5, nil)
	c = Build(isolated, Params{Seed: 1, MaxSets: 1000})
	for ws := int32(0); ws < 5; ws++ {
		for wi, p := range c.Propagation(ws) {
			if p != 0 {
				t.Errorf("isolated graph Ppro(%d,%d) = %v, want 0", ws, wi, p)
			}
		}
	}
}

func TestPropagationMatchesMonteCarloIC(t *testing.T) {
	// Lemma 2 made executable: the RRR-set estimate of Ppro(ws, wi) must
	// agree with forward IC simulation. A large fixed set count keeps the
	// estimator's own noise below the tolerance (≈500k per-root samples
	// /40 roots → std error < 0.005 per entry at 12.5k samples).
	g := socialgraph.GeneratePreferentialAttachment(40, 2, randx.New(3))
	m := ic.NewModel(g)

	for _, ws := range []int32{0, 7, 25} {
		rrrEst := MonteCarloReference(g, ws, 500000, uint64(ws)+99)
		mcEst := m.InformedProb(ws, 20000, randx.New(uint64(ws)+10))
		mcEst[ws] = 0
		for wi := range rrrEst {
			if math.Abs(rrrEst[wi]-mcEst[wi]) > 0.03 {
				t.Errorf("ws=%d wi=%d: RRR %v vs MC %v", ws, wi, rrrEst[wi], mcEst[wi])
			}
		}
	}
}

func TestPropagationSumConsistent(t *testing.T) {
	g := socialgraph.GeneratePreferentialAttachment(50, 2, randx.New(5))
	c := Build(g, Params{Seed: 6})
	for ws := int32(0); ws < int32(g.N()); ws += 5 {
		vec := c.Propagation(ws)
		sum := 0.0
		for _, p := range vec {
			sum += p
		}
		if got := c.PropagationSum(ws); math.Abs(got-sum) > 1e-9 {
			t.Errorf("PropagationSum(%d) = %v, vector sum %v", ws, got, sum)
		}
	}
}

func TestInformedRangeIncludesSelf(t *testing.T) {
	g := socialgraph.GeneratePreferentialAttachment(50, 2, randx.New(7))
	c := Build(g, Params{Seed: 8})
	for ws := int32(0); ws < int32(g.N()); ws += 7 {
		ir := c.InformedRange(ws)
		ps := c.PropagationSum(ws)
		if ir < ps-1e-9 {
			t.Errorf("InformedRange(%d) = %v < PropagationSum %v", ws, ir, ps)
		}
		if ir <= 0 {
			t.Errorf("InformedRange(%d) = %v, want > 0 (worker reaches itself)", ws, ir)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g := socialgraph.GeneratePreferentialAttachment(80, 2, randx.New(9))
	a := Build(g, Params{Seed: 10})
	b := Build(g, Params{Seed: 10})
	if a.NumSets() != b.NumSets() {
		t.Fatalf("set counts differ: %d vs %d", a.NumSets(), b.NumSets())
	}
	for ws := int32(0); ws < int32(g.N()); ws += 11 {
		va, vb := a.Propagation(ws), b.Propagation(ws)
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("Ppro(%d,%d) differs across identical runs", ws, i)
			}
		}
	}
}

func TestMaxSetsCapRespected(t *testing.T) {
	g := socialgraph.GeneratePreferentialAttachment(100, 3, randx.New(11))
	c := Build(g, Params{Seed: 12, MaxSets: 500})
	if c.NumSets() > 500 {
		t.Fatalf("cap violated: %d sets", c.NumSets())
	}
	if !c.Stats().Capped {
		t.Error("cap bound the run but Capped is false")
	}
}

func TestGreedyInformedWorkerIsArgmax(t *testing.T) {
	g := socialgraph.GeneratePreferentialAttachment(60, 2, randx.New(13))
	c := Build(g, Params{Seed: 14})
	st := c.Stats()
	best := c.CoverageCount(st.GreedyWorker)
	for w := int32(0); w < int32(g.N()); w++ {
		if c.CoverageCount(w) > best {
			// The recorded greedy worker was the argmax at acceptance
			// time, before the final top-up; allow only a small
			// violation margin from the extra sets.
			excess := float64(c.CoverageCount(w)-best) / float64(c.NumSets())
			if excess > 0.05 {
				t.Errorf("worker %d coverage %d far exceeds greedy worker %d's %d",
					w, c.CoverageCount(w), st.GreedyWorker, best)
			}
		}
	}
}

func TestMonteCarloReferenceAgreesWithBuild(t *testing.T) {
	// Build's adaptive schedule picks its own (smaller) N, so individual
	// entries carry sampling noise; the estimates must still be unbiased.
	// Check the mean absolute deviation against a high-N reference and a
	// loose per-entry bound sized to Build's per-root sample count.
	g := socialgraph.GeneratePreferentialAttachment(40, 2, randx.New(15))
	c := Build(g, Params{Seed: 16, Epsilon: 0.05, MaxSets: 400000})
	for _, ws := range []int32{3, 17} {
		ref := MonteCarloReference(g, ws, 400000, 17)
		est := c.Propagation(ws)
		mad, n := 0.0, 0
		for wi := range ref {
			d := math.Abs(ref[wi] - est[wi])
			if d > 0.12 {
				t.Errorf("ws=%d wi=%d: reference %v vs RPO %v", ws, wi, ref[wi], est[wi])
			}
			mad += d
			n++
		}
		if mad/float64(n) > 0.03 {
			t.Errorf("ws=%d: mean absolute deviation %v too large", ws, mad/float64(n))
		}
	}
}

func TestHubPropagatesMoreThanLeaf(t *testing.T) {
	// Star: hub 0 connected bidirectionally to 20 leaves. The hub's
	// propagation sum should dominate any leaf's.
	var edges []socialgraph.Edge
	for i := int32(1); i <= 20; i++ {
		edges = append(edges, socialgraph.Edge{From: 0, To: i}, socialgraph.Edge{From: i, To: 0})
	}
	g := socialgraph.MustNew(21, edges)
	c := Build(g, Params{Seed: 18})
	hub := c.PropagationSum(0)
	leaf := c.PropagationSum(1)
	if hub <= leaf {
		t.Errorf("hub sum %v not above leaf sum %v", hub, leaf)
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Epsilon != 0.1 || p.O != 1 || p.MaxSets != 1<<18 {
		t.Errorf("defaults = %+v, want ε=0.1 o=1 MaxSets=1<<18", p)
	}
}

func TestBuildParallelismInvariant(t *testing.T) {
	// The headline determinism contract of the parallel sampler: for a
	// fixed Seed the collection — roots, forward and inverted indexes,
	// stats, every unexported byte — is bit-identical at every
	// Parallelism, including the inline sequential path.
	g := socialgraph.GeneratePreferentialAttachment(120, 2, randx.New(21))
	paralleltest.Invariant(t, func(par int) any {
		return Build(g, Params{Seed: 22, Parallelism: par})
	})
}

func TestDropForwardIndexPreservesQueries(t *testing.T) {
	g := socialgraph.GeneratePreferentialAttachment(90, 2, randx.New(31))
	kept := Build(g, Params{Seed: 32})
	dropped := Build(g, Params{Seed: 32, DropForwardIndex: true})
	if !kept.HasForwardIndex() {
		t.Fatal("default build lost its forward index")
	}
	if dropped.HasForwardIndex() {
		t.Fatal("DropForwardIndex build retained the forward index")
	}
	if dropped.NumSets() != kept.NumSets() || dropped.Stats() != kept.Stats() {
		t.Fatalf("dropped build stats differ: %+v vs %+v", dropped.Stats(), kept.Stats())
	}
	// Every inverted-index query is unaffected.
	for ws := int32(0); ws < int32(g.N()); ws++ {
		if !slices.Equal(dropped.SetIDs(ws), kept.SetIDs(ws)) {
			t.Fatalf("cover of worker %d differs after drop", ws)
		}
		if !slices.Equal(dropped.Propagation(ws), kept.Propagation(ws)) {
			t.Fatalf("Ppro(%d, ·) differs after drop", ws)
		}
		if dropped.PropagationSum(ws) != kept.PropagationSum(ws) {
			t.Fatalf("propagation sum of %d differs after drop", ws)
		}
		if dropped.CoverageCount(ws) != kept.CoverageCount(ws) {
			t.Fatalf("coverage count of %d differs after drop", ws)
		}
	}
	// Seed selection runs purely on the inverted index.
	a, b := dropped.TopKSeeds(5), kept.TopKSeeds(5)
	if !slices.Equal(a.Seeds, b.Seeds) || !slices.Equal(a.Spread, b.Spread) {
		t.Fatalf("TopKSeeds differs after drop: %+v vs %+v", a, b)
	}
	// Per-set enumeration is the one documented casualty.
	if dropped.SetMembers(0) != nil {
		t.Error("SetMembers on a dropped collection should return nil")
	}
	if kept.SetMembers(0) == nil {
		t.Error("SetMembers on a kept collection should work")
	}
}

func TestCSRIndexConsistent(t *testing.T) {
	g := socialgraph.GeneratePreferentialAttachment(70, 2, randx.New(23))
	c := Build(g, Params{Seed: 24, MaxSets: 2000})
	// The inverted index must be exactly the transpose of the forward
	// sets, with ascending ids per worker.
	covered := make(map[int32][]int32)
	for j := int32(0); j < int32(c.NumSets()); j++ {
		members := c.SetMembers(j)
		if len(members) == 0 || members[0] != c.Root(j) {
			t.Fatalf("set %d does not lead with its root", j)
		}
		for _, w := range members {
			covered[w] = append(covered[w], j)
		}
	}
	for w := int32(0); w < int32(g.N()); w++ {
		ids := c.SetIDs(w)
		if !slices.IsSorted(ids) {
			t.Fatalf("cover of worker %d not ascending", w)
		}
		if !slices.Equal(ids, covered[w]) {
			t.Fatalf("cover of worker %d = %v, transpose says %v", w, ids, covered[w])
		}
		if c.CoverageCount(w) != len(ids) {
			t.Fatalf("CoverageCount(%d) = %d, want %d", w, c.CoverageCount(w), len(ids))
		}
	}
}

func TestRootCountsMatchesCover(t *testing.T) {
	g := socialgraph.GeneratePreferentialAttachment(60, 2, randx.New(25))
	c := Build(g, Params{Seed: 26, MaxSets: 3000})
	for ws := int32(0); ws < int32(g.N()); ws += 4 {
		roots, counts := c.RootCounts(ws)
		if !slices.IsSorted(roots) {
			t.Fatalf("RootCounts(%d) roots not sorted", ws)
		}
		want := make(map[int32]int32)
		for _, id := range c.SetIDs(ws) {
			want[c.Root(id)]++
		}
		if len(roots) != len(want) {
			t.Fatalf("RootCounts(%d): %d distinct roots, want %d", ws, len(roots), len(want))
		}
		for i, r := range roots {
			if counts[i] != want[r] {
				t.Fatalf("RootCounts(%d): root %d count %d, want %d", ws, r, counts[i], want[r])
			}
		}
	}
}
