// Package rrr implements the Random reverse reachable-based Propagation
// Optimization (RPO) algorithm of Section III-C2 and its feasibility
// machinery (Section III-E): random reverse-reachable (RRR) set sampling
// under the Independent Cascade model, the iteration-based lower bound
// NR(k) (Lemma 6), the threshold-based lower bound N'R(γ) (Lemma 5), the
// greedy informed worker (Definition 8), and the resulting worker
// propagation estimates Ppro(ws, wi) (Equation 3).
//
// Sampling is parallel and deterministic: sets are generated in fixed
// chunks of sampleChunk, each chunk driven by its own split stream of
// the run's seed, so the collection is bit-identical for every
// Params.Parallelism setting (see internal/parallel for the contract).
package rrr

import (
	"fmt"
	"math"
	"slices"

	"dita/internal/parallel"
	"dita/internal/randx"
	"dita/internal/socialgraph"
)

// Params configures the RPO algorithm. Zero values select the paper's
// defaults (ε = 0.1, o = 1) with a practical memory cap.
type Params struct {
	// Epsilon is the approximation parameter ε; the estimate is a
	// (1−ε)-approximation with high probability. Default 0.1.
	Epsilon float64 `json:"epsilon"`
	// O sets the failure probability λ = 1/|W|^o. Default 1.
	O float64 `json:"o"`
	// MaxSets caps the total number of RRR sets generated, bounding
	// memory on large graphs. Default 1 << 18. The Stats record whether
	// the cap bound the theoretical requirement.
	MaxSets int `json:"max_sets"`
	// Seed drives all sampling. Two runs with equal Params over the same
	// graph produce identical estimates; the result does not depend on
	// Parallelism.
	Seed uint64 `json:"seed"`
	// Parallelism bounds the sampling worker goroutines; <= 0 means
	// runtime.GOMAXPROCS(0). Any setting yields a bit-identical
	// collection because every sample chunk draws from a stream derived
	// from its chunk index, not from the goroutine that runs it.
	Parallelism int `json:"parallelism,omitempty"`
	// DropForwardIndex releases the forward set index (setOff/setMembers)
	// once the inverted cover index is built, roughly halving the
	// collection's membership memory. Every propagation query and
	// TopKSeeds run on the inverted index and are unaffected; only
	// SetMembers becomes unavailable (it returns nil). Opt in when a
	// collection is memory-bound and per-set enumeration is not needed.
	DropForwardIndex bool `json:"drop_forward_index,omitempty"`
}

func (p Params) withDefaults() Params {
	if p.Epsilon <= 0 {
		p.Epsilon = 0.1
	}
	if p.O <= 0 {
		p.O = 1
	}
	if p.MaxSets <= 0 {
		p.MaxSets = 1 << 18
	}
	return p
}

// sampleChunk is the number of RRR sets one scheduling chunk generates.
// It is part of the determinism contract: changing it changes which
// stream drives which set, and therefore the sampled collection.
const sampleChunk = 64

// Stats reports how the RPO run unfolded; the benchmark harness prints
// them and tests assert on them.
type Stats struct {
	NumSets      int     `json:"num_sets"`      // |R| finally used
	TargetSets   int     `json:"target_sets"`   // max(N'R(γ), NR(ki)) before capping
	Ki           float64 `json:"ki"`            // the accepted test value k_i
	NOptP        float64 `json:"n_opt_p"`       // N^opt_p = |W|·f_R(w^θ_s) at acceptance
	GreedyWorker int32   `json:"greedy_worker"` // the greedy informed worker w^θ_s
	SigmaLower   float64 `json:"sigma_lower"`   // derived lower bound on σ(w^τ_s)
	Capped       bool    `json:"capped"`        // true when MaxSets bound the requirement
	Iterations   int     `json:"iterations"`    // halving iterations performed
}

// Collection is a materialized family R of RRR sets over a social graph
// plus the inverted index needed to answer propagation queries. Build it
// once per (graph, time instance) and query propagation vectors for any
// number of source workers. All storage is flat CSR-style arrays, so a
// collection is a handful of allocations regardless of |R|.
type Collection struct {
	g *socialgraph.Graph
	// roots[j] is the uniformly chosen root of set j.
	roots []int32
	// Forward index: the members of set j are
	// setMembers[setOff[j]:setOff[j+1]] (the root is always a member).
	setOff     []int32
	setMembers []int32
	// Inverted index: the ids of the sets containing worker w are
	// coverIDs[coverOff[w]:coverOff[w+1]], in ascending set-id order.
	coverOff []int32
	coverIDs []int32
	stats    Stats
}

// cover returns the ids of the sets containing worker w (ascending).
func (c *Collection) cover(w int32) []int32 {
	return c.coverIDs[c.coverOff[w]:c.coverOff[w+1]]
}

// builder accumulates RRR sets across the adaptive schedule of Build.
// It owns one sampler per worker goroutine plus per-chunk member
// buffers that are recycled batch to batch, so steady-state sampling
// allocates only when the flat arrays grow.
type builder struct {
	g        *socialgraph.Graph
	n        int
	workers  int
	samplers []*sampler

	roots   []int32
	setLen  []int32 // member count of each set, filled per chunk
	members []int32 // flat members in set order, merged after each batch
	// coverage[w] = number of accumulated sets containing w.
	coverage []int32
	// chunkBufs[c] holds chunk c's members of the current batch until
	// the sequential merge; the underlying arrays are reused.
	chunkBufs [][]int32
	// rngs[c] is chunk c's stream for the current batch, reseeded in
	// place batch to batch.
	rngs []randx.Rand
}

func newBuilder(g *socialgraph.Graph, workers int) *builder {
	b := &builder{
		g:        g,
		n:        g.N(),
		workers:  workers,
		samplers: make([]*sampler, workers),
		coverage: make([]int32, g.N()),
	}
	for i := range b.samplers {
		b.samplers[i] = newSampler(g)
	}
	return b
}

// reserve pre-sizes the per-set arrays for a target of `want` total sets
// (the Lemma 6 / Lemma 5 requirement), so the append loops below do not
// re-grow through intermediate capacities.
func (b *builder) reserve(want int) {
	if extra := want - len(b.roots); extra > 0 {
		b.roots = slices.Grow(b.roots, extra)
		b.setLen = slices.Grow(b.setLen, extra)
	}
}

// addSets samples `count` additional RRR sets. Chunks of sampleChunk
// sets are scheduled over the worker pool; chunk c of this batch draws
// root choices and traversals from rng.Split(c), derived sequentially
// up front so the collection does not depend on scheduling order.
func (b *builder) addSets(count int, rng *randx.Rand) {
	if count <= 0 {
		return
	}
	base := len(b.roots)
	b.roots = append(b.roots, make([]int32, count)...)
	b.setLen = append(b.setLen, make([]int32, count)...)

	chunks := parallel.NumChunks(count, sampleChunk)
	if len(b.rngs) < chunks {
		b.rngs = make([]randx.Rand, chunks)
	}
	rng.SplitStreamsInto(b.rngs[:chunks])
	for len(b.chunkBufs) < chunks {
		b.chunkBufs = append(b.chunkBufs, nil)
	}

	parallel.ForChunks(b.workers, count, sampleChunk, func(worker, c, lo, hi int) {
		smp := b.samplers[worker]
		crng := &b.rngs[c]
		buf := b.chunkBufs[c][:0]
		for j := lo; j < hi; j++ {
			root := int32(crng.Intn(b.n))
			set := smp.sample(root, crng)
			b.roots[base+j] = root
			b.setLen[base+j] = int32(len(set))
			buf = append(buf, set...)
		}
		b.chunkBufs[c] = buf
	})

	// Sequential merge: concatenate chunk members in chunk order (which
	// is set order) and fold them into the coverage tally.
	total := 0
	for c := 0; c < chunks; c++ {
		total += len(b.chunkBufs[c])
	}
	b.members = slices.Grow(b.members, total)
	for c := 0; c < chunks; c++ {
		b.members = append(b.members, b.chunkBufs[c]...)
		for _, w := range b.chunkBufs[c] {
			b.coverage[w]++
		}
	}
}

// reset discards every accumulated set (Algorithm 1 line 13) while
// keeping all buffers for the next, larger batch.
func (b *builder) reset() {
	b.roots = b.roots[:0]
	b.setLen = b.setLen[:0]
	b.members = b.members[:0]
	clear(b.coverage)
}

// finish freezes the accumulated sets into a queryable Collection,
// building the forward offsets and the inverted CSR cover index with
// one counting pass each.
func (b *builder) finish(c *Collection, st Stats) {
	numSets := len(b.roots)
	c.roots = b.roots
	c.setOff = make([]int32, numSets+1)
	for j, l := range b.setLen {
		c.setOff[j+1] = c.setOff[j] + l
	}
	c.setMembers = b.members

	c.coverOff = make([]int32, b.n+1)
	for w, cnt := range b.coverage {
		c.coverOff[w+1] = c.coverOff[w] + cnt
	}
	c.coverIDs = make([]int32, len(b.members))
	cursor := make([]int32, b.n)
	copy(cursor, c.coverOff[:b.n])
	for j := 0; j < numSets; j++ {
		for _, w := range b.members[c.setOff[j]:c.setOff[j+1]] {
			c.coverIDs[cursor[w]] = int32(j)
			cursor[w]++
		}
	}

	st.NumSets = numSets
	c.stats = st
}

// Build runs the full RPO procedure (Algorithm 1) over g and returns the
// resulting collection. The algorithm iterates k from |W|/2 downward,
// generating NR(k) sets per iteration, until the greedy informed worker's
// coverage N^opt_p crosses the threshold γ = (1+ε*)·k; then it tops the
// collection up to the threshold-based bound N'R(γ).
func Build(g *socialgraph.Graph, p Params) *Collection {
	p = p.withDefaults()
	n := g.N()
	c := &Collection{g: g, coverOff: make([]int32, n+1)}
	if n <= 1 {
		// Zero or one worker: nothing can propagate anywhere.
		return c
	}
	rng := randx.New(p.Seed)
	W := float64(n)
	epsStar := math.Sqrt2 * p.Epsilon
	// λ* = 1/(|W|^o · log2|W|), λ = 1/|W|^o  (Section III-E).
	log2W := math.Log2(W)
	if log2W < 1 {
		log2W = 1
	}
	lnInvLambdaStar := p.O*math.Log(W) + math.Log(log2W)
	lnInvLambda := p.O * math.Log(W)

	b := newBuilder(g, parallel.Workers(p.Parallelism))

	var st Stats
	accepted := false
	// K = {|W|/2, |W|/4, ..., 2}; the paper runs T(ki) on O(log2|W|)
	// values of K.
	for k := W / 2; k >= 2; k /= 2 {
		st.Iterations++
		// NR(k) per Lemma 6.
		nrk := (2 + 2*epsStar/3) * (math.Log(W) + lnInvLambdaStar) * W / (epsStar * epsStar * k)
		want := int(math.Ceil(nrk))
		if want > p.MaxSets {
			want = p.MaxSets
			st.Capped = true
		}
		b.reserve(want)
		if add := want - len(b.roots); add > 0 {
			b.addSets(add, rng)
		}
		// N^opt_p = |W| · max_w f_R(w)  (greedy informed worker).
		best, bestCov := int32(0), int32(-1)
		for w := int32(0); w < int32(n); w++ {
			if b.coverage[w] > bestCov {
				best, bestCov = w, b.coverage[w]
			}
		}
		nOptP := W * float64(bestCov) / float64(len(b.roots))
		gamma := (1 + epsStar) * k
		if nOptP >= gamma {
			// σ(w^τ_s) ≥ N^opt_p · ki/γ with probability ≥ 1−λ*.
			sigma := nOptP * k / gamma
			st.Ki = k
			st.NOptP = nOptP
			st.GreedyWorker = best
			st.SigmaLower = sigma
			// N'R(γ) per Lemma 5.
			nr := 2 * W * lnInvLambda / (sigma * p.Epsilon * p.Epsilon)
			st.TargetSets = int(math.Ceil(nr))
			accepted = true
			break
		}
		// Test failed: discard R as Algorithm 1 prescribes (line 13) and
		// halve k. (A fresh batch of the larger size is generated next
		// round; regeneration keeps the estimator's independence
		// assumptions intact.)
		b.reset()
	}
	if !accepted {
		// Every test failed, meaning even σ(w^τ_s) < 2: the graph barely
		// propagates. Fall back to the most conservative bound with
		// σ = 1 (a worker always reaches itself).
		st.Ki = 2
		st.SigmaLower = 1
		st.TargetSets = int(math.Ceil(2 * W * lnInvLambda / (p.Epsilon * p.Epsilon)))
	}
	want := st.TargetSets
	if want > p.MaxSets {
		want = p.MaxSets
		st.Capped = true
	}
	b.reserve(want)
	if add := want - len(b.roots); add > 0 {
		b.addSets(add, rng)
	}
	b.finish(c, st)
	if p.DropForwardIndex {
		c.setOff, c.setMembers = nil, nil
	}
	return c
}

// HasForwardIndex reports whether the per-set membership arrays are
// retained (false after Params.DropForwardIndex).
func (c *Collection) HasForwardIndex() bool { return c.setOff != nil }

// Stats returns the run statistics recorded by Build.
func (c *Collection) Stats() Stats { return c.stats }

// NumSets returns |R|.
func (c *Collection) NumSets() int { return len(c.roots) }

// Graph returns the underlying social graph.
func (c *Collection) Graph() *socialgraph.Graph { return c.g }

// Propagation returns the worker-propagation vector WP_ws: for every
// worker wi, the estimated probability Ppro(ws, wi) that wi is informed
// when ws knows the task (Equation 3):
//
//	Ppro(ws, wi) = |W|/N · #{ sets rooted at wi that contain ws }.
//
// The self entry Ppro(ws, ws) is forced to zero because the influence sum
// ranges over W \ {ws}.
func (c *Collection) Propagation(ws int32) []float64 {
	n := c.g.N()
	out := make([]float64, n)
	N := len(c.roots)
	if N == 0 {
		return out
	}
	scale := float64(n) / float64(N)
	for _, id := range c.cover(ws) {
		out[c.roots[id]] += scale
	}
	out[ws] = 0
	// Probabilities cannot exceed 1; the unbiased estimator can overshoot
	// on small N, so clamp for downstream stability.
	for i := range out {
		if out[i] > 1 {
			out[i] = 1
		}
	}
	return out
}

// RootCounts returns, for every distinct root among the sets containing
// ws, that root and how many such sets it roots, sorted by ascending
// root id so float accumulation over the result is deterministic. It is
// the compact form of the cover that the influence evaluator consumes.
func (c *Collection) RootCounts(ws int32) (roots, counts []int32) {
	ids := c.cover(ws)
	if len(ids) == 0 {
		return nil, nil
	}
	rs := make([]int32, len(ids))
	for i, id := range ids {
		rs[i] = c.roots[id]
	}
	slices.Sort(rs)
	// Run-length encode in place.
	k := 0
	counts = make([]int32, 0, len(rs))
	for i := 0; i < len(rs); {
		j := i
		for j < len(rs) && rs[j] == rs[i] {
			j++
		}
		rs[k] = rs[i]
		counts = append(counts, int32(j-i))
		k++
		i = j
	}
	return rs[:k], counts
}

// PropagationSum returns Σ_{wi ≠ ws} Ppro(ws, wi) without materializing
// the vector; it is the Average Propagation (AP) contribution of ws and a
// hot path of the benchmark harness.
func (c *Collection) PropagationSum(ws int32) float64 {
	N := len(c.roots)
	if N == 0 {
		return 0
	}
	roots, ns := c.RootCounts(ws)
	scale := float64(c.g.N()) / float64(N)
	sum := 0.0
	for i, root := range roots {
		if root == ws {
			continue
		}
		v := scale * float64(ns[i])
		if v > 1 {
			v = 1
		}
		sum += v
	}
	return sum
}

// InformedRange returns σ(ws), the estimated fraction-scaled number of
// workers informed by ws (Definition 6): Σ_i Ppro(ws, wi), this time
// including the root-reaches-itself term the definition sums over.
func (c *Collection) InformedRange(ws int32) float64 {
	N := len(c.roots)
	if N == 0 {
		return 0
	}
	_, ns := c.RootCounts(ws)
	scale := float64(c.g.N()) / float64(N)
	sum := 0.0
	for _, cnt := range ns {
		v := scale * float64(cnt)
		if v > 1 {
			v = 1
		}
		sum += v
	}
	return sum
}

// CoverageCount returns how many sets contain w — |W|·f_R(w) divided by
// |W|; exposed for tests of the greedy informed worker.
func (c *Collection) CoverageCount(w int32) int {
	return int(c.coverOff[w+1] - c.coverOff[w])
}

// SetIDs returns the ids of the RRR sets containing worker w, in
// ascending order. The slice aliases internal storage and must not be
// modified.
func (c *Collection) SetIDs(w int32) []int32 { return c.cover(w) }

// SetMembers returns the members of RRR set id (the root is always
// included). The slice aliases internal storage and must not be
// modified. It returns nil when the collection was built with
// Params.DropForwardIndex.
func (c *Collection) SetMembers(id int32) []int32 {
	if c.setOff == nil {
		return nil
	}
	return c.setMembers[c.setOff[id]:c.setOff[id+1]]
}

// Root returns the root worker of RRR set id.
func (c *Collection) Root(id int32) int32 { return c.roots[id] }

// sampler generates one RRR set: a reverse BFS from a root where each
// in-edge (u → root-side node v) is traversed with probability
// 1/indeg(v), which is exactly sampling a live-edge subgraph of the IC
// model and collecting the nodes that can reach the root.
type sampler struct {
	g       *socialgraph.Graph
	visited []int32 // visit stamps to avoid clearing an array per sample
	stamp   int32
	queue   []int32
	out     []int32
}

func newSampler(g *socialgraph.Graph) *sampler {
	return &sampler{g: g, visited: make([]int32, g.N())}
}

// sample returns the RRR set for root. The returned slice is only valid
// until the next call; callers must copy if they retain it. The root is
// always a member (it trivially reaches itself).
func (s *sampler) sample(root int32, rng *randx.Rand) []int32 {
	s.stamp++
	s.queue = append(s.queue[:0], root)
	s.out = append(s.out[:0], root)
	s.visited[root] = s.stamp
	for len(s.queue) > 0 {
		v := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		in := s.g.In(v)
		if len(in) == 0 {
			continue
		}
		p := 1 / float64(len(in))
		for _, u := range in {
			if s.visited[u] == s.stamp {
				continue
			}
			if rng.Bool(p) {
				s.visited[u] = s.stamp
				s.queue = append(s.queue, u)
				s.out = append(s.out, u)
			}
		}
	}
	return s.out
}

// MonteCarloReference estimates Ppro(ws, ·) by brute-force sampling of
// RRR sets without any of the RPO bound machinery; tests use it to verify
// that Build's adaptive schedule converges to the same values.
func MonteCarloReference(g *socialgraph.Graph, ws int32, sets int, seed uint64) []float64 {
	n := g.N()
	out := make([]float64, n)
	if n == 0 || sets <= 0 {
		return out
	}
	rng := randx.New(seed)
	smp := newSampler(g)
	counts := make([]int32, n)
	for j := 0; j < sets; j++ {
		root := int32(rng.Intn(n))
		set := smp.sample(root, rng)
		for _, w := range set {
			if w == ws {
				counts[root]++
				break
			}
		}
	}
	scale := float64(n) / float64(sets)
	for i := range out {
		out[i] = scale * float64(counts[i])
		if out[i] > 1 {
			out[i] = 1
		}
	}
	out[ws] = 0
	return out
}

// Wire is the collection's serialized form, part of the framework
// artifact's pinned wire format (see internal/fwio): the flat CSR
// arrays exactly as Build laid them out, minus the graph (the artifact
// carries the graph once; FromWire reattaches it). A collection built
// with Params.DropForwardIndex serializes with the forward index absent
// and round-trips to the same dropped state.
type Wire struct {
	Roots      []int32 `json:"roots"`
	SetOff     []int32 `json:"set_off,omitempty"`
	SetMembers []int32 `json:"set_members,omitempty"`
	CoverOff   []int32 `json:"cover_off"`
	CoverIDs   []int32 `json:"cover_ids"`
	Stats      Stats   `json:"stats"`
}

// Wire returns the collection's serialized form. The arrays alias
// collection storage; callers must treat them as read-only.
func (c *Collection) Wire() Wire {
	return Wire{
		Roots:      c.roots,
		SetOff:     c.setOff,
		SetMembers: c.setMembers,
		CoverOff:   c.coverOff,
		CoverIDs:   c.coverIDs,
		Stats:      c.stats,
	}
}

// csrValid checks one CSR offset array: starts at zero, monotone
// nondecreasing, and its final offset indexes exactly the data array.
func csrValid(off []int32, dataLen int) bool {
	if len(off) == 0 || off[0] != 0 {
		return false
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return false
		}
	}
	return int(off[len(off)-1]) == dataLen
}

// FromWire rebuilds a collection over g from its serialized form,
// validating every CSR invariant and index range so a corrupt or
// hand-edited artifact cannot produce a collection that panics (or
// silently answers wrong) later.
func FromWire(g *socialgraph.Graph, w Wire) (*Collection, error) {
	n := g.N()
	if len(w.CoverOff) != n+1 {
		return nil, fmt.Errorf("rrr: wire cover index has %d offsets for a %d-worker graph (want %d)", len(w.CoverOff), n, n+1)
	}
	if !csrValid(w.CoverOff, len(w.CoverIDs)) {
		return nil, fmt.Errorf("rrr: wire cover index offsets are not a valid CSR over %d entries", len(w.CoverIDs))
	}
	numSets := len(w.Roots)
	for i, r := range w.Roots {
		if r < 0 || int(r) >= n {
			return nil, fmt.Errorf("rrr: wire set %d has root %d outside [0,%d)", i, r, n)
		}
	}
	for i, id := range w.CoverIDs {
		if id < 0 || int(id) >= numSets {
			return nil, fmt.Errorf("rrr: wire cover entry %d names set %d outside [0,%d)", i, id, numSets)
		}
	}
	if w.SetOff == nil {
		if len(w.SetMembers) != 0 {
			return nil, fmt.Errorf("rrr: wire has %d set members but no set offsets", len(w.SetMembers))
		}
	} else {
		if len(w.SetOff) != numSets+1 {
			return nil, fmt.Errorf("rrr: wire forward index has %d offsets for %d sets (want %d)", len(w.SetOff), numSets, numSets+1)
		}
		if !csrValid(w.SetOff, len(w.SetMembers)) {
			return nil, fmt.Errorf("rrr: wire forward-index offsets are not a valid CSR over %d members", len(w.SetMembers))
		}
		for i, m := range w.SetMembers {
			if m < 0 || int(m) >= n {
				return nil, fmt.Errorf("rrr: wire set member %d is worker %d outside [0,%d)", i, m, n)
			}
		}
	}
	return &Collection{
		g:          g,
		roots:      w.Roots,
		setOff:     w.SetOff,
		setMembers: w.SetMembers,
		coverOff:   w.CoverOff,
		coverIDs:   w.CoverIDs,
		stats:      w.Stats,
	}, nil
}
