// Package rrr implements the Random reverse reachable-based Propagation
// Optimization (RPO) algorithm of Section III-C2 and its feasibility
// machinery (Section III-E): random reverse-reachable (RRR) set sampling
// under the Independent Cascade model, the iteration-based lower bound
// NR(k) (Lemma 6), the threshold-based lower bound N'R(γ) (Lemma 5), the
// greedy informed worker (Definition 8), and the resulting worker
// propagation estimates Ppro(ws, wi) (Equation 3).
package rrr

import (
	"math"
	"sort"

	"dita/internal/randx"
	"dita/internal/socialgraph"
)

// Params configures the RPO algorithm. Zero values select the paper's
// defaults (ε = 0.1, o = 1) with a practical memory cap.
type Params struct {
	// Epsilon is the approximation parameter ε; the estimate is a
	// (1−ε)-approximation with high probability. Default 0.1.
	Epsilon float64
	// O sets the failure probability λ = 1/|W|^o. Default 1.
	O float64
	// MaxSets caps the total number of RRR sets generated, bounding
	// memory on large graphs. Default 1 << 18. The Stats record whether
	// the cap bound the theoretical requirement.
	MaxSets int
	// Seed drives all sampling. Two runs with equal Params over the same
	// graph produce identical estimates.
	Seed uint64
}

func (p Params) withDefaults() Params {
	if p.Epsilon <= 0 {
		p.Epsilon = 0.1
	}
	if p.O <= 0 {
		p.O = 1
	}
	if p.MaxSets <= 0 {
		p.MaxSets = 1 << 18
	}
	return p
}

// Stats reports how the RPO run unfolded; the benchmark harness prints
// them and tests assert on them.
type Stats struct {
	NumSets      int     // |R| finally used
	TargetSets   int     // max(N'R(γ), NR(ki)) before capping
	Ki           float64 // the accepted test value k_i
	NOptP        float64 // N^opt_p = |W|·f_R(w^θ_s) at acceptance
	GreedyWorker int32   // the greedy informed worker w^θ_s
	SigmaLower   float64 // derived lower bound on σ(w^τ_s)
	Capped       bool    // true when MaxSets bound the requirement
	Iterations   int     // halving iterations performed
}

// Collection is a materialized family R of RRR sets over a social graph
// plus the inverted index needed to answer propagation queries. Build it
// once per (graph, time instance) and query propagation vectors for any
// number of source workers.
type Collection struct {
	g *socialgraph.Graph
	// roots[j] is the uniformly chosen root of set j.
	roots []int32
	// cover is the inverted index: cover[w] lists the ids of sets that
	// contain worker w (including sets rooted at w itself — a root
	// trivially reaches itself).
	cover [][]int32
	stats Stats
}

// Build runs the full RPO procedure (Algorithm 1) over g and returns the
// resulting collection. The algorithm iterates k from |W|/2 downward,
// generating NR(k) sets per iteration, until the greedy informed worker's
// coverage N^opt_p crosses the threshold γ = (1+ε*)·k; then it tops the
// collection up to the threshold-based bound N'R(γ).
func Build(g *socialgraph.Graph, p Params) *Collection {
	p = p.withDefaults()
	n := g.N()
	c := &Collection{g: g, cover: make([][]int32, n)}
	if n == 0 {
		return c
	}
	if n == 1 {
		// Single worker: nothing can propagate anywhere.
		c.stats = Stats{NumSets: 0, TargetSets: 0}
		return c
	}
	rng := randx.New(p.Seed)
	W := float64(n)
	epsStar := math.Sqrt2 * p.Epsilon
	// λ* = 1/(|W|^o · log2|W|), λ = 1/|W|^o  (Section III-E).
	log2W := math.Log2(W)
	if log2W < 1 {
		log2W = 1
	}
	lnInvLambdaStar := p.O*math.Log(W) + math.Log(log2W)
	lnInvLambda := p.O * math.Log(W)

	sampler := newSampler(g)
	coverage := make([]int32, n) // coverage[w] = number of sets containing w

	addSets := func(count int, rng *randx.Rand) {
		for i := 0; i < count; i++ {
			root := int32(rng.Intn(n))
			set := sampler.sample(root, rng)
			id := int32(len(c.roots))
			c.roots = append(c.roots, root)
			for _, w := range set {
				c.cover[w] = append(c.cover[w], id)
				coverage[w]++
			}
		}
	}
	reset := func() {
		c.roots = c.roots[:0]
		for i := range c.cover {
			c.cover[i] = c.cover[i][:0]
		}
		for i := range coverage {
			coverage[i] = 0
		}
	}

	var st Stats
	accepted := false
	// K = {|W|/2, |W|/4, ..., 2}; the paper runs T(ki) on O(log2|W|)
	// values of K.
	for k := W / 2; k >= 2; k /= 2 {
		st.Iterations++
		// NR(k) per Lemma 6.
		nrk := (2 + 2*epsStar/3) * (math.Log(W) + lnInvLambdaStar) * W / (epsStar * epsStar * k)
		want := int(math.Ceil(nrk))
		if want > p.MaxSets {
			want = p.MaxSets
			st.Capped = true
		}
		if add := want - len(c.roots); add > 0 {
			addSets(add, rng)
		}
		// N^opt_p = |W| · max_w f_R(w)  (greedy informed worker).
		best, bestCov := int32(0), int32(-1)
		for w := int32(0); w < int32(n); w++ {
			if coverage[w] > bestCov {
				best, bestCov = w, coverage[w]
			}
		}
		nOptP := W * float64(bestCov) / float64(len(c.roots))
		gamma := (1 + epsStar) * k
		if nOptP >= gamma {
			// σ(w^τ_s) ≥ N^opt_p · ki/γ with probability ≥ 1−λ*.
			sigma := nOptP * k / gamma
			st.Ki = k
			st.NOptP = nOptP
			st.GreedyWorker = best
			st.SigmaLower = sigma
			// N'R(γ) per Lemma 5.
			nr := 2 * W * lnInvLambda / (sigma * p.Epsilon * p.Epsilon)
			st.TargetSets = int(math.Ceil(nr))
			accepted = true
			break
		}
		// Test failed: discard R as Algorithm 1 prescribes (line 13) and
		// halve k. (A fresh batch of the larger size is generated next
		// round; regeneration keeps the estimator's independence
		// assumptions intact.)
		reset()
	}
	if !accepted {
		// Every test failed, meaning even σ(w^τ_s) < 2: the graph barely
		// propagates. Fall back to the most conservative bound with
		// σ = 1 (a worker always reaches itself).
		st.Ki = 2
		st.SigmaLower = 1
		st.TargetSets = int(math.Ceil(2 * W * lnInvLambda / (p.Epsilon * p.Epsilon)))
	}
	want := st.TargetSets
	if want > p.MaxSets {
		want = p.MaxSets
		st.Capped = true
	}
	if add := want - len(c.roots); add > 0 {
		addSets(add, rng)
	}
	st.NumSets = len(c.roots)
	c.stats = st
	return c
}

// Stats returns the run statistics recorded by Build.
func (c *Collection) Stats() Stats { return c.stats }

// NumSets returns |R|.
func (c *Collection) NumSets() int { return len(c.roots) }

// Graph returns the underlying social graph.
func (c *Collection) Graph() *socialgraph.Graph { return c.g }

// Propagation returns the worker-propagation vector WP_ws: for every
// worker wi, the estimated probability Ppro(ws, wi) that wi is informed
// when ws knows the task (Equation 3):
//
//	Ppro(ws, wi) = |W|/N · #{ sets rooted at wi that contain ws }.
//
// The self entry Ppro(ws, ws) is forced to zero because the influence sum
// ranges over W \ {ws}.
func (c *Collection) Propagation(ws int32) []float64 {
	n := c.g.N()
	out := make([]float64, n)
	N := len(c.roots)
	if N == 0 {
		return out
	}
	scale := float64(n) / float64(N)
	for _, id := range c.cover[ws] {
		out[c.roots[id]] += scale
	}
	out[ws] = 0
	// Probabilities cannot exceed 1; the unbiased estimator can overshoot
	// on small N, so clamp for downstream stability.
	for i := range out {
		if out[i] > 1 {
			out[i] = 1
		}
	}
	return out
}

// rootCounts tallies how many sets rooted at each worker contain ws,
// returned in ascending root order so float accumulation over the result
// is deterministic.
func (c *Collection) rootCounts(ws int32) ([]int32, []int32) {
	counts := make(map[int32]int32, len(c.cover[ws]))
	for _, id := range c.cover[ws] {
		counts[c.roots[id]]++
	}
	roots := make([]int32, 0, len(counts))
	for r := range counts {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	ns := make([]int32, len(roots))
	for i, r := range roots {
		ns[i] = counts[r]
	}
	return roots, ns
}

// PropagationSum returns Σ_{wi ≠ ws} Ppro(ws, wi) without materializing
// the vector; it is the Average Propagation (AP) contribution of ws and a
// hot path of the benchmark harness.
func (c *Collection) PropagationSum(ws int32) float64 {
	N := len(c.roots)
	if N == 0 {
		return 0
	}
	roots, ns := c.rootCounts(ws)
	scale := float64(c.g.N()) / float64(N)
	sum := 0.0
	for i, root := range roots {
		if root == ws {
			continue
		}
		v := scale * float64(ns[i])
		if v > 1 {
			v = 1
		}
		sum += v
	}
	return sum
}

// InformedRange returns σ(ws), the estimated fraction-scaled number of
// workers informed by ws (Definition 6): Σ_i Ppro(ws, wi), this time
// including the root-reaches-itself term the definition sums over.
func (c *Collection) InformedRange(ws int32) float64 {
	N := len(c.roots)
	if N == 0 {
		return 0
	}
	_, ns := c.rootCounts(ws)
	scale := float64(c.g.N()) / float64(N)
	sum := 0.0
	for _, cnt := range ns {
		v := scale * float64(cnt)
		if v > 1 {
			v = 1
		}
		sum += v
	}
	return sum
}

// CoverageCount returns how many sets contain w — |W|·f_R(w) divided by
// |W|; exposed for tests of the greedy informed worker.
func (c *Collection) CoverageCount(w int32) int { return len(c.cover[w]) }

// SetIDs returns the ids of the RRR sets containing worker w. The slice
// aliases internal storage and must not be modified.
func (c *Collection) SetIDs(w int32) []int32 { return c.cover[w] }

// Root returns the root worker of RRR set id.
func (c *Collection) Root(id int32) int32 { return c.roots[id] }

// sampler generates one RRR set: a reverse BFS from a root where each
// in-edge (u → root-side node v) is traversed with probability
// 1/indeg(v), which is exactly sampling a live-edge subgraph of the IC
// model and collecting the nodes that can reach the root.
type sampler struct {
	g       *socialgraph.Graph
	visited []int32 // visit stamps to avoid clearing an array per sample
	stamp   int32
	queue   []int32
	out     []int32
}

func newSampler(g *socialgraph.Graph) *sampler {
	return &sampler{g: g, visited: make([]int32, g.N())}
}

// sample returns the RRR set for root. The returned slice is only valid
// until the next call; callers must copy if they retain it. The root is
// always a member (it trivially reaches itself).
func (s *sampler) sample(root int32, rng *randx.Rand) []int32 {
	s.stamp++
	s.queue = append(s.queue[:0], root)
	s.out = append(s.out[:0], root)
	s.visited[root] = s.stamp
	for len(s.queue) > 0 {
		v := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		in := s.g.In(v)
		if len(in) == 0 {
			continue
		}
		p := 1 / float64(len(in))
		for _, u := range in {
			if s.visited[u] == s.stamp {
				continue
			}
			if rng.Bool(p) {
				s.visited[u] = s.stamp
				s.queue = append(s.queue, u)
				s.out = append(s.out, u)
			}
		}
	}
	return s.out
}

// MonteCarloReference estimates Ppro(ws, ·) by brute-force sampling of
// RRR sets without any of the RPO bound machinery; tests use it to verify
// that Build's adaptive schedule converges to the same values.
func MonteCarloReference(g *socialgraph.Graph, ws int32, sets int, seed uint64) []float64 {
	n := g.N()
	out := make([]float64, n)
	if n == 0 || sets <= 0 {
		return out
	}
	rng := randx.New(seed)
	smp := newSampler(g)
	counts := make([]int32, n)
	for j := 0; j < sets; j++ {
		root := int32(rng.Intn(n))
		set := smp.sample(root, rng)
		for _, w := range set {
			if w == ws {
				counts[root]++
				break
			}
		}
	}
	scale := float64(n) / float64(sets)
	for i := range out {
		out[i] = scale * float64(counts[i])
		if out[i] > 1 {
			out[i] = 1
		}
	}
	out[ws] = 0
	return out
}
