package faultinject

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseSpecs(t *testing.T) {
	fs, err := parseSpecs("journal.record:crash:hit=3:once=/tmp/l, atomicio.write:torn ,p:stall:ms=5,q:exit:code=7")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 4 {
		t.Fatalf("parsed %d entries, want 4", len(fs))
	}
	f := fs[0]
	if f.point != "journal.record" || f.mode != Crash || f.hit != 3 || f.once != "/tmp/l" {
		t.Errorf("entry 0 parsed as %+v", f)
	}
	if fs[1].point != "atomicio.write" || fs[1].mode != Torn || fs[1].hit != 1 {
		t.Errorf("entry 1 parsed as %+v", fs[1])
	}
	if fs[2].ms != 5 {
		t.Errorf("stall ms = %d, want 5", fs[2].ms)
	}
	if fs[3].code != 7 {
		t.Errorf("exit code = %d, want 7", fs[3].code)
	}
}

func TestParseSpecsRejectsMalformed(t *testing.T) {
	for _, spec := range []string{
		"lonelypoint",
		"p:unknownmode",
		"p:crash:hit=0",
		"p:crash:hit=x",
		"p:stall:ms=-4",
		"p:crash:noequals",
		"p:crash:bogus=1",
	} {
		if fs, err := parseSpecs(spec); err == nil {
			t.Errorf("spec %q accepted as %+v", spec, fs)
		}
	}
}

func TestDueFiresOnNthHitOnly(t *testing.T) {
	f := &fault{point: "p", mode: Crash, hit: 3}
	fired := 0
	for i := 0; i < 10; i++ {
		if f.due() {
			fired++
			if i != 2 {
				t.Errorf("fired on call %d, want call 3", i+1)
			}
		}
	}
	if fired != 1 {
		t.Errorf("fired %d times, want exactly once", fired)
	}
}

func TestOnceLatchDisarmsLosers(t *testing.T) {
	latch := filepath.Join(t.TempDir(), "latch")
	a := &fault{point: "p", mode: Crash, hit: 1, once: latch}
	b := &fault{point: "p", mode: Crash, hit: 1, once: latch}
	if !a.due() {
		t.Fatal("first fault did not win its own latch")
	}
	if b.due() {
		t.Error("second fault fired despite an existing latch")
	}
	if _, err := os.Stat(latch); err != nil {
		t.Errorf("latch file missing after firing: %v", err)
	}
}

// TestHitInertWithoutSpec pins the production contract: with no
// DITA_FAULTS in the environment every point is a no-op. The test
// binary never sets the variable, so this exercises the real fast path.
func TestHitInertWithoutSpec(t *testing.T) {
	if os.Getenv(EnvVar) != "" {
		t.Skipf("%s set in the test environment", EnvVar)
	}
	start := time.Now()
	for i := 0; i < 1000; i++ {
		Hit("some.point")
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("1000 disarmed hits took %v; the inert path must be ~free", d)
	}
	data := []byte("payload")
	out, tear := TornWrite("some.point", data)
	if tear || string(out) != "payload" {
		t.Errorf("disarmed TornWrite returned %q, tear=%v", out, tear)
	}
}

// TestArmedProcessBehaviours re-executes the test binary with
// DITA_FAULTS armed and asserts on the real process outcome: exit code
// for exit mode, SIGKILL death for crash mode, torn payload for torn
// mode. This is the end-to-end contract the orchestrator tests lean on.
func TestArmedProcessBehaviours(t *testing.T) {
	if os.Getenv("FAULTINJECT_HELPER") != "" {
		helperMain()
		return
	}
	run := func(spec string) (string, error) {
		cmd := exec.Command(os.Args[0], "-test.run", "TestArmedProcessBehaviours")
		cmd.Env = append(os.Environ(), "FAULTINJECT_HELPER=1", EnvVar+"="+spec)
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	out, err := run("helper.point:exit:code=7")
	var exitErr *exec.ExitError
	if !asExitError(err, &exitErr) || exitErr.ExitCode() != 7 {
		t.Errorf("exit mode: err = %v (output %q), want exit code 7", err, out)
	}

	out, err = run("helper.point:crash")
	if !asExitError(err, &exitErr) || exitErr.ExitCode() != -1 {
		t.Errorf("crash mode: err = %v (output %q), want signal death", err, out)
	}

	out, err = run("helper.torn:torn")
	if err != nil {
		// The helper SIGKILLs itself after the torn write; death is the contract.
		if !asExitError(err, &exitErr) || exitErr.ExitCode() != -1 {
			t.Fatalf("torn mode: err = %v (output %q)", err, out)
		}
	}
	if !strings.Contains(out, "torn=8/16") {
		t.Errorf("torn mode output %q, want a torn=8/16 marker", out)
	}

	out, err = run("other.point:crash")
	if err != nil {
		t.Errorf("unmatched point: helper died (%v, output %q)", err, out)
	}
	if !strings.Contains(out, "helper done") {
		t.Errorf("unmatched point: output %q, want a clean finish", out)
	}
}

// helperMain is the armed subprocess body: it touches the fault points
// and reports what happened to them.
func helperMain() {
	Hit("helper.point")
	data, tear := TornWrite("helper.torn", []byte("0123456789abcdef"))
	if tear {
		fmt.Printf("torn=%d/16\n", len(data))
		os.Stdout.Sync()
		Kill()
	}
	fmt.Println("helper done")
	os.Exit(0)
}

func asExitError(err error, target **exec.ExitError) bool {
	return errors.As(err, target)
}
