// Package faultinject compiles controlled failure points into the
// production binaries so the fault-tolerant sweep orchestration can be
// tested end-to-end against real process death, real stalls and real
// torn artifact writes — not mocks. Every point is inert unless the
// DITA_FAULTS environment variable arms it, and the disarmed fast path
// is a single atomic load, so shipping the points in hot paths costs
// nothing.
//
// Spec grammar (comma-separated entries):
//
//	DITA_FAULTS = point:mode[:key=value]...[,point:mode...]
//
// Modes:
//
//	crash  kill the process with SIGKILL — an un-trappable death, the
//	       worst-case worker loss a supervisor must survive
//	exit   terminate via os.Exit(code) (default 1) — a "deterministic
//	       failure" as far as a supervisor can tell
//	stall  sleep for ms milliseconds (default one hour) — a hung worker
//	       for deadline supervision to reap
//	torn   truncate the write passing through Torn to its first half,
//	       then SIGKILL after the caller completes the write — a torn
//	       artifact on disk, as a lying filesystem would leave it
//
// Keys:
//
//	hit=N      fire on the Nth call of the point in this process
//	           (default 1); earlier and later calls are untouched
//	once=PATH  cross-process latch: the first process to fire creates
//	           PATH with O_EXCL and fires; any process finding PATH
//	           already present leaves the point disarmed. This is what
//	           keeps a supervised retry from re-crashing forever.
//	ms=N       stall duration in milliseconds
//	code=N     exit code for the exit mode
//
// Example — SIGKILL a sweep worker right after its third journaled job,
// exactly once across all retries:
//
//	DITA_FAULTS='journal.record:crash:hit=3:once=/tmp/crash.latch'
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Mode is a fault entry's failure behaviour.
type Mode string

// The supported failure modes.
const (
	Crash Mode = "crash"
	Exit  Mode = "exit"
	Stall Mode = "stall"
	Torn  Mode = "torn"
)

// fault is one armed entry of the DITA_FAULTS spec.
type fault struct {
	point string
	mode  Mode
	hit   int64  // fire on the Nth call of the point
	once  string // cross-process latch file; empty = fire unconditionally
	ms    int64  // stall duration
	code  int    // exit code
	calls atomic.Int64
	dead  atomic.Bool // already fired, or lost the once-latch race
}

var (
	armed  atomic.Bool // fast-path gate: false means every point is a no-op
	parse  sync.Once
	faults []*fault
)

// EnvVar names the environment variable the package arms itself from.
const EnvVar = "DITA_FAULTS"

// load parses DITA_FAULTS exactly once. A malformed spec is a hard
// error: silently ignoring it would make a recovery test pass without
// ever injecting its fault.
func load() {
	parse.Do(func() {
		spec := os.Getenv(EnvVar)
		if spec == "" {
			return
		}
		fs, err := parseSpecs(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultinject: %v\n", err)
			os.Exit(2)
		}
		faults = fs
		armed.Store(len(faults) > 0)
	})
}

// parseSpecs parses the comma-separated entry list.
func parseSpecs(spec string) ([]*fault, error) {
	var out []*fault
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		fields := strings.Split(entry, ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("entry %q is not point:mode[:key=value...]", entry)
		}
		f := &fault{point: fields[0], mode: Mode(fields[1]), hit: 1, ms: int64(time.Hour / time.Millisecond), code: 1}
		switch f.mode {
		case Crash, Exit, Stall, Torn:
		default:
			return nil, fmt.Errorf("entry %q: unknown mode %q", entry, fields[1])
		}
		for _, kv := range fields[2:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("entry %q: option %q is not key=value", entry, kv)
			}
			switch k {
			case "once":
				f.once = v
			case "hit", "ms", "code":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("entry %q: option %s=%q wants a positive integer", entry, k, v)
				}
				switch k {
				case "hit":
					f.hit = n
				case "ms":
					f.ms = n
				case "code":
					f.code = int(n)
				}
			default:
				return nil, fmt.Errorf("entry %q: unknown option %q", entry, k)
			}
		}
		out = append(out, f)
	}
	return out, nil
}

// due reports whether this call is the fault's firing call: the Nth hit
// of the point, with the once-latch (when configured) won atomically
// across processes.
func (f *fault) due() bool {
	if f.dead.Load() {
		return false
	}
	if f.calls.Add(1) != f.hit {
		return false
	}
	f.dead.Store(true) // the Nth call is the only candidate either way
	if f.once != "" {
		latch, err := os.OpenFile(f.once, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return false // another process already fired this fault
		}
		latch.Close()
	}
	return true
}

// Hit fires any crash/exit/stall fault armed at point; with nothing
// armed it is a single atomic load. Torn-mode entries are not fired
// here — they live in the write path, via Torn.
func Hit(point string) {
	if !armed.Load() {
		load()
		if !armed.Load() {
			return
		}
	}
	for _, f := range faults {
		if f.point != point || f.mode == Torn || !f.due() {
			continue
		}
		switch f.mode {
		case Crash:
			fmt.Fprintf(os.Stderr, "faultinject: SIGKILL at %s\n", point)
			kill()
		case Exit:
			fmt.Fprintf(os.Stderr, "faultinject: exit %d at %s\n", f.code, point)
			os.Exit(f.code)
		case Stall:
			fmt.Fprintf(os.Stderr, "faultinject: stalling %dms at %s\n", f.ms, point)
			time.Sleep(time.Duration(f.ms) * time.Millisecond) //dita:wallclock
		}
	}
}

// TornWrite consults any torn-mode fault armed at point: when due it
// returns the first half of data and true, and the caller must complete
// its write-and-rename with the truncated bytes and then call Kill —
// leaving exactly the artifact a crash mid-flush would leave. Otherwise
// data comes back untouched.
func TornWrite(point string, data []byte) ([]byte, bool) {
	if !armed.Load() {
		load()
		if !armed.Load() {
			return data, false
		}
	}
	for _, f := range faults {
		if f.point != point || f.mode != Torn || !f.due() {
			continue
		}
		fmt.Fprintf(os.Stderr, "faultinject: tearing write at %s (%d of %d bytes)\n", point, len(data)/2, len(data))
		return data[:len(data)/2], true
	}
	return data, false
}

// Kill terminates the process with SIGKILL — the torn-write epilogue.
func Kill() { kill() }

func kill() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // unreachable; SIGKILL cannot be handled
}
