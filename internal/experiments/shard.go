// Cross-process sweep sharding: the (figure × sweep value × day) job
// grid behind the paper's evaluation partitions deterministically across
// worker processes, each of which writes a serializable ShardResult
// carrying the raw per-job core.Metrics it measured. Merge recombines
// any complete shard set and reduces it with the same float reduction
// order as the sequential sweep loop, so the merged Results — and the
// tables and CSV derived from them — are bit-identical to a
// single-process run (the wall-clock CPU(ms) column aside, which is
// measured, not computed).
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dita/internal/atomicio"
	"dita/internal/core"
)

// Shard names one worker's slice of a figure's job grid: of the jobs
// j = 0..len(xs)·len(days)-1 (x-major, day-minor — the sequential sweep
// order), the shard owns those with j % Count == Index. The rule is a
// pure function of the grid position, so any worker can compute its
// share without coordination, and the union over Index = 0..Count-1
// partitions the whole (figure × x × day) grid exactly once.
//
// The zero value means "unsharded" (one shard owning everything).
type Shard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// normalized maps the zero value to the explicit single-shard form.
func (s Shard) normalized() Shard {
	if s.Count == 0 && s.Index == 0 {
		return Shard{Index: 0, Count: 1}
	}
	return s
}

// Validate rejects specs that are not a well-formed k-of-N slice.
func (s Shard) Validate() error {
	n := s.normalized()
	if n.Count < 1 {
		return fmt.Errorf("experiments: shard count %d < 1", n.Count)
	}
	if n.Index < 0 || n.Index >= n.Count {
		return fmt.Errorf("experiments: shard index %d outside 0..%d", n.Index, n.Count-1)
	}
	return nil
}

// owns reports whether grid job j belongs to this (normalized) shard.
func (s Shard) owns(j int) bool { return j%s.Count == s.Index }

// String renders the spec in the CLI's k/N form.
func (s Shard) String() string {
	n := s.normalized()
	return fmt.Sprintf("%d/%d", n.Index, n.Count)
}

// ParseShard parses a k/N spec ("0/4" is the first of four shards).
func ParseShard(spec string) (Shard, error) {
	k, n, ok := strings.Cut(spec, "/")
	if !ok {
		return Shard{}, fmt.Errorf("experiments: shard spec %q is not k/N", spec)
	}
	idx, err := strconv.Atoi(strings.TrimSpace(k))
	if err != nil {
		return Shard{}, fmt.Errorf("experiments: shard index %q: %w", k, err)
	}
	count, err := strconv.Atoi(strings.TrimSpace(n))
	if err != nil {
		return Shard{}, fmt.Errorf("experiments: shard count %q: %w", n, err)
	}
	// An explicit spec must name a real slice; "0/0" is not forgiven
	// into the unsharded zero value the way the zero Shard is.
	if count < 1 {
		return Shard{}, fmt.Errorf("experiments: shard count %d < 1 in spec %q", count, spec)
	}
	s := Shard{Index: idx, Count: count}
	if err := s.Validate(); err != nil {
		return Shard{}, err
	}
	return s, nil
}

// JobMetrics is one evaluated (x, day) job of a figure's grid: one raw
// core.Metrics per series, in series order, exactly as the evaluation
// produced them — no averaging has happened yet.
type JobMetrics struct {
	X       float64        `json:"x"`
	Day     int            `json:"day"`
	Metrics []core.Metrics `json:"metrics"`
}

// SweepRaw is one figure's un-reduced sweep output under a shard: the
// full grid definition (Xs × Days, Series) plus the raw metrics of the
// jobs this shard owns. A complete grid (every job present) reduces to
// the figure's Result; partial grids refuse to reduce rather than
// fabricate or skew averages.
type SweepRaw struct {
	Fig     int          `json:"fig"`     // paper figure number, 5..16
	Figure  string       `json:"figure"`  // display label, e.g. "Fig. 9"
	Dataset string       `json:"dataset"` // "BK" or "FS"
	XLabel  string       `json:"xlabel"`
	Series  []string     `json:"series"` // algorithm / mask names, plot order
	Xs      []float64    `json:"xs"`     // sweep values, evaluation order
	Days    []int        `json:"days"`   // evaluation days, averaging order
	Shard   Shard        `json:"shard"`
	Jobs    []JobMetrics `json:"jobs"` // the owned jobs, sequential order
	// Resumed counts the jobs of this sweep that were spliced in from a
	// checkpoint journal instead of evaluated — runtime accounting for
	// the worker's progress report, deliberately outside the artifact
	// (the merged figures must not depend on how a worker got there).
	Resumed int `json:"-"`
}

// grid arranges the raw jobs into the figure's full job grid, indexed
// j = xi·len(Days) + di, validating that every job sits in the grid, is
// owned by the declared shard, and appears exactly once.
func (sr *SweepRaw) grid() ([][]core.Metrics, error) {
	nd := len(sr.Days)
	shard := sr.Shard.normalized()
	if err := shard.Validate(); err != nil {
		return nil, err
	}
	xIndex := make(map[float64]int, len(sr.Xs))
	for i, x := range sr.Xs {
		xIndex[x] = i
	}
	dayIndex := make(map[int]int, nd)
	for i, d := range sr.Days {
		dayIndex[d] = i
	}
	g := make([][]core.Metrics, len(sr.Xs)*nd)
	for _, job := range sr.Jobs {
		xi, ok := xIndex[job.X]
		if !ok {
			return nil, fmt.Errorf("experiments: %s (%s): job x=%g is not a sweep value of the grid", sr.Figure, sr.Dataset, job.X)
		}
		di, ok := dayIndex[job.Day]
		if !ok {
			return nil, fmt.Errorf("experiments: %s (%s): job day %d is not an evaluation day of the grid", sr.Figure, sr.Dataset, job.Day)
		}
		j := xi*nd + di
		if !shard.owns(j) {
			return nil, fmt.Errorf("experiments: %s (%s): job (x=%g, day %d) is not owned by shard %s — overlapping or misassigned shard set",
				sr.Figure, sr.Dataset, job.X, job.Day, shard)
		}
		if g[j] != nil {
			return nil, fmt.Errorf("experiments: %s (%s): job (x=%g, day %d) appears twice", sr.Figure, sr.Dataset, job.X, job.Day)
		}
		if len(job.Metrics) != len(sr.Series) {
			return nil, fmt.Errorf("experiments: %s (%s): job (x=%g, day %d) has %d metrics for %d series",
				sr.Figure, sr.Dataset, job.X, job.Day, len(job.Metrics), len(sr.Series))
		}
		g[j] = job.Metrics
	}
	return g, nil
}

// Reduce averages a complete figure grid into the Result the figure
// plots. The reduction walks cells in the sequential sweep order —
// x-major, series within x, days summed in Days order before one
// division — so the rows are bit-identical to an unsharded run. A grid
// with any job missing (an incomplete shard set, or a sharded run
// reduced on its own) is an error: averaging over fewer days than the
// protocol demands would silently skew every cell the missing day
// touches.
func (sr *SweepRaw) Reduce() (*Result, error) {
	nd := len(sr.Days)
	if nd == 0 {
		return nil, fmt.Errorf("experiments: %s (%s): no evaluation days — every series cell would have no contributing days", sr.Figure, sr.Dataset)
	}
	g, err := sr.grid()
	if err != nil {
		return nil, err
	}
	for j, ms := range g {
		if ms == nil {
			return nil, fmt.Errorf("experiments: %s (%s): job (x=%g, day %d) missing — shard %s holds %d of %d jobs; merge a complete shard set instead",
				sr.Figure, sr.Dataset, sr.Xs[j/nd], sr.Days[j%nd], sr.Shard.normalized(), len(sr.Jobs), len(g))
		}
	}
	res := &Result{Figure: sr.Figure, Dataset: sr.Dataset, XLabel: sr.XLabel}
	for xi, x := range sr.Xs {
		for si, name := range sr.Series {
			a := &accum{}
			for di := 0; di < nd; di++ {
				a.add(g[xi*nd+di][si])
			}
			res.Rows = append(res.Rows, a.row(x, name))
		}
	}
	return res, nil
}

// ShardResult is the artifact one worker process writes: its shard spec,
// the seed the evaluation ran under, and the raw figure sweeps it
// executed. JSON round-trips every float bit-exactly (encoding/json
// emits the shortest representation that parses back to the same
// float64), so a merged run loses nothing to serialization.
//
// Checksum is the SHA-256 of the artifact's own canonical encoding
// (itself with Checksum empty), recorded by Encode/Write and verified
// by every load, so an artifact torn by a crashed or lying writer —
// truncated, bit-flipped, spliced — is rejected at the merge instead of
// silently averaged into the figures.
type ShardResult struct {
	Shard    Shard       `json:"shard"`
	Seed     uint64      `json:"seed"`
	Figures  []*SweepRaw `json:"figures"`
	Checksum string      `json:"checksum,omitempty"`
}

// payload is the canonical byte form the checksum covers: the artifact
// with its Checksum field empty, marshalled exactly as Encode writes
// it. Struct marshalling is deterministic (fixed field order, no maps),
// so the loader can re-derive these bytes from the decoded value.
func (sr *ShardResult) payload() ([]byte, error) {
	c := *sr
	c.Checksum = ""
	return json.MarshalIndent(&c, "", "  ")
}

// Encode seals the artifact — records its content checksum — and
// returns the bytes a worker writes to disk (via atomicio, so a reader
// never sees them half-flushed).
func (sr *ShardResult) Encode() ([]byte, error) {
	body, err := sr.payload()
	if err != nil {
		return nil, err
	}
	sr.Checksum = atomicio.Sum(body)
	out, err := json.MarshalIndent(sr, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Write seals the artifact and serializes it as indented JSON.
func (sr *ShardResult) Write(w io.Writer) error {
	out, err := sr.Encode()
	if err != nil {
		return err
	}
	_, err = w.Write(out)
	return err
}

// DecodeShardResult parses an artifact, verifies its content checksum
// and validates its shard spec. An artifact without a checksum is
// rejected too: it either predates the sealed format or lost its seal
// to tampering, and a merge must not average bytes it cannot vouch for.
func DecodeShardResult(data []byte) (*ShardResult, error) {
	var sr ShardResult
	if err := json.Unmarshal(data, &sr); err != nil {
		return nil, fmt.Errorf("experiments: reading shard artifact: %w", err)
	}
	if sr.Checksum == "" {
		return nil, fmt.Errorf("experiments: shard artifact carries no content checksum — unsealed or truncated write")
	}
	body, err := sr.payload()
	if err != nil {
		return nil, err
	}
	if sum := atomicio.Sum(body); sum != sr.Checksum {
		return nil, fmt.Errorf("experiments: shard artifact checksum mismatch (recorded %.12s…, content %.12s…) — torn or corrupted write", sr.Checksum, sum)
	}
	if err := sr.Shard.Validate(); err != nil {
		return nil, err
	}
	return &sr, nil
}

// ReadShardResult is DecodeShardResult over a stream.
func ReadShardResult(r io.Reader) (*ShardResult, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: reading shard artifact: %w", err)
	}
	return DecodeShardResult(data)
}

// figureKey identifies one figure across shard artifacts.
type figureKey struct {
	dataset string
	fig     int
}

// MergeRaw validates a shard set — same Count and Seed everywhere,
// indices exactly 0..Count-1 with no duplicates, every shard carrying
// every figure with an identical grid definition — and combines each
// figure's jobs into one complete SweepRaw, ordered by (dataset, figure
// number). Per-job ownership is re-checked against the contributing
// shard, so an overlapping or tampered set is detected here rather than
// averaged; missing jobs surface when the combined figure reduces.
func MergeRaw(shards []*ShardResult) ([]*SweepRaw, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("experiments: merge of zero shard artifacts")
	}
	if err := shards[0].Shard.Validate(); err != nil {
		return nil, err
	}
	count := shards[0].Shard.normalized().Count
	seed := shards[0].Seed
	seen := make([]bool, count)
	ordered := append([]*ShardResult(nil), shards...)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].Shard.normalized().Index < ordered[j].Shard.normalized().Index
	})
	combined := map[figureKey]*SweepRaw{}
	coverage := map[figureKey][]bool{}
	var order []figureKey
	for _, sh := range ordered {
		s := sh.Shard.normalized()
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if s.Count != count {
			return nil, fmt.Errorf("experiments: shard %s disagrees on shard count (want %d)", s, count)
		}
		if sh.Seed != seed {
			return nil, fmt.Errorf("experiments: shard %s ran under seed %d, others under %d — artifacts are not one evaluation", s, sh.Seed, seed)
		}
		if seen[s.Index] {
			return nil, fmt.Errorf("experiments: shard %s appears twice", s)
		}
		seen[s.Index] = true
		for _, raw := range sh.Figures {
			key := figureKey{dataset: raw.Dataset, fig: raw.Fig}
			c, ok := combined[key]
			if !ok {
				c = &SweepRaw{
					Fig: raw.Fig, Figure: raw.Figure, Dataset: raw.Dataset, XLabel: raw.XLabel,
					Series: raw.Series, Xs: raw.Xs, Days: raw.Days,
					Shard: Shard{Index: 0, Count: 1},
				}
				combined[key] = c
				coverage[key] = make([]bool, count)
				order = append(order, key)
			} else if !sameGrid(c, raw) {
				return nil, fmt.Errorf("experiments: shard %s defines a different grid for %s (%s) than the other shards", s, raw.Figure, raw.Dataset)
			}
			if coverage[key][s.Index] {
				return nil, fmt.Errorf("experiments: shard %s carries %s (%s) twice", s, raw.Figure, raw.Dataset)
			}
			coverage[key][s.Index] = true
			if err := checkOwnership(raw, s); err != nil {
				return nil, err
			}
			c.Jobs = append(c.Jobs, raw.Jobs...)
		}
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("experiments: shard %d/%d missing from the set", i, count)
		}
	}
	for key, byShard := range coverage {
		for i, ok := range byShard {
			if !ok {
				return nil, fmt.Errorf("experiments: shard %d/%d lacks %s (%s) — every shard must run every figure",
					i, count, combined[key].Figure, key.dataset)
			}
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].dataset != order[j].dataset {
			return order[i].dataset < order[j].dataset
		}
		return order[i].fig < order[j].fig
	})
	out := make([]*SweepRaw, len(order))
	for i, key := range order {
		out[i] = combined[key]
	}
	return out, nil
}

// Merge is MergeRaw plus the reduction: the figures' Results,
// bit-identical to a single-process run of the same evaluation.
func Merge(shards []*ShardResult) ([]*Result, error) {
	raws, err := MergeRaw(shards)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(raws))
	for i, raw := range raws {
		res, err := raw.Reduce()
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// sameGrid reports whether two shard views describe the same figure
// grid (everything but the shard spec and the jobs).
func sameGrid(a, b *SweepRaw) bool {
	if a.Fig != b.Fig || a.Figure != b.Figure || a.Dataset != b.Dataset || a.XLabel != b.XLabel {
		return false
	}
	if len(a.Series) != len(b.Series) || len(a.Xs) != len(b.Xs) || len(a.Days) != len(b.Days) {
		return false
	}
	for i := range a.Series {
		if a.Series[i] != b.Series[i] {
			return false
		}
	}
	for i := range a.Xs {
		if a.Xs[i] != b.Xs[i] {
			return false
		}
	}
	for i := range a.Days {
		if a.Days[i] != b.Days[i] {
			return false
		}
	}
	return true
}

// checkOwnership verifies every job a shard contributed actually
// belongs to that shard under the stable partitioning rule.
func checkOwnership(raw *SweepRaw, s Shard) error {
	nd := len(raw.Days)
	if nd == 0 {
		return nil
	}
	xIndex := make(map[float64]int, len(raw.Xs))
	for i, x := range raw.Xs {
		xIndex[x] = i
	}
	dayIndex := make(map[int]int, nd)
	for i, d := range raw.Days {
		dayIndex[d] = i
	}
	for _, job := range raw.Jobs {
		xi, okX := xIndex[job.X]
		di, okD := dayIndex[job.Day]
		if !okX || !okD {
			return fmt.Errorf("experiments: shard %s carries job (x=%g, day %d) outside the %s (%s) grid",
				s, job.X, job.Day, raw.Figure, raw.Dataset)
		}
		if j := xi*nd + di; !s.owns(j) {
			return fmt.Errorf("experiments: shard %s carries job (x=%g, day %d) owned by shard %d/%d — overlapping shard set",
				s, job.X, job.Day, j%s.Count, s.Count)
		}
	}
	return nil
}
