package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dita/internal/core"
)

func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"0/1":     {Index: 0, Count: 1},
		"2/5":     {Index: 2, Count: 5},
		" 1 / 3 ": {Index: 1, Count: 3},
	}
	for spec, want := range good {
		got, err := ParseShard(spec)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %v, %v; want %v", spec, got, err, want)
		}
	}
	for _, spec := range []string{"", "3", "a/b", "1/b", "-1/2", "2/2", "0/0", "0/-1"} {
		if s, err := ParseShard(spec); err == nil {
			t.Errorf("ParseShard(%q) accepted as %v", spec, s)
		}
	}
}

func TestShardValidate(t *testing.T) {
	for _, s := range []Shard{{}, {Index: 0, Count: 1}, {Index: 4, Count: 5}} {
		if err := s.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", s, err)
		}
	}
	for _, s := range []Shard{{Index: 1, Count: 0}, {Index: -1, Count: 2}, {Index: 2, Count: 2}, {Index: 0, Count: -3}} {
		if err := s.Validate(); err == nil {
			t.Errorf("%+v accepted", s)
		}
	}
	if got := (Shard{}).String(); got != "0/1" {
		t.Errorf("zero shard renders as %q, want 0/1", got)
	}
}

// runShardSet evaluates one figure under every Shard{i, n}, pushing
// each worker's output through the JSON artifact (the exact bytes a
// cross-process run exchanges) before returning the set.
func runShardSet(t *testing.T, r *Runner, fig int, sw Sweeps, n int) []*ShardResult {
	t.Helper()
	var shards []*ShardResult
	for i := 0; i < n; i++ {
		run := *r
		run.P.Shard = Shard{Index: i, Count: n}
		raw, err := run.RunFigureRaw(fig, sw)
		if err != nil {
			t.Fatalf("shard %d/%d of figure %d: %v", i, n, fig, err)
		}
		sr := &ShardResult{Shard: run.P.Shard, Seed: run.P.Seed, Figures: []*SweepRaw{raw}}
		var buf bytes.Buffer
		if err := sr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadShardResult(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sr, back) {
			t.Fatalf("shard %d/%d artifact did not survive its JSON round-trip", i, n)
		}
		shards = append(shards, back)
	}
	return shards
}

// csvZeroCPU renders a result's CSV with the measured wall-clock column
// zeroed — the one column outside the cross-process determinism
// contract.
func csvZeroCPU(t *testing.T, res *Result) []byte {
	t.Helper()
	c := *res
	c.Rows = stripCPU(res)
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardMergeMatchesUnsharded is the tentpole's acceptance gate: for
// an ablation and a comparison figure, every shard partition of the job
// grid — run worker by worker through the JSON artifact — must merge to
// rows DeepEqual to the unsharded run (and byte-identical CSV), with
// the measured CPU column as the only exclusion. Count 5 over the
// 4-job grid (2 sweep values × 2 days) exercises a shard that owns zero
// jobs.
func TestShardMergeMatchesUnsharded(t *testing.T) {
	r := testRunner(t)
	sw := Sweeps{Tasks: []int{30, 45}}
	for _, fig := range []int{5, 9} {
		want, err := r.RunFigure(fig, sw)
		if err != nil {
			t.Fatal(err)
		}
		wantRows := stripCPU(want)
		for _, n := range []int{1, 2, 3, 5} {
			shards := runShardSet(t, r, fig, sw, n)
			if n == 5 {
				zeroJobs := 0
				for _, sh := range shards {
					if len(sh.Figures[0].Jobs) == 0 {
						zeroJobs++
					}
				}
				if zeroJobs == 0 {
					t.Errorf("figure %d: no zero-job shard at count 5 over a 4-job grid", fig)
				}
			}
			merged, err := Merge(shards)
			if err != nil {
				t.Fatalf("figure %d sharded %d ways: merge: %v", fig, n, err)
			}
			if len(merged) != 1 {
				t.Fatalf("figure %d sharded %d ways: merged %d figures, want 1", fig, n, len(merged))
			}
			got := merged[0]
			if got.Figure != want.Figure || got.Dataset != want.Dataset || got.XLabel != want.XLabel {
				t.Errorf("figure %d sharded %d ways: labels %q %q %q, want %q %q %q",
					fig, n, got.Figure, got.Dataset, got.XLabel, want.Figure, want.Dataset, want.XLabel)
			}
			if !reflect.DeepEqual(stripCPU(got), wantRows) {
				t.Errorf("figure %d sharded %d ways: merged rows diverge from the unsharded run", fig, n)
			}
			if !bytes.Equal(csvZeroCPU(t, got), csvZeroCPU(t, want)) {
				t.Errorf("figure %d sharded %d ways: merged CSV is not byte-identical to the unsharded run", fig, n)
			}
		}
	}
}

// cloneShard deep-copies an artifact through its own wire format.
func cloneShard(t *testing.T, sr *ShardResult) *ShardResult {
	t.Helper()
	var buf bytes.Buffer
	if err := sr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadShardResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestMergeDetectsBrokenShardSets(t *testing.T) {
	r := testRunner(t)
	sw := Sweeps{Tasks: []int{30, 45}}
	shards := runShardSet(t, r, 5, sw, 3)

	if _, err := Merge(nil); err == nil {
		t.Error("merge of zero artifacts accepted")
	}
	// A malformed leading shard must error like any other, not panic in
	// the coverage-slice allocation.
	if _, err := Merge([]*ShardResult{{Shard: Shard{Index: 0, Count: -2}}}); err == nil || !strings.Contains(err.Error(), "count") {
		t.Errorf("negative shard count: err = %v, want a count error", err)
	}
	if _, err := Merge(shards[:2]); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("merge of 2 of 3 shards: err = %v, want a missing-shard error", err)
	}
	dup := append(append([]*ShardResult(nil), shards...), shards[1])
	if _, err := Merge(dup); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate shard: err = %v, want a duplicate error", err)
	}

	badSeed := cloneShard(t, shards[0])
	badSeed.Seed++
	if _, err := Merge([]*ShardResult{badSeed, shards[1], shards[2]}); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Errorf("seed mismatch: err = %v, want a seed error", err)
	}

	twoWay := runShardSet(t, r, 5, sw, 2)
	if _, err := Merge([]*ShardResult{shards[0], twoWay[1]}); err == nil || !strings.Contains(err.Error(), "count") {
		t.Errorf("mixed shard counts: err = %v, want a count error", err)
	}

	overlap := cloneShard(t, shards[0])
	overlap.Figures[0].Jobs = append(overlap.Figures[0].Jobs, shards[1].Figures[0].Jobs[0])
	if _, err := Merge([]*ShardResult{overlap, shards[1], shards[2]}); err == nil || !strings.Contains(err.Error(), "owned by shard") {
		t.Errorf("overlapping jobs: err = %v, want an ownership error", err)
	}

	lacking := cloneShard(t, shards[2])
	lacking.Figures = nil
	if _, err := Merge([]*ShardResult{shards[0], shards[1], lacking}); err == nil || !strings.Contains(err.Error(), "lacks") {
		t.Errorf("shard without the figure: err = %v, want a lacks-figure error", err)
	}
}

// TestShardedRunRefusesToReduce: a figure method under a real shard
// holds a partial grid, and partial grids must never average — the old
// accumulator would have fabricated all-zero rows for the missing
// cells.
func TestShardedRunRefusesToReduce(t *testing.T) {
	r := testRunner(t)
	run := *r
	run.P.Shard = Shard{Index: 0, Count: 2}
	if _, err := run.AblationTasks([]int{40}); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("sharded figure method reduced a partial grid: err = %v", err)
	}
	run.P.Shard = Shard{Index: 2, Count: 2}
	if _, err := run.AblationTasks([]int{40}); err == nil {
		t.Error("invalid shard spec accepted by the sweep")
	}
}

func TestReduceValidatesGrid(t *testing.T) {
	m := func(alg string) []core.Metrics { return []core.Metrics{{Algorithm: alg, Assigned: 1}} }
	base := func() *SweepRaw {
		return &SweepRaw{
			Fig: 5, Figure: "Fig. 5", Dataset: "BK", XLabel: "|S|",
			Series: []string{"IA"}, Xs: []float64{1, 2}, Days: []int{3, 4},
		}
	}

	noDays := base()
	noDays.Days = nil
	if _, err := noDays.Reduce(); err == nil || !strings.Contains(err.Error(), "no evaluation days") {
		t.Errorf("no-days grid: err = %v", err)
	}

	dup := base()
	dup.Jobs = []JobMetrics{
		{X: 1, Day: 3, Metrics: m("IA")}, {X: 1, Day: 3, Metrics: m("IA")},
	}
	if _, err := dup.Reduce(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate job: err = %v", err)
	}

	arity := base()
	arity.Jobs = []JobMetrics{{X: 1, Day: 3, Metrics: nil}}
	if _, err := arity.Reduce(); err == nil || !strings.Contains(err.Error(), "series") {
		t.Errorf("wrong metrics arity: err = %v", err)
	}

	strayX := base()
	strayX.Jobs = []JobMetrics{{X: 9, Day: 3, Metrics: m("IA")}}
	if _, err := strayX.Reduce(); err == nil || !strings.Contains(err.Error(), "sweep value") {
		t.Errorf("stray x: err = %v", err)
	}

	strayDay := base()
	strayDay.Jobs = []JobMetrics{{X: 1, Day: 9, Metrics: m("IA")}}
	if _, err := strayDay.Reduce(); err == nil || !strings.Contains(err.Error(), "evaluation day") {
		t.Errorf("stray day: err = %v", err)
	}

	complete := base()
	complete.Jobs = []JobMetrics{
		{X: 1, Day: 3, Metrics: m("IA")}, {X: 1, Day: 4, Metrics: m("IA")},
		{X: 2, Day: 3, Metrics: m("IA")}, {X: 2, Day: 4, Metrics: m("IA")},
	}
	res, err := complete.Reduce()
	if err != nil {
		t.Fatalf("complete grid refused: %v", err)
	}
	if len(res.Rows) != 2 || res.Rows[0].Assigned != 1 {
		t.Errorf("complete grid reduced to %+v", res.Rows)
	}
}
