package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"dita/internal/core"
)

func openTestJournal(t *testing.T, path, sig string) *Journal {
	t.Helper()
	j, err := OpenJournal(path, sig, Shard{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s0.json.journal")
	j := openTestJournal(t, path, "sig-A")
	if j.Resumed() != 0 || j.Truncated {
		t.Fatalf("fresh journal: resumed %d, truncated %v", j.Resumed(), j.Truncated)
	}
	ms := []core.Metrics{{Algorithm: "IA", Assigned: 7, AI: 0.125}}
	if err := j.Record("BK", 5, 1.5, 25, ms); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("BK", 9, 2, 26, []core.Metrics{{Algorithm: "MTA"}}); err != nil {
		t.Fatal(err)
	}
	if got, ok := j.Lookup("BK", 5, 1.5, 25); !ok || !reflect.DeepEqual(got, ms) {
		t.Errorf("Lookup after Record = %+v, %v", got, ok)
	}
	if _, ok := j.Lookup("BK", 5, 1.5, 26); ok {
		t.Error("Lookup invented an unrecorded job")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	back := openTestJournal(t, path, "sig-A")
	defer back.Close()
	if back.Resumed() != 2 || back.Jobs() != 2 || back.Truncated {
		t.Fatalf("replayed journal: resumed %d, jobs %d, truncated %v", back.Resumed(), back.Jobs(), back.Truncated)
	}
	if got, ok := back.Lookup("BK", 5, 1.5, 25); !ok || !reflect.DeepEqual(got, ms) {
		t.Errorf("replayed Lookup = %+v, %v — metrics must survive the journal bit-exactly", got, ok)
	}
}

func TestJournalRejectsForeignRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s0.json.journal")
	j := openTestJournal(t, path, "sig-A")
	j.Close()

	if _, err := OpenJournal(path, "sig-B", Shard{}, 42); err == nil || !strings.Contains(err.Error(), path) {
		t.Errorf("signature mismatch: err = %v, want a path-naming error", err)
	}
	if _, err := OpenJournal(path, "sig-A", Shard{Index: 1, Count: 2}, 42); err == nil || !strings.Contains(err.Error(), "different run") {
		t.Errorf("shard mismatch: err = %v", err)
	}
	if _, err := OpenJournal(path, "sig-A", Shard{}, 43); err == nil || !strings.Contains(err.Error(), "different run") {
		t.Errorf("seed mismatch: err = %v", err)
	}
}

// TestJournalRejectsForeignFramework: the harness binds the framework
// source — artifact checksums when serving saved frameworks, the
// trained-from-seed marker otherwise — into the journal signature, so a
// journal checkpointed under one framework can never splice its jobs
// into a resume that serves another.
func TestJournalRejectsForeignFramework(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s0.json.journal")
	const base = "datasets=bk figures=9 scale=quick days=1 fw="
	j := openTestJournal(t, path, base+"trained-from-seed")
	if err := j.Record("BK", 9, 100, 25, []core.Metrics{{Algorithm: "IA", Assigned: 5}}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	foreign := base + "9c0ffee90c0ffee90c0ffee90c0ffee90c0ffee90c0ffee90c0ffee90c0ffee9"
	if _, err := OpenJournal(path, foreign, Shard{}, 42); err == nil || !strings.Contains(err.Error(), "different run") {
		t.Errorf("resume under a foreign framework artifact: err = %v, want a different-run rejection", err)
	}

	back := openTestJournal(t, path, base+"trained-from-seed")
	defer back.Close()
	if back.Resumed() != 1 {
		t.Errorf("resume under the same framework source replayed %d jobs, want 1", back.Resumed())
	}
}

// TestJournalTornTail: a crash mid-append leaves a partial final line;
// replay must keep every intact record, drop the torn tail, truncate
// the file, and leave the journal appendable.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s0.json.journal")
	j := openTestJournal(t, path, "sig-A")
	if err := j.Record("BK", 5, 1, 25, []core.Metrics{{Algorithm: "IA"}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("BK", 5, 2, 25, []core.Metrics{{Algorithm: "IA", Assigned: 3}}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A torn append: half of a record line, no trailing newline.
	torn := append(append([]byte{}, intact...), intact[len(intact)/2:len(intact)-7]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	back := openTestJournal(t, path, "sig-A")
	if !back.Truncated {
		t.Error("torn tail not reported")
	}
	if back.Resumed() != 2 {
		t.Errorf("resumed %d jobs, want the 2 intact ones", back.Resumed())
	}
	// The file itself must be clean again: append works and survives
	// another replay.
	if err := back.Record("BK", 5, 3, 25, []core.Metrics{{Algorithm: "IA", Assigned: 9}}); err != nil {
		t.Fatal(err)
	}
	back.Close()
	again := openTestJournal(t, path, "sig-A")
	defer again.Close()
	if again.Truncated || again.Resumed() != 3 {
		t.Errorf("after repair: truncated %v, resumed %d, want clean 3", again.Truncated, again.Resumed())
	}
}

// TestJournalCorruptHeader: a journal whose header line is torn (a
// worker that died before syncing it) holds nothing recoverable. The
// successor must reinitialize it empty — never wedge the retry loop —
// and leave a journal that records and replays normally. An empty file
// (death between create and header write) gets the same treatment.
func TestJournalCorruptHeader(t *testing.T) {
	for name, content := range map[string][]byte{
		"torn header": []byte("deadbeef not-a-journal\n"),
		"empty file":  {},
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "s0.json.journal")
			if err := os.WriteFile(path, content, 0o644); err != nil {
				t.Fatal(err)
			}
			j, err := OpenJournal(path, "sig-A", Shard{}, 42)
			if err != nil {
				t.Fatalf("unrecoverable journal wedged the open: %v", err)
			}
			if j.Resumed() != 0 {
				t.Errorf("resumed %d jobs from garbage", j.Resumed())
			}
			if err := j.Record("BK", 5, 1, 25, []core.Metrics{{Algorithm: "IA"}}); err != nil {
				t.Fatal(err)
			}
			j.Close()
			back := openTestJournal(t, path, "sig-A")
			defer back.Close()
			if back.Resumed() != 1 || back.Truncated {
				t.Errorf("reinitialized journal replays %d jobs (truncated %v), want 1 clean", back.Resumed(), back.Truncated)
			}
		})
	}
}

func TestJournalRemove(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s0.json.journal")
	j := openTestJournal(t, path, "sig-A")
	if err := j.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("journal survived Remove: %v", err)
	}
}

// TestRunSweepCheckpointResume is the resume contract end to end at the
// sweep level: a run that completed some jobs before dying hands its
// journal to a successor, which evaluates only the remaining jobs and
// produces output bit-identical to an uncheckpointed run.
func TestRunSweepCheckpointResume(t *testing.T) {
	r := testRunner(t)
	r.P.Parallelism = 1
	xs := []float64{1, 2, 3}
	series := []string{"s"}
	eval := func(calls *atomic.Int32, dieAfter int32) func(day int, x float64) ([]core.Metrics, error) {
		return func(day int, x float64) ([]core.Metrics, error) {
			n := calls.Add(1)
			if dieAfter > 0 && n > dieAfter {
				return nil, errFakeCrash
			}
			// Metrics derived from the job coordinates, so a wrong splice
			// would be visible in the output.
			return []core.Metrics{{Algorithm: "s", Assigned: day, AI: x * 100}}, nil
		}
	}

	// Reference: no checkpoint.
	var refCalls atomic.Int32
	want, err := r.runSweep(5, "x", xs, series, eval(&refCalls, 0))
	if err != nil {
		t.Fatal(err)
	}

	// First attempt: journaled, dies after 4 of the 6 jobs.
	dir := t.TempDir()
	jpath := filepath.Join(dir, "s0.json.journal")
	j1 := openTestJournal(t, jpath, "sweep-test")
	r.P.Checkpoint = j1
	var firstCalls atomic.Int32
	if _, err := r.runSweep(5, "x", xs, series, eval(&firstCalls, 4)); err != errFakeCrash {
		t.Fatalf("poisoned first attempt: err = %v", err)
	}
	if j1.Jobs() != 4 {
		t.Fatalf("first attempt journaled %d jobs, want 4", j1.Jobs())
	}
	j1.Close()

	// Successor: resumes the journal, evaluates only the 2 leftovers.
	j2 := openTestJournal(t, jpath, "sweep-test")
	defer j2.Close()
	if j2.Resumed() != 4 {
		t.Fatalf("successor resumed %d jobs, want 4", j2.Resumed())
	}
	r.P.Checkpoint = j2
	var secondCalls atomic.Int32
	got, err := r.runSweep(5, "x", xs, series, eval(&secondCalls, 0))
	if err != nil {
		t.Fatal(err)
	}
	if n := secondCalls.Load(); n != 2 {
		t.Errorf("successor evaluated %d jobs, want only the 2 unfinished ones", n)
	}
	if got.Resumed != 4 {
		t.Errorf("successor SweepRaw.Resumed = %d, want 4", got.Resumed)
	}
	want.Resumed = got.Resumed // runtime accounting, outside the equivalence
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed sweep diverges from the uncheckpointed run:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestRunSweepCheckpointArityMismatch: a journal recorded under a
// different series set must poison the sweep, not splice short rows in.
func TestRunSweepCheckpointArityMismatch(t *testing.T) {
	r := testRunner(t)
	r.P.Parallelism = 1
	jpath := filepath.Join(t.TempDir(), "s0.json.journal")
	j := openTestJournal(t, jpath, "sweep-test")
	defer j.Close()
	if err := j.Record("BK", 5, 1, r.P.Days[0], []core.Metrics{{Algorithm: "a"}}); err != nil {
		t.Fatal(err)
	}
	r.P.Checkpoint = j
	_, err := r.runSweep(5, "x", []float64{1}, []string{"a", "b"},
		func(day int, x float64) ([]core.Metrics, error) {
			return []core.Metrics{{Algorithm: "a"}, {Algorithm: "b"}}, nil
		})
	if err == nil || !strings.Contains(err.Error(), "stale or foreign") {
		t.Errorf("arity mismatch: err = %v", err)
	}
}

var errFakeCrash = errFake("fake crash")

type errFake string

func (e errFake) Error() string { return string(e) }
