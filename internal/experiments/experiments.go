// Package experiments reproduces the paper's evaluation (Section V): the
// parameter sweeps behind Figures 5–16 on the two simulated datasets,
// with the Table-II defaults. Each sweep produces a Result whose rows are
// exactly the series a figure plots; the Format methods print them as
// aligned tables and CSV.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"

	"dita/internal/assign"
	"dita/internal/core"
	"dita/internal/dataset"
	"dita/internal/influence"
	"dita/internal/model"
	"dita/internal/parallel"
	"dita/internal/randx"
)

// Params carries the experimental defaults of Table II plus the
// evaluation protocol (which days to average over).
type Params struct {
	NumTasks   int     // |S| default 1500
	NumWorkers int     // |W| default 1200
	ValidHours float64 // ϕ default 5 h
	RadiusKm   float64 // r default 25 km
	Days       []int   // evaluation days (paper: 4 days of a month)
	Seed       uint64
	// Parallelism bounds how many (day × sweep-value) evaluations run
	// concurrently in the sweep drivers; <= 0 means
	// runtime.GOMAXPROCS(0). Every metric row is bit-identical for
	// every setting except CPU(ms), which times each assignment's own
	// wall clock and therefore inflates a little under core contention;
	// set Parallelism to 1 for figure-grade CPU measurements. Each
	// in-flight job holds its own instance, feasible-pair list and
	// influence evaluator (the evaluator's willingness matrix is
	// |S|×|W_G| float32), so peak memory grows linearly with the knob —
	// lower it on wide machines with large sweeps.
	Parallelism int
	// Shard restricts the sweeps to this process's slice of the
	// (figure × x × day) job grid (see Shard): the figure methods then
	// refuse to reduce — a partial grid has no honest averages — and the
	// raw sweeps are collected into a ShardResult artifact instead,
	// merged later by Merge against the other shards' artifacts. The
	// zero value runs everything in-process, unsharded.
	Shard Shard
	// Checkpoint, when non-nil, makes the sweeps resumable: each
	// completed (figure, x, day) job is recorded before the sweep moves
	// on, and a job the checkpoint already holds is skipped — its
	// recorded metrics are used verbatim. Shard workers plug a Journal
	// in here so a crashed worker's successor re-runs only unfinished
	// jobs. Determinism makes the splice exact: a recorded job's
	// metrics are bit-identical to what re-evaluation would produce
	// (CPU wall clock aside, which is measured, not computed).
	Checkpoint Checkpoint
}

// Default returns the paper's Table II settings, evaluated over the last
// four days of the simulated month (training uses everything before the
// first evaluation day).
func Default() Params {
	return Params{
		NumTasks:   1500,
		NumWorkers: 1200,
		ValidHours: 5,
		RadiusKm:   25,
		Days:       []int{25, 26, 27, 28},
		Seed:       42,
	}
}

// Quick returns a reduced protocol for tests and smoke runs: smaller
// instances, two evaluation days.
func Quick() Params {
	return Params{
		NumTasks:   300,
		NumWorkers: 240,
		ValidHours: 5,
		RadiusKm:   25,
		Days:       []int{25, 26},
		Seed:       42,
	}
}

// Sweep values used by the paper's figures.
var (
	TaskSweep      = []int{500, 1000, 1500, 2000, 2500}
	WorkerSweep    = []int{400, 800, 1200, 1600, 2000}
	ValidTimeSweep = []float64{1, 2, 3, 4, 5, 6}
	RadiusSweep    = []float64{5, 10, 15, 20, 25}
)

// Sweeps bundles the per-axis sweep grids one evaluation scale uses, so
// figure dispatch (RunFigure) needs a single value rather than four.
type Sweeps struct {
	Tasks   []int
	Workers []int
	Valid   []float64
	Radius  []float64
}

// DefaultSweeps returns the paper's figure sweeps.
func DefaultSweeps() Sweeps {
	return Sweeps{Tasks: TaskSweep, Workers: WorkerSweep, Valid: ValidTimeSweep, Radius: RadiusSweep}
}

// QuickSweeps shrinks the instance-size sweeps ~5× to match Quick's
// reduced instances; the time and radius axes are protocol parameters
// and stay as in the paper.
func QuickSweeps() Sweeps {
	return Sweeps{
		Tasks:   []int{100, 200, 300, 400, 500},
		Workers: []int{80, 160, 240, 320, 400},
		Valid:   ValidTimeSweep,
		Radius:  RadiusSweep,
	}
}

// Row is one (x, algorithm) cell of a figure: every metric the paper
// plots for that combination, averaged over the evaluation days.
type Row struct {
	X        float64
	Alg      string
	CPUms    float64
	Assigned float64
	AI       float64
	AP       float64
	TravelKm float64
}

// Metric selects one of the five reported measurements.
type Metric string

// The five metrics of Figures 9–16 (Figures 5–8 plot AI only).
const (
	MetricCPU      Metric = "CPU(ms)"
	MetricAssigned Metric = "Assigned"
	MetricAI       Metric = "AI"
	MetricAP       Metric = "AP"
	MetricTravel   Metric = "Travel(km)"
)

// AllMetrics lists the metrics in the order the paper's sub-figures use.
var AllMetrics = []Metric{MetricCPU, MetricAssigned, MetricAI, MetricAP, MetricTravel}

func (r Row) metric(m Metric) float64 {
	switch m {
	case MetricCPU:
		return r.CPUms
	case MetricAssigned:
		return r.Assigned
	case MetricAI:
		return r.AI
	case MetricAP:
		return r.AP
	case MetricTravel:
		return r.TravelKm
	default:
		return 0
	}
}

// Result is one full sweep: the data behind one figure (all sub-plots).
type Result struct {
	Figure  string // e.g. "Fig. 9"
	Dataset string // "BK" or "FS"
	XLabel  string // e.g. "|S|"
	Rows    []Row
}

// Algorithms returns the distinct algorithm names in first-seen order.
func (r *Result) Algorithms() []string {
	var out []string
	seen := map[string]bool{}
	for _, row := range r.Rows {
		if !seen[row.Alg] {
			seen[row.Alg] = true
			out = append(out, row.Alg)
		}
	}
	return out
}

// Xs returns the sorted distinct sweep values.
func (r *Result) Xs() []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, row := range r.Rows {
		if !seen[row.X] {
			seen[row.X] = true
			out = append(out, row.X)
		}
	}
	sort.Float64s(out)
	return out
}

// rowKey addresses one (x, algorithm) cell of a figure.
type rowKey struct {
	x   float64
	alg string
}

// rowIndex maps each (x, alg) cell to its first matching row — built
// once per formatting call so a full table renders in O(rows) instead
// of one linear scan per cell.
func (r *Result) rowIndex() map[rowKey]int {
	idx := make(map[rowKey]int, len(r.Rows))
	for i, row := range r.Rows {
		k := rowKey{x: row.X, alg: row.Alg}
		if _, ok := idx[k]; !ok {
			idx[k] = i
		}
	}
	return idx
}

// Value returns the metric for (x, alg), and whether it exists. Each
// call scans the rows; callers rendering whole tables go through the
// one-shot index FormatTable builds instead.
func (r *Result) Value(x float64, alg string, m Metric) (float64, bool) {
	for _, row := range r.Rows {
		if row.X == x && row.Alg == alg {
			return row.metric(m), true
		}
	}
	return 0, false
}

// FormatTable writes one metric of the result as an aligned text table —
// the same rows/series the corresponding sub-figure plots.
func (r *Result) FormatTable(w io.Writer, m Metric) {
	algs := r.Algorithms()
	idx := r.rowIndex()
	fmt.Fprintf(w, "%s %s on %s — %s vs %s\n", r.Figure, m, r.Dataset, m, r.XLabel)
	fmt.Fprintf(w, "%10s", r.XLabel)
	for _, a := range algs {
		fmt.Fprintf(w, "%12s", a)
	}
	fmt.Fprintln(w)
	for _, x := range r.Xs() {
		fmt.Fprintf(w, "%10g", x)
		for _, a := range algs {
			i, ok := idx[rowKey{x: x, alg: a}]
			if !ok {
				fmt.Fprintf(w, "%12s", "-")
				continue
			}
			fmt.Fprintf(w, "%12.4f", r.Rows[i].metric(m))
		}
		fmt.Fprintln(w)
	}
}

// FormatAll writes every metric's table.
func (r *Result) FormatAll(w io.Writer, metrics []Metric) {
	for _, m := range metrics {
		r.FormatTable(w, m)
		fmt.Fprintln(w)
	}
}

// WriteCSV emits the raw rows as CSV (header + one line per Row) with
// RFC 4180 quoting: a field containing a comma, quote or newline is
// quoted, not rewritten, so every value — including the shard artifacts
// that travel through this path when a merge writes its figures —
// parses back losslessly with any conforming reader.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "dataset", "xlabel", "x", "alg", "cpu_ms", "assigned", "ai", "ap", "travel_km"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write([]string{
			r.Figure, r.Dataset, r.XLabel,
			strconv.FormatFloat(row.X, 'g', -1, 64), row.Alg,
			fmt.Sprintf("%.6f", row.CPUms), fmt.Sprintf("%.2f", row.Assigned),
			fmt.Sprintf("%.6f", row.AI), fmt.Sprintf("%.6f", row.AP), fmt.Sprintf("%.6f", row.TravelKm),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Runner binds a dataset to a trained framework and executes sweeps.
type Runner struct {
	Data *dataset.Data
	FW   *core.Framework
	P    Params
}

// TrainingCutoff returns the online/offline split in hours: everything
// strictly before the earliest evaluation day is training input, and
// the rest is the evaluation stream. It errors when the parameter set
// has no evaluation days at all.
func (p Params) TrainingCutoff() (float64, error) {
	if len(p.Days) == 0 {
		return 0, fmt.Errorf("experiments: no evaluation days")
	}
	minDay := p.Days[0]
	for _, d := range p.Days {
		if d < minDay {
			minDay = d
		}
	}
	return float64(minDay) * 24, nil
}

// NewRunner trains a DITA framework on everything before the first
// evaluation day and returns a runner ready to execute sweeps.
func NewRunner(data *dataset.Data, cfg core.Config, p Params) (*Runner, error) {
	cutoff, err := p.TrainingCutoff()
	if err != nil {
		return nil, err
	}
	docs, vocab := data.Documents(cutoff)
	fw, err := core.Train(core.TrainingData{
		Graph:     data.Graph,
		Histories: data.HistoriesBefore(cutoff),
		Documents: docs,
		Vocab:     vocab,
		Records:   data.CheckInsBefore(cutoff),
	}, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: training: %w", err)
	}
	return &Runner{Data: data, FW: fw, P: p}, nil
}

// NewRunnerFromFramework binds a pre-trained framework (typically
// loaded from a fwio artifact) to the dataset it was fitted on. The
// framework must have been trained at this parameter set's cutoff on
// this dataset for the sweeps to mean anything; the basic shape — one
// theta row and graph node per dataset user — is validated here, while
// provenance (same dataset, same cutoff) is the caller's contract,
// enforced at the harness level via the artifact's recorded source.
func NewRunnerFromFramework(data *dataset.Data, fw *core.Framework, p Params) (*Runner, error) {
	if _, err := p.TrainingCutoff(); err != nil {
		return nil, err
	}
	if fw == nil {
		return nil, fmt.Errorf("experiments: nil framework")
	}
	if fw.Graph().N() != data.Graph.N() {
		return nil, fmt.Errorf("experiments: framework trained on a %d-user graph, dataset has %d users", fw.Graph().N(), data.Graph.N())
	}
	return &Runner{Data: data, FW: fw, P: p}, nil
}

// snapshot builds the instance for one day under possibly overridden
// sweep parameters.
func (r *Runner) snapshot(day, numTasks, numWorkers int, valid, radius float64) (*model.Instance, error) {
	return r.Data.Snapshot(dataset.SnapshotParams{
		Day:        day,
		NumTasks:   numTasks,
		NumWorkers: numWorkers,
		ValidHours: valid,
		RadiusKm:   radius,
		Seed:       r.P.Seed,
	})
}

// feasiblePairs computes a sweep point's feasibility exactly once; every
// algorithm and ablation mask of the point shares the result through the
// authoritative Problem.Pairs path (AssignPreparedPairs), so a
// zero-feasibility point — whose precomputed slice is nil — cannot
// trigger silent per-algorithm rescans.
func (r *Runner) feasiblePairs(inst *model.Instance) []assign.Pair {
	return assign.FeasiblePairs(inst, r.FW.Speed())
}

type accum struct {
	cpuMs, assigned, ai, ap, travel float64
	n                               int
}

func (a *accum) add(m core.Metrics) {
	a.cpuMs += float64(m.CPU.Microseconds()) / 1000
	a.assigned += float64(m.Assigned)
	a.ai += m.AI
	a.ap += m.AP
	a.travel += m.TravelKm
	a.n++
}

// row averages the accumulated days into the cell's Row. Callers
// guarantee n > 0 — Reduce refuses incomplete grids before averaging —
// so an empty cell can never be reported as measured zeros.
func (a *accum) row(x float64, alg string) Row {
	n := float64(a.n)
	return Row{
		X: x, Alg: alg,
		CPUms:    a.cpuMs / n,
		Assigned: a.assigned / n,
		AI:       a.ai / n,
		AP:       a.ap / n,
		TravelKm: a.travel / n,
	}
}

// runSweep fans this shard's share of the (sweep value × day) job grid
// out over a bounded worker pool and returns the raw per-job metrics.
// Jobs are indexed j = xi·len(Days) + di — x-major, day-minor, the
// sequential order the reduction later averages in — and the shard owns
// those with j % Count == Index. The jobs are independent — the trained
// framework is immutable and every instance is rebuilt from its seed —
// and each writes only its own slot; eval must return one Metrics per
// series, in series order. A failed job flips a flag that makes
// still-queued jobs exit immediately, preserving fail-fast behavior
// under fan-out. Averaging happens exactly once, in SweepRaw.Reduce —
// in-process runs and cross-process merges share that one reduction.
func (r *Runner) runSweep(fig int, xlabel string, xs []float64, series []string, eval func(day int, x float64) ([]core.Metrics, error)) (*SweepRaw, error) {
	if err := r.P.Shard.Validate(); err != nil {
		return nil, err
	}
	shard := r.P.Shard.normalized()
	nd := len(r.P.Days)
	var owned []int // grid indices this shard evaluates, ascending
	for j := 0; j < len(xs)*nd; j++ {
		if shard.owns(j) {
			owned = append(owned, j)
		}
	}
	metrics := make([][]core.Metrics, len(owned)) // per owned job, per series
	errs := make([]error, len(owned))
	var failed atomic.Bool
	var resumed atomic.Int64
	cp := r.P.Checkpoint
	dsName := r.Data.Params.Name
	parallel.For(parallel.Workers(r.P.Parallelism), len(owned), func(_, i int) {
		if failed.Load() {
			return
		}
		j := owned[i]
		day, x := r.P.Days[j%nd], xs[j/nd]
		if cp != nil {
			if ms, ok := cp.Lookup(dsName, fig, x, day); ok {
				if len(ms) != len(series) {
					errs[i] = fmt.Errorf("experiments: checkpointed job (fig %d, x=%g, day %d) holds %d metrics for %d series — stale or foreign journal",
						fig, x, day, len(ms), len(series))
					failed.Store(true)
					return
				}
				metrics[i] = ms
				resumed.Add(1)
				return
			}
		}
		ms, err := eval(day, x)
		if err == nil && len(ms) != len(series) {
			err = fmt.Errorf("experiments: eval returned %d metrics for %d series", len(ms), len(series))
		}
		if err == nil && cp != nil {
			err = cp.Record(dsName, fig, x, day, ms)
		}
		if err != nil {
			errs[i] = err
			failed.Store(true)
			return
		}
		metrics[i] = ms
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	raw := &SweepRaw{
		Fig: fig, Figure: fmt.Sprintf("Fig. %d", fig), Dataset: r.Data.Params.Name,
		XLabel: xlabel, Series: series, Xs: xs, Days: r.P.Days, Shard: shard,
		Jobs:    make([]JobMetrics, 0, len(owned)),
		Resumed: int(resumed.Load()),
	}
	for i, j := range owned {
		raw.Jobs = append(raw.Jobs, JobMetrics{X: xs[j/nd], Day: r.P.Days[j%nd], Metrics: metrics[i]})
	}
	return raw, nil
}

// reduceRaw chains a raw sweep into its reduced Result, keeping the
// figure methods one-liners.
func reduceRaw(raw *SweepRaw, err error) (*Result, error) {
	if err != nil {
		return nil, err
	}
	return raw.Reduce()
}

// runComparison executes the five algorithms for each sweep value and
// averages the metrics over the evaluation days; this backs Figures 9–16.
func (r *Runner) runComparison(fig int, xlabel string, xs []float64, makeInst func(day int, x float64) (*model.Instance, error)) (*SweepRaw, error) {
	series := make([]string, len(assign.Algorithms))
	for i, alg := range assign.Algorithms {
		series[i] = alg.String()
	}
	return r.runSweep(fig, xlabel, xs, series, func(day int, x float64) ([]core.Metrics, error) {
		inst, err := makeInst(day, x)
		if err != nil {
			return nil, err
		}
		// A single-use session per job: the sweep fan-out above already
		// saturates the pool, so the online phase runs at parallelism 1
		// inside each job (bit-identical to any other setting). Per-day
		// seeds mix the day in via randx.Mix rather than addition, so
		// nearby days cannot collide with nearby base seeds.
		ev := r.FW.PrepareSession(influence.All, randx.Mix(r.P.Seed, uint64(day)), 1).Prepare(inst)
		pairs := r.feasiblePairs(inst)
		ms := make([]core.Metrics, len(assign.Algorithms))
		for ai, alg := range assign.Algorithms {
			_, m := r.FW.AssignPreparedPairs(inst, ev, alg, pairs)
			ms[ai] = m
		}
		return ms, nil
	})
}

// runAblation executes the IA algorithm under the four component masks
// (IA, IA-WP, IA-AP, IA-AW) for each sweep value; this backs Figures 5–8.
//
// Each variant ASSIGNS with its masked influence model, but — as in the
// paper, where AI (Equation 6) is defined once over the full worker-task
// influence of Section III-D — every resulting assignment is SCORED with
// the full model. The masks therefore change the assignment, and the
// reported AI measures how much worker-task influence that assignment
// actually realizes.
func (r *Runner) runAblation(fig int, xlabel string, xs []float64, makeInst func(day int, x float64) (*model.Instance, error)) (*SweepRaw, error) {
	masks := []influence.Components{influence.All, influence.WP, influence.AP, influence.AW}
	series := make([]string, len(masks))
	for i, mk := range masks {
		series[i] = mk.String()
	}
	return r.runSweep(fig, xlabel, xs, series, func(day int, x float64) ([]core.Metrics, error) {
		inst, err := makeInst(day, x)
		if err != nil {
			return nil, err
		}
		pairs := r.feasiblePairs(inst)
		// Single-use sessions per mask (see runComparison on why each job
		// runs its online phase at parallelism 1).
		daySeed := randx.Mix(r.P.Seed, uint64(day))
		evFull := r.FW.PrepareSession(influence.All, daySeed, 1).Prepare(inst)
		ms := make([]core.Metrics, len(masks))
		for mi, mk := range masks {
			ev := evFull
			if mk != influence.All {
				ev = r.FW.PrepareSession(mk, daySeed, 1).Prepare(inst)
			}
			set, m := r.FW.AssignPreparedPairs(inst, ev, assign.IA, pairs)
			// Rescore the realized assignment under the full model.
			if set.Len() > 0 {
				sum := 0.0
				for _, pr := range set.Pairs {
					sum += evFull.Influence(int(pr.Worker), int(pr.Task))
				}
				m.AI = sum / float64(set.Len())
			}
			ms[mi] = m
		}
		return ms, nil
	})
}

// Figure numbering follows the paper: ablations are Fig. 5–8; algorithm
// comparisons are Fig. 9/10 (|S|), 11/12 (|W|), 13/14 (ϕ), 15/16 (r),
// with the odd number on BK and the even on FS. The dataset half of the
// numbering comes from the runner's dataset.

// AblationTasks reproduces Fig. 5 (effect of |S| on AI for IA variants).
func (r *Runner) AblationTasks(xs []int) (*Result, error) {
	return reduceRaw(r.ablationTasksRaw(xs))
}

func (r *Runner) ablationTasksRaw(xs []int) (*SweepRaw, error) {
	return r.runAblation(5, "|S|", toF(xs), func(day int, x float64) (*model.Instance, error) {
		return r.snapshot(day, int(x), r.P.NumWorkers, r.P.ValidHours, r.P.RadiusKm)
	})
}

// AblationWorkers reproduces Fig. 6 (effect of |W|).
func (r *Runner) AblationWorkers(xs []int) (*Result, error) {
	return reduceRaw(r.ablationWorkersRaw(xs))
}

func (r *Runner) ablationWorkersRaw(xs []int) (*SweepRaw, error) {
	return r.runAblation(6, "|W|", toF(xs), func(day int, x float64) (*model.Instance, error) {
		return r.snapshot(day, r.P.NumTasks, int(x), r.P.ValidHours, r.P.RadiusKm)
	})
}

// AblationValidTime reproduces Fig. 7 (effect of ϕ).
func (r *Runner) AblationValidTime(xs []float64) (*Result, error) {
	return reduceRaw(r.ablationValidTimeRaw(xs))
}

func (r *Runner) ablationValidTimeRaw(xs []float64) (*SweepRaw, error) {
	return r.runAblation(7, "phi(h)", xs, func(day int, x float64) (*model.Instance, error) {
		return r.snapshot(day, r.P.NumTasks, r.P.NumWorkers, x, r.P.RadiusKm)
	})
}

// AblationRadius reproduces Fig. 8 (effect of r).
func (r *Runner) AblationRadius(xs []float64) (*Result, error) {
	return reduceRaw(r.ablationRadiusRaw(xs))
}

func (r *Runner) ablationRadiusRaw(xs []float64) (*SweepRaw, error) {
	return r.runAblation(8, "r(km)", xs, func(day int, x float64) (*model.Instance, error) {
		return r.snapshot(day, r.P.NumTasks, r.P.NumWorkers, r.P.ValidHours, x)
	})
}

// CompareTasks reproduces Fig. 9 (BK) / Fig. 10 (FS): effect of |S| on
// the five algorithms across all five metrics.
func (r *Runner) CompareTasks(xs []int) (*Result, error) {
	return reduceRaw(r.compareTasksRaw(xs))
}

func (r *Runner) compareTasksRaw(xs []int) (*SweepRaw, error) {
	return r.runComparison(r.figNum(9, 10), "|S|", toF(xs), func(day int, x float64) (*model.Instance, error) {
		return r.snapshot(day, int(x), r.P.NumWorkers, r.P.ValidHours, r.P.RadiusKm)
	})
}

// CompareWorkers reproduces Fig. 11 (BK) / Fig. 12 (FS).
func (r *Runner) CompareWorkers(xs []int) (*Result, error) {
	return reduceRaw(r.compareWorkersRaw(xs))
}

func (r *Runner) compareWorkersRaw(xs []int) (*SweepRaw, error) {
	return r.runComparison(r.figNum(11, 12), "|W|", toF(xs), func(day int, x float64) (*model.Instance, error) {
		return r.snapshot(day, r.P.NumTasks, int(x), r.P.ValidHours, r.P.RadiusKm)
	})
}

// CompareValidTime reproduces Fig. 13 (BK) / Fig. 14 (FS).
func (r *Runner) CompareValidTime(xs []float64) (*Result, error) {
	return reduceRaw(r.compareValidTimeRaw(xs))
}

func (r *Runner) compareValidTimeRaw(xs []float64) (*SweepRaw, error) {
	return r.runComparison(r.figNum(13, 14), "phi(h)", xs, func(day int, x float64) (*model.Instance, error) {
		return r.snapshot(day, r.P.NumTasks, r.P.NumWorkers, x, r.P.RadiusKm)
	})
}

// CompareRadius reproduces Fig. 15 (BK) / Fig. 16 (FS).
func (r *Runner) CompareRadius(xs []float64) (*Result, error) {
	return reduceRaw(r.compareRadiusRaw(xs))
}

func (r *Runner) compareRadiusRaw(xs []float64) (*SweepRaw, error) {
	return r.runComparison(r.figNum(15, 16), "r(km)", xs, func(day int, x float64) (*model.Instance, error) {
		return r.snapshot(day, r.P.NumTasks, r.P.NumWorkers, r.P.ValidHours, x)
	})
}

// figNum resolves a BK/FS figure pair to this runner's dataset.
func (r *Runner) figNum(bk, fs int) int {
	if r.Data.Params.Name == "FS" {
		return fs
	}
	return bk
}

// FigureOnDataset reports whether figure fig (5..16) is evaluated on
// the named dataset: the ablations 5–8 appear on both, the algorithm
// comparisons alternate (odd on BK, even on FS).
func FigureOnDataset(fig int, dataset string) bool {
	if fig < 5 || fig > 16 {
		return false
	}
	if fig <= 8 {
		return true
	}
	return (dataset == "FS") == (fig%2 == 0)
}

// FigureMetrics returns the metrics the paper plots for a figure: AI
// alone for the ablations 5–8, all five for the comparisons 9–16.
func FigureMetrics(fig int) []Metric {
	if fig >= 5 && fig <= 8 {
		return []Metric{MetricAI}
	}
	return AllMetrics
}

// HasFigure reports whether fig is evaluated on this runner's dataset.
func (r *Runner) HasFigure(fig int) bool {
	return FigureOnDataset(fig, r.Data.Params.Name)
}

// RunFigureRaw executes this shard's share of one figure's job grid
// (fig 5..16, sweeps chosen by the caller's scale) and returns the raw
// per-job metrics — the unit a ShardResult artifact collects.
func (r *Runner) RunFigureRaw(fig int, sw Sweeps) (*SweepRaw, error) {
	if !r.HasFigure(fig) {
		return nil, fmt.Errorf("experiments: figure %d is not evaluated on %s", fig, r.Data.Params.Name)
	}
	switch fig {
	case 5:
		return r.ablationTasksRaw(sw.Tasks)
	case 6:
		return r.ablationWorkersRaw(sw.Workers)
	case 7:
		return r.ablationValidTimeRaw(sw.Valid)
	case 8:
		return r.ablationRadiusRaw(sw.Radius)
	case 9, 10:
		return r.compareTasksRaw(sw.Tasks)
	case 11, 12:
		return r.compareWorkersRaw(sw.Workers)
	case 13, 14:
		return r.compareValidTimeRaw(sw.Valid)
	default: // 15, 16 — HasFigure bounds fig to 5..16
		return r.compareRadiusRaw(sw.Radius)
	}
}

// RunFigure is RunFigureRaw plus the reduction — the figure's Result,
// for unsharded in-process runs.
func (r *Runner) RunFigure(fig int, sw Sweeps) (*Result, error) {
	return reduceRaw(r.RunFigureRaw(fig, sw))
}

func toF(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
