// Per-job checkpointing for sharded sweep workers: every completed
// (figure, x, day) job's raw metrics are appended — durably, one
// checksummed line at a time — to a journal file next to the worker's
// artifact. A worker restarted after a crash replays the journal and
// re-runs only the jobs it never finished; the jobs it replays are
// bit-identical to a fresh evaluation because the sweep machinery is
// deterministic, so resume is invisible in the merged figures.
package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"dita/internal/atomicio"
	"dita/internal/core"
	"dita/internal/faultinject"
)

// Checkpoint lets a sweep skip jobs a previous run of the same worker
// already completed, and durably record each newly finished job. Lookup
// and Record may be called concurrently from the sweep's fan-out.
type Checkpoint interface {
	// Lookup returns the recorded metrics of a completed job, if any.
	Lookup(dataset string, fig int, x float64, day int) ([]core.Metrics, bool)
	// Record durably persists one completed job before the sweep moves
	// on; an error poisons the sweep (better to crash loudly than to
	// lose completed work silently).
	Record(dataset string, fig int, x float64, day int, metrics []core.Metrics) error
}

// journalHeader is the journal's first line: the run signature that
// binds the file to one exact worker invocation. A journal written
// under different flags describes different jobs; replaying it would
// poison the artifact, so a mismatch is a hard error.
type journalHeader struct {
	Kind      string `json:"kind"`
	Version   int    `json:"version"`
	Signature string `json:"signature"`
	Shard     Shard  `json:"shard"`
	Seed      uint64 `json:"seed"`
}

const journalKind = "dita-sweep-journal"

// journalRecord is one completed job.
type journalRecord struct {
	Dataset string         `json:"dataset"`
	Fig     int            `json:"fig"`
	X       float64        `json:"x"`
	Day     int            `json:"day"`
	Metrics []core.Metrics `json:"metrics"`
}

// jobID keys a job across the journal's lifetime.
type jobID struct {
	dataset string
	fig     int
	x       float64
	day     int
}

// Journal is the durable Checkpoint a shard worker appends to. Each
// line is "<sha256hex> <json>\n" — self-checking, so a torn final
// append (the expected shape of a crash) is detected and discarded on
// replay rather than parsed into garbage.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	done map[jobID][]core.Metrics
	// Truncated reports that replay found a torn or corrupt line and
	// dropped it (and anything after it); those jobs simply re-run.
	Truncated     bool
	resumedAtOpen int
}

// OpenJournal opens (or creates) the journal at path for a worker
// running under the given invocation signature. An existing journal is
// replayed: its header must match the signature, shard and seed
// exactly, its intact records become resumable jobs, and a torn tail is
// truncated away. A journal whose header itself is torn (a worker that
// died between creating the file and syncing the first line) holds
// nothing recoverable and is reinitialized empty — the one corruption
// that must not wedge a supervised retry loop. A header that parses but
// names a different run is a hard error: that journal describes someone
// else's jobs. The returned journal is positioned to append.
func OpenJournal(path, signature string, shard Shard, seed uint64) (*Journal, error) {
	j := &Journal{path: path, done: map[jobID][]core.Metrics{}}
	head := journalHeader{Kind: journalKind, Version: 1, Signature: signature, Shard: shard.normalized(), Seed: seed}
	headLine, err := journalLine(head)
	if err != nil {
		return nil, err
	}

	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	fresh := os.IsNotExist(err)

	keep, hasHeader := int64(0), false
	if !fresh {
		keep, hasHeader, err = j.replay(data, head)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		j.resumedAtOpen = len(j.done)
		if keep < int64(len(data)) {
			j.Truncated = true
			if err := os.Truncate(path, keep); err != nil {
				return nil, fmt.Errorf("%s: truncating torn journal tail: %w", path, err)
			}
		}
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiments: opening journal: %w", err)
	}
	j.f = f
	if fresh || !hasHeader {
		if _, err := f.Write(headLine); err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: writing journal header: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: syncing journal header: %w", path, err)
		}
	}
	return j, nil
}

// replay validates the header and loads every intact record, returning
// the byte offset up to which the journal is good and whether a valid
// matching header was found. The first bad line — torn append, flipped
// bits, anything that fails its own checksum — ends the replay;
// everything after it is recomputed rather than trusted. A torn header
// discards the whole file (keep 0, no header).
func (j *Journal) replay(data []byte, want journalHeader) (keep int64, hasHeader bool, err error) {
	lines := bytes.SplitAfter(data, []byte("\n"))
	offset := int64(0)
	for i, line := range lines {
		if len(line) == 0 {
			continue
		}
		payload, ok := checkLine(line)
		if !ok {
			return offset, hasHeader, nil // torn/corrupt from here on: drop the tail
		}
		if i == 0 {
			var head journalHeader
			if err := json.Unmarshal(payload, &head); err != nil {
				return 0, false, nil // checksummed but unparseable header: reinitialize
			}
			if head.Kind != journalKind || head.Version != 1 {
				return 0, false, fmt.Errorf("experiments: not a v1 sweep journal (kind %q, version %d)", head.Kind, head.Version)
			}
			if head != want {
				return 0, false, fmt.Errorf("experiments: journal belongs to a different run (journal signature %q, shard %s, seed %d; this run %q, shard %s, seed %d) — delete it or rerun with the original flags",
					head.Signature, head.Shard, head.Seed, want.Signature, want.Shard, want.Seed)
			}
			hasHeader = true
		} else {
			var rec journalRecord
			if err := json.Unmarshal(payload, &rec); err != nil {
				return offset, hasHeader, nil // checksummed but unparseable: treat as torn
			}
			j.done[jobID{rec.Dataset, rec.Fig, rec.X, rec.Day}] = rec.Metrics
		}
		offset += int64(len(line))
	}
	return offset, hasHeader, nil
}

// journalLine renders one self-checking journal line.
func journalLine(v any) ([]byte, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(payload)+66)
	line = append(line, atomicio.Sum(payload)...)
	line = append(line, ' ')
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// checkLine splits a journal line into its payload, verifying the
// leading checksum (and the trailing newline a complete append ends
// with).
func checkLine(line []byte) ([]byte, bool) {
	if len(line) < 66 || line[len(line)-1] != '\n' || line[64] != ' ' {
		return nil, false
	}
	payload := line[65 : len(line)-1]
	if atomicio.Sum(payload) != string(line[:64]) {
		return nil, false
	}
	return payload, true
}

// Lookup implements Checkpoint over the replayed records.
func (j *Journal) Lookup(dataset string, fig int, x float64, day int) ([]core.Metrics, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ms, ok := j.done[jobID{dataset, fig, x, day}]
	return ms, ok
}

// Record implements Checkpoint: append one completed job and fsync, so
// the job survives any subsequent crash. The "journal.record" fault
// point fires after the record is durable — a worker killed there has
// journaled exactly the jobs it finished.
func (j *Journal) Record(dataset string, fig int, x float64, day int, metrics []core.Metrics) error {
	line, err := journalLine(journalRecord{Dataset: dataset, Fig: fig, X: x, Day: day, Metrics: metrics})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("%s: appending journal record: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("%s: syncing journal record: %w", j.path, err)
	}
	j.done[jobID{dataset, fig, x, day}] = metrics
	faultinject.Hit("journal.record")
	return nil
}

// Jobs returns how many completed jobs the journal holds: the records
// replayed at open plus those appended since.
func (j *Journal) Jobs() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Resumed returns how many completed jobs the journal carried when it
// was opened — the jobs a restarted worker does not re-run.
func (j *Journal) Resumed() int { return j.resumedAtOpen }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Sync flushes the journal to disk; signal handlers call it before the
// process exits so no durable-looking record is still in flight.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Close closes the journal file, leaving it on disk for a successor.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Remove closes and deletes the journal — the worker's final act after
// its sealed artifact has been renamed into place, at which point the
// journal is redundant and keeping it would only confuse a later run.
func (j *Journal) Remove() error {
	if err := j.Close(); err != nil {
		return err
	}
	return os.Remove(j.path)
}
