// Shard-artifact file handling for the merge coordinator and the
// orchestrator: globbing a shard set off disk without tripping over the
// debris of crashed writers, and loading each artifact with its content
// checksum verified and every failure named after the offending path.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dita/internal/atomicio"
)

// GlobArtifacts expands a shard-artifact glob into the real artifact
// paths (sorted) and, separately, any leftover temp files the pattern
// matched — the half-written debris of a writer that died before its
// atomic rename. Temp files are never loaded; callers surface them as
// warnings so an operator knows a worker crashed, but a merge over the
// surviving real artifacts proceeds (and completeness validation still
// catches any shard the crash actually lost).
func GlobArtifacts(pattern string) (paths, tmps []string, err error) {
	matches, err := filepath.Glob(pattern)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: artifact glob %q: %w", pattern, err)
	}
	for _, m := range matches {
		if strings.HasSuffix(m, atomicio.TempSuffix) {
			tmps = append(tmps, m)
			continue
		}
		paths = append(paths, m)
	}
	sort.Strings(paths)
	sort.Strings(tmps)
	return paths, tmps, nil
}

// LoadShardFile reads one artifact off disk, verifying its content
// checksum and shard spec. Every error names the offending path, so a
// failed merge over dozens of artifacts points straight at the bad one.
func LoadShardFile(path string) (*ShardResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err // *PathError already names the path
	}
	sr, err := DecodeShardResult(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sr, nil
}

// LoadShardSet loads every artifact of a shard set, failing on the
// first unreadable or corrupted one.
func LoadShardSet(paths []string) ([]*ShardResult, error) {
	out := make([]*ShardResult, 0, len(paths))
	for _, path := range paths {
		sr, err := LoadShardFile(path)
		if err != nil {
			return nil, err
		}
		out = append(out, sr)
	}
	return out, nil
}
