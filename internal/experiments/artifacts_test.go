package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dita/internal/atomicio"
	"dita/internal/core"
)

// sealedArtifact builds a small, fully synthetic sealed artifact (no
// training involved) and returns it with its on-disk bytes.
func sealedArtifact(t *testing.T) (*ShardResult, []byte) {
	t.Helper()
	m := func(alg string, v float64) []core.Metrics {
		return []core.Metrics{{Algorithm: alg, Assigned: 2, AI: v, AP: v / 2, TravelKm: 3 * v}}
	}
	sr := &ShardResult{
		Shard: Shard{Index: 0, Count: 1},
		Seed:  42,
		Figures: []*SweepRaw{{
			Fig: 5, Figure: "Fig. 5", Dataset: "BK", XLabel: "|S|",
			Series: []string{"IA"}, Xs: []float64{1, 2}, Days: []int{3},
			Jobs: []JobMetrics{
				{X: 1, Day: 3, Metrics: m("IA", 0.25)},
				{X: 2, Day: 3, Metrics: m("IA", 0.5)},
			},
		}},
	}
	data, err := sr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return sr, data
}

// TestLoadShardFileCorruption is the corrupted-artifact table: every
// way a shard artifact can be damaged on disk must be rejected with an
// error naming the offending path — and the intact artifact must load
// back exactly.
func TestLoadShardFileCorruption(t *testing.T) {
	sr, data := sealedArtifact(t)

	unsealed, err := json.MarshalIndent(&ShardResult{Shard: Shard{Index: 0, Count: 1}, Seed: 42}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}

	// A checksum-breaking but JSON-preserving edit: change a recorded
	// metric value without resealing.
	tampered := []byte(strings.Replace(string(data), `"assigned": 2`, `"assigned": 3`, 1))
	if len(tampered) != len(data) {
		t.Fatal("tamper edit did not apply")
	}

	cases := []struct {
		name    string
		content []byte
		wantErr string // "" = must load
	}{
		{"intact", data, ""},
		{"truncated JSON", data[:2*len(data)/3], "unexpected end of JSON input"},
		{"empty file", nil, "unexpected end of JSON input"},
		{"checksum mismatch", tampered, "checksum mismatch"},
		{"missing checksum", append(unsealed, '\n'), "no content checksum"},
		{"invalid shard spec", corruptShardSpec(t, data), "outside 0..0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "shard_0.json")
			if err := os.WriteFile(path, tc.content, 0o644); err != nil {
				t.Fatal(err)
			}
			got, err := LoadShardFile(path)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("intact artifact refused: %v", err)
				}
				if !reflect.DeepEqual(got, sr) {
					t.Error("loaded artifact differs from the sealed original")
				}
				return
			}
			if err == nil {
				t.Fatalf("corrupted artifact accepted: %+v", got)
			}
			if !strings.Contains(err.Error(), path) {
				t.Errorf("error does not name the offending path %q: %v", path, err)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error = %v, want it to mention %q", err, tc.wantErr)
			}
		})
	}

	t.Run("missing file", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "absent.json")
		if _, err := LoadShardFile(path); err == nil || !strings.Contains(err.Error(), path) {
			t.Errorf("missing file: err = %v, want a path-naming error", err)
		}
	})
}

// corruptShardSpec rewrites the artifact to carry an invalid shard
// index, resealing so only the spec validation can reject it.
func corruptShardSpec(t *testing.T, data []byte) []byte {
	t.Helper()
	var sr ShardResult
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	sr.Shard.Index = 5
	out, err := sr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestGlobArtifactsSkipsTempDebris: leftover *.tmp files from crashed
// writers must be surfaced separately from — never mixed into — the
// loadable artifact set.
func TestGlobArtifactsSkipsTempDebris(t *testing.T) {
	dir := t.TempDir()
	_, data := sealedArtifact(t)
	good := filepath.Join(dir, "shard_0.json")
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	debris := filepath.Join(dir, "shard_1.json"+atomicio.TempSuffix)
	if err := os.WriteFile(debris, data[:10], 0o644); err != nil {
		t.Fatal(err)
	}

	paths, tmps, err := GlobArtifacts(filepath.Join(dir, "shard_*"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(paths, []string{good}) {
		t.Errorf("paths = %v, want just %s", paths, good)
	}
	if !reflect.DeepEqual(tmps, []string{debris}) {
		t.Errorf("tmps = %v, want just %s", tmps, debris)
	}

	set, err := LoadShardSet(paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 {
		t.Fatalf("loaded %d artifacts, want 1", len(set))
	}

	if _, _, err := GlobArtifacts("[bad-pattern"); err == nil {
		t.Error("malformed glob accepted")
	}
}

// TestLoadShardSetStopsAtFirstBadArtifact: one corrupted member fails
// the whole set load, naming the culprit.
func TestLoadShardSetStopsAtFirstBadArtifact(t *testing.T) {
	dir := t.TempDir()
	_, data := sealedArtifact(t)
	good := filepath.Join(dir, "a.json")
	bad := filepath.Join(dir, "b.json")
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardSet([]string{good, bad}); err == nil || !strings.Contains(err.Error(), bad) {
		t.Errorf("set with a truncated member: err = %v, want it to name %s", err, bad)
	}
}
