package experiments

import (
	"bytes"
	"encoding/csv"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dita/internal/assign"
	"dita/internal/core"
	"dita/internal/dataset"
	"dita/internal/influence"
	"dita/internal/lda"
	"dita/internal/paralleltest"
	"dita/internal/randx"
)

func testRunner(t *testing.T) *Runner {
	t.Helper()
	p := dataset.BrightkiteLike()
	p.NumUsers = 200
	p.NumVenues = 260
	p.Days = 8
	p.Seed = 5
	data, err := dataset.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{
		NumTasks:   60,
		NumWorkers: 50,
		ValidHours: 5,
		RadiusKm:   25,
		Days:       []int{6, 7},
		Seed:       3,
	}
	r, err := NewRunner(data, core.Config{LDA: lda.Config{Topics: 10, TrainIters: 30}}, params)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDefaultParamsMatchTableII(t *testing.T) {
	p := Default()
	if p.NumTasks != 1500 {
		t.Errorf("|S| default %d, want 1500", p.NumTasks)
	}
	if p.NumWorkers != 1200 {
		t.Errorf("|W| default %d, want 1200", p.NumWorkers)
	}
	if p.ValidHours != 5 {
		t.Errorf("ϕ default %v, want 5", p.ValidHours)
	}
	if p.RadiusKm != 25 {
		t.Errorf("r default %v, want 25", p.RadiusKm)
	}
	if len(p.Days) != 4 {
		t.Errorf("evaluation days %d, want 4 (paper averages over 4 days)", len(p.Days))
	}
}

func TestSweepValuesMatchPaper(t *testing.T) {
	wantTasks := []int{500, 1000, 1500, 2000, 2500}
	for i, v := range wantTasks {
		if TaskSweep[i] != v {
			t.Fatalf("TaskSweep = %v, want %v", TaskSweep, wantTasks)
		}
	}
	wantWorkers := []int{400, 800, 1200, 1600, 2000}
	for i, v := range wantWorkers {
		if WorkerSweep[i] != v {
			t.Fatalf("WorkerSweep = %v", WorkerSweep)
		}
	}
	if len(ValidTimeSweep) != 6 || ValidTimeSweep[0] != 1 || ValidTimeSweep[5] != 6 {
		t.Errorf("ValidTimeSweep = %v", ValidTimeSweep)
	}
	if len(RadiusSweep) != 5 || RadiusSweep[0] != 5 || RadiusSweep[4] != 25 {
		t.Errorf("RadiusSweep = %v", RadiusSweep)
	}
}

// TestSharedPairsMatchPerAlgorithmRecompute: routing one precomputed
// feasibility set through every algorithm of a sweep point must be
// indistinguishable from each algorithm rescanning for itself — the
// shared Problem.Pairs path changes the work, never the figures.
func TestSharedPairsMatchPerAlgorithmRecompute(t *testing.T) {
	r := testRunner(t)
	inst, err := r.snapshot(r.P.Days[0], r.P.NumTasks, r.P.NumWorkers, r.P.ValidHours, r.P.RadiusKm)
	if err != nil {
		t.Fatal(err)
	}
	ev := r.FW.PrepareSession(influence.All, randx.Mix(r.P.Seed, uint64(r.P.Days[0])), 1).Prepare(inst)
	shared := r.feasiblePairs(inst)
	if len(shared) == 0 {
		t.Fatal("sweep point has no feasible pairs; the comparison gates nothing")
	}
	for _, alg := range assign.Algorithms {
		gotSet, gotM := r.FW.AssignPreparedPairs(inst, ev, alg, shared)
		wantSet, wantM := r.FW.AssignPrepared(inst, ev, alg, nil)
		if !reflect.DeepEqual(gotSet, wantSet) {
			t.Errorf("%v: shared-pairs assignment diverged from per-algorithm recomputation", alg)
		}
		gotM.CPU, wantM.CPU = 0, 0
		if gotM != wantM {
			t.Errorf("%v: shared-pairs metrics %+v, recomputed %+v", alg, gotM, wantM)
		}
	}
}

func TestComparisonSweepShape(t *testing.T) {
	r := testRunner(t)
	res, err := r.CompareTasks([]int{30, 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.Figure != "Fig. 9" || res.Dataset != "BK" || res.XLabel != "|S|" {
		t.Errorf("labels: %q %q %q", res.Figure, res.Dataset, res.XLabel)
	}
	algs := res.Algorithms()
	if len(algs) != 5 {
		t.Fatalf("algorithms %v, want 5", algs)
	}
	xs := res.Xs()
	if len(xs) != 2 || xs[0] != 30 || xs[1] != 60 {
		t.Fatalf("xs = %v", xs)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows %d, want 10 (2 sweep points × 5 algorithms)", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Assigned <= 0 {
			t.Errorf("row %+v has no assignments", row)
		}
		if row.CPUms < 0 || row.AI < 0 || row.AP < 0 || row.TravelKm < 0 {
			t.Errorf("row %+v has negative metrics", row)
		}
	}
	// More tasks with fixed workers → number assigned must not shrink.
	for _, alg := range algs {
		a30, _ := res.Value(30, alg, MetricAssigned)
		a60, _ := res.Value(60, alg, MetricAssigned)
		if a60+1e-9 < a30 {
			t.Errorf("%s: assigned fell from %v to %v as |S| grew", alg, a30, a60)
		}
	}
}

func TestAblationSweepShape(t *testing.T) {
	r := testRunner(t)
	res, err := r.AblationTasks([]int{40})
	if err != nil {
		t.Fatal(err)
	}
	if res.Figure != "Fig. 5" {
		t.Errorf("figure %q", res.Figure)
	}
	algs := res.Algorithms()
	want := []string{"IA", "IA-WP", "IA-AP", "IA-AW"}
	if len(algs) != 4 {
		t.Fatalf("variants %v", algs)
	}
	for i, w := range want {
		if algs[i] != w {
			t.Fatalf("variants %v, want %v", algs, want)
		}
	}
	// All variants achieve the same (maximum) cardinality: they differ
	// only in edge costs.
	first, _ := res.Value(40, "IA", MetricAssigned)
	for _, a := range algs[1:] {
		v, _ := res.Value(40, a, MetricAssigned)
		if v != first {
			t.Errorf("%s assigned %v, IA %v — cardinality must match", a, v, first)
		}
	}
}

func TestRadiusSweepGrowsAssignments(t *testing.T) {
	r := testRunner(t)
	res, err := r.CompareRadius([]float64{5, 25})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range res.Algorithms() {
		small, _ := res.Value(5, alg, MetricAssigned)
		large, _ := res.Value(25, alg, MetricAssigned)
		if large < small {
			t.Errorf("%s: assignments fell from %v to %v as r grew", alg, small, large)
		}
	}
}

func TestValidTimeSweepGrowsAssignments(t *testing.T) {
	r := testRunner(t)
	res, err := r.CompareValidTime([]float64{1, 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range res.Algorithms() {
		short, _ := res.Value(1, alg, MetricAssigned)
		long, _ := res.Value(6, alg, MetricAssigned)
		if long < short {
			t.Errorf("%s: assignments fell from %v to %v as ϕ grew", alg, short, long)
		}
	}
}

func TestWorkerSweepGrowsAssignments(t *testing.T) {
	r := testRunner(t)
	res, err := r.CompareWorkers([]int{20, 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range res.Algorithms() {
		few, _ := res.Value(20, alg, MetricAssigned)
		many, _ := res.Value(50, alg, MetricAssigned)
		if many < few {
			t.Errorf("%s: assignments fell from %v to %v as |W| grew", alg, few, many)
		}
	}
}

func TestFormatTable(t *testing.T) {
	r := testRunner(t)
	res, err := r.CompareTasks([]int{30})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.FormatTable(&buf, MetricAI)
	out := buf.String()
	for _, token := range []string{"Fig. 9", "AI", "BK", "|S|", "MTA", "IA", "EIA", "DIA", "MI", "30"} {
		if !strings.Contains(out, token) {
			t.Errorf("table output missing %q:\n%s", token, out)
		}
	}
	var all bytes.Buffer
	res.FormatAll(&all, AllMetrics)
	for _, m := range AllMetrics {
		if !strings.Contains(all.String(), string(m)) {
			t.Errorf("FormatAll missing metric %s", m)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	r := testRunner(t)
	res, err := r.AblationTasks([]int{40})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+4 { // header + 4 variants × 1 sweep point
		t.Fatalf("CSV lines %d, want 5:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "figure,dataset,xlabel,x,alg") {
		t.Errorf("CSV header: %s", lines[0])
	}
	for _, l := range lines[1:] {
		if got := strings.Count(l, ","); got != 9 {
			t.Errorf("CSV row has %d commas, want 9: %s", got, l)
		}
	}
}

// TestWriteCSVRoundTripRFC4180: field values carrying commas, quotes
// and newlines must survive the CSV untouched (the old escaper
// rewrote commas to semicolons, silently corrupting values). Every
// field is gated against a conforming RFC-4180 parse-back.
func TestWriteCSVRoundTripRFC4180(t *testing.T) {
	res := &Result{
		Figure:  `Fig. 9, panel "a"`,
		Dataset: "BK",
		XLabel:  "|S|, tasks",
		Rows: []Row{
			{X: 30, Alg: `IA,"quoted"`, CPUms: 1.5, Assigned: 3, AI: 0.25, AP: 0.5, TravelKm: 7},
			{X: 0.125, Alg: "multi\nline", CPUms: 2.5, Assigned: 4, AI: 0.125, AP: 0.75, TravelKm: 8},
		},
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("CSV does not parse back: %v", err)
	}
	if len(recs) != 1+len(res.Rows) {
		t.Fatalf("parsed %d records, want %d", len(recs), 1+len(res.Rows))
	}
	for i, row := range res.Rows {
		want := []string{
			res.Figure, res.Dataset, res.XLabel,
			fmt.Sprintf("%g", row.X), row.Alg,
			fmt.Sprintf("%.6f", row.CPUms), fmt.Sprintf("%.2f", row.Assigned),
			fmt.Sprintf("%.6f", row.AI), fmt.Sprintf("%.6f", row.AP), fmt.Sprintf("%.6f", row.TravelKm),
		}
		if !reflect.DeepEqual(recs[i+1], want) {
			t.Errorf("row %d parsed back as %q, want %q", i, recs[i+1], want)
		}
	}
}

// TestFormatTableFullSizeMatchesValueScan gates the indexed FormatTable
// against the per-cell Value scan it replaced, on a synthetic result
// larger than any real figure (60 sweep values × 8 series, plus a
// duplicate cell and a hole, so first-match and missing-cell semantics
// are pinned too).
func TestFormatTableFullSizeMatchesValueScan(t *testing.T) {
	res := &Result{Figure: "Fig. X", Dataset: "BK", XLabel: "|S|"}
	const nx, na = 60, 8
	algs := make([]string, na)
	for a := range algs {
		algs[a] = fmt.Sprintf("ALG%d", a)
	}
	for x := 0; x < nx; x++ {
		for a, alg := range algs {
			if x == 17 && a == 3 { // hole: cell rendered as "-"
				continue
			}
			res.Rows = append(res.Rows, Row{
				X: float64(100 + x), Alg: alg,
				CPUms: float64(x * a), Assigned: float64(x + a),
				AI: float64(x) + float64(a)/16, AP: float64(a) + float64(x)/64, TravelKm: float64(x ^ a),
			})
		}
	}
	// Duplicate cell with different values: the first row must win.
	res.Rows = append(res.Rows, Row{X: 105, Alg: "ALG2", AI: -999})

	for _, m := range AllMetrics {
		var got bytes.Buffer
		res.FormatTable(&got, m)

		var want bytes.Buffer
		fmt.Fprintf(&want, "%s %s on %s — %s vs %s\n", res.Figure, m, res.Dataset, m, res.XLabel)
		fmt.Fprintf(&want, "%10s", res.XLabel)
		for _, a := range res.Algorithms() {
			fmt.Fprintf(&want, "%12s", a)
		}
		fmt.Fprintln(&want)
		for _, x := range res.Xs() {
			fmt.Fprintf(&want, "%10g", x)
			for _, a := range res.Algorithms() {
				v, ok := res.Value(x, a, m)
				if !ok {
					fmt.Fprintf(&want, "%12s", "-")
					continue
				}
				fmt.Fprintf(&want, "%12.4f", v)
			}
			fmt.Fprintln(&want)
		}
		if got.String() != want.String() {
			t.Fatalf("metric %s: indexed table diverges from the Value scan:\n%s\nwant:\n%s", m, got.String(), want.String())
		}
	}
}

func TestNewRunnerValidation(t *testing.T) {
	p := dataset.BrightkiteLike()
	p.NumUsers = 60
	p.NumVenues = 60
	p.Days = 4
	data, err := dataset.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(data, core.Config{}, Params{}); err == nil {
		t.Error("runner accepted empty evaluation days")
	}
}

func TestRunnerDeterministic(t *testing.T) {
	a := testRunner(t)
	b := testRunner(t)
	ra, err := a.AblationTasks([]int{40})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.AblationTasks([]int{40})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ra.Rows {
		x, y := ra.Rows[i], rb.Rows[i]
		// CPU differs between runs; everything else must match exactly.
		if x.Alg != y.Alg || x.X != y.X || x.Assigned != y.Assigned || x.AI != y.AI ||
			x.AP != y.AP || x.TravelKm != y.TravelKm {
			t.Fatalf("row %d differs:\n%+v\n%+v", i, x, y)
		}
	}
}

// stripCPU zeroes the wall-clock column, the one legitimate divergence
// between runs at different pool widths.
func stripCPU(res *Result) []Row {
	rows := make([]Row, len(res.Rows))
	copy(rows, res.Rows)
	for i := range rows {
		rows[i].CPUms = 0
	}
	return rows
}

func TestSweepParallelismInvariant(t *testing.T) {
	// Sweeps fan out (day × sweep value) jobs; every metric except the
	// wall-clock CPU column must match a sequential run exactly, at any
	// pool width.
	r := testRunner(t)
	t.Run("comparison", func(t *testing.T) {
		paralleltest.Invariant(t, func(par int) any {
			run := *r
			run.P.Parallelism = par
			res, err := run.CompareTasks([]int{30, 60})
			if err != nil {
				t.Fatal(err)
			}
			return stripCPU(res)
		})
	})
	t.Run("ablation", func(t *testing.T) {
		paralleltest.Invariant(t, func(par int) any {
			run := *r
			run.P.Parallelism = par
			res, err := run.AblationTasks([]int{40})
			if err != nil {
				t.Fatal(err)
			}
			return stripCPU(res)
		})
	})
}

func TestRunSweepFailFastSequential(t *testing.T) {
	// A poisoned job must surface its error, and the jobs queued behind
	// it must be skipped: sequential execution makes the skip count
	// deterministic. xs iterate x-major over the runner's two days, so
	// poisoning xs[1] fails at job index 2 and leaves jobs 3..7 unrun.
	r := testRunner(t)
	r.P.Parallelism = 1
	poison := errors.New("poisoned sweep job")
	var calls atomic.Int32
	_, err := r.runSweep(0, "x", []float64{1, 2, 3, 4}, []string{"s"},
		func(day int, x float64) ([]core.Metrics, error) {
			calls.Add(1)
			if x == 2 {
				return nil, poison
			}
			return []core.Metrics{{}}, nil
		})
	if !errors.Is(err, poison) {
		t.Fatalf("sweep error = %v, want the poisoned job's error", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("eval ran %d times, want 3 (two clean jobs, the poisoned one, rest skipped)", got)
	}
}

func TestRunSweepFailFastParallel(t *testing.T) {
	// Under fan-out the error must surface and later-queued jobs must be
	// skipped. Job 0 is always claimed first and is the poisoned one;
	// every clean eval blocks until the poison has fired and then sleeps,
	// so by the time any worker claims a second job the failure flag is
	// long set — if the fail-fast check were removed, all 16 evals would
	// run and the skip assertion below would catch it.
	r := testRunner(t)
	r.P.Parallelism = 8
	poison := errors.New("poisoned sweep job")
	poisoned := make(chan struct{})
	var calls atomic.Int32
	_, err := r.runSweep(0, "x", []float64{1, 2, 3, 4, 5, 6, 7, 8}, []string{"s"},
		func(day int, x float64) ([]core.Metrics, error) {
			calls.Add(1)
			if x == 1 && day == r.P.Days[0] { // job 0, the first claim
				close(poisoned)
				return nil, poison
			}
			<-poisoned
			time.Sleep(20 * time.Millisecond)
			return []core.Metrics{{}}, nil
		})
	if !errors.Is(err, poison) {
		t.Fatalf("sweep error = %v, want the poisoned job's error", err)
	}
	if got := calls.Load(); got < 1 || got > 15 {
		t.Errorf("eval ran %d of 16 jobs; fail-fast must skip at least the last-queued job", got)
	}
}

func TestRunSweepMultiplePoisonedJobs(t *testing.T) {
	// With several poisoned jobs a poisoned error always surfaces; the
	// sequential path deterministically reports the first job's error
	// (errs is scanned in job order), while fan-out may fail-fast-skip
	// the earlier job and report whichever poisoned job actually ran.
	r := testRunner(t)
	errA := errors.New("first poisoned job")
	errB := errors.New("second poisoned job")
	for _, par := range paralleltest.WorkerCounts {
		r.P.Parallelism = par
		_, err := r.runSweep(0, "x", []float64{1, 2}, []string{"s"},
			func(day int, x float64) ([]core.Metrics, error) {
				if x == 1 {
					return nil, errA
				}
				return nil, errB
			})
		if !errors.Is(err, errA) && !errors.Is(err, errB) {
			t.Fatalf("parallelism %d: error = %v, want a poisoned job's error", par, err)
		}
		if par == 1 && !errors.Is(err, errA) {
			t.Fatalf("sequential sweep error = %v, want the first job's (%v)", err, errA)
		}
	}
}
