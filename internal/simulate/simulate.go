// Package simulate runs a streaming spatial-crowdsourcing platform on
// top of a trained DITA framework: multiple assignment instants per day,
// where — per the paper's protocol — a worker stays online until
// assigned a task, and an unassigned task remains available until it
// expires (s.p + s.ϕ).
//
// The instant loop itself lives in internal/engine; this package is its
// deterministic replay driver. Platform.Run translates time-ordered
// arrival streams into engine events — admissions up to each grid
// instant, then the instant itself — against an integer instant grid, so
// a whole simulated horizon replays through exactly the machinery
// cmd/dita-serve runs live. Replay is the batch form and serving the
// streaming form of the same engine: fed the same event sequence they
// produce bit-identical results, which is what the serve CI smoke leg
// diffs byte for byte.
//
// Entities keep platform-stable identities for their whole lifetime
// (assigned by the engine at admission, in arrival order), so the
// influence session layer (core.Session) can cache per-entity state
// across instants instead of rebuilding the online phase from scratch
// each round.
package simulate

import (
	"fmt"
	"math"
	"time"

	"dita/internal/assign"
	"dita/internal/core"
	"dita/internal/engine"
	"dita/internal/influence"
)

// ArrivingWorker is a worker joining the platform at a given time. It is
// the engine's WorkerArrive payload; the alias keeps the replay driver's
// historical API.
type ArrivingWorker = engine.WorkerArrival

// ArrivingTask is a task published at a given time (the engine's
// TaskArrive payload).
type ArrivingTask = engine.TaskArrival

// Config drives a simulation run.
type Config struct {
	// Algorithm used at every instant.
	Algorithm assign.Algorithm
	// Components is the influence mask (influence.All for the full model).
	Components influence.Components
	// Step is the interval between assignment instants in hours.
	Step float64
	// Horizon is the simulated duration in hours, starting at Start.
	Start, Horizon float64
	// Seed feeds the influence session; per-task fold-in streams are
	// derived from it and the task's stable identity (randx.Mix), so no
	// per-instant seed exists to collide across instants.
	Seed uint64
	// Parallelism bounds the worker pool the online phase computes fresh
	// per-entity influence state on (<= 0 means all cores). Results are
	// bit-identical at any setting.
	Parallelism int
	// ColdPrepare disables the incremental session and rebuilds the full
	// influence state every instant (a single-use session per round). It
	// exists for equivalence testing and for benchmarking the cached
	// online phase against the cold one; results are identical either
	// way. It implies cold feasible pairs too: without a session there is
	// nowhere to carry the pair index.
	ColdPrepare bool
	// ColdPairs disables the incremental feasible-pair index and rescans
	// the full workers×tasks feasibility every instant
	// (assign.FeasiblePairs). Like ColdPrepare it exists for equivalence
	// testing and benchmarking; the emitted pairs are bit-identical
	// either way.
	ColdPairs bool
	// TiledColdPairs routes the ColdPairs rescan through the tiled
	// scanner (assign.TiledFeasiblePairs) on Parallelism pool workers
	// instead of the global grid scan, recording the instant's tile count
	// in InstantResult.Tiles. Pairs are bit-identical to the global scan;
	// the knob exists so the tiled pipeline can be driven (and diffed
	// against the global reference) end to end. Ignored unless ColdPairs
	// is in effect.
	TiledColdPairs bool
	// SessionCapacity bounds the influence session's per-entity caches
	// with deterministic FIFO eviction (0: unbounded). Memory-only;
	// results are bit-identical at any capacity. See
	// engine.Config.SessionCapacity.
	SessionCapacity int
}

// InstantResult records one assignment instant (see
// engine.InstantResult).
type InstantResult = engine.InstantResult

// Result aggregates a whole run.
type Result struct {
	Instants      []InstantResult
	TotalAssigned int
	// ExpiredTasks counts tasks that left the pool unserved.
	ExpiredTasks int
	// CompletionRate = assigned / (assigned + expired); 0 when no task
	// ever appeared.
	CompletionRate float64
}

// Platform replays arrival streams through the engine on a fixed instant
// grid; it is the engine's carry-over state plus the grid parameters.
type Platform struct {
	eng *engine.Engine
	cfg Config
}

// New returns an empty platform bound to a trained framework.
func New(fw *core.Framework, cfg Config) (*Platform, error) {
	if cfg.Step <= 0 {
		return nil, fmt.Errorf("simulate: non-positive step %v", cfg.Step)
	}
	if cfg.Horizon < 0 {
		return nil, fmt.Errorf("simulate: negative horizon %v", cfg.Horizon)
	}
	eng, err := engine.New(fw, engine.Config{
		Algorithm:       cfg.Algorithm,
		Components:      cfg.Components,
		Seed:            cfg.Seed,
		Parallelism:     cfg.Parallelism,
		ColdPrepare:     cfg.ColdPrepare,
		ColdPairs:       cfg.ColdPairs,
		TiledColdPairs:  cfg.TiledColdPairs,
		SessionCapacity: cfg.SessionCapacity,
		Clock:           monotonicClock(),
	})
	if err != nil {
		return nil, fmt.Errorf("simulate: %w", err)
	}
	return &Platform{eng: eng, cfg: cfg}, nil
}

// monotonicClock builds the engine's latency clock from the process
// monotonic clock. The reading's zero point (the clock's creation) is
// arbitrary: the engine only ever subtracts two readings.
func monotonicClock() engine.Clock {
	start := time.Now()                                      //dita:wallclock
	return func() time.Duration { return time.Since(start) } //dita:wallclock
}

// Run replays the arrival streams (each ordered by time) through the
// engine and returns the aggregated result. Instants are indexed by
// integer: instant i happens at Start + i*Step, so long horizons do not
// accumulate floating-point drift, and the instant count is fixed up
// front as ⌊Horizon/Step⌋ (with an epsilon absorbing binary rounding):
// a Horizon that is an exact decimal multiple of Step — 2.4 over steps
// of 0.1, say — includes its final instant even though the accumulated
// product overshoots the horizon by an ulp.
//
// Per the streaming protocol, arrivals with At/Publish <= now are
// admitted before instant now fires (identities assigned at admission,
// in arrival order: workers then tasks), and the instant's expiry sweep
// runs inside the engine before the snapshot.
func (p *Platform) Run(workers []ArrivingWorker, tasks []ArrivingTask) (*Result, error) {
	res := &Result{}
	wi, ti := 0, 0
	count := int(math.Floor(p.cfg.Horizon/p.cfg.Step + 1e-9))
	for i := 0; i <= count; i++ {
		now := p.cfg.Start + float64(i)*p.cfg.Step
		for wi < len(workers) && workers[wi].At <= now {
			if _, err := p.eng.Apply(engine.Event{Kind: engine.WorkerArrive, At: now, Worker: workers[wi]}); err != nil {
				return nil, err
			}
			wi++
		}
		for ti < len(tasks) && tasks[ti].Publish <= now {
			if _, err := p.eng.Apply(engine.Event{Kind: engine.TaskArrive, At: now, Task: tasks[ti]}); err != nil {
				return nil, err
			}
			ti++
		}
		res.Instants = append(res.Instants, p.eng.Fire(now))
	}
	t := p.eng.Totals()
	res.TotalAssigned = t.Assigned
	res.ExpiredTasks = t.Expired
	// Tasks still open at the horizon that can never be served count as
	// neither assigned nor expired; only actual expiries count against
	// the completion rate.
	if total := res.TotalAssigned + res.ExpiredTasks; total > 0 {
		res.CompletionRate = float64(res.TotalAssigned) / float64(total)
	}
	return res, nil
}

// Engine exposes the platform's underlying streaming engine.
func (p *Platform) Engine() *engine.Engine { return p.eng }

// Session returns the platform's influence session, or nil when the
// platform runs with ColdPrepare.
func (p *Platform) Session() *core.Session { return p.eng.Session() }

// Online returns the number of currently online (unassigned) workers.
func (p *Platform) Online() int { return p.eng.Online() }

// Open returns the number of currently open (unassigned, unexpired)
// tasks.
func (p *Platform) Open() int { return p.eng.Open() }
