// Package simulate runs a streaming spatial-crowdsourcing platform on
// top of a trained DITA framework: multiple assignment instants per day,
// where — per the paper's protocol — a worker stays online until
// assigned a task, and an unassigned task remains available until it
// expires (s.p + s.ϕ). Each instant the platform snapshots the currently
// available workers and tasks, runs an assignment algorithm, retires the
// matched pairs, and accumulates platform-level metrics.
//
// This is the bridge between the paper's single-instance formulation
// (internal/assign answers one instant) and what an operator would run
// in production: a loop of instants with carry-over state.
//
// Entities keep platform-stable identities for their whole lifetime:
// a worker's ID is assigned on arrival and a task keeps the ID it was
// published under, at every instant, so the influence session layer
// (core.Session) can cache per-entity state across instants instead of
// rebuilding the online phase from scratch each round. Assignment pairs
// reference the instant's snapshot positionally, and snapshot order
// equals pool order, so retirement needs no id translation.
package simulate

import (
	"fmt"
	"math"
	"time"

	"dita/internal/assign"
	"dita/internal/core"
	"dita/internal/geo"
	"dita/internal/influence"
	"dita/internal/model"
)

// ArrivingWorker is a worker joining the platform at a given time.
type ArrivingWorker struct {
	User   model.WorkerID
	Loc    geo.Point
	Radius float64
	At     float64 // arrival time, hours
}

// ArrivingTask is a task published at a given time.
type ArrivingTask struct {
	Loc        geo.Point
	Publish    float64
	Valid      float64
	Categories []model.CategoryID
	Venue      model.VenueID
}

// Config drives a simulation run.
type Config struct {
	// Algorithm used at every instant.
	Algorithm assign.Algorithm
	// Components is the influence mask (influence.All for the full model).
	Components influence.Components
	// Step is the interval between assignment instants in hours.
	Step float64
	// Horizon is the simulated duration in hours, starting at Start.
	Start, Horizon float64
	// Seed feeds the influence session; per-task fold-in streams are
	// derived from it and the task's stable identity (randx.Mix), so no
	// per-instant seed exists to collide across instants.
	Seed uint64
	// Parallelism bounds the worker pool the online phase computes fresh
	// per-entity influence state on (<= 0 means all cores). Results are
	// bit-identical at any setting.
	Parallelism int
	// ColdPrepare disables the incremental session and rebuilds the full
	// influence state every instant (a single-use session per round). It
	// exists for equivalence testing and for benchmarking the cached
	// online phase against the cold one; results are identical either
	// way. It implies cold feasible pairs too: without a session there is
	// nowhere to carry the pair index.
	ColdPrepare bool
	// ColdPairs disables the incremental feasible-pair index and rescans
	// the full workers×tasks feasibility every instant
	// (assign.FeasiblePairs). Like ColdPrepare it exists for equivalence
	// testing and benchmarking; the emitted pairs are bit-identical
	// either way.
	ColdPairs bool
	// TiledColdPairs routes the ColdPairs rescan through the tiled
	// scanner (assign.TiledFeasiblePairs) on Parallelism pool workers
	// instead of the global grid scan, recording the instant's tile count
	// in InstantResult.Tiles. Pairs are bit-identical to the global scan;
	// the knob exists so the tiled pipeline can be driven (and diffed
	// against the global reference) end to end. Ignored unless ColdPairs
	// is in effect.
	TiledColdPairs bool
}

// InstantResult records one assignment instant.
type InstantResult struct {
	At            float64
	OnlineWorkers int
	OpenTasks     int
	// Prepare is the online-phase latency of the instant: the time spent
	// building the influence evaluator (cached-session hits make this
	// collapse for carried-over entities), or — on an instant with an
	// empty pool side, where no assignment runs — the session's Sync,
	// which is the same cache maintenance without an evaluator.
	// Assignment time is in Metrics.CPU, matching the paper's phase
	// split.
	Prepare time.Duration
	// PairMaint is the feasible-pair latency of the instant: maintaining
	// the incremental pair index (or, under Config.ColdPairs /
	// ColdPrepare, rescanning the full workers×tasks feasibility).
	// Like Prepare it is excluded from Metrics.CPU.
	PairMaint time.Duration
	Metrics   core.Metrics
	// Tiles reports the instant's tiled-pipeline shape: feasibility-graph
	// component count and largest component for every busy instant, plus
	// the spatial tile count when the instant's pairs came from a tiled
	// cold scan (Config.TiledColdPairs; warm and global-cold instants
	// leave it zero).
	Tiles assign.TileStats
	// Pairs are the instant's matched worker-task pairs, referencing the
	// instant's snapshot positionally (snapshot order == pool order at
	// that instant).
	Pairs []model.Assignment
}

// Result aggregates a whole run.
type Result struct {
	Instants      []InstantResult
	TotalAssigned int
	// ExpiredTasks counts tasks that left the pool unserved.
	ExpiredTasks int
	// CompletionRate = assigned / (assigned + expired); 0 when no task
	// ever appeared.
	CompletionRate float64
}

// Platform is the carry-over state between instants.
type Platform struct {
	fw      *core.Framework
	cfg     Config
	sess    *core.Session
	workers []model.Worker // online, not yet assigned; ID is the stable arrival id
	tasks   []model.Task   // published, unexpired, unassigned; ID stable since publication
	nextTID model.TaskID
	nextWID model.WorkerID
	// usedW/usedT are reusable retirement marks sized to the pools, so
	// the hot instant loop rebuilds no maps.
	usedW, usedT []bool
}

// New returns an empty platform bound to a trained framework.
func New(fw *core.Framework, cfg Config) (*Platform, error) {
	if cfg.Step <= 0 {
		return nil, fmt.Errorf("simulate: non-positive step %v", cfg.Step)
	}
	if cfg.Horizon < 0 {
		return nil, fmt.Errorf("simulate: negative horizon %v", cfg.Horizon)
	}
	if cfg.Components == 0 {
		cfg.Components = influence.All
	}
	p := &Platform{fw: fw, cfg: cfg}
	if !cfg.ColdPrepare {
		p.sess = fw.PrepareSession(cfg.Components, cfg.Seed, cfg.Parallelism)
	}
	return p, nil
}

// Run executes the instant loop over the arrival streams (each ordered
// by time) and returns the aggregated result. Instants are indexed by
// integer: instant i happens at Start + i*Step, so long horizons do not
// accumulate floating-point drift, and the instant count is fixed up
// front as ⌊Horizon/Step⌋ (with an epsilon absorbing binary rounding):
// a Horizon that is an exact decimal multiple of Step — 2.4 over steps
// of 0.1, say — includes its final instant even though the accumulated
// product overshoots the horizon by an ulp.
func (p *Platform) Run(workers []ArrivingWorker, tasks []ArrivingTask) (*Result, error) {
	res := &Result{}
	wi, ti := 0, 0
	count := int(math.Floor(p.cfg.Horizon/p.cfg.Step + 1e-9))
	for i := 0; i <= count; i++ {
		now := p.cfg.Start + float64(i)*p.cfg.Step
		// Admit arrivals up to this instant; identities are assigned here
		// and stay stable for the entity's whole platform lifetime.
		for wi < len(workers) && workers[wi].At <= now {
			a := workers[wi]
			p.workers = append(p.workers, model.Worker{
				ID: p.nextWID, User: a.User, Loc: a.Loc, Radius: a.Radius,
			})
			p.nextWID++
			wi++
		}
		for ti < len(tasks) && tasks[ti].Publish <= now {
			a := tasks[ti]
			p.tasks = append(p.tasks, model.Task{
				ID: p.nextTID, Loc: a.Loc, Publish: a.Publish,
				Valid: a.Valid, Categories: a.Categories, Venue: a.Venue,
			})
			p.nextTID++
			ti++
		}
		// Expire stale tasks.
		kept := p.tasks[:0]
		for _, t := range p.tasks {
			if t.Expiry() < now {
				res.ExpiredTasks++
				continue
			}
			kept = append(kept, t)
		}
		p.tasks = kept

		if len(p.workers) == 0 || len(p.tasks) == 0 {
			// No assignment to run, but the session caches still track the
			// pool: new arrivals are admitted (their influence state and
			// feasible pairs land before the next busy instant) and
			// departed entities evicted from both the influence cache and
			// the pair index. Sync is warm online-phase work like any
			// other instant's Prepare, so it is timed into Prepare —
			// leaving it untimed would under-report the session's cost on
			// sparse streams where many instants run no assignment.
			var prep, pairMaint time.Duration
			if p.sess != nil {
				inst := &model.Instance{Now: now, Workers: p.workers, Tasks: p.tasks}
				prepStart := time.Now() //dita:wallclock
				p.sess.Sync(inst)
				prep = time.Since(prepStart) //dita:wallclock
				if !p.cfg.ColdPairs {
					pairStart := time.Now() //dita:wallclock
					p.sess.Pairs(inst)
					pairMaint = time.Since(pairStart) //dita:wallclock
				}
			}
			res.Instants = append(res.Instants, InstantResult{
				At: now, OnlineWorkers: len(p.workers), OpenTasks: len(p.tasks),
				Prepare: prep, PairMaint: pairMaint,
			})
			continue
		}

		inst := p.instance(now)
		prepStart := time.Now() //dita:wallclock
		var ev *influence.Evaluator
		if p.cfg.ColdPrepare {
			ev = p.fw.PrepareSession(p.cfg.Components, p.cfg.Seed, p.cfg.Parallelism).Prepare(inst)
		} else {
			ev = p.sess.Prepare(inst)
		}
		prep := time.Since(prepStart) //dita:wallclock
		pairStart := time.Now()       //dita:wallclock
		var pairs []assign.Pair
		scanTiles := 0
		if p.cfg.ColdPairs || p.sess == nil {
			if p.cfg.TiledColdPairs {
				pairs, scanTiles = assign.TiledFeasiblePairs(inst, p.fw.Speed(), p.cfg.Parallelism)
			} else {
				pairs = assign.FeasiblePairs(inst, p.fw.Speed())
			}
		} else {
			pairs = p.sess.Pairs(inst)
		}
		pairMaint := time.Since(pairStart) //dita:wallclock
		set, m, ts := p.fw.AssignPreparedPairsTiled(inst, ev, p.cfg.Algorithm, pairs, p.cfg.Parallelism)
		ts.Tiles = scanTiles
		res.Instants = append(res.Instants, InstantResult{
			At: now, OnlineWorkers: len(p.workers), OpenTasks: len(p.tasks),
			Prepare: prep, PairMaint: pairMaint, Metrics: m, Tiles: ts, Pairs: set.Pairs,
		})
		res.TotalAssigned += set.Len()
		p.retire(set)
	}
	// Tasks still open at the horizon that can never be served count as
	// neither assigned nor expired; only actual expiries count against
	// the completion rate.
	if total := res.TotalAssigned + res.ExpiredTasks; total > 0 {
		res.CompletionRate = float64(res.TotalAssigned) / float64(total)
	}
	return res, nil
}

// instance materializes the current pool as a model.Instance. Entities
// keep their stable platform ids; position i of the instance is position
// i of the pool, which is the instance-local mapping retire relies on.
func (p *Platform) instance(now float64) *model.Instance {
	inst := &model.Instance{Now: now}
	inst.Workers = append([]model.Worker(nil), p.workers...)
	inst.Tasks = append([]model.Task(nil), p.tasks...)
	return inst
}

// retire removes assigned workers and tasks from the pool (workers go
// offline once assigned, tasks are served once). Pairs index the
// instant's snapshot, whose order equals pool order. The mark slices are
// reused across instants and reset while compacting, so the hot loop
// allocates nothing once the pools reach steady size.
func (p *Platform) retire(set *model.AssignmentSet) {
	p.usedW = resize(p.usedW, len(p.workers))
	p.usedT = resize(p.usedT, len(p.tasks))
	for _, pr := range set.Pairs {
		p.usedW[pr.Worker] = true
		p.usedT[pr.Task] = true
	}
	keptW := p.workers[:0]
	for i, w := range p.workers {
		used := p.usedW[i]
		p.usedW[i] = false
		if !used {
			keptW = append(keptW, w)
		}
	}
	p.workers = keptW
	keptT := p.tasks[:0]
	for i, t := range p.tasks {
		used := p.usedT[i]
		p.usedT[i] = false
		if !used {
			keptT = append(keptT, t)
		}
	}
	p.tasks = keptT
}

// resize returns marks with length n, reusing its backing array when it
// is large enough. Reused entries are already false: retire resets every
// mark while compacting, and fresh allocations are zeroed.
func resize(marks []bool, n int) []bool {
	if cap(marks) < n {
		return make([]bool, n)
	}
	return marks[:n]
}

// Session returns the platform's influence session, or nil when the
// platform runs with ColdPrepare.
func (p *Platform) Session() *core.Session { return p.sess }

// Online returns the number of currently online (unassigned) workers.
func (p *Platform) Online() int { return len(p.workers) }

// Open returns the number of currently open (unassigned, unexpired)
// tasks.
func (p *Platform) Open() int { return len(p.tasks) }
