// Package simulate runs a streaming spatial-crowdsourcing platform on
// top of a trained DITA framework: multiple assignment instants per day,
// where — per the paper's protocol — a worker stays online until
// assigned a task, and an unassigned task remains available until it
// expires (s.p + s.ϕ). Each instant the platform snapshots the currently
// available workers and tasks, runs an assignment algorithm, retires the
// matched pairs, and accumulates platform-level metrics.
//
// This is the bridge between the paper's single-instance formulation
// (internal/assign answers one instant) and what an operator would run
// in production: a loop of instants with carry-over state.
package simulate

import (
	"fmt"

	"dita/internal/assign"
	"dita/internal/core"
	"dita/internal/geo"
	"dita/internal/influence"
	"dita/internal/model"
)

// ArrivingWorker is a worker joining the platform at a given time.
type ArrivingWorker struct {
	User   model.WorkerID
	Loc    geo.Point
	Radius float64
	At     float64 // arrival time, hours
}

// ArrivingTask is a task published at a given time.
type ArrivingTask struct {
	Loc        geo.Point
	Publish    float64
	Valid      float64
	Categories []model.CategoryID
	Venue      model.VenueID
}

// Config drives a simulation run.
type Config struct {
	// Algorithm used at every instant.
	Algorithm assign.Algorithm
	// Components is the influence mask (influence.All for the full model).
	Components influence.Components
	// Step is the interval between assignment instants in hours.
	Step float64
	// Horizon is the simulated duration in hours, starting at Start.
	Start, Horizon float64
	// Seed feeds the per-instant influence preparation.
	Seed uint64
}

// InstantResult records one assignment instant.
type InstantResult struct {
	At            float64
	OnlineWorkers int
	OpenTasks     int
	Metrics       core.Metrics
}

// Result aggregates a whole run.
type Result struct {
	Instants      []InstantResult
	TotalAssigned int
	// ExpiredTasks counts tasks that left the pool unserved.
	ExpiredTasks int
	// CompletionRate = assigned / (assigned + expired); 0 when no task
	// ever appeared.
	CompletionRate float64
}

// Platform is the carry-over state between instants.
type Platform struct {
	fw      *core.Framework
	cfg     Config
	workers []model.Worker // online, not yet assigned
	tasks   []model.Task   // published, unexpired, unassigned
	nextTID model.TaskID
}

// New returns an empty platform bound to a trained framework.
func New(fw *core.Framework, cfg Config) (*Platform, error) {
	if cfg.Step <= 0 {
		return nil, fmt.Errorf("simulate: non-positive step %v", cfg.Step)
	}
	if cfg.Horizon < 0 {
		return nil, fmt.Errorf("simulate: negative horizon %v", cfg.Horizon)
	}
	if cfg.Components == 0 {
		cfg.Components = influence.All
	}
	return &Platform{fw: fw, cfg: cfg}, nil
}

// Run executes the instant loop over the arrival streams (each ordered
// by time) and returns the aggregated result.
func (p *Platform) Run(workers []ArrivingWorker, tasks []ArrivingTask) (*Result, error) {
	res := &Result{}
	wi, ti := 0, 0
	end := p.cfg.Start + p.cfg.Horizon
	for now := p.cfg.Start; now <= end; now += p.cfg.Step {
		// Admit arrivals up to this instant.
		for wi < len(workers) && workers[wi].At <= now {
			a := workers[wi]
			p.workers = append(p.workers, model.Worker{
				User: a.User, Loc: a.Loc, Radius: a.Radius,
			})
			wi++
		}
		for ti < len(tasks) && tasks[ti].Publish <= now {
			a := tasks[ti]
			p.tasks = append(p.tasks, model.Task{
				ID: p.nextTID, Loc: a.Loc, Publish: a.Publish,
				Valid: a.Valid, Categories: a.Categories, Venue: a.Venue,
			})
			p.nextTID++
			ti++
		}
		// Expire stale tasks.
		kept := p.tasks[:0]
		for _, t := range p.tasks {
			if t.Expiry() < now {
				res.ExpiredTasks++
				continue
			}
			kept = append(kept, t)
		}
		p.tasks = kept

		if len(p.workers) == 0 || len(p.tasks) == 0 {
			res.Instants = append(res.Instants, InstantResult{
				At: now, OnlineWorkers: len(p.workers), OpenTasks: len(p.tasks),
			})
			continue
		}

		inst := p.instance(now)
		ev := p.fw.Prepare(inst, p.cfg.Components, p.cfg.Seed+uint64(now*64))
		set, m := p.fw.AssignPrepared(inst, ev, p.cfg.Algorithm, nil)
		res.Instants = append(res.Instants, InstantResult{
			At: now, OnlineWorkers: len(p.workers), OpenTasks: len(p.tasks), Metrics: m,
		})
		res.TotalAssigned += set.Len()
		p.retire(inst, set)
	}
	// Tasks still open at the horizon that can never be served count as
	// neither assigned nor expired; only actual expiries count against
	// the completion rate.
	if total := res.TotalAssigned + res.ExpiredTasks; total > 0 {
		res.CompletionRate = float64(res.TotalAssigned) / float64(total)
	}
	return res, nil
}

// instance materializes the current pool as a model.Instance with dense
// instance-local ids.
func (p *Platform) instance(now float64) *model.Instance {
	inst := &model.Instance{Now: now}
	inst.Workers = make([]model.Worker, len(p.workers))
	for i, w := range p.workers {
		w.ID = model.WorkerID(i)
		inst.Workers[i] = w
	}
	inst.Tasks = make([]model.Task, len(p.tasks))
	copy(inst.Tasks, p.tasks)
	for i := range inst.Tasks {
		inst.Tasks[i].ID = model.TaskID(i)
	}
	return inst
}

// retire removes assigned workers and tasks from the pool (workers go
// offline once assigned, tasks are served once).
func (p *Platform) retire(inst *model.Instance, set *model.AssignmentSet) {
	usedW := make(map[int]bool, set.Len())
	usedT := make(map[int]bool, set.Len())
	for _, pr := range set.Pairs {
		usedW[int(pr.Worker)] = true
		usedT[int(pr.Task)] = true
	}
	keptW := p.workers[:0]
	for i, w := range p.workers {
		if !usedW[i] {
			keptW = append(keptW, w)
		}
	}
	p.workers = keptW
	keptT := p.tasks[:0]
	for i, t := range p.tasks {
		if !usedT[i] {
			keptT = append(keptT, t)
		}
	}
	p.tasks = keptT
}

// Online returns the number of currently online (unassigned) workers.
func (p *Platform) Online() int { return len(p.workers) }

// Open returns the number of currently open (unassigned, unexpired)
// tasks.
func (p *Platform) Open() int { return len(p.tasks) }
