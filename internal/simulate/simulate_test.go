package simulate

import (
	"testing"

	"dita/internal/assign"
	"dita/internal/core"
	"dita/internal/dataset"
	"dita/internal/geo"
	"dita/internal/lda"
	"dita/internal/model"
	"dita/internal/randx"
)

func testFramework(t *testing.T) (*core.Framework, *dataset.Data) {
	t.Helper()
	p := dataset.BrightkiteLike()
	p.NumUsers = 150
	p.NumVenues = 200
	p.Days = 6
	p.Seed = 21
	data, err := dataset.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cutoff := 5 * 24.0
	docs, vocab := data.Documents(cutoff)
	fw, err := core.Train(core.TrainingData{
		Graph:     data.Graph,
		Histories: data.HistoriesBefore(cutoff),
		Documents: docs,
		Vocab:     vocab,
		Records:   data.CheckInsBefore(cutoff),
	}, core.Config{LDA: lda.Config{Topics: 8, TrainIters: 30}})
	if err != nil {
		t.Fatal(err)
	}
	return fw, data
}

// streams builds worker/task arrival streams over one simulated day.
func streams(data *dataset.Data, n int, seed uint64) ([]ArrivingWorker, []ArrivingTask) {
	rng := randx.New(seed)
	var ws []ArrivingWorker
	var ts []ArrivingTask
	for i := 0; i < n; i++ {
		u := model.WorkerID(rng.Intn(data.Params.NumUsers))
		ws = append(ws, ArrivingWorker{
			User:   u,
			Loc:    data.Homes[u],
			Radius: 25,
			At:     120 + rng.Float64()*12,
		})
		v := data.Venues[rng.Intn(len(data.Venues))]
		ts = append(ts, ArrivingTask{
			Loc: v.Loc, Publish: 120 + rng.Float64()*12, Valid: 3 + rng.Float64()*3,
			Categories: v.Categories, Venue: v.ID,
		})
	}
	sortByAt(ws)
	sortByPublish(ts)
	return ws, ts
}

func sortByAt(ws []ArrivingWorker) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].At < ws[j-1].At; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

func sortByPublish(ts []ArrivingTask) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Publish < ts[j-1].Publish; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func TestNewValidation(t *testing.T) {
	fw, _ := testFramework(t)
	if _, err := New(fw, Config{Step: 0}); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := New(fw, Config{Step: 1, Horizon: -1}); err == nil {
		t.Error("negative horizon accepted")
	}
}

func TestRunAssignsAndRetires(t *testing.T) {
	fw, data := testFramework(t)
	ws, ts := streams(data, 40, 1)
	p, err := New(fw, Config{Algorithm: assign.IA, Step: 2, Start: 120, Horizon: 14, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(ws, ts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAssigned == 0 {
		t.Fatal("streaming run assigned nothing")
	}
	if res.TotalAssigned > 40 {
		t.Fatalf("assigned %d > 40 offered tasks", res.TotalAssigned)
	}
	if len(res.Instants) == 0 {
		t.Fatal("no instants recorded")
	}
	// Completion accounting is consistent.
	if res.CompletionRate < 0 || res.CompletionRate > 1 {
		t.Errorf("completion rate %v", res.CompletionRate)
	}
	// Workers go offline once assigned: online count at the end is the
	// arrivals minus total assigned (no worker re-enters).
	if got := p.Online(); got != len(ws)-res.TotalAssigned {
		t.Errorf("online %d, want %d", got, len(ws)-res.TotalAssigned)
	}
}

func TestTasksExpireUnserved(t *testing.T) {
	fw, _ := testFramework(t)
	// One task with no feasible worker ever: it must expire, not linger.
	p, err := New(fw, Config{Algorithm: assign.IA, Step: 1, Start: 0, Horizon: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tasks := []ArrivingTask{{Loc: geo.Point{X: 1, Y: 1}, Publish: 0, Valid: 2, Venue: 1}}
	res, err := p.Run(nil, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpiredTasks != 1 {
		t.Errorf("expired %d, want 1", res.ExpiredTasks)
	}
	if res.TotalAssigned != 0 || res.CompletionRate != 0 {
		t.Errorf("assigned %d rate %v on an unservable stream", res.TotalAssigned, res.CompletionRate)
	}
	if p.Open() != 0 {
		t.Errorf("expired task still open")
	}
}

func TestLaterArrivalsServedByLaterInstants(t *testing.T) {
	fw, data := testFramework(t)
	// A worker arriving at hour 126 cannot serve a task expiring at 124,
	// but can serve one expiring at 130.
	u := model.WorkerID(3)
	ws := []ArrivingWorker{{User: u, Loc: data.Homes[u], Radius: 1000, At: 126}}
	ts := []ArrivingTask{
		{Loc: data.Homes[u], Publish: 120, Valid: 4, Venue: 1},  // expires 124
		{Loc: data.Homes[u], Publish: 120, Valid: 10, Venue: 2}, // expires 130
	}
	p, err := New(fw, Config{Algorithm: assign.MTA, Step: 1, Start: 120, Horizon: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(ws, ts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAssigned != 1 {
		t.Fatalf("assigned %d, want exactly 1", res.TotalAssigned)
	}
	if res.ExpiredTasks != 1 {
		t.Fatalf("expired %d, want 1", res.ExpiredTasks)
	}
	if res.CompletionRate != 0.5 {
		t.Errorf("completion rate %v, want 0.5", res.CompletionRate)
	}
}

func TestSmallerStepServesAtLeastAsWell(t *testing.T) {
	// Assigning more frequently can only help completion (tasks get
	// matched before expiring).
	fw, data := testFramework(t)
	ws, ts := streams(data, 30, 9)
	run := func(step float64) *Result {
		p, err := New(fw, Config{Algorithm: assign.IA, Step: step, Start: 120, Horizon: 14, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(ws, ts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fine := run(1)
	coarse := run(7)
	if fine.TotalAssigned < coarse.TotalAssigned {
		t.Errorf("finer stepping assigned %d < coarse %d", fine.TotalAssigned, coarse.TotalAssigned)
	}
}

func TestAllAlgorithmsRunStreaming(t *testing.T) {
	fw, data := testFramework(t)
	ws, ts := streams(data, 25, 4)
	for _, alg := range assign.Algorithms {
		p, err := New(fw, Config{Algorithm: alg, Step: 3, Start: 120, Horizon: 12, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(ws, ts)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.TotalAssigned == 0 {
			t.Errorf("%v assigned nothing in streaming mode", alg)
		}
	}
}
