package simulate

import (
	"reflect"
	"testing"
	"time"

	"dita/internal/assign"
	"dita/internal/core"
	"dita/internal/dataset"
	"dita/internal/geo"
	"dita/internal/lda"
	"dita/internal/model"
	"dita/internal/paralleltest"
	"dita/internal/randx"
)

func testFramework(t *testing.T) (*core.Framework, *dataset.Data) {
	t.Helper()
	p := dataset.BrightkiteLike()
	p.NumUsers = 150
	p.NumVenues = 200
	p.Days = 6
	p.Seed = 21
	data, err := dataset.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cutoff := 5 * 24.0
	docs, vocab := data.Documents(cutoff)
	fw, err := core.Train(core.TrainingData{
		Graph:     data.Graph,
		Histories: data.HistoriesBefore(cutoff),
		Documents: docs,
		Vocab:     vocab,
		Records:   data.CheckInsBefore(cutoff),
	}, core.Config{LDA: lda.Config{Topics: 8, TrainIters: 30}})
	if err != nil {
		t.Fatal(err)
	}
	return fw, data
}

// streams builds worker/task arrival streams over one simulated day.
func streams(data *dataset.Data, n int, seed uint64) ([]ArrivingWorker, []ArrivingTask) {
	rng := randx.New(seed)
	var ws []ArrivingWorker
	var ts []ArrivingTask
	for i := 0; i < n; i++ {
		u := model.WorkerID(rng.Intn(data.Params.NumUsers))
		ws = append(ws, ArrivingWorker{
			User:   u,
			Loc:    data.Homes[u],
			Radius: 25,
			At:     120 + rng.Float64()*12,
		})
		v := data.Venues[rng.Intn(len(data.Venues))]
		ts = append(ts, ArrivingTask{
			Loc: v.Loc, Publish: 120 + rng.Float64()*12, Valid: 3 + rng.Float64()*3,
			Categories: v.Categories, Venue: v.ID,
		})
	}
	sortByAt(ws)
	sortByPublish(ts)
	return ws, ts
}

func sortByAt(ws []ArrivingWorker) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].At < ws[j-1].At; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

func sortByPublish(ts []ArrivingTask) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Publish < ts[j-1].Publish; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func TestNewValidation(t *testing.T) {
	fw, _ := testFramework(t)
	if _, err := New(fw, Config{Step: 0}); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := New(fw, Config{Step: 1, Horizon: -1}); err == nil {
		t.Error("negative horizon accepted")
	}
}

func TestRunAssignsAndRetires(t *testing.T) {
	fw, data := testFramework(t)
	ws, ts := streams(data, 40, 1)
	p, err := New(fw, Config{Algorithm: assign.IA, Step: 2, Start: 120, Horizon: 14, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(ws, ts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAssigned == 0 {
		t.Fatal("streaming run assigned nothing")
	}
	if res.TotalAssigned > 40 {
		t.Fatalf("assigned %d > 40 offered tasks", res.TotalAssigned)
	}
	if len(res.Instants) == 0 {
		t.Fatal("no instants recorded")
	}
	// Completion accounting is consistent.
	if res.CompletionRate < 0 || res.CompletionRate > 1 {
		t.Errorf("completion rate %v", res.CompletionRate)
	}
	// Workers go offline once assigned: online count at the end is the
	// arrivals minus total assigned (no worker re-enters).
	if got := p.Online(); got != len(ws)-res.TotalAssigned {
		t.Errorf("online %d, want %d", got, len(ws)-res.TotalAssigned)
	}
}

func TestTasksExpireUnserved(t *testing.T) {
	fw, _ := testFramework(t)
	// One task with no feasible worker ever: it must expire, not linger.
	p, err := New(fw, Config{Algorithm: assign.IA, Step: 1, Start: 0, Horizon: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tasks := []ArrivingTask{{Loc: geo.Point{X: 1, Y: 1}, Publish: 0, Valid: 2, Venue: 1}}
	res, err := p.Run(nil, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpiredTasks != 1 {
		t.Errorf("expired %d, want 1", res.ExpiredTasks)
	}
	if res.TotalAssigned != 0 || res.CompletionRate != 0 {
		t.Errorf("assigned %d rate %v on an unservable stream", res.TotalAssigned, res.CompletionRate)
	}
	if p.Open() != 0 {
		t.Errorf("expired task still open")
	}
}

func TestLaterArrivalsServedByLaterInstants(t *testing.T) {
	fw, data := testFramework(t)
	// A worker arriving at hour 126 cannot serve a task expiring at 124,
	// but can serve one expiring at 130.
	u := model.WorkerID(3)
	ws := []ArrivingWorker{{User: u, Loc: data.Homes[u], Radius: 1000, At: 126}}
	ts := []ArrivingTask{
		{Loc: data.Homes[u], Publish: 120, Valid: 4, Venue: 1},  // expires 124
		{Loc: data.Homes[u], Publish: 120, Valid: 10, Venue: 2}, // expires 130
	}
	p, err := New(fw, Config{Algorithm: assign.MTA, Step: 1, Start: 120, Horizon: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(ws, ts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAssigned != 1 {
		t.Fatalf("assigned %d, want exactly 1", res.TotalAssigned)
	}
	if res.ExpiredTasks != 1 {
		t.Fatalf("expired %d, want 1", res.ExpiredTasks)
	}
	if res.CompletionRate != 0.5 {
		t.Errorf("completion rate %v, want 0.5", res.CompletionRate)
	}
}

func TestSmallerStepServesAtLeastAsWell(t *testing.T) {
	// Assigning more frequently can only help completion (tasks get
	// matched before expiring).
	fw, data := testFramework(t)
	ws, ts := streams(data, 30, 9)
	run := func(step float64) *Result {
		p, err := New(fw, Config{Algorithm: assign.IA, Step: step, Start: 120, Horizon: 14, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(ws, ts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fine := run(1)
	coarse := run(7)
	if fine.TotalAssigned < coarse.TotalAssigned {
		t.Errorf("finer stepping assigned %d < coarse %d", fine.TotalAssigned, coarse.TotalAssigned)
	}
}

// normalize strips the only legitimately run-dependent values — wall
// clock measurements — so results can be compared bit for bit.
func normalize(res *Result) *Result {
	out := *res
	out.Instants = append([]InstantResult(nil), res.Instants...)
	for i := range out.Instants {
		out.Instants[i].Prepare = 0
		out.Instants[i].PairMaint = 0
		out.Instants[i].Metrics.CPU = 0
	}
	return &out
}

// TestSessionMatchesColdPrepareStreaming is the acceptance gate of the
// incremental online phase: over a multi-instant run with arrivals,
// expiries and carry-over, the warm session must produce identical
// assignment sets and bit-identical metrics to rebuilding the influence
// state cold every instant — at Parallelism 1, 2 and 8. (Evaluator-state
// equality is asserted at the influence layer; here the equality covers
// everything downstream of the evaluator.)
func TestSessionMatchesColdPrepareStreaming(t *testing.T) {
	fw, data := testFramework(t)
	ws, ts := streams(data, 50, 11)
	run := func(cold bool, par int) *Result {
		p, err := New(fw, Config{
			Algorithm: assign.IA, Step: 2, Start: 120, Horizon: 16,
			Seed: 5, Parallelism: par, ColdPrepare: cold,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(ws, ts)
		if err != nil {
			t.Fatal(err)
		}
		return normalize(res)
	}
	want := run(true, 1)
	if want.TotalAssigned == 0 {
		t.Fatal("equivalence run assigned nothing; streams too sparse to gate anything")
	}
	for _, par := range paralleltest.WorkerCounts {
		if got := run(false, par); !reflect.DeepEqual(want, got) {
			t.Fatalf("parallelism %d: session-backed run diverged from cold per-instant Prepare", par)
		}
		if got := run(true, par); !reflect.DeepEqual(want, got) {
			t.Fatalf("parallelism %d: cold run not parallelism-invariant", par)
		}
	}
}

// TestRunParallelismInvariant registers the streaming loop with the
// shared determinism harness.
func TestRunParallelismInvariant(t *testing.T) {
	fw, data := testFramework(t)
	ws, ts := streams(data, 40, 3)
	paralleltest.Invariant(t, func(par int) any {
		p, err := New(fw, Config{
			Algorithm: assign.EIA, Step: 2, Start: 120, Horizon: 14,
			Seed: 8, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(ws, ts)
		if err != nil {
			t.Fatal(err)
		}
		return normalize(res)
	})
}

// TestLongHorizonDeterminismAndEviction runs several simulated days with
// staggered arrivals and short task lifetimes, so the pool churns
// through many carry-over generations: tasks expire unserved, workers
// linger across instants, and the session cache must keep evicting. The
// run must be deterministic run to run, the instant grid must not drift,
// and the cache must end bounded by the final pool.
func TestLongHorizonDeterminismAndEviction(t *testing.T) {
	fw, data := testFramework(t)
	rng := randx.New(13)
	var ws []ArrivingWorker
	var ts []ArrivingTask
	const days = 4
	for d := 0; d < days; d++ {
		base := 120.0 + float64(d)*24
		for i := 0; i < 25; i++ {
			u := model.WorkerID(rng.Intn(data.Params.NumUsers))
			ws = append(ws, ArrivingWorker{
				User: u, Loc: data.Homes[u], Radius: 25, At: base + rng.Float64()*20,
			})
			v := data.Venues[rng.Intn(len(data.Venues))]
			ts = append(ts, ArrivingTask{
				Loc: v.Loc, Publish: base + rng.Float64()*20, Valid: 1 + rng.Float64()*4,
				Categories: v.Categories, Venue: v.ID,
			})
		}
	}
	sortByAt(ws)
	sortByPublish(ts)
	run := func() (*Result, *Platform) {
		p, err := New(fw, Config{
			Algorithm: assign.IA, Step: 1.5, Start: 120, Horizon: float64(days)*24 + 6,
			Seed: 21, Parallelism: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(ws, ts)
		if err != nil {
			t.Fatal(err)
		}
		return normalize(res), p
	}
	a, pa := run()
	b, _ := run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("long-horizon run is not deterministic")
	}
	if a.TotalAssigned == 0 || a.ExpiredTasks == 0 {
		t.Fatalf("horizon covered no churn: %d assigned, %d expired — the test needs both",
			a.TotalAssigned, a.ExpiredTasks)
	}
	// The instant grid is an exact integer lattice: no float drift.
	for i, in := range a.Instants {
		if want := 120 + float64(i)*1.5; in.At != want {
			t.Fatalf("instant %d at %v, want exactly %v", i, in.At, want)
		}
	}
	// Carry-over eviction: the session cache cannot exceed the platform's
	// final live pool (every assigned or expired entity must be gone).
	sess := pa.Session().Influence()
	if sess.CachedTasks() > pa.Open() {
		t.Errorf("session caches %d tasks but only %d are open", sess.CachedTasks(), pa.Open())
	}
	if sess.CachedWorkers() > pa.Online() {
		t.Errorf("session caches %d workers but only %d are online", sess.CachedWorkers(), pa.Online())
	}
}

// TestHorizonExactMultipleKeepsFinalInstant is the regression gate for
// the instant-count rule: now = Start + i*Step accumulates ulp error, so
// the pre-fix loop condition `now > end` dropped the final instant
// whenever Horizon was an exact decimal — but not binary — multiple of
// Step (0.1*24 = 2.4000000000000004 > 2.4). The instant count is now
// fixed up front as ⌊Horizon/Step + ε⌋ + 1.
func TestHorizonExactMultipleKeepsFinalInstant(t *testing.T) {
	fw, _ := testFramework(t)
	cases := []struct {
		step, horizon float64
		want          int // ⌊horizon/step⌋ + 1 in exact arithmetic
	}{
		{0.1, 2.4, 25}, // drifts: 0.1*24 > 2.4 in float64
		{0.1, 0.3, 4},  // drifts: 0.1*3 > 0.3
		{0.2, 4.2, 22}, // no drift: control
		{0.3, 0.9, 4},  // no drift: control
		{2, 14, 8},     // integral grid: control
	}
	for _, c := range cases {
		p, err := New(fw, Config{Algorithm: assign.IA, Step: c.step, Start: 0, Horizon: c.horizon, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(res.Instants); got != c.want {
			t.Errorf("step %v horizon %v: %d instants, want %d", c.step, c.horizon, got, c.want)
		}
	}
}

// TestIncrementalPairsStreamingEquivalence is the tentpole's acceptance
// gate at the platform layer: over a 200+-instant churn run (staggered
// arrivals, short task lifetimes, retirements at every matching
// instant), the incremental pair index must produce results identical to
// rescanning feasibility cold every instant — at Parallelism 1, 2 and 8
// — and its carry-over state must stay bounded by the live pool.
func TestIncrementalPairsStreamingEquivalence(t *testing.T) {
	fw, data := testFramework(t)
	rng := randx.New(17)
	var ws []ArrivingWorker
	var ts []ArrivingTask
	const days = 4
	for d := 0; d < days; d++ {
		base := 120.0 + float64(d)*24
		for i := 0; i < 25; i++ {
			u := model.WorkerID(rng.Intn(data.Params.NumUsers))
			ws = append(ws, ArrivingWorker{
				User: u, Loc: data.Homes[u], Radius: 25, At: base + rng.Float64()*20,
			})
			v := data.Venues[rng.Intn(len(data.Venues))]
			ts = append(ts, ArrivingTask{
				Loc: v.Loc, Publish: base + rng.Float64()*20, Valid: 1 + rng.Float64()*4,
				Categories: v.Categories, Venue: v.ID,
			})
		}
	}
	sortByAt(ws)
	sortByPublish(ts)
	run := func(coldPairs bool, par int) (*Result, *Platform) {
		p, err := New(fw, Config{
			Algorithm: assign.IA, Step: 0.5, Start: 120, Horizon: float64(days)*24 + 6,
			Seed: 23, Parallelism: par, ColdPairs: coldPairs,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(ws, ts)
		if err != nil {
			t.Fatal(err)
		}
		return res, p
	}
	wantRaw, _ := run(true, 1)
	want := normalize(wantRaw)
	if got := len(want.Instants); got < 200 {
		t.Fatalf("churn run covers %d instants, the acceptance gate needs >= 200", got)
	}
	if want.TotalAssigned == 0 || want.ExpiredTasks == 0 {
		t.Fatalf("churn run saw %d assigned, %d expired — the gate needs arrivals, retirements and expiries",
			want.TotalAssigned, want.ExpiredTasks)
	}
	for pi, par := range paralleltest.WorkerCounts {
		gotRaw, p := run(false, par)
		if pi == 0 {
			// Instants with an empty pool side run no assignment but the
			// warm session still syncs its caches; that work must land in
			// Prepare — untimed, -simbench would under-report the warm
			// online phase on sparse streams.
			emptyInstants, emptySync := 0, time.Duration(0)
			for _, in := range gotRaw.Instants {
				if in.Metrics.Algorithm == "" {
					emptyInstants++
					emptySync += in.Prepare
				}
			}
			if emptyInstants == 0 {
				t.Fatal("churn run has no empty-pool instants; the Sync-accounting gate needs some")
			}
			if emptySync == 0 {
				t.Error("empty-pool instants recorded zero Prepare: Session.Sync ran untimed")
			}
		}
		got := normalize(gotRaw)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("parallelism %d: incremental pair index diverged from cold FeasiblePairs rescans", par)
		}
		ix := p.Session().PairIndex()
		if ix == nil {
			t.Fatal("warm run never touched the pair index")
		}
		if ix.CachedWorkers() != p.Online() || ix.CachedTasks() != p.Open() {
			t.Errorf("parallelism %d: index carries %d workers / %d tasks, pool holds %d / %d",
				par, ix.CachedWorkers(), ix.CachedTasks(), p.Online(), p.Open())
		}
	}
}

// TestTiledColdPairsStreamingEquivalence is the streaming acceptance
// gate of the tiled pipeline: a run whose every instant rescans
// feasibility through the spatial tiling must match the global-scan
// reference bit for bit — assignments, metrics, completion accounting —
// at Parallelism 1, 2 and 8, while actually reporting a live tiling
// (tile counts on busy instants, component stats everywhere).
func TestTiledColdPairsStreamingEquivalence(t *testing.T) {
	fw, data := testFramework(t)
	ws, ts := streams(data, 60, 29)
	run := func(tiled bool, par int) *Result {
		p, err := New(fw, Config{
			Algorithm: assign.DIA, Step: 1, Start: 120, Horizon: 18,
			Seed: 31, Parallelism: par, ColdPairs: true, TiledColdPairs: tiled,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(ws, ts)
		if err != nil {
			t.Fatal(err)
		}
		return normalize(res)
	}
	// The tile count is the one legitimate difference between the two
	// modes: the global scan has no tiling to report.
	stripTileCount := func(res *Result) *Result {
		out := *res
		out.Instants = append([]InstantResult(nil), res.Instants...)
		for i := range out.Instants {
			out.Instants[i].Tiles.Tiles = 0
		}
		return &out
	}
	want := run(false, 1)
	if want.TotalAssigned == 0 {
		t.Fatal("equivalence run assigned nothing; streams too sparse to gate anything")
	}
	for _, par := range paralleltest.WorkerCounts {
		got := run(true, par)
		busy, withTiles := 0, 0
		for _, in := range got.Instants {
			if in.Metrics.Algorithm == "" {
				continue
			}
			busy++
			if in.Tiles.Tiles > 0 {
				withTiles++
			}
			if in.Metrics.Feasible > 0 && in.Tiles.Components <= 0 {
				t.Fatalf("parallelism %d: busy instant at %v has %d feasible pairs but no component stats",
					par, in.At, in.Metrics.Feasible)
			}
		}
		if busy == 0 || withTiles != busy {
			t.Fatalf("parallelism %d: %d of %d busy instants report a tiling", par, withTiles, busy)
		}
		if !reflect.DeepEqual(want, stripTileCount(got)) {
			t.Fatalf("parallelism %d: tiled cold scans diverged from the global reference", par)
		}
	}
}

func TestAllAlgorithmsRunStreaming(t *testing.T) {
	fw, data := testFramework(t)
	ws, ts := streams(data, 25, 4)
	for _, alg := range assign.Algorithms {
		p, err := New(fw, Config{Algorithm: alg, Step: 3, Start: 120, Horizon: 12, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(ws, ts)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.TotalAssigned == 0 {
			t.Errorf("%v assigned nothing in streaming mode", alg)
		}
	}
}
