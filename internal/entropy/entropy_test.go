package entropy

import (
	"math"
	"testing"

	"dita/internal/model"
	"dita/internal/randx"
)

func checkin(user model.WorkerID, venue model.VenueID) model.CheckIn {
	return model.CheckIn{User: user, Venue: venue}
}

func TestSingleWorkerVenueHasZeroEntropy(t *testing.T) {
	tbl := Compute([]model.CheckIn{
		checkin(1, 0), checkin(1, 0), checkin(1, 0),
	})
	if got := tbl.Lookup(0); got != 0 {
		t.Errorf("single-visitor entropy = %v, want 0", got)
	}
}

func TestUniformVisitorsMaximizeEntropy(t *testing.T) {
	// k workers visiting equally often → entropy ln(k).
	var records []model.CheckIn
	for w := model.WorkerID(0); w < 4; w++ {
		records = append(records, checkin(w, 0), checkin(w, 0))
	}
	tbl := Compute(records)
	want := math.Log(4)
	if got := tbl.Lookup(0); math.Abs(got-want) > 1e-12 {
		t.Errorf("uniform entropy = %v, want ln(4) = %v", got, want)
	}
}

func TestSkewedVisitsLowerEntropy(t *testing.T) {
	// Venue 0: perfectly uniform across 3 workers. Venue 1: same worker
	// count but heavily skewed. Uniform must have higher entropy.
	records := []model.CheckIn{
		checkin(0, 0), checkin(1, 0), checkin(2, 0),
		checkin(0, 1), checkin(0, 1), checkin(0, 1), checkin(0, 1),
		checkin(0, 1), checkin(0, 1), checkin(0, 1), checkin(0, 1),
		checkin(1, 1), checkin(2, 1),
	}
	tbl := Compute(records)
	if tbl.Lookup(0) <= tbl.Lookup(1) {
		t.Errorf("uniform venue entropy %v not above skewed %v", tbl.Lookup(0), tbl.Lookup(1))
	}
}

func TestKnownEntropyValue(t *testing.T) {
	// Two workers, visits 3 and 1: p = (3/4, 1/4),
	// H = −(3/4)ln(3/4) − (1/4)ln(1/4).
	records := []model.CheckIn{
		checkin(0, 5), checkin(0, 5), checkin(0, 5), checkin(1, 5),
	}
	want := -(0.75*math.Log(0.75) + 0.25*math.Log(0.25))
	tbl := Compute(records)
	if got := tbl.Lookup(5); math.Abs(got-want) > 1e-12 {
		t.Errorf("entropy = %v, want %v", got, want)
	}
}

func TestUnknownVenueZero(t *testing.T) {
	tbl := Compute(nil)
	if got := tbl.Lookup(99); got != 0 {
		t.Errorf("unknown venue entropy = %v, want 0", got)
	}
	if tbl.Len() != 0 {
		t.Errorf("empty table Len = %d", tbl.Len())
	}
}

func TestLenAndMax(t *testing.T) {
	records := []model.CheckIn{
		checkin(0, 0), checkin(1, 0), // entropy ln 2
		checkin(0, 1), // entropy 0
	}
	tbl := Compute(records)
	if tbl.Len() != 2 {
		t.Errorf("Len = %d, want 2", tbl.Len())
	}
	if got := tbl.Max(); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Errorf("Max = %v, want ln 2", got)
	}
}

func TestEntropyNonNegativeAndBounded(t *testing.T) {
	// Entropy over k visitors is within [0, ln k].
	var records []model.CheckIn
	for w := model.WorkerID(0); w < 7; w++ {
		for i := model.WorkerID(0); i <= w; i++ {
			records = append(records, checkin(w, 3))
		}
	}
	tbl := Compute(records)
	got := tbl.Lookup(3)
	if got < 0 || got > math.Log(7) {
		t.Errorf("entropy %v outside [0, ln 7]", got)
	}
}

func TestComputeBitDeterministic(t *testing.T) {
	// The entropy sum must accumulate in record order, not map order:
	// two computations over the same records agree bit for bit. (A
	// venue needs ≥ 3 distinct visitors with unequal shares for float
	// association to matter; build many.)
	rng := randx.New(9)
	var records []model.CheckIn
	for i := 0; i < 4000; i++ {
		records = append(records, model.CheckIn{
			User:  model.WorkerID(rng.Intn(60)),
			Venue: model.VenueID(rng.Intn(25)),
		})
	}
	a := Compute(records)
	b := Compute(records)
	if a.Len() != b.Len() {
		t.Fatalf("table sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for v := model.VenueID(0); int(v) < 25; v++ {
		if a.Lookup(v) != b.Lookup(v) {
			t.Fatalf("venue %d entropy differs between identical runs: %v vs %v",
				v, a.Lookup(v), b.Lookup(v))
		}
	}
}
