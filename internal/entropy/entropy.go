// Package entropy computes location entropy (Section IV-B), the metric
// the EIA algorithm uses to prioritize tasks whose visitor population is
// concentrated in few workers:
//
//	s.e = − Σ_{w ∈ Ws} P_s(w) · ln P_s(w),   P_s(w) = Num_w / Num_s
//
// where Num_w counts worker w's historical visits to the task's location
// and Num_s the total visits by all workers. Low entropy means few
// workers ever visit the place, so EIA serves it first.
package entropy

import (
	"fmt"
	"math"
	"sort"

	"dita/internal/model"
)

// Table maps venues to their location entropy. Venues that were never
// visited are absent; Lookup treats them as zero entropy (the most
// urgent possible value — nobody visits them at all).
type Table struct {
	byVenue map[model.VenueID]float64
}

// Compute builds the entropy table from historical check-in records.
// The per-venue sum runs over workers in first-seen record order — never
// map iteration order — so the floating-point accumulation is bit-stable
// across runs (the repository-wide determinism contract).
func Compute(records []model.CheckIn) *Table {
	type venueStats struct {
		workerIdx map[model.WorkerID]int
		counts    []float64 // per worker, in first-seen order
		total     float64
	}
	visits := make(map[model.VenueID]*venueStats)
	venues := make([]model.VenueID, 0) // first-seen venue order
	for _, r := range records {
		vs := visits[r.Venue]
		if vs == nil {
			vs = &venueStats{workerIdx: make(map[model.WorkerID]int)}
			visits[r.Venue] = vs
			venues = append(venues, r.Venue)
		}
		i, ok := vs.workerIdx[r.User]
		if !ok {
			i = len(vs.counts)
			vs.workerIdx[r.User] = i
			vs.counts = append(vs.counts, 0)
		}
		vs.counts[i]++
		vs.total++
	}
	t := &Table{byVenue: make(map[model.VenueID]float64, len(venues))}
	for _, venue := range venues {
		vs := visits[venue]
		e := 0.0
		for _, n := range vs.counts {
			p := n / vs.total
			e -= p * math.Log(p)
		}
		t.byVenue[venue] = e
	}
	return t
}

// Lookup returns the location entropy of a venue, zero when unknown.
func (t *Table) Lookup(v model.VenueID) float64 { return t.byVenue[v] }

// Len returns the number of venues with recorded visits.
func (t *Table) Len() int { return len(t.byVenue) }

// Max returns the largest entropy in the table (zero when empty); the
// harness prints it to characterize datasets.
func (t *Table) Max() float64 {
	max := 0.0
	for _, e := range t.byVenue {
		if e > max {
			max = e
		}
	}
	return max
}

// VenueEntropy is one venue's entry in the table's serialized form.
type VenueEntropy struct {
	Venue   model.VenueID `json:"venue"`
	Entropy float64       `json:"entropy"`
}

// Wire is the table's serialized form, part of the framework artifact's
// pinned wire format (see internal/fwio). Venues are listed in
// ascending id order so the encoding is canonical: byte-identical runs
// produce byte-identical artifacts.
type Wire struct {
	Venues []VenueEntropy `json:"venues"`
}

// Wire returns the table's serialized form.
func (t *Table) Wire() Wire {
	w := Wire{Venues: make([]VenueEntropy, 0, len(t.byVenue))}
	for v, e := range t.byVenue {
		w.Venues = append(w.Venues, VenueEntropy{Venue: v, Entropy: e})
	}
	sort.Slice(w.Venues, func(i, j int) bool { return w.Venues[i].Venue < w.Venues[j].Venue })
	return w
}

// FromWire rebuilds a table from its serialized form. Venue ids must be
// strictly ascending — the canonical order Wire emits, which also rules
// out duplicate entries silently overwriting each other.
func FromWire(w Wire) (*Table, error) {
	t := &Table{byVenue: make(map[model.VenueID]float64, len(w.Venues))}
	for i, ve := range w.Venues {
		if i > 0 && ve.Venue <= w.Venues[i-1].Venue {
			return nil, fmt.Errorf("entropy: wire venues not strictly ascending at index %d (%d after %d)", i, ve.Venue, w.Venues[i-1].Venue)
		}
		t.byVenue[ve.Venue] = ve.Entropy
	}
	return t, nil
}
