// Package entropy computes location entropy (Section IV-B), the metric
// the EIA algorithm uses to prioritize tasks whose visitor population is
// concentrated in few workers:
//
//	s.e = − Σ_{w ∈ Ws} P_s(w) · ln P_s(w),   P_s(w) = Num_w / Num_s
//
// where Num_w counts worker w's historical visits to the task's location
// and Num_s the total visits by all workers. Low entropy means few
// workers ever visit the place, so EIA serves it first.
package entropy

import (
	"math"

	"dita/internal/model"
)

// Table maps venues to their location entropy. Venues that were never
// visited are absent; Lookup treats them as zero entropy (the most
// urgent possible value — nobody visits them at all).
type Table struct {
	byVenue map[model.VenueID]float64
}

// Compute builds the entropy table from historical check-in records.
func Compute(records []model.CheckIn) *Table {
	visits := make(map[model.VenueID]map[model.WorkerID]float64)
	totals := make(map[model.VenueID]float64)
	for _, r := range records {
		m := visits[r.Venue]
		if m == nil {
			m = make(map[model.WorkerID]float64)
			visits[r.Venue] = m
		}
		m[r.User]++
		totals[r.Venue]++
	}
	t := &Table{byVenue: make(map[model.VenueID]float64, len(visits))}
	for venue, perWorker := range visits {
		total := totals[venue]
		e := 0.0
		for _, n := range perWorker {
			p := n / total
			e -= p * math.Log(p)
		}
		t.byVenue[venue] = e
	}
	return t
}

// Lookup returns the location entropy of a venue, zero when unknown.
func (t *Table) Lookup(v model.VenueID) float64 { return t.byVenue[v] }

// Len returns the number of venues with recorded visits.
func (t *Table) Len() int { return len(t.byVenue) }

// Max returns the largest entropy in the table (zero when empty); the
// harness prints it to characterize datasets.
func (t *Table) Max() float64 {
	max := 0.0
	for _, e := range t.byVenue {
		if e > max {
			max = e
		}
	}
	return max
}
