package influence

import (
	"math"
	"testing"

	"dita/internal/geo"
	"dita/internal/lda"
	"dita/internal/mobility"
	"dita/internal/model"
	"dita/internal/randx"
	"dita/internal/rrr"
	"dita/internal/socialgraph"
)

// testWorld builds a small but fully wired engine: 30 users in a PA
// social graph, each with a short history around one of two hot spots,
// and an LDA model over two crisp category blocks.
func testWorld(t *testing.T) (*Engine, *model.Instance) {
	t.Helper()
	const nU = 30
	g := socialgraph.GeneratePreferentialAttachment(nU, 2, randx.New(1))

	rng := randx.New(2)
	histories := make(map[model.WorkerID]model.History, nU)
	docs := make([][]int32, nU)
	for u := 0; u < nU; u++ {
		// Users alternate between two spatial/semantic communities.
		comm := u % 2
		base := geo.Point{X: float64(comm) * 40}
		var h model.History
		for i := 0; i < 6; i++ {
			loc := geo.Point{
				X: base.X + rng.Float64()*5,
				Y: rng.Float64() * 5,
			}
			cat := model.CategoryID(comm*5 + rng.Intn(5))
			h = append(h, model.CheckIn{
				User:       model.WorkerID(u),
				Venue:      model.VenueID(u*10 + i),
				Loc:        loc,
				Arrive:     float64(i),
				Complete:   float64(i) + 0.5,
				Categories: []model.CategoryID{cat},
			})
			docs[u] = append(docs[u], int32(cat))
		}
		histories[model.WorkerID(u)] = h
	}

	ldaModel, err := lda.Train(docs, 10, lda.Config{Topics: 4, Alpha: 0.3, TrainIters: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	theta := make([][]float64, nU)
	for u := 0; u < nU; u++ {
		theta[u] = ldaModel.DocTopics(u)
	}

	eng := &Engine{
		Prop:      rrr.Build(g, rrr.Params{Seed: 4}),
		Wil:       mobility.Fit(histories, mobility.Config{}),
		LDA:       ldaModel,
		ThetaUser: theta,
	}

	inst := &model.Instance{Now: 100}
	for i := 0; i < 10; i++ {
		inst.Workers = append(inst.Workers, model.Worker{
			ID: model.WorkerID(i), User: model.WorkerID(i * 3),
			Loc: geo.Point{X: float64(i) * 4, Y: 2}, Radius: 25,
		})
	}
	for j := 0; j < 8; j++ {
		comm := j % 2
		inst.Tasks = append(inst.Tasks, model.Task{
			ID:         model.TaskID(j),
			Loc:        geo.Point{X: float64(comm)*40 + 2, Y: 2},
			Publish:    100,
			Valid:      5,
			Categories: []model.CategoryID{model.CategoryID(comm*5 + j%5)},
			Venue:      model.VenueID(j),
		})
	}
	return eng, inst
}

func TestComponentsString(t *testing.T) {
	tests := []struct {
		c    Components
		want string
	}{
		{All, "IA"},
		{WP, "IA-WP"},
		{AP, "IA-AP"},
		{AW, "IA-AW"},
		{Affinity, "A"},
		{Willingness, "W"},
		{Propagation, "P"},
		{0, "none"},
	}
	for _, tc := range tests {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("Components(%b).String() = %q, want %q", tc.c, got, tc.want)
		}
	}
}

func TestInfluenceNonNegativeAllMasks(t *testing.T) {
	eng, inst := testWorld(t)
	for _, mask := range []Components{All, WP, AP, AW} {
		ev := eng.Prepare(inst, mask, 7)
		for w := 0; w < len(inst.Workers); w++ {
			for s := 0; s < len(inst.Tasks); s++ {
				v := ev.Influence(w, s)
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("mask %v: if(%d,%d) = %v", mask, w, s, v)
				}
			}
		}
	}
}

func TestFullInfluenceFactorization(t *testing.T) {
	// if(All) must equal Paff × spread where spread is what WP computes,
	// pair by pair — the masks factor exactly.
	eng, inst := testWorld(t)
	evAll := eng.Prepare(inst, All, 7)
	evWP := eng.Prepare(inst, WP, 7)
	evAW := eng.Prepare(inst, AW, 7)
	for w := 0; w < len(inst.Workers); w++ {
		for s := 0; s < len(inst.Tasks); s++ {
			full := evAll.Influence(w, s)
			spread := evWP.Influence(w, s)
			if spread == 0 {
				if full != 0 {
					t.Fatalf("pair (%d,%d): spread 0 but full %v", w, s, full)
				}
				continue
			}
			aff := full / spread
			if aff < -1e-9 || aff > 1+1e-9 {
				t.Fatalf("pair (%d,%d): implied affinity %v outside [0,1]", w, s, aff)
			}
			// AW's spread (willingness-only) must be at least WP's
			// spread divided by... no hard relation; just check AW > 0
			// whenever spread > 0 and tasks overlap worker communities.
			_ = evAW
		}
	}
}

func TestAblationMasksDiffer(t *testing.T) {
	eng, inst := testWorld(t)
	evAll := eng.Prepare(inst, All, 7)
	evAP := eng.Prepare(inst, AP, 7)
	evAW := eng.Prepare(inst, AW, 7)
	differsAP, differsAW := false, false
	for w := 0; w < len(inst.Workers); w++ {
		for s := 0; s < len(inst.Tasks); s++ {
			full := evAll.Influence(w, s)
			if math.Abs(full-evAP.Influence(w, s)) > 1e-12 {
				differsAP = true
			}
			if math.Abs(full-evAW.Influence(w, s)) > 1e-12 {
				differsAW = true
			}
		}
	}
	if !differsAP {
		t.Error("IA-AP identical to IA everywhere — willingness had no effect")
	}
	if !differsAW {
		t.Error("IA-AW identical to IA everywhere — propagation had no effect")
	}
}

func TestPropagationSumConsistentWithCollection(t *testing.T) {
	eng, inst := testWorld(t)
	ev := eng.Prepare(inst, All, 7)
	for w, worker := range inst.Workers {
		want := eng.Prop.PropagationSum(int32(worker.User))
		if got := ev.PropagationSum(w); math.Abs(got-want) > 1e-9 {
			t.Errorf("worker %d: PropagationSum %v, want %v", w, got, want)
		}
	}
}

func TestPropagationSumAvailableWithoutPropagationMask(t *testing.T) {
	// The AP metric is reported even for masks that exclude propagation.
	eng, inst := testWorld(t)
	ev := eng.Prepare(inst, AW, 7)
	for w, worker := range inst.Workers {
		want := eng.Prop.PropagationSum(int32(worker.User))
		if got := ev.PropagationSum(w); math.Abs(got-want) > 1e-9 {
			t.Errorf("worker %d under AW: PropagationSum %v, want %v", w, got, want)
		}
	}
}

func TestAffinityDrivesSemanticMatch(t *testing.T) {
	// Workers from community 0 (users 0, 6, 12, ... all even) should on
	// average have higher full influence toward community-0 tasks than
	// community-1 tasks, because affinity, willingness and location all
	// align.
	eng, inst := testWorld(t)
	ev := eng.Prepare(inst, All, 7)
	sameSum, crossSum := 0.0, 0.0
	nSame, nCross := 0, 0
	for w, worker := range inst.Workers {
		wComm := int(worker.User) % 2
		for s, task := range inst.Tasks {
			tComm := int(task.Categories[0]) / 5
			v := ev.Influence(w, s)
			if wComm == tComm {
				sameSum += v
				nSame++
			} else {
				crossSum += v
				nCross++
			}
		}
	}
	if sameSum/float64(nSame) <= crossSum/float64(nCross) {
		t.Errorf("community-aligned influence %v not above cross %v",
			sameSum/float64(nSame), crossSum/float64(nCross))
	}
}

func TestTopLocationsTruncationCloseToExact(t *testing.T) {
	eng, inst := testWorld(t)
	exact := eng.Prepare(inst, All, 7)
	eng.TopLocations = 3
	truncated := eng.Prepare(inst, All, 7)
	eng.TopLocations = 0
	var maxRel float64
	for w := 0; w < len(inst.Workers); w++ {
		for s := 0; s < len(inst.Tasks); s++ {
			e, tr := exact.Influence(w, s), truncated.Influence(w, s)
			if e == 0 {
				continue
			}
			rel := math.Abs(e-tr) / e
			if rel > maxRel {
				maxRel = rel
			}
		}
	}
	// Six locations truncated to their top three (renormalized) should
	// stay within a modest relative error.
	if maxRel > 0.5 {
		t.Errorf("truncation error too large: %v", maxRel)
	}
}

func TestDeterministicPrepare(t *testing.T) {
	eng, inst := testWorld(t)
	a := eng.Prepare(inst, All, 7)
	b := eng.Prepare(inst, All, 7)
	for w := 0; w < len(inst.Workers); w++ {
		for s := 0; s < len(inst.Tasks); s++ {
			if a.Influence(w, s) != b.Influence(w, s) {
				t.Fatalf("Prepare nondeterministic at (%d,%d)", w, s)
			}
		}
	}
}

func TestEvaluatorDimensions(t *testing.T) {
	eng, inst := testWorld(t)
	ev := eng.Prepare(inst, All, 7)
	if ev.NumWorkers() != len(inst.Workers) || ev.NumTasks() != len(inst.Tasks) {
		t.Errorf("dims %d×%d, want %d×%d",
			ev.NumWorkers(), ev.NumTasks(), len(inst.Workers), len(inst.Tasks))
	}
	if ev.Components() != All {
		t.Errorf("components = %v", ev.Components())
	}
}
