package influence

import (
	"reflect"
	"testing"

	"dita/internal/model"
	"dita/internal/paralleltest"
)

// instantSequence builds a multi-instant scenario over the testWorld
// instance: instant 0 is the full pool, instant 1 drops some tasks and
// workers (expiry/assignment) while new ones arrive with fresh stable
// ids, and instant 2 churns again. Task IDs never repeat and stay stable
// for a task's lifetime, mirroring the streaming simulator.
func instantSequence(inst *model.Instance) []*model.Instance {
	i0 := &model.Instance{Now: inst.Now, Workers: inst.Workers, Tasks: inst.Tasks}

	// Instant 1: tasks 0 and 3 leave, two new tasks (stable ids 100, 101)
	// arrive; workers 1 and 4 leave, one returns as a new platform
	// arrival of a user not seen at instant 0.
	i1 := &model.Instance{Now: inst.Now + 1}
	for j, t := range inst.Tasks {
		if j == 0 || j == 3 {
			continue
		}
		i1.Tasks = append(i1.Tasks, t)
	}
	newTask := inst.Tasks[0]
	newTask.ID = 100
	newTask.Loc.X += 3
	i1.Tasks = append(i1.Tasks, newTask)
	newTask2 := inst.Tasks[3]
	newTask2.ID = 101
	newTask2.Categories = []model.CategoryID{2, 7}
	i1.Tasks = append(i1.Tasks, newTask2)
	for i, w := range inst.Workers {
		if i == 1 || i == 4 {
			continue
		}
		i1.Workers = append(i1.Workers, w)
	}
	i1.Workers = append(i1.Workers, model.Worker{
		ID: 50, User: 29, Loc: inst.Workers[0].Loc, Radius: 25,
	})

	// Instant 2: everything from instant 1 except the two newest tasks'
	// predecessors; one more arrival.
	i2 := &model.Instance{Now: inst.Now + 2}
	i2.Tasks = append(i2.Tasks, i1.Tasks[1:]...)
	i2.Workers = append(i2.Workers, i1.Workers[:len(i1.Workers)-2]...)
	return []*model.Instance{i0, i1, i2}
}

// TestSessionMatchesColdPrepare is the correctness gate of the session
// layer: at every instant of a carry-over sequence, for every component
// mask, the warm session's evaluator must be bit-identical (unexported
// fields included) to a cold one-shot Prepare of the same instance.
func TestSessionMatchesColdPrepare(t *testing.T) {
	eng, inst := testWorld(t)
	const seed = 7
	for _, mask := range []Components{All, WP, AP, AW, Propagation, Willingness, Affinity, 0} {
		sess := eng.NewSession(mask, seed, 2)
		for k, in := range instantSequence(inst) {
			warm := sess.Evaluate(in)
			cold := eng.Prepare(in, mask, seed)
			if !reflect.DeepEqual(warm, cold) {
				t.Fatalf("mask %v instant %d: session evaluator diverged from cold Prepare", mask, k)
			}
		}
	}
}

// TestSessionReusesCarriedOverState asserts the cache actually hits:
// a task present at two consecutive instants must share the identical
// willingness-row and theta backing arrays, not equal recomputations.
func TestSessionReusesCarriedOverState(t *testing.T) {
	eng, inst := testWorld(t)
	sess := eng.NewSession(All, 7, 1)
	seq := instantSequence(inst)
	ev0 := sess.Evaluate(seq[0])
	ev1 := sess.Evaluate(seq[1])
	// Task with stable id 1 is position 1 at instant 0 and position 0 at
	// instant 1.
	if &ev0.wilRows[1][0] != &ev1.wilRows[0][0] {
		t.Error("carried-over task's willingness row was recomputed, not reused")
	}
	if &ev0.thetaT[1][0] != &ev1.thetaT[0][0] {
		t.Error("carried-over task's topic distribution was recomputed, not reused")
	}
	// Worker at instant-0 position 0 (user 0) is still position 0 at
	// instant 1.
	if len(ev0.roots[0]) > 0 && &ev0.roots[0][0] != &ev1.roots[0][0] {
		t.Error("carried-over worker's RRR roots were recomputed, not reused")
	}
}

// TestSessionEvictsDepartedEntities asserts carry-over memory is bounded
// by the live pool: entities absent from an instant lose their cache
// entries.
func TestSessionEvictsDepartedEntities(t *testing.T) {
	eng, inst := testWorld(t)
	sess := eng.NewSession(All, 7, 1)
	seq := instantSequence(inst)
	for k, in := range seq {
		sess.Evaluate(in)
		distinctUsers := map[model.WorkerID]bool{}
		for _, w := range in.Workers {
			distinctUsers[w.User] = true
		}
		if got, want := sess.CachedTasks(), len(in.Tasks); got != want {
			t.Errorf("instant %d: %d cached tasks, want %d", k, got, want)
		}
		if got, want := sess.CachedWorkers(), len(distinctUsers); got != want {
			t.Errorf("instant %d: %d cached workers, want %d", k, got, want)
		}
	}
	// A shrunken instant evicts everything else.
	small := &model.Instance{
		Now:     200,
		Workers: seq[2].Workers[:1],
		Tasks:   seq[2].Tasks[:1],
	}
	sess.Evaluate(small)
	if sess.CachedTasks() != 1 || sess.CachedWorkers() != 1 {
		t.Errorf("after shrinking to 1×1: %d tasks, %d workers cached",
			sess.CachedTasks(), sess.CachedWorkers())
	}
}

// TestSessionCapacityBoundExact is the unit gate of the bounded session:
// with a capacity far below the live pool, every instant's evaluator
// must still be bit-identical to a cold Prepare (evicted-but-live
// entities are cache misses that recompute identity-keyed state), while
// both caches hold at most the capacity after every instant.
func TestSessionCapacityBoundExact(t *testing.T) {
	eng, inst := testWorld(t)
	const capacity = 2
	sess := eng.NewSession(All, 7, 2)
	sess.SetCapacity(capacity)
	for k, in := range instantSequence(inst) {
		warm := sess.Evaluate(in)
		cold := eng.Prepare(in, All, 7)
		if !reflect.DeepEqual(warm, cold) {
			t.Fatalf("instant %d: capped session evaluator diverged from cold Prepare", k)
		}
		if len(in.Tasks) <= capacity {
			t.Fatalf("instant %d offers %d tasks; the bound is never stressed", k, len(in.Tasks))
		}
		if got := sess.CachedTasks(); got > capacity {
			t.Errorf("instant %d: %d cached tasks, capacity %d", k, got, capacity)
		}
		if got := sess.CachedWorkers(); got > capacity {
			t.Errorf("instant %d: %d cached workers, capacity %d", k, got, capacity)
		}
	}
	// Lifting the bound restores live-pool tracking at the next instant.
	sess.SetCapacity(0)
	final := instantSequence(inst)[2]
	sess.Evaluate(final)
	if got, want := sess.CachedTasks(), len(final.Tasks); got != want {
		t.Errorf("after lifting the bound: %d cached tasks, want %d", got, want)
	}
}

// TestSessionCapacityEvictsOldestFirst pins the eviction order: FIFO by
// admission sequence, so the survivors of a capacity squeeze are exactly
// the most recently admitted entries — deterministic regardless of map
// iteration order.
func TestSessionCapacityEvictsOldestFirst(t *testing.T) {
	eng, inst := testWorld(t)
	sess := eng.NewSession(All, 7, 1)
	sess.SetCapacity(1)
	sess.Evaluate(inst)
	if sess.CachedTasks() != 1 {
		t.Fatalf("%d cached tasks, want 1", sess.CachedTasks())
	}
	// The survivor is the last-admitted task: admission order is instance
	// order, so the sole retained entry must be the final task's — and it
	// must serve the next instant as a cache hit (same backing arrays).
	last := inst.Tasks[len(inst.Tasks)-1]
	st, ok := sess.tasks[uint64(last.ID)]
	if !ok {
		t.Fatal("last-admitted task was evicted: FIFO order broken")
	}
	probe := &model.Instance{Now: inst.Now + 1, Workers: inst.Workers[:1], Tasks: []model.Task{last}}
	warm := sess.Evaluate(probe)
	cold := eng.Prepare(probe, All, 7)
	if !reflect.DeepEqual(warm, cold) {
		t.Fatal("survivor state diverged from cold Prepare")
	}
	if &warm.thetaT[0][0] != &st.theta[0] {
		t.Fatal("survivor was recomputed, not served from cache")
	}
}

// TestSessionParallelismInvariant registers the session-backed online
// phase with the shared determinism harness: the full multi-instant
// evaluator sequence must be bit-identical at worker counts {1, 2, 8}.
func TestSessionParallelismInvariant(t *testing.T) {
	eng, inst := testWorld(t)
	seq := instantSequence(inst)
	paralleltest.Invariant(t, func(par int) any {
		var evs []*Evaluator
		for _, mask := range []Components{All, AW} {
			sess := eng.NewSession(mask, 7, par)
			for _, in := range seq {
				evs = append(evs, sess.Evaluate(in))
			}
		}
		return evs
	})
}

// TestSessionRejectsDuplicateTaskIDs: identity hygiene is the session
// layer's one precondition; violating it must fail loudly, not silently
// alias two tasks' cached state.
func TestSessionRejectsDuplicateTaskIDs(t *testing.T) {
	eng, inst := testWorld(t)
	bad := &model.Instance{Now: inst.Now, Workers: inst.Workers}
	bad.Tasks = append(bad.Tasks, inst.Tasks[0], inst.Tasks[1])
	bad.Tasks[1].ID = bad.Tasks[0].ID
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate task IDs accepted")
		}
	}()
	eng.NewSession(All, 7, 1).Evaluate(bad)
}

// TestPrepareSeedKeyedByStableIdentity: the fold-in stream of a task
// depends on its stable ID, not its position, so reordering an instance
// permutes — but never changes — the per-task state.
func TestPrepareSeedKeyedByStableIdentity(t *testing.T) {
	eng, inst := testWorld(t)
	ev := eng.Prepare(inst, All, 7)
	perm := &model.Instance{Now: inst.Now, Workers: inst.Workers}
	perm.Tasks = append(perm.Tasks, inst.Tasks[3:]...)
	perm.Tasks = append(perm.Tasks, inst.Tasks[:3]...)
	evPerm := eng.Prepare(perm, All, 7)
	n := len(inst.Tasks)
	for j := 0; j < n; j++ {
		pj := (j - 3 + n) % n // position of task j in the permuted instance
		for w := range inst.Workers {
			if ev.Influence(w, j) != evPerm.Influence(w, pj) {
				t.Fatalf("task %d: influence changed when the task moved from position %d to %d",
					inst.Tasks[j].ID, j, pj)
			}
		}
	}
}
