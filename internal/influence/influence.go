// Package influence combines the three modeled factors — worker-task
// affinity (LDA), worker willingness (Historical Acceptance) and worker
// propagation (RPO over RRR sets) — into the paper's worker-task
// influence (Section III-D):
//
//	if(ws, s) = Paff(ws, s) · Σ_{wi ∈ W\{ws}} Pwil(wi, s) · Ppro(ws, wi)
//
// where W is the whole worker set of the social network, not only the
// workers online at the instance.
//
// The package also implements the component masks behind the paper's
// ablation variants (Fig. 5–8): IA-WP drops affinity, IA-AP drops
// willingness and IA-AW drops propagation; a dropped factor is replaced
// by the neutral constant 1.
package influence

import (
	"dita/internal/lda"
	"dita/internal/mobility"
	"dita/internal/model"
	"dita/internal/parallel"
	"dita/internal/rrr"
)

// Components selects which factors participate in the influence product.
type Components uint8

// Component bits. All enables the full model (the IA algorithm);
// the three two-factor masks are the paper's ablations.
const (
	Affinity Components = 1 << iota
	Willingness
	Propagation

	All = Affinity | Willingness | Propagation
	// WP is the IA-WP variant: willingness + propagation, no affinity.
	WP = Willingness | Propagation
	// AP is the IA-AP variant: affinity + propagation, no willingness.
	AP = Affinity | Propagation
	// AW is the IA-AW variant: affinity + willingness, no propagation.
	AW = Affinity | Willingness
)

// String names the mask the way the paper does.
func (c Components) String() string {
	switch c {
	case All:
		return "IA"
	case WP:
		return "IA-WP"
	case AP:
		return "IA-AP"
	case AW:
		return "IA-AW"
	default:
		s := ""
		if c&Affinity != 0 {
			s += "A"
		}
		if c&Willingness != 0 {
			s += "W"
		}
		if c&Propagation != 0 {
			s += "P"
		}
		if s == "" {
			return "none"
		}
		return s
	}
}

// Engine owns the trained models and produces per-instance evaluators.
type Engine struct {
	// Prop is the RRR collection over the full social graph.
	Prop *rrr.Collection
	// Wil is the fitted Historical Acceptance model.
	Wil *mobility.Model
	// LDA is the trained topic model; ThetaUser[u] is user u's
	// document-topic distribution (nil or uniform when the user has no
	// history).
	LDA       *lda.Model
	ThetaUser [][]float64
	// TopLocations caps how many of a worker's highest-stationary-mass
	// locations the willingness sum uses when building the dense
	// willingness matrix; 0 means all. The truncation is a performance
	// valve for the |W_G|×|S| matrix and preserves ≥95% of the mass on
	// heavy-tailed visit distributions.
	TopLocations int
	// Parallelism bounds the worker pool one-shot Prepare calls use for
	// per-task and per-worker state (<= 0 means all cores). The result is
	// bit-identical at any setting; sessions take their own bound via
	// NewSession.
	Parallelism int
}

// rootCount is a compacted view of the RRR cover of one instance worker:
// how many sets rooted at Root contain the worker.
type rootCount struct {
	root  int32
	count int32
}

// Evaluator answers influence queries for one time instance. Build it
// once per instance (via Prepare) and share it across every assignment
// algorithm so all of them price the same pairs identically.
type Evaluator struct {
	comps Components
	nW    int // instance workers
	nT    int // instance tasks
	nU    int // users in the social graph

	// users[w] is the graph/user id of instance worker w.
	users []int32
	// thetaW[w], thetaT[t]: topic distributions.
	thetaW [][]float64
	thetaT [][]float64
	// wilRows[t][u] = Pwil(u, task t's location); float32 to halve the
	// footprint of the |W_G|×|S| matrix. Rows are owned by the session
	// that built the evaluator, so a carried-over task costs no copy.
	wilRows [][]float32
	// wilColSum[t] = Σ_u Pwil(u, t) — used by the AW mask where the
	// propagation factor is neutral.
	wilColSum []float64
	// roots[w] lists (root, multiplicity) over RRR sets containing the
	// instance worker w; scale converts a multiplicity into Ppro.
	roots [][]rootCount
	scale float64
	// propSum[w] = Σ_{wi≠ws} Ppro(ws, wi) for instance worker w — the AP
	// numerator and the Average Propagation metric.
	propSum []float64
}

// Prepare computes the per-instance state for evaluating if(w, s) on any
// feasible pair of the instance under the given component mask. It is a
// thin wrapper over a single-use Session, so a cold Prepare and a warm
// session produce bit-identical evaluators: per-task LDA fold-in streams
// are keyed by stable task identity (randx.Mix(seed, Task.ID)), never by
// the task's position in the instance. Task IDs must therefore be unique
// within the instance.
func (e *Engine) Prepare(inst *model.Instance, comps Components, seed uint64) *Evaluator {
	return e.NewSession(comps, seed, e.Parallelism).Evaluate(inst)
}

// truncatedModels returns per-user willingness models limited to the
// TopLocations highest-stationary-probability locations, building them
// on the shared pool (each user writes only its own slot).
func (e *Engine) truncatedModels(par int) []*mobility.WorkerModel {
	nU := e.Prop.Graph().N()
	out := make([]*mobility.WorkerModel, nU)
	parallel.For(par, nU, func(_, u int) {
		wm := e.Wil.Worker(model.WorkerID(u))
		if wm == nil {
			return
		}
		if e.TopLocations <= 0 || len(wm.Locs) <= e.TopLocations {
			out[u] = wm
			return
		}
		out[u] = truncateModel(wm, e.TopLocations)
	})
	return out
}

func truncateModel(wm *mobility.WorkerModel, top int) *mobility.WorkerModel {
	type ip struct {
		i int
		p float64
	}
	items := make([]ip, len(wm.Stationary))
	for i, p := range wm.Stationary {
		items[i] = ip{i, p}
	}
	// Partial selection of the top locations (selection sort over `top`
	// slots; top is a small constant).
	for a := 0; a < top; a++ {
		best := a
		for b := a + 1; b < len(items); b++ {
			if items[b].p > items[best].p {
				best = b
			}
		}
		items[a], items[best] = items[best], items[a]
	}
	t := &mobility.WorkerModel{Shape: wm.Shape}
	mass := 0.0
	for _, it := range items[:top] {
		mass += it.p
	}
	for _, it := range items[:top] {
		t.Locs = append(t.Locs, wm.Locs[it.i])
		// Renormalize so the stationary distribution stays a
		// distribution after truncation.
		t.Stationary = append(t.Stationary, it.p/mass)
	}
	return t
}

func compactRoots(c *rrr.Collection, user int32) []rootCount {
	// RootCounts returns (root, multiplicity) pairs already sorted by
	// root id, so float summation order — and therefore every influence
	// value — is deterministic run to run.
	roots, ns := c.RootCounts(user)
	out := make([]rootCount, len(roots))
	for i := range roots {
		out[i] = rootCount{root: roots[i], count: ns[i]}
	}
	return out
}

func propagationSum(roots []rootCount, self int32, scale float64) float64 {
	sum := 0.0
	for _, rc := range roots {
		if rc.root == self {
			continue
		}
		v := scale * float64(rc.count)
		if v > 1 {
			v = 1
		}
		sum += v
	}
	return sum
}

func uniformTopics(k int) []float64 {
	u := make([]float64, k)
	for i := range u {
		u[i] = 1 / float64(k)
	}
	return u
}

// Influence returns if(w, s) for instance worker index w and task index
// t under the evaluator's component mask.
func (ev *Evaluator) Influence(w, t int) float64 {
	aff := 1.0
	if ev.comps&Affinity != 0 {
		aff = lda.Affinity(ev.thetaW[w], ev.thetaT[t])
	}
	var spread float64
	switch {
	case ev.comps&Propagation != 0 && ev.comps&Willingness != 0:
		// Σ_{wi≠ws} Pwil(wi,s) · Ppro(ws,wi), via the RRR cover of ws.
		row := ev.wilRows[t]
		self := ev.users[w]
		for _, rc := range ev.roots[w] {
			if rc.root == self {
				continue
			}
			p := ev.scale * float64(rc.count)
			if p > 1 {
				p = 1
			}
			spread += float64(row[rc.root]) * p
		}
	case ev.comps&Propagation != 0:
		// Willingness neutral (IA-AP): Σ Ppro(ws, wi).
		spread = ev.propSum[w]
	case ev.comps&Willingness != 0:
		// Propagation neutral (IA-AW): Σ_{wi≠ws} Pwil(wi, s).
		spread = ev.wilColSum[t] - float64(ev.wilRows[t][ev.users[w]])
	default:
		// Neither spread factor: the influence degenerates to affinity.
		spread = 1
	}
	return aff * spread
}

// PropagationSum returns Σ_{wi≠ws} Ppro(ws, wi) for instance worker w —
// the per-worker term of the Average Propagation metric (Equation 7).
func (ev *Evaluator) PropagationSum(w int) float64 { return ev.propSum[w] }

// NumWorkers returns the instance worker count the evaluator was built
// for.
func (ev *Evaluator) NumWorkers() int { return ev.nW }

// NumTasks returns the instance task count the evaluator was built for.
func (ev *Evaluator) NumTasks() int { return ev.nT }

// Components returns the active component mask.
func (ev *Evaluator) Components() Components { return ev.comps }
