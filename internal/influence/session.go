// Session is the incremental online phase: where Engine.Prepare treats
// every assignment instant as cold — rebuilding the full |S|×|W_G|
// willingness matrix, re-folding every task through LDA and re-extracting
// every worker's RRR root list — a Session carries that per-entity state
// across instants. The streaming protocol of the paper (Section VI) keeps
// unassigned workers online and unexpired tasks open between instants, so
// most of an instant's state was already computed at an earlier one; a
// Session computes influence state only for newly arrived tasks and
// workers and evicts entries the moment their task or worker leaves the
// pool.
//
// Cache keys are stable identities, never instant-local positions: a task
// is keyed by its Task.ID (which the streaming simulator keeps stable
// across a task's whole lifetime) and a worker by its User id in the
// social graph. Per-task LDA fold-in randomness is likewise keyed by
// stable identity — the stream seed is randx.Mix(sessionSeed, taskID) —
// so a task's topic distribution is the same number at every instant it
// survives, whichever instant first computed it, and a cold rebuild
// (Engine.Prepare) reproduces the session's state bit for bit.
//
// Fresh work runs in deterministic chunks on the shared internal/parallel
// pool: each pending task or worker writes only to its own pre-inserted
// cache entry and draws only from its identity-keyed stream, so the
// resulting evaluator is bit-identical at any Parallelism setting.
package influence

import (
	"fmt"
	"sort"

	"dita/internal/mobility"
	"dita/internal/model"
	"dita/internal/parallel"
	"dita/internal/randx"
)

// taskState is the cached per-task influence state: the task's folded
// topic distribution (Affinity) and its willingness row plus column sum
// over the whole social network (Willingness).
type taskState struct {
	gen    uint64
	seq    uint64 // admission order, for capacity eviction
	theta  []float64
	row    []float32
	colSum float64
}

// userState is the cached per-worker influence state, keyed by the
// worker's social-graph user id: the compacted RRR root list and the
// propagation sum Σ_{wi≠ws} Ppro(ws, wi).
type userState struct {
	gen     uint64
	seq     uint64 // admission order, for capacity eviction
	roots   []rootCount
	propSum float64
}

// Session owns the carry-over influence state of the online phase. Create
// one per streaming run (Engine.NewSession), call Evaluate once per
// assignment instant, and the session computes state only for tasks and
// workers it has not seen, evicting entries that left the pool.
//
// The evaluators a session returns are interchangeable with cold
// Engine.Prepare ones: for the same instance, component mask and seed the
// two are bit-identical (the equivalence tests assert this), because all
// cached state is keyed by stable identity rather than by instant.
//
// A Session is not safe for concurrent use; build one per goroutine (they
// share the immutable Engine).
type Session struct {
	eng   *Engine
	comps Components
	seed  uint64
	par   int

	// gen is the current instant's generation stamp; entries whose stamp
	// is older at the end of Evaluate have left the pool and are evicted.
	gen uint64
	// admitSeq stamps cache insertions in admission order; capacity
	// eviction drops the earliest-admitted entries first.
	admitSeq uint64
	// capacity bounds each cache (tasks and users separately) when
	// positive; see SetCapacity.
	capacity int
	scale    float64
	// models are the (lazily built, truncation-applied) per-user
	// willingness models shared by every instant of the session.
	models []*mobility.WorkerModel
	tasks  map[uint64]*taskState
	users  map[int32]*userState

	// pendT/pendU are reusable scratch lists of cache misses; the
	// parallel fresh-work phase iterates them by index.
	pendT []pendingTask
	pendU []pendingUser
}

type pendingTask struct {
	key uint64
	j   int // position in the current instance
	st  *taskState
}

type pendingUser struct {
	u  int32
	st *userState
}

// NewSession returns an empty session for the given component mask and
// base seed. parallelism bounds the worker pool used for fresh per-task
// and per-worker state (<= 0 means all cores); the cached state and every
// evaluator are bit-identical at any setting.
func (e *Engine) NewSession(comps Components, seed uint64, parallelism int) *Session {
	s := &Session{
		eng:   e,
		comps: comps,
		seed:  seed,
		par:   parallel.Workers(parallelism),
		tasks: make(map[uint64]*taskState),
		users: make(map[int32]*userState),
	}
	if n := e.Prop.NumSets(); n > 0 {
		s.scale = float64(e.Prop.Graph().N()) / float64(n)
	}
	return s
}

// Components returns the component mask the session prepares for.
func (s *Session) Components() Components { return s.comps }

// CachedTasks returns how many tasks currently have cached state (the
// open-task carry-over after the last Evaluate).
func (s *Session) CachedTasks() int { return len(s.tasks) }

// CachedWorkers returns how many distinct users currently have cached
// state.
func (s *Session) CachedWorkers() int { return len(s.users) }

// SetCapacity bounds the session's carry-over memory: after each instant
// at most n cached task states and n cached user states are retained,
// evicting the earliest-admitted entries first (FIFO by admission
// sequence — deterministic, since admission order is the sequential
// instance order). n <= 0 removes the bound.
//
// The bound changes memory, never results: an entity that is still
// pooled after its state was evicted is simply a cache miss at its next
// instant, and recomputes bit-identical state because all per-entity
// randomness is keyed by stable identity, not by which instant computed
// it. Adversarial streams — entities that arrive, never match and never
// leave — therefore hold at most n entries per cache instead of growing
// with the live pool. Takes effect at the next Evaluate/Sync.
func (s *Session) SetCapacity(n int) { s.capacity = n }

// Evaluate returns the evaluator for one assignment instant, reusing
// cached state for every task and worker seen at an earlier instant and
// computing fresh state — in deterministic parallel chunks — for the
// rest. State for tasks and workers absent from inst is evicted.
//
// Task IDs must be unique within the instance and stable across the
// instants of a session: a given Task.ID must always denote the same
// task (location and categories), which is exactly what the streaming
// simulator's platform-level identities provide.
func (s *Session) Evaluate(inst *model.Instance) *Evaluator {
	nW, nT := len(inst.Workers), len(inst.Tasks)
	nU := s.eng.Prop.Graph().N()
	s.gen++

	ev := &Evaluator{comps: s.comps, nW: nW, nT: nT, nU: nU}
	ev.users = make([]int32, nW)
	for i, w := range inst.Workers {
		ev.users[i] = int32(w.User)
	}

	s.admitUsers(ev.users)
	s.admitTasks(inst)

	if s.comps&Affinity != 0 {
		ev.thetaW = make([][]float64, nW)
		for i, w := range inst.Workers {
			if int(w.User) < len(s.eng.ThetaUser) && s.eng.ThetaUser[w.User] != nil {
				ev.thetaW[i] = s.eng.ThetaUser[w.User]
			} else {
				ev.thetaW[i] = uniformTopics(s.eng.LDA.Topics())
			}
		}
		ev.thetaT = make([][]float64, nT)
		for j := range inst.Tasks {
			ev.thetaT[j] = s.tasks[uint64(inst.Tasks[j].ID)].theta
		}
	}
	if s.comps&Willingness != 0 {
		ev.wilRows = make([][]float32, nT)
		ev.wilColSum = make([]float64, nT)
		for j := range inst.Tasks {
			st := s.tasks[uint64(inst.Tasks[j].ID)]
			ev.wilRows[j] = st.row
			ev.wilColSum[j] = st.colSum
		}
	}
	ev.propSum = make([]float64, nW)
	if s.comps&Propagation != 0 {
		ev.scale = s.scale
		ev.roots = make([][]rootCount, nW)
	}
	for i, u := range ev.users {
		st := s.users[u]
		if ev.roots != nil {
			ev.roots[i] = st.roots
		}
		ev.propSum[i] = st.propSum
	}

	s.evict()
	return ev
}

// Sync maintains the carry-over cache for an instant the platform skips
// (no workers online or no tasks open): arrivals are admitted — their
// state computed ahead of the next assignment round — and departures are
// evicted, exactly as Evaluate would, without building an evaluator.
func (s *Session) Sync(inst *model.Instance) {
	s.gen++
	users := make([]int32, len(inst.Workers))
	for i, w := range inst.Workers {
		users[i] = int32(w.User)
	}
	s.admitUsers(users)
	s.admitTasks(inst)
	s.evict()
}

// admitUsers stamps the instant's users and computes state for the ones
// the session has never seen.
func (s *Session) admitUsers(users []int32) {
	s.pendU = s.pendU[:0]
	for _, u := range users {
		st, ok := s.users[u]
		if !ok {
			s.admitSeq++
			st = &userState{seq: s.admitSeq}
			s.users[u] = st
			s.pendU = append(s.pendU, pendingUser{u: u, st: st})
		}
		st.gen = s.gen
	}
	prop := s.comps&Propagation != 0
	parallel.For(s.par, len(s.pendU), func(_, i int) {
		p := s.pendU[i]
		if prop {
			p.st.roots = compactRoots(s.eng.Prop, p.u)
			p.st.propSum = propagationSum(p.st.roots, p.u, s.scale)
		} else {
			// The AP metric is still reported for propagation-free
			// variants; compute it from the collection without letting it
			// affect if().
			p.st.propSum = s.eng.Prop.PropagationSum(p.u)
		}
	})
}

// admitTasks stamps the instant's tasks and computes state for newly
// arrived ones. Per-task randomness is keyed by stable task identity via
// randx.Mix, so the computed state is independent of the task's position
// in the instance and of which instant first computed it.
func (s *Session) admitTasks(inst *model.Instance) {
	if s.comps&(Affinity|Willingness) == 0 {
		return
	}
	if s.comps&Willingness != 0 && s.models == nil {
		s.models = s.eng.truncatedModels(s.par)
	}
	s.pendT = s.pendT[:0]
	for j := range inst.Tasks {
		key := uint64(inst.Tasks[j].ID)
		st, ok := s.tasks[key]
		if !ok {
			s.admitSeq++
			st = &taskState{seq: s.admitSeq}
			s.tasks[key] = st
			s.pendT = append(s.pendT, pendingTask{key: key, j: j, st: st})
		} else if st.gen == s.gen {
			// Two tasks of one instance share an ID: the cache would
			// silently serve one task's state for the other. Fail loudly —
			// identity hygiene is the session layer's one precondition.
			panic(fmt.Sprintf("influence: duplicate task ID %d in instance; per-task state is keyed by stable identity", inst.Tasks[j].ID))
		}
		st.gen = s.gen
	}
	nU := s.eng.Prop.Graph().N()
	parallel.For(s.par, len(s.pendT), func(_, i int) {
		p := s.pendT[i]
		task := inst.Tasks[p.j]
		if s.comps&Affinity != 0 {
			doc := make([]int32, len(task.Categories))
			for k, c := range task.Categories {
				doc[k] = int32(c)
			}
			p.st.theta = s.eng.LDA.Infer(doc, randx.Mix(s.seed, p.key))
		}
		if s.comps&Willingness != 0 {
			row := make([]float32, nU)
			sum := 0.0
			for u := 0; u < nU; u++ {
				wm := s.models[u]
				if wm == nil {
					continue
				}
				v := wm.Willingness(task.Loc)
				row[u] = float32(v)
				sum += v
			}
			p.st.row, p.st.colSum = row, sum
		}
	})
}

// evict drops cached state whose task or worker was absent from the
// current instant (assigned, expired or gone offline); carry-over memory
// is therefore bounded by the live pool, not the run's history. When a
// capacity is set it is enforced on the survivors: the earliest-admitted
// live entries are dropped until each cache fits, so memory is bounded
// even when the live pool is not (adversarial never-leaving streams).
func (s *Session) evict() {
	for key, st := range s.tasks {
		if st.gen != s.gen {
			delete(s.tasks, key)
		}
	}
	for u, st := range s.users {
		if st.gen != s.gen {
			delete(s.users, u)
		}
	}
	if s.capacity <= 0 {
		return
	}
	// Collect (admission seq, key), sort by the unique seq, drop the
	// oldest: deterministic regardless of map iteration order.
	type agedTask struct {
		seq uint64
		key uint64
	}
	if over := len(s.tasks) - s.capacity; over > 0 {
		byAge := make([]agedTask, 0, len(s.tasks))
		for key, st := range s.tasks {
			byAge = append(byAge, agedTask{st.seq, key})
		}
		sort.Slice(byAge, func(i, j int) bool { return byAge[i].seq < byAge[j].seq })
		for _, e := range byAge[:over] {
			delete(s.tasks, e.key)
		}
	}
	type agedUser struct {
		seq uint64
		u   int32
	}
	if over := len(s.users) - s.capacity; over > 0 {
		byAge := make([]agedUser, 0, len(s.users))
		for u, st := range s.users {
			byAge = append(byAge, agedUser{st.seq, u})
		}
		sort.Slice(byAge, func(i, j int) bool { return byAge[i].seq < byAge[j].seq })
		for _, e := range byAge[:over] {
			delete(s.users, e.u)
		}
	}
}
