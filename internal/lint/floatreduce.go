package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatReduce enforces the reduction-order half of the bit-identical
// contract: float addition is not associative, so `+=`/`-=` on a float
// reached from outside a concurrently-scheduled closure produces sums
// whose bits depend on goroutine interleaving even when every access is
// perfectly synchronized. Two accumulator shapes are flagged inside
// goroutine bodies and parallel.For/ForChunks chunk closures:
//
//   - accumulation into captured state (bare variable or field path) —
//     the shared-scalar reduction;
//   - accumulation into an element indexed by the closure's worker
//     argument — per-worker scratch that is later reduced, which is
//     scheduling-dependent because workers claim items dynamically.
//
// The sanctioned pattern is per-chunk accumulation into chunk- or
// item-indexed state followed by a sequential reduce, which both shapes
// of flagged code can be rewritten into.
var FloatReduce = &Analyzer{
	Name: "floatreduce",
	Doc:  "float += / -= on captured or worker-indexed state inside goroutine or pool chunk closures (non-associative reduction order)",
	Run:  runFloatReduce,
}

func runFloatReduce(pass *Pass) {
	pkg := pass.Pkg
	for _, file := range pkg.Files {
		if isTestFile(pkg, file.Pos()) {
			continue
		}
		parents := buildParents(file)
		forEachPoolClosure(pkg, file, func(callee string, lit *ast.FuncLit) {
			checkFloatAccum(pass, parents, lit, "parallel."+callee+" chunk", workerParam(pkg, lit))
		})
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				checkFloatAccum(pass, parents, lit, "goroutine", nil)
			}
			return true
		})
	}
}

// workerParam returns the object of the closure's first parameter — the
// pool worker index, the one index that is scheduling-dependent.
func workerParam(pkg *Package, lit *ast.FuncLit) types.Object {
	params := lit.Type.Params
	if params == nil || len(params.List) == 0 || len(params.List[0].Names) == 0 {
		return nil
	}
	return pkg.Info.Defs[params.List[0].Names[0]]
}

func checkFloatAccum(pass *Pass, parents parentMap, lit *ast.FuncLit, kind string, worker types.Object) {
	pkg := pass.Pkg
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok {
			// Nested pool closures and goroutine bodies form their own
			// accumulation context and are checked there.
			if isPoolClosureArg(pkg, parents, inner) {
				return false
			}
			if g, ok := parents[parents[inner]].(*ast.GoStmt); ok && g.Call.Fun == ast.Expr(inner) {
				return false
			}
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || (assign.Tok != token.ADD_ASSIGN && assign.Tok != token.SUB_ASSIGN) {
			return true
		}
		for _, lhs := range assign.Lhs {
			if !isFloat(pkg.Info.TypeOf(lhs)) {
				continue
			}
			indexed, workerIndexed := indexShape(pkg, lhs, worker)
			switch {
			case !indexed && rootCaptured(pkg, lit, lhs):
				pass.Reportf(lhs.Pos(), "float accumulation into %s, captured from outside the %s closure, has scheduling-dependent reduction order; accumulate per chunk and reduce sequentially", types.ExprString(lhs), kind)
			case workerIndexed:
				pass.Reportf(lhs.Pos(), "per-worker float accumulation into %s is scheduling-dependent (workers claim items dynamically); key scratch by chunk or item index instead", types.ExprString(lhs))
			}
		}
		return true
	})
}

// indexShape peels the lvalue and reports whether it passes through any
// index expression, and whether any such index mentions the worker
// parameter.
func indexShape(pkg *Package, e ast.Expr, worker types.Object) (indexed, workerIndexed bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			indexed = true
			if worker != nil && mentionsObject(pkg, x.Index, worker) {
				workerIndexed = true
			}
			e = x.X
		default:
			return indexed, workerIndexed
		}
	}
}

// mentionsObject reports whether the expression references obj.
func mentionsObject(pkg *Package, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
