package lint

import (
	"go/ast"
	"go/types"
)

// AtomicWrite enforces the durability half of the repository contract:
// every artifact write goes through internal/atomicio (write-temp +
// fsync + rename), so a crashed writer can never leave a half-written
// file where a reader will find it. The analyzer flags the in-place
// write primitives — os.WriteFile, os.Create, and io.WriteString onto
// an *os.File — everywhere except inside internal/atomicio itself
// (which owns the one sanctioned temp-file write) and test/testdata
// code, which tears files on purpose.
var AtomicWrite = &Analyzer{
	Name: "atomicwrite",
	Doc:  "os.WriteFile/os.Create/io.WriteString-to-*os.File outside internal/atomicio bypass the atomic artifact-write discipline",
	Run:  runAtomicWrite,
}

func runAtomicWrite(pass *Pass) {
	pkg := pass.Pkg
	if pkgPathIs(pkg.Path, "internal/atomicio") || pkgPathIs(pkg.Path, "atomicio") {
		return
	}
	for _, file := range pkg.Files {
		if isTestFile(pkg, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case isPkgFunc(pkg.Info, call, "os", "WriteFile"):
				pass.Reportf(call.Pos(), "os.WriteFile is not atomic: a crash mid-write leaves a torn file; use atomicio.WriteFile (temp + fsync + rename)")
			case isPkgFunc(pkg.Info, call, "os", "Create"):
				pass.Reportf(call.Pos(), "os.Create opens an in-place overwrite path; route the write through atomicio.WriteFile (temp + fsync + rename)")
			case isPkgFunc(pkg.Info, call, "io", "WriteString") && len(call.Args) > 0 && isOSFile(pkg.Info.TypeOf(call.Args[0])):
				pass.Reportf(call.Pos(), "io.WriteString to an *os.File writes in place; route the write through atomicio.WriteFile (temp + fsync + rename)")
			}
			return true
		})
	}
}

// isOSFile reports whether t is *os.File.
func isOSFile(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}
