package lint

import (
	"go/ast"
	"go/types"
)

// PoolPurity enforces the chunk-purity contract of internal/parallel:
// closures handed to parallel.For / parallel.ForChunks run concurrently
// on a dynamic item-claiming pool, so they may write only to
// chunk-indexed state (slice elements indexed by the item or chunk
// argument). A write to a variable captured from the enclosing scope —
// a bare identifier, a field through a captured struct, or any entry of
// a captured map — is a data race the -race legs can only catch when a
// seed happens to interleave it. The analyzer makes the discipline
// compile-time: index writes into captured slices stay allowed
// (that is the sanctioned arena pattern), everything else is flagged.
var PoolPurity = &Analyzer{
	Name: "poolpurity",
	Doc:  "writes to captured variables inside closures passed to parallel.For/ForChunks (shared-arena races)",
	Run:  runPoolPurity,
}

// forEachPoolClosure invokes fn for every function literal passed
// directly to parallel.For or parallel.ForChunks in the file.
func forEachPoolClosure(pkg *Package, file *ast.File, fn func(callee string, lit *ast.FuncLit)) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch {
		case isPkgFunc(pkg.Info, call, "parallel", "For"):
			name = "For"
		case isPkgFunc(pkg.Info, call, "parallel", "ForChunks"):
			name = "ForChunks"
		default:
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				fn(name, lit)
			}
		}
		return true
	})
}

// isPoolClosureArg reports whether the literal is itself the chunk
// closure of a nested pool call — those are analyzed on their own, so
// walks of an enclosing closure skip them to avoid double reports.
func isPoolClosureArg(pkg *Package, parents parentMap, lit *ast.FuncLit) bool {
	call, ok := parents[lit].(*ast.CallExpr)
	if !ok {
		return false
	}
	return isPkgFunc(pkg.Info, call, "parallel", "For") || isPkgFunc(pkg.Info, call, "parallel", "ForChunks")
}

// capturedBy reports whether obj is a variable declared outside the
// literal — i.e. captured from an enclosing scope (or package level).
func capturedBy(lit *ast.FuncLit, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pos() == 0 {
		return false
	}
	return v.Pos() < lit.Pos() || v.Pos() > lit.End()
}

func runPoolPurity(pass *Pass) {
	pkg := pass.Pkg
	for _, file := range pkg.Files {
		if isTestFile(pkg, file.Pos()) {
			continue
		}
		parents := buildParents(file)
		forEachPoolClosure(pkg, file, func(callee string, lit *ast.FuncLit) {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if inner, ok := n.(*ast.FuncLit); ok && isPoolClosureArg(pkg, parents, inner) {
					return false
				}
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						checkPoolWrite(pass, callee, lit, lhs)
					}
				case *ast.IncDecStmt:
					checkPoolWrite(pass, callee, lit, n.X)
				}
				return true
			})
		})
	}
}

// checkPoolWrite classifies one write target inside a pool closure,
// peeling selectors and derefs down to the written variable. A write
// that passes through a slice/array index is chunk-indexed state and
// allowed; a captured map hit, a captured bare variable or a field of a
// captured struct is flagged.
func checkPoolWrite(pass *Pass, callee string, lit *ast.FuncLit, target ast.Expr) {
	pkg := pass.Pkg
	e := target
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pkg.Info.Defs[x]
			if obj == nil {
				obj = pkg.Info.Uses[x]
			}
			if capturedBy(lit, obj) {
				pass.Reportf(target.Pos(), "write to %s, captured from outside the parallel.%s closure, breaks chunk purity (write only to chunk-indexed state)", types.ExprString(target), callee)
			}
			return
		case *ast.SelectorExpr:
			// A qualified package-level variable (pkg.Var) is shared
			// state by definition.
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
					pass.Reportf(target.Pos(), "write to package-level %s inside a parallel.%s closure breaks chunk purity", types.ExprString(target), callee)
					return
				}
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			if isMapType(pkg.Info.TypeOf(x.X)) {
				if rootCaptured(pkg, lit, x.X) {
					pass.Reportf(target.Pos(), "write into captured map %s inside a parallel.%s closure races (maps are not chunk-indexable state)", types.ExprString(x.X), callee)
				}
				return
			}
			return // slice/array element write: the sanctioned arena pattern
		default:
			return
		}
	}
}

// rootCaptured peels e to its root identifier and reports whether that
// variable is captured from outside the literal.
func rootCaptured(pkg *Package, lit *ast.FuncLit, e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pkg.Info.Defs[x]
			if obj == nil {
				obj = pkg.Info.Uses[x]
			}
			return capturedBy(lit, obj)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return false
		}
	}
}
