// Package parallel is a fixture stub with the same call shapes as the
// real dita/internal/parallel pool: the analyzers resolve pool calls by
// package-path tail, so fixtures exercise them against this stub
// without importing the real module.
package parallel

// For mirrors parallel.For(workers, n, fn(worker, i)).
func For(workers, n int, fn func(worker, i int)) {
	for i := 0; i < n; i++ {
		fn(0, i)
	}
}

// ForChunks mirrors parallel.ForChunks(workers, n, size, fn(worker, chunk, lo, hi)).
func ForChunks(workers, n, size int, fn func(worker, chunk, lo, hi int)) {
	for c, lo := 0, 0; lo < n; c, lo = c+1, lo+size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		fn(0, c, lo, hi)
	}
}
