// Package shared is a fixture dependency exposing a package-level
// variable for qualified-write cases.
package shared

// Counter is process-global state: any write from a pool closure races.
var Counter int
