// Package atomicio is the fixture stand-in for dita/internal/atomicio:
// the one package allowed to touch the in-place write primitives,
// because it is the package that wraps them in temp + fsync + rename.
package atomicio

import (
	"io"
	"os"
)

// WriteFile is the sanctioned home of the raw write path.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(f, string(data)); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
