// Package atomicwrite fixtures: in-place write primitives outside
// internal/atomicio.
package atomicwrite

import (
	"io"
	"os"
	"strings"
)

// directWrite lands bytes in place: a crash mid-write leaves a torn
// file.
func directWrite(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want "os.WriteFile is not atomic"
}

// createAndStream opens an in-place overwrite path and streams into it.
func createAndStream(path, s string) error {
	f, err := os.Create(path) // want "os.Create opens an in-place overwrite path"
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.WriteString(f, s) // want "io.WriteString to an .os.File writes in place"
	return err
}

// inMemory writes into a builder: no file involved, exempt.
func inMemory(s string) string {
	var b strings.Builder
	_, _ = io.WriteString(&b, s)
	return b.String()
}

// readOnly never writes: exempt.
func readOnly(path string) ([]byte, error) {
	return os.ReadFile(path)
}
