// Test files are exempt: tests write scratch files and deliberately
// torn fixtures.
package atomicwrite

import "os"

func writeScratchInTest(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
