// Package maporder fixtures: order-sensitive work under range-over-map.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

// collectWithoutSort is the raw bug: element order is map iteration
// order and nothing restores it.
func collectWithoutSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys in map iteration order without a subsequent sort"
	}
	return keys
}

// collectThenSort is the sanctioned sorted-keys pre-pass.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type entry struct {
	Key string
	Val int
}

type wire struct {
	Entries []entry
}

// collectPairsThenSort is the entropy.Wire shape: collect (key, value)
// pairs through a selector lvalue, canonicalize with sort.Slice after.
func collectPairsThenSort(m map[string]int) wire {
	var w wire
	for k, v := range m {
		w.Entries = append(w.Entries, entry{Key: k, Val: v})
	}
	sort.Slice(w.Entries, func(i, j int) bool { return w.Entries[i].Key < w.Entries[j].Key })
	return w
}

// collectPairsNoSort leaves the collected pairs in iteration order.
func collectPairsNoSort(m map[string]int) wire {
	var w wire
	for k, v := range m {
		w.Entries = append(w.Entries, entry{Key: k, Val: v}) // want "append to w.Entries in map iteration order without a subsequent sort"
	}
	return w
}

// floatAccum is the PR 2 entropy.Compute bug class: float addition is
// not associative, so the sum's bits depend on visit order.
func floatAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "float accumulation into total in map iteration order"
	}
	return total
}

// intAccum is associative and therefore order-insensitive: exempt.
func intAccum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// orderedOutput writes bytes in iteration order, three sink shapes.
func orderedOutput(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		fmt.Fprintf(&b, "%s=%d\n", k, v) // want "fmt.Fprintf writes ordered output in map iteration order"
		b.WriteString(k)                 // want "WriteString writes ordered output in map iteration order"
		fmt.Println(v)                   // want "fmt.Println writes ordered output in map iteration order"
	}
	return b.String()
}

type bucket struct {
	vals  []int
	total float64
}

// perEntryState writes only through the iteration variables: each
// entry's state is touched once per visit, so order cannot matter.
func perEntryState(m map[string]*bucket) {
	for _, b := range m {
		b.vals = append(b.vals, 1)
		b.total += 0.5
	}
}

// orderInsensitive does nothing order-sensitive: copies into another
// map, deletes, compares.
func orderInsensitive(m map[string]float64) float64 {
	out := make(map[string]float64, len(m))
	max := 0.0
	for k, v := range m {
		out[k] = v
		if v > max {
			max = v
		}
		delete(m, k)
	}
	return max
}

// nested: the inner map range owns its violations; the outer loop is
// not additionally charged for them.
func nested(m map[string]map[string]float64) float64 {
	total := 0.0
	for _, inner := range m {
		for _, v := range inner {
			total += v // want "float accumulation into total in map iteration order"
		}
	}
	return total
}
