// Package floatreduce fixtures: scheduling-dependent float reductions
// inside goroutine and pool chunk closures.
package floatreduce

import (
	"parallel"
	"sync"
)

// sharedAccum reduces into a captured scalar: even with a mutex the
// addition order follows goroutine scheduling, and float addition is
// not associative.
func sharedAccum(xs []float64) float64 {
	var mu sync.Mutex
	total := 0.0
	parallel.For(4, len(xs), func(worker, i int) {
		mu.Lock()
		total += xs[i] // want "float accumulation into total, captured from outside the parallel.For chunk closure"
		mu.Unlock()
	})
	return total
}

// perWorkerAccum keys scratch by the worker index: workers claim items
// dynamically, so which additions meet in which slot depends on
// scheduling.
func perWorkerAccum(xs []float64) float64 {
	sums := make([]float64, 4)
	parallel.For(4, len(xs), func(worker, i int) {
		sums[worker] += xs[i] // want "per-worker float accumulation into sums.worker."
	})
	total := 0.0
	for _, s := range sums {
		total += s
	}
	return total
}

// goAccum is the same shared-scalar bug in a bare goroutine.
func goAccum(xs []float64) float64 {
	var wg sync.WaitGroup
	total := 0.0
	for i := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total -= xs[i] // want "float accumulation into total, captured from outside the goroutine closure"
		}()
	}
	wg.Wait()
	return total
}

// chunkReduce is the sanctioned pattern: accumulate into closure-local
// or chunk-indexed state, reduce sequentially after the pool returns.
func chunkReduce(xs []float64) float64 {
	sums := make([]float64, (len(xs)+63)/64)
	parallel.ForChunks(4, len(xs), 64, func(worker, chunk, lo, hi int) {
		acc := 0.0
		for i := lo; i < hi; i++ {
			acc += xs[i]
		}
		sums[chunk] = acc
	})
	total := 0.0
	for _, s := range sums {
		total += s
	}
	return total
}

// itemIndexed accumulates into state keyed by the item index: each slot
// is owned by exactly one item, so order cannot vary.
func itemIndexed(xs []float64) []float64 {
	out := make([]float64, len(xs))
	parallel.For(4, len(xs), func(worker, i int) {
		out[i] += xs[i]
	})
	return out
}

// intCounter is an integer write: racy (poolpurity's finding), but not
// a float-reduction-order problem — this analyzer stays silent.
func intCounter(xs []float64) int {
	n := 0
	parallel.For(4, len(xs), func(worker, i int) {
		n++
	})
	return n
}
