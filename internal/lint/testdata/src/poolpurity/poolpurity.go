// Package poolpurity fixtures: writes to captured state inside
// parallel.For / parallel.ForChunks chunk closures.
package poolpurity

import (
	"parallel"
	"shared"
)

var hits int

type stats struct {
	n int
}

// sharedWrites is the race catalogue: every write reaches state shared
// across concurrently scheduled closure invocations.
func sharedWrites(xs []int) int {
	total := 0
	var collected []int
	seen := make(map[int]bool)
	st := &stats{}
	parallel.For(4, len(xs), func(worker, i int) {
		total += xs[i]                   // want "write to total, captured from outside the parallel.For closure"
		collected = append(collected, i) // want "write to collected, captured from outside the parallel.For closure"
		seen[xs[i]] = true               // want "write into captured map seen inside a parallel.For closure"
		st.n = i                         // want "write to st.n, captured from outside the parallel.For closure"
		hits++                           // want "write to hits, captured from outside the parallel.For closure"
		shared.Counter++                 // want "write to package-level shared.Counter inside a parallel.For closure"
	})
	return total
}

// derefWrite races through a captured pointer.
func derefWrite(xs []int, out *int) {
	parallel.For(4, len(xs), func(worker, i int) {
		*out = xs[i] // want "write to .out, captured from outside the parallel.For closure"
	})
}

// chunkIndexed is the sanctioned arena pattern: every write lands in
// state indexed by the item or chunk argument, plus closure-local
// scratch.
func chunkIndexed(xs []int) []int {
	res := make([]int, len(xs))
	sums := make([]int, (len(xs)+63)/64)
	parallel.ForChunks(4, len(xs), 64, func(worker, chunk, lo, hi int) {
		acc := 0
		for i := lo; i < hi; i++ {
			res[i] = xs[i] * 2
			acc += xs[i]
		}
		sums[chunk] = acc
	})
	total := 0
	for _, s := range sums {
		total += s
	}
	_ = total
	return res
}

// nested: the inner pool closure owns its violations; the outer walk
// does not double-report them.
func nested(grid [][]int) {
	rows := make([]int, len(grid))
	parallel.For(2, len(grid), func(worker, i int) {
		n := 0
		parallel.For(2, len(grid[i]), func(w2, j int) {
			n++ // want "write to n, captured from outside the parallel.For closure"
		})
		rows[i] = n
	})
}
