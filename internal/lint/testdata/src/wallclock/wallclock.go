// Package wallclock fixtures: wall-clock and global-randomness leakage
// into deterministic code, and //dita:wallclock directive verification.
package wallclock

import (
	"fmt"
	"math/rand"
	"time"
)

// bareClock reads the wall clock with no directive: flagged.
func bareClock() time.Duration {
	start := time.Now() // want "wall-clock time.Now in deterministic code"
	work()
	return time.Since(start) // want "wall-clock time.Since in deterministic code"
}

// annotatedTiming is the sanctioned shape: every wall-clock line
// carries the directive and the captured instant is duration-only.
func annotatedTiming() time.Duration {
	start := time.Now() //dita:wallclock
	work()
	return time.Since(start) //dita:wallclock
}

// rearmedTiming re-arms the same variable from a fresh annotated
// time.Now — the cmd/dita-bench bench-loop shape.
func rearmedTiming() (time.Duration, time.Duration) {
	start := time.Now() //dita:wallclock
	work()
	first := time.Since(start) //dita:wallclock
	start = time.Now()         //dita:wallclock
	work()
	return first, time.Since(start) //dita:wallclock
}

// subTiming consumes the instant through Time.Sub instead of
// time.Since: still duration-only.
func subTiming() time.Duration {
	start := time.Now() //dita:wallclock
	end := time.Now()   //dita:wallclock
	return end.Sub(start)
}

// leakedInstant carries the directive but the captured time escapes
// into output — not a duration-only use, so the exemption is refused.
func leakedInstant() {
	start := time.Now() //dita:wallclock // want "not duration-only"
	fmt.Println(start)
}

// staleDirective sits on a line with no wall-clock call: flagged, so an
// exemption cannot outlive the timing code it excused.
func staleDirective() int {
	x := 41 //dita:wallclock // want "stale //dita:wallclock directive"
	return x + 1
}

// barePacing blocks deterministic code on real time with no directive:
// every pacing form is flagged.
func barePacing() {
	time.Sleep(time.Millisecond) // want "real-time time.Sleep"
	select {
	case <-time.After(time.Millisecond): // want "real-time time.After"
	case <-time.Tick(time.Millisecond): // want "real-time time.Tick"
	}
	_ = time.NewTicker(time.Millisecond)       // want "real-time time.NewTicker"
	_ = time.NewTimer(time.Millisecond)        // want "real-time time.NewTimer"
	_ = time.AfterFunc(time.Millisecond, work) // want "real-time time.AfterFunc"
}

// annotatedPacing is the sanctioned serve-boundary shape: the pacing
// call's line carries the directive (no duration audit applies — there
// is no captured instant to leak).
func annotatedPacing() {
	time.Sleep(time.Millisecond)          //dita:wallclock
	t := time.NewTicker(time.Millisecond) //dita:wallclock
	defer t.Stop()
	select {
	case <-time.After(time.Millisecond): //dita:wallclock
	case <-t.C:
	}
}

// globalRand draws from the process-wide source: flagged, with no
// directive escape.
func globalRand() float64 {
	n := rand.Intn(10)                 // want "global math/rand.Intn"
	return rand.Float64() + float64(n) // want "global math/rand.Float64"
}

// seededRand draws from an explicitly seeded stream: exempt.
func seededRand() int {
	r := rand.New(rand.NewSource(7))
	return r.Intn(10)
}

func work() {}
