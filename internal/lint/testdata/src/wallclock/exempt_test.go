// Test files are exempt from the wallclock analyzer wholesale:
// measuring time is what benchmarks and deadline tests do, and even a
// stale //dita:wallclock directive here stays silent.
package wallclock

import "time"

func timedInTest() time.Duration {
	start := time.Now()
	leaked := start //dita:wallclock
	_ = leaked
	return time.Since(start)
}
