package lint

import (
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture self-tests assert the EXACT diagnostic set of every
// analyzer: each `// want "regexp"` comment in a fixture must be
// matched by exactly one diagnostic on its line, and no diagnostic may
// appear without a matching want. The subtests run in parallel on
// independent loaders, so the race-enabled CI legs also gate fixture
// parsing and type-checking for data races.

func TestLintMapOrderFixture(t *testing.T)    { testAnalyzerFixture(t, MapOrder, "maporder") }
func TestLintWallClockFixture(t *testing.T)   { testAnalyzerFixture(t, WallClock, "wallclock") }
func TestLintAtomicWriteFixture(t *testing.T) { testAnalyzerFixture(t, AtomicWrite, "atomicwrite") }
func TestLintPoolPurityFixture(t *testing.T)  { testAnalyzerFixture(t, PoolPurity, "poolpurity") }
func TestLintFloatReduceFixture(t *testing.T) { testAnalyzerFixture(t, FloatReduce, "floatreduce") }

// TestLintAtomicWriteExemptsAtomicioPackage pins the one sanctioned
// home of the raw write primitives: a package named atomicio full of
// os.Create/io.WriteString stays diagnostic-free.
func TestLintAtomicWriteExemptsAtomicioPackage(t *testing.T) {
	testAnalyzerFixture(t, AtomicWrite, "atomicio")
}

func testAnalyzerFixture(t *testing.T, analyzer *Analyzer, fixture string) {
	t.Parallel()
	pkg, err := LoadFixture("testdata/src", fixture)
	if err != nil {
		t.Fatalf("load fixture %s: %v", fixture, err)
	}
	diags := Run(pkg, []*Analyzer{analyzer})
	wants := parseWants(t, pkg)
	for _, d := range diags {
		key := wantKey{file: d.Pos.Filename, line: d.Pos.Line}
		matched := false
		for i, re := range wants[key] {
			if re.MatchString(d.Message) {
				wants[key] = append(wants[key][:i], wants[key][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("missing diagnostic at %s:%d matching %q", key.file, key.line, re)
		}
	}
}

type wantKey struct {
	file string
	line int
}

var (
	wantRE    = regexp.MustCompile(`want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)
	wantStrRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

// parseWants collects the `// want "..." ["..."]...` expectations of a
// fixture package, keyed by the comment's line. Expectations in
// _test.go fixture files are ignored like the files themselves.
func parseWants(t *testing.T, pkg *Package) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, file := range pkg.Files {
		if isTestFile(pkg, file.Pos()) {
			continue
		}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				for _, q := range wantStrRE.FindAllString(m[1], -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, s, err)
					}
					key := wantKey{file: pos.Filename, line: pos.Line}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// TestRepoLintClean runs the whole suite over the repository exactly as
// cmd/dita-lint does and requires zero diagnostics: the invariants the
// analyzers enforce hold at HEAD, always.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks every package; skipped in -short")
	}
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	for _, pkg := range pkgs {
		for _, d := range Run(pkg, All()) {
			t.Errorf("%s", d)
		}
	}
}

// TestLintDriverFailsOnViolations runs the real cmd/dita-lint binary
// against the atomicwrite negative fixture (the one fixture whose
// imports are pure stdlib, so the production loader can resolve it) and
// requires a non-zero exit carrying file:line diagnostics — the
// contract the CI lint gate relies on.
func TestLintDriverFailsOnViolations(t *testing.T) {
	t.Parallel()
	cmd := exec.Command("go", "run", "./cmd/dita-lint", "./internal/lint/testdata/src/atomicwrite")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("dita-lint exited 0 on a negative fixture; output:\n%s", out)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("dita-lint did not run: %v\n%s", err, out)
	}
	if !regexp.MustCompile(`atomicwrite\.go:\d+:\d+: \[atomicwrite\] `).Match(out) {
		t.Errorf("driver output has no file:line:col diagnostics; got:\n%s", out)
	}
	for _, frag := range []string{
		"os.WriteFile is not atomic",
		"os.Create opens an in-place overwrite path",
		"io.WriteString to an *os.File writes in place",
	} {
		if !strings.Contains(string(out), frag) {
			t.Errorf("driver output missing %q; got:\n%s", frag, out)
		}
	}
}
