package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WallClock enforces the no-nondeterministic-inputs half of the
// bit-identical-output contract: deterministic code may not read the
// wall clock (time.Now, time.Since), pace itself on real time
// (time.Sleep, time.After, time.Tick, time.NewTicker, time.NewTimer,
// time.AfterFunc), or draw from the process-global math/rand source.
// Timing measurement and real-time pacing at the serve boundary are the
// sanctioned wall-clock uses — per-instant latency, bench points,
// retry backoff, the dita-serve tick loop — and such sites opt out with
// a //dita:wallclock directive on the call's line. The directive is
// itself verified: it must sit on a line with a wall-clock call (a
// stale directive is diagnosed, so exemptions cannot outlive the code
// they excused), and a directive on time.Now additionally requires the
// captured instant to be duration-only — every use of the variable must
// flow into time.Since or (time.Time).Sub, never into output, artifacts
// or control flow. Global math/rand has no directive escape:
// deterministic randomness comes from seeded randx streams. _test.go
// files are exempt wholesale, directives included.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "time.Now/time.Since, sleeps/tickers and global math/rand in deterministic code; timing and serve-boundary sites opt out via audited //dita:wallclock",
	Run:  runWallClock,
}

// realTimePacing lists the time-package calls that block on or schedule
// against the wall clock. Unlike time.Now they produce no instant to
// audit — the directive on their line is the whole exemption — but like
// every wall-clock call they make behavior depend on real time, which
// deterministic code must not.
var realTimePacing = map[string]bool{
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// directivePrefix is the comment form of the timing-site exemption. The
// standard Go directive shape (no space after //) keeps gofmt from
// reflowing it.
const directivePrefix = "dita:wallclock"

type wallclockDirective struct {
	pos  token.Pos
	used bool
}

func runWallClock(pass *Pass) {
	pkg := pass.Pkg
	for _, file := range pkg.Files {
		if isTestFile(pkg, file.Pos()) {
			continue
		}
		parents := buildParents(file)
		directives := map[int]*wallclockDirective{}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if strings.HasPrefix(text, directivePrefix) {
					directives[pkg.Fset.Position(c.Slash).Line] = &wallclockDirective{pos: c.Slash}
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				switch {
				case fn.Name() == "Now" || fn.Name() == "Since":
					d := directives[pkg.Fset.Position(call.Pos()).Line]
					if d == nil {
						pass.Reportf(call.Pos(), "wall-clock time.%s in deterministic code; annotate genuine timing sites with //dita:wallclock", fn.Name())
						return true
					}
					d.used = true
					if fn.Name() == "Now" && !durationOnly(pkg, parents, file, call) {
						pass.Reportf(call.Pos(), "//dita:wallclock on a time.Now whose result is not duration-only (every use must flow into time.Since or Time.Sub)")
					}
				case realTimePacing[fn.Name()]:
					d := directives[pkg.Fset.Position(call.Pos()).Line]
					if d == nil {
						pass.Reportf(call.Pos(), "real-time time.%s paces deterministic code on the wall clock; annotate serve-boundary pacing sites with //dita:wallclock", fn.Name())
						return true
					}
					d.used = true
				}
			case "math/rand", "math/rand/v2":
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true // methods on an explicit *rand.Rand carry their own seed
				}
				switch fn.Name() {
				case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
					return true // constructors taking an explicit seed/source
				}
				pass.Reportf(call.Pos(), "global math/rand.%s draws from process-wide shared state and breaks run-to-run determinism; use a seeded randx stream", fn.Name())
			}
			return true
		})
		for _, d := range directives {
			if !d.used {
				pass.Reportf(d.pos, "stale //dita:wallclock directive: no wall-clock call on this line")
			}
		}
	}
}

// durationOnly reports whether the time.Now call's result is consumed
// exclusively as a duration: it must be assigned to a plain variable
// whose every other use is an argument (or receiver) of time.Since or
// (time.Time).Sub, or a re-assignment from another time.Now.
func durationOnly(pkg *Package, parents parentMap, file *ast.File, call *ast.CallExpr) bool {
	assign, ok := parents[call].(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 || assign.Rhs[0] != ast.Expr(call) || len(assign.Lhs) != 1 {
		return false
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := pkg.Info.Defs[id]
	if obj == nil {
		obj = pkg.Info.Uses[id]
	}
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	good := true
	ast.Inspect(file, func(n ast.Node) bool {
		use, ok := n.(*ast.Ident)
		if !ok || (pkg.Info.Uses[use] != obj && pkg.Info.Defs[use] != obj) {
			return true
		}
		if !durationUse(pkg, parents, use) {
			good = false
		}
		return true
	})
	return good
}

// durationUse classifies one appearance of the captured instant.
func durationUse(pkg *Package, parents parentMap, use *ast.Ident) bool {
	for p := parents[use]; p != nil; p = parents[p] {
		switch ctx := p.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(pkg.Info, ctx)
			if fn == nil {
				return false
			}
			full := fn.FullName()
			return full == "time.Since" || full == "(time.Time).Sub"
		case *ast.AssignStmt:
			// The defining assignment (or a re-arm from a fresh
			// time.Now, which is separately verified on its own line).
			for _, lhs := range ctx.Lhs {
				if lhs == ast.Expr(use) {
					nowCall, ok := ast.Unparen(ctx.Rhs[0]).(*ast.CallExpr)
					return ok && len(ctx.Rhs) == 1 && isPkgFunc(pkg.Info, nowCall, "time", "Now")
				}
			}
			return false
		case ast.Stmt, *ast.FuncDecl:
			return false
		}
	}
	return false
}
