// Package lint is the repository's determinism/durability static
// analyzer. It mechanically enforces the invariants every PR has so far
// staked on review discipline alone:
//
//   - bit-identical output at any Parallelism — no map-iteration-order
//     dependence (maporder), no shared-state writes inside pool chunk
//     closures (poolpurity), no scheduling-dependent float reductions
//     (floatreduce);
//   - no wall-clock or global-randomness leakage into deterministic
//     paths — time.Now/time.Since only at annotated timing sites,
//     global math/rand never (wallclock);
//   - every artifact write atomic and checksummed — os.WriteFile and
//     friends only inside internal/atomicio (atomicwrite).
//
// The suite is stdlib-only (go/parser + go/types; packages enumerated
// via `go list`). cmd/dita-lint drives it over ./... as a hard-failing
// CI leg; the self-tests in this package pin each analyzer's exact
// diagnostic set against testdata fixtures.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Run inspects the files of a
// type-checked package and reports diagnostics through the pass.
type Analyzer struct {
	Name string // short invariant name, printed in diagnostics
	Doc  string // one-line description of the enforced rule
	Run  func(*Pass)
}

// Package is a loaded, type-checked package ready to be analyzed.
type Package struct {
	Path  string // import path (fixtures use their testdata-relative path)
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicWrite,
		FloatReduce,
		MapOrder,
		PoolPurity,
		WallClock,
	}
}

// ByName resolves an analyzer by its Name, nil when unknown.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies the analyzers to the package and returns the diagnostics
// sorted by file, line, column, analyzer.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &diags})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// isTestFile reports whether the file holding pos is a _test.go file.
// Test code is exempt from every analyzer: tests measure time, seed
// global rand and write scratch files on purpose.
func isTestFile(pkg *Package, pos token.Pos) bool {
	return strings.HasSuffix(pkg.Fset.Position(pos).Filename, "_test.go")
}

// pkgPathIs reports whether path is the repo package with the given
// tail — matching both the real module path ("dita/"+tail) and the bare
// tail the testdata fixtures are loaded under.
func pkgPathIs(path, tail string) bool {
	return path == tail || path == "dita/"+tail || strings.HasSuffix(path, "/"+tail)
}

// calleeFunc resolves the function or method a call invokes, nil for
// builtins, conversions and indirect calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether the call invokes a package-level function
// with the given name from the package path (exact stdlib path, or a
// repo path matched by pkgPathIs).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == pkgPath || pkgPathIs(p, pkgPath)
}

// isFloat reports whether t is (or has underlying) float32/float64.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// parentMap records, for every node in a file, its enclosing node.
// Stdlib go/ast has no parent links; the analyzers need them to
// classify the context of an expression (enclosing assignment, call,
// function).
type parentMap map[ast.Node]ast.Node

func buildParents(file *ast.File) parentMap {
	parents := parentMap{}
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// enclosingFunc returns the body of the innermost function declaration
// or literal containing n, nil at file scope.
func enclosingFunc(parents parentMap, n ast.Node) *ast.BlockStmt {
	for p := parents[n]; p != nil; p = parents[p] {
		switch f := p.(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}
