package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
}

// Load enumerates the packages matching the patterns with `go list`,
// parses and type-checks them (non-test files only — test code is
// exempt from every invariant anyway) and returns them ready to
// analyze. Module-internal imports are resolved against the loaded set
// in dependency order; stdlib imports are type-checked from GOROOT
// source, so the loader needs nothing beyond the go toolchain and the
// standard library.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w", strings.Join(patterns, " "), err)
	}

	var listed []*listedPackage
	byPath := map[string]*listedPackage{}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		lp := &listedPackage{}
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		listed = append(listed, lp)
		byPath[lp.ImportPath] = lp
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		listed: byPath,
		loaded: map[string]*Package{},
	}
	var pkgs []*Package
	for _, lp := range listed {
		pkg, err := ld.check(lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// loader type-checks listed packages in dependency order, memoized, and
// falls back to the GOROOT source importer for everything outside the
// listed set.
type loader struct {
	fset   *token.FileSet
	std    types.Importer
	listed map[string]*listedPackage
	loaded map[string]*Package
}

func (ld *loader) Import(path string) (*types.Package, error) {
	if lp, ok := ld.listed[path]; ok {
		pkg, err := ld.check(lp)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) check(lp *listedPackage) (*Package, error) {
	if pkg, ok := ld.loaded[lp.ImportPath]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", lp.ImportPath)
		}
		return pkg, nil
	}
	ld.loaded[lp.ImportPath] = nil // cycle marker
	var files []string
	for _, f := range lp.GoFiles {
		files = append(files, filepath.Join(lp.Dir, f))
	}
	pkg, err := typeCheck(ld.fset, lp.ImportPath, files, ld)
	if err != nil {
		return nil, err
	}
	ld.loaded[lp.ImportPath] = pkg
	return pkg, nil
}

// typeCheck parses the files and type-checks them as one package,
// resolving imports through imp. Comments are kept: the wallclock
// analyzer reads //dita:wallclock directives and the fixture harness
// reads // want expectations.
func typeCheck(fset *token.FileSet, path string, files []string, imp types.Importer) (*Package, error) {
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: parsed, Types: tpkg, Info: info}, nil
}

// LoadFixture loads the fixture package at srcRoot/path for the
// analyzer self-tests. Unlike Load it reads every .go file in the
// directory — including _test.go-named fixtures, which exist precisely
// to pin the test-file exemptions — and resolves imports first against
// sibling fixture packages under srcRoot (so a fixture can import a
// stub "parallel" package), then against the standard library.
func LoadFixture(srcRoot, path string) (*Package, error) {
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		fset:    fset,
		srcRoot: srcRoot,
		std:     importer.ForCompiler(fset, "source", nil),
		loaded:  map[string]*Package{},
	}
	return ld.load(path)
}

type fixtureLoader struct {
	fset    *token.FileSet
	srcRoot string
	std     types.Importer
	loaded  map[string]*Package
}

func (ld *fixtureLoader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(ld.srcRoot, filepath.FromSlash(path)); dirExists(dir) {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

func (ld *fixtureLoader) load(path string) (*Package, error) {
	if pkg, ok := ld.loaded[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: fixture import cycle through %s", path)
		}
		return pkg, nil
	}
	ld.loaded[path] = nil
	dir := filepath.Join(ld.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: fixture %s: %w", path, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: fixture %s has no .go files", path)
	}
	pkg, err := typeCheck(ld.fset, path, files, ld)
	if err != nil {
		return nil, err
	}
	ld.loaded[path] = pkg
	return pkg, nil
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}
