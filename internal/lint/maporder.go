package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder enforces the oldest invariant in the repo — the one PR 2's
// entropy.Compute bug shipped against: Go randomizes map iteration
// order, so a `for … range m` over a map must not do anything
// order-sensitive in its body. Three order-sensitive effects are
// flagged:
//
//   - appending to a slice (element order = iteration order), unless
//     that slice is passed to a sort.* / slices.* call later in the
//     same function — the sanctioned collect-then-sort pre-pass;
//   - accumulating floats (+=, -= …): float addition is not
//     associative, so the sum's bits depend on visit order;
//   - writing ordered output (fmt.Fprint*/Print*, io.WriteString,
//     Write* methods): bytes land in iteration order.
//
// Writes rooted at the iteration variables themselves are per-entry
// state and order-insensitive, so they stay exempt.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "order-sensitive work (appends, float accumulation, ordered output) inside range-over-map without a sorted-keys pre-pass",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	pkg := pass.Pkg
	for _, file := range pkg.Files {
		if isTestFile(pkg, file.Pos()) {
			continue
		}
		parents := buildParents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(pkg.Info.TypeOf(rng.X)) {
				return true
			}
			checkMapRange(pass, parents, rng)
			return true
		})
	}
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRange(pass *Pass, parents parentMap, rng *ast.RangeStmt) {
	pkg := pass.Pkg
	iterVars := rangeVarObjects(pkg, rng)
	scope := enclosingFunc(parents, rng)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rng && isMapType(pkg.Info.TypeOf(inner.X)) {
			return false // the nested map range is checked on its own
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkMapRangeCall(pass, parents, rng, scope, iterVars, n)
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if isFloat(pkg.Info.TypeOf(lhs)) && !rootedAt(pkg, lhs, iterVars) {
						pass.Reportf(n.Pos(), "float accumulation into %s in map iteration order is bit-nondeterministic; iterate sorted keys instead", types.ExprString(lhs))
					}
				}
			}
		case *ast.IncDecStmt:
			if isFloat(pkg.Info.TypeOf(n.X)) && !rootedAt(pkg, n.X, iterVars) {
				pass.Reportf(n.Pos(), "float accumulation into %s in map iteration order is bit-nondeterministic; iterate sorted keys instead", types.ExprString(n.X))
			}
		}
		return true
	})
}

func checkMapRangeCall(pass *Pass, parents parentMap, rng *ast.RangeStmt, scope *ast.BlockStmt, iterVars map[types.Object]bool, call *ast.CallExpr) {
	pkg := pass.Pkg
	if isBuiltinAppend(pkg.Info, call) {
		if len(call.Args) == 0 || rootedAt(pkg, call.Args[0], iterVars) {
			return
		}
		if sortedAfter(pkg, scope, rng, call.Args[0]) {
			return
		}
		pass.Reportf(call.Pos(), "append to %s in map iteration order without a subsequent sort; do a sorted-keys pre-pass or sort the collected slice", types.ExprString(call.Args[0]))
		return
	}
	fn := calleeFunc(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	name := fn.Name()
	switch {
	case fn.Pkg().Path() == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")):
		pass.Reportf(call.Pos(), "fmt.%s writes ordered output in map iteration order; iterate sorted keys instead", name)
	case fn.FullName() == "io.WriteString":
		pass.Reportf(call.Pos(), "io.WriteString writes ordered output in map iteration order; iterate sorted keys instead")
	case isWriteMethod(fn):
		pass.Reportf(call.Pos(), "%s writes ordered output in map iteration order; iterate sorted keys instead", name)
	}
}

// rangeVarObjects collects the objects bound by the range's key/value
// variables.
func rangeVarObjects(pkg *Package, rng *ast.RangeStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pkg.Info.Defs[id]; obj != nil {
				vars[obj] = true
			} else if obj := pkg.Info.Uses[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

// rootedAt reports whether the lvalue/expression, peeled of selectors,
// derefs and indexes, bottoms out at one of the given objects.
func rootedAt(pkg *Package, e ast.Expr, objs map[types.Object]bool) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return objs[pkg.Info.Uses[x]] || objs[pkg.Info.Defs[x]]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return false
		}
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isWriteMethod reports whether fn is a Write-family method — the shape
// of ordered-output sinks (strings.Builder, bytes.Buffer, bufio.Writer,
// csv.Writer, …).
func isWriteMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune", "WriteAll":
		return true
	}
	return false
}

// sortedAfter reports whether, later in the enclosing function, the
// collected slice is handed to a sort.* or slices.* call — the
// canonical order-restoring pre-pass (entropy.Wire's collect-then-sort
// shape).
func sortedAfter(pkg *Package, scope *ast.BlockStmt, rng *ast.RangeStmt, target ast.Expr) bool {
	if scope == nil {
		return false
	}
	want := types.ExprString(target)
	sorted := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if exprMentions(types.ExprString(arg), want) {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// exprMentions reports whether the rendered expression text contains
// want as a whole token (so "keys" does not match "keys2").
func exprMentions(text, want string) bool {
	for i := 0; ; {
		j := strings.Index(text[i:], want)
		if j < 0 {
			return false
		}
		j += i
		before := j == 0 || !identChar(text[j-1])
		k := j + len(want)
		after := k == len(text) || !identChar(text[k])
		if before && after {
			return true
		}
		i = j + 1
	}
}

func identChar(b byte) bool {
	return b == '_' || ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || ('0' <= b && b <= '9')
}
