package assign

import (
	"testing"

	"dita/internal/geo"
	"dita/internal/model"
	"dita/internal/randx"
)

func benchInstance(nW, nT int, seed uint64) *model.Instance {
	rng := randx.New(seed)
	inst := &model.Instance{Now: 0}
	for i := 0; i < nW; i++ {
		inst.Workers = append(inst.Workers, model.Worker{
			ID: model.WorkerID(i), User: model.WorkerID(i),
			Loc:    geo.Point{X: rng.Float64() * 300, Y: rng.Float64() * 300},
			Radius: 25,
		})
	}
	for j := 0; j < nT; j++ {
		inst.Tasks = append(inst.Tasks, model.Task{
			ID:    model.TaskID(j),
			Loc:   geo.Point{X: rng.Float64() * 300, Y: rng.Float64() * 300},
			Valid: 5,
		})
	}
	return inst
}

// BenchmarkFeasiblePairs measures the grid-accelerated feasibility
// computation at the paper's default instance size.
func BenchmarkFeasiblePairs(b *testing.B) {
	inst := benchInstance(1200, 1500, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FeasiblePairs(inst, 5)
	}
}

// BenchmarkSolve measures each algorithm end to end on a paper-scale
// instance with precomputed pairs (the per-instance assignment cost the
// CPU-time figures report).
func BenchmarkSolve(b *testing.B) {
	inst := benchInstance(1200, 1500, 1)
	pairs := FeasiblePairs(inst, 5)
	infl := func(w, t int) float64 {
		h := uint64(w)*0x9e3779b97f4a7c15 ^ uint64(t)*0xbf58476d1ce4e5b9
		h ^= h >> 31
		return float64(h%1000) / 1000
	}
	entropy := func(t int) float64 { return float64(t%7) / 2 }
	for _, alg := range Algorithms {
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prob := &Problem{Inst: inst, Influence: infl, Entropy: entropy, SpeedKmH: 5, Pairs: pairs}
				Solve(alg, prob)
			}
		})
	}
}
