package assign

import (
	"reflect"
	"testing"

	"dita/internal/geo"
	"dita/internal/model"
	"dita/internal/randx"
)

// churnPlatform mimics the streaming platform's pool mechanics for the
// index tests: stable increasing IDs, arrival admission, task expiry,
// and retirement of matched entities — pool order always equals ID
// order.
type churnPlatform struct {
	workers []model.Worker
	tasks   []model.Task
	nextW   model.WorkerID
	nextT   model.TaskID
}

func (c *churnPlatform) addWorker(loc geo.Point, radius float64) {
	c.workers = append(c.workers, model.Worker{
		ID: c.nextW, User: c.nextW, Loc: loc, Radius: radius,
	})
	c.nextW++
}

func (c *churnPlatform) addTask(loc geo.Point, publish, valid float64) {
	c.tasks = append(c.tasks, model.Task{
		ID: c.nextT, Loc: loc, Publish: publish, Valid: valid,
	})
	c.nextT++
}

func (c *churnPlatform) expire(now float64) {
	kept := c.tasks[:0]
	for _, t := range c.tasks {
		if t.Expiry() >= now {
			kept = append(kept, t)
		}
	}
	c.tasks = kept
}

// retire drops the workers and tasks at the given pool positions
// (mimicking an assignment round).
func (c *churnPlatform) retire(wPos, tPos map[int]bool) {
	keptW := c.workers[:0]
	for i, w := range c.workers {
		if !wPos[i] {
			keptW = append(keptW, w)
		}
	}
	c.workers = keptW
	keptT := c.tasks[:0]
	for j, t := range c.tasks {
		if !tPos[j] {
			keptT = append(keptT, t)
		}
	}
	c.tasks = keptT
}

func (c *churnPlatform) instance(now float64) *model.Instance {
	inst := &model.Instance{Now: now}
	inst.Workers = append([]model.Worker(nil), c.workers...)
	inst.Tasks = append([]model.Task(nil), c.tasks...)
	return inst
}

// TestIncrementalPairIndexMatchesColdScan is the tentpole's acceptance
// gate at the assign layer: across a 220-instant churn of arrivals,
// expiries and retirements, every Update must equal the cold
// FeasiblePairs scan bit for bit — same pairs, same order, same
// distances, same nil-when-empty shape.
func TestIncrementalPairIndexMatchesColdScan(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		rng := randx.New(seed)
		plat := &churnPlatform{}
		ix := NewPairIndex(5)
		const step = 0.25
		sawPairs, sawEmpty := false, false
		for i := 0; i < 220; i++ {
			now := float64(i) * step
			// Arrivals: short task lifetimes so deadlines decay and the
			// expiry heap fires mid-run, not just at pool departure.
			for n := rng.Intn(4); n > 0; n-- {
				plat.addWorker(geo.Point{X: rng.Float64() * 60, Y: rng.Float64() * 60},
					2+rng.Float64()*20)
			}
			for n := rng.Intn(4); n > 0; n-- {
				plat.addTask(geo.Point{X: rng.Float64() * 60, Y: rng.Float64() * 60},
					now, 0.5+rng.Float64()*4)
			}
			plat.expire(now)
			inst := plat.instance(now)

			got := ix.Update(inst)
			want := FeasiblePairs(inst, 5)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d instant %d (now=%v): incremental %v diverged from cold %v",
					seed, i, now, got, want)
			}
			if len(want) > 0 {
				sawPairs = true
			} else {
				sawEmpty = true
			}

			// Retire a random matching-like subset: distinct workers and
			// tasks drawn from the feasible pairs.
			wPos, tPos := map[int]bool{}, map[int]bool{}
			for _, pr := range want {
				if rng.Float64() < 0.4 && !wPos[int(pr.W)] && !tPos[int(pr.T)] {
					wPos[int(pr.W)] = true
					tPos[int(pr.T)] = true
				}
			}
			plat.retire(wPos, tPos)
		}
		if !sawPairs || !sawEmpty {
			t.Fatalf("seed %d: churn covered pairs=%v empty=%v — the test needs both regimes",
				seed, sawPairs, sawEmpty)
		}
		if ix.CachedWorkers() != len(plat.workers) || ix.CachedTasks() != len(plat.tasks) {
			t.Errorf("seed %d: index carries %d workers / %d tasks, pool has %d / %d",
				seed, ix.CachedWorkers(), ix.CachedTasks(), len(plat.workers), len(plat.tasks))
		}
	}
}

// TestIncrementalPairIndexEmptyRegimes: instants with no workers, no
// tasks, or neither keep the index consistent and return nil like the
// cold scan.
func TestIncrementalPairIndexEmptyRegimes(t *testing.T) {
	ix := NewPairIndex(5)
	if got := ix.Update(&model.Instance{Now: 0}); got != nil {
		t.Fatalf("empty instance returned %v", got)
	}
	plat := &churnPlatform{}
	plat.addWorker(geo.Point{X: 1, Y: 1}, 10)
	if got := ix.Update(plat.instance(1)); got != nil {
		t.Fatalf("worker-only instance returned %v", got)
	}
	plat.addTask(geo.Point{X: 2, Y: 2}, 1, 5)
	inst := plat.instance(2)
	got := ix.Update(inst)
	want := FeasiblePairs(inst, 5)
	if !reflect.DeepEqual(got, want) || len(got) != 1 {
		t.Fatalf("pair after empty regimes: got %v want %v", got, want)
	}
	// Drop both; the index must evict down to nothing.
	if got := ix.Update(&model.Instance{Now: 3}); got != nil {
		t.Fatalf("re-emptied instance returned %v", got)
	}
	if ix.CachedWorkers() != 0 || ix.CachedTasks() != 0 || ix.CachedPairs() != 0 {
		t.Errorf("index retains %d workers, %d tasks, %d pairs after total departure",
			ix.CachedWorkers(), ix.CachedTasks(), ix.CachedPairs())
	}
}

// TestIncrementalPairIndexDeadlineDecay: a pair feasible at admission
// must disappear at exactly the instant the cold predicate fails, with
// the task still open.
func TestIncrementalPairIndexDeadlineDecay(t *testing.T) {
	ix := NewPairIndex(5)
	plat := &churnPlatform{}
	plat.addWorker(geo.Point{}, 100)
	// 10 km away at 5 km/h = 2 h travel; published at 0, valid 5 h:
	// feasible while now <= 3.
	plat.addTask(geo.Point{X: 10}, 0, 5)
	for i, now := range []float64{0, 1, 2, 3, 3.5, 4} {
		inst := plat.instance(now)
		got := ix.Update(inst)
		want := FeasiblePairs(inst, 5)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("instant %d (now=%v): got %v want %v", i, now, got, want)
		}
		if feasible := now <= 3; (len(got) == 1) != feasible {
			t.Fatalf("now=%v: %d pairs, want feasible=%v", now, len(got), feasible)
		}
	}
}

// TestPairIndexIdentityHygiene: the documented preconditions fail
// loudly.
func TestPairIndexIdentityHygiene(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	w := func(id model.WorkerID) model.Worker {
		return model.Worker{ID: id, User: id, Radius: 10}
	}
	task := func(id model.TaskID) model.Task {
		return model.Task{ID: id, Valid: 5}
	}
	expectPanic("duplicate worker ID", func() {
		NewPairIndex(5).Update(&model.Instance{Workers: []model.Worker{w(1), w(1)}})
	})
	expectPanic("out-of-order task IDs", func() {
		NewPairIndex(5).Update(&model.Instance{Tasks: []model.Task{task(2), task(1)}})
	})
	expectPanic("re-admitted task ID", func() {
		ix := NewPairIndex(5)
		ix.Update(&model.Instance{Tasks: []model.Task{task(1), task(2)}})
		ix.Update(&model.Instance{Tasks: []model.Task{task(2)}}) // 1 departs
		ix.Update(&model.Instance{Tasks: []model.Task{task(1), task(2)}})
	})
	expectPanic("clock moved backwards", func() {
		ix := NewPairIndex(5)
		ix.Update(&model.Instance{Now: 2})
		ix.Update(&model.Instance{Now: 1})
	})
}
