package assign

import (
	"testing"
	"testing/quick"

	"dita/internal/geo"
	"dita/internal/model"
	"dita/internal/randx"
)

// quickInstance derives an instance from an arbitrary seed: sizes,
// geometry, radii and deadlines all vary so the property tests explore
// sparse, dense, degenerate and disconnected assignment graphs.
func quickInstance(seed uint64) *model.Instance {
	rng := randx.New(seed)
	nW := 1 + rng.Intn(25)
	nT := 1 + rng.Intn(25)
	extent := 10 + rng.Float64()*90
	inst := &model.Instance{Now: rng.Float64() * 100}
	for i := 0; i < nW; i++ {
		inst.Workers = append(inst.Workers, model.Worker{
			ID: model.WorkerID(i), User: model.WorkerID(i),
			Loc:    geo.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent},
			Radius: rng.Float64() * extent / 2,
		})
	}
	for j := 0; j < nT; j++ {
		inst.Tasks = append(inst.Tasks, model.Task{
			ID:      model.TaskID(j),
			Loc:     geo.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent},
			Publish: inst.Now - rng.Float64()*2,
			Valid:   rng.Float64() * 8,
		})
	}
	return inst
}

// TestPropertyAllAlgorithmsValid: on arbitrary instances every algorithm
// returns a structurally valid assignment whose pairs are all feasible.
func TestPropertyAllAlgorithmsValid(t *testing.T) {
	f := func(seed uint64) bool {
		inst := quickInstance(seed)
		prob := &Problem{Inst: inst, Influence: syntheticInfluence(seed), SpeedKmH: 5}
		for _, alg := range Algorithms {
			set := Solve(alg, prob)
			if err := set.Validate(len(inst.Tasks), len(inst.Workers)); err != nil {
				t.Logf("seed %d alg %v: %v", seed, alg, err)
				return false
			}
			for _, pr := range set.Pairs {
				if !model.Feasible(inst.Workers[pr.Worker], inst.Tasks[pr.Task], inst.Now, 5) {
					t.Logf("seed %d alg %v: infeasible pair", seed, alg)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFlowCardinalityAgreement: the four flow-based algorithms
// assign exactly the same number of tasks (the maximum matching) on any
// instance, and MI never exceeds it.
func TestPropertyFlowCardinalityAgreement(t *testing.T) {
	f := func(seed uint64) bool {
		inst := quickInstance(seed)
		prob := &Problem{Inst: inst, Influence: syntheticInfluence(seed), SpeedKmH: 5}
		want := Solve(MTA, prob).Len()
		for _, alg := range []Algorithm{IA, EIA, DIA} {
			if Solve(alg, prob).Len() != want {
				return false
			}
		}
		return Solve(MI, prob).Len() <= want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFeasiblePairsSortedAndComplete: on arbitrary instances the
// grid-accelerated FeasiblePairs equals the brute-force O(nW·nT) scan —
// same pairs, same distances — and is exactly sorted by (worker, task),
// as its doc comment promises. The mutable-grid incremental path is
// gated against FeasiblePairs, so this property transitively anchors it
// to the definition.
func TestPropertyFeasiblePairsSortedAndComplete(t *testing.T) {
	f := func(seed uint64) bool {
		inst := quickInstance(seed)
		got := FeasiblePairs(inst, 5)
		var want []Pair
		for wi, w := range inst.Workers {
			for ti, s := range inst.Tasks {
				if model.Feasible(w, s, inst.Now, 5) {
					want = append(want, Pair{
						W: int32(wi), T: int32(ti), Dist: geo.Dist(w.Loc, s.Loc),
					})
				}
			}
		}
		if len(got) != len(want) {
			t.Logf("seed %d: %d pairs, brute force %d", seed, len(got), len(want))
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				t.Logf("seed %d pair %d: %+v, brute force %+v", seed, i, got[i], want[i])
				return false
			}
			if i > 0 && (got[i-1].W > got[i].W ||
				(got[i-1].W == got[i].W && got[i-1].T >= got[i].T)) {
				t.Logf("seed %d: pairs %d,%d out of (worker, task) order", seed, i-1, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAssignmentBoundedByFeasiblePairs: |A| can never exceed the
// number of feasible pairs, workers, or tasks.
func TestPropertyAssignmentBoundedByFeasiblePairs(t *testing.T) {
	f := func(seed uint64) bool {
		inst := quickInstance(seed)
		pairs := FeasiblePairs(inst, 5)
		prob := &Problem{Inst: inst, Influence: syntheticInfluence(seed), SpeedKmH: 5, Pairs: pairs}
		for _, alg := range Algorithms {
			n := Solve(alg, prob).Len()
			if n > len(pairs) || n > len(inst.Workers) || n > len(inst.Tasks) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
