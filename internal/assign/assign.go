// Package assign implements the task-assignment algorithms of Section IV
// plus the two baselines of the evaluation:
//
//   - MTA — Maximum Task Assignment (Kazemi & Shahabi): max flow only.
//   - IA  — basic Influence-aware Assignment: min-cost max-flow with edge
//     cost 1/(if(w,s)+1).
//   - EIA — Entropy-based IA: cost (s.e+1)/(if(w,s)+1).
//   - DIA — Distance-based IA: cost 1/(F(w,s)·if(w,s)+1) with
//     F = 1 − min(1, d(w,s)/w.r).
//   - MI  — Maximum Influence: ignores the primary goal and greedily
//     maximizes total influence over feasible pairs.
//
// All algorithms share the same spatio-temporal feasibility predicate
// (reachable radius and expiry deadline at a common travel speed) and the
// same flow-network construction (Figure 4): source → workers (cap 1),
// worker → feasible task (cap 1, algorithm-specific cost), task → sink
// (cap 1).
package assign

import (
	"fmt"
	"sort"

	"dita/internal/flow"
	"dita/internal/geo"
	"dita/internal/model"
)

// Algorithm selects an assignment strategy.
type Algorithm int

// The five algorithms of the experimental study, plus the MIX ablation.
const (
	MTA Algorithm = iota
	IA
	EIA
	DIA
	MI
	// MIX is not part of the paper's study: it is the exact
	// maximum-influence assignment — min-cost flow over negated
	// influences, stopping at the first positive-cost augmenting path —
	// against which the paper's greedy MI can be ablated. Component
	// decomposition (see SolveTiled) makes the exact solve tractable at
	// tile scale. Among all maximum-total-influence matchings it picks
	// one of maximum cardinality.
	MIX
)

// Algorithms lists the paper's algorithms in the order its figures do.
// MIX is deliberately absent: the experiments grid iterates this slice,
// and the ablation is opt-in per call, not a new column in every
// figure.
var Algorithms = []Algorithm{MTA, IA, EIA, DIA, MI}

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case MTA:
		return "MTA"
	case IA:
		return "IA"
	case EIA:
		return "EIA"
	case DIA:
		return "DIA"
	case MI:
		return "MI"
	case MIX:
		return "MIX"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm maps a name (as printed by String) back to an
// Algorithm, including the MIX ablation that Algorithms omits.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range Algorithms {
		if a.String() == s {
			return a, nil
		}
	}
	if s == MIX.String() {
		return MIX, nil
	}
	return 0, fmt.Errorf("assign: unknown algorithm %q", s)
}

// Pair is one feasible worker-task pair: worker index W (into
// Instance.Workers), task index T (into Instance.Tasks) and their
// distance in kilometres.
type Pair struct {
	W, T int32
	Dist float64
}

// Problem bundles everything an algorithm needs for one time instance.
type Problem struct {
	Inst *model.Instance
	// Influence returns if(w, s) for instance worker index w and task
	// index t. Required by IA, EIA, DIA and MI; MTA ignores it.
	Influence func(w, t int) float64
	// Entropy returns the location entropy of task index t. Only EIA
	// reads it; nil is treated as zero entropy everywhere.
	Entropy func(t int) float64
	// SpeedKmH converts distance to travel time for the deadline check;
	// non-positive values default to 5 km/h (the paper's setting).
	SpeedKmH float64
	// Pairs optionally carries precomputed feasible pairs so several
	// algorithms can share one feasibility computation; when nil and
	// HasPairs is false, Solve computes them.
	Pairs []Pair
	// HasPairs marks Pairs as authoritative even when nil: a precomputed
	// zero-feasibility pair set (built with `var pairs []Pair`) is nil,
	// and without this flag Solve could not tell it from "not computed"
	// and would silently rescan the instance.
	HasPairs bool
}

func (p *Problem) speed() float64 {
	if p.SpeedKmH > 0 {
		return p.SpeedKmH
	}
	return 5
}

func (p *Problem) influence(w, t int) float64 {
	if p.Influence == nil {
		return 0
	}
	return p.Influence(w, t)
}

// FeasiblePairs computes the available assignments w.A for every worker:
// all (w, s) with d(w.l, s.l) ≤ w.r and now + d/speed ≤ s.p + s.ϕ. It
// uses a uniform grid over task locations so the cost is near-linear in
// the output size. Pairs are ordered by (worker, task) index.
func FeasiblePairs(inst *model.Instance, speedKmH float64) []Pair {
	if speedKmH <= 0 {
		speedKmH = 5
	}
	taskLocs := make([]geo.Point, len(inst.Tasks))
	for i, t := range inst.Tasks {
		taskLocs[i] = t.Loc
	}
	grid := geo.BuildGrid(taskLocs, 8)
	var pairs []Pair
	var buf []int
	for wi, w := range inst.Workers {
		buf = grid.Within(w.Loc, w.Radius, buf[:0])
		for _, ti := range buf {
			s := inst.Tasks[ti]
			d := geo.Dist(w.Loc, s.Loc)
			if inst.Now+d/speedKmH <= s.Expiry() {
				pairs = append(pairs, Pair{W: int32(wi), T: int32(ti), Dist: d})
			}
		}
	}
	return pairs
}

// Solve runs the selected algorithm and returns the assignment set with
// per-pair influence and travel distance filled in. Since the tiled
// pipeline landed, Solve is the sequential form of the canonical
// component-decomposed solver (see solveComponents in tiled.go):
// SolveTiled at any parallelism returns a bit-identical assignment set.
func Solve(alg Algorithm, p *Problem) *model.AssignmentSet {
	pairs := p.Pairs
	if pairs == nil && !p.HasPairs {
		pairs = FeasiblePairs(p.Inst, p.speed())
	}
	set, _ := solveComponents(alg, p, pairs, 1)
	return set
}

// solveMonolithic is the pre-decomposition solver — one flow network
// (or one greedy pass) over the whole instance. It is retained as the
// reference implementation the objective-equivalence tests check the
// decomposed solver against: decomposition must preserve cardinality
// for every algorithm, total cost for the min-cost family and the exact
// matching for the greedy.
func solveMonolithic(alg Algorithm, p *Problem, pairs []Pair) *model.AssignmentSet {
	switch alg {
	case MTA:
		return solveMaxFlow(p, pairs)
	case MI:
		return solveGreedyInfluence(p, pairs)
	case IA, EIA, DIA:
		return solveMinCost(alg, p, pairs)
	default:
		panic(fmt.Sprintf("assign: no monolithic solver for algorithm %d", int(alg)))
	}
}

// edgeCost prices a worker→task edge for the three flow-based
// influence-aware algorithms.
func edgeCost(alg Algorithm, p *Problem, pr Pair) float64 {
	return edgeCostFromInfluence(alg, p, pr, p.influence(int(pr.W), int(pr.T)))
}

// edgeCostFromInfluence is edgeCost with the influence value already
// evaluated, so the decomposed solver can price edges from its
// sequential influence pre-pass; the float expressions are identical.
func edgeCostFromInfluence(alg Algorithm, p *Problem, pr Pair, inf float64) float64 {
	switch alg {
	case IA:
		return 1 / (inf + 1)
	case EIA:
		e := 0.0
		if p.Entropy != nil {
			e = p.Entropy(int(pr.T))
		}
		return (e + 1) / (inf + 1)
	case DIA:
		r := p.Inst.Workers[pr.W].Radius
		f := 0.0
		if r > 0 {
			ratio := pr.Dist / r
			if ratio > 1 {
				ratio = 1
			}
			f = 1 - ratio
		}
		return 1 / (f*inf + 1)
	case MIX:
		return -inf
	default:
		return 0
	}
}

// buildNetwork constructs the Figure-4 flow network. Node layout:
// 0 = source, 1..nW = workers, nW+1..nW+nT = tasks, nW+nT+1 = sink.
// It returns the network, the source/sink ids and the edge id of every
// worker→task pair (aligned with pairs).
func buildNetwork(p *Problem, pairs []Pair, alg Algorithm) (g *flow.Network, s, t int, pairEdges []int) {
	nW, nT := len(p.Inst.Workers), len(p.Inst.Tasks)
	g = flow.NewNetwork(nW + nT + 2)
	s, t = 0, nW+nT+1
	for w := 0; w < nW; w++ {
		g.AddEdge(s, 1+w, 1, 0)
	}
	for j := 0; j < nT; j++ {
		g.AddEdge(1+nW+j, t, 1, 0)
	}
	pairEdges = make([]int, len(pairs))
	for i, pr := range pairs {
		cost := 0.0
		if alg != MTA {
			cost = edgeCost(alg, p, pr)
		}
		pairEdges[i] = g.AddEdge(1+int(pr.W), 1+nW+int(pr.T), 1, cost)
	}
	return g, s, t, pairEdges
}

func collect(p *Problem, pairs []Pair, taken func(i int) bool) *model.AssignmentSet {
	out := &model.AssignmentSet{}
	for i, pr := range pairs {
		if !taken(i) {
			continue
		}
		// Pairs reference the instance by position, not by the entities'
		// ID fields: streaming callers keep platform-stable (non-dense)
		// IDs in their instances, and every metrics consumer indexes
		// Inst.Workers/Inst.Tasks with these values.
		out.Pairs = append(out.Pairs, model.Assignment{
			Task:   model.TaskID(pr.T),
			Worker: model.WorkerID(pr.W),
		})
		out.Influence = append(out.Influence, p.influence(int(pr.W), int(pr.T)))
		out.TravelKm = append(out.TravelKm, pr.Dist)
	}
	return out
}

func solveMaxFlow(p *Problem, pairs []Pair) *model.AssignmentSet {
	g, s, t, pairEdges := buildNetwork(p, pairs, MTA)
	g.MaxFlow(s, t)
	return collect(p, pairs, func(i int) bool { return g.Flow(pairEdges[i]) > 0 })
}

func solveMinCost(alg Algorithm, p *Problem, pairs []Pair) *model.AssignmentSet {
	g, s, t, pairEdges := buildNetwork(p, pairs, alg)
	g.MinCostMaxFlow(s, t)
	return collect(p, pairs, func(i int) bool { return g.Flow(pairEdges[i]) > 0 })
}

// solveGreedyInfluence implements MI: for each task the feasible workers
// are its candidates (step 1); pairs are then taken in descending
// influence order, skipping used workers and tasks (step 2). Ties break
// on (worker, task) index so the result is deterministic.
func solveGreedyInfluence(p *Problem, pairs []Pair) *model.AssignmentSet {
	order := make([]int, len(pairs))
	infl := make([]float64, len(pairs))
	for i := range pairs {
		order[i] = i
		infl[i] = p.influence(int(pairs[i].W), int(pairs[i].T))
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if infl[ia] != infl[ib] {
			return infl[ia] > infl[ib]
		}
		if pairs[ia].W != pairs[ib].W {
			return pairs[ia].W < pairs[ib].W
		}
		return pairs[ia].T < pairs[ib].T
	})
	usedW := make([]bool, len(p.Inst.Workers))
	usedT := make([]bool, len(p.Inst.Tasks))
	taken := make([]bool, len(pairs))
	for _, i := range order {
		pr := pairs[i]
		if usedW[pr.W] || usedT[pr.T] {
			continue
		}
		usedW[pr.W] = true
		usedT[pr.T] = true
		taken[i] = true
	}
	return collect(p, pairs, func(i int) bool { return taken[i] })
}
