package assign

import (
	"math"
	"reflect"
	"testing"

	"dita/internal/geo"
	"dita/internal/model"
	"dita/internal/randx"
)

// scatteredInstance builds pools spread over a wide box with modest
// radii, so the instant tiles into many occupied tiles and the
// feasibility graph splits into several components.
func scatteredInstance(nW, nT int, radius float64, seed uint64) *model.Instance {
	rng := randx.New(seed)
	inst := &model.Instance{Now: 0}
	for i := 0; i < nW; i++ {
		inst.Workers = append(inst.Workers, model.Worker{
			ID:     model.WorkerID(i),
			User:   model.WorkerID(i),
			Loc:    geo.Point{X: rng.Float64() * 200, Y: rng.Float64() * 200},
			Radius: radius * (0.5 + rng.Float64()),
		})
	}
	for j := 0; j < nT; j++ {
		inst.Tasks = append(inst.Tasks, model.Task{
			ID:      model.TaskID(j),
			Loc:     geo.Point{X: rng.Float64() * 200, Y: rng.Float64() * 200},
			Publish: 0,
			Valid:   0.5 + 3*rng.Float64(),
		})
	}
	return inst
}

func TestTiledFeasiblePairsMatchesGlobal(t *testing.T) {
	configs := []struct {
		nW, nT int
		radius float64
		seed   uint64
	}{
		{80, 120, 8, 1},
		{150, 100, 4, 2},
		{60, 60, 30, 3},  // radius comparable to the box: few fat tiles
		{40, 50, 0.5, 4}, // tiny radius: tile cap engages
		{1, 1, 10, 5},
		{50, 70, 0, 6}, // zero radius: only co-located pairs possible
	}
	for _, cfg := range configs {
		inst := scatteredInstance(cfg.nW, cfg.nT, cfg.radius, cfg.seed)
		want := FeasiblePairs(inst, 5)
		for _, par := range []int{1, 2, 8} {
			got, tiles := TiledFeasiblePairs(inst, 5, par)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cfg %+v par %d: tiled pairs diverge from global (%d vs %d pairs)",
					cfg, par, len(got), len(want))
			}
			if tiles < 1 {
				t.Fatalf("cfg %+v par %d: no occupied tiles reported", cfg, par)
			}
		}
	}
}

func TestTiledFeasiblePairsEmptyPools(t *testing.T) {
	inst := scatteredInstance(10, 0, 5, 1)
	if pairs, tiles := TiledFeasiblePairs(inst, 5, 4); pairs != nil || tiles != 0 {
		t.Fatalf("no tasks: got %d pairs, %d tiles", len(pairs), tiles)
	}
	inst = scatteredInstance(0, 10, 5, 1)
	if pairs, tiles := TiledFeasiblePairs(inst, 5, 4); pairs != nil || tiles != 0 {
		t.Fatalf("no workers: got %d pairs, %d tiles", len(pairs), tiles)
	}
}

// TestTiledBoundaryProperty is the boundary-correctness property test:
// entities sit exactly on tile edges and corners (coordinates are exact
// binary multiples of half the tile size, so no placement rounding
// blurs the boundary), worker radii equal the tile size exactly so
// pairs straddle tiles at exactly the reachability limit, and the scan
// runs under adversarial explicit tilings — including the 1×1
// degenerate tiling — at several worker counts. The tiled output must
// be bit-identical to the global scan every time.
func TestTiledBoundaryProperty(t *testing.T) {
	const size = 4.0 // power of two: snapped coordinates are exact
	for seed := uint64(0); seed < 8; seed++ {
		rng := randx.New(1000 + seed)
		inst := &model.Instance{Now: 0}
		snap := func() float64 {
			// Mostly exact edge/corner multiples of size/2, some free.
			v := rng.Float64() * 64
			if rng.Intn(4) != 0 {
				v = math.Floor(v/(size/2)) * (size / 2)
			}
			return v
		}
		nW, nT := 40+rng.Intn(40), 40+rng.Intn(40)
		for i := 0; i < nW; i++ {
			inst.Workers = append(inst.Workers, model.Worker{
				ID: model.WorkerID(i), User: model.WorkerID(i),
				Loc:    geo.Point{X: snap(), Y: snap()},
				Radius: size, // exactly one tile: radius-straddling pairs abound
			})
		}
		for j := 0; j < nT; j++ {
			inst.Tasks = append(inst.Tasks, model.Task{
				ID: model.TaskID(j), Loc: geo.Point{X: snap(), Y: snap()},
				Publish: 0, Valid: 10,
			})
		}
		want := FeasiblePairs(inst, 5)
		bounds := geo.Rect{Min: inst.Workers[0].Loc, Max: inst.Workers[0].Loc}
		for _, w := range inst.Workers {
			bounds = bounds.Extend(w.Loc)
		}
		for _, task := range inst.Tasks {
			bounds = bounds.Extend(task.Loc)
		}
		// Tile sizes at and above the reachability bound, including one
		// large enough to degenerate to a single 1×1 tile.
		for _, tileSize := range []float64{size, size * 1.5, size * 3, 1 << 20} {
			tl := geo.NewTiling(bounds, tileSize, 1<<20)
			if tileSize == 1<<20 && tl.Tiles() != 1 {
				t.Fatalf("seed %d: expected degenerate 1×1 tiling, got %dx%d", seed, tl.NX, tl.NY)
			}
			for _, par := range []int{1, 2, 8} {
				got, _ := tiledFeasiblePairs(inst, 5, par, tl)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d tileSize %v par %d: boundary pairs diverge (%d vs %d)",
						seed, tileSize, par, len(got), len(want))
				}
			}
		}
	}
}

// TestSolveTiledMatchesSolve is the tentpole gate at the assign layer:
// the tiled pipeline (tiled scan + component-parallel matching) must
// return a bit-identical assignment set to the sequential Solve for
// every algorithm — the paper's five and the MIX ablation — at
// parallelism 1, 2 and 8.
func TestSolveTiledMatchesSolve(t *testing.T) {
	ent := func(ti int) float64 { return float64(ti%7) / 3 }
	for _, cfg := range []struct {
		nW, nT int
		radius float64
		seed   uint64
	}{
		{70, 90, 6, 11},
		{120, 80, 3, 12},
		{50, 50, 40, 13}, // nearly one dense component
	} {
		inst := scatteredInstance(cfg.nW, cfg.nT, cfg.radius, cfg.seed)
		prob := &Problem{Inst: inst, Influence: syntheticInfluence(cfg.seed), Entropy: ent}
		algs := append(append([]Algorithm(nil), Algorithms...), MIX)
		for _, alg := range algs {
			want := Solve(alg, prob)
			for _, par := range []int{1, 2, 8} {
				got, stats := SolveTiled(alg, prob, par)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("cfg %+v alg %v par %d: tiled assignment diverges (%d vs %d pairs)",
						cfg, alg, par, got.Len(), want.Len())
				}
				if want.Len() > 0 && stats.Components < 1 {
					t.Fatalf("cfg %+v alg %v par %d: no components reported", cfg, alg, par)
				}
				if stats.LargestComponent > len(FeasiblePairs(inst, 5)) {
					t.Fatalf("cfg %+v: largest component %d exceeds pair count", cfg, stats.LargestComponent)
				}
			}
		}
	}
}

// paperCost sums the algorithm's edge costs over an assignment set.
func paperCost(alg Algorithm, p *Problem, pairs []Pair, set *model.AssignmentSet) float64 {
	cost := map[[2]int32]float64{}
	for _, pr := range pairs {
		cost[[2]int32{pr.W, pr.T}] = edgeCost(alg, p, pr)
	}
	sum := 0.0
	for _, a := range set.Pairs {
		sum += cost[[2]int32{int32(a.Worker), int32(a.Task)}]
	}
	return sum
}

// TestSolveComponentsPreservesObjectives checks the decomposed solver
// against the retained monolithic reference: decomposition may pick a
// different equal-quality optimum (flow tie-breaks see different node
// numberings), but it must preserve the objective — cardinality for
// every algorithm, total edge cost for the min-cost family — and the
// greedy MI must match the monolithic pass exactly, pair for pair.
func TestSolveComponentsPreservesObjectives(t *testing.T) {
	ent := func(ti int) float64 { return float64(ti%5) / 2 }
	for seed := uint64(20); seed < 26; seed++ {
		inst := scatteredInstance(60, 70, 5, seed)
		prob := &Problem{Inst: inst, Influence: syntheticInfluence(seed), Entropy: ent}
		pairs := FeasiblePairs(inst, 5)
		for _, alg := range Algorithms {
			mono := solveMonolithic(alg, prob, pairs)
			dec, _ := solveComponents(alg, prob, pairs, 4)
			if dec.Len() != mono.Len() {
				t.Fatalf("seed %d alg %v: decomposed cardinality %d, monolithic %d",
					seed, alg, dec.Len(), mono.Len())
			}
			switch alg {
			case MI:
				if !reflect.DeepEqual(dec, mono) {
					t.Fatalf("seed %d: decomposed MI diverges from monolithic greedy", seed)
				}
			case IA, EIA, DIA:
				cm, cd := paperCost(alg, prob, pairs, mono), paperCost(alg, prob, pairs, dec)
				if math.Abs(cm-cd) > 1e-9*(1+math.Abs(cm)) {
					t.Fatalf("seed %d alg %v: decomposed cost %v, monolithic %v", seed, alg, cd, cm)
				}
			}
		}
	}
}

// bruteMaxInfluence enumerates all matchings of a small pair list and
// returns the maximum achievable total influence.
func bruteMaxInfluence(nT int, pairs []Pair, infl func(w, t int) float64) float64 {
	// Group pairs by worker for the recursion.
	byW := map[int32][]Pair{}
	var ws []int32
	for _, pr := range pairs {
		if _, ok := byW[pr.W]; !ok {
			ws = append(ws, pr.W)
		}
		byW[pr.W] = append(byW[pr.W], pr)
	}
	best := 0.0
	var rec func(i int, usedT uint64, sum float64)
	rec = func(i int, usedT uint64, sum float64) {
		if sum > best {
			best = sum
		}
		if i == len(ws) {
			return
		}
		rec(i+1, usedT, sum)
		for _, pr := range byW[ws[i]] {
			if usedT&(1<<uint(pr.T)) != 0 {
				continue
			}
			rec(i+1, usedT|(1<<uint(pr.T)), sum+infl(int(pr.W), int(pr.T)))
		}
	}
	rec(0, 0, 0)
	return best
}

// TestMIXExactMaxInfluence is the per-tile exact-assignment ablation
// gate: MIX must achieve the true maximum total influence (checked by
// brute force on small instances) and therefore never fall below the
// paper's greedy MI.
func TestMIXExactMaxInfluence(t *testing.T) {
	for seed := uint64(30); seed < 40; seed++ {
		inst := scatteredInstance(7, 8, 12, seed)
		infl := syntheticInfluence(seed)
		prob := &Problem{Inst: inst, Influence: infl}
		pairs := FeasiblePairs(inst, 5)
		want := bruteMaxInfluence(len(inst.Tasks), pairs, infl)
		mix := Solve(MIX, prob)
		if got := mix.TotalInfluence(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("seed %d: MIX influence %v, brute-force maximum %v", seed, got, want)
		}
		mi := Solve(MI, prob)
		if mix.TotalInfluence() < mi.TotalInfluence()-1e-12 {
			t.Fatalf("seed %d: exact MIX (%v) below greedy MI (%v)",
				seed, mix.TotalInfluence(), mi.TotalInfluence())
		}
	}
}

// TestMIXBeatsGreedyWhenGreedyTrapped pins a crafted instance where the
// greedy is strictly suboptimal: the top pair blocks the only partner
// of the second worker, costing the greedy the 2+2.9 < 3 trade.
func TestMIXBeatsGreedyWhenGreedyTrapped(t *testing.T) {
	inst := &model.Instance{Now: 0}
	inst.Workers = []model.Worker{
		{ID: 0, Loc: geo.Point{X: 0, Y: 0}, Radius: 10},
		{ID: 1, Loc: geo.Point{X: 1, Y: 0}, Radius: 1}, // reaches only task 0
	}
	inst.Tasks = []model.Task{
		{ID: 0, Loc: geo.Point{X: 1, Y: 0}, Publish: 0, Valid: 10},
		{ID: 1, Loc: geo.Point{X: 0, Y: 1}, Publish: 0, Valid: 10},
	}
	infl := func(w, t int) float64 {
		switch {
		case w == 0 && t == 0:
			return 3
		case w == 0 && t == 1:
			return 2
		case w == 1 && t == 0:
			return 2.9
		}
		return 0
	}
	prob := &Problem{Inst: inst, Influence: infl}
	mi := Solve(MI, prob)
	mix := Solve(MIX, prob)
	if got := mi.TotalInfluence(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("greedy MI influence %v, expected the trapped 3", got)
	}
	if got := mix.TotalInfluence(); math.Abs(got-4.9) > 1e-12 {
		t.Fatalf("exact MIX influence %v, expected 4.9", got)
	}
}

func TestParseAlgorithmMIX(t *testing.T) {
	a, err := ParseAlgorithm("MIX")
	if err != nil || a != MIX {
		t.Fatalf("ParseAlgorithm(MIX) = %v, %v", a, err)
	}
	for _, a := range Algorithms {
		if a == MIX {
			t.Fatal("MIX must not join the paper's figure algorithms")
		}
	}
}
