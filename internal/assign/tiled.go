package assign

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"dita/internal/flow"
	"dita/internal/geo"
	"dita/internal/model"
	"dita/internal/parallel"
)

// This file is the tiled instant pipeline: feasibility scanned per geo
// tile and matching solved per connected component, both on the shared
// worker pool, both bit-identical to the global pass.
//
// Tiling rule: tiles are squares whose edge is the instant's
// reachability bound — the largest distance any feasible pair can span,
// min(max worker radius, speed × max remaining deadline) — so a
// worker's feasible tasks all lie in the 3×3 halo around its tile.
// Ownership rule: a pair belongs to exactly one tile, the tile of its
// worker; boundary tasks are mirrored into the candidate scans of every
// neighbouring tile (reads, not writes), so radius-straddling pairs are
// found exactly once and no cross-tile reconciliation exists.
//
// Matching decomposes along the connected components of the bipartite
// feasibility graph: no algorithm ever routes flow (or greedy picks)
// between components, so solving each component on its own compact
// network and merging through the global positional pair order is
// exact, not an approximation. Components are solved concurrently;
// every write lands in component-disjoint state, so the output is
// bit-identical at any worker count, including Solve's inline
// single-worker path.

// TileStats describes the spatial decomposition of one instant.
type TileStats struct {
	// Tiles is the number of occupied tiles of the feasibility scan
	// (zero when pairs were precomputed and no scan ran).
	Tiles int `json:"tiles,omitempty"`
	// Components is the number of connected components of the
	// feasibility graph, i.e. the matching's parallelism budget.
	Components int `json:"components,omitempty"`
	// LargestComponent is the pair count of the biggest component — the
	// critical path of the component-parallel solve.
	LargestComponent int `json:"largest_component,omitempty"`
}

// haloInflate grows the tile size slightly beyond the reachability
// bound. The 3×3-halo superset argument is exact in real arithmetic;
// the inflation (1e-7 relative, ~9 decimal orders above float64
// rounding) absorbs the rounding of the bound itself, of the tile
// divisions, and of the deadline comparison, so no boundary pair can
// fall outside the halo by a final ulp.
const haloInflate = 1 + 1e-7

// TiledFeasiblePairs computes exactly the pairs FeasiblePairs computes —
// bit-identical, same (worker, task) positional order — by scanning
// per-tile candidate sets on up to `parallelism` pool workers (<= 0
// means all cores; the output is identical at any setting). The second
// result is the number of occupied tiles.
func TiledFeasiblePairs(inst *model.Instance, speedKmH float64, parallelism int) ([]Pair, int) {
	if speedKmH <= 0 {
		speedKmH = 5
	}
	nW, nT := len(inst.Workers), len(inst.Tasks)
	if nW == 0 || nT == 0 {
		return nil, 0
	}
	bounds := geo.Rect{Min: inst.Workers[0].Loc, Max: inst.Workers[0].Loc}
	maxRadius := 0.0
	for _, w := range inst.Workers {
		bounds = bounds.Extend(w.Loc)
		if w.Radius > maxRadius {
			maxRadius = w.Radius
		}
	}
	maxExpiry := math.Inf(-1)
	for _, t := range inst.Tasks {
		bounds = bounds.Extend(t.Loc)
		if e := t.Expiry(); e > maxExpiry {
			maxExpiry = e
		}
	}
	// A feasible pair satisfies both d ≤ w.r and now + d/speed ≤ expiry,
	// so its distance is bounded by the smaller of the largest radius and
	// the travel distance the longest remaining deadline allows.
	slackKm := speedKmH * (maxExpiry - inst.Now)
	if !(slackKm > 0) { // also catches NaN
		slackKm = 0
	}
	reach := math.Min(maxRadius, slackKm)
	tl := geo.NewTiling(bounds, reach*haloInflate, maxTilesFor(nW+nT))
	return tiledFeasiblePairs(inst, speedKmH, parallelism, tl)
}

// maxTilesFor bounds the tile-grid size: tiles scale with the entity
// count (the per-tile CSR headers stay a small constant factor of the
// pools), with a floor that keeps small instants from degenerating to
// one giant tile when radii are tiny.
func maxTilesFor(n int) int {
	if n < 256 {
		return 256
	}
	return n
}

// tiledFeasiblePairs is the scan against an explicit tiling — the
// boundary property tests drive it with adversarial tile sizes,
// including the 1×1 degenerate tiling. The tiling must guarantee that
// every feasible pair spans at most one tile size (TiledFeasiblePairs
// sizes it from the reachability bound).
func tiledFeasiblePairs(inst *model.Instance, speedKmH float64, parallelism int, tl geo.Tiling) ([]Pair, int) {
	nW, nT := len(inst.Workers), len(inst.Tasks)
	nTiles := tl.Tiles()

	// Bucket both pools per tile, CSR layout, pool order within a tile —
	// which is ascending position order, the order the merge needs.
	wTile := make([]int32, nW)
	tTile := make([]int32, nT)
	wStart := make([]int32, nTiles+1)
	tStart := make([]int32, nTiles+1)
	for i, w := range inst.Workers {
		c := tl.TileOf(w.Loc)
		wTile[i] = int32(c)
		wStart[c+1]++
	}
	for i, t := range inst.Tasks {
		c := tl.TileOf(t.Loc)
		tTile[i] = int32(c)
		tStart[c+1]++
	}
	occupied := 0
	for c := 0; c < nTiles; c++ {
		if wStart[c+1] > 0 || tStart[c+1] > 0 {
			occupied++
		}
	}
	for c := 0; c < nTiles; c++ {
		wStart[c+1] += wStart[c]
		tStart[c+1] += tStart[c]
	}
	wItems := make([]int32, nW)
	tItems := make([]int32, nT)
	wCur := append([]int32(nil), wStart[:nTiles]...)
	tCur := append([]int32(nil), tStart[:nTiles]...)
	for i := 0; i < nW; i++ {
		c := wTile[i]
		wItems[wCur[c]] = int32(i)
		wCur[c]++
	}
	for i := 0; i < nT; i++ {
		c := tTile[i]
		tItems[tCur[c]] = int32(i)
		tCur[c]++
	}

	// Tiles owning at least one worker, ascending; each owns exactly the
	// pairs of its workers.
	var wTiles []int32
	for c := 0; c < nTiles; c++ {
		if wStart[c+1] > wStart[c] {
			wTiles = append(wTiles, int32(c))
		}
	}

	// Per-tile scan. Each tile writes only tile-indexed state (its own
	// pair buffer) and worker-indexed spans for its own workers, so the
	// result is independent of scheduling.
	spanLo := make([]int32, nW)
	spanHi := make([]int32, nW)
	tileBufs := make([][]Pair, len(wTiles))
	workers := parallel.Workers(parallelism)
	cands := make([][]int32, workers)
	parallel.For(workers, len(wTiles), func(worker, k int) {
		tile := int(wTiles[k])
		tx, ty := tl.Coords(tile)
		// One candidate list per tile, shared by all its workers: every
		// task of the 3×3 halo, sorted ascending so each worker's output
		// comes out in task-position order like the cold grid scan's.
		cand := cands[worker][:0]
		for yy := ty - 1; yy <= ty+1; yy++ {
			if yy < 0 || yy >= tl.NY {
				continue
			}
			for xx := tx - 1; xx <= tx+1; xx++ {
				if xx < 0 || xx >= tl.NX {
					continue
				}
				c := yy*tl.NX + xx
				cand = append(cand, tItems[tStart[c]:tStart[c+1]]...)
			}
		}
		slices.Sort(cand)
		cands[worker] = cand
		buf := tileBufs[k][:0]
		for _, wi := range wItems[wStart[tile]:wStart[tile+1]] {
			w := inst.Workers[wi]
			lo := int32(len(buf))
			// Negative radii admit nothing, as in Grid.Within; the range
			// and deadline checks reuse the exact FeasiblePairs float
			// expressions (squared-distance predicate first, then the
			// travel-time deadline on the true distance).
			if w.Radius >= 0 {
				r2 := w.Radius * w.Radius
				for _, ti := range cand {
					s := inst.Tasks[ti]
					if geo.Dist2(s.Loc, w.Loc) > r2 {
						continue
					}
					d := geo.Dist(w.Loc, s.Loc)
					if inst.Now+d/speedKmH <= s.Expiry() {
						buf = append(buf, Pair{W: wi, T: ti, Dist: d})
					}
				}
			}
			spanLo[wi], spanHi[wi] = lo, int32(len(buf))
		}
		tileBufs[k] = buf
	})

	// Deterministic merge: walk workers in pool order and splice each
	// worker's span out of its tile's buffer. Identical to the cold
	// scan's worker-major emission order.
	total := 0
	for _, b := range tileBufs {
		total += len(b)
	}
	if total == 0 {
		return nil, occupied
	}
	tileOrd := make([]int32, nTiles)
	for k, c := range wTiles {
		tileOrd[c] = int32(k)
	}
	out := make([]Pair, 0, total)
	for wi := 0; wi < nW; wi++ {
		k := tileOrd[wTile[wi]]
		out = append(out, tileBufs[k][spanLo[wi]:spanHi[wi]]...)
	}
	return out, occupied
}

// SolveTiled is Solve with the tiled instant pipeline: feasibility (when
// not precomputed) via TiledFeasiblePairs and matching solved
// per-component on up to `parallelism` pool workers. The assignment set
// is bit-identical to Solve's at any parallelism; the returned TileStats
// describe the decomposition.
func SolveTiled(alg Algorithm, p *Problem, parallelism int) (*model.AssignmentSet, TileStats) {
	pairs := p.Pairs
	tiles := 0
	if pairs == nil && !p.HasPairs {
		pairs, tiles = TiledFeasiblePairs(p.Inst, p.speed(), parallelism)
	}
	set, stats := solveComponents(alg, p, pairs, parallelism)
	stats.Tiles = tiles
	return set, stats
}

// solveComponents is the canonical solver behind Solve and SolveTiled:
// decompose the feasibility graph into connected components, solve each
// on a compact per-component network (or greedy pass), and merge by
// walking the global pair list. Influence and edge costs are evaluated
// sequentially up front — Problem callbacks are not required to be safe
// for concurrent use — so the parallel phase touches only plain,
// component-disjoint data.
func solveComponents(alg Algorithm, p *Problem, pairs []Pair, parallelism int) (*model.AssignmentSet, TileStats) {
	var stats TileStats
	if len(pairs) == 0 {
		return &model.AssignmentSet{}, stats
	}
	nW, nT := len(p.Inst.Workers), len(p.Inst.Tasks)

	infl := make([]float64, len(pairs))
	for i, pr := range pairs {
		infl[i] = p.influence(int(pr.W), int(pr.T))
	}
	var cost []float64
	switch alg {
	case IA, EIA, DIA, MIX:
		cost = make([]float64, len(pairs))
		for i, pr := range pairs {
			cost[i] = edgeCostFromInfluence(alg, p, pr, infl[i])
		}
	case MTA, MI:
	default:
		panic(fmt.Sprintf("assign: unknown algorithm %d", int(alg)))
	}

	compStart, compPairs, largest := components(nW, nT, pairs)
	nComp := len(compStart) - 1
	stats.Components = nComp
	stats.LargestComponent = largest

	taken := make([]bool, len(pairs))
	localW := make([]int32, nW)
	localT := make([]int32, nT)
	var usedW, usedT []bool
	if alg == MI {
		usedW = make([]bool, nW)
		usedT = make([]bool, nT)
	}
	workers := parallel.Workers(parallelism)
	if workers > nComp {
		workers = nComp
	}
	scratch := make([]compScratch, workers)
	parallel.For(workers, nComp, func(worker, c int) {
		idx := compPairs[compStart[c]:compStart[c+1]]
		solveComponent(alg, p, pairs, infl, cost, idx, localW, localT, usedW, usedT, &scratch[worker], taken)
	})
	return collectTaken(p, pairs, infl, taken), stats
}

// components groups the pair list by connected component of the
// bipartite feasibility graph. It returns a CSR over global pair
// indices (ascending within each component) plus the largest
// component's pair count. Components are numbered by first appearance
// along the pair list, so the grouping — and everything downstream — is
// deterministic for a given pair list.
func components(nW, nT int, pairs []Pair) (start, grouped []int32, largest int) {
	// Union-find over workers [0, nW) and tasks [nW, nW+nT), union by
	// smaller node id with path compression: the root of a component is
	// its smallest member, always a worker (every component contains at
	// least one pair).
	parent := make([]int32, nW+nT)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, pr := range pairs {
		a, b := find(pr.W), find(int32(nW)+pr.T)
		if a == b {
			continue
		}
		if a < b {
			parent[b] = a
		} else {
			parent[a] = b
		}
	}
	compOf := make([]int32, nW) // indexed by root worker
	for i := range compOf {
		compOf[i] = -1
	}
	nComp := 0
	compIdx := make([]int32, len(pairs))
	for i, pr := range pairs {
		r := find(pr.W)
		c := compOf[r]
		if c < 0 {
			c = int32(nComp)
			compOf[r] = c
			nComp++
		}
		compIdx[i] = c
	}
	start = make([]int32, nComp+1)
	for _, c := range compIdx {
		start[c+1]++
	}
	for c := 0; c < nComp; c++ {
		if int(start[c+1]) > largest {
			largest = int(start[c+1])
		}
		start[c+1] += start[c]
	}
	grouped = make([]int32, len(pairs))
	cursor := append([]int32(nil), start[:nComp]...)
	for i, c := range compIdx {
		grouped[cursor[c]] = int32(i)
		cursor[c]++
	}
	return start, grouped, largest
}

// compScratch is the per-pool-worker reusable state of the component
// solves; components touch it one at a time per worker.
type compScratch struct {
	wIDs  []int32
	tIDs  []int32
	edges []int
	order []int32
}

// solveComponent solves one component and marks its chosen pairs in the
// global taken bitmap. All writes are component-disjoint: taken slots
// belong to this component's pairs, localW/localT and usedW/usedT slots
// to its workers and tasks.
func solveComponent(alg Algorithm, p *Problem, pairs []Pair, infl, cost []float64, idx []int32, localW, localT []int32, usedW, usedT []bool, sc *compScratch, taken []bool) {
	if alg == MI {
		// The paper's greedy decomposes exactly: whether a pair is taken
		// depends only on earlier picks sharing its worker or task, which
		// are by definition in the same component.
		order := append(sc.order[:0], idx...)
		sort.Slice(order, func(a, b int) bool {
			ia, ib := order[a], order[b]
			if infl[ia] != infl[ib] {
				return infl[ia] > infl[ib]
			}
			if pairs[ia].W != pairs[ib].W {
				return pairs[ia].W < pairs[ib].W
			}
			return pairs[ia].T < pairs[ib].T
		})
		for _, gi := range order {
			pr := pairs[gi]
			if usedW[pr.W] || usedT[pr.T] {
				continue
			}
			usedW[pr.W] = true
			usedT[pr.T] = true
			taken[gi] = true
		}
		sc.order = order
		return
	}

	// Flow algorithms: build the Figure-4 network over just this
	// component's workers and tasks, edges in global pair order.
	wIDs := sc.wIDs[:0]
	tIDs := sc.tIDs[:0]
	for _, gi := range idx {
		wIDs = append(wIDs, pairs[gi].W)
		tIDs = append(tIDs, pairs[gi].T)
	}
	slices.Sort(wIDs)
	slices.Sort(tIDs)
	wIDs = slices.Compact(wIDs)
	tIDs = slices.Compact(tIDs)
	for li, w := range wIDs {
		localW[w] = int32(li)
	}
	for li, t := range tIDs {
		localT[t] = int32(li)
	}
	nw, nt := len(wIDs), len(tIDs)
	g := flow.NewNetwork(nw + nt + 2)
	s, t := 0, nw+nt+1
	for i := 0; i < nw; i++ {
		g.AddEdge(s, 1+i, 1, 0)
	}
	for j := 0; j < nt; j++ {
		g.AddEdge(1+nw+j, t, 1, 0)
	}
	edges := sc.edges[:0]
	for _, gi := range idx {
		pr := pairs[gi]
		c := 0.0
		if cost != nil {
			c = cost[gi]
		}
		edges = append(edges, g.AddEdge(1+int(localW[pr.W]), 1+nw+int(localT[pr.T]), 1, c))
	}
	switch alg {
	case MTA:
		g.MaxFlow(s, t)
	case MIX:
		g.MinCostFlowNonPositive(s, t)
	default: // IA, EIA, DIA
		g.MinCostMaxFlow(s, t)
	}
	for k, gi := range idx {
		if g.Flow(edges[k]) > 0 {
			taken[gi] = true
		}
	}
	sc.wIDs, sc.tIDs, sc.edges = wIDs, tIDs, edges
}

// collectTaken is collect with the influence values already evaluated:
// the assignment set is emitted in global pair-position order, so the
// output is independent of how components were scheduled.
func collectTaken(p *Problem, pairs []Pair, infl []float64, taken []bool) *model.AssignmentSet {
	out := &model.AssignmentSet{}
	for i, pr := range pairs {
		if !taken[i] {
			continue
		}
		out.Pairs = append(out.Pairs, model.Assignment{
			Task:   model.TaskID(pr.T),
			Worker: model.WorkerID(pr.W),
		})
		out.Influence = append(out.Influence, infl[i])
		out.TravelKm = append(out.TravelKm, pr.Dist)
	}
	return out
}
