package assign

import (
	"reflect"
	"testing"

	"dita/internal/geo"
	"dita/internal/randx"
)

// TestParallelAdmissionMatchesSequential is the parallel-admission
// equivalence gate: across a churny run whose arrival bursts exceed the
// parallel threshold, an index admitting on 2 or 8 workers must emit
// bit-identical pairs to the inline index at every instant, and carry
// identical standing state. The threshold is lowered so even small
// bursts exercise the chunked path (and its short-final-chunk edge).
func TestParallelAdmissionMatchesSequential(t *testing.T) {
	defer func(min int) { parallelAdmitMin = min }(parallelAdmitMin)
	parallelAdmitMin = 8

	for _, par := range []int{2, 8} {
		rng := randx.New(99)
		plat := &churnPlatform{}
		seq := NewPairIndex(5)
		pix := NewPairIndexParallel(5, par)
		const step = 0.25
		for i := 0; i < 80; i++ {
			now := float64(i) * step
			// Bursty arrivals: quiet instants (inline path), medium bursts
			// (one partial chunk) and large ones (many chunks) alternate.
			burst := 0
			switch rng.Intn(3) {
			case 1:
				burst = 3 + rng.Intn(8)
			case 2:
				burst = 60 + rng.Intn(120)
			}
			for n := burst; n > 0; n-- {
				plat.addWorker(geo.Point{X: rng.Float64() * 80, Y: rng.Float64() * 80},
					1+rng.Float64()*12)
			}
			for n := burst; n > 0; n-- {
				plat.addTask(geo.Point{X: rng.Float64() * 80, Y: rng.Float64() * 80},
					now, 0.5+rng.Float64()*3)
			}
			plat.expire(now)
			inst := plat.instance(now)

			want := seq.Update(inst)
			got := pix.Update(inst)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("par %d instant %d: parallel admission diverged (%d vs %d pairs)",
					par, i, len(got), len(want))
			}
			cold := FeasiblePairs(inst, 5)
			if !reflect.DeepEqual(got, cold) {
				t.Fatalf("par %d instant %d: parallel admission diverged from cold scan", par, i)
			}
			if pix.CachedPairs() != seq.CachedPairs() ||
				pix.CachedWorkers() != seq.CachedWorkers() ||
				pix.CachedTasks() != seq.CachedTasks() {
				t.Fatalf("par %d instant %d: standing state diverged (%d/%d/%d vs %d/%d/%d)",
					par, i, pix.CachedWorkers(), pix.CachedTasks(), pix.CachedPairs(),
					seq.CachedWorkers(), seq.CachedTasks(), seq.CachedPairs())
			}

			wPos, tPos := map[int]bool{}, map[int]bool{}
			for _, pr := range want {
				if rng.Float64() < 0.3 && !wPos[int(pr.W)] && !tPos[int(pr.T)] {
					wPos[int(pr.W)] = true
					tPos[int(pr.T)] = true
				}
			}
			plat.retire(wPos, tPos)
		}
	}
}

// TestParallelAdmissionDefaultThreshold drives one burst big enough to
// cross the untouched production threshold, so the default-configured
// parallel path is covered too (not only the test-lowered one).
func TestParallelAdmissionDefaultThreshold(t *testing.T) {
	rng := randx.New(7)
	plat := &churnPlatform{}
	seq := NewPairIndex(5)
	pix := NewPairIndexParallel(5, 8)
	n := parallelAdmitMin*2 + 17
	for i := 0; i < n; i++ {
		plat.addWorker(geo.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40}, 1+rng.Float64()*6)
		plat.addTask(geo.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40}, 0, 1+rng.Float64()*3)
	}
	inst := plat.instance(0)
	want := seq.Update(inst)
	got := pix.Update(inst)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("default-threshold burst: parallel admission diverged (%d vs %d pairs)",
			len(got), len(want))
	}
	// Second instant: the burst entities are standing now; a second wave
	// must scan them through the (concurrently read) grids identically.
	for i := 0; i < n; i++ {
		plat.addWorker(geo.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40}, 1+rng.Float64()*6)
		plat.addTask(geo.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40}, 0.5, 1+rng.Float64()*3)
	}
	plat.expire(0.5)
	inst = plat.instance(0.5)
	want = seq.Update(inst)
	got = pix.Update(inst)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("second wave: parallel admission diverged (%d vs %d pairs)", len(got), len(want))
	}
}
