package assign

import (
	"fmt"

	"dita/internal/geo"
	"dita/internal/model"
	"dita/internal/parallel"
)

// PairIndex maintains the feasible-pair set incrementally across the
// assignment instants of a streaming run. FeasiblePairs answers one
// instant from scratch — every worker re-queries the task grid, every
// candidate re-pays a distance and a deadline check — although under the
// paper's protocol (Section V) the pools barely change between instants:
// a worker stays online until assigned, a task stays open until served
// or expired. A PairIndex carries the pair set over and, per instant,
// pays only for the change:
//
//   - arrival: a newly admitted worker is scanned against the standing
//     task grid, a newly published task against the standing worker grid
//     (each pair is discovered exactly once, whichever side arrived
//     second);
//   - retirement: pairs whose worker was assigned or whose task was
//     served/expired are dropped when their owner leaves the pool —
//     departures are detected by a linear merge of the previous and
//     current pool ID lists, not by per-entity map probes;
//   - expiry: the deadline term now + d/speed <= s.p + s.ϕ decays as now
//     advances; each pair stores its travel slack d/speed once, and the
//     emission walk re-evaluates the exact FeasiblePairs expression per
//     pair, dropping failures from storage permanently (the deadline
//     only decays, so one failure is final).
//
// Deadline decay deliberately has no side structure (an earlier
// revision kept a min-heap of per-pair deadlines, as the issue
// sketched): emission must walk every live pair anyway to materialize
// the instant's positional output — pool compaction shifts positions
// every instant — so the one extra float compare is free, while heap
// maintenance cost O(log n) per pair and profiled as half the index's
// total upkeep.
//
// The emitted pairs are bit-identical to FeasiblePairs on the same
// instance: the range predicate is the same Dist2(w,s) <= r² the
// immutable grid uses, distances are computed with the same operand
// order, and the deadline compare reuses the exact cold expression —
// float rounding at the boundary cannot diverge.
//
// Preconditions (the streaming platform and dataset snapshots provide
// all of them; violations panic):
//
//   - entity IDs are stable identities: a Worker.ID / Task.ID always
//     denotes the same worker/task, whose Loc, Radius, Publish and Valid
//     never change;
//   - IDs appear in strictly increasing order within an instance (pool
//     order == ID order), which is what makes the merge-diff linear and
//     the per-worker pair lists position-sorted;
//   - a newly admitted task's ID exceeds every task ID the index has
//     ever seen (tasks never re-enter under an old identity);
//   - Instance.Now never decreases across Updates: deadline-failed
//     pairs are dropped from storage permanently, which is only sound
//     while the clock moves forward (replay an earlier instant with a
//     fresh index instead).
//
// A PairIndex is not safe for concurrent use. The slice Update returns
// is reused by the next Update.
type PairIndex struct {
	speed float64

	// liveW/liveT are the standing per-entity states, aligned with the
	// previous instant's pool positions; prevW/prevT are the matching ID
	// lists. The next Update diffs its pool against them with one linear
	// merge (IDs are monotone in pool order), so steady-state upkeep
	// costs slice walks, never per-entity map probes.
	liveW []*pairWorker
	liveT []*pairTask
	prevW []model.WorkerID
	prevT []model.TaskID

	// workers/tasks resolve stable IDs for churn-sized operations only:
	// grid-scan candidates during admission.
	workers map[model.WorkerID]*pairWorker
	tasks   map[model.TaskID]*pairTask
	maxTask model.TaskID // largest task ID ever admitted

	workerGrid *geo.MutableGrid // live worker locations, keyed by Worker.ID
	taskGrid   *geo.MutableGrid // live task locations, keyed by Task.ID
	maxRadius  float64          // largest worker radius ever seen

	// lastNow enforces the monotone-clock precondition; deadline-dead
	// pairs are gone for good, so serving an earlier instant would
	// silently emit fewer pairs than the cold scan.
	lastNow float64
	started bool

	// par bounds the worker pool arrival admission runs on: > 0 exact,
	// <= 0 all cores, 1 strictly inline (NewPairIndex's default).
	// Admission output is bit-identical at any setting — the parallel
	// phase only scans the standing grids (reads), and candidates merge
	// into the per-worker pair lists in the sequential admission order.
	par int

	// Reusable per-Update scratch. Emission resolves task IDs to pool
	// positions through posBuf, a dense array over the live ID window
	// [minID, maxID] — task IDs are monotone, so the window stays near
	// the pool size and the per-pair lookup is an array index, not a map
	// probe (which would cost as much as the distance computation the
	// index saves). taskPos is the fallback for pathologically sparse
	// windows.
	posBuf  []int32
	taskPos map[model.TaskID]int32
	buf     []int32
	freshW  []int32
	freshT  []int32
	nextW   []*pairWorker
	nextT   []*pairTask
	out     []Pair

	// Parallel-admission scratch: per-pool-worker grid query buffers,
	// per-chunk candidate arenas and per-fresh-task spans into them (see
	// admitTasksParallel).
	parBufs   [][]int32
	admArenas [][]admCand
	admSpans  []admSpan
}

// admCand is one range-and-deadline-feasible candidate found by the
// parallel task-admission scan, carrying the floats the sequential
// admission would have computed so the merge just appends them.
type admCand struct {
	w     *pairWorker
	dist  float64
	slack float64
}

// admSpan locates one fresh task's candidates inside its chunk's arena.
type admSpan struct{ chunk, lo, hi int32 }

// pairWorker is the standing state of one live worker: its immutable
// geometry and its feasible pairs, sorted by task ID (== task pool
// position, by the monotone-ID precondition).
type pairWorker struct {
	id     model.WorkerID
	loc    geo.Point
	radius float64
	pairs  []pairEntry
}

// pairEntry is one stored feasible pair. slack is dist/speed — the
// travel-time term of the deadline check, computed once so every
// revalidation reuses the identical float.
type pairEntry struct {
	task   model.TaskID
	dist   float64
	slack  float64
	expiry float64
}

// pairTask is the standing state of one live task.
type pairTask struct {
	id     model.TaskID
	loc    geo.Point
	expiry float64
}

// NewPairIndex returns an empty incremental feasible-pair index for the
// given travel speed (non-positive defaults to 5 km/h, as everywhere
// else). Admission runs inline; streaming callers with large arrival
// bursts should use NewPairIndexParallel.
func NewPairIndex(speedKmH float64) *PairIndex {
	return NewPairIndexParallel(speedKmH, 1)
}

// NewPairIndexParallel is NewPairIndex with an admission worker-pool
// bound: > 0 uses exactly that many workers, <= 0 all cores (the
// convention every Parallelism knob follows). Instants admitting fewer
// than parallelAdmitMin fresh entities stay on the inline path either
// way; emitted pairs are bit-identical at every setting.
func NewPairIndexParallel(speedKmH float64, parallelism int) *PairIndex {
	if speedKmH <= 0 {
		speedKmH = 5
	}
	return &PairIndex{
		speed:   speedKmH,
		par:     parallelism,
		workers: make(map[model.WorkerID]*pairWorker),
		tasks:   make(map[model.TaskID]*pairTask),
		maxTask: -1,
		taskPos: make(map[model.TaskID]int32),
	}
}

// CachedWorkers returns the number of workers with standing state.
func (ix *PairIndex) CachedWorkers() int { return len(ix.workers) }

// CachedTasks returns the number of tasks with standing state.
func (ix *PairIndex) CachedTasks() int { return len(ix.tasks) }

// CachedPairs returns the number of stored pairs (live plus any not yet
// compacted since their task left or their deadline passed).
func (ix *PairIndex) CachedPairs() int {
	n := 0
	for _, w := range ix.liveW {
		n += len(w.pairs)
	}
	return n
}

// Update advances the index to one instant — admitting arrivals,
// dropping retired and expired entities, revalidating decayed deadlines
// — and returns the instant's feasible pairs, positional and sorted by
// (worker, task) exactly as FeasiblePairs produces them. The returned
// slice is reused by the next Update; it is nil when no pair is
// feasible, matching the cold scan's shape.
func (ix *PairIndex) Update(inst *model.Instance) []Pair {
	now := inst.Now
	if ix.started && now < ix.lastNow {
		panic(fmt.Sprintf("assign: PairIndex clock moved backwards (%v after %v); deadline-dead pairs are dropped permanently, so replays need a fresh index", now, ix.lastNow))
	}
	ix.lastNow, ix.started = now, true
	newWorkers := ix.diffWorkers(inst)
	newTasks := ix.diffTasks(inst)
	ix.admitTasks(inst, newTasks, now)
	ix.admitWorkers(inst, newWorkers, now)
	return ix.emit(inst, now)
}

// diffWorkers merges the instant's worker pool against the previous
// one: both are sorted by ID, so one linear walk classifies every
// worker as carried over (state pointer moves to its new position),
// departed (state, grid entry and pairs dropped) or new (returned by
// pool position for admission). It also folds the instant's radii into
// the conservative query radius used by the standing-worker scans.
func (ix *PairIndex) diffWorkers(inst *model.Instance) []int32 {
	fresh := ix.freshW[:0]
	next := ix.nextW[:0]
	j := 0
	prev := model.WorkerID(-1)
	for i, w := range inst.Workers {
		if w.ID <= prev {
			panic(fmt.Sprintf("assign: worker IDs out of order in instance (%d after %d); PairIndex requires pool order == ID order", w.ID, prev))
		}
		prev = w.ID
		if w.Radius > ix.maxRadius {
			ix.maxRadius = w.Radius
		}
		for j < len(ix.prevW) && ix.prevW[j] < w.ID {
			ix.dropWorker(ix.liveW[j])
			j++
		}
		if j < len(ix.prevW) && ix.prevW[j] == w.ID {
			next = append(next, ix.liveW[j])
			j++
			continue
		}
		st := &pairWorker{id: w.ID, loc: w.Loc, radius: w.Radius}
		ix.workers[w.ID] = st
		next = append(next, st)
		fresh = append(fresh, int32(i))
	}
	for ; j < len(ix.prevW); j++ {
		ix.dropWorker(ix.liveW[j])
	}
	ix.nextW, ix.liveW = ix.liveW[:0], next
	ix.prevW = ix.prevW[:0]
	for _, w := range inst.Workers {
		ix.prevW = append(ix.prevW, w.ID)
	}
	ix.freshW = fresh
	return fresh
}

func (ix *PairIndex) dropWorker(st *pairWorker) {
	delete(ix.workers, st.id)
	ix.workerGrid.Remove(int32(st.id))
}

// diffTasks is diffWorkers for the task pool, additionally enforcing
// that admitted task IDs are fresh (never seen before), which keeps the
// per-worker pair lists append-sorted.
func (ix *PairIndex) diffTasks(inst *model.Instance) []int32 {
	fresh := ix.freshT[:0]
	next := ix.nextT[:0]
	j := 0
	prev := model.TaskID(-1)
	for i, t := range inst.Tasks {
		if t.ID <= prev {
			panic(fmt.Sprintf("assign: task IDs out of order in instance (%d after %d); PairIndex requires pool order == ID order", t.ID, prev))
		}
		prev = t.ID
		for j < len(ix.prevT) && ix.prevT[j] < t.ID {
			ix.dropTask(ix.liveT[j])
			j++
		}
		if j < len(ix.prevT) && ix.prevT[j] == t.ID {
			next = append(next, ix.liveT[j])
			j++
			continue
		}
		if t.ID <= ix.maxTask {
			panic(fmt.Sprintf("assign: task ID %d re-admitted after leaving the pool (max ever seen %d); PairIndex requires fresh, increasing task IDs", t.ID, ix.maxTask))
		}
		ix.maxTask = t.ID
		st := &pairTask{id: t.ID, loc: t.Loc, expiry: t.Expiry()}
		ix.tasks[t.ID] = st
		next = append(next, st)
		fresh = append(fresh, int32(i))
	}
	for ; j < len(ix.prevT); j++ {
		ix.dropTask(ix.liveT[j])
	}
	ix.nextT, ix.liveT = ix.liveT[:0], next
	ix.prevT = ix.prevT[:0]
	for _, t := range inst.Tasks {
		ix.prevT = append(ix.prevT, t.ID)
	}
	ix.freshT = fresh
	return fresh
}

func (ix *PairIndex) dropTask(st *pairTask) {
	delete(ix.tasks, st.id)
	ix.taskGrid.Remove(int32(st.id))
}

// Parallel-admission tuning. Chunks are fixed-size so their boundaries
// depend only on the fresh count (the determinism contract of
// internal/parallel); the minimum keeps instants with routine churn on
// the inline path, where goroutine fan-out would cost more than the
// handful of grid probes it distributes. parallelAdmitMin is a var so
// equivalence tests can force the parallel path on small bursts.
const admitChunk = 64

var parallelAdmitMin = 192

// admitWorkersPool resolves the admission worker count for a burst of
// fresh entities: 1 (inline) unless the index was built with a parallel
// bound and the burst is worth fanning out.
func (ix *PairIndex) admitWorkersPool(fresh int) int {
	if fresh < parallelAdmitMin {
		return 1
	}
	return parallel.Workers(ix.par)
}

// admitTasks scans each newly published task against the standing
// worker grid (new workers are not inserted yet, so new×new pairs are
// left for admitWorkers) and inserts it into the task grid.
func (ix *PairIndex) admitTasks(inst *model.Instance, fresh []int32, now float64) {
	if len(fresh) == 0 {
		return
	}
	if ix.taskGrid == nil {
		ix.taskGrid = geo.NewMutableGrid(ix.gridCell())
	}
	if workers := ix.admitWorkersPool(len(fresh)); workers > 1 && ix.workerGrid != nil {
		ix.admitTasksParallel(inst, fresh, now, workers)
		return
	}
	for _, j := range fresh {
		t := inst.Tasks[j]
		if ix.workerGrid != nil {
			ix.buf = ix.workerGrid.Within(t.Loc, ix.maxRadius, ix.buf[:0])
			for _, wid := range ix.buf {
				we := ix.workers[model.WorkerID(wid)]
				// The conservative maxRadius query over-approximates;
				// re-check with the worker's own radius, the same
				// squared-distance predicate the cold grid applies.
				if geo.Dist2(we.loc, t.Loc) > we.radius*we.radius {
					continue
				}
				ix.admitPair(we, t.ID, we.loc, t.Loc, t.Expiry(), now)
			}
		}
		ix.taskGrid.Insert(int32(t.ID), t.Loc)
	}
}

// admitTasksParallel is admitTasks in two phases. Phase one fans the
// fresh tasks out in fixed-size chunks: each chunk only reads the
// standing worker grid and state maps (no admission mutates them until
// every chunk is done) and records its candidates — with the exact
// distance/slack floats the inline path computes, worker-grid scan
// order preserved — in a chunk-indexed arena. Phase two replays the
// candidates sequentially in fresh-task order, appending to the
// per-worker pair lists and inserting the tasks into the task grid
// exactly as the inline loop would have: the same pairs, in the same
// per-worker order, from the same floats.
func (ix *PairIndex) admitTasksParallel(inst *model.Instance, fresh []int32, now float64, workers int) {
	chunks := parallel.NumChunks(len(fresh), admitChunk)
	for len(ix.admArenas) < chunks {
		ix.admArenas = append(ix.admArenas, nil)
	}
	for len(ix.parBufs) < workers {
		ix.parBufs = append(ix.parBufs, nil)
	}
	if cap(ix.admSpans) < len(fresh) {
		ix.admSpans = make([]admSpan, len(fresh))
	}
	spans := ix.admSpans[:len(fresh)]
	parallel.ForChunks(workers, len(fresh), admitChunk, func(worker, chunk, lo, hi int) {
		arena := ix.admArenas[chunk][:0]
		buf := ix.parBufs[worker]
		for j := lo; j < hi; j++ {
			t := inst.Tasks[fresh[j]]
			cLo := int32(len(arena))
			buf = ix.workerGrid.Within(t.Loc, ix.maxRadius, buf[:0])
			for _, wid := range buf {
				we := ix.workers[model.WorkerID(wid)]
				if geo.Dist2(we.loc, t.Loc) > we.radius*we.radius {
					continue
				}
				d := geo.Dist(we.loc, t.Loc)
				slack := d / ix.speed
				if now+slack > t.Expiry() {
					continue
				}
				arena = append(arena, admCand{w: we, dist: d, slack: slack})
			}
			spans[j] = admSpan{chunk: int32(chunk), lo: cLo, hi: int32(len(arena))}
		}
		ix.admArenas[chunk] = arena
		ix.parBufs[worker] = buf
	})
	for j, ji := range fresh {
		t := inst.Tasks[ji]
		expiry := t.Expiry()
		sp := spans[j]
		for _, c := range ix.admArenas[sp.chunk][sp.lo:sp.hi] {
			c.w.pairs = append(c.w.pairs, pairEntry{task: t.ID, dist: c.dist, slack: c.slack, expiry: expiry})
		}
		ix.taskGrid.Insert(int32(t.ID), t.Loc)
	}
}

// admitWorkers scans each newly admitted worker against the task grid —
// which at this point holds standing and new tasks alike — and inserts
// it into the worker grid.
func (ix *PairIndex) admitWorkers(inst *model.Instance, fresh []int32, now float64) {
	if len(fresh) == 0 {
		return
	}
	if ix.workerGrid == nil {
		ix.workerGrid = geo.NewMutableGrid(ix.gridCell())
	}
	if workers := ix.admitWorkersPool(len(fresh)); workers > 1 && ix.taskGrid != nil {
		ix.admitWorkersParallel(inst, fresh, now, workers)
		return
	}
	for _, i := range fresh {
		w := inst.Workers[i]
		we := ix.liveW[i]
		if ix.taskGrid != nil {
			ix.buf = ix.taskGrid.Within(w.Loc, w.Radius, ix.buf[:0])
			for _, tid := range ix.buf {
				te := ix.tasks[model.TaskID(tid)]
				ix.admitPair(we, model.TaskID(tid), w.Loc, te.loc, te.expiry, now)
			}
		}
		ix.workerGrid.Insert(int32(w.ID), w.Loc)
	}
}

// admitWorkersParallel fans the fresh workers out in fixed-size chunks.
// Unlike task admission no merge arena is needed: a fresh worker's
// candidates land in its own pair list, and distinct fresh workers
// never share one, so each chunk writes only worker-owned state. The
// task grid and task map are read-only here (task admission already
// ran), and the worker-grid inserts are deferred to a sequential pass —
// they are invisible to this scan either way, exactly as in the inline
// loop, which probes only the task grid.
func (ix *PairIndex) admitWorkersParallel(inst *model.Instance, fresh []int32, now float64, workers int) {
	for len(ix.parBufs) < workers {
		ix.parBufs = append(ix.parBufs, nil)
	}
	parallel.ForChunks(workers, len(fresh), admitChunk, func(worker, _, lo, hi int) {
		buf := ix.parBufs[worker]
		for k := lo; k < hi; k++ {
			i := fresh[k]
			w := inst.Workers[i]
			we := ix.liveW[i]
			buf = ix.taskGrid.Within(w.Loc, w.Radius, buf[:0])
			for _, tid := range buf {
				te := ix.tasks[model.TaskID(tid)]
				ix.admitPair(we, model.TaskID(tid), w.Loc, te.loc, te.expiry, now)
			}
		}
		ix.parBufs[worker] = buf
	})
	for _, i := range fresh {
		w := inst.Workers[i]
		ix.workerGrid.Insert(int32(w.ID), w.Loc)
	}
}

// admitPair records one range-feasible pair if it also meets the
// deadline at the admission instant (the deadline only decays, so a pair
// infeasible now can never become feasible). Appends keep the worker's
// list sorted: admitted task IDs are fresh and increasing, and the grid
// scan returns standing task IDs ascending.
func (ix *PairIndex) admitPair(we *pairWorker, t model.TaskID, wLoc, tLoc geo.Point, expiry, now float64) {
	d := geo.Dist(wLoc, tLoc)
	slack := d / ix.speed
	if now+slack > expiry {
		return
	}
	we.pairs = append(we.pairs, pairEntry{task: t, dist: d, slack: slack, expiry: expiry})
}

// gridCell derives the bucket size for a lazily created grid from the
// radii seen so far. Matching the largest query radius keeps a radius
// query at ~3×3 bucket probes; finer cells would shrink the candidate
// lists but pay more hash probes per query than the distance checks
// they avoid.
func (ix *PairIndex) gridCell() float64 {
	if ix.maxRadius > 0 {
		return ix.maxRadius
	}
	return 1
}

// emit walks the live pool in position order and materializes the
// instant's pair list, compacting out entries whose task departed and —
// with the exact FeasiblePairs expression — entries whose deadline has
// decayed past now (final, since the deadline only decays).
func (ix *PairIndex) emit(inst *model.Instance, now float64) []Pair {
	var minID model.TaskID
	width := 0
	if n := len(inst.Tasks); n > 0 {
		minID = inst.Tasks[0].ID
		width = int(inst.Tasks[n-1].ID-minID) + 1
		if width > 4*n+1024 {
			width = 0 // sparse window: fall back to the map
		}
	}
	if width > 0 {
		if cap(ix.posBuf) < width {
			ix.posBuf = make([]int32, width)
		}
		ix.posBuf = ix.posBuf[:width]
		for k := range ix.posBuf {
			ix.posBuf[k] = -1
		}
		for j, t := range inst.Tasks {
			ix.posBuf[t.ID-minID] = int32(j)
		}
	} else {
		clear(ix.taskPos)
		for j, t := range inst.Tasks {
			ix.taskPos[t.ID] = int32(j)
		}
	}
	ix.out = ix.out[:0]
	for i, we := range ix.liveW {
		kept := we.pairs[:0]
		for _, pe := range we.pairs {
			pos := int32(-1)
			if width > 0 {
				if off := pe.task - minID; off >= 0 && int(off) < width {
					pos = ix.posBuf[off]
				}
			} else if p, live := ix.taskPos[pe.task]; live {
				pos = p
			}
			if pos < 0 || now+pe.slack > pe.expiry {
				continue
			}
			kept = append(kept, pe)
			ix.out = append(ix.out, Pair{W: int32(i), T: pos, Dist: pe.dist})
		}
		we.pairs = kept
	}
	if len(ix.out) == 0 {
		return nil
	}
	return ix.out
}
