package assign

import (
	"math"
	"testing"

	"dita/internal/geo"
	"dita/internal/model"
	"dita/internal/randx"
)

// randomInstance builds an instance with nW workers and nT tasks placed
// uniformly in a box. Radius/valid are generous enough that instances are
// well connected but not complete.
func randomInstance(nW, nT int, seed uint64) *model.Instance {
	rng := randx.New(seed)
	inst := &model.Instance{Now: 0}
	for i := 0; i < nW; i++ {
		inst.Workers = append(inst.Workers, model.Worker{
			ID:     model.WorkerID(i),
			User:   model.WorkerID(i),
			Loc:    geo.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50},
			Radius: 15,
		})
	}
	for j := 0; j < nT; j++ {
		inst.Tasks = append(inst.Tasks, model.Task{
			ID:      model.TaskID(j),
			Loc:     geo.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50},
			Publish: 0,
			Valid:   4,
		})
	}
	return inst
}

// syntheticInfluence gives each (w, t) a deterministic pseudo-random
// influence value so algorithm behaviour is reproducible.
func syntheticInfluence(seed uint64) func(w, t int) float64 {
	return func(w, t int) float64 {
		h := seed ^ uint64(w)*0x9e3779b97f4a7c15 ^ uint64(t)*0xbf58476d1ce4e5b9
		h ^= h >> 31
		h *= 0x94d049bb133111eb
		h ^= h >> 29
		return float64(h%1000) / 1000
	}
}

func TestFeasiblePairsMatchBruteForce(t *testing.T) {
	inst := randomInstance(40, 60, 1)
	got := FeasiblePairs(inst, 5)
	seen := map[[2]int32]float64{}
	for _, p := range got {
		seen[[2]int32{p.W, p.T}] = p.Dist
	}
	count := 0
	for wi, w := range inst.Workers {
		for ti, s := range inst.Tasks {
			feasible := model.Feasible(w, s, inst.Now, 5)
			d, ok := seen[[2]int32{int32(wi), int32(ti)}]
			if feasible != ok {
				t.Fatalf("pair (%d,%d): feasible=%v, reported=%v", wi, ti, feasible, ok)
			}
			if ok {
				count++
				want := geo.Dist(w.Loc, s.Loc)
				if math.Abs(d-want) > 1e-9 {
					t.Fatalf("pair (%d,%d) distance %v, want %v", wi, ti, d, want)
				}
			}
		}
	}
	if count != len(got) {
		t.Fatalf("duplicate pairs: %d reported, %d distinct", len(got), count)
	}
}

func TestFeasiblePairsDeadline(t *testing.T) {
	// One worker, one task 10km away, radius 20: feasibility should
	// depend only on the deadline at 5 km/h (needs 2h).
	inst := &model.Instance{
		Now: 0,
		Workers: []model.Worker{
			{ID: 0, Loc: geo.Point{}, Radius: 20},
		},
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Point{X: 10}, Publish: 0, Valid: 1.5},
		},
	}
	if got := FeasiblePairs(inst, 5); len(got) != 0 {
		t.Errorf("deadline-violating pair reported: %v", got)
	}
	inst.Tasks[0].Valid = 2.5
	if got := FeasiblePairs(inst, 5); len(got) != 1 {
		t.Errorf("feasible pair missing")
	}
}

// TestSolveHasPairsAuthoritative: a precomputed-but-empty pair set must
// not trigger a silent feasibility rescan. A zero-feasibility instance
// yields a nil pair slice from FeasiblePairs; with HasPairs set, Solve
// must take it at face value — observable on a well-connected instance,
// where a rescan would assign tasks and the authoritative empty set must
// assign none.
func TestSolveHasPairsAuthoritative(t *testing.T) {
	// Zero-feasibility instance: the precomputed set is legitimately nil.
	sparse := &model.Instance{
		Now:     0,
		Workers: []model.Worker{{ID: 0, Loc: geo.Point{}, Radius: 1}},
		Tasks:   []model.Task{{ID: 0, Loc: geo.Point{X: 50}, Publish: 0, Valid: 1}},
	}
	var precomputed []Pair
	precomputed = FeasiblePairs(sparse, 5)
	if precomputed != nil {
		t.Fatalf("instance is not zero-feasibility: %v", precomputed)
	}
	for _, alg := range Algorithms {
		prob := &Problem{Inst: sparse, Influence: syntheticInfluence(1),
			SpeedKmH: 5, Pairs: precomputed, HasPairs: true}
		if got := Solve(alg, prob).Len(); got != 0 {
			t.Errorf("%v assigned %d on an authoritative empty pair set", alg, got)
		}
	}

	// Dense instance: FeasiblePairs would find plenty, so any assignment
	// proves Solve re-entered it behind the caller's back.
	dense := randomInstance(12, 12, 3)
	if len(FeasiblePairs(dense, 5)) == 0 {
		t.Fatal("dense instance has no feasible pairs; the probe cannot detect a rescan")
	}
	for _, alg := range Algorithms {
		prob := &Problem{Inst: dense, Influence: syntheticInfluence(1),
			SpeedKmH: 5, Pairs: nil, HasPairs: true}
		if got := Solve(alg, prob).Len(); got != 0 {
			t.Errorf("%v recomputed feasibility despite HasPairs (assigned %d)", alg, got)
		}
	}
}

func validate(t *testing.T, set *model.AssignmentSet, inst *model.Instance) {
	t.Helper()
	if err := set.Validate(len(inst.Tasks), len(inst.Workers)); err != nil {
		t.Fatalf("invalid assignment: %v", err)
	}
	// Every assigned pair must be feasible.
	for i, pr := range set.Pairs {
		w := inst.Workers[pr.Worker]
		s := inst.Tasks[pr.Task]
		if !model.Feasible(w, s, inst.Now, 5) {
			t.Fatalf("pair %d (%d,%d) infeasible", i, pr.Worker, pr.Task)
		}
	}
}

func TestAllAlgorithmsProduceValidAssignments(t *testing.T) {
	inst := randomInstance(30, 40, 2)
	prob := &Problem{Inst: inst, Influence: syntheticInfluence(3), SpeedKmH: 5}
	for _, alg := range Algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			set := Solve(alg, prob)
			validate(t, set, inst)
			if set.Len() == 0 {
				t.Fatal("no assignments on a well-connected instance")
			}
		})
	}
}

func TestFlowAlgorithmsAchieveMaximumCardinality(t *testing.T) {
	// MTA, IA, EIA and DIA all maximize |A| first; they must agree on
	// the assignment size (the max matching) on any instance.
	for seed := uint64(0); seed < 5; seed++ {
		inst := randomInstance(25, 25, 10+seed)
		prob := &Problem{Inst: inst, Influence: syntheticInfluence(seed), SpeedKmH: 5}
		want := Solve(MTA, prob).Len()
		for _, alg := range []Algorithm{IA, EIA, DIA} {
			if got := Solve(alg, prob).Len(); got != want {
				t.Errorf("seed %d: %v assigned %d, MTA %d", seed, alg, got, want)
			}
		}
	}
}

func TestMICannotExceedFlowCardinality(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		inst := randomInstance(25, 25, 20+seed)
		prob := &Problem{Inst: inst, Influence: syntheticInfluence(seed), SpeedKmH: 5}
		mta := Solve(MTA, prob).Len()
		mi := Solve(MI, prob).Len()
		if mi > mta {
			t.Errorf("seed %d: MI assigned %d > max matching %d", seed, mi, mta)
		}
	}
}

func TestIAMinimizesPaperCostAmongMaxAssignments(t *testing.T) {
	// IA's secondary objective is to minimize Σ 1/(if+1) over a maximum
	// assignment (the paper's edge cost), which is related to but NOT the
	// same as maximizing Σ if. On this 2×2 instance:
	//   (0→0, 1→1): influences 5, 0.5 → cost 1/6 + 1/1.5 ≈ 0.8333
	//   (0→1, 1→0): influences 1, 4   → cost 1/2 + 1/5   = 0.7000
	// so IA must pick the second despite its lower total influence.
	inst := &model.Instance{
		Now: 0,
		Workers: []model.Worker{
			{ID: 0, Loc: geo.Point{X: 0}, Radius: 100},
			{ID: 1, Loc: geo.Point{X: 1}, Radius: 100},
		},
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Point{X: 2}, Valid: 100},
			{ID: 1, Loc: geo.Point{X: 3}, Valid: 100},
		},
	}
	infl := map[[2]int]float64{
		{0, 0}: 5, {0, 1}: 1,
		{1, 0}: 4, {1, 1}: 0.5,
	}
	prob := &Problem{
		Inst:      inst,
		Influence: func(w, t int) float64 { return infl[[2]int{w, t}] },
		SpeedKmH:  5,
	}
	set := Solve(IA, prob)
	if set.Len() != 2 {
		t.Fatalf("assigned %d, want 2", set.Len())
	}
	cost := 0.0
	for i := range set.Pairs {
		cost += 1 / (set.Influence[i] + 1)
	}
	if math.Abs(cost-0.7) > 1e-9 {
		t.Errorf("IA paper-cost %v, want 0.7 (the minimum over max assignments)", cost)
	}
	if got := set.TotalInfluence(); math.Abs(got-5) > 1e-9 {
		t.Errorf("IA total influence %v, want 5", got)
	}
}

func TestMIPrefersInfluenceOverCardinality(t *testing.T) {
	// Worker 0 reaches both tasks, worker 1 reaches only task 0. The
	// max-cardinality assignment is {(0,1),(1,0)}; MI instead grabs the
	// single highest-influence pair (0,0) and strands worker 1.
	inst := &model.Instance{
		Now: 0,
		Workers: []model.Worker{
			{ID: 0, Loc: geo.Point{X: 0}, Radius: 100},
			{ID: 1, Loc: geo.Point{X: 0}, Radius: 1},
		},
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Point{X: 0.5}, Valid: 100},
			{ID: 1, Loc: geo.Point{X: 50}, Valid: 100},
		},
	}
	infl := map[[2]int]float64{
		{0, 0}: 10, {0, 1}: 1, {1, 0}: 1,
	}
	prob := &Problem{
		Inst:      inst,
		Influence: func(w, t int) float64 { return infl[[2]int{w, t}] },
		SpeedKmH:  5,
	}
	// Greedy takes (0,0) with influence 10 first; task 0 is then used, so
	// (1,0) is blocked, and worker 0 being used blocks (0,1). MI strands
	// worker 1 at one assignment while the flow algorithms reach two.
	mi := Solve(MI, prob)
	if mi.Len() != 1 {
		t.Fatalf("MI assigned %d, want 1", mi.Len())
	}
	mta := Solve(MTA, prob)
	if mta.Len() != 2 {
		t.Fatalf("MTA assigned %d, want 2", mta.Len())
	}
	// And MI's AI must exceed MTA's on this instance.
	if mi.AverageInfluence() <= mta.AverageInfluence() {
		t.Errorf("MI AI %v not above MTA AI %v", mi.AverageInfluence(), mta.AverageInfluence())
	}
}

func TestInfluenceOrderingAcrossAlgorithms(t *testing.T) {
	// The paper's headline qualitative result — AI(MI) ≥ AI(IA) ≥
	// AI(MTA) — is empirical, not a per-instance theorem (IA optimizes
	// Σ 1/(if+1), MI is greedy), so assert it in aggregate over seeds.
	var aiMTA, aiIA, aiMI float64
	const seeds = 8
	for seed := uint64(0); seed < seeds; seed++ {
		inst := randomInstance(30, 30, 30+seed)
		prob := &Problem{Inst: inst, Influence: syntheticInfluence(seed * 7), SpeedKmH: 5}
		aiMTA += Solve(MTA, prob).AverageInfluence()
		aiIA += Solve(IA, prob).AverageInfluence()
		aiMI += Solve(MI, prob).AverageInfluence()
	}
	if aiIA <= aiMTA {
		t.Errorf("aggregate AI: IA %v not above MTA %v", aiIA/seeds, aiMTA/seeds)
	}
	if aiMI <= aiIA {
		t.Errorf("aggregate AI: MI %v not above IA %v", aiMI/seeds, aiIA/seeds)
	}
}

func TestDIAFavorsCloserWorkers(t *testing.T) {
	// Two workers, one task; equal influence; DIA must send the closer
	// worker because F discounts influence with distance.
	inst := &model.Instance{
		Now: 0,
		Workers: []model.Worker{
			{ID: 0, Loc: geo.Point{X: 9}, Radius: 10},
			{ID: 1, Loc: geo.Point{X: 1}, Radius: 10},
		},
		Tasks: []model.Task{{ID: 0, Loc: geo.Point{X: 0}, Valid: 100}},
	}
	prob := &Problem{
		Inst:      inst,
		Influence: func(w, t int) float64 { return 3 },
		SpeedKmH:  5,
	}
	set := Solve(DIA, prob)
	if set.Len() != 1 || set.Pairs[0].Worker != 1 {
		t.Errorf("DIA chose %+v, want worker 1 (closer)", set.Pairs)
	}
}

func TestEIAPrioritizesLowEntropyTasks(t *testing.T) {
	// One worker, two reachable tasks with equal influence; EIA should
	// take the lower-entropy task (cheaper edge) when only one can be
	// served.
	inst := &model.Instance{
		Now: 0,
		Workers: []model.Worker{
			{ID: 0, Loc: geo.Point{}, Radius: 10},
		},
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Point{X: 1}, Valid: 100, Venue: 0},
			{ID: 1, Loc: geo.Point{X: 1.5}, Valid: 100, Venue: 1},
		},
	}
	entropies := []float64{2.0, 0.1}
	prob := &Problem{
		Inst:      inst,
		Influence: func(w, t int) float64 { return 1 },
		Entropy:   func(t int) float64 { return entropies[t] },
		SpeedKmH:  5,
	}
	set := Solve(EIA, prob)
	if set.Len() != 1 || set.Pairs[0].Task != 1 {
		t.Errorf("EIA chose %+v, want low-entropy task 1", set.Pairs)
	}
}

func TestEmptyInstances(t *testing.T) {
	for _, alg := range Algorithms {
		prob := &Problem{Inst: &model.Instance{}, Influence: func(w, t int) float64 { return 1 }}
		set := Solve(alg, prob)
		if set.Len() != 0 {
			t.Errorf("%v assigned %d on empty instance", alg, set.Len())
		}
	}
	// Workers but no tasks, and vice versa.
	onlyWorkers := randomInstance(5, 0, 1)
	onlyTasks := randomInstance(0, 5, 1)
	for _, alg := range Algorithms {
		if got := Solve(alg, &Problem{Inst: onlyWorkers}).Len(); got != 0 {
			t.Errorf("%v assigned %d with no tasks", alg, got)
		}
		if got := Solve(alg, &Problem{Inst: onlyTasks}).Len(); got != 0 {
			t.Errorf("%v assigned %d with no workers", alg, got)
		}
	}
}

func TestPrecomputedPairsRespected(t *testing.T) {
	inst := randomInstance(10, 10, 4)
	all := FeasiblePairs(inst, 5)
	if len(all) < 2 {
		t.Skip("instance too sparse for the test")
	}
	// Restrict to a single pair: algorithms may only use it.
	prob := &Problem{Inst: inst, Influence: syntheticInfluence(1), Pairs: all[:1], SpeedKmH: 5}
	for _, alg := range Algorithms {
		set := Solve(alg, prob)
		if set.Len() > 1 {
			t.Errorf("%v ignored the precomputed pair restriction", alg)
		}
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, alg := range Algorithms {
		got, err := ParseAlgorithm(alg.String())
		if err != nil || got != alg {
			t.Errorf("round trip failed for %v: %v, %v", alg, got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestDeterministicResults(t *testing.T) {
	inst := randomInstance(20, 20, 5)
	prob := &Problem{Inst: inst, Influence: syntheticInfluence(9), SpeedKmH: 5}
	for _, alg := range Algorithms {
		a := Solve(alg, prob)
		b := Solve(alg, prob)
		if a.Len() != b.Len() {
			t.Fatalf("%v nondeterministic size", alg)
		}
		for i := range a.Pairs {
			if a.Pairs[i] != b.Pairs[i] {
				t.Fatalf("%v nondeterministic pair %d", alg, i)
			}
		}
	}
}
