package ic

import (
	"testing"

	"dita/internal/randx"
	"dita/internal/socialgraph"
)

// BenchmarkSimulate measures one IC cascade on a paper-scale graph —
// the Monte Carlo unit the RRR approach amortizes away.
func BenchmarkSimulate(b *testing.B) {
	g := socialgraph.GeneratePreferentialAttachment(2400, 3, randx.New(1))
	m := NewModel(g)
	rng := randx.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Simulate([]int32{int32(i % g.N())}, rng)
	}
}

// BenchmarkInformedProb measures the brute-force estimator RPO replaces
// (1000 trials for one source).
func BenchmarkInformedProb(b *testing.B) {
	g := socialgraph.GeneratePreferentialAttachment(600, 3, randx.New(1))
	m := NewModel(g)
	rng := randx.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.InformedProb(int32(i%g.N()), 1000, rng)
	}
}

// BenchmarkInformedProbParallelism shows the Monte Carlo ground-truth
// estimator scaling over the worker pool (4000 trials, one source).
func BenchmarkInformedProbParallelism(b *testing.B) {
	g := socialgraph.GeneratePreferentialAttachment(600, 3, randx.New(1))
	for _, bc := range []struct {
		name string
		par  int
	}{{"p=1", 1}, {"p=2", 2}, {"p=auto", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			m := &Model{G: g, Parallelism: bc.par}
			rng := randx.New(2)
			for i := 0; i < b.N; i++ {
				m.InformedProb(int32(i%g.N()), 4000, rng)
			}
		})
	}
}
