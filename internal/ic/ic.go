// Package ic implements the Independent Cascade (IC) propagation model
// the paper uses to simulate how task information spreads through the
// social network (Section III-C1).
//
// In IC a newly informed worker gets exactly one chance to inform each
// out-neighbor independently; the edge (u, v) succeeds with the paper's
// in-degree-based probability 1/indeg(v). The forward Monte Carlo
// estimators here serve two purposes: they are the ground truth the
// RRR-based RPO estimator is validated against in tests, and they back
// the propagation example program.
//
// The Monte Carlo estimators (Spread, InformedProb) run their trials on
// a bounded worker pool. Trials are grouped into fixed chunks, each
// chunk drawing from a stream split off the caller's generator by chunk
// index, so the estimates are bit-identical for every Parallelism
// setting (see internal/parallel for the contract).
package ic

import (
	"dita/internal/parallel"
	"dita/internal/randx"
	"dita/internal/socialgraph"
)

// trialChunk is the number of Monte Carlo trials per scheduling chunk.
// Like rrr.sampleChunk it is part of the determinism contract: chunk
// boundaries decide which split stream drives which trial.
const trialChunk = 32

// Model binds a social graph to an edge-probability function.
type Model struct {
	G *socialgraph.Graph
	// Prob returns the probability that u informs v given the edge (u,v)
	// exists. When nil, the paper's default 1/indeg(v) is used.
	Prob func(u, v int32) float64
	// Parallelism bounds the worker goroutines Spread and InformedProb
	// use; <= 0 means runtime.GOMAXPROCS(0). Every setting produces
	// identical estimates for the same input generator state.
	Parallelism int
}

// NewModel returns an IC model over g with the paper's default in-degree
// edge probabilities.
func NewModel(g *socialgraph.Graph) *Model {
	return &Model{G: g}
}

func (m *Model) prob(u, v int32) float64 {
	if m.Prob != nil {
		return m.Prob(u, v)
	}
	return m.G.InformProb(u, v)
}

// cascade is the reusable scratch of one diffusion: the informed marks
// plus the touched list that lets a worker reset them in O(|cascade|)
// instead of O(|W|) between trials.
type cascade struct {
	informed []bool
	touched  []int32
	frontier []int32
	next     []int32
}

func newCascade(n int) *cascade {
	return &cascade{informed: make([]bool, n)}
}

// run executes one IC diffusion from seeds, leaving the informed workers
// marked in c.informed and listed in c.touched. Call clear() before the
// next trial.
func (c *cascade) run(m *Model, seeds []int32, rng *randx.Rand) {
	c.touched = c.touched[:0]
	c.frontier = c.frontier[:0]
	for _, s := range seeds {
		if !c.informed[s] {
			c.informed[s] = true
			c.touched = append(c.touched, s)
			c.frontier = append(c.frontier, s)
		}
	}
	for len(c.frontier) > 0 {
		c.next = c.next[:0]
		for _, u := range c.frontier {
			for _, v := range m.G.Out(u) {
				if c.informed[v] {
					continue
				}
				if rng.Bool(m.prob(u, v)) {
					c.informed[v] = true
					c.touched = append(c.touched, v)
					c.next = append(c.next, v)
				}
			}
		}
		c.frontier, c.next = c.next, c.frontier
	}
}

func (c *cascade) clear() {
	for _, v := range c.touched {
		c.informed[v] = false
	}
}

// Simulate runs one IC diffusion from the seed set and returns the set of
// informed workers as a boolean slice of length G.N(). Seeds are informed
// at iteration zero; propagation proceeds in rounds until no new worker is
// informed, exactly as Section III-C1 describes.
func (m *Model) Simulate(seeds []int32, rng *randx.Rand) []bool {
	c := newCascade(m.G.N())
	c.run(m, seeds, rng)
	return c.informed
}

// SimulateTrace runs one diffusion and returns, for every worker, the
// iteration at which it was informed (-1 if never). Seeds have iteration
// 0. Useful for inspecting propagation depth.
func (m *Model) SimulateTrace(seeds []int32, rng *randx.Rand) []int32 {
	round := make([]int32, m.G.N())
	for i := range round {
		round[i] = -1
	}
	frontier := make([]int32, 0, len(seeds))
	for _, s := range seeds {
		if round[s] < 0 {
			round[s] = 0
			frontier = append(frontier, s)
		}
	}
	var next []int32
	for r := int32(1); len(frontier) > 0; r++ {
		next = next[:0]
		for _, u := range frontier {
			for _, v := range m.G.Out(u) {
				if round[v] >= 0 {
					continue
				}
				if rng.Bool(m.prob(u, v)) {
					round[v] = r
					next = append(next, v)
				}
			}
		}
		frontier, next = next, frontier
	}
	return round
}

// Spread estimates the expected number of informed workers (including the
// seeds) over the given number of Monte Carlo trials.
func (m *Model) Spread(seeds []int32, trials int, rng *randx.Rand) float64 {
	if trials <= 0 {
		return 0
	}
	workers := parallel.Workers(m.Parallelism)
	chunks := parallel.NumChunks(trials, trialChunk)
	rngs := make([]randx.Rand, chunks)
	rng.SplitStreamsInto(rngs)
	scratch := make([]*cascade, workers)
	totals := make([]int64, workers)
	parallel.ForChunks(workers, trials, trialChunk, func(worker, chunk, lo, hi int) {
		sc := scratch[worker]
		if sc == nil {
			sc = newCascade(m.G.N())
			scratch[worker] = sc
		}
		crng := &rngs[chunk]
		for t := lo; t < hi; t++ {
			sc.run(m, seeds, crng)
			totals[worker] += int64(len(sc.touched))
			sc.clear()
		}
	})
	var total int64
	for _, t := range totals {
		total += t
	}
	return float64(total) / float64(trials)
}

// InformedProb estimates, for every worker, the probability of being
// informed when src starts the cascade, averaged over the given number of
// Monte Carlo trials. This is the ground-truth counterpart of the RPO
// estimator in internal/rrr.
func (m *Model) InformedProb(src int32, trials int, rng *randx.Rand) []float64 {
	n := m.G.N()
	probs := make([]float64, n)
	if trials <= 0 {
		return probs
	}
	workers := parallel.Workers(m.Parallelism)
	chunks := parallel.NumChunks(trials, trialChunk)
	rngs := make([]randx.Rand, chunks)
	rng.SplitStreamsInto(rngs)
	scratch := make([]*cascade, workers)
	counts := make([][]int32, workers)
	seeds := []int32{src}
	parallel.ForChunks(workers, trials, trialChunk, func(worker, chunk, lo, hi int) {
		sc := scratch[worker]
		if sc == nil {
			sc = newCascade(n)
			scratch[worker] = sc
			counts[worker] = make([]int32, n)
		}
		cnt := counts[worker]
		crng := &rngs[chunk]
		for t := lo; t < hi; t++ {
			sc.run(m, seeds, crng)
			for _, v := range sc.touched {
				cnt[v]++
			}
			sc.clear()
		}
	})
	// Merge the per-worker tallies as integers first: integer addition
	// commutes, so the result is independent of which worker ran which
	// chunk; only then convert to probabilities.
	total := make([]int64, n)
	for _, cnt := range counts {
		if cnt == nil {
			continue
		}
		for i, c := range cnt {
			total[i] += int64(c)
		}
	}
	for i, c := range total {
		probs[i] = float64(c) / float64(trials)
	}
	return probs
}
