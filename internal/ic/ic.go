// Package ic implements the Independent Cascade (IC) propagation model
// the paper uses to simulate how task information spreads through the
// social network (Section III-C1).
//
// In IC a newly informed worker gets exactly one chance to inform each
// out-neighbor independently; the edge (u, v) succeeds with the paper's
// in-degree-based probability 1/indeg(v). The forward Monte Carlo
// estimators here serve two purposes: they are the ground truth the
// RRR-based RPO estimator is validated against in tests, and they back
// the propagation example program.
package ic

import (
	"dita/internal/randx"
	"dita/internal/socialgraph"
)

// Model binds a social graph to an edge-probability function.
type Model struct {
	G *socialgraph.Graph
	// Prob returns the probability that u informs v given the edge (u,v)
	// exists. When nil, the paper's default 1/indeg(v) is used.
	Prob func(u, v int32) float64
}

// NewModel returns an IC model over g with the paper's default in-degree
// edge probabilities.
func NewModel(g *socialgraph.Graph) *Model {
	return &Model{G: g}
}

func (m *Model) prob(u, v int32) float64 {
	if m.Prob != nil {
		return m.Prob(u, v)
	}
	return m.G.InformProb(u, v)
}

// Simulate runs one IC diffusion from the seed set and returns the set of
// informed workers as a boolean slice of length G.N(). Seeds are informed
// at iteration zero; propagation proceeds in rounds until no new worker is
// informed, exactly as Section III-C1 describes.
func (m *Model) Simulate(seeds []int32, rng *randx.Rand) []bool {
	informed := make([]bool, m.G.N())
	frontier := make([]int32, 0, len(seeds))
	for _, s := range seeds {
		if !informed[s] {
			informed[s] = true
			frontier = append(frontier, s)
		}
	}
	var next []int32
	for len(frontier) > 0 {
		next = next[:0]
		for _, u := range frontier {
			for _, v := range m.G.Out(u) {
				if informed[v] {
					continue
				}
				if rng.Bool(m.prob(u, v)) {
					informed[v] = true
					next = append(next, v)
				}
			}
		}
		frontier, next = next, frontier
	}
	return informed
}

// SimulateTrace runs one diffusion and returns, for every worker, the
// iteration at which it was informed (-1 if never). Seeds have iteration
// 0. Useful for inspecting propagation depth.
func (m *Model) SimulateTrace(seeds []int32, rng *randx.Rand) []int32 {
	round := make([]int32, m.G.N())
	for i := range round {
		round[i] = -1
	}
	frontier := make([]int32, 0, len(seeds))
	for _, s := range seeds {
		if round[s] < 0 {
			round[s] = 0
			frontier = append(frontier, s)
		}
	}
	var next []int32
	for r := int32(1); len(frontier) > 0; r++ {
		next = next[:0]
		for _, u := range frontier {
			for _, v := range m.G.Out(u) {
				if round[v] >= 0 {
					continue
				}
				if rng.Bool(m.prob(u, v)) {
					round[v] = r
					next = append(next, v)
				}
			}
		}
		frontier, next = next, frontier
	}
	return round
}

// Spread estimates the expected number of informed workers (including the
// seeds) over the given number of Monte Carlo trials.
func (m *Model) Spread(seeds []int32, trials int, rng *randx.Rand) float64 {
	if trials <= 0 {
		return 0
	}
	total := 0
	for t := 0; t < trials; t++ {
		informed := m.Simulate(seeds, rng)
		for _, b := range informed {
			if b {
				total++
			}
		}
	}
	return float64(total) / float64(trials)
}

// InformedProb estimates, for every worker, the probability of being
// informed when src starts the cascade, averaged over the given number of
// Monte Carlo trials. This is the ground-truth counterpart of the RPO
// estimator in internal/rrr.
func (m *Model) InformedProb(src int32, trials int, rng *randx.Rand) []float64 {
	counts := make([]int, m.G.N())
	for t := 0; t < trials; t++ {
		informed := m.Simulate([]int32{src}, rng)
		for i, b := range informed {
			if b {
				counts[i]++
			}
		}
	}
	probs := make([]float64, m.G.N())
	if trials == 0 {
		return probs
	}
	for i, c := range counts {
		probs[i] = float64(c) / float64(trials)
	}
	return probs
}
