package ic

import (
	"math"
	"testing"

	"dita/internal/paralleltest"
	"dita/internal/randx"
	"dita/internal/socialgraph"
)

func TestSimulateSeedsAlwaysInformed(t *testing.T) {
	g := socialgraph.GeneratePreferentialAttachment(50, 2, randx.New(1))
	m := NewModel(g)
	rng := randx.New(2)
	for trial := 0; trial < 20; trial++ {
		seeds := []int32{int32(trial % 50), int32((trial * 7) % 50)}
		informed := m.Simulate(seeds, rng)
		for _, s := range seeds {
			if !informed[s] {
				t.Fatalf("seed %d not informed", s)
			}
		}
	}
}

func TestSimulateRespectsTopology(t *testing.T) {
	// 0→1→2 and isolated 3: node 3 can never be informed from 0.
	g := socialgraph.MustNew(4, []socialgraph.Edge{{From: 0, To: 1}, {From: 1, To: 2}})
	m := NewModel(g)
	rng := randx.New(3)
	for trial := 0; trial < 200; trial++ {
		informed := m.Simulate([]int32{0}, rng)
		if informed[3] {
			t.Fatal("unreachable node informed")
		}
	}
}

func TestSimulateDeterministicEdges(t *testing.T) {
	// Chain with in-degree 1 everywhere → probability 1 per edge → the
	// cascade always reaches the end.
	g := socialgraph.MustNew(5, []socialgraph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4},
	})
	m := NewModel(g)
	rng := randx.New(4)
	informed := m.Simulate([]int32{0}, rng)
	for i, b := range informed {
		if !b {
			t.Fatalf("node %d not informed on deterministic chain", i)
		}
	}
}

func TestSimulateTraceRounds(t *testing.T) {
	g := socialgraph.MustNew(4, []socialgraph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3},
	})
	m := NewModel(g)
	round := m.SimulateTrace([]int32{0}, randx.New(5))
	want := []int32{0, 1, 2, 3}
	for i, w := range want {
		if round[i] != w {
			t.Errorf("round[%d] = %d, want %d", i, round[i], w)
		}
	}
}

func TestCustomProbability(t *testing.T) {
	g := socialgraph.MustNew(2, []socialgraph.Edge{{From: 0, To: 1}})
	m := &Model{G: g, Prob: func(u, v int32) float64 { return 0 }}
	informed := m.Simulate([]int32{0}, randx.New(6))
	if informed[1] {
		t.Error("edge with probability 0 propagated")
	}
	m.Prob = func(u, v int32) float64 { return 1 }
	informed = m.Simulate([]int32{0}, randx.New(6))
	if !informed[1] {
		t.Error("edge with probability 1 did not propagate")
	}
}

func TestInformedProbTwoHopAnalytic(t *testing.T) {
	// 0→1→2, all in-degrees 1, so every edge fires with probability 1:
	// P(1 informed) = P(2 informed) = 1. Then add a second in-edge to 2
	// (3→2): in-degree 2 halves the edge probability, so from seed 0,
	// P(2) = 1/2.
	g := socialgraph.MustNew(4, []socialgraph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 3, To: 2},
	})
	m := NewModel(g)
	probs := m.InformedProb(0, 40000, randx.New(7))
	if math.Abs(probs[1]-1) > 1e-9 {
		t.Errorf("P(1) = %v, want 1", probs[1])
	}
	if math.Abs(probs[2]-0.5) > 0.02 {
		t.Errorf("P(2) = %v, want ~0.5", probs[2])
	}
	if probs[3] != 0 {
		t.Errorf("P(3) = %v, want 0", probs[3])
	}
}

func TestInformedProbDiamondAnalytic(t *testing.T) {
	// Diamond: 0→1, 0→2, 1→3, 2→3. in-degree(1)=in-degree(2)=1 → always
	// informed. in-degree(3)=2 → each incoming edge fires with prob 1/2,
	// so P(3) = 1 − (1/2)² = 3/4.
	g := socialgraph.MustNew(4, []socialgraph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3},
	})
	m := NewModel(g)
	probs := m.InformedProb(0, 60000, randx.New(8))
	if math.Abs(probs[3]-0.75) > 0.02 {
		t.Errorf("P(3) = %v, want ~0.75", probs[3])
	}
}

func TestSpreadMonotoneInSeeds(t *testing.T) {
	g := socialgraph.GeneratePreferentialAttachment(100, 2, randx.New(9))
	m := NewModel(g)
	s1 := m.Spread([]int32{0}, 400, randx.New(10))
	s2 := m.Spread([]int32{0, 1, 2, 3, 4}, 400, randx.New(10))
	if s2 < s1 {
		t.Errorf("spread with 5 seeds (%v) below spread with 1 seed (%v)", s2, s1)
	}
	if s1 < 1 {
		t.Errorf("spread below seed count: %v", s1)
	}
}

func TestSpreadZeroTrials(t *testing.T) {
	g := socialgraph.MustNew(2, []socialgraph.Edge{{From: 0, To: 1}})
	if got := NewModel(g).Spread([]int32{0}, 0, randx.New(1)); got != 0 {
		t.Errorf("Spread with 0 trials = %v", got)
	}
}

func TestInformedProbParallelismInvariant(t *testing.T) {
	g := socialgraph.GeneratePreferentialAttachment(80, 2, randx.New(11))
	paralleltest.Invariant(t, func(par int) any {
		m := &Model{G: g, Parallelism: par}
		return m.InformedProb(5, 2000, randx.New(12))
	})
}

func TestSpreadParallelismInvariant(t *testing.T) {
	g := socialgraph.GeneratePreferentialAttachment(80, 2, randx.New(13))
	seeds := []int32{0, 3, 9}
	paralleltest.Invariant(t, func(par int) any {
		m := &Model{G: g, Parallelism: par}
		return m.Spread(seeds, 1500, randx.New(14))
	})
}
