package core

import (
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"dita/internal/assign"
	"dita/internal/dataset"
	"dita/internal/influence"
	"dita/internal/lda"
	"dita/internal/model"
	"dita/internal/paralleltest"
	"dita/internal/socialgraph"
)

// testFramework trains a small framework on a generated dataset and
// returns both. Kept cheap; shared by most tests in this file.
func testFramework(t *testing.T) (*Framework, *dataset.Data) {
	t.Helper()
	p := dataset.BrightkiteLike()
	p.NumUsers = 200
	p.NumVenues = 250
	p.Days = 8
	p.Seed = 11
	data, err := dataset.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cutoff := 6 * 24.0
	docs, vocab := data.Documents(cutoff)
	fw, err := Train(TrainingData{
		Graph:     data.Graph,
		Histories: data.HistoriesBefore(cutoff),
		Documents: docs,
		Vocab:     vocab,
		Records:   data.CheckInsBefore(cutoff),
	}, Config{LDA: lda.Config{Topics: 10, TrainIters: 40}})
	if err != nil {
		t.Fatal(err)
	}
	return fw, data
}

func testInstance(t *testing.T, data *dataset.Data) *model.Instance {
	t.Helper()
	inst, err := data.Snapshot(dataset.SnapshotParams{
		Day: 6, NumTasks: 60, NumWorkers: 50, ValidHours: 5, RadiusKm: 25, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(TrainingData{}, Config{}); err == nil {
		t.Error("training without a graph accepted")
	}
}

// TestTrainRejectsMisalignedDocuments: Documents is indexed by user id,
// so more documents than graph users is corrupt input. Train used to
// silently truncate the theta loop; it must now refuse with the named
// error.
func TestTrainRejectsMisalignedDocuments(t *testing.T) {
	g := socialgraph.MustNew(2, []socialgraph.Edge{{From: 0, To: 1}})
	_, err := Train(TrainingData{
		Graph:     g,
		Documents: [][]int32{{0}, {1}, {0, 1}},
		Vocab:     2,
	}, Config{LDA: lda.Config{Topics: 2, TrainIters: 2}})
	if !errors.Is(err, ErrDocumentsExceedGraph) {
		t.Fatalf("3 documents on a 2-user graph: got err %v, want ErrDocumentsExceedGraph", err)
	}
	if err == nil || !strings.Contains(err.Error(), "3 documents") || !strings.Contains(err.Error(), "2-user") {
		t.Errorf("error does not name the mismatch: %v", err)
	}
}

func TestTrainedComponentsPresent(t *testing.T) {
	fw, _ := testFramework(t)
	if fw.Graph() == nil || fw.LDA() == nil || fw.Mobility() == nil ||
		fw.Entropy() == nil || fw.Propagation() == nil || fw.Engine() == nil {
		t.Fatal("trained framework has nil components")
	}
	if fw.Speed() != 5 {
		t.Errorf("default speed %v, want 5 (paper)", fw.Speed())
	}
	if fw.Propagation().NumSets() == 0 {
		t.Error("no RRR sets")
	}
	if fw.Mobility().NumWorkers() == 0 {
		t.Error("no mobility models")
	}
	if fw.Entropy().Len() == 0 {
		t.Error("empty entropy table")
	}
}

func TestAssignAllAlgorithmsValid(t *testing.T) {
	fw, data := testFramework(t)
	inst := testInstance(t, data)
	ev := fw.Prepare(inst, influence.All, 1)
	for _, alg := range assign.Algorithms {
		set, m := fw.AssignPrepared(inst, ev, alg, nil)
		if err := set.Validate(len(inst.Tasks), len(inst.Workers)); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if m.Assigned != set.Len() {
			t.Errorf("%v: metrics.Assigned %d != set %d", alg, m.Assigned, set.Len())
		}
		if m.Assigned == 0 {
			t.Errorf("%v assigned nothing", alg)
		}
		if m.CPU <= 0 {
			t.Errorf("%v reported non-positive CPU time", alg)
		}
		if m.NumWorkers != 50 || m.NumTasks != 60 {
			t.Errorf("%v instance dims recorded wrong: %d×%d", alg, m.NumWorkers, m.NumTasks)
		}
		if m.Algorithm != alg.String() {
			t.Errorf("metrics algorithm %q", m.Algorithm)
		}
	}
}

func TestMetricsConsistency(t *testing.T) {
	fw, data := testFramework(t)
	inst := testInstance(t, data)
	set, m := fw.Assign(inst, assign.IA, 1)
	if math.Abs(m.AI-set.AverageInfluence()) > 1e-12 {
		t.Errorf("AI %v != set average %v", m.AI, set.AverageInfluence())
	}
	if math.Abs(m.TravelKm-set.AverageTravel()) > 1e-12 {
		t.Errorf("TravelKm %v != set average %v", m.TravelKm, set.AverageTravel())
	}
	if m.AP < 0 {
		t.Errorf("negative AP %v", m.AP)
	}
	if m.Feasible <= 0 {
		t.Errorf("feasible pair count %d", m.Feasible)
	}
}

func TestFlowAlgorithmsAgreeOnCardinality(t *testing.T) {
	fw, data := testFramework(t)
	inst := testInstance(t, data)
	ev := fw.Prepare(inst, influence.All, 1)
	pairs := assign.FeasiblePairs(inst, fw.Speed())
	_, mta := fw.AssignPrepared(inst, ev, assign.MTA, pairs)
	for _, alg := range []assign.Algorithm{assign.IA, assign.EIA, assign.DIA} {
		_, m := fw.AssignPrepared(inst, ev, alg, pairs)
		if m.Assigned != mta.Assigned {
			t.Errorf("%v assigned %d, MTA %d", alg, m.Assigned, mta.Assigned)
		}
	}
}

func TestQualitativeOrderingOnRealPipeline(t *testing.T) {
	// The paper's empirical orderings on the fully trained pipeline,
	// averaged over a few instances: AI(MI) ≥ AI(IA) ≥ AI(MTA) and
	// AP(IA) ≥ AP(MTA); DIA has the smallest travel cost.
	fw, data := testFramework(t)
	sum := map[assign.Algorithm]*Metrics{}
	for _, alg := range assign.Algorithms {
		sum[alg] = &Metrics{}
	}
	for day := 6; day <= 7; day++ {
		inst, err := data.Snapshot(dataset.SnapshotParams{
			Day: day, NumTasks: 60, NumWorkers: 50, ValidHours: 5, RadiusKm: 25, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		ev := fw.Prepare(inst, influence.All, uint64(day))
		pairs := assign.FeasiblePairs(inst, fw.Speed())
		for _, alg := range assign.Algorithms {
			_, m := fw.AssignPrepared(inst, ev, alg, pairs)
			sum[alg].AI += m.AI
			sum[alg].AP += m.AP
			sum[alg].TravelKm += m.TravelKm
			sum[alg].Assigned += m.Assigned
		}
	}
	if sum[assign.MI].AI < sum[assign.IA].AI {
		t.Errorf("AI: MI %v below IA %v", sum[assign.MI].AI, sum[assign.IA].AI)
	}
	if sum[assign.IA].AI < sum[assign.MTA].AI {
		t.Errorf("AI: IA %v below MTA %v", sum[assign.IA].AI, sum[assign.MTA].AI)
	}
	if sum[assign.MI].Assigned > sum[assign.MTA].Assigned {
		t.Errorf("MI assigned %d more than MTA %d", sum[assign.MI].Assigned, sum[assign.MTA].Assigned)
	}
	if sum[assign.DIA].TravelKm > sum[assign.MTA].TravelKm {
		t.Errorf("travel: DIA %v above MTA %v", sum[assign.DIA].TravelKm, sum[assign.MTA].TravelKm)
	}
}

func TestAblationMasksChangeAssignments(t *testing.T) {
	fw, data := testFramework(t)
	inst := testInstance(t, data)
	pairs := assign.FeasiblePairs(inst, fw.Speed())
	ais := map[influence.Components]float64{}
	for _, mask := range []influence.Components{influence.All, influence.WP, influence.AP, influence.AW} {
		ev := fw.Prepare(inst, mask, 1)
		_, m := fw.AssignPrepared(inst, ev, assign.IA, pairs)
		ais[mask] = m.AI
		if m.Assigned == 0 {
			t.Fatalf("mask %v assigned nothing", mask)
		}
	}
	// The four variants should not all coincide (the factors matter).
	if ais[influence.All] == ais[influence.WP] && ais[influence.All] == ais[influence.AP] &&
		ais[influence.All] == ais[influence.AW] {
		t.Errorf("all masks produced identical AI %v", ais[influence.All])
	}
}

func TestAssignDeterministic(t *testing.T) {
	fw, data := testFramework(t)
	inst := testInstance(t, data)
	a, ma := fw.Assign(inst, assign.IA, 7)
	b, mb := fw.Assign(inst, assign.IA, 7)
	if a.Len() != b.Len() || ma.AI != mb.AI {
		t.Fatalf("Assign nondeterministic: %d/%v vs %d/%v", a.Len(), ma.AI, b.Len(), mb.AI)
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatalf("pair %d differs", i)
		}
	}
}

func TestSessionAssignMatchesColdPath(t *testing.T) {
	// The session plumbing must be a pure caching layer: session Assign
	// on an instance equals Prepare + AssignPrepared, and repeating the
	// same instance through the warm cache changes nothing.
	fw, data := testFramework(t)
	inst := testInstance(t, data)
	const seed = 3
	wantSet, wantM := fw.AssignPrepared(inst, fw.Prepare(inst, influence.All, seed), assign.IA, nil)
	sess := fw.PrepareSession(influence.All, seed, 2)
	for round := 0; round < 2; round++ {
		set, m := sess.Assign(inst, assign.IA, nil)
		if !reflect.DeepEqual(set, wantSet) {
			t.Fatalf("round %d: session assignment diverged from the cold path", round)
		}
		m.CPU, wantM.CPU = 0, 0
		if m != wantM {
			t.Fatalf("round %d: session metrics %+v, cold %+v", round, m, wantM)
		}
	}
	if got, want := sess.Influence().CachedTasks(), len(inst.Tasks); got != want {
		t.Errorf("session caches %d tasks, want %d", got, want)
	}
}

// TestAssignPreparedPairsAuthoritative: the explicit precomputed-pairs
// entry point must never rescan — an empty set on a well-connected
// instance assigns nothing — while a genuinely precomputed set matches
// the compute-for-me path exactly.
func TestAssignPreparedPairsAuthoritative(t *testing.T) {
	fw, data := testFramework(t)
	inst := testInstance(t, data)
	ev := fw.Prepare(inst, influence.All, 1)

	set, m := fw.AssignPreparedPairs(inst, ev, assign.IA, nil)
	if set.Len() != 0 || m.Feasible != 0 {
		t.Fatalf("authoritative empty pair set assigned %d over %d feasible — a rescan happened",
			set.Len(), m.Feasible)
	}

	pairs := assign.FeasiblePairs(inst, fw.Speed())
	gotSet, gotM := fw.AssignPreparedPairs(inst, ev, assign.IA, pairs)
	wantSet, wantM := fw.AssignPrepared(inst, ev, assign.IA, nil)
	if !reflect.DeepEqual(gotSet, wantSet) {
		t.Fatal("precomputed pairs diverged from the compute-for-me path")
	}
	gotM.CPU, wantM.CPU = 0, 0
	if gotM != wantM {
		t.Fatalf("metrics %+v, want %+v", gotM, wantM)
	}
}

// TestIncrementalSessionPairsMatchColdScan: Session.Pairs must equal
// assign.FeasiblePairs on every instant it serves — the first (all
// fresh), a repeat (all carried over), and a shrunken pool (eviction
// plus deadline decay at a later Now).
func TestIncrementalSessionPairsMatchColdScan(t *testing.T) {
	fw, data := testFramework(t)
	inst := testInstance(t, data)
	sess := fw.PrepareSession(influence.All, 1, 2)
	for round := 0; round < 2; round++ {
		got := append([]assign.Pair(nil), sess.Pairs(inst)...)
		want := assign.FeasiblePairs(inst, fw.Speed())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: session pairs diverged from the cold scan", round)
		}
		if len(want) == 0 {
			t.Fatal("test instance has no feasible pairs; nothing gated")
		}
	}
	// Retire every other task and advance the clock: the index must
	// evict, revalidate deadlines and still match the cold scan.
	later := &model.Instance{Now: inst.Now + 2, Workers: inst.Workers}
	for j, task := range inst.Tasks {
		if j%2 == 0 {
			later.Tasks = append(later.Tasks, task)
		}
	}
	got := sess.Pairs(later)
	want := assign.FeasiblePairs(later, fw.Speed())
	if !reflect.DeepEqual(got, want) {
		t.Fatal("session pairs diverged after eviction and deadline decay")
	}
	if ix := sess.PairIndex(); ix.CachedTasks() != len(later.Tasks) {
		t.Errorf("index carries %d tasks, pool holds %d", ix.CachedTasks(), len(later.Tasks))
	}
}

func TestTrainParallelismInvariant(t *testing.T) {
	// The umbrella knob drives LDA, mobility and RPO training; the whole
	// fitted framework — stored config included, since Train drops the
	// worker-pool knobs — must be bit-identical at any pool width.
	p := dataset.BrightkiteLike()
	p.NumUsers = 150
	p.NumVenues = 180
	p.Days = 6
	p.Seed = 19
	data, err := dataset.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cutoff := 5 * 24.0
	docs, vocab := data.Documents(cutoff)
	td := TrainingData{
		Graph:     data.Graph,
		Histories: data.HistoriesBefore(cutoff),
		Documents: docs,
		Vocab:     vocab,
		Records:   data.CheckInsBefore(cutoff),
	}
	paralleltest.Invariant(t, func(par int) any {
		fw, err := Train(td, Config{
			LDA:         lda.Config{Topics: 8, TrainIters: 15},
			Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fw
	})
}

func TestConfigParallelismFansOut(t *testing.T) {
	c := Config{Parallelism: 3}.withDefaults()
	if c.LDA.Parallelism != 3 || c.Mobility.Parallelism != 3 || c.RPO.Parallelism != 3 {
		t.Errorf("umbrella knob not copied into sub-configs: %+v", c)
	}
	// An explicit sub-config setting wins over the umbrella.
	c = Config{Parallelism: 3, LDA: lda.Config{Parallelism: 1}}.withDefaults()
	if c.LDA.Parallelism != 1 {
		t.Errorf("explicit LDA.Parallelism overridden: %d", c.LDA.Parallelism)
	}
	if c.Mobility.Parallelism != 3 || c.RPO.Parallelism != 3 {
		t.Errorf("umbrella knob lost for the other components: %+v", c)
	}
}

// TestMetricsJSONRoundTrip pins the wire format sharded experiment runs
// exchange: every field — including floats with no short decimal form
// and extreme magnitudes — must survive Marshal/Unmarshal bit-exactly,
// and the schema must stay the documented snake_case one.
func TestMetricsJSONRoundTrip(t *testing.T) {
	ms := []Metrics{
		{
			Algorithm: "IA", Assigned: 7,
			AI: 0.1 + 0.2, AP: math.Pi / 11, TravelKm: 1.0 / 3.0,
			CPU: 123456789 * time.Nanosecond, Feasible: 31, NumWorkers: 1200, NumTasks: 1500,
		},
		{AI: math.MaxFloat64, AP: math.SmallestNonzeroFloat64, TravelKm: 1e-300, CPU: time.Duration(1<<62 - 1)},
		{},
	}
	out, err := json.Marshal(ms)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"algorithm", "assigned", "ai", "ap", "travel_km", "cpu_ns", "feasible", "num_workers", "num_tasks"} {
		if !strings.Contains(string(out), `"`+field+`"`) {
			t.Errorf("JSON schema lost field %q: %s", field, out)
		}
	}
	var back []Metrics
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ms) {
		t.Fatalf("round-trip returned %d metrics, want %d", len(back), len(ms))
	}
	for i := range ms {
		if back[i] != ms[i] {
			t.Errorf("metrics %d did not round-trip:\n got %+v\nwant %+v", i, back[i], ms[i])
		}
	}
}
