// Package core assembles the DITA framework (Figure 2): it trains the
// three influence-modeling components — LDA worker-task affinity,
// Historical Acceptance willingness, and RPO worker propagation — from a
// dataset's historical records and social network, then answers
// per-instance task-assignment requests with any of the five algorithms
// while recording the evaluation metrics of Section V (number of
// assigned tasks, Average Influence, Average Propagation, travel cost,
// CPU time).
package core

import (
	"errors"
	"fmt"
	"time"

	"dita/internal/assign"
	"dita/internal/entropy"
	"dita/internal/influence"
	"dita/internal/lda"
	"dita/internal/mobility"
	"dita/internal/model"
	"dita/internal/rrr"
	"dita/internal/socialgraph"
)

// Config gathers the training knobs of the whole framework. Zero values
// mean "the paper's defaults": |Top| = 50 topics, ε = 0.1, o = 1, worker
// speed 5 km/h.
type Config struct {
	LDA      lda.Config      `json:"lda"`
	Mobility mobility.Config `json:"mobility"`
	RPO      rrr.Params      `json:"rpo"`
	// SpeedKmH is the shared worker travel speed; default 5.
	SpeedKmH float64 `json:"speed_kmh"`
	// TopWillingnessLocations bounds the per-worker location set used in
	// the dense willingness matrix; 0 keeps all locations. See
	// influence.Engine.TopLocations.
	TopWillingnessLocations int `json:"top_willingness_locations"`
	// Parallelism is the umbrella worker-pool bound for the whole
	// training phase: when set (> 0) it is copied into every sub-config
	// whose own Parallelism is unset. Each trainer follows the shared
	// contract (see internal/parallel): the fitted framework is
	// bit-identical at any setting.
	Parallelism int `json:"parallelism,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.SpeedKmH <= 0 {
		c.SpeedKmH = 5
	}
	if c.Parallelism > 0 {
		if c.LDA.Parallelism == 0 {
			c.LDA.Parallelism = c.Parallelism
		}
		if c.Mobility.Parallelism == 0 {
			c.Mobility.Parallelism = c.Parallelism
		}
		if c.RPO.Parallelism == 0 {
			c.RPO.Parallelism = c.Parallelism
		}
	}
	return c
}

// TrainingData is the input of Train: the social network, the historical
// task-performing records (per user, time-ordered), and the category
// vocabulary size.
type TrainingData struct {
	Graph     *socialgraph.Graph
	Histories map[model.WorkerID]model.History
	// Documents[u] is user u's LDA document (category labels of performed
	// tasks); indexed by user id, may be shorter than Graph.N().
	Documents [][]int32
	Vocab     int
	// Records is the flat check-in list used for location entropy;
	// typically the concatenation of Histories.
	Records []model.CheckIn
}

// Framework is a trained DITA instance. It is safe for concurrent reads
// (all state is immutable after Train).
type Framework struct {
	cfg     Config
	graph   *socialgraph.Graph
	lda     *lda.Model
	theta   [][]float64
	mob     *mobility.Model
	entropy *entropy.Table
	prop    *rrr.Collection
	engine  *influence.Engine
}

// ErrDocumentsExceedGraph reports training data whose Documents slice
// has more entries than the social graph has users: documents are
// indexed by user id, so the surplus entries belong to nobody. Train
// used to drop them silently, fitting the LDA on documents whose topic
// mixtures could never be read back through theta.
var ErrDocumentsExceedGraph = errors.New("core: more documents than graph users")

// Train fits every model of the influence-modeling component and returns
// a ready framework.
func Train(data TrainingData, cfg Config) (*Framework, error) {
	cfg = cfg.withDefaults()
	if data.Graph == nil {
		return nil, fmt.Errorf("core: training data has no social graph")
	}
	if data.Vocab <= 0 {
		return nil, fmt.Errorf("core: vocabulary size %d must be positive", data.Vocab)
	}
	if len(data.Documents) > data.Graph.N() {
		return nil, fmt.Errorf("%w: %d documents for a %d-user graph", ErrDocumentsExceedGraph, len(data.Documents), data.Graph.N())
	}
	ldaModel, err := lda.Train(data.Documents, data.Vocab, cfg.LDA)
	if err != nil {
		return nil, fmt.Errorf("core: training LDA: %w", err)
	}
	theta := make([][]float64, data.Graph.N())
	for u := range data.Documents {
		if len(data.Documents[u]) > 0 {
			theta[u] = ldaModel.DocTopics(u)
		}
	}
	f := &Framework{
		cfg:     cfg,
		graph:   data.Graph,
		lda:     ldaModel,
		theta:   theta,
		mob:     mobility.Fit(data.Histories, cfg.Mobility),
		entropy: entropy.Compute(data.Records),
		prop:    rrr.Build(data.Graph, cfg.RPO),
	}
	f.engine = &influence.Engine{
		Prop:         f.prop,
		Wil:          f.mob,
		LDA:          f.lda,
		ThetaUser:    f.theta,
		TopLocations: cfg.TopWillingnessLocations,
	}
	// The stored config drops the worker-pool knobs (now consumed by the
	// sub-trainers above): like every trained component, a Framework's
	// identity is independent of the Parallelism it was fitted with.
	f.cfg.Parallelism = 0
	f.cfg.LDA.Parallelism = 0
	f.cfg.Mobility.Parallelism = 0
	f.cfg.RPO.Parallelism = 0
	return f, nil
}

// Restore reassembles a framework from already-fitted components,
// rebuilding the influence engine exactly as Train does. It is the
// loading half of the framework artifact round trip (see internal/fwio):
// given the components Train produced, the restored framework's every
// downstream output is bit-identical to the trained one's. theta must
// have one row per graph user (nil for users without documents), and
// each non-nil row must be a topic mixture of the model's topic count.
func Restore(cfg Config, graph *socialgraph.Graph, ldaModel *lda.Model, theta [][]float64, mob *mobility.Model, ent *entropy.Table, prop *rrr.Collection) (*Framework, error) {
	cfg = cfg.withDefaults()
	if graph == nil {
		return nil, fmt.Errorf("core: restore without a social graph")
	}
	if ldaModel == nil || mob == nil || ent == nil || prop == nil {
		return nil, fmt.Errorf("core: restore with missing components (lda=%t mobility=%t entropy=%t propagation=%t)",
			ldaModel != nil, mob != nil, ent != nil, prop != nil)
	}
	if len(theta) != graph.N() {
		return nil, fmt.Errorf("core: restore theta has %d rows for a %d-user graph", len(theta), graph.N())
	}
	for u, row := range theta {
		if row != nil && len(row) != ldaModel.Topics() {
			return nil, fmt.Errorf("core: restore theta row %d has %d topics, model has %d", u, len(row), ldaModel.Topics())
		}
	}
	f := &Framework{
		cfg:     cfg,
		graph:   graph,
		lda:     ldaModel,
		theta:   theta,
		mob:     mob,
		entropy: ent,
		prop:    prop,
	}
	f.engine = &influence.Engine{
		Prop:         f.prop,
		Wil:          f.mob,
		LDA:          f.lda,
		ThetaUser:    f.theta,
		TopLocations: cfg.TopWillingnessLocations,
	}
	// Same identity rule as Train: parallelism knobs are runtime choices.
	f.cfg.Parallelism = 0
	f.cfg.LDA.Parallelism = 0
	f.cfg.Mobility.Parallelism = 0
	f.cfg.RPO.Parallelism = 0
	return f, nil
}

// Config returns the training configuration (with defaults applied and
// parallelism knobs zeroed, as stored by Train).
func (f *Framework) Config() Config { return f.cfg }

// Theta returns the per-user topic mixtures, indexed by user id with nil
// rows for users without documents. Rows alias model storage and must be
// treated as read-only.
func (f *Framework) Theta() [][]float64 { return f.theta }

// Graph returns the social network the framework was trained on.
func (f *Framework) Graph() *socialgraph.Graph { return f.graph }

// LDA returns the trained topic model.
func (f *Framework) LDA() *lda.Model { return f.lda }

// Mobility returns the fitted Historical Acceptance model.
func (f *Framework) Mobility() *mobility.Model { return f.mob }

// Entropy returns the location-entropy table.
func (f *Framework) Entropy() *entropy.Table { return f.entropy }

// Propagation returns the RRR collection behind worker propagation.
func (f *Framework) Propagation() *rrr.Collection { return f.prop }

// Engine returns the influence engine (for advanced callers that want to
// prepare evaluators directly).
func (f *Framework) Engine() *influence.Engine { return f.engine }

// Speed returns the configured worker travel speed in km/h.
func (f *Framework) Speed() float64 { return f.cfg.SpeedKmH }

// Metrics are the per-run evaluation measurements of Section V-B.
//
// The JSON form is the wire format sharded experiment runs exchange
// (experiments.ShardResult), and it round-trips bit-exactly: floats are
// always finite here, and encoding/json emits the shortest decimal that
// parses back to the same float64; CPU serializes as integer
// nanoseconds.
type Metrics struct {
	Algorithm  string        `json:"algorithm"`
	Assigned   int           `json:"assigned"`  // |A|
	AI         float64       `json:"ai"`        // Average Influence (Equation 6)
	AP         float64       `json:"ap"`        // Average Propagation (Equation 7)
	TravelKm   float64       `json:"travel_km"` // mean travel distance of assigned workers
	CPU        time.Duration `json:"cpu_ns"`    // assignment computation time only
	Feasible   int           `json:"feasible"`  // number of feasible worker-task pairs (edges m)
	NumWorkers int           `json:"num_workers"`
	NumTasks   int           `json:"num_tasks"`
}

// Prepare computes the influence evaluator for an instance under a
// component mask. The evaluator is reusable across algorithms; building
// it is the "worker-task influence modeling" phase of DITA and is
// deliberately excluded from the assignment CPU-time metric, matching
// the paper's phase split. Prepare is the cold path — every call rebuilds
// the full per-instance state; streaming callers that run many instants
// with carry-over pools should hold a Session (PrepareSession) instead.
func (f *Framework) Prepare(inst *model.Instance, comps influence.Components, seed uint64) *influence.Evaluator {
	return f.engine.Prepare(inst, comps, seed)
}

// Session carries the online phase's influence-modeling state across
// assignment instants: per-task willingness rows and folded topic
// vectors, and per-worker propagation state, keyed by stable identity
// (see influence.Session). An instant pays only for newly arrived tasks
// and workers; state for entities that left the pool is evicted. The
// evaluators are bit-identical to cold Prepare ones for the same seed.
type Session struct {
	fw *Framework
	is *influence.Session
	// par is the session's worker-pool bound, shared by the influence
	// cache, the pair index's admission scans and the component-decomposed
	// solver; every consumer follows the determinism contract, so outputs
	// are bit-identical at any setting.
	par int
	// px is the incremental feasible-pair index (lazily created by
	// Pairs): like the influence cache it carries per-entity state across
	// instants, here the spatial match structure instead of the influence
	// rows.
	px *assign.PairIndex
}

// PrepareSession opens an incremental online-phase session under the
// given component mask and base seed. parallelism bounds the worker pool
// fresh per-entity state is computed on (<= 0 means all cores); results
// are bit-identical at any setting.
func (f *Framework) PrepareSession(comps influence.Components, seed uint64, parallelism int) *Session {
	return &Session{fw: f, is: f.engine.NewSession(comps, seed, parallelism), par: parallelism}
}

// Prepare returns the evaluator for one instant, reusing cached state
// for carried-over tasks and workers.
func (s *Session) Prepare(inst *model.Instance) *influence.Evaluator {
	return s.is.Evaluate(inst)
}

// Pairs maintains the session's incremental feasible-pair index for one
// instant and returns the instant's feasible pairs — positional, sorted
// by (worker, task), bit-identical to assign.FeasiblePairs on the same
// instance. On top of the session's identity requirements, the index
// needs task IDs monotone in pool order and fresh on admission (see
// assign.PairIndex); the streaming platform and dataset snapshots both
// provide this. The returned slice is reused by the next call.
func (s *Session) Pairs(inst *model.Instance) []assign.Pair {
	if s.px == nil {
		s.px = assign.NewPairIndexParallel(s.fw.Speed(), s.par)
	}
	return s.px.Update(inst)
}

// Assign is the session-aware one-call path for an instant: prepare the
// evaluator through the session cache, then run the algorithm. A non-nil
// pairs is used as-is; nil routes through the session's incremental pair
// index (Pairs), so repeated instants pay only for pool changes.
func (s *Session) Assign(inst *model.Instance, alg assign.Algorithm, pairs []assign.Pair) (*model.AssignmentSet, Metrics) {
	if pairs == nil {
		pairs = s.Pairs(inst)
	}
	set, m, _ := s.fw.AssignPreparedPairsTiled(inst, s.is.Evaluate(inst), alg, pairs, s.par)
	return set, m
}

// Sync maintains the session cache for an instant that runs no
// assignment: arrivals are admitted ahead of the next round, departures
// evicted (see influence.Session.Sync).
func (s *Session) Sync(inst *model.Instance) { s.is.Sync(inst) }

// SetCapacity bounds the session's per-entity influence caches to n
// entries each with deterministic FIFO-by-admission eviction; n <= 0
// removes the bound. Memory-only: results are bit-identical at any
// capacity, since evicted-but-live entities recompute identical state on
// their next instant (see influence.Session.SetCapacity).
func (s *Session) SetCapacity(n int) { s.is.SetCapacity(n) }

// Influence exposes the underlying influence session (cache
// introspection for tests and benchmarks).
func (s *Session) Influence() *influence.Session { return s.is }

// PairIndex exposes the incremental feasible-pair index (cache
// introspection for tests and benchmarks); nil until the first Pairs
// call.
func (s *Session) PairIndex() *assign.PairIndex { return s.px }

// AssignPrepared runs one algorithm against a prepared evaluator and
// returns the assignment with its metrics. pairs may be nil, in which
// case feasible pairs are computed (and charged to CPU time, as edge
// construction is part of assignment in the paper's measurement).
// Callers that precompute pairs themselves should use
// AssignPreparedPairs, which takes the set as authoritative even when a
// zero-feasibility instance made it empty.
func (f *Framework) AssignPrepared(inst *model.Instance, ev *influence.Evaluator, alg assign.Algorithm, pairs []assign.Pair) (*model.AssignmentSet, Metrics) {
	set, m, _ := f.assignPrepared(inst, ev, alg, pairs, pairs != nil, 1)
	return set, m
}

// AssignPreparedPairs is AssignPrepared with an authoritative
// precomputed pair set: pairs is used as-is even when nil or empty, so a
// caller that computed feasibility once — and found nothing — cannot
// trigger a silent per-algorithm rescan.
func (f *Framework) AssignPreparedPairs(inst *model.Instance, ev *influence.Evaluator, alg assign.Algorithm, pairs []assign.Pair) (*model.AssignmentSet, Metrics) {
	set, m, _ := f.assignPrepared(inst, ev, alg, pairs, true, 1)
	return set, m
}

// AssignPreparedPairsTiled is AssignPreparedPairs on the tiled pipeline:
// the solve runs component-decomposed on up to parallelism pool workers
// (<= 0 means all cores) and the instant's tiling statistics come back
// alongside the metrics. The assignment set and metrics are bit-identical
// to AssignPreparedPairs at any parallelism — the sequential path is the
// same decomposed solver (see assign.Solve).
func (f *Framework) AssignPreparedPairsTiled(inst *model.Instance, ev *influence.Evaluator, alg assign.Algorithm, pairs []assign.Pair, parallelism int) (*model.AssignmentSet, Metrics, assign.TileStats) {
	return f.assignPrepared(inst, ev, alg, pairs, true, parallelism)
}

func (f *Framework) assignPrepared(inst *model.Instance, ev *influence.Evaluator, alg assign.Algorithm, pairs []assign.Pair, hasPairs bool, parallelism int) (*model.AssignmentSet, Metrics, assign.TileStats) {
	start := time.Now() //dita:wallclock
	scanTiles := 0
	if !hasPairs {
		pairs, scanTiles = assign.TiledFeasiblePairs(inst, f.cfg.SpeedKmH, parallelism)
	}
	prob := &assign.Problem{
		Inst:      inst,
		Influence: ev.Influence,
		Entropy: func(t int) float64 {
			return f.entropy.Lookup(inst.Tasks[t].Venue)
		},
		SpeedKmH: f.cfg.SpeedKmH,
		Pairs:    pairs,
		HasPairs: true,
	}
	set, stats := assign.SolveTiled(alg, prob, parallelism)
	stats.Tiles = scanTiles
	cpu := time.Since(start) //dita:wallclock

	m := Metrics{
		Algorithm:  alg.String(),
		Assigned:   set.Len(),
		AI:         set.AverageInfluence(),
		TravelKm:   set.AverageTravel(),
		CPU:        cpu,
		Feasible:   len(pairs),
		NumWorkers: len(inst.Workers),
		NumTasks:   len(inst.Tasks),
	}
	if set.Len() > 0 {
		apSum := 0.0
		for _, pr := range set.Pairs {
			apSum += ev.PropagationSum(int(pr.Worker))
		}
		m.AP = apSum / float64(set.Len())
	}
	return set, m, stats
}

// Assign is the one-call path: prepare the evaluator with the full
// influence model and run the algorithm.
func (f *Framework) Assign(inst *model.Instance, alg assign.Algorithm, seed uint64) (*model.AssignmentSet, Metrics) {
	ev := f.Prepare(inst, influence.All, seed)
	return f.AssignPrepared(inst, ev, alg, nil)
}
