package atomicio

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"dita/internal/faultinject"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	want := []byte("first content\n")
	if err := WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("read back %q, want %q", got, want)
	}
	// Overwrite: the replacement must fully supersede longer old content.
	if err := WriteFile(path, []byte("2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "2\n" {
		t.Errorf("after overwrite read back %q, want %q", got, "2\n")
	}
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), TempSuffix) {
			t.Errorf("temp file %s left behind by a successful write", e.Name())
		}
	}
}

func TestWriteFileFailureLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "missing-parent", "out.json")
	if err := WriteFile(path, []byte("x"), 0o644); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Errorf("failed write left debris: %v", ents)
	}
}

func TestRemoveTemps(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "artifact.json"+TempSuffix)
	if err := os.WriteFile(tmp, []byte("half-writ"), 0o644); err != nil {
		t.Fatal(err)
	}
	registerTemp(tmp)
	RemoveTemps()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("registered temp survived RemoveTemps: %v", err)
	}
	// Idempotent on an empty registry.
	RemoveTemps()
}

func TestSumStableAndDistinct(t *testing.T) {
	a, b := Sum([]byte("payload")), Sum([]byte("payload"))
	if a != b {
		t.Errorf("Sum is not a pure function: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Errorf("Sum length %d, want 64 hex chars", len(a))
	}
	if Sum([]byte("payload2")) == a {
		t.Error("distinct payloads collide")
	}
}

// TestFaultInjectedWritePaths re-executes the test binary with
// DITA_FAULTS armed and asserts on the on-disk outcome of a real
// process death: the pre-rename crash leaves only *.tmp debris (the
// target absent), and the torn write leaves a renamed-but-truncated
// artifact — the two corruption shapes the merge loader must detect.
func TestFaultInjectedWritePaths(t *testing.T) {
	if target := os.Getenv("ATOMICIO_HELPER_PATH"); target != "" {
		payload := []byte(strings.Repeat("0123456789abcdef", 16))
		if err := WriteFile(target, payload, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}

	run := func(spec, target string) error {
		cmd := exec.Command(os.Args[0], "-test.run", "TestFaultInjectedWritePaths")
		cmd.Env = append(os.Environ(),
			"ATOMICIO_HELPER_PATH="+target,
			faultinject.EnvVar+"="+spec)
		_, err := cmd.CombinedOutput()
		return err
	}

	t.Run("pre-rename crash leaves only tmp", func(t *testing.T) {
		dir := t.TempDir()
		target := filepath.Join(dir, "artifact.json")
		if err := run("atomicio.pre-rename:crash", target); err == nil {
			t.Fatal("helper survived its armed crash")
		}
		if _, err := os.Stat(target); !os.IsNotExist(err) {
			t.Errorf("target exists after a pre-rename crash: %v", err)
		}
		if _, err := os.Stat(target + TempSuffix); err != nil {
			t.Errorf("expected tmp debris after a pre-rename crash: %v", err)
		}
	})

	t.Run("torn write leaves truncated artifact", func(t *testing.T) {
		dir := t.TempDir()
		target := filepath.Join(dir, "artifact.json")
		if err := run("atomicio.write:torn", target); err == nil {
			t.Fatal("helper survived its torn-write SIGKILL")
		}
		got, err := os.ReadFile(target)
		if err != nil {
			t.Fatalf("torn artifact missing: %v", err)
		}
		if len(got) != 16*16/2 {
			t.Errorf("torn artifact holds %d bytes, want %d", len(got), 16*16/2)
		}
		if _, err := os.Stat(target + TempSuffix); !os.IsNotExist(err) {
			t.Errorf("tmp debris after a completed torn rename: %v", err)
		}
	})
}
