// Package atomicio writes files atomically: content goes to a
// same-directory temp file, is fsynced, and is renamed over the target,
// so a reader — a merge coordinator globbing shard artifacts, a bench
// run loading BENCH_rrr.json — can never observe a half-written file. A
// crash mid-write leaves only a *.tmp file, which artifact loaders skip
// (and which TempSuffix lets them recognise); a crash between fsync and
// rename leaves the old content intact.
//
// The package also carries the content-checksum helper shard artifacts
// record (Sum) and a registry of in-flight temp files so a signal
// handler can scrub them before exiting (RemoveTemps): the "no .tmp
// left behind on any exit path" half of the durability contract, for
// every exit the process can actually intercept.
package atomicio

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"sync"

	"dita/internal/faultinject"
)

// TempSuffix is appended to a destination path to form its temp file.
// Loaders treat any candidate with this suffix as the debris of a
// crashed writer: skipped, never parsed.
const TempSuffix = ".tmp"

// tempsMu guards temps, the set of temp paths currently being written.
var (
	tempsMu sync.Mutex
	temps   = map[string]bool{}
)

func registerTemp(path string) {
	tempsMu.Lock()
	temps[path] = true
	tempsMu.Unlock()
}

func unregisterTemp(path string) {
	tempsMu.Lock()
	delete(temps, path)
	tempsMu.Unlock()
}

// RemoveTemps deletes every temp file registered by an in-flight
// WriteFile. Signal handlers call it so an interrupted process leaves
// no *.tmp debris; the interrupted writes themselves never happened, as
// far as any reader can tell.
func RemoveTemps() {
	tempsMu.Lock()
	defer tempsMu.Unlock()
	for path := range temps {
		os.Remove(path)
		delete(temps, path)
	}
}

// WriteFile atomically replaces the file at path with data: write to
// path+TempSuffix, fsync, rename, fsync the directory. On any error the
// temp file is removed and the previous content of path is untouched.
//
// The temp name is deterministic, so a writer retried after a SIGKILL
// overwrites its own predecessor's debris instead of accreting new
// files. Concurrent writers of the same path are therefore not
// supported — the supervision layer never runs two workers on one
// artifact.
//
// The write passes through the faultinject "atomicio.write" torn-write
// point and the "atomicio.pre-rename" crash point (both inert unless
// DITA_FAULTS arms them), so recovery tests can leave real torn
// artifacts and real *.tmp debris on disk.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	tmp := path + TempSuffix
	registerTemp(tmp)
	defer unregisterTemp(tmp)

	data, tear := faultinject.TornWrite("atomicio.write", data)

	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	faultinject.Hit("atomicio.pre-rename")
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(path))
	if tear {
		faultinject.Kill()
	}
	return nil
}

// syncDir fsyncs a directory so the rename itself is durable. Failure
// is ignored: some filesystems refuse directory fsync, and the rename
// has already happened — atomicity (the property correctness rests on)
// holds regardless; only crash-durability of the very last write would
// be at the filesystem's mercy, exactly as with os.WriteFile.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Sum is the content checksum recorded in shard artifacts and journal
// records: SHA-256, hex-encoded.
func Sum(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}
