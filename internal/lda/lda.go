// Package lda implements Latent Dirichlet Allocation trained with
// collapsed Gibbs sampling, specialized to the paper's worker-task
// affinity component (Section III-A).
//
// Each worker's historical task-performing record is a "document" whose
// "words" are the category labels of the tasks the worker completed. A
// task's document is its own category labels. After training, the
// affinity between a worker and a task is
//
//	Paff(w, s) = Σ_t P(w|t) · P(s|t)
//
// which we realize as the dot product of the two documents' inferred
// topic distributions (fold-in Gibbs estimates for unseen documents);
// semantically related categories concentrate in the same topics, so
// correlated preference and task profiles score high.
package lda

import (
	"fmt"
	"math"

	"dita/internal/randx"
)

// Config holds LDA hyperparameters. Zero values select the defaults used
// in the experiments (|Top| = 50 per the paper; symmetric Dirichlet
// priors α = 50/K, β = 0.01; 200 training sweeps; 50 fold-in sweeps).
type Config struct {
	Topics     int     // number of topics |Top|
	Alpha      float64 // document-topic Dirichlet prior
	Beta       float64 // topic-word Dirichlet prior
	TrainIters int     // Gibbs sweeps over the corpus
	BurnIn     int     // sweeps discarded before averaging φ
	InferIters int     // fold-in sweeps for unseen documents
	Seed       uint64
}

func (c Config) withDefaults() Config {
	if c.Topics <= 0 {
		c.Topics = 50
	}
	if c.Alpha <= 0 {
		c.Alpha = 50 / float64(c.Topics)
	}
	if c.Beta <= 0 {
		c.Beta = 0.01
	}
	if c.TrainIters <= 0 {
		c.TrainIters = 200
	}
	if c.BurnIn <= 0 || c.BurnIn >= c.TrainIters {
		c.BurnIn = c.TrainIters / 2
	}
	if c.InferIters <= 0 {
		c.InferIters = 50
	}
	return c
}

// Model is a trained LDA model: the topic-term distribution φ plus the
// training corpus' document-topic distributions θ.
type Model struct {
	cfg   Config
	vocab int
	// phi[t][v] = P(v|t), averaged over post-burn-in Gibbs states.
	phi [][]float64
	// theta[d][t] = P(t|d) for each training document.
	theta [][]float64
}

// Train fits an LDA model on the corpus, where docs[d] lists the word
// (category) ids of document d and vocab is the vocabulary size. Empty
// documents are legal and produce the uniform topic distribution.
func Train(docs [][]int32, vocab int, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if vocab <= 0 {
		return nil, fmt.Errorf("lda: vocabulary size must be positive, got %d", vocab)
	}
	for d, doc := range docs {
		for _, w := range doc {
			if w < 0 || int(w) >= vocab {
				return nil, fmt.Errorf("lda: doc %d has word %d outside vocab [0,%d)", d, w, vocab)
			}
		}
	}
	K := cfg.Topics
	rng := randx.New(cfg.Seed)

	// Collapsed Gibbs state.
	nDT := make([][]int32, len(docs)) // doc × topic counts
	nTW := make([][]int32, K)         // topic × word counts
	nT := make([]int32, K)            // topic totals
	for t := range nTW {
		nTW[t] = make([]int32, vocab)
	}
	z := make([][]int8, len(docs)) // topic assignment per token (K ≤ 127 fits; use int16 when larger)
	zWide := make([][]int16, len(docs))
	wide := K > 127
	for d, doc := range docs {
		nDT[d] = make([]int32, K)
		if wide {
			zWide[d] = make([]int16, len(doc))
		} else {
			z[d] = make([]int8, len(doc))
		}
		for i, w := range doc {
			t := rng.Intn(K)
			if wide {
				zWide[d][i] = int16(t)
			} else {
				z[d][i] = int8(t)
			}
			nDT[d][t]++
			nTW[t][w]++
			nT[t]++
		}
	}
	getZ := func(d, i int) int {
		if wide {
			return int(zWide[d][i])
		}
		return int(z[d][i])
	}
	setZ := func(d, i, t int) {
		if wide {
			zWide[d][i] = int16(t)
		} else {
			z[d][i] = int8(t)
		}
	}

	phiAcc := make([][]float64, K)
	for t := range phiAcc {
		phiAcc[t] = make([]float64, vocab)
	}
	thetaAcc := make([][]float64, len(docs))
	for d := range thetaAcc {
		thetaAcc[d] = make([]float64, K)
	}
	samples := 0

	vBeta := float64(vocab) * cfg.Beta
	probs := make([]float64, K)
	for iter := 0; iter < cfg.TrainIters; iter++ {
		for d, doc := range docs {
			for i, w := range doc {
				t := getZ(d, i)
				nDT[d][t]--
				nTW[t][w]--
				nT[t]--
				// p(z=t | rest) ∝ (nDT+α)(nTW+β)/(nT+Vβ)
				total := 0.0
				for k := 0; k < K; k++ {
					p := (float64(nDT[d][k]) + cfg.Alpha) *
						(float64(nTW[k][w]) + cfg.Beta) /
						(float64(nT[k]) + vBeta)
					probs[k] = p
					total += p
				}
				u := rng.Float64() * total
				nt := K - 1
				acc := 0.0
				for k := 0; k < K; k++ {
					acc += probs[k]
					if u < acc {
						nt = k
						break
					}
				}
				setZ(d, i, nt)
				nDT[d][nt]++
				nTW[nt][w]++
				nT[nt]++
			}
		}
		if iter >= cfg.BurnIn {
			samples++
			for t := 0; t < K; t++ {
				den := float64(nT[t]) + vBeta
				for v := 0; v < vocab; v++ {
					phiAcc[t][v] += (float64(nTW[t][v]) + cfg.Beta) / den
				}
			}
			for d := range docs {
				den := float64(len(docs[d])) + float64(K)*cfg.Alpha
				for t := 0; t < K; t++ {
					thetaAcc[d][t] += (float64(nDT[d][t]) + cfg.Alpha) / den
				}
			}
		}
	}
	if samples == 0 {
		samples = 1
	}
	m := &Model{cfg: cfg, vocab: vocab, phi: phiAcc, theta: thetaAcc}
	for t := range m.phi {
		for v := range m.phi[t] {
			m.phi[t][v] /= float64(samples)
		}
	}
	for d := range m.theta {
		if len(docs[d]) == 0 {
			for t := 0; t < K; t++ {
				m.theta[d][t] = 1 / float64(K)
			}
			continue
		}
		for t := range m.theta[d] {
			m.theta[d][t] /= float64(samples)
		}
	}
	return m, nil
}

// Topics returns the number of topics K.
func (m *Model) Topics() int { return m.cfg.Topics }

// Vocab returns the vocabulary size.
func (m *Model) Vocab() int { return m.vocab }

// Phi returns P(word|topic) for the given topic; the returned slice
// aliases model storage.
func (m *Model) Phi(topic int) []float64 { return m.phi[topic] }

// DocTopics returns the training document d's topic distribution θ_d.
func (m *Model) DocTopics(d int) []float64 { return m.theta[d] }

// Infer folds an unseen document into the trained model and returns its
// topic distribution. The topic-term distribution φ stays fixed; only the
// document's own assignments are resampled. Deterministic given seed.
func (m *Model) Infer(doc []int32, seed uint64) []float64 {
	K := m.cfg.Topics
	out := make([]float64, K)
	if len(doc) == 0 {
		for t := range out {
			out[t] = 1 / float64(K)
		}
		return out
	}
	rng := randx.New(seed ^ 0xd1a0c0de)
	z := make([]int, len(doc))
	cnt := make([]int32, K)
	for i := range doc {
		t := rng.Intn(K)
		z[i] = t
		cnt[t]++
	}
	probs := make([]float64, K)
	acc := make([]float64, K)
	samples := 0
	burn := m.cfg.InferIters / 2
	for iter := 0; iter < m.cfg.InferIters; iter++ {
		for i, w := range doc {
			t := z[i]
			cnt[t]--
			total := 0.0
			for k := 0; k < K; k++ {
				p := (float64(cnt[k]) + m.cfg.Alpha) * m.phi[k][w]
				probs[k] = p
				total += p
			}
			nt := K - 1
			if total > 0 {
				u := rng.Float64() * total
				s := 0.0
				for k := 0; k < K; k++ {
					s += probs[k]
					if u < s {
						nt = k
						break
					}
				}
			}
			z[i] = nt
			cnt[nt]++
		}
		if iter >= burn {
			samples++
			den := float64(len(doc)) + float64(K)*m.cfg.Alpha
			for t := 0; t < K; t++ {
				acc[t] += (float64(cnt[t]) + m.cfg.Alpha) / den
			}
		}
	}
	if samples == 0 {
		samples = 1
	}
	for t := range out {
		out[t] = acc[t] / float64(samples)
	}
	return out
}

// Affinity returns Paff for two topic distributions: Σ_t θw[t]·θs[t].
// It panics when the lengths differ (mixing models is a programming
// error).
func Affinity(thetaW, thetaS []float64) float64 {
	if len(thetaW) != len(thetaS) {
		panic("lda: affinity over distributions of different dimension")
	}
	sum := 0.0
	for t := range thetaW {
		sum += thetaW[t] * thetaS[t]
	}
	return sum
}

// Perplexity computes the per-word perplexity of held-out documents under
// the model, using each document's fold-in topic distribution. Lower is
// better; tests use it to confirm training actually fits structure.
func (m *Model) Perplexity(docs [][]int32, seed uint64) float64 {
	logSum, words := 0.0, 0
	for d, doc := range docs {
		if len(doc) == 0 {
			continue
		}
		theta := m.Infer(doc, seed+uint64(d))
		for _, w := range doc {
			p := 0.0
			for t := 0; t < m.cfg.Topics; t++ {
				p += theta[t] * m.phi[t][w]
			}
			if p < 1e-300 {
				p = 1e-300
			}
			logSum += math.Log(p)
			words++
		}
	}
	if words == 0 {
		return 0
	}
	return math.Exp(-logSum / float64(words))
}
