// Package lda implements Latent Dirichlet Allocation trained with
// collapsed Gibbs sampling, specialized to the paper's worker-task
// affinity component (Section III-A).
//
// Each worker's historical task-performing record is a "document" whose
// "words" are the category labels of the tasks the worker completed. A
// task's document is its own category labels. After training, the
// affinity between a worker and a task is
//
//	Paff(w, s) = Σ_t P(w|t) · P(s|t)
//
// which we realize as the dot product of the two documents' inferred
// topic distributions (fold-in Gibbs estimates for unseen documents);
// semantically related categories concentrate in the same topics, so
// correlated preference and task profiles score high.
//
// Training is parallel and deterministic: the corpus is cut into fixed
// blocks of docChunk documents and each Gibbs sweep samples the blocks
// concurrently against the counts frozen at the start of the sweep plus
// the block's own deltas (the approximate distributed scheme of Newman
// et al.), folding the deltas back in a deterministic reduce. Each
// (sweep, chunk) pair draws from its own stream keyed by randx.Mix, so
// the fitted model is bit-identical at any Config.Parallelism — a
// single chunk degenerates to exact sequential collapsed Gibbs.
package lda

import (
	"fmt"
	"math"

	"dita/internal/parallel"
	"dita/internal/randx"
)

// Config holds LDA hyperparameters. Zero values select the defaults used
// in the experiments (|Top| = 50 per the paper; symmetric Dirichlet
// priors α = 50/K, β = 0.01; 200 training sweeps; 50 fold-in sweeps).
type Config struct {
	Topics     int     `json:"topics"`      // number of topics |Top|
	Alpha      float64 `json:"alpha"`       // document-topic Dirichlet prior
	Beta       float64 `json:"beta"`        // topic-word Dirichlet prior
	TrainIters int     `json:"train_iters"` // Gibbs sweeps over the corpus
	BurnIn     int     `json:"burn_in"`     // sweeps discarded before averaging φ
	InferIters int     `json:"infer_iters"` // fold-in sweeps for unseen documents
	Seed       uint64  `json:"seed"`
	// Parallelism bounds the Gibbs worker goroutines; <= 0 means
	// runtime.GOMAXPROCS(0). Any setting yields a bit-identical model:
	// chunk boundaries depend only on the corpus size and every chunk
	// draws from a stream keyed by (Seed, sweep, chunk). The knob is a
	// runtime choice, not part of the model identity, so the trained
	// Model does not retain it.
	Parallelism int `json:"parallelism,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.Topics <= 0 {
		c.Topics = 50
	}
	if c.Alpha <= 0 {
		c.Alpha = 50 / float64(c.Topics)
	}
	if c.Beta <= 0 {
		c.Beta = 0.01
	}
	if c.TrainIters <= 0 {
		c.TrainIters = 200
	}
	if c.BurnIn <= 0 || c.BurnIn >= c.TrainIters {
		c.BurnIn = c.TrainIters / 2
	}
	if c.InferIters <= 0 {
		c.InferIters = 50
	}
	return c
}

// docChunk is the number of documents one scheduling chunk samples per
// sweep. It is part of the determinism contract: chunk boundaries decide
// which stream drives which document and which counts a block sees
// mid-sweep, so changing it changes the fitted model.
const docChunk = 64

// Model is a trained LDA model: the topic-term distribution φ plus the
// training corpus' document-topic distributions θ.
type Model struct {
	cfg   Config
	vocab int
	// phi[t][v] = P(v|t), averaged over post-burn-in Gibbs states.
	phi [][]float64
	// theta[d][t] = P(t|d) for each training document.
	theta [][]float64
}

// trainer is the chunked collapsed-Gibbs state shared by one Train run.
// The global counts (nTW, nT) are frozen during a sweep — chunks read
// them concurrently and write only their own delta block — and updated
// in the sequential reduce between sweeps. Per-document state (nDT, z)
// is owned by the chunk covering the document. The delta blocks are
// dense per chunk (memory scales with numChunks·K·vocab; each chunk
// must see exactly snapshot+own-delta for determinism), but the reduce
// walks only the per-chunk touched lists, so its cost tracks tokens.
type trainer struct {
	cfg   Config
	docs  [][]int32
	vocab int

	workers int
	chunks  int

	nDT [][]int32 // doc × topic counts (doc-owned)
	nTW []int32   // topic × word counts, flat K*vocab (frozen per sweep)
	nT  []int32   // topic totals (frozen per sweep)

	z     [][]int8  // topic assignment per token (K ≤ 127)
	zWide [][]int16 // used instead when K > 127
	wide  bool

	deltaTW [][]int32 // per chunk: K*vocab count deltas of the sweep
	deltaT  [][]int32 // per chunk: K topic-total deltas
	// touched[c] lists the deltaTW indices chunk c disturbed this sweep
	// (possibly with duplicates), so the reduce walks O(tokens) entries
	// instead of scanning every chunk's full K*vocab array.
	touched [][]int32
	rngs    []randx.Rand // per chunk: the (seed, sweep, chunk) stream
	probs   [][]float64  // per worker: sampling scratch
}

func newTrainer(docs [][]int32, vocab int, cfg Config) *trainer {
	K := cfg.Topics
	tr := &trainer{
		cfg:     cfg,
		docs:    docs,
		vocab:   vocab,
		workers: parallel.Workers(cfg.Parallelism),
		chunks:  parallel.NumChunks(len(docs), docChunk),
		nDT:     make([][]int32, len(docs)),
		nTW:     make([]int32, K*vocab),
		nT:      make([]int32, K),
		wide:    K > 127,
	}
	if tr.wide {
		tr.zWide = make([][]int16, len(docs))
	} else {
		tr.z = make([][]int8, len(docs))
	}
	for d, doc := range docs {
		tr.nDT[d] = make([]int32, K)
		if tr.wide {
			tr.zWide[d] = make([]int16, len(doc))
		} else {
			tr.z[d] = make([]int8, len(doc))
		}
	}
	tr.deltaTW = make([][]int32, tr.chunks)
	tr.deltaT = make([][]int32, tr.chunks)
	tr.touched = make([][]int32, tr.chunks)
	for c := range tr.deltaTW {
		tr.deltaTW[c] = make([]int32, K*vocab)
		tr.deltaT[c] = make([]int32, K)
	}
	tr.rngs = make([]randx.Rand, tr.chunks)
	tr.probs = make([][]float64, tr.workers)
	for w := range tr.probs {
		tr.probs[w] = make([]float64, K)
	}
	return tr
}

func (tr *trainer) getZ(d, i int) int {
	if tr.wide {
		return int(tr.zWide[d][i])
	}
	return int(tr.z[d][i])
}

func (tr *trainer) setZ(d, i, t int) {
	if tr.wide {
		tr.zWide[d][i] = int16(t)
	} else {
		tr.z[d][i] = int8(t)
	}
}

// sweep runs one chunked pass over the corpus. Sweep 0 initializes the
// assignments uniformly at random; later sweeps resample every token
// with the collapsed Gibbs conditional against the frozen global counts
// plus the chunk's own live deltas. After the parallel section the
// deltas are folded into the global counts in chunk order and cleared.
func (tr *trainer) sweep(iter int) {
	K := tr.cfg.Topics
	vBeta := float64(tr.vocab) * tr.cfg.Beta
	parallel.ForChunks(tr.workers, len(tr.docs), docChunk, func(worker, c, lo, hi int) {
		rng := &tr.rngs[c]
		rng.Reseed(randx.Mix(tr.cfg.Seed, uint64(iter), uint64(c)))
		dTW, dT := tr.deltaTW[c], tr.deltaT[c]
		touched := tr.touched[c][:0]
		// bump adjusts dTW[idx], recording the index the first time it
		// leaves zero so the reduce only visits disturbed entries.
		// (Entries that return to zero may be recorded again; the reduce
		// zeroes after applying, so duplicates fold in nothing.)
		bump := func(idx int, by int32) {
			if dTW[idx] == 0 {
				touched = append(touched, int32(idx))
			}
			dTW[idx] += by
		}
		probs := tr.probs[worker]
		for d := lo; d < hi; d++ {
			doc := tr.docs[d]
			nDT := tr.nDT[d]
			for i, w := range doc {
				if iter == 0 {
					t := rng.Intn(K)
					tr.setZ(d, i, t)
					nDT[t]++
					bump(t*tr.vocab+int(w), 1)
					dT[t]++
					continue
				}
				t := tr.getZ(d, i)
				nDT[t]--
				bump(t*tr.vocab+int(w), -1)
				dT[t]--
				// p(z=t | rest) ∝ (nDT+α)(nTW+β)/(nT+Vβ); the token's own
				// prior count lives in the global arrays, so global+delta
				// stays non-negative for everything this chunk owns.
				total := 0.0
				for k := 0; k < K; k++ {
					p := (float64(nDT[k]) + tr.cfg.Alpha) *
						(float64(tr.nTW[k*tr.vocab+int(w)]+dTW[k*tr.vocab+int(w)]) + tr.cfg.Beta) /
						(float64(tr.nT[k]+dT[k]) + vBeta)
					probs[k] = p
					total += p
				}
				u := rng.Float64() * total
				nt := K - 1
				acc := 0.0
				for k := 0; k < K; k++ {
					acc += probs[k]
					if u < acc {
						nt = k
						break
					}
				}
				tr.setZ(d, i, nt)
				nDT[nt]++
				bump(nt*tr.vocab+int(w), 1)
				dT[nt]++
			}
		}
		tr.touched[c] = touched
	})
	// Deterministic reduce: integer addition commutes, but walking the
	// chunks in index order keeps the discipline explicit. Only the
	// touched entries are visited — O(tokens), not O(chunks·K·vocab).
	for c := 0; c < tr.chunks; c++ {
		dTW, dT := tr.deltaTW[c], tr.deltaT[c]
		for _, idx := range tr.touched[c] {
			if v := dTW[idx]; v != 0 {
				tr.nTW[idx] += v
				dTW[idx] = 0
			}
		}
		for t, v := range dT {
			if v != 0 {
				tr.nT[t] += v
				dT[t] = 0
			}
		}
	}
}

// accumulate folds the current Gibbs state into the φ and θ averages.
// It reads only the reduced global counts, and every goroutine writes
// topic- or document-owned rows, so the result is order-independent.
func (tr *trainer) accumulate(phiAcc, thetaAcc [][]float64) {
	K := tr.cfg.Topics
	vBeta := float64(tr.vocab) * tr.cfg.Beta
	parallel.For(tr.workers, K, func(_, t int) {
		den := float64(tr.nT[t]) + vBeta
		row := tr.nTW[t*tr.vocab : (t+1)*tr.vocab]
		for v, cnt := range row {
			phiAcc[t][v] += (float64(cnt) + tr.cfg.Beta) / den
		}
	})
	parallel.ForChunks(tr.workers, len(tr.docs), docChunk, func(_, _, lo, hi int) {
		for d := lo; d < hi; d++ {
			den := float64(len(tr.docs[d])) + float64(K)*tr.cfg.Alpha
			for t := 0; t < K; t++ {
				thetaAcc[d][t] += (float64(tr.nDT[d][t]) + tr.cfg.Alpha) / den
			}
		}
	})
}

// Train fits an LDA model on the corpus, where docs[d] lists the word
// (category) ids of document d and vocab is the vocabulary size. Empty
// documents are legal and produce the uniform topic distribution. The
// result is a pure function of (docs, vocab, Config) minus the
// Parallelism knob.
func Train(docs [][]int32, vocab int, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if vocab <= 0 {
		return nil, fmt.Errorf("lda: vocabulary size must be positive, got %d", vocab)
	}
	for d, doc := range docs {
		for _, w := range doc {
			if w < 0 || int(w) >= vocab {
				return nil, fmt.Errorf("lda: doc %d has word %d outside vocab [0,%d)", d, w, vocab)
			}
		}
	}
	K := cfg.Topics
	tr := newTrainer(docs, vocab, cfg)

	phiAcc := make([][]float64, K)
	for t := range phiAcc {
		phiAcc[t] = make([]float64, vocab)
	}
	thetaAcc := make([][]float64, len(docs))
	for d := range thetaAcc {
		thetaAcc[d] = make([]float64, K)
	}

	tr.sweep(0) // random initialization, chunk-streamed like every sweep
	samples := 0
	for iter := 0; iter < cfg.TrainIters; iter++ {
		tr.sweep(iter + 1)
		if iter >= cfg.BurnIn {
			samples++
			tr.accumulate(phiAcc, thetaAcc)
		}
	}
	if samples == 0 {
		samples = 1
	}
	cfg.Parallelism = 0 // runtime knob, not model identity
	m := &Model{cfg: cfg, vocab: vocab, phi: phiAcc, theta: thetaAcc}
	for t := range m.phi {
		for v := range m.phi[t] {
			m.phi[t][v] /= float64(samples)
		}
	}
	for d := range m.theta {
		if len(docs[d]) == 0 {
			for t := 0; t < K; t++ {
				m.theta[d][t] = 1 / float64(K)
			}
			continue
		}
		for t := range m.theta[d] {
			m.theta[d][t] /= float64(samples)
		}
	}
	return m, nil
}

// Topics returns the number of topics K.
func (m *Model) Topics() int { return m.cfg.Topics }

// Vocab returns the vocabulary size.
func (m *Model) Vocab() int { return m.vocab }

// Phi returns P(word|topic) for the given topic; the returned slice
// aliases model storage.
func (m *Model) Phi(topic int) []float64 { return m.phi[topic] }

// DocTopics returns the training document d's topic distribution θ_d.
func (m *Model) DocTopics(d int) []float64 { return m.theta[d] }

// Infer folds an unseen document into the trained model and returns its
// topic distribution. The topic-term distribution φ stays fixed; only the
// document's own assignments are resampled. Deterministic given seed.
func (m *Model) Infer(doc []int32, seed uint64) []float64 {
	K := m.cfg.Topics
	out := make([]float64, K)
	if len(doc) == 0 {
		for t := range out {
			out[t] = 1 / float64(K)
		}
		return out
	}
	rng := randx.New(seed ^ 0xd1a0c0de)
	z := make([]int, len(doc))
	cnt := make([]int32, K)
	for i := range doc {
		t := rng.Intn(K)
		z[i] = t
		cnt[t]++
	}
	probs := make([]float64, K)
	acc := make([]float64, K)
	samples := 0
	burn := m.cfg.InferIters / 2
	for iter := 0; iter < m.cfg.InferIters; iter++ {
		for i, w := range doc {
			t := z[i]
			cnt[t]--
			total := 0.0
			for k := 0; k < K; k++ {
				p := (float64(cnt[k]) + m.cfg.Alpha) * m.phi[k][w]
				probs[k] = p
				total += p
			}
			nt := K - 1
			if total > 0 {
				u := rng.Float64() * total
				s := 0.0
				for k := 0; k < K; k++ {
					s += probs[k]
					if u < s {
						nt = k
						break
					}
				}
			}
			z[i] = nt
			cnt[nt]++
		}
		if iter >= burn {
			samples++
			den := float64(len(doc)) + float64(K)*m.cfg.Alpha
			for t := 0; t < K; t++ {
				acc[t] += (float64(cnt[t]) + m.cfg.Alpha) / den
			}
		}
	}
	if samples == 0 {
		samples = 1
	}
	for t := range out {
		out[t] = acc[t] / float64(samples)
	}
	return out
}

// Affinity returns Paff for two topic distributions: Σ_t θw[t]·θs[t].
// It panics when the lengths differ (mixing models is a programming
// error).
func Affinity(thetaW, thetaS []float64) float64 {
	if len(thetaW) != len(thetaS) {
		panic("lda: affinity over distributions of different dimension")
	}
	sum := 0.0
	for t := range thetaW {
		sum += thetaW[t] * thetaS[t]
	}
	return sum
}

// Perplexity computes the per-word perplexity of held-out documents under
// the model, using each document's fold-in topic distribution. Lower is
// better; tests use it to confirm training actually fits structure.
func (m *Model) Perplexity(docs [][]int32, seed uint64) float64 {
	logSum, words := 0.0, 0
	for d, doc := range docs {
		if len(doc) == 0 {
			continue
		}
		theta := m.Infer(doc, seed+uint64(d))
		for _, w := range doc {
			p := 0.0
			for t := 0; t < m.cfg.Topics; t++ {
				p += theta[t] * m.phi[t][w]
			}
			if p < 1e-300 {
				p = 1e-300
			}
			logSum += math.Log(p)
			words++
		}
	}
	if words == 0 {
		return 0
	}
	return math.Exp(-logSum / float64(words))
}

// Wire is the trained model's serialized form, part of the framework
// artifact's pinned wire format (see internal/fwio): the resolved
// hyperparameters (Infer needs Alpha and InferIters at serve time), the
// vocabulary size, and the fitted φ and θ matrices. encoding/json
// round-trips every finite float64 bit-exactly, so a decode is
// DeepEqual-identical to the trained model.
type Wire struct {
	Config Config      `json:"config"`
	Vocab  int         `json:"vocab"`
	Phi    [][]float64 `json:"phi"`
	Theta  [][]float64 `json:"theta"`
}

// Wire returns the model's serialized form. The matrices alias model
// storage; callers must treat them as read-only.
func (m *Model) Wire() Wire {
	return Wire{Config: m.cfg, Vocab: m.vocab, Phi: m.phi, Theta: m.theta}
}

// FromWire rebuilds a trained model from its serialized form, validating
// every dimension so a corrupt or hand-edited artifact cannot produce a
// model that panics later. The Parallelism knob is forced to zero, as
// Train does: it is a runtime choice, not model identity.
func FromWire(w Wire) (*Model, error) {
	if w.Config.Topics <= 0 {
		return nil, fmt.Errorf("lda: wire form has %d topics", w.Config.Topics)
	}
	if w.Vocab <= 0 {
		return nil, fmt.Errorf("lda: wire form has vocabulary size %d", w.Vocab)
	}
	if len(w.Phi) != w.Config.Topics {
		return nil, fmt.Errorf("lda: wire form has %d phi rows for %d topics", len(w.Phi), w.Config.Topics)
	}
	for t, row := range w.Phi {
		if len(row) != w.Vocab {
			return nil, fmt.Errorf("lda: phi row %d has %d entries for vocabulary %d", t, len(row), w.Vocab)
		}
	}
	for d, row := range w.Theta {
		if len(row) != w.Config.Topics {
			return nil, fmt.Errorf("lda: theta row %d has %d entries for %d topics", d, len(row), w.Config.Topics)
		}
	}
	cfg := w.Config
	cfg.Parallelism = 0
	return &Model{cfg: cfg, vocab: w.Vocab, phi: w.Phi, theta: w.Theta}, nil
}
