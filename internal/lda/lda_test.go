package lda

import (
	"math"
	"testing"

	"dita/internal/paralleltest"
	"dita/internal/randx"
)

// synthCorpus builds documents from two disjoint "true topics": words
// 0..4 and words 5..9. Each document draws from exactly one topic.
func synthCorpus(nDocs, docLen int, seed uint64) (docs [][]int32, labels []int) {
	rng := randx.New(seed)
	docs = make([][]int32, nDocs)
	labels = make([]int, nDocs)
	for d := range docs {
		topic := d % 2
		labels[d] = topic
		doc := make([]int32, docLen)
		for i := range doc {
			doc[i] = int32(topic*5 + rng.Intn(5))
		}
		docs[d] = doc
	}
	return docs, labels
}

func trainSynth(t *testing.T, seed uint64) (*Model, [][]int32, []int) {
	t.Helper()
	docs, labels := synthCorpus(40, 20, seed)
	// Alpha is set explicitly: the 50/K heuristic the library defaults to
	// is tuned for paper-scale K=50 and over-smooths tiny K.
	m, err := Train(docs, 10, Config{Topics: 4, Alpha: 0.3, TrainIters: 120, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return m, docs, labels
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train([][]int32{{0}}, 0, Config{}); err == nil {
		t.Error("zero vocab accepted")
	}
	if _, err := Train([][]int32{{5}}, 3, Config{}); err == nil {
		t.Error("out-of-vocab word accepted")
	}
	if _, err := Train([][]int32{{-1}}, 3, Config{}); err == nil {
		t.Error("negative word accepted")
	}
}

func TestDistributionsNormalized(t *testing.T) {
	m, docs, _ := trainSynth(t, 1)
	for k := 0; k < m.Topics(); k++ {
		sum := 0.0
		for _, p := range m.Phi(k) {
			if p < 0 {
				t.Fatalf("phi[%d] has negative entry", k)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("phi[%d] sums to %v", k, sum)
		}
	}
	for d := range docs {
		sum := 0.0
		for _, p := range m.DocTopics(d) {
			if p < 0 {
				t.Fatalf("theta[%d] has negative entry", d)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("theta[%d] sums to %v", d, sum)
		}
	}
}

func TestAffinitySeparatesTopics(t *testing.T) {
	// Same-topic documents must have systematically higher affinity than
	// cross-topic documents on a clearly separated corpus.
	m, docs, labels := trainSynth(t, 2)
	same, cross := 0.0, 0.0
	nSame, nCross := 0, 0
	for a := 0; a < len(docs); a++ {
		for b := a + 1; b < len(docs); b++ {
			aff := Affinity(m.DocTopics(a), m.DocTopics(b))
			if labels[a] == labels[b] {
				same += aff
				nSame++
			} else {
				cross += aff
				nCross++
			}
		}
	}
	same /= float64(nSame)
	cross /= float64(nCross)
	if same <= cross*1.5 {
		t.Errorf("same-topic affinity %v not clearly above cross-topic %v", same, cross)
	}
}

func TestInferMatchesTrainingTopics(t *testing.T) {
	m, _, _ := trainSynth(t, 3)
	// A fresh doc purely from word block 0..4 should be far more affine
	// to a training doc of the same block than to one of the other.
	newDoc := []int32{0, 1, 2, 3, 4, 0, 1, 2}
	theta := m.Infer(newDoc, 99)
	sum := 0.0
	for _, p := range theta {
		if p < 0 {
			t.Fatal("negative inferred topic probability")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("inferred theta sums to %v", sum)
	}
	affSame := Affinity(theta, m.DocTopics(0))  // doc 0 has label 0
	affCross := Affinity(theta, m.DocTopics(1)) // doc 1 has label 1
	if affSame <= affCross {
		t.Errorf("inferred doc affinity: same-topic %v <= cross-topic %v", affSame, affCross)
	}
}

func TestInferEmptyDocUniform(t *testing.T) {
	m, _, _ := trainSynth(t, 4)
	theta := m.Infer(nil, 1)
	want := 1 / float64(m.Topics())
	for k, p := range theta {
		if math.Abs(p-want) > 1e-12 {
			t.Errorf("empty doc theta[%d] = %v, want uniform %v", k, p, want)
		}
	}
}

func TestEmptyTrainingDocUniform(t *testing.T) {
	docs := [][]int32{{0, 1}, {}, {2, 3}}
	m, err := Train(docs, 4, Config{Topics: 2, TrainIters: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5
	for k, p := range m.DocTopics(1) {
		if math.Abs(p-want) > 1e-12 {
			t.Errorf("empty training doc theta[%d] = %v, want 0.5", k, p)
		}
	}
}

func TestDeterministicTraining(t *testing.T) {
	a, _, _ := trainSynth(t, 6)
	b, _, _ := trainSynth(t, 6)
	for k := 0; k < a.Topics(); k++ {
		pa, pb := a.Phi(k), b.Phi(k)
		for v := range pa {
			if pa[v] != pb[v] {
				t.Fatalf("phi differs across identical runs at topic %d word %d", k, v)
			}
		}
	}
}

func TestInferDeterministicPerSeed(t *testing.T) {
	m, _, _ := trainSynth(t, 7)
	doc := []int32{5, 6, 7}
	a := m.Infer(doc, 42)
	b := m.Infer(doc, 42)
	for k := range a {
		if a[k] != b[k] {
			t.Fatal("Infer with same seed diverged")
		}
	}
}

func TestAffinityBasics(t *testing.T) {
	a := []float64{1, 0, 0}
	b := []float64{0, 1, 0}
	if got := Affinity(a, b); got != 0 {
		t.Errorf("orthogonal affinity = %v, want 0", got)
	}
	if got := Affinity(a, a); got != 1 {
		t.Errorf("identical point-mass affinity = %v, want 1", got)
	}
	u := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	if got := Affinity(u, u); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("uniform self affinity = %v, want 1/3", got)
	}
}

func TestAffinityPanicsOnDimensionMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch did not panic")
		}
	}()
	Affinity([]float64{1}, []float64{0.5, 0.5})
}

func TestPerplexityLowerOnStructuredData(t *testing.T) {
	// A trained model should assign lower perplexity to documents drawn
	// from the training distribution than a "null" model trained on
	// uniform noise over the same vocabulary.
	docs, _ := synthCorpus(40, 20, 8)
	m, err := Train(docs, 10, Config{Topics: 4, TrainIters: 120, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	heldOut, _ := synthCorpus(10, 20, 9)
	structured := m.Perplexity(heldOut, 1)

	rng := randx.New(10)
	noise := make([][]int32, 40)
	for d := range noise {
		doc := make([]int32, 20)
		for i := range doc {
			doc[i] = int32(rng.Intn(10))
		}
		noise[d] = doc
	}
	nullModel, err := Train(noise, 10, Config{Topics: 4, TrainIters: 120, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	unstructured := nullModel.Perplexity(heldOut, 1)
	if structured >= unstructured {
		t.Errorf("structured perplexity %v not below null-model %v", structured, unstructured)
	}
	// Perplexity can never beat the effective support size of a topic
	// block (5 words) by much, nor exceed vocab size wildly.
	if structured < 3 || structured > 11 {
		t.Errorf("structured perplexity %v outside plausible [3, 11]", structured)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Topics != 50 {
		t.Errorf("default Topics = %d, want 50 (the paper's |Top|)", c.Topics)
	}
	if c.Alpha <= 0 || c.Beta <= 0 || c.TrainIters <= 0 || c.InferIters <= 0 {
		t.Errorf("defaults not positive: %+v", c)
	}
	if c.BurnIn >= c.TrainIters {
		t.Errorf("burn-in %d >= iters %d", c.BurnIn, c.TrainIters)
	}
}

func TestTrainParallelismInvariant(t *testing.T) {
	// The tentpole determinism contract: a multi-chunk corpus (several
	// docChunk blocks) trains to a bit-identical model at any worker
	// count. The harness compares φ and θ via DeepEqual.
	docs, _ := synthCorpus(4*docChunk+17, 12, 21)
	paralleltest.Invariant(t, func(par int) any {
		m, err := Train(docs, 10, Config{Topics: 6, Alpha: 0.3, TrainIters: 25, Seed: 21, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		return struct {
			Phi   [][]float64
			Theta [][]float64
		}{m.phi, m.theta}
	})
}

func TestTrainDoesNotRetainParallelism(t *testing.T) {
	docs, _ := synthCorpus(10, 8, 1)
	m, err := Train(docs, 10, Config{Topics: 4, TrainIters: 10, Seed: 1, Parallelism: 7})
	if err != nil {
		t.Fatal(err)
	}
	if m.cfg.Parallelism != 0 {
		t.Errorf("model retained Parallelism %d; the knob is not part of model identity", m.cfg.Parallelism)
	}
}

func TestTrainParallelMatchesStatisticalQuality(t *testing.T) {
	// The chunked (AD-LDA style) sweep must still learn the corpus
	// structure when documents are spread over many concurrent chunks:
	// same-topic affinity clearly above cross-topic, as in the
	// sequential tests above.
	docs, labels := synthCorpus(3*docChunk, 16, 33)
	m, err := Train(docs, 10, Config{Topics: 4, Alpha: 0.3, TrainIters: 120, Seed: 33, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	same, cross := 0.0, 0.0
	nSame, nCross := 0, 0
	for a := 0; a < len(docs); a++ {
		for b := a + 1; b < len(docs); b++ {
			aff := Affinity(m.DocTopics(a), m.DocTopics(b))
			if labels[a] == labels[b] {
				same += aff
				nSame++
			} else {
				cross += aff
				nCross++
			}
		}
	}
	same /= float64(nSame)
	cross /= float64(nCross)
	if same <= cross*1.5 {
		t.Errorf("chunked training: same-topic affinity %v not clearly above cross-topic %v", same, cross)
	}
}
