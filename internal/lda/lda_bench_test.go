package lda

import (
	"fmt"
	"testing"

	"dita/internal/randx"
)

func benchCorpus(nDocs, docLen, vocab int, seed uint64) [][]int32 {
	rng := randx.New(seed)
	docs := make([][]int32, nDocs)
	for d := range docs {
		block := (d % 5) * (vocab / 5)
		doc := make([]int32, docLen)
		for i := range doc {
			doc[i] = int32(block + rng.Intn(vocab/5))
		}
		docs[d] = doc
	}
	return docs
}

// BenchmarkTrain measures collapsed Gibbs training at the paper's
// |Top|=50 on a worker-history-sized corpus.
func BenchmarkTrain(b *testing.B) {
	docs := benchCorpus(500, 40, 60, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(docs, 60, Config{Topics: 50, TrainIters: 50, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInfer measures per-task fold-in — executed once per task per
// time instance in the influence pipeline.
func BenchmarkInfer(b *testing.B) {
	docs := benchCorpus(200, 40, 60, 1)
	m, err := Train(docs, 60, Config{Topics: 50, TrainIters: 50, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	doc := []int32{3, 17, 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Infer(doc, uint64(i))
	}
}

// BenchmarkAffinity measures the per-pair affinity dot product.
func BenchmarkAffinity(b *testing.B) {
	docs := benchCorpus(50, 40, 60, 1)
	m, err := Train(docs, 60, Config{Topics: 50, TrainIters: 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	a, c := m.DocTopics(0), m.DocTopics(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Affinity(a, c)
	}
}

// BenchmarkTrainParallel measures the chunked Gibbs sweep at several
// pool widths; the fitted model is identical across sub-benchmarks, so
// the deltas isolate scheduling gains.
func BenchmarkTrainParallel(b *testing.B) {
	docs := benchCorpus(500, 40, 60, 1)
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Train(docs, 60, Config{Topics: 50, TrainIters: 50, Seed: 1, Parallelism: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
