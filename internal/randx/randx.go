// Package randx provides the deterministic random-number machinery shared
// by the dataset simulator and the randomized algorithms (IC sampling,
// RRR-set generation, LDA Gibbs sampling).
//
// Everything in the repository takes an explicit *randx.Rand or a seed;
// the global math/rand state is never touched, so every experiment,
// example and test is reproducible bit-for-bit from its seed.
package randx

import "math"

// Rand is a small, fast, seedable PRNG (xoshiro256** by Blackman and
// Vigna). It implements the handful of draws the repository needs and is
// deliberately independent of math/rand so behaviour is stable across Go
// releases.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, which maps any
// 64-bit value (including zero) to a full-entropy internal state.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed)
	return r
}

// Reseed reinitializes r from seed exactly as New does, letting callers
// recycle generator values instead of allocating fresh ones.
func (r *Rand) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

// Split returns a new generator derived deterministically from r's current
// state and the label. Use it to hand independent streams to subcomponents
// without correlating their draws.
func (r *Rand) Split(label uint64) *Rand {
	return New(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

// SplitInto reseeds dst with the same stream Split(label) would return,
// without allocating. The parallel samplers use it to derive one stream
// per scheduling chunk from a pooled generator array.
func (r *Rand) SplitInto(label uint64, dst *Rand) {
	dst.Reseed(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

// SplitStreamsInto reseeds dst[i] with the stream Split(i) would return,
// for every i, consuming one generator draw per stream. It is THE way to
// derive per-chunk streams for a parallel stage: called sequentially
// before any chunk runs, it pins stream identity to the chunk index so
// the result cannot depend on scheduling order (the repo-wide
// determinism contract; see internal/parallel).
func (r *Rand) SplitStreamsInto(dst []Rand) {
	for i := range dst {
		r.SplitInto(uint64(i), &dst[i])
	}
}

// Mix folds the labels into one stream seed via a SplitMix64 chain. It is
// a pure function — unlike Split it consumes no generator state — so a
// parallel worker can derive the stream of any (seed, sweep, chunk, ...)
// coordinate independently and in any order. The chunked Gibbs sampler
// keys its per-sweep chunk streams this way.
func Mix(labels ...uint64) uint64 {
	h := uint64(0x6a09e667f3bcc909) // fractional bits of sqrt(2)
	for _, l := range labels {
		h ^= l + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		z := h
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		h = z ^ (z >> 31)
	}
	return h
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal draw using the Marsaglia polar
// method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential draw with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Pareto returns a draw from the Pareto distribution with scale xm > 0 and
// shape alpha > 0; the density is alpha*xm^alpha / x^(alpha+1) for x >= xm.
// The paper models worker displacement lengths with exactly this law.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return xm / math.Pow(u, 1/alpha)
		}
	}
}

// Zipf returns a draw in [0, n) with P(k) proportional to 1/(k+1)^s, via
// inversion on the precomputed CDF held by the Zipf type. For one-off
// draws prefer NewZipf + Draw.
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes a Zipf(s) distribution over n ranks.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("randx: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1), s)
		cdf[k] = total
	}
	for k := range cdf {
		cdf[k] /= total
	}
	return &Zipf{cdf: cdf}
}

// Draw samples a rank from z using r.
func (z *Zipf) Draw(r *Rand) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Perm returns a random permutation of [0, n) using the Fisher-Yates
// shuffle.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using the provided swap
// function, mirroring the math/rand API shape.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// WeightedChoice returns an index drawn proportionally to weights. All
// weights must be non-negative; it panics when the total is not positive.
func (r *Rand) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("randx: WeightedChoice with non-positive total weight")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
