package randx

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := New(124)
	same := 0
	a = New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds matched %d/1000 draws", same)
	}
}

func TestZeroSeedIsUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Errorf("zero seed produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8500 || c > 11500 {
			t.Errorf("Intn(10): value %d drawn %d times, want ~10000", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBoolProbability(t *testing.T) {
	r := New(9)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %v", got)
	}
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	if r.Bool(-0.5) {
		t.Error("Bool(-0.5) returned true")
	}
	if !r.Bool(1.5) {
		t.Error("Bool(1.5) returned false")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(15)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential draw negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestParetoProperties(t *testing.T) {
	r := New(17)
	const n = 100000
	xm, alpha := 2.0, 3.0
	// All draws >= xm; empirical CDF at selected points matches the
	// analytic CDF 1-(xm/x)^alpha.
	draws := make([]float64, n)
	for i := range draws {
		v := r.Pareto(xm, alpha)
		if v < xm {
			t.Fatalf("Pareto draw %v below scale %v", v, xm)
		}
		draws[i] = v
	}
	for _, x := range []float64{2.5, 3, 4, 8} {
		want := 1 - math.Pow(xm/x, alpha)
		hits := 0
		for _, v := range draws {
			if v <= x {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Pareto CDF(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestZipfSkewAndBounds(t *testing.T) {
	r := New(19)
	z := NewZipf(20, 1.0)
	counts := make([]int, 20)
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Draw(r)
		if v < 0 || v >= 20 {
			t.Fatalf("Zipf draw out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[5] || counts[5] <= counts[19] {
		t.Errorf("Zipf counts not decreasing: %v", counts)
	}
	// Rank 0 should appear roughly 1/H(20) of the time (H = harmonic).
	h := 0.0
	for k := 1; k <= 20; k++ {
		h += 1 / float64(k)
	}
	want := 1 / h
	got := float64(counts[0]) / n
	if math.Abs(got-want) > 0.01 {
		t.Errorf("Zipf P(rank 0) = %v, want %v", got, want)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(29)
	counts := make([]int, 5)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[r.Perm(5)[0]]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Perm(5)[0]=%d drawn %d times, want ~10000", v, c)
		}
	}
}

func TestWeightedChoice(t *testing.T) {
	r := New(31)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight option drawn %d times", counts[1])
	}
	got := float64(counts[2]) / n
	if math.Abs(got-0.75) > 0.01 {
		t.Errorf("weight-3 option rate %v, want ~0.75", got)
	}
}

func TestWeightedChoicePanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WeightedChoice with zero total did not panic")
		}
	}()
	New(1).WeightedChoice([]float64{0, 0})
}

func TestSplitIndependence(t *testing.T) {
	// Streams split with different labels from identical parents differ.
	a := New(1).Split(1)
	b := New(1).Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams matched %d/1000 draws", same)
	}
	// Same label from same parent state is reproducible.
	c := New(1).Split(1)
	d := New(1).Split(1)
	for i := 0; i < 100; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("identical splits diverged")
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(37)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("value %d lost in shuffle: %v (orig %v)", v, xs, orig)
		}
	}
}

func TestSplitIntoMatchesSplit(t *testing.T) {
	a := New(77)
	b := New(77)
	for label := uint64(0); label < 20; label++ {
		want := a.Split(label)
		var got Rand
		b.SplitInto(label, &got)
		for i := 0; i < 50; i++ {
			if g, w := got.Uint64(), want.Uint64(); g != w {
				t.Fatalf("label %d draw %d: SplitInto %d, Split %d", label, i, g, w)
			}
		}
	}
}

func TestReseedMatchesNew(t *testing.T) {
	r := New(1)
	r.Uint64()
	r.Reseed(99)
	want := New(99)
	for i := 0; i < 50; i++ {
		if g, w := r.Uint64(), want.Uint64(); g != w {
			t.Fatalf("draw %d: Reseed %d, New %d", i, g, w)
		}
	}
}

func TestMixDeterministicPureFunction(t *testing.T) {
	if Mix(1, 2, 3) != Mix(1, 2, 3) {
		t.Fatal("Mix is not deterministic")
	}
	// Pure: interleaving other Mix calls or generator draws changes nothing.
	a := Mix(7, 0, 41)
	New(99).Uint64()
	Mix(8, 1, 2)
	if Mix(7, 0, 41) != a {
		t.Fatal("Mix depends on external state")
	}
}

func TestMixSeparatesCoordinates(t *testing.T) {
	// Streams keyed by (seed, sweep, chunk) must differ when any
	// coordinate moves, including order swaps and the zero coordinate.
	seen := map[uint64][]uint64{}
	add := func(labels ...uint64) {
		h := Mix(labels...)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix collision: %v and %v both hash to %d", prev, labels, h)
		}
		seen[h] = labels
	}
	add(0, 0, 0)
	add(0, 0, 1)
	add(0, 1, 0)
	add(1, 0, 0)
	add(2, 1, 0)
	add(0, 1, 2)
	add(2, 0, 1)
	for s := uint64(0); s < 8; s++ {
		for c := uint64(0); c < 32; c++ {
			add(42, s, c+100)
		}
	}
}

func TestMixSeedsHealthyStreams(t *testing.T) {
	// A generator seeded from Mix must look uniform, not degenerate.
	r := New(Mix(3, 14, 15))
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Mix-seeded stream mean %v, want ≈ 0.5", mean)
	}
}
