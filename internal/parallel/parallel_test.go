package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"

	"dita/internal/paralleltest"
)

func TestWorkersResolvesKnob(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-2); got != want {
		t.Errorf("Workers(-2) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestForVisitsEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 1000
		var visits [n]atomic.Int32
		For(workers, n, func(_, i int) {
			visits[i].Add(1)
		})
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForWorkerIndexBounded(t *testing.T) {
	const workers, n = 4, 200
	var bad atomic.Int32
	For(workers, n, func(worker, _ int) {
		if worker < 0 || worker >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Errorf("%d invocations saw an out-of-range worker index", bad.Load())
	}
}

func TestForEmptyAndInline(t *testing.T) {
	calls := 0
	For(4, 0, func(_, _ int) { calls++ })
	if calls != 0 {
		t.Errorf("For with n=0 made %d calls", calls)
	}
	// Single worker runs inline and in order.
	var order []int
	For(1, 5, func(worker, i int) {
		if worker != 0 {
			t.Errorf("inline path reported worker %d", worker)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order %v not ascending", order)
		}
	}
}

func TestForChunksCoverRange(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		const size = 64
		covered := make([]atomic.Int32, n)
		var chunksSeen atomic.Int32
		ForChunks(4, n, size, func(_, c, lo, hi int) {
			chunksSeen.Add(1)
			if lo != c*size {
				t.Errorf("chunk %d lo = %d", c, lo)
			}
			if hi-lo > size || hi > n || lo >= hi {
				t.Errorf("chunk %d bounds [%d,%d) invalid for n=%d", c, lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
		})
		if got, want := int(chunksSeen.Load()), NumChunks(n, size); got != want {
			t.Errorf("n=%d: %d chunks ran, want %d", n, got, want)
		}
		for i := range covered {
			if covered[i].Load() != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, covered[i].Load())
			}
		}
	}
}

func TestNumChunks(t *testing.T) {
	cases := []struct{ n, size, want int }{
		{0, 64, 0}, {1, 64, 1}, {64, 64, 1}, {65, 64, 2}, {128, 64, 2}, {10, 0, 0},
	}
	for _, c := range cases {
		if got := NumChunks(c.n, c.size); got != c.want {
			t.Errorf("NumChunks(%d,%d) = %d, want %d", c.n, c.size, got, c.want)
		}
	}
}

// TestForChunkIndexedWrites exercises the pool under the race detector
// with the same write discipline the hot paths use: every chunk writes
// only to chunk-indexed slots.
func TestForChunkIndexedWrites(t *testing.T) {
	const n = 5000
	out := make([]int, n)
	For(8, n, func(_, i int) {
		out[i] = i * i
	})
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestForChunksHarnessInvariant(t *testing.T) {
	// The pool itself under the shared harness: a chunk-disciplined
	// computation (chunk-owned output, chunk-indexed "streams") is
	// bit-identical at every worker count the harness exercises.
	paralleltest.Invariant(t, func(par int) any {
		const n, size = 1037, 64
		out := make([]uint64, n)
		ForChunks(par, n, size, func(_, chunk, lo, hi int) {
			acc := uint64(chunk) * 0x9e3779b97f4a7c15
			for i := lo; i < hi; i++ {
				acc = acc*6364136223846793005 + uint64(i)
				out[i] = acc
			}
		})
		return out
	})
}
