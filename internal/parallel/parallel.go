// Package parallel provides the bounded worker pool and deterministic
// chunk scheduling shared by the repository's hot paths (RRR-set
// sampling, IC Monte Carlo, experiment sweeps).
//
// The determinism contract every caller relies on: work is partitioned
// into chunks with boundaries that depend only on the item count, each
// chunk's randomness comes from a stream derived from the chunk index
// (not from the goroutine that happens to run it), and each chunk
// writes only to chunk-indexed state. Under that discipline the result
// is bit-identical for every worker count, including the inline
// single-worker path — `Parallelism: 1` and `Parallelism: N` runs can
// be diffed byte for byte.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Parallelism knob: values > 0 are used as given,
// anything else means runtime.GOMAXPROCS(0) (all available cores).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(worker, i) for every i in [0, n), distributing items over
// at most `workers` goroutines. Items are claimed from an atomic
// counter, so fn must be safe for concurrent invocation and must write
// only to i-indexed state for the overall result to be deterministic.
// The worker index, in [0, min(workers, n)), lets callers keep
// per-worker scratch buffers. When workers <= 1 (or there is only one
// item) everything runs inline on worker 0 with no goroutines and no
// synchronization.
func For(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// NumChunks returns how many size-`size` chunks cover n items.
func NumChunks(n, size int) int {
	if n <= 0 || size <= 0 {
		return 0
	}
	return (n + size - 1) / size
}

// ForChunks partitions [0, n) into contiguous chunks of `size` items
// (the last chunk may be short) and runs fn(worker, chunk, lo, hi) for
// each, scheduling chunks over at most `workers` goroutines. Chunk
// boundaries depend only on n and size, never on the worker count.
func ForChunks(workers, n, size int, fn func(worker, chunk, lo, hi int)) {
	chunks := NumChunks(n, size)
	For(workers, chunks, func(worker, c int) {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		fn(worker, c, lo, hi)
	})
}
