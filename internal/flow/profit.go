package flow

import "math"

// MinCostFlowNonPositive augments along successive cheapest s→t paths —
// the same SPFA search as MinCostMaxFlowSPFA, tolerant of negative edge
// costs — but stops as soon as the cheapest augmenting path has
// strictly positive cost instead of driving the flow to its maximum
// value.
//
// On a network built from zero flow with no negative cycles, successive
// shortest-path costs are non-decreasing, so the stopping rule yields
// the flow of globally minimum total cost over all flow values — and,
// because zero-cost paths are still taken, the largest such flow. With
// worker→task edges priced at the negated pair weight this computes an
// exact maximum-weight matching: maximum total weight first, maximum
// cardinality among the maximum-weight matchings second. It returns the
// flow value and its (non-positive) total cost.
func (g *Network) MinCostFlowNonPositive(s, t int) (flow int, cost float64) {
	if s == t {
		return 0, 0
	}
	n := g.n
	dist := make([]float64, n)
	inQueue := make([]bool, n)
	prevEdge := make([]int32, n)
	queue := make([]int32, 0, n)

	for {
		for i := range dist {
			dist[i] = math.Inf(1)
			inQueue[i] = false
			prevEdge[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], int32(s))
		inQueue[s] = true
		for len(queue) > 0 {
			u := int(queue[0])
			queue = queue[1:]
			inQueue[u] = false
			du := dist[u]
			for _, id := range g.head[u] {
				e := &g.edges[id]
				if e.cap <= 0 {
					continue
				}
				v := int(e.to)
				if nd := du + e.cost; nd < dist[v]-1e-15 {
					dist[v] = nd
					prevEdge[v] = id
					if !inQueue[v] {
						inQueue[v] = true
						queue = append(queue, e.to)
					}
				}
			}
		}
		if math.IsInf(dist[t], 1) || dist[t] > 0 {
			return flow, cost
		}
		bottleneck := int32(math.MaxInt32)
		for v := t; v != s; {
			id := prevEdge[v]
			if g.edges[id].cap < bottleneck {
				bottleneck = g.edges[id].cap
			}
			v = int(g.edges[id^1].to)
		}
		for v := t; v != s; {
			id := prevEdge[v]
			g.edges[id].cap -= bottleneck
			g.edges[id^1].cap += bottleneck
			cost += float64(bottleneck) * g.edges[id].cost
			v = int(g.edges[id^1].to)
		}
		flow += int(bottleneck)
	}
}
