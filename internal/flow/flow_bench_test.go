package flow

import (
	"testing"

	"dita/internal/randx"
)

// buildBipartite creates the assignment-shaped network the algorithms
// solve: source → nL workers → feasible edges (density p) → nR tasks →
// sink, with unit capacities and (0,1] costs.
func buildBipartite(nL, nR int, p float64, seed uint64) (*Network, int, int) {
	rng := randx.New(seed)
	g := NewNetwork(nL + nR + 2)
	s, t := 0, nL+nR+1
	for l := 0; l < nL; l++ {
		g.AddEdge(s, 1+l, 1, 0)
	}
	for r := 0; r < nR; r++ {
		g.AddEdge(1+nL+r, t, 1, 0)
	}
	for l := 0; l < nL; l++ {
		for r := 0; r < nR; r++ {
			if rng.Bool(p) {
				g.AddEdge(1+l, 1+nL+r, 1, 0.1+0.9*rng.Float64())
			}
		}
	}
	return g, s, t
}

// BenchmarkDinicMaxFlow measures the MTA substrate: pure max flow on an
// assignment graph at the paper's default scale (|W|=1200, |S|=1500,
// ~40 feasible tasks per worker).
func BenchmarkDinicMaxFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g, s, t := buildBipartite(1200, 1500, 40.0/1500, uint64(i))
		b.StartTimer()
		g.MaxFlow(s, t)
	}
}

// BenchmarkMinCostMaxFlow measures the IA/EIA/DIA substrate on the same
// graph shape; the gap to BenchmarkDinicMaxFlow is the price of the
// influence-optimal secondary objective.
func BenchmarkMinCostMaxFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g, s, t := buildBipartite(1200, 1500, 40.0/1500, uint64(i))
		b.StartTimer()
		g.MinCostMaxFlow(s, t)
	}
}

// BenchmarkMCMFDensity sweeps feasible-pair density — the quantity the
// r and ϕ sweeps really change.
func BenchmarkMCMFDensity(b *testing.B) {
	for _, deg := range []int{10, 40, 160} {
		b.Run(benchName("deg", deg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g, s, t := buildBipartite(600, 750, float64(deg)/750, uint64(i))
				b.StartTimer()
				g.MinCostMaxFlow(s, t)
			}
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
