package flow

import "math"

// MinCostMaxFlowSPFA computes the same minimum-cost maximum flow as
// MinCostMaxFlow but finds each augmenting path with SPFA (queue-based
// Bellman-Ford) instead of Dijkstra with potentials. SPFA tolerates
// negative edge costs, which makes it the reference implementation for
// cross-checking the faster Dijkstra variant in tests; the assignment
// algorithms use MinCostMaxFlow.
func (g *Network) MinCostMaxFlowSPFA(s, t int) (flow int, cost float64) {
	if s == t {
		return 0, 0
	}
	n := g.n
	dist := make([]float64, n)
	inQueue := make([]bool, n)
	prevEdge := make([]int32, n)
	queue := make([]int32, 0, n)

	for {
		for i := range dist {
			dist[i] = math.Inf(1)
			inQueue[i] = false
			prevEdge[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], int32(s))
		inQueue[s] = true
		for len(queue) > 0 {
			u := int(queue[0])
			queue = queue[1:]
			inQueue[u] = false
			du := dist[u]
			for _, id := range g.head[u] {
				e := &g.edges[id]
				if e.cap <= 0 {
					continue
				}
				v := int(e.to)
				if nd := du + e.cost; nd < dist[v]-1e-15 {
					dist[v] = nd
					prevEdge[v] = id
					if !inQueue[v] {
						inQueue[v] = true
						queue = append(queue, e.to)
					}
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			return flow, cost
		}
		bottleneck := int32(math.MaxInt32)
		for v := t; v != s; {
			id := prevEdge[v]
			if g.edges[id].cap < bottleneck {
				bottleneck = g.edges[id].cap
			}
			v = int(g.edges[id^1].to)
		}
		for v := t; v != s; {
			id := prevEdge[v]
			g.edges[id].cap -= bottleneck
			g.edges[id^1].cap += bottleneck
			cost += float64(bottleneck) * g.edges[id].cost
			v = int(g.edges[id^1].to)
		}
		flow += int(bottleneck)
	}
}
