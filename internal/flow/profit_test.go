package flow

import (
	"math"
	"math/rand"
	"testing"
)

// bruteMaxWeight enumerates all matchings of a small bipartite weight
// matrix (negative entries mean "no edge") and returns the maximum
// total weight and, among maximum-weight matchings, the maximum
// cardinality.
func bruteMaxWeight(w [][]float64, nT int) (weight float64, card int) {
	nW := len(w)
	bestW, bestC := 0.0, 0
	var rec func(wi int, usedT int, sumW float64, c int)
	rec = func(wi int, usedT int, sumW float64, c int) {
		if wi == nW {
			if sumW > bestW+1e-12 || (math.Abs(sumW-bestW) <= 1e-12 && c > bestC) {
				bestW, bestC = sumW, c
			}
			return
		}
		rec(wi+1, usedT, sumW, c) // leave worker wi unmatched
		for t := 0; t < nT; t++ {
			if usedT&(1<<t) != 0 || w[wi][t] < 0 {
				continue
			}
			rec(wi+1, usedT|(1<<t), sumW+w[wi][t], c+1)
		}
	}
	rec(0, 0, 0, 0)
	return bestW, bestC
}

func TestMinCostFlowNonPositiveMaxWeightMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nW, nT := 1+rng.Intn(6), 1+rng.Intn(6)
		w := make([][]float64, nW)
		for i := range w {
			w[i] = make([]float64, nT)
			for j := range w[i] {
				switch rng.Intn(4) {
				case 0:
					w[i][j] = -1 // no edge
				case 1:
					w[i][j] = 0 // feasible but worthless
				default:
					w[i][j] = rng.Float64() * 3
				}
			}
		}
		g := NewNetwork(nW + nT + 2)
		s, snk := 0, nW+nT+1
		for i := 0; i < nW; i++ {
			g.AddEdge(s, 1+i, 1, 0)
		}
		for j := 0; j < nT; j++ {
			g.AddEdge(1+nW+j, snk, 1, 0)
		}
		var pairEdges []int
		var pairW []float64
		for i := 0; i < nW; i++ {
			for j := 0; j < nT; j++ {
				if w[i][j] < 0 {
					continue
				}
				pairEdges = append(pairEdges, g.AddEdge(1+i, 1+nW+j, 1, -w[i][j]))
				pairW = append(pairW, w[i][j])
			}
		}
		flow, cost := g.MinCostFlowNonPositive(s, snk)
		got := -cost
		wantW, wantC := bruteMaxWeight(w, nT)
		if math.Abs(got-wantW) > 1e-9 {
			t.Fatalf("trial %d: total weight %v, brute force %v", trial, got, wantW)
		}
		if flow != wantC {
			t.Fatalf("trial %d: flow %d, want max cardinality among max weight %d", trial, flow, wantC)
		}
		// The per-edge flows must re-derive the reported totals.
		sumW, sumF := 0.0, 0
		for k, id := range pairEdges {
			if g.Flow(id) > 0 {
				sumW += pairW[k]
				sumF++
			}
		}
		if math.Abs(sumW-got) > 1e-9 || sumF != flow {
			t.Fatalf("trial %d: edge flows sum to (%v, %d), reported (%v, %d)", trial, sumW, sumF, got, flow)
		}
	}
}

// TestMinCostFlowNonPositiveTakesZeroCostPaths pins the tie-break: with
// all weights zero the matching still has maximum cardinality, so the
// variant degrades to plain max flow rather than assigning nothing.
func TestMinCostFlowNonPositiveTakesZeroCostPaths(t *testing.T) {
	build := func() (*Network, int, int) {
		g := NewNetwork(6)
		g.AddEdge(0, 1, 1, 0)
		g.AddEdge(0, 2, 1, 0)
		g.AddEdge(3, 5, 1, 0)
		g.AddEdge(4, 5, 1, 0)
		g.AddEdge(1, 3, 1, 0)
		g.AddEdge(1, 4, 1, 0)
		g.AddEdge(2, 3, 1, 0)
		return g, 0, 5
	}
	g, s, snk := build()
	flow, cost := g.MinCostFlowNonPositive(s, snk)
	ref, _, _ := build()
	want := ref.MaxFlow(0, 5)
	if flow != want || cost != 0 {
		t.Fatalf("zero-weight matching: flow %d cost %v, want flow %d cost 0", flow, cost, want)
	}
}
