package flow

import (
	"container/heap"
	"math"
)

// MinCostMaxFlow computes the minimum-cost maximum s→t flow via
// successive shortest augmenting paths, using Dijkstra on reduced costs
// with Johnson potentials. All edge costs must be non-negative (the
// assignment graphs' costs are in (0, 1]); behaviour is undefined
// otherwise. It returns the flow value and its total cost.
//
// Among all maximum flows this finds one with minimum total cost — which
// is exactly the ITA objective ordering: the primary goal (maximum number
// of assigned tasks) is never sacrificed for the secondary one
// (maximum influence, i.e., minimum cost).
func (g *Network) MinCostMaxFlow(s, t int) (flow int, cost float64) {
	if s == t {
		return 0, 0
	}
	n := g.n
	potential := make([]float64, n)
	dist := make([]float64, n)
	visited := make([]bool, n)
	prevEdge := make([]int32, n)
	pq := &floatHeap{}

	for {
		for i := range dist {
			dist[i] = math.Inf(1)
			visited[i] = false
			prevEdge[i] = -1
		}
		dist[s] = 0
		pq.items = pq.items[:0]
		heap.Push(pq, heapItem{node: int32(s), dist: 0})
		for pq.Len() > 0 {
			it := heap.Pop(pq).(heapItem)
			u := int(it.node)
			if visited[u] {
				continue
			}
			visited[u] = true
			if u == t {
				break
			}
			du := dist[u]
			for _, id := range g.head[u] {
				e := &g.edges[id]
				if e.cap <= 0 {
					continue
				}
				v := int(e.to)
				if visited[v] {
					continue
				}
				nd := du + e.cost + potential[u] - potential[v]
				if nd < dist[v] {
					dist[v] = nd
					prevEdge[v] = id
					heap.Push(pq, heapItem{node: e.to, dist: nd})
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			return flow, cost
		}
		// Update potentials; nodes never reached keep dist[t] so reduced
		// costs stay non-negative in later rounds.
		dt := dist[t]
		for v := 0; v < n; v++ {
			d := dist[v]
			if d > dt {
				d = dt
			}
			potential[v] += d
		}
		// Find bottleneck along the shortest path and augment.
		bottleneck := int32(math.MaxInt32)
		for v := t; v != s; {
			id := prevEdge[v]
			e := &g.edges[id]
			if e.cap < bottleneck {
				bottleneck = e.cap
			}
			v = int(g.edges[id^1].to)
		}
		for v := t; v != s; {
			id := prevEdge[v]
			g.edges[id].cap -= bottleneck
			g.edges[id^1].cap += bottleneck
			cost += float64(bottleneck) * g.edges[id].cost
			v = int(g.edges[id^1].to)
		}
		flow += int(bottleneck)
	}
}

type heapItem struct {
	node int32
	dist float64
}

type floatHeap struct {
	items []heapItem
}

func (h *floatHeap) Len() int           { return len(h.items) }
func (h *floatHeap) Less(i, j int) bool { return h.items[i].dist < h.items[j].dist }
func (h *floatHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *floatHeap) Push(x interface{}) { h.items = append(h.items, x.(heapItem)) }
func (h *floatHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
