package flow

import (
	"math"
	"testing"

	"dita/internal/randx"
)

// TestSPFAMatchesDijkstraMCMF cross-checks the two MCMF implementations
// on random bipartite assignment graphs: identical flow values and
// identical optimal costs (the chosen assignments may differ when
// several optima exist).
func TestSPFAMatchesDijkstraMCMF(t *testing.T) {
	rng := randx.New(51)
	for trial := 0; trial < 30; trial++ {
		nL, nR := 3+rng.Intn(8), 3+rng.Intn(8)
		type e struct {
			l, r int
			w    float64
		}
		var edges []e
		for l := 0; l < nL; l++ {
			for r := 0; r < nR; r++ {
				if rng.Bool(0.45) {
					edges = append(edges, e{l, r, 0.05 + 0.95*rng.Float64()})
				}
			}
		}
		build := func() (*Network, int, int) {
			g := NewNetwork(nL + nR + 2)
			s, tt := 0, nL+nR+1
			for l := 0; l < nL; l++ {
				g.AddEdge(s, 1+l, 1, 0)
			}
			for r := 0; r < nR; r++ {
				g.AddEdge(1+nL+r, tt, 1, 0)
			}
			for _, ed := range edges {
				g.AddEdge(1+ed.l, 1+nL+ed.r, 1, ed.w)
			}
			return g, s, tt
		}
		g1, s, tt := build()
		f1, c1 := g1.MinCostMaxFlow(s, tt)
		g2, _, _ := build()
		f2, c2 := g2.MinCostMaxFlowSPFA(s, tt)
		if f1 != f2 {
			t.Fatalf("trial %d: flow %d (Dijkstra) vs %d (SPFA)", trial, f1, f2)
		}
		if math.Abs(c1-c2) > 1e-9 {
			t.Fatalf("trial %d: cost %v (Dijkstra) vs %v (SPFA)", trial, c1, c2)
		}
	}
}

// TestSPFAOnGeneralNetworks extends the cross-check to non-bipartite
// random networks with capacities above 1.
func TestSPFAOnGeneralNetworks(t *testing.T) {
	rng := randx.New(53)
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(6)
		type e struct {
			u, v, c int
			w       float64
		}
		var edges []e
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Bool(0.3) {
					edges = append(edges, e{u, v, 1 + rng.Intn(3), rng.Float64()})
				}
			}
		}
		build := func() *Network {
			g := NewNetwork(n)
			for _, ed := range edges {
				g.AddEdge(ed.u, ed.v, ed.c, ed.w)
			}
			return g
		}
		f1, c1 := build().MinCostMaxFlow(0, n-1)
		f2, c2 := build().MinCostMaxFlowSPFA(0, n-1)
		if f1 != f2 || math.Abs(c1-c2) > 1e-9 {
			t.Fatalf("trial %d: (%d, %v) vs (%d, %v)", trial, f1, c1, f2, c2)
		}
	}
}

func TestSPFASourceEqualsSink(t *testing.T) {
	g := NewNetwork(2)
	g.AddEdge(0, 1, 1, 0.5)
	if f, c := g.MinCostMaxFlowSPFA(0, 0); f != 0 || c != 0 {
		t.Errorf("s==t: flow %d cost %v", f, c)
	}
}
