package flow

import (
	"math"
	"testing"

	"dita/internal/randx"
)

func TestMaxFlowKnownNetworks(t *testing.T) {
	t.Run("single edge", func(t *testing.T) {
		g := NewNetwork(2)
		e := g.AddEdge(0, 1, 5, 0)
		if got := g.MaxFlow(0, 1); got != 5 {
			t.Fatalf("flow = %d, want 5", got)
		}
		if g.Flow(e) != 5 || g.Capacity(e) != 0 {
			t.Errorf("edge state: flow %d cap %d", g.Flow(e), g.Capacity(e))
		}
	})
	t.Run("series bottleneck", func(t *testing.T) {
		g := NewNetwork(3)
		g.AddEdge(0, 1, 10, 0)
		g.AddEdge(1, 2, 3, 0)
		if got := g.MaxFlow(0, 2); got != 3 {
			t.Fatalf("flow = %d, want 3", got)
		}
	})
	t.Run("parallel paths", func(t *testing.T) {
		g := NewNetwork(4)
		g.AddEdge(0, 1, 4, 0)
		g.AddEdge(0, 2, 3, 0)
		g.AddEdge(1, 3, 2, 0)
		g.AddEdge(2, 3, 5, 0)
		if got := g.MaxFlow(0, 3); got != 5 {
			t.Fatalf("flow = %d, want 5", got)
		}
	})
	t.Run("classic CLRS network", func(t *testing.T) {
		// Cormen et al. Fig 26.1: max flow 23.
		g := NewNetwork(6)
		g.AddEdge(0, 1, 16, 0)
		g.AddEdge(0, 2, 13, 0)
		g.AddEdge(1, 2, 10, 0)
		g.AddEdge(2, 1, 4, 0)
		g.AddEdge(1, 3, 12, 0)
		g.AddEdge(3, 2, 9, 0)
		g.AddEdge(2, 4, 14, 0)
		g.AddEdge(4, 3, 7, 0)
		g.AddEdge(3, 5, 20, 0)
		g.AddEdge(4, 5, 4, 0)
		if got := g.MaxFlow(0, 5); got != 23 {
			t.Fatalf("flow = %d, want 23", got)
		}
	})
	t.Run("disconnected", func(t *testing.T) {
		g := NewNetwork(4)
		g.AddEdge(0, 1, 7, 0)
		g.AddEdge(2, 3, 7, 0)
		if got := g.MaxFlow(0, 3); got != 0 {
			t.Fatalf("flow = %d, want 0", got)
		}
	})
	t.Run("source equals sink", func(t *testing.T) {
		g := NewNetwork(2)
		g.AddEdge(0, 1, 1, 0)
		if got := g.MaxFlow(0, 0); got != 0 {
			t.Fatalf("flow = %d, want 0", got)
		}
	})
}

// bruteMaxMatching computes maximum bipartite matching size by
// backtracking over left-node choices — exponential but fine at test
// sizes; the ground truth for unit-capacity flow tests.
func bruteMaxMatching(nL, nR int, adj [][]int) int {
	usedR := make([]bool, nR)
	var rec func(l int) int
	rec = func(l int) int {
		if l == nL {
			return 0
		}
		best := rec(l + 1) // skip l
		for _, r := range adj[l] {
			if !usedR[r] {
				usedR[r] = true
				if v := 1 + rec(l+1); v > best {
					best = v
				}
				usedR[r] = false
			}
		}
		return best
	}
	return rec(0)
}

func TestMaxFlowMatchesBruteForceMatching(t *testing.T) {
	rng := randx.New(17)
	for trial := 0; trial < 30; trial++ {
		nL, nR := 2+rng.Intn(5), 2+rng.Intn(5)
		adj := make([][]int, nL)
		for l := range adj {
			for r := 0; r < nR; r++ {
				if rng.Bool(0.4) {
					adj[l] = append(adj[l], r)
				}
			}
		}
		want := bruteMaxMatching(nL, nR, adj)

		g := NewNetwork(nL + nR + 2)
		s, tt := 0, nL+nR+1
		for l := 0; l < nL; l++ {
			g.AddEdge(s, 1+l, 1, 0)
		}
		for r := 0; r < nR; r++ {
			g.AddEdge(1+nL+r, tt, 1, 0)
		}
		for l, rs := range adj {
			for _, r := range rs {
				g.AddEdge(1+l, 1+nL+r, 1, 0)
			}
		}
		if got := g.MaxFlow(s, tt); got != want {
			t.Fatalf("trial %d: max flow %d, brute matching %d", trial, got, want)
		}
	}
}

// bruteMinCostMaxMatching enumerates all maximum matchings and returns
// (maxSize, minCost over max-size matchings).
func bruteMinCostMaxMatching(nL, nR int, cost map[[2]int]float64) (int, float64) {
	usedR := make([]bool, nR)
	bestSize, bestCost := 0, math.Inf(1)
	var rec func(l, size int, c float64)
	rec = func(l, size int, c float64) {
		if l == nL {
			if size > bestSize || (size == bestSize && c < bestCost) {
				bestSize, bestCost = size, c
			}
			return
		}
		rec(l+1, size, c)
		for r := 0; r < nR; r++ {
			if w, ok := cost[[2]int{l, r}]; ok && !usedR[r] {
				usedR[r] = true
				rec(l+1, size+1, c+w)
				usedR[r] = false
			}
		}
	}
	rec(0, 0, 0)
	if bestSize == 0 {
		bestCost = 0
	}
	return bestSize, bestCost
}

func TestMinCostMaxFlowOptimalOnRandomBipartite(t *testing.T) {
	rng := randx.New(23)
	for trial := 0; trial < 40; trial++ {
		nL, nR := 2+rng.Intn(4), 2+rng.Intn(4)
		cost := map[[2]int]float64{}
		for l := 0; l < nL; l++ {
			for r := 0; r < nR; r++ {
				if rng.Bool(0.5) {
					cost[[2]int{l, r}] = rng.Float64() // costs in (0,1), like 1/(if+1)
				}
			}
		}
		wantSize, wantCost := bruteMinCostMaxMatching(nL, nR, cost)

		g := NewNetwork(nL + nR + 2)
		s, tt := 0, nL+nR+1
		for l := 0; l < nL; l++ {
			g.AddEdge(s, 1+l, 1, 0)
		}
		for r := 0; r < nR; r++ {
			g.AddEdge(1+nL+r, tt, 1, 0)
		}
		for lr, w := range cost {
			g.AddEdge(1+lr[0], 1+nL+lr[1], 1, w)
		}
		gotSize, gotCost := g.MinCostMaxFlow(s, tt)
		if gotSize != wantSize {
			t.Fatalf("trial %d: flow %d, want %d", trial, gotSize, wantSize)
		}
		if math.Abs(gotCost-wantCost) > 1e-9 {
			t.Fatalf("trial %d: cost %v, want %v (size %d)", trial, gotCost, wantCost, gotSize)
		}
	}
}

func TestMinCostPrefersCheapPath(t *testing.T) {
	// A unit super-source edge bottlenecks the flow to 1; of the two
	// parallel paths the cheap one must carry it.
	g := NewNetwork(5)
	g.AddEdge(4, 0, 1, 0) // bottleneck
	g.AddEdge(0, 1, 1, 0.9)
	cheap := g.AddEdge(0, 2, 1, 0.1)
	g.AddEdge(1, 3, 1, 0)
	g.AddEdge(2, 3, 1, 0)
	flow, cost := g.MinCostMaxFlow(4, 3)
	if flow != 1 {
		t.Fatalf("flow = %d, want 1", flow)
	}
	if math.Abs(cost-0.1) > 1e-12 {
		t.Errorf("cost = %v, want 0.1", cost)
	}
	if g.Flow(cheap) != 1 {
		t.Error("cheap edge not used")
	}
}

func TestMinCostNeverSacrificesFlow(t *testing.T) {
	// A tempting cheap edge must not prevent maximum cardinality:
	// L0 can serve R0 (cheap) or R1 (expensive); L1 can only serve R0.
	// Max matching = 2 requires L0→R1 even though L0→R0 is cheaper.
	g := NewNetwork(6)
	s, tt := 0, 5
	g.AddEdge(s, 1, 1, 0) // L0
	g.AddEdge(s, 2, 1, 0) // L1
	g.AddEdge(3, tt, 1, 0)
	g.AddEdge(4, tt, 1, 0)
	g.AddEdge(1, 3, 1, 0.01) // L0→R0 cheap
	g.AddEdge(1, 4, 1, 0.99) // L0→R1 expensive
	g.AddEdge(2, 3, 1, 0.5)  // L1→R0
	flow, cost := g.MinCostMaxFlow(s, tt)
	if flow != 2 {
		t.Fatalf("flow = %d, want 2 (primary objective sacrificed)", flow)
	}
	if math.Abs(cost-(0.99+0.5)) > 1e-9 {
		t.Errorf("cost = %v, want 1.49", cost)
	}
}

func TestFlowConservationProperty(t *testing.T) {
	// On random networks, after MaxFlow: for every internal node, inflow
	// equals outflow, and no edge exceeds capacity.
	rng := randx.New(31)
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(6)
		g := NewNetwork(n)
		type edgeRec struct{ id, u, v, cap int }
		var recs []edgeRec
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Bool(0.3) {
					c := 1 + rng.Intn(9)
					id := g.AddEdge(u, v, c, 0)
					recs = append(recs, edgeRec{id, u, v, c})
				}
			}
		}
		s, tt := 0, n-1
		total := g.MaxFlow(s, tt)
		net := make([]int, n)
		for _, r := range recs {
			f := g.Flow(r.id)
			if f < 0 || f > r.cap {
				t.Fatalf("edge (%d,%d) flow %d outside [0,%d]", r.u, r.v, f, r.cap)
			}
			net[r.u] -= f
			net[r.v] += f
		}
		if net[s] != -total || net[tt] != total {
			t.Fatalf("terminal imbalance: source %d sink %d total %d", net[s], net[tt], total)
		}
		for v := 1; v < n-1; v++ {
			if net[v] != 0 {
				t.Fatalf("node %d violates conservation: %d", v, net[v])
			}
		}
	}
}

func TestMCMFFlowEqualsMaxFlow(t *testing.T) {
	// Min-cost max-flow must route exactly as much as plain max flow on
	// the same network (primary objective first).
	rng := randx.New(41)
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(5)
		type e struct {
			u, v, c int
			w       float64
		}
		var edges []e
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Bool(0.3) {
					edges = append(edges, e{u, v, 1 + rng.Intn(3), rng.Float64()})
				}
			}
		}
		g1 := NewNetwork(n)
		g2 := NewNetwork(n)
		for _, ed := range edges {
			g1.AddEdge(ed.u, ed.v, ed.c, ed.w)
			g2.AddEdge(ed.u, ed.v, ed.c, ed.w)
		}
		f1 := g1.MaxFlow(0, n-1)
		f2, _ := g2.MinCostMaxFlow(0, n-1)
		if f1 != f2 {
			t.Fatalf("trial %d: Dinic %d vs MCMF %d", trial, f1, f2)
		}
	}
}

func TestMinCostMaxFlowSourceEqualsSink(t *testing.T) {
	g := NewNetwork(2)
	g.AddEdge(0, 1, 1, 0.5)
	f, c := g.MinCostMaxFlow(1, 1)
	if f != 0 || c != 0 {
		t.Errorf("s==t: flow %d cost %v", f, c)
	}
}
