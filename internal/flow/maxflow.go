// Package flow implements the network-flow solvers the assignment
// algorithms reduce to (Section IV-A): a Dinic maximum-flow solver for
// the MTA baseline and a successive-shortest-path minimum-cost
// maximum-flow solver (Dijkstra with Johnson potentials) for IA, EIA and
// DIA, whose edge costs are positive reals derived from worker-task
// influence.
//
// Both solvers use a shared adjacency-array representation with paired
// residual edges. Capacities are integers (assignment graphs are unit
// capacity); costs are float64.
package flow

// edge is one directed arc of the residual network; arcs are stored in
// pairs, with e^1 being e's residual twin.
type edge struct {
	to   int32
	cap  int32
	cost float64
}

// Network is a flow network under construction. The zero value is not
// usable; create one with NewNetwork.
type Network struct {
	n     int
	edges []edge
	head  [][]int32 // head[u] lists edge ids leaving u
}

// NewNetwork returns an empty network over n nodes.
func NewNetwork(n int) *Network {
	return &Network{n: n, head: make([][]int32, n)}
}

// N returns the node count.
func (g *Network) N() int { return g.n }

// AddEdge adds a directed edge u→v with the given capacity and cost and
// returns its id, which can be passed to Flow after solving. The reverse
// residual edge (capacity 0, cost −cost) is created automatically.
func (g *Network) AddEdge(u, v int, capacity int, cost float64) int {
	id := len(g.edges)
	g.edges = append(g.edges, edge{to: int32(v), cap: int32(capacity), cost: cost})
	g.edges = append(g.edges, edge{to: int32(u), cap: 0, cost: -cost})
	g.head[u] = append(g.head[u], int32(id))
	g.head[v] = append(g.head[v], int32(id+1))
	return id
}

// Flow returns the amount of flow routed through the edge with the given
// id after MaxFlow or MinCostMaxFlow has run.
func (g *Network) Flow(id int) int { return int(g.edges[id^1].cap) }

// Capacity returns the remaining capacity of edge id.
func (g *Network) Capacity(id int) int { return int(g.edges[id].cap) }

// MaxFlow computes the maximum s→t flow with Dinic's algorithm and
// returns its value. Edge costs are ignored.
func (g *Network) MaxFlow(s, t int) int {
	if s == t {
		return 0
	}
	level := make([]int32, g.n)
	iter := make([]int32, g.n)
	queue := make([]int32, 0, g.n)
	total := 0
	for {
		// BFS level graph.
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, id := range g.head[u] {
				e := &g.edges[id]
				if e.cap > 0 && level[e.to] < 0 {
					level[e.to] = level[u] + 1
					queue = append(queue, e.to)
				}
			}
		}
		if level[t] < 0 {
			return total
		}
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := g.dfsAugment(s, t, int32(1<<30), level, iter)
			if f == 0 {
				break
			}
			total += int(f)
		}
	}
}

func (g *Network) dfsAugment(u, t int, f int32, level, iter []int32) int32 {
	if u == t {
		return f
	}
	for ; iter[u] < int32(len(g.head[u])); iter[u]++ {
		id := g.head[u][iter[u]]
		e := &g.edges[id]
		if e.cap <= 0 || level[e.to] != level[u]+1 {
			continue
		}
		d := g.dfsAugment(int(e.to), t, min32(f, e.cap), level, iter)
		if d > 0 {
			e.cap -= d
			g.edges[id^1].cap += d
			return d
		}
	}
	return 0
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
