package dataset

import (
	"fmt"
	"testing"
)

// BenchmarkGenerate measures full dataset synthesis at preset scale.
func BenchmarkGenerate(b *testing.B) {
	p := BrightkiteLike()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i + 1)
		if _, err := Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshot measures one time-instance extraction at Table II
// scale (|S|=1500, |W|=1200).
func BenchmarkSnapshot(b *testing.B) {
	d, err := Generate(BrightkiteLike())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Snapshot(SnapshotParams{
			Day: 25, NumTasks: 1500, NumWorkers: 1200,
			ValidHours: 5, RadiusKm: 25, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateParallel measures chunked dataset synthesis at
// several pool widths; the generated data is identical across
// sub-benchmarks.
func BenchmarkGenerateParallel(b *testing.B) {
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			p := BrightkiteLike()
			p.Parallelism = par
			for i := 0; i < b.N; i++ {
				p.Seed = uint64(i + 1)
				if _, err := Generate(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
