package dataset

import (
	"math"
	"path/filepath"
	"testing"

	"dita/internal/model"
	"dita/internal/paralleltest"
)

// smallParams keeps generation fast for tests.
func smallParams() Params {
	p := BrightkiteLike()
	p.NumUsers = 150
	p.NumVenues = 200
	p.Days = 8
	p.Seed = 7
	return p
}

func generate(t *testing.T, p Params) *Data {
	t.Helper()
	d, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestValidatePresets(t *testing.T) {
	if err := BrightkiteLike().Validate(); err != nil {
		t.Errorf("BK preset invalid: %v", err)
	}
	if err := FoursquareLike().Validate(); err != nil {
		t.Errorf("FS preset invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := smallParams()
	mutations := []func(*Params){
		func(p *Params) { p.NumUsers = 1 },
		func(p *Params) { p.NumVenues = 0 },
		func(p *Params) { p.FriendsPerUser = 0 },
		func(p *Params) { p.NumCategories = 0 },
		func(p *Params) { p.CategoryGroups = 0 },
		func(p *Params) { p.CategoryGroups = p.NumCategories + 1 },
		func(p *Params) { p.CatsPerVenueMax = 0 },
		func(p *Params) { p.NumClusters = 0 },
		func(p *Params) { p.CityKm = 0 },
		func(p *Params) { p.Days = 0 },
		func(p *Params) { p.CheckinsPerUserPerDay = 0 },
		func(p *Params) { p.MoveShape = 0 },
	}
	for i, mut := range mutations {
		p := base
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := Generate(p); err == nil {
			t.Errorf("Generate accepted mutation %d", i)
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	p := smallParams()
	d := generate(t, p)
	if d.Graph.N() != p.NumUsers {
		t.Errorf("graph nodes %d, want %d", d.Graph.N(), p.NumUsers)
	}
	if len(d.Venues) != p.NumVenues {
		t.Errorf("venues %d, want %d", len(d.Venues), p.NumVenues)
	}
	if len(d.Homes) != p.NumUsers {
		t.Errorf("homes %d, want %d", len(d.Homes), p.NumUsers)
	}
	if d.NumCheckIns() == 0 {
		t.Fatal("no check-ins generated")
	}
	// Check-in volume should be near users × days × rate.
	want := float64(p.NumUsers) * float64(p.Days) * p.CheckinsPerUserPerDay
	got := float64(d.NumCheckIns())
	if got < want*0.7 || got > want*1.3 {
		t.Errorf("check-in count %v, want ≈ %v", got, want)
	}
}

func TestCheckInsSortedAndInWorld(t *testing.T) {
	p := smallParams()
	d := generate(t, p)
	for i, c := range d.CheckIns {
		if i > 0 && c.Arrive < d.CheckIns[i-1].Arrive {
			t.Fatalf("check-ins unsorted at %d", i)
		}
		if c.Complete < c.Arrive {
			t.Fatalf("check-in %d completes before arrival", i)
		}
		if c.Loc.X < 0 || c.Loc.X > p.CityKm || c.Loc.Y < 0 || c.Loc.Y > p.CityKm {
			t.Fatalf("check-in %d outside the world: %v", i, c.Loc)
		}
		if int(c.User) < 0 || int(c.User) >= p.NumUsers {
			t.Fatalf("check-in %d has bad user %d", i, c.User)
		}
		if int(c.Venue) < 0 || int(c.Venue) >= p.NumVenues {
			t.Fatalf("check-in %d has bad venue %d", i, c.Venue)
		}
		if len(c.Categories) == 0 {
			t.Fatalf("check-in %d has no categories", i)
		}
	}
}

func TestVenueCategoriesWellFormed(t *testing.T) {
	p := smallParams()
	d := generate(t, p)
	for _, v := range d.Venues {
		if len(v.Categories) == 0 || len(v.Categories) > p.CatsPerVenueMax {
			t.Fatalf("venue %d has %d categories", v.ID, len(v.Categories))
		}
		for _, c := range v.Categories {
			if int(c) < 0 || int(c) >= p.NumCategories {
				t.Fatalf("venue %d category %d out of range", v.ID, c)
			}
		}
		if v.Group < 0 || v.Group >= p.CategoryGroups {
			t.Fatalf("venue %d group %d out of range", v.ID, v.Group)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := smallParams()
	a := generate(t, p)
	b := generate(t, p)
	if a.NumCheckIns() != b.NumCheckIns() {
		t.Fatalf("check-in counts differ: %d vs %d", a.NumCheckIns(), b.NumCheckIns())
	}
	for i := range a.CheckIns {
		ca, cb := a.CheckIns[i], b.CheckIns[i]
		if ca.User != cb.User || ca.Venue != cb.Venue || ca.Arrive != cb.Arrive {
			t.Fatalf("check-in %d differs: %+v vs %+v", i, ca, cb)
		}
	}
	// A different seed must give different data.
	p2 := p
	p2.Seed++
	c := generate(t, p2)
	same := 0
	limit := a.NumCheckIns()
	if c.NumCheckIns() < limit {
		limit = c.NumCheckIns()
	}
	for i := 0; i < limit; i++ {
		if a.CheckIns[i].Venue == c.CheckIns[i].Venue && a.CheckIns[i].User == c.CheckIns[i].User {
			same++
		}
	}
	if same == limit {
		t.Error("different seeds produced identical check-in streams")
	}
}

func TestHistoriesBeforeCutoff(t *testing.T) {
	d := generate(t, smallParams())
	cutoff := 4 * 24.0
	hists := d.HistoriesBefore(cutoff)
	if len(hists) == 0 {
		t.Fatal("no histories before cutoff")
	}
	for u, h := range hists {
		if len(h) == 0 {
			t.Fatalf("user %d has empty history entry", u)
		}
		for _, c := range h {
			if c.Arrive >= cutoff {
				t.Fatalf("user %d history leaks past cutoff: %v", u, c.Arrive)
			}
			if c.User != u {
				t.Fatalf("history for %d contains record of %d", u, c.User)
			}
		}
	}
}

func TestDocumentsMatchHistories(t *testing.T) {
	d := generate(t, smallParams())
	cutoff := 4 * 24.0
	docs, vocab := d.Documents(cutoff)
	if vocab != d.Params.NumCategories {
		t.Errorf("vocab %d, want %d", vocab, d.Params.NumCategories)
	}
	hists := d.HistoriesBefore(cutoff)
	for u, doc := range docs {
		wantLen := 0
		for _, c := range hists[model.WorkerID(u)] {
			wantLen += len(c.Categories)
		}
		if len(doc) != wantLen {
			t.Fatalf("user %d doc length %d, want %d", u, len(doc), wantLen)
		}
		for _, w := range doc {
			if int(w) < 0 || int(w) >= vocab {
				t.Fatalf("user %d doc word %d outside vocab", u, w)
			}
		}
	}
}

func TestSnapshotBasics(t *testing.T) {
	d := generate(t, smallParams())
	sp := SnapshotParams{Day: 5, NumTasks: 50, NumWorkers: 40, ValidHours: 5, RadiusKm: 25, Seed: 1}
	inst, err := d.Snapshot(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Workers) != 40 || len(inst.Tasks) != 50 {
		t.Fatalf("snapshot sizes %d workers, %d tasks", len(inst.Workers), len(inst.Tasks))
	}
	if inst.Now != 5*24 {
		t.Errorf("Now = %v, want 120", inst.Now)
	}
	seenU := map[model.WorkerID]bool{}
	for i, w := range inst.Workers {
		if int(w.ID) != i {
			t.Fatalf("worker %d has ID %d (instance ids must be dense)", i, w.ID)
		}
		if seenU[w.User] {
			t.Fatalf("user %d sampled twice", w.User)
		}
		seenU[w.User] = true
		if w.Radius != 25 {
			t.Errorf("worker radius %v", w.Radius)
		}
	}
	seenV := map[model.VenueID]bool{}
	for j, s := range inst.Tasks {
		if int(s.ID) != j {
			t.Fatalf("task %d has ID %d", j, s.ID)
		}
		if seenV[s.Venue] {
			t.Fatalf("venue %d sampled twice", s.Venue)
		}
		seenV[s.Venue] = true
		if s.Publish != inst.Now || s.Valid != 5 {
			t.Errorf("task %d timing %v/%v", j, s.Publish, s.Valid)
		}
		if len(s.Categories) == 0 {
			t.Errorf("task %d has no categories", j)
		}
	}
}

func TestSnapshotWorkerLocationIsMostRecentCheckin(t *testing.T) {
	d := generate(t, smallParams())
	inst, err := d.Snapshot(SnapshotParams{Day: 6, NumTasks: 10, NumWorkers: 30, ValidHours: 5, RadiusKm: 25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	now := inst.Now
	for _, w := range inst.Workers {
		idxs := d.UserCheckIns(w.User)
		var wantLoc = d.Homes[w.User]
		for _, i := range idxs {
			if d.CheckIns[i].Arrive < now {
				wantLoc = d.CheckIns[i].Loc
			} else {
				break
			}
		}
		if math.Abs(wantLoc.X-w.Loc.X) > 1e-12 || math.Abs(wantLoc.Y-w.Loc.Y) > 1e-12 {
			t.Fatalf("worker (user %d) at %v, want most recent check-in %v", w.User, w.Loc, wantLoc)
		}
	}
}

func TestSnapshotValidation(t *testing.T) {
	d := generate(t, smallParams())
	bad := []SnapshotParams{
		{Day: -1, NumTasks: 1, NumWorkers: 1, ValidHours: 1, RadiusKm: 1},
		{Day: 99, NumTasks: 1, NumWorkers: 1, ValidHours: 1, RadiusKm: 1},
		{Day: 0, NumTasks: 0, NumWorkers: 1, ValidHours: 1, RadiusKm: 1},
		{Day: 0, NumTasks: 1, NumWorkers: 0, ValidHours: 1, RadiusKm: 1},
		{Day: 0, NumTasks: 10000, NumWorkers: 1, ValidHours: 1, RadiusKm: 1},
		{Day: 0, NumTasks: 1, NumWorkers: 10000, ValidHours: 1, RadiusKm: 1},
		{Day: 0, NumTasks: 1, NumWorkers: 1, ValidHours: 0, RadiusKm: 1},
		{Day: 0, NumTasks: 1, NumWorkers: 1, ValidHours: 1, RadiusKm: 0},
	}
	for i, sp := range bad {
		if _, err := d.Snapshot(sp); err == nil {
			t.Errorf("bad snapshot %d accepted", i)
		}
	}
}

func TestSnapshotDeterministicPerSeed(t *testing.T) {
	d := generate(t, smallParams())
	sp := SnapshotParams{Day: 5, NumTasks: 30, NumWorkers: 25, ValidHours: 5, RadiusKm: 25, Seed: 9}
	a, err := d.Snapshot(sp)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := d.Snapshot(sp)
	for i := range a.Workers {
		if a.Workers[i].User != b.Workers[i].User {
			t.Fatal("snapshot worker sampling nondeterministic")
		}
	}
	sp.Seed = 10
	c, _ := d.Snapshot(sp)
	same := true
	for i := range a.Workers {
		if a.Workers[i].User != c.Workers[i].User {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical worker samples")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	p := smallParams()
	p.NumUsers = 60
	p.NumVenues = 80
	p.Days = 4
	orig := generate(t, p)
	if err := orig.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Params != orig.Params {
		t.Errorf("params differ:\n%+v\n%+v", loaded.Params, orig.Params)
	}
	if loaded.Graph.M() != orig.Graph.M() {
		t.Errorf("edges %d, want %d", loaded.Graph.M(), orig.Graph.M())
	}
	if len(loaded.Venues) != len(orig.Venues) {
		t.Fatalf("venues %d, want %d", len(loaded.Venues), len(orig.Venues))
	}
	for i := range orig.Venues {
		a, b := orig.Venues[i], loaded.Venues[i]
		if a.ID != b.ID || a.Loc != b.Loc || a.Group != b.Group || len(a.Categories) != len(b.Categories) {
			t.Fatalf("venue %d differs: %+v vs %+v", i, a, b)
		}
	}
	if loaded.NumCheckIns() != orig.NumCheckIns() {
		t.Fatalf("check-ins %d, want %d", loaded.NumCheckIns(), orig.NumCheckIns())
	}
	for i := range orig.CheckIns {
		a, b := orig.CheckIns[i], loaded.CheckIns[i]
		if a.User != b.User || a.Venue != b.Venue || a.Arrive != b.Arrive || a.Complete != b.Complete {
			t.Fatalf("check-in %d differs", i)
		}
	}
	// A snapshot of the loaded data matches one of the original.
	sp := SnapshotParams{Day: 2, NumTasks: 20, NumWorkers: 15, ValidHours: 5, RadiusKm: 25, Seed: 3}
	ia, err := orig.Snapshot(sp)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := loaded.Snapshot(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ia.Workers {
		if ia.Workers[i].User != ib.Workers[i].User || ia.Workers[i].Loc != ib.Workers[i].Loc {
			t.Fatal("snapshots differ after round trip")
		}
	}
}

func TestLoadMissingDirectory(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("loading a missing directory succeeded")
	}
}

func TestUserCheckInsOrdered(t *testing.T) {
	d := generate(t, smallParams())
	for u := 0; u < d.Params.NumUsers; u++ {
		idxs := d.UserCheckIns(model.WorkerID(u))
		for k := 1; k < len(idxs); k++ {
			if d.CheckIns[idxs[k-1]].Arrive > d.CheckIns[idxs[k]].Arrive {
				t.Fatalf("user %d check-ins unordered", u)
			}
		}
		for _, i := range idxs {
			if d.CheckIns[i].User != model.WorkerID(u) {
				t.Fatalf("user %d index points at record of %d", u, d.CheckIns[i].User)
			}
		}
	}
}

func TestCheckInsBeforeIsPrefix(t *testing.T) {
	d := generate(t, smallParams())
	cutoff := 3 * 24.0
	before := d.CheckInsBefore(cutoff)
	for _, c := range before {
		if c.Arrive >= cutoff {
			t.Fatalf("record at %v leaked past cutoff %v", c.Arrive, cutoff)
		}
	}
	if len(before) < d.NumCheckIns() && d.CheckIns[len(before)].Arrive < cutoff {
		t.Error("CheckInsBefore returned a short prefix")
	}
}

func TestGenerateParallelismInvariant(t *testing.T) {
	// The whole dataset — graph, venues, homes, check-in stream and
	// per-user index — must be bit-identical at any worker count. The
	// returned Data clears the Parallelism knob, so DeepEqual over the
	// full struct is exact.
	p := smallParams()
	paralleltest.Invariant(t, func(par int) any {
		p.Parallelism = par
		return generate(t, p)
	})
}

func TestGenerateDoesNotRetainParallelism(t *testing.T) {
	p := smallParams()
	p.Parallelism = 6
	d := generate(t, p)
	if d.Params.Parallelism != 0 {
		t.Errorf("Data retained Parallelism %d; the knob is not part of dataset identity", d.Params.Parallelism)
	}
}
