package dataset

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"

	"dita/internal/atomicio"
)

// legacyWriteCSV is the pre-atomicio code path writeCSV replaced — a
// csv.Writer streaming straight into os.Create. It is kept here verbatim
// as the byte-identity reference: the atomic path must emit exactly the
// bytes this one did.
func legacyWriteCSV(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// TestWriteCSVByteIdenticalToLegacyPath hashes every file of a real
// saved dataset against the old direct-to-file csv.Writer encoding of
// the same rows: routing the save through atomicio must not change a
// single emitted byte, or every existing dataset hash and diff-based
// workflow would silently break.
func TestWriteCSVByteIdenticalToLegacyPath(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	p := smallParams()
	p.NumUsers = 60
	p.NumVenues = 80
	p.Days = 4
	d := generate(t, p)
	if err := d.Save(dir); err != nil {
		t.Fatal(err)
	}

	legacyDir := t.TempDir()
	files, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 5 {
		t.Fatalf("Save emitted %d CSV files, want 5: %v", len(files), files)
	}
	for _, file := range files {
		name := filepath.Base(file)
		rows, err := readCSV(file)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		legacy := filepath.Join(legacyDir, name)
		if err := legacyWriteCSV(legacy, rows); err != nil {
			t.Fatalf("%s: legacy write: %v", name, err)
		}
		got, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(legacy)
		if err != nil {
			t.Fatal(err)
		}
		if atomicio.Sum(got) != atomicio.Sum(want) {
			t.Errorf("%s: atomic save output diverges from the legacy csv.Writer encoding (%d vs %d bytes)",
				name, len(got), len(want))
		}
	}
}

// TestWriteCSVQuotedFieldsMatchLegacy pins the encoding on fields the
// generator never emits but the CSV layer must still agree on — commas,
// quotes, embedded newlines — so byte-identity does not hinge on the
// current generator's character set.
func TestWriteCSVQuotedFieldsMatchLegacy(t *testing.T) {
	rows := [][]string{
		{"key", "value"},
		{"plain", "42"},
		{"comma", "a,b"},
		{"quote", `say "hi"`},
		{"newline", "line1\nline2"},
		{"unicode", "café ✓"},
		{"empty", ""},
	}
	dir := t.TempDir()
	atomic := filepath.Join(dir, "atomic.csv")
	legacy := filepath.Join(dir, "legacy.csv")
	if err := writeCSV(atomic, rows); err != nil {
		t.Fatal(err)
	}
	if err := legacyWriteCSV(legacy, rows); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(atomic)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("atomic writeCSV:\n%q\nlegacy:\n%q", got, want)
	}
}
