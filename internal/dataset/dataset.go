// Package dataset simulates the geo-social check-in datasets the paper
// evaluates on (Brightkite and FourSquare). The real dumps are not
// available offline, so the generator produces synthetic datasets that
// preserve the structural properties the DITA algorithms exercise:
//
//   - a friendship network with heavy-tailed degrees (preferential
//     attachment), as in real location-based social networks;
//   - venues clustered into city-like regions, each labelled with
//     categories from a skewed taxonomy (the FourSquare API role);
//   - per-user check-in trajectories whose displacement lengths are
//     Pareto distributed — the self-similar movement model the paper
//     itself adopts for worker willingness — and whose venue choices are
//     biased by per-user category preferences, so LDA has real structure
//     to learn;
//   - daily cadence: each simulated day yields the active workers and
//     tasks of one time instance, mirroring the paper's "time granularity
//     of one day".
//
// Two presets, BrightkiteLike and FoursquareLike, mirror the contrast
// between the paper's datasets: BK is geographically spread with sparser
// check-ins; FS is denser both socially and spatially with a richer
// category vocabulary.
package dataset

import (
	"fmt"
	"math"
	"sort"

	"dita/internal/geo"
	"dita/internal/model"
	"dita/internal/parallel"
	"dita/internal/randx"
	"dita/internal/socialgraph"
)

// Params configures the generator. All fields must be positive; use a
// preset and tweak from there.
type Params struct {
	Name string

	NumUsers       int // workers in the social network
	NumVenues      int // candidate task locations
	FriendsPerUser int // preferential-attachment edges added per user

	NumCategories   int // vocabulary size of the category taxonomy
	CategoryGroups  int // semantic groups (latent "true topics")
	CatsPerVenueMax int // venues carry 1..CatsPerVenueMax categories

	NumClusters int     // venue/home clusters ("cities")
	CityKm      float64 // side of the square world, km
	ClusterStd  float64 // cluster spread (std dev), km

	Days                  int     // simulated days of history
	CheckinsPerUserPerDay float64 // Poisson rate
	MoveShape             float64 // Pareto shape of jump lengths
	MoveScaleKm           float64 // Pareto scale (minimum jump), km

	Seed uint64

	// Parallelism bounds the generator's worker goroutines; <= 0 means
	// runtime.GOMAXPROCS(0). Venues, users and per-user trajectories are
	// generated in fixed chunks, each driven by a stream split off the
	// stage seed by chunk index, so the dataset is bit-identical at any
	// setting. The knob is a runtime choice, not part of the dataset
	// identity: it is cleared in the returned Data's Params and never
	// serialized by Save.
	Parallelism int
}

// BrightkiteLike returns parameters that echo Brightkite's character:
// wide geography, sparser activity, moderate category richness. Sizes
// are laptop-scale; the paper's sweeps (|S| ≤ 2500, |W| ≤ 2000) fit.
func BrightkiteLike() Params {
	return Params{
		Name:                  "BK",
		NumUsers:              2400,
		NumVenues:             3200,
		FriendsPerUser:        3,
		NumCategories:         60,
		CategoryGroups:        10,
		CatsPerVenueMax:       3,
		NumClusters:           12,
		CityKm:                300,
		ClusterStd:            18,
		Days:                  30,
		CheckinsPerUserPerDay: 1.2,
		MoveShape:             1.5,
		MoveScaleKm:           1,
		Seed:                  0xb71c,
	}
}

// FoursquareLike returns parameters that echo FourSquare's character:
// compact geography, denser check-ins and friendships, richer categories.
func FoursquareLike() Params {
	return Params{
		Name:                  "FS",
		NumUsers:              2200,
		NumVenues:             2800,
		FriendsPerUser:        4,
		NumCategories:         80,
		CategoryGroups:        12,
		CatsPerVenueMax:       4,
		NumClusters:           6,
		CityKm:                120,
		ClusterStd:            10,
		Days:                  30,
		CheckinsPerUserPerDay: 2.0,
		MoveShape:             1.2,
		MoveScaleKm:           0.5,
		Seed:                  0xf5ae,
	}
}

// Validate reports the first problem with p, or nil.
func (p Params) Validate() error {
	switch {
	case p.NumUsers < 2:
		return fmt.Errorf("dataset: NumUsers %d < 2", p.NumUsers)
	case p.NumVenues < 1:
		return fmt.Errorf("dataset: NumVenues %d < 1", p.NumVenues)
	case p.FriendsPerUser < 1:
		return fmt.Errorf("dataset: FriendsPerUser %d < 1", p.FriendsPerUser)
	case p.NumCategories < 1:
		return fmt.Errorf("dataset: NumCategories %d < 1", p.NumCategories)
	case p.CategoryGroups < 1 || p.CategoryGroups > p.NumCategories:
		return fmt.Errorf("dataset: CategoryGroups %d outside [1,%d]", p.CategoryGroups, p.NumCategories)
	case p.CatsPerVenueMax < 1:
		return fmt.Errorf("dataset: CatsPerVenueMax %d < 1", p.CatsPerVenueMax)
	case p.NumClusters < 1:
		return fmt.Errorf("dataset: NumClusters %d < 1", p.NumClusters)
	case p.CityKm <= 0:
		return fmt.Errorf("dataset: CityKm %v <= 0", p.CityKm)
	case p.Days < 1:
		return fmt.Errorf("dataset: Days %d < 1", p.Days)
	case p.CheckinsPerUserPerDay <= 0:
		return fmt.Errorf("dataset: CheckinsPerUserPerDay %v <= 0", p.CheckinsPerUserPerDay)
	case p.MoveShape <= 0:
		return fmt.Errorf("dataset: MoveShape %v <= 0", p.MoveShape)
	}
	return nil
}

// Venue is a check-in location that can spawn spatial tasks.
type Venue struct {
	ID         model.VenueID
	Loc        geo.Point
	Categories []model.CategoryID
	// Group is the latent semantic group the venue's primary category
	// belongs to; exported so tests can verify LDA recovers structure.
	Group int
}

// Data is a complete simulated dataset.
type Data struct {
	Params   Params
	Graph    *socialgraph.Graph
	Venues   []Venue
	Homes    []geo.Point     // per user
	CheckIns []model.CheckIn // globally sorted by arrival time

	// perUser[u] indexes CheckIns by user, in time order.
	perUser [][]int32
}

// genChunk is the number of venues (or users) one scheduling chunk
// generates. Like lda.docChunk it is part of the determinism contract:
// chunk boundaries decide which split stream drives which item.
const genChunk = 64

// Generate builds a dataset from the parameters. The output is a pure
// function of Params (including Seed) minus the Parallelism knob: the
// venue, user and trajectory stages run in fixed chunks with per-chunk
// streams, so any worker count produces the identical dataset.
func Generate(p Params) (*Data, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	root := randx.New(p.Seed)
	graphRng := root.Split(1)
	venueRng := root.Split(2)
	userRng := root.Split(3)
	moveRng := root.Split(4)
	workers := parallel.Workers(p.Parallelism)

	d := &Data{Params: p}
	d.Params.Parallelism = 0 // runtime knob, not dataset identity
	// Preferential attachment grows the graph edge by edge; it stays
	// sequential (each attachment conditions on all previous degrees).
	d.Graph = socialgraph.GeneratePreferentialAttachment(p.NumUsers, p.FriendsPerUser, graphRng)

	// Cluster centers, with a margin so cluster spread stays in-world.
	centers := make([]geo.Point, p.NumClusters)
	margin := p.CityKm * 0.1
	for i := range centers {
		centers[i] = geo.Point{
			X: margin + venueRng.Float64()*(p.CityKm-2*margin),
			Y: margin + venueRng.Float64()*(p.CityKm-2*margin),
		}
	}
	clusterZipf := randx.NewZipf(p.NumClusters, 0.8)

	// Category taxonomy: contiguous groups, Zipf-skewed popularity both
	// across groups and within a group.
	groupOf := func(c model.CategoryID) int {
		return int(c) * p.CategoryGroups / p.NumCategories
	}
	groupSpan := func(g int) (lo, hi int) {
		lo = g * p.NumCategories / p.CategoryGroups
		hi = (g + 1) * p.NumCategories / p.CategoryGroups
		return lo, hi
	}
	groupZipf := randx.NewZipf(p.CategoryGroups, 0.7)
	// Shared read-only CDF per group (the old code rebuilt this Zipf for
	// every single venue).
	inGroupZipf := make([]*randx.Zipf, p.CategoryGroups)
	for g := range inGroupZipf {
		lo, hi := groupSpan(g)
		inGroupZipf[g] = randx.NewZipf(hi-lo, 0.9)
	}

	// Venues, in chunks with per-chunk streams.
	d.Venues = make([]Venue, p.NumVenues)
	venueLocs := make([]geo.Point, p.NumVenues)
	vrngs := splitChunkStreams(venueRng, parallel.NumChunks(p.NumVenues, genChunk))
	parallel.ForChunks(workers, p.NumVenues, genChunk, func(_, c, lo, hi int) {
		rng := &vrngs[c]
		for i := lo; i < hi; i++ {
			cl := clusterZipf.Draw(rng)
			loc := geo.Point{
				X: clampF(centers[cl].X+rng.NormFloat64()*p.ClusterStd, 0, p.CityKm),
				Y: clampF(centers[cl].Y+rng.NormFloat64()*p.ClusterStd, 0, p.CityKm),
			}
			g := groupZipf.Draw(rng)
			gLo, _ := groupSpan(g)
			nCats := 1 + rng.Intn(p.CatsPerVenueMax)
			cats := make([]model.CategoryID, 0, nCats)
			for len(cats) < nCats {
				cat := model.CategoryID(gLo + inGroupZipf[g].Draw(rng))
				if !containsCat(cats, cat) {
					cats = append(cats, cat)
				}
			}
			sort.Slice(cats, func(a, b int) bool { return cats[a] < cats[b] })
			d.Venues[i] = Venue{ID: model.VenueID(i), Loc: loc, Categories: cats, Group: groupOf(cats[0])}
			venueLocs[i] = loc
		}
	})
	venueGrid := geo.BuildGrid(venueLocs, 8)

	// Users: home location and a sparse preference over category groups,
	// again chunked with per-chunk streams.
	d.Homes = make([]geo.Point, p.NumUsers)
	prefs := make([][]float64, p.NumUsers)
	urngs := splitChunkStreams(userRng, parallel.NumChunks(p.NumUsers, genChunk))
	parallel.ForChunks(workers, p.NumUsers, genChunk, func(_, c, lo, hi int) {
		rng := &urngs[c]
		for u := lo; u < hi; u++ {
			cl := clusterZipf.Draw(rng)
			d.Homes[u] = geo.Point{
				X: clampF(centers[cl].X+rng.NormFloat64()*p.ClusterStd, 0, p.CityKm),
				Y: clampF(centers[cl].Y+rng.NormFloat64()*p.ClusterStd, 0, p.CityKm),
			}
			// Each user strongly prefers 1–3 groups; everything else gets
			// a small floor so exploration still happens.
			pref := make([]float64, p.CategoryGroups)
			for g := range pref {
				pref[g] = 0.05
			}
			liked := 1 + rng.Intn(3)
			for k := 0; k < liked; k++ {
				pref[rng.Intn(p.CategoryGroups)] += 1 + rng.Float64()
			}
			prefs[u] = pref
		}
	})

	// Check-in trajectories: each chunk of users walks with its own
	// stream into a chunk-owned buffer; the buffers are merged in chunk
	// order before the global time sort.
	d.perUser = make([][]int32, p.NumUsers)
	uchunks := parallel.NumChunks(p.NumUsers, genChunk)
	mrngs := splitChunkStreams(moveRng, uchunks)
	chunkCIs := make([][]model.CheckIn, uchunks)
	candBufs := make([][]int, workers)
	parallel.ForChunks(workers, p.NumUsers, genChunk, func(worker, c, lo, hi int) {
		rng := &mrngs[c]
		candBuf := &candBufs[worker]
		var cis []model.CheckIn
		var hours []float64
		for u := lo; u < hi; u++ {
			pos := d.Homes[u]
			for day := 0; day < p.Days; day++ {
				k := poisson(rng, p.CheckinsPerUserPerDay)
				if k == 0 {
					continue
				}
				hours = hours[:0]
				for i := 0; i < k; i++ {
					hours = append(hours, 8+rng.Float64()*14) // active 08:00–22:00
				}
				sort.Float64s(hours)
				for i := 0; i < k; i++ {
					jump := rng.Pareto(p.MoveScaleKm, p.MoveShape)
					if jump > p.CityKm/2 {
						jump = p.CityKm / 2
					}
					theta := rng.Float64() * 2 * math.Pi
					target := geo.Point{
						X: clampF(pos.X+jump*math.Cos(theta), 0, p.CityKm),
						Y: clampF(pos.Y+jump*math.Sin(theta), 0, p.CityKm),
					}
					v := pickVenue(venueGrid, d.Venues, prefs[u], target, jump, rng, candBuf)
					arrive := float64(day)*24 + hours[i]
					cis = append(cis, model.CheckIn{
						User:       model.WorkerID(u),
						Venue:      d.Venues[v].ID,
						Loc:        d.Venues[v].Loc,
						Arrive:     arrive,
						Complete:   arrive + 0.25 + rng.Float64()*0.5,
						Categories: d.Venues[v].Categories,
					})
					pos = d.Venues[v].Loc
				}
			}
		}
		chunkCIs[c] = cis
	})
	total := 0
	for _, cis := range chunkCIs {
		total += len(cis)
	}
	d.CheckIns = make([]model.CheckIn, 0, total)
	for _, cis := range chunkCIs {
		d.CheckIns = append(d.CheckIns, cis...)
	}
	sort.SliceStable(d.CheckIns, func(i, j int) bool {
		return d.CheckIns[i].Arrive < d.CheckIns[j].Arrive
	})
	for i, c := range d.CheckIns {
		d.perUser[c.User] = append(d.perUser[c.User], int32(i))
	}
	return d, nil
}

// splitChunkStreams derives one independent stream per scheduling chunk
// from the stage generator, sequentially and before any chunk runs, so
// the streams do not depend on scheduling order.
func splitChunkStreams(rng *randx.Rand, chunks int) []randx.Rand {
	out := make([]randx.Rand, chunks)
	rng.SplitStreamsInto(out)
	return out
}

// containsCat reports whether cats already holds cat; venue category
// lists are at most CatsPerVenueMax long, so a linear scan beats a map.
func containsCat(cats []model.CategoryID, cat model.CategoryID) bool {
	for _, c := range cats {
		if c == cat {
			return true
		}
	}
	return false
}

// pickVenue selects a venue near the target point, weighted by the user's
// preference for the venue's category group. The search radius expands
// until candidates exist, so it always succeeds on non-empty venue sets.
func pickVenue(grid *geo.Grid, venues []Venue, pref []float64, target geo.Point, jump float64, rng *randx.Rand, buf *[]int) int {
	radius := math.Max(2, jump/3)
	for {
		*buf = grid.Within(target, radius, (*buf)[:0])
		if len(*buf) > 0 {
			break
		}
		radius *= 2
	}
	cands := *buf
	if len(cands) > 24 {
		cands = cands[:24] // Within sorts by index; a fixed prefix keeps determinism
	}
	weights := make([]float64, len(cands))
	for i, v := range cands {
		weights[i] = pref[venues[v].Group]
	}
	return cands[rng.WeightedChoice(weights)]
}

func poisson(rng *randx.Rand, lambda float64) int {
	// Knuth's method; fine for the small rates used here.
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 50 {
			return k
		}
	}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// NumCheckIns returns the total number of check-in records.
func (d *Data) NumCheckIns() int { return len(d.CheckIns) }

// UserCheckIns returns the indices into CheckIns of user u's records in
// time order. The slice aliases internal storage.
func (d *Data) UserCheckIns(u model.WorkerID) []int32 { return d.perUser[u] }

// HistoriesBefore returns every user's history restricted to check-ins
// strictly before the cutoff (in hours since epoch) — the training data
// for LDA, HA and location entropy when evaluating later days. Users with
// no qualifying record are omitted.
func (d *Data) HistoriesBefore(cutoffHours float64) map[model.WorkerID]model.History {
	out := make(map[model.WorkerID]model.History, len(d.perUser))
	for u := range d.perUser {
		var h model.History
		for _, idx := range d.perUser[u] {
			c := d.CheckIns[idx]
			if c.Arrive >= cutoffHours {
				break
			}
			h = append(h, c)
		}
		if len(h) > 0 {
			out[model.WorkerID(u)] = h
		}
	}
	return out
}

// CheckInsBefore returns all records strictly before the cutoff, in time
// order; the result aliases the dataset's storage.
func (d *Data) CheckInsBefore(cutoffHours float64) []model.CheckIn {
	i := sort.Search(len(d.CheckIns), func(i int) bool {
		return d.CheckIns[i].Arrive >= cutoffHours
	})
	return d.CheckIns[:i]
}

// Documents builds the LDA corpus: one document per user holding the
// category labels of every task the user performed before the cutoff.
// The returned vocabulary size is Params.NumCategories. Document order is
// user order, so Documents()[u] belongs to user u (possibly empty).
func (d *Data) Documents(cutoffHours float64) ([][]int32, int) {
	docs := make([][]int32, len(d.perUser))
	for u := range d.perUser {
		for _, idx := range d.perUser[u] {
			c := d.CheckIns[idx]
			if c.Arrive >= cutoffHours {
				break
			}
			for _, cat := range c.Categories {
				docs[u] = append(docs[u], int32(cat))
			}
		}
	}
	return docs, d.Params.NumCategories
}
