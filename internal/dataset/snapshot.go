package dataset

import (
	"fmt"
	"sort"

	"dita/internal/geo"
	"dita/internal/model"
	"dita/internal/randx"
)

// SnapshotParams selects the workers and tasks of one time instance, the
// experimental knobs the paper sweeps (Table II).
type SnapshotParams struct {
	Day        int     // which simulated day the instance represents
	NumTasks   int     // |S|
	NumWorkers int     // |W|
	ValidHours float64 // task valid time ϕ
	RadiusKm   float64 // worker reachable radius r
	Seed       uint64  // sampling seed; same seed → same instance
}

// Snapshot materializes one assignment instance for a day, following the
// paper's simulation protocol: users who checked in that day are the
// available workers (located at their most recent check-in) and the day's
// check-in venues spawn the available tasks. When the day's activity is
// smaller than the requested |W| or |S| the remainder is drawn at random
// from the full dataset, matching the paper's "random selection from the
// original dataset" used for its parameter sweeps.
func (d *Data) Snapshot(sp SnapshotParams) (*model.Instance, error) {
	if sp.Day < 0 || sp.Day >= d.Params.Days {
		return nil, fmt.Errorf("dataset: day %d outside [0,%d)", sp.Day, d.Params.Days)
	}
	if sp.NumWorkers < 1 || sp.NumWorkers > d.Params.NumUsers {
		return nil, fmt.Errorf("dataset: NumWorkers %d outside [1,%d]", sp.NumWorkers, d.Params.NumUsers)
	}
	if sp.NumTasks < 1 || sp.NumTasks > d.Params.NumVenues {
		return nil, fmt.Errorf("dataset: NumTasks %d outside [1,%d]", sp.NumTasks, d.Params.NumVenues)
	}
	if sp.ValidHours <= 0 {
		return nil, fmt.Errorf("dataset: ValidHours %v <= 0", sp.ValidHours)
	}
	if sp.RadiusKm <= 0 {
		return nil, fmt.Errorf("dataset: RadiusKm %v <= 0", sp.RadiusKm)
	}
	rng := randx.New(sp.Seed ^ d.Params.Seed ^ (uint64(sp.Day+1) * 0x9e3779b97f4a7c15))
	dayStart := float64(sp.Day) * 24
	dayEnd := dayStart + 24

	// Users active this day, in id order for determinism.
	activeU := make([]int, 0, d.Params.NumUsers)
	for u := range d.perUser {
		idxs := d.perUser[u]
		lo := sort.Search(len(idxs), func(i int) bool {
			return d.CheckIns[idxs[i]].Arrive >= dayStart
		})
		if lo < len(idxs) && d.CheckIns[idxs[lo]].Arrive < dayEnd {
			activeU = append(activeU, u)
		}
	}
	users := sampleFill(activeU, d.Params.NumUsers, sp.NumWorkers, rng)

	// Venues checked into this day.
	activeVSet := make(map[model.VenueID]bool)
	loCI := sort.Search(len(d.CheckIns), func(i int) bool { return d.CheckIns[i].Arrive >= dayStart })
	for i := loCI; i < len(d.CheckIns) && d.CheckIns[i].Arrive < dayEnd; i++ {
		activeVSet[d.CheckIns[i].Venue] = true
	}
	activeV := make([]int, 0, len(activeVSet))
	for v := range activeVSet {
		activeV = append(activeV, int(v))
	}
	sort.Ints(activeV)
	venues := sampleFill(activeV, d.Params.NumVenues, sp.NumTasks, rng)

	inst := &model.Instance{Now: dayStart}
	inst.Workers = make([]model.Worker, len(users))
	for i, u := range users {
		inst.Workers[i] = model.Worker{
			ID:     model.WorkerID(i),
			User:   model.WorkerID(u),
			Loc:    d.locationAt(u, dayStart),
			Radius: sp.RadiusKm,
		}
	}
	inst.Tasks = make([]model.Task, len(venues))
	for j, v := range venues {
		ven := d.Venues[v]
		inst.Tasks[j] = model.Task{
			ID:         model.TaskID(j),
			Loc:        ven.Loc,
			Publish:    dayStart,
			Valid:      sp.ValidHours,
			Categories: ven.Categories,
			Venue:      ven.ID,
		}
	}
	return inst, nil
}

// locationAt returns the user's most recent check-in location strictly
// before t, falling back to the user's home when no check-in exists yet.
// This realizes the paper's "locations are those of the most recent
// check-ins" convention for worker positions.
func (d *Data) locationAt(u int, t float64) geo.Point {
	idxs := d.perUser[u]
	lo := sort.Search(len(idxs), func(i int) bool {
		return d.CheckIns[idxs[i]].Arrive >= t
	})
	if lo == 0 {
		return d.Homes[u]
	}
	return d.CheckIns[idxs[lo-1]].Loc
}

// sampleFill draws want distinct items, preferring the preferred list
// (shuffled) and topping up from [0, universe) when it runs short.
func sampleFill(preferred []int, universe, want int, rng *randx.Rand) []int {
	take := make([]int, 0, want)
	seen := make(map[int]bool, want)
	perm := rng.Perm(len(preferred))
	for _, pi := range perm {
		if len(take) == want {
			return take
		}
		v := preferred[pi]
		if !seen[v] {
			seen[v] = true
			take = append(take, v)
		}
	}
	for len(take) < want {
		v := rng.Intn(universe)
		if !seen[v] {
			seen[v] = true
			take = append(take, v)
		}
	}
	return take
}
