package dataset

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dita/internal/atomicio"
	"dita/internal/geo"
	"dita/internal/model"
	"dita/internal/socialgraph"
)

// Save writes the dataset to a directory as four CSV files — params.csv,
// edges.csv, venues.csv and checkins.csv — a layout deliberately close to
// the public Brightkite/FourSquare dumps so the loader could ingest real
// data with a thin conversion step.
func (d *Data) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: save: %w", err)
	}
	if err := writeCSV(filepath.Join(dir, "params.csv"), d.paramRows()); err != nil {
		return err
	}
	edgeRows := [][]string{{"from", "to"}}
	for _, e := range d.Graph.Edges() {
		edgeRows = append(edgeRows, []string{itoa(int(e.From)), itoa(int(e.To))})
	}
	if err := writeCSV(filepath.Join(dir, "edges.csv"), edgeRows); err != nil {
		return err
	}
	venueRows := [][]string{{"id", "x", "y", "categories"}}
	for _, v := range d.Venues {
		venueRows = append(venueRows, []string{
			itoa(int(v.ID)), ftoa(v.Loc.X), ftoa(v.Loc.Y), catsToField(v.Categories),
		})
	}
	if err := writeCSV(filepath.Join(dir, "venues.csv"), venueRows); err != nil {
		return err
	}
	ciRows := [][]string{{"user", "venue", "arrive", "complete"}}
	for _, c := range d.CheckIns {
		ciRows = append(ciRows, []string{
			itoa(int(c.User)), itoa(int(c.Venue)), ftoa(c.Arrive), ftoa(c.Complete),
		})
	}
	if err := writeCSV(filepath.Join(dir, "checkins.csv"), ciRows); err != nil {
		return err
	}
	homeRows := [][]string{{"user", "x", "y"}}
	for u, h := range d.Homes {
		homeRows = append(homeRows, []string{itoa(u), ftoa(h.X), ftoa(h.Y)})
	}
	return writeCSV(filepath.Join(dir, "homes.csv"), homeRows)
}

// Load reads a dataset previously written by Save.
func Load(dir string) (*Data, error) {
	d := &Data{}
	params, err := readCSV(filepath.Join(dir, "params.csv"))
	if err != nil {
		return nil, err
	}
	if err := d.applyParamRows(params); err != nil {
		return nil, err
	}
	edgeRows, err := readCSV(filepath.Join(dir, "edges.csv"))
	if err != nil {
		return nil, err
	}
	var edges []socialgraph.Edge
	for _, row := range edgeRows[1:] {
		f, err1 := strconv.Atoi(row[0])
		t, err2 := strconv.Atoi(row[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("dataset: bad edge row %v", row)
		}
		edges = append(edges, socialgraph.Edge{From: int32(f), To: int32(t)})
	}
	d.Graph, err = socialgraph.New(d.Params.NumUsers, edges)
	if err != nil {
		return nil, err
	}
	venueRows, err := readCSV(filepath.Join(dir, "venues.csv"))
	if err != nil {
		return nil, err
	}
	groupOf := func(c model.CategoryID) int {
		return int(c) * d.Params.CategoryGroups / d.Params.NumCategories
	}
	for _, row := range venueRows[1:] {
		id, e1 := strconv.Atoi(row[0])
		x, e2 := strconv.ParseFloat(row[1], 64)
		y, e3 := strconv.ParseFloat(row[2], 64)
		cats, e4 := fieldToCats(row[3])
		if e1 != nil || e2 != nil || e3 != nil || e4 != nil {
			return nil, fmt.Errorf("dataset: bad venue row %v", row)
		}
		v := Venue{ID: model.VenueID(id), Loc: geo.Point{X: x, Y: y}, Categories: cats}
		if len(cats) > 0 {
			v.Group = groupOf(cats[0])
		}
		d.Venues = append(d.Venues, v)
	}
	homeRows, err := readCSV(filepath.Join(dir, "homes.csv"))
	if err != nil {
		return nil, err
	}
	d.Homes = make([]geo.Point, d.Params.NumUsers)
	for _, row := range homeRows[1:] {
		u, e1 := strconv.Atoi(row[0])
		x, e2 := strconv.ParseFloat(row[1], 64)
		y, e3 := strconv.ParseFloat(row[2], 64)
		if e1 != nil || e2 != nil || e3 != nil || u < 0 || u >= len(d.Homes) {
			return nil, fmt.Errorf("dataset: bad home row %v", row)
		}
		d.Homes[u] = geo.Point{X: x, Y: y}
	}
	ciRows, err := readCSV(filepath.Join(dir, "checkins.csv"))
	if err != nil {
		return nil, err
	}
	for _, row := range ciRows[1:] {
		u, e1 := strconv.Atoi(row[0])
		v, e2 := strconv.Atoi(row[1])
		ar, e3 := strconv.ParseFloat(row[2], 64)
		co, e4 := strconv.ParseFloat(row[3], 64)
		if e1 != nil || e2 != nil || e3 != nil || e4 != nil || v < 0 || v >= len(d.Venues) {
			return nil, fmt.Errorf("dataset: bad check-in row %v", row)
		}
		ven := d.Venues[v]
		d.CheckIns = append(d.CheckIns, model.CheckIn{
			User:       model.WorkerID(u),
			Venue:      ven.ID,
			Loc:        ven.Loc,
			Arrive:     ar,
			Complete:   co,
			Categories: ven.Categories,
		})
	}
	d.perUser = make([][]int32, d.Params.NumUsers)
	for i, c := range d.CheckIns {
		if int(c.User) < 0 || int(c.User) >= d.Params.NumUsers {
			return nil, fmt.Errorf("dataset: check-in user %d out of range", c.User)
		}
		d.perUser[c.User] = append(d.perUser[c.User], int32(i))
	}
	return d, nil
}

func (d *Data) paramRows() [][]string {
	p := d.Params
	return [][]string{
		{"key", "value"},
		{"name", p.Name},
		{"num_users", itoa(p.NumUsers)},
		{"num_venues", itoa(p.NumVenues)},
		{"friends_per_user", itoa(p.FriendsPerUser)},
		{"num_categories", itoa(p.NumCategories)},
		{"category_groups", itoa(p.CategoryGroups)},
		{"cats_per_venue_max", itoa(p.CatsPerVenueMax)},
		{"num_clusters", itoa(p.NumClusters)},
		{"city_km", ftoa(p.CityKm)},
		{"cluster_std", ftoa(p.ClusterStd)},
		{"days", itoa(p.Days)},
		{"checkins_per_user_per_day", ftoa(p.CheckinsPerUserPerDay)},
		{"move_shape", ftoa(p.MoveShape)},
		{"move_scale_km", ftoa(p.MoveScaleKm)},
		{"seed", strconv.FormatUint(p.Seed, 10)},
	}
}

func (d *Data) applyParamRows(rows [][]string) error {
	var err error
	geti := func(v string) int {
		var n int
		n, err = strconv.Atoi(v)
		return n
	}
	getf := func(v string) float64 {
		var f float64
		f, err = strconv.ParseFloat(v, 64)
		return f
	}
	for _, row := range rows[1:] {
		if len(row) != 2 {
			return fmt.Errorf("dataset: bad params row %v", row)
		}
		k, v := row[0], row[1]
		switch k {
		case "name":
			d.Params.Name = v
		case "num_users":
			d.Params.NumUsers = geti(v)
		case "num_venues":
			d.Params.NumVenues = geti(v)
		case "friends_per_user":
			d.Params.FriendsPerUser = geti(v)
		case "num_categories":
			d.Params.NumCategories = geti(v)
		case "category_groups":
			d.Params.CategoryGroups = geti(v)
		case "cats_per_venue_max":
			d.Params.CatsPerVenueMax = geti(v)
		case "num_clusters":
			d.Params.NumClusters = geti(v)
		case "city_km":
			d.Params.CityKm = getf(v)
		case "cluster_std":
			d.Params.ClusterStd = getf(v)
		case "days":
			d.Params.Days = geti(v)
		case "checkins_per_user_per_day":
			d.Params.CheckinsPerUserPerDay = getf(v)
		case "move_shape":
			d.Params.MoveShape = getf(v)
		case "move_scale_km":
			d.Params.MoveScaleKm = getf(v)
		case "seed":
			d.Params.Seed, err = strconv.ParseUint(v, 10, 64)
		default:
			return fmt.Errorf("dataset: unknown params key %q", k)
		}
		if err != nil {
			return fmt.Errorf("dataset: params key %q: %w", k, err)
		}
	}
	return d.Params.Validate()
}

// writeCSV encodes the rows in memory and lands them atomically (temp +
// fsync + rename via atomicio): a dita-datagen killed mid-save leaves
// either the previous dataset file or none, never a truncated CSV the
// loader would half-parse. The encoding is byte-identical to the old
// direct-to-file csv.Writer path.
func writeCSV(path string, rows [][]string) error {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.WriteAll(rows); err != nil {
		return fmt.Errorf("dataset: write %s: %w", path, err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("dataset: flush %s: %w", path, err)
	}
	if err := atomicio.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("dataset: write %s: %w", path, err)
	}
	return nil
}

func readCSV(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	rows, err := r.ReadAll()
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("dataset: read %s: %w", path, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: %s is empty", path)
	}
	return rows, nil
}

func catsToField(cats []model.CategoryID) string {
	parts := make([]string, len(cats))
	for i, c := range cats {
		parts[i] = itoa(int(c))
	}
	return strings.Join(parts, ";")
}

func fieldToCats(s string) ([]model.CategoryID, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ";")
	cats := make([]model.CategoryID, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		cats[i] = model.CategoryID(n)
	}
	return cats, nil
}

func itoa(n int) string     { return strconv.Itoa(n) }
func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
