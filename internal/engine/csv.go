package engine

import (
	"strconv"
	"strings"
)

// AssignCSV renders a run's per-instant assignments as the streaming
// assignment CSV: one row per matched pair in platform-stable
// identities, ordered by instant and, within an instant, by the solver's
// deterministic pair order. Floats are shortest exact decimals, so two
// bit-identical runs render byte-identical files — the property the CI
// serve smoke leg diffs (dita-serve's drained CSV vs dita-sim -stream on
// the same trace).
func AssignCSV(instants []InstantResult) []byte {
	var b strings.Builder
	b.WriteString("at,task,worker,user,influence,travel_km\n")
	for i := range instants {
		ir := &instants[i]
		at := strconv.FormatFloat(ir.At, 'g', -1, 64)
		for _, p := range ir.Assigned {
			b.WriteString(at)
			b.WriteByte(',')
			b.WriteString(strconv.FormatInt(int64(p.Task), 10))
			b.WriteByte(',')
			b.WriteString(strconv.FormatInt(int64(p.Worker), 10))
			b.WriteByte(',')
			b.WriteString(strconv.FormatInt(int64(p.User), 10))
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(p.Influence, 'g', -1, 64))
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(p.TravelKm, 'g', -1, 64))
			b.WriteByte('\n')
		}
	}
	return []byte(b.String())
}
