// Package engine is the streaming assignment engine of the platform:
// the event-driven instant loop that used to be hard-wired into
// simulate.Platform.Run, extracted so that both a deterministic replay
// driver (internal/simulate) and a long-lived serving front-end
// (cmd/dita-serve) can run the same loop against the same carry-over
// state.
//
// The engine applies an explicit event stream — WorkerArrive,
// WorkerDepart, TaskArrive, TaskExpire — to the pools backing a
// core.Session, and fires assignment instants (InstantFire) that
// snapshot the pools, run the online phase through the session caches,
// solve the assignment and retire the matched pairs. Entities keep
// platform-stable identities for their whole lifetime, which is the
// contract the influence session (per-entity cache keys) and the pair
// index (arrival-ordered admission) both rely on.
//
// Determinism: the engine core never reads the wall clock or any other
// ambient state. Simulation time arrives on the events themselves
// (Event.At, task publish times), and latency measurement goes through
// an injected monotonic Clock — nil for a clockless engine whose
// recorded latencies are simply zero. Two engines fed the same event
// stream produce bit-identical results at any Parallelism setting, the
// property the replay-vs-serve CI smoke diffs byte for byte.
//
// Concurrency: an Engine is single-threaded by design (the session
// caches it drives are not safe for concurrent use). Front-ends that
// ingest events from concurrent connections must serialize Apply/Fire
// calls per engine; cmd/dita-serve holds one engine (and one mutex) per
// region.
package engine

import (
	"errors"
	"fmt"
	"time"

	"dita/internal/assign"
	"dita/internal/core"
	"dita/internal/geo"
	"dita/internal/influence"
	"dita/internal/model"
)

// Clock is the engine's injected time source, used only to measure
// per-instant latency (InstantResult.Prepare, PairMaint): a monotonic
// reading, typically time.Since of a fixed process-start instant.
// Durations are formed by subtracting two readings, so the zero point is
// arbitrary. A nil Clock disables latency measurement.
type Clock func() time.Duration

// WorkerArrival is the payload of a WorkerArrive event: a worker joining
// the platform. At is the arrival time in hours — the replay driver uses
// it to order admissions against the instant grid; the engine itself
// stores only the worker.
type WorkerArrival struct {
	User   model.WorkerID
	Loc    geo.Point
	Radius float64
	At     float64
}

// TaskArrival is the payload of a TaskArrive event: a task published on
// the platform at Publish, expiring at Publish+Valid.
type TaskArrival struct {
	Loc        geo.Point
	Publish    float64
	Valid      float64
	Categories []model.CategoryID
	Venue      model.VenueID
}

// EventKind tags the engine's event union.
type EventKind uint8

const (
	// WorkerArrive admits Event.Worker to the pool and assigns it the
	// next stable platform id.
	WorkerArrive EventKind = iota + 1
	// WorkerDepart removes the worker with platform id Event.WorkerID
	// (went offline without being assigned).
	WorkerDepart
	// TaskArrive publishes Event.Task and assigns it the next stable id.
	TaskArrive
	// TaskExpire withdraws the task with platform id Event.TaskID before
	// its deadline (cancelled by its requester). Deadline expiry needs no
	// event: every InstantFire sweeps overdue tasks first.
	TaskExpire
	// InstantFire runs one assignment instant at time Event.At.
	InstantFire
)

// String names the kind for logs and errors.
func (k EventKind) String() string {
	switch k {
	case WorkerArrive:
		return "WorkerArrive"
	case WorkerDepart:
		return "WorkerDepart"
	case TaskArrive:
		return "TaskArrive"
	case TaskExpire:
		return "TaskExpire"
	case InstantFire:
		return "InstantFire"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one element of the engine's input stream. Only the fields of
// the tagged kind are read.
type Event struct {
	Kind EventKind
	// At is the event's simulation time in hours; required for
	// InstantFire, informational otherwise.
	At float64
	// Worker is the WorkerArrive payload.
	Worker WorkerArrival
	// Task is the TaskArrive payload.
	Task TaskArrival
	// WorkerID names the departing worker of a WorkerDepart.
	WorkerID model.WorkerID
	// TaskID names the withdrawn task of a TaskExpire.
	TaskID model.TaskID
}

// Config parameterizes an engine. The zero Components means the full
// influence model; the cold knobs mirror simulate.Config (they exist for
// equivalence testing and benchmarking — outputs are bit-identical
// either way).
type Config struct {
	// Algorithm used at every instant.
	Algorithm assign.Algorithm
	// Components is the influence mask (influence.All when zero).
	Components influence.Components
	// Seed feeds the influence session; per-task fold-in streams are
	// derived from it and the task's stable identity.
	Seed uint64
	// Parallelism bounds the worker pool for fresh per-entity influence
	// state, pair admission and the component-decomposed solve (<= 0
	// means all cores). Results are bit-identical at any setting.
	Parallelism int
	// ColdPrepare disables the incremental session and rebuilds the full
	// influence state every instant. It implies cold feasible pairs too:
	// without a session there is nowhere to carry the pair index.
	ColdPrepare bool
	// ColdPairs disables the incremental feasible-pair index and rescans
	// the full workers×tasks feasibility every instant.
	ColdPairs bool
	// TiledColdPairs routes the ColdPairs rescan through the tiled
	// scanner, recording the instant's tile count in InstantResult.Tiles.
	// Ignored unless ColdPairs is in effect.
	TiledColdPairs bool
	// SessionCapacity bounds the influence session's per-entity caches:
	// after each instant, at most this many cached task states and this
	// many cached user states are retained, evicting the
	// earliest-admitted live entries first (deterministic FIFO; evicted
	// entries are recomputed bit-identically if their entity is still
	// pooled at a later instant). 0 means unbounded — cache memory then
	// tracks the live pool. See influence.Session.SetCapacity.
	SessionCapacity int
	// Clock measures per-instant latency; nil records zero latencies.
	Clock Clock
	// Trigger is the instant-firing policy consulted after every applied
	// arrival/departure (Applied.FireNow); nil never volunteers an
	// instant, leaving firing entirely to the caller (the replay
	// driver's mode).
	Trigger Trigger
}

// Totals are the engine's cumulative counters since construction.
type Totals struct {
	// Events counts applied arrival/departure/withdrawal events
	// (InstantFire is counted by Instants).
	Events int `json:"events"`
	// Instants counts fired assignment instants.
	Instants int `json:"instants"`
	// Assigned counts matched worker-task pairs.
	Assigned int `json:"assigned"`
	// Expired counts tasks dropped by the deadline sweep.
	Expired int `json:"expired"`
	// Cancelled counts tasks withdrawn by explicit TaskExpire events.
	Cancelled int `json:"cancelled"`
	// Departed counts workers removed by explicit WorkerDepart events.
	Departed int `json:"departed"`
}

// AssignedPair is one matched pair of an instant in platform-stable
// identities (where InstantResult.Pairs is positional into the instant's
// snapshot): the task's and worker's lifetime platform ids, the worker's
// social-graph user, and the realized influence and travel. This is the
// form serving front-ends expose and the streaming assignment CSV
// records.
type AssignedPair struct {
	Task      model.TaskID   `json:"task"`
	Worker    model.WorkerID `json:"worker"`
	User      model.WorkerID `json:"user"`
	Influence float64        `json:"influence"`
	TravelKm  float64        `json:"travel_km"`
}

// InstantResult records one assignment instant.
type InstantResult struct {
	At            float64
	OnlineWorkers int
	OpenTasks     int
	// Prepare is the online-phase latency of the instant: the time spent
	// building the influence evaluator (cached-session hits make this
	// collapse for carried-over entities), or — on an instant with an
	// empty pool side, where no assignment runs — the session's Sync,
	// which is the same cache maintenance without an evaluator.
	// Assignment time is in Metrics.CPU, matching the paper's phase
	// split. Zero on a clockless engine.
	Prepare time.Duration
	// PairMaint is the feasible-pair latency of the instant: maintaining
	// the incremental pair index (or, under cold pairs, rescanning the
	// full workers×tasks feasibility). Excluded from Metrics.CPU.
	PairMaint time.Duration
	Metrics   core.Metrics
	// Tiles reports the instant's tiled-pipeline shape: feasibility-graph
	// component stats for every busy instant, plus the spatial tile count
	// when the instant's pairs came from a tiled cold scan.
	Tiles assign.TileStats
	// Expired counts tasks the instant's deadline sweep dropped.
	Expired int
	// Pairs are the instant's matched pairs referencing the instant's
	// snapshot positionally (snapshot order == pool order at that
	// instant).
	Pairs []model.Assignment
	// Assigned are the same pairs in platform-stable identities.
	Assigned []AssignedPair
}

// Applied reports what an Apply did: the stable id minted for an
// arrival, the instant result of an InstantFire, and whether the
// configured trigger wants an instant fired now.
type Applied struct {
	// WorkerID is the platform id assigned to a WorkerArrive.
	WorkerID model.WorkerID
	// TaskID is the platform id assigned to a TaskArrive.
	TaskID model.TaskID
	// Instant is the result of an InstantFire, nil otherwise.
	Instant *InstantResult
	// FireNow reports that the trigger's batch threshold is reached: the
	// caller should fire an instant (the engine never fires on its own —
	// the caller supplies the instant time).
	FireNow bool
}

// ErrUnknownWorker and ErrUnknownTask report departure/withdrawal events
// naming a platform id that is not pooled (already assigned, expired,
// departed — or never issued).
var (
	ErrUnknownWorker = errors.New("engine: no such worker in the pool")
	ErrUnknownTask   = errors.New("engine: no such task in the pool")
)

// Engine is the carry-over state between instants: the live pools, the
// stable-id counters, and the incremental session (influence cache +
// pair index) the instants are served through.
type Engine struct {
	fw      *core.Framework
	cfg     Config
	sess    *core.Session
	workers []model.Worker // online, not yet assigned; ID is the stable arrival id
	tasks   []model.Task   // published, unexpired, unassigned; ID stable since publication
	nextTID model.TaskID
	nextWID model.WorkerID
	// usedW/usedT are reusable retirement marks sized to the pools, so
	// the hot instant loop rebuilds no maps.
	usedW, usedT []bool
	// pending counts events applied since the last instant — the batch
	// trigger's input.
	pending int
	totals  Totals
}

// New returns an empty engine bound to a trained framework.
func New(fw *core.Framework, cfg Config) (*Engine, error) {
	if fw == nil {
		return nil, fmt.Errorf("engine: nil framework")
	}
	if cfg.Components == 0 {
		cfg.Components = influence.All
	}
	e := &Engine{fw: fw, cfg: cfg}
	if !cfg.ColdPrepare {
		e.sess = fw.PrepareSession(cfg.Components, cfg.Seed, cfg.Parallelism)
		if cfg.SessionCapacity > 0 {
			e.sess.SetCapacity(cfg.SessionCapacity)
		}
	}
	return e, nil
}

// Apply applies one event. Arrival events mint and return the entity's
// stable platform id; departure events fail with ErrUnknownWorker /
// ErrUnknownTask when the id is not pooled; InstantFire runs the instant
// and returns its result.
func (e *Engine) Apply(ev Event) (Applied, error) {
	switch ev.Kind {
	case WorkerArrive:
		a := ev.Worker
		id := e.nextWID
		e.workers = append(e.workers, model.Worker{
			ID: id, User: a.User, Loc: a.Loc, Radius: a.Radius,
		})
		e.nextWID++
		e.eventApplied()
		return Applied{WorkerID: id, FireNow: e.fireNow()}, nil
	case TaskArrive:
		a := ev.Task
		id := e.nextTID
		e.tasks = append(e.tasks, model.Task{
			ID: id, Loc: a.Loc, Publish: a.Publish,
			Valid: a.Valid, Categories: a.Categories, Venue: a.Venue,
		})
		e.nextTID++
		e.eventApplied()
		return Applied{TaskID: id, FireNow: e.fireNow()}, nil
	case WorkerDepart:
		if !e.removeWorker(ev.WorkerID) {
			return Applied{}, fmt.Errorf("%w: worker %d", ErrUnknownWorker, ev.WorkerID)
		}
		e.totals.Departed++
		e.eventApplied()
		return Applied{FireNow: e.fireNow()}, nil
	case TaskExpire:
		if !e.removeTask(ev.TaskID) {
			return Applied{}, fmt.Errorf("%w: task %d", ErrUnknownTask, ev.TaskID)
		}
		e.totals.Cancelled++
		e.eventApplied()
		return Applied{FireNow: e.fireNow()}, nil
	case InstantFire:
		ir := e.Fire(ev.At)
		return Applied{Instant: &ir}, nil
	}
	return Applied{}, fmt.Errorf("engine: unknown event kind %v", ev.Kind)
}

func (e *Engine) eventApplied() {
	e.pending++
	e.totals.Events++
}

func (e *Engine) fireNow() bool {
	return e.cfg.Trigger != nil && e.cfg.Trigger.FireOnPending(e.pending)
}

// removeWorker drops the pooled worker with the given stable id,
// preserving pool order. Departures are rare relative to instants, so a
// linear scan beats maintaining an id→position map that every
// retirement compaction would invalidate.
func (e *Engine) removeWorker(id model.WorkerID) bool {
	for i, w := range e.workers {
		if w.ID == id {
			e.workers = append(e.workers[:i], e.workers[i+1:]...)
			return true
		}
	}
	return false
}

// removeTask drops the pooled task with the given stable id, preserving
// pool order.
func (e *Engine) removeTask(id model.TaskID) bool {
	for i, t := range e.tasks {
		if t.ID == id {
			e.tasks = append(e.tasks[:i], e.tasks[i+1:]...)
			return true
		}
	}
	return false
}

// clock reads the injected monotonic clock; a clockless engine reads a
// constant, so every recorded latency is zero.
func (e *Engine) clock() time.Duration {
	if e.cfg.Clock == nil {
		return 0
	}
	return e.cfg.Clock()
}

// Fire runs one assignment instant at simulation time now: sweep overdue
// tasks, snapshot the pools, prepare the influence evaluator through the
// session (or cold), maintain the feasible pairs, solve, and retire the
// matched pairs. An instant with an empty pool side runs no assignment
// but still syncs the session caches — admitting arrivals ahead of the
// next busy instant and evicting departures — with that maintenance cost
// timed into Prepare/PairMaint exactly as a busy instant's would be.
func (e *Engine) Fire(now float64) InstantResult {
	e.pending = 0
	e.totals.Instants++

	// Expire stale tasks. The sweep runs before the snapshot so an
	// instant never offers a task that is already past its deadline.
	expired := 0
	kept := e.tasks[:0]
	for _, t := range e.tasks {
		if t.Expiry() < now {
			expired++
			continue
		}
		kept = append(kept, t)
	}
	e.tasks = kept
	e.totals.Expired += expired

	if len(e.workers) == 0 || len(e.tasks) == 0 {
		var prep, pairMaint time.Duration
		if e.sess != nil {
			inst := &model.Instance{Now: now, Workers: e.workers, Tasks: e.tasks}
			t0 := e.clock()
			e.sess.Sync(inst)
			prep = e.clock() - t0
			if !e.cfg.ColdPairs {
				t1 := e.clock()
				e.sess.Pairs(inst)
				pairMaint = e.clock() - t1
			}
		}
		return InstantResult{
			At: now, OnlineWorkers: len(e.workers), OpenTasks: len(e.tasks),
			Prepare: prep, PairMaint: pairMaint, Expired: expired,
		}
	}

	inst := e.instance(now)
	t0 := e.clock()
	var ev *influence.Evaluator
	if e.cfg.ColdPrepare {
		ev = e.fw.PrepareSession(e.cfg.Components, e.cfg.Seed, e.cfg.Parallelism).Prepare(inst)
	} else {
		ev = e.sess.Prepare(inst)
	}
	prep := e.clock() - t0
	t1 := e.clock()
	var pairs []assign.Pair
	scanTiles := 0
	if e.cfg.ColdPairs || e.sess == nil {
		if e.cfg.TiledColdPairs {
			pairs, scanTiles = assign.TiledFeasiblePairs(inst, e.fw.Speed(), e.cfg.Parallelism)
		} else {
			pairs = assign.FeasiblePairs(inst, e.fw.Speed())
		}
	} else {
		pairs = e.sess.Pairs(inst)
	}
	pairMaint := e.clock() - t1
	set, m, ts := e.fw.AssignPreparedPairsTiled(inst, ev, e.cfg.Algorithm, pairs, e.cfg.Parallelism)
	ts.Tiles = scanTiles
	ir := InstantResult{
		At: now, OnlineWorkers: len(e.workers), OpenTasks: len(e.tasks),
		Prepare: prep, PairMaint: pairMaint, Metrics: m, Tiles: ts,
		Expired: expired, Pairs: set.Pairs, Assigned: stablePairs(inst, set),
	}
	e.totals.Assigned += set.Len()
	e.retire(set)
	return ir
}

// instance materializes the current pool as a model.Instance. Entities
// keep their stable platform ids; position i of the instance is position
// i of the pool, which is the instance-local mapping retire relies on.
func (e *Engine) instance(now float64) *model.Instance {
	inst := &model.Instance{Now: now}
	inst.Workers = append([]model.Worker(nil), e.workers...)
	inst.Tasks = append([]model.Task(nil), e.tasks...)
	return inst
}

// stablePairs translates the instant's positional assignment into
// platform-stable identities using the instant's snapshot.
func stablePairs(inst *model.Instance, set *model.AssignmentSet) []AssignedPair {
	if set.Len() == 0 {
		return nil
	}
	out := make([]AssignedPair, set.Len())
	for i, pr := range set.Pairs {
		w := inst.Workers[pr.Worker]
		t := inst.Tasks[pr.Task]
		out[i] = AssignedPair{
			Task: t.ID, Worker: w.ID, User: w.User,
			Influence: set.Influence[i], TravelKm: set.TravelKm[i],
		}
	}
	return out
}

// retire removes assigned workers and tasks from the pool (workers go
// offline once assigned, tasks are served once). Pairs index the
// instant's snapshot, whose order equals pool order. The mark slices are
// reused across instants and reset while compacting, so the hot loop
// allocates nothing once the pools reach steady size.
func (e *Engine) retire(set *model.AssignmentSet) {
	e.usedW = resize(e.usedW, len(e.workers))
	e.usedT = resize(e.usedT, len(e.tasks))
	for _, pr := range set.Pairs {
		e.usedW[pr.Worker] = true
		e.usedT[pr.Task] = true
	}
	keptW := e.workers[:0]
	for i, w := range e.workers {
		used := e.usedW[i]
		e.usedW[i] = false
		if !used {
			keptW = append(keptW, w)
		}
	}
	e.workers = keptW
	keptT := e.tasks[:0]
	for i, t := range e.tasks {
		used := e.usedT[i]
		e.usedT[i] = false
		if !used {
			keptT = append(keptT, t)
		}
	}
	e.tasks = keptT
}

// resize returns marks with length n, reusing its backing array when it
// is large enough. Reused entries are already false: retire resets every
// mark while compacting, and fresh allocations are zeroed.
func resize(marks []bool, n int) []bool {
	if cap(marks) < n {
		return make([]bool, n)
	}
	return marks[:n]
}

// Session returns the engine's influence session, or nil under
// ColdPrepare.
func (e *Engine) Session() *core.Session { return e.sess }

// Online returns the number of currently online (unassigned) workers.
func (e *Engine) Online() int { return len(e.workers) }

// Open returns the number of currently open (unassigned, unexpired)
// tasks.
func (e *Engine) Open() int { return len(e.tasks) }

// Pending returns the number of events applied since the last instant —
// the queue depth a batch trigger fires on.
func (e *Engine) Pending() int { return e.pending }

// Totals returns the engine's cumulative counters.
func (e *Engine) Totals() Totals { return e.totals }
