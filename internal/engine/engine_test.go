package engine_test

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"dita/internal/assign"
	"dita/internal/core"
	"dita/internal/dataset"
	"dita/internal/engine"
	"dita/internal/geo"
	"dita/internal/lda"
	"dita/internal/model"
	"dita/internal/paralleltest"
	"dita/internal/randx"
	"dita/internal/simulate"
)

func testFramework(t *testing.T) (*core.Framework, *dataset.Data) {
	t.Helper()
	p := dataset.BrightkiteLike()
	p.NumUsers = 150
	p.NumVenues = 200
	p.Days = 6
	p.Seed = 21
	data, err := dataset.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cutoff := 5 * 24.0
	docs, vocab := data.Documents(cutoff)
	fw, err := core.Train(core.TrainingData{
		Graph:     data.Graph,
		Histories: data.HistoriesBefore(cutoff),
		Documents: docs,
		Vocab:     vocab,
		Records:   data.CheckInsBefore(cutoff),
	}, core.Config{LDA: lda.Config{Topics: 8, TrainIters: 30}})
	if err != nil {
		t.Fatal(err)
	}
	return fw, data
}

// streams builds time-sorted worker/task arrival streams over one
// simulated day.
func streams(data *dataset.Data, n int, seed uint64) ([]engine.WorkerArrival, []engine.TaskArrival) {
	rng := randx.New(seed)
	var ws []engine.WorkerArrival
	var ts []engine.TaskArrival
	for i := 0; i < n; i++ {
		u := model.WorkerID(rng.Intn(data.Params.NumUsers))
		ws = append(ws, engine.WorkerArrival{
			User:   u,
			Loc:    data.Homes[u],
			Radius: 25,
			At:     120 + rng.Float64()*12,
		})
		v := data.Venues[rng.Intn(len(data.Venues))]
		ts = append(ts, engine.TaskArrival{
			Loc: v.Loc, Publish: 120 + rng.Float64()*12, Valid: 3 + rng.Float64()*3,
			Categories: v.Categories, Venue: v.ID,
		})
	}
	sortArrivals(ws, ts)
	return ws, ts
}

func sortArrivals(ws []engine.WorkerArrival, ts []engine.TaskArrival) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].At < ws[j-1].At; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Publish < ts[j-1].Publish; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// normalize strips the only legitimately run-dependent values — wall
// clock measurements — so instant records compare bit for bit.
func normalize(instants []engine.InstantResult) []engine.InstantResult {
	out := append([]engine.InstantResult(nil), instants...)
	for i := range out {
		out[i].Prepare = 0
		out[i].PairMaint = 0
		out[i].Metrics.CPU = 0
	}
	return out
}

// replayGrid drives a bare engine with an explicit event stream on the
// same integer instant grid the replay driver uses: admissions up to
// each instant (workers, then tasks, in arrival order), then an
// InstantFire event.
func replayGrid(t *testing.T, e *engine.Engine, ws []engine.WorkerArrival, ts []engine.TaskArrival, start, step, horizon float64) []engine.InstantResult {
	t.Helper()
	var out []engine.InstantResult
	wi, ti := 0, 0
	count := int(math.Floor(horizon/step + 1e-9))
	for i := 0; i <= count; i++ {
		now := start + float64(i)*step
		for wi < len(ws) && ws[wi].At <= now {
			if _, err := e.Apply(engine.Event{Kind: engine.WorkerArrive, At: now, Worker: ws[wi]}); err != nil {
				t.Fatal(err)
			}
			wi++
		}
		for ti < len(ts) && ts[ti].Publish <= now {
			if _, err := e.Apply(engine.Event{Kind: engine.TaskArrive, At: now, Task: ts[ti]}); err != nil {
				t.Fatal(err)
			}
			ti++
		}
		ap, err := e.Apply(engine.Event{Kind: engine.InstantFire, At: now})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, *ap.Instant)
	}
	return out
}

// TestEngineReplayMatchesPlatformRun is the tentpole's acceptance gate:
// simulate.Platform.Run is now a replay driver over the engine, and an
// explicit event stream driven through Engine.Apply — the form
// dita-serve ingests — must reproduce the whole run bit for bit
// (DeepEqual after stripping wall-clock fields) at Parallelism 1, 2 and
// 8, clockless engine against the platform's real-clock one.
func TestEngineReplayMatchesPlatformRun(t *testing.T) {
	fw, data := testFramework(t)
	ws, ts := streams(data, 50, 11)
	const start, step, horizon = 120, 2, 16
	for _, par := range paralleltest.WorkerCounts {
		p, err := simulate.New(fw, simulate.Config{
			Algorithm: assign.IA, Step: step, Start: start, Horizon: horizon,
			Seed: 5, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(ws, ts)
		if err != nil {
			t.Fatal(err)
		}
		e, err := engine.New(fw, engine.Config{
			Algorithm: assign.IA, Seed: 5, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := replayGrid(t, e, ws, ts, start, step, horizon)
		if res.TotalAssigned == 0 {
			t.Fatal("equivalence run assigned nothing; streams too sparse to gate anything")
		}
		if !reflect.DeepEqual(normalize(res.Instants), normalize(got)) {
			t.Fatalf("parallelism %d: event-driven engine diverged from Platform.Run replay", par)
		}
		tot := e.Totals()
		if tot.Assigned != res.TotalAssigned || tot.Expired != res.ExpiredTasks {
			t.Fatalf("parallelism %d: totals %+v vs platform %d assigned / %d expired",
				par, tot, res.TotalAssigned, res.ExpiredTasks)
		}
		if tot.Instants != len(res.Instants) {
			t.Fatalf("parallelism %d: %d instants counted, %d recorded", par, tot.Instants, len(res.Instants))
		}
	}
}

// TestEngineDepartureAndWithdrawal covers the two event kinds the batch
// replay never exercises: explicit worker departures and task
// withdrawals, including the unknown-id error contract dita-serve maps
// to 404s.
func TestEngineDepartureAndWithdrawal(t *testing.T) {
	fw, data := testFramework(t)
	ws, ts := streams(data, 10, 7)
	e, err := engine.New(fw, engine.Config{Algorithm: assign.IA, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var wids []model.WorkerID
	var tids []model.TaskID
	for _, w := range ws {
		ap, err := e.Apply(engine.Event{Kind: engine.WorkerArrive, Worker: w})
		if err != nil {
			t.Fatal(err)
		}
		wids = append(wids, ap.WorkerID)
	}
	for _, task := range ts {
		ap, err := e.Apply(engine.Event{Kind: engine.TaskArrive, Task: task})
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, ap.TaskID)
	}
	if e.Online() != len(ws) || e.Open() != len(ts) {
		t.Fatalf("pools %d/%d after %d/%d arrivals", e.Online(), e.Open(), len(ws), len(ts))
	}
	// Depart one worker and withdraw one task from the middle of the
	// pool.
	if _, err := e.Apply(engine.Event{Kind: engine.WorkerDepart, WorkerID: wids[3]}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(engine.Event{Kind: engine.TaskExpire, TaskID: tids[4]}); err != nil {
		t.Fatal(err)
	}
	if e.Online() != len(ws)-1 || e.Open() != len(ts)-1 {
		t.Fatalf("pools %d/%d after one departure and one withdrawal", e.Online(), e.Open())
	}
	// Departed entities are gone: repeating the event must fail.
	if _, err := e.Apply(engine.Event{Kind: engine.WorkerDepart, WorkerID: wids[3]}); !errors.Is(err, engine.ErrUnknownWorker) {
		t.Fatalf("second departure: %v, want ErrUnknownWorker", err)
	}
	if _, err := e.Apply(engine.Event{Kind: engine.TaskExpire, TaskID: tids[4]}); !errors.Is(err, engine.ErrUnknownTask) {
		t.Fatalf("second withdrawal: %v, want ErrUnknownTask", err)
	}
	tot := e.Totals()
	if tot.Departed != 1 || tot.Cancelled != 1 {
		t.Fatalf("totals %+v, want 1 departed / 1 cancelled", tot)
	}
	// The departed worker and withdrawn task never appear in an
	// assignment.
	ir := e.Fire(ws[len(ws)-1].At + 1)
	for _, pr := range ir.Assigned {
		if pr.Worker == wids[3] {
			t.Errorf("departed worker %d was assigned", pr.Worker)
		}
		if pr.Task == tids[4] {
			t.Errorf("withdrawn task %d was assigned", pr.Task)
		}
	}
	// Stable ids round-trip: every assigned pair names ids the engine
	// actually minted.
	minted := map[model.WorkerID]bool{}
	for _, id := range wids {
		minted[id] = true
	}
	for _, pr := range ir.Assigned {
		if !minted[pr.Worker] {
			t.Errorf("assigned worker id %d was never minted", pr.Worker)
		}
	}
}

// TestEngineTriggers pins the trigger contract: a batch trigger
// volunteers an instant exactly at its threshold, tick and manual
// triggers never volunteer on queue depth, and firing resets the
// pending count.
func TestEngineTriggers(t *testing.T) {
	fw, data := testFramework(t)
	ws, _ := streams(data, 6, 3)
	e, err := engine.New(fw, engine.Config{
		Algorithm: assign.IA, Seed: 1, Trigger: engine.BatchTrigger{N: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range ws[:3] {
		ap, err := e.Apply(engine.Event{Kind: engine.WorkerArrive, Worker: w})
		if err != nil {
			t.Fatal(err)
		}
		if want := i == 2; ap.FireNow != want {
			t.Fatalf("event %d: FireNow %v, want %v", i, ap.FireNow, want)
		}
	}
	if e.Pending() != 3 {
		t.Fatalf("pending %d, want 3", e.Pending())
	}
	e.Fire(ws[2].At)
	if e.Pending() != 0 {
		t.Fatalf("pending %d after fire, want 0", e.Pending())
	}
	for _, trig := range []engine.Trigger{engine.TickTrigger{Every: time.Second}, engine.ManualTrigger{}} {
		if trig.FireOnPending(1 << 20) {
			t.Errorf("%T fired on queue depth", trig)
		}
	}
	if (engine.BatchTrigger{N: 3, Fallback: time.Minute}).TickEvery() != time.Minute {
		t.Error("batch fallback period lost")
	}
	if (engine.TickTrigger{Every: time.Second}).TickEvery() != time.Second {
		t.Error("tick period lost")
	}
}

// TestEngineSessionCapacityAdversarialStream is the bounded-memory gate:
// a stream of entities that arrive, never match and never leave (far
// corner, zero-radius workers, tasks valid past the horizon) grows the
// live pool without bound — the capped session must hold its caches at
// the capacity while producing results bit-identical to the unbounded
// run (evicted-but-live entities recompute identical state), at
// Parallelism 1, 2 and 8.
func TestEngineSessionCapacityAdversarialStream(t *testing.T) {
	fw, data := testFramework(t)
	// A servable stream interleaved with an adversarial one.
	ws, ts := streams(data, 30, 19)
	rng := randx.New(77)
	for i := 0; i < 60; i++ {
		far := geo.Point{X: 500 + rng.Float64(), Y: 500 + rng.Float64()}
		ws = append(ws, engine.WorkerArrival{
			User: model.WorkerID(rng.Intn(data.Params.NumUsers)), Loc: far,
			Radius: 0.001, At: 120 + rng.Float64()*12,
		})
		ts = append(ts, engine.TaskArrival{
			Loc:     geo.Point{X: -500 - rng.Float64(), Y: -500 - rng.Float64()},
			Publish: 120 + rng.Float64()*12, Valid: 1e6, Venue: 1,
		})
	}
	sortArrivals(ws, ts)
	const cap = 25
	run := func(capacity, par int) (*simulate.Result, *simulate.Platform) {
		p, err := simulate.New(fw, simulate.Config{
			Algorithm: assign.IA, Step: 1, Start: 120, Horizon: 16,
			Seed: 9, Parallelism: par, SessionCapacity: capacity,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(ws, ts)
		if err != nil {
			t.Fatal(err)
		}
		res.Instants = normalize(res.Instants)
		return res, p
	}
	want, pw := run(0, 1)
	if want.TotalAssigned == 0 {
		t.Fatal("adversarial run assigned nothing; the servable substream is too sparse")
	}
	// The adversarial entities must actually outgrow the capacity, or the
	// bound is never exercised.
	if pw.Online() <= cap || pw.Open() <= cap {
		t.Fatalf("live pool %d workers / %d tasks never exceeded capacity %d",
			pw.Online(), pw.Open(), cap)
	}
	unboundedSess := pw.Session().Influence()
	if unboundedSess.CachedTasks() <= cap {
		t.Fatalf("unbounded cache holds %d tasks; the stream never stressed the bound", unboundedSess.CachedTasks())
	}
	for _, par := range paralleltest.WorkerCounts {
		got, p := run(cap, par)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("parallelism %d: capped session diverged from the unbounded run", par)
		}
		sess := p.Session().Influence()
		if sess.CachedTasks() > cap || sess.CachedWorkers() > cap {
			t.Fatalf("parallelism %d: caches hold %d tasks / %d workers, capacity %d",
				par, sess.CachedTasks(), sess.CachedWorkers(), cap)
		}
	}
}

// TestEngineAssignCSVByteIdentical pins the streaming CSV form: two
// identical runs render byte-identical files, the header is stable, and
// every assigned pair of the run appears exactly once.
func TestEngineAssignCSVByteIdentical(t *testing.T) {
	fw, data := testFramework(t)
	ws, ts := streams(data, 40, 5)
	run := func() ([]byte, int) {
		e, err := engine.New(fw, engine.Config{Algorithm: assign.IA, Seed: 3, Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		instants := replayGrid(t, e, ws, ts, 120, 2, 14)
		return engine.AssignCSV(instants), e.Totals().Assigned
	}
	a, assigned := run()
	b, _ := run()
	if !bytes.Equal(a, b) {
		t.Fatal("streaming assignment CSV not byte-identical across identical runs")
	}
	lines := bytes.Split(bytes.TrimSuffix(a, []byte("\n")), []byte("\n"))
	if string(lines[0]) != "at,task,worker,user,influence,travel_km" {
		t.Fatalf("header %q", lines[0])
	}
	if assigned == 0 {
		t.Fatal("CSV run assigned nothing")
	}
	if len(lines)-1 != assigned {
		t.Fatalf("%d CSV rows, %d assignments", len(lines)-1, assigned)
	}
}
