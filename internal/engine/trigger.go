package engine

import "time"

// Trigger is an instant-firing policy. The engine itself never fires an
// instant spontaneously — it has no clock authority and no goroutines —
// so a trigger expresses policy in two halves the front-end executes:
// FireOnPending is consulted synchronously after every applied event
// (Applied.FireNow), and TickEvery tells a real-time front-end how often
// to fire on wall time (zero: never; the replay driver ignores it and
// fires on its simulated grid).
type Trigger interface {
	// FireOnPending reports whether an instant should fire now, given
	// the number of events applied since the last instant.
	FireOnPending(pending int) bool
	// TickEvery returns the wall-time firing period for real-time
	// front-ends, or 0 for purely event-count-driven policies.
	TickEvery() time.Duration
}

// TickTrigger fires on a fixed wall-time period and never on queue
// depth — the serving analogue of the simulator's fixed instant grid.
type TickTrigger struct {
	// Every is the firing period.
	Every time.Duration
}

// FireOnPending always reports false: a tick trigger is time-driven.
func (TickTrigger) FireOnPending(int) bool { return false }

// TickEvery returns the configured period.
func (t TickTrigger) TickEvery() time.Duration { return t.Every }

// BatchTrigger fires as soon as N events have accumulated since the
// last instant, with an optional wall-time fallback so a trickle of
// arrivals below the threshold still gets assigned.
type BatchTrigger struct {
	// N is the batch-size threshold.
	N int
	// Fallback is the maximum wall time between instants regardless of
	// queue depth; 0 disables the fallback.
	Fallback time.Duration
}

// FireOnPending reports whether the batch threshold is reached.
func (b BatchTrigger) FireOnPending(pending int) bool {
	return b.N > 0 && pending >= b.N
}

// TickEvery returns the wall-time fallback period.
func (b BatchTrigger) TickEvery() time.Duration { return b.Fallback }

// ManualTrigger never fires on its own: instants happen only when the
// caller explicitly requests one (the replay driver's grid, a test, or
// dita-serve's /instant endpoint).
type ManualTrigger struct{}

// FireOnPending always reports false.
func (ManualTrigger) FireOnPending(int) bool { return false }

// TickEvery returns 0: no wall-time firing.
func (ManualTrigger) TickEvery() time.Duration { return 0 }
