// Package mobility implements the Historical Acceptance (HA) approach of
// Section III-B: the probability Pwil(w, s) that worker w is willing to
// visit the location of task s, derived from the worker's historical
// task-performing records.
//
// HA combines two parts:
//
//  1. A stationary distribution Pw(w, si) over the locations the worker
//     has performed tasks at, computed with Random Walk with Restart over
//     the worker's location-transition structure. (The paper's weight
//     matrix is row-normalized over visited locations; we walk the
//     observed consecutive-visit transitions with a restart to the
//     empirical visit distribution, which reduces to the paper's uniform
//     construction when every location is visited equally often.)
//  2. A Pareto tail probability of moving distance d(si, s): the movement
//     lengths are self-similar, so P[move ≥ x] = (x+1)^(−π) with the
//     shape π fitted by maximum likelihood (Equation 1).
//
// The willingness is Equation 2:
//
//	Pwil(w,s) = Σ_i Pw(w,si) · (d(si,s)+1)^(−π)
package mobility

import (
	"fmt"
	"math"
	"slices"

	"dita/internal/geo"
	"dita/internal/model"
	"dita/internal/parallel"
)

// Config controls HA model fitting. Zero values select defaults: restart
// probability 0.15, power-iteration tolerance 1e-10, 200 max iterations,
// default Pareto shape 2 for degenerate histories, shape clamped to
// [0.05, 16].
type Config struct {
	RestartProb  float64 `json:"restart_prob"`
	Tolerance    float64 `json:"tolerance"`
	MaxIters     int     `json:"max_iters"`
	DefaultShape float64 `json:"default_shape"`
	MinShape     float64 `json:"min_shape"`
	MaxShape     float64 `json:"max_shape"`
	// Parallelism bounds the fitting worker goroutines; <= 0 means
	// runtime.GOMAXPROCS(0). Per-worker fits are independent and draw no
	// randomness, so the fitted model is bit-identical at any setting.
	// The knob is a runtime choice, not part of the model identity, so
	// the fitted Model does not retain it.
	Parallelism int `json:"parallelism,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.RestartProb <= 0 || c.RestartProb >= 1 {
		c.RestartProb = 0.15
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-10
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 200
	}
	if c.DefaultShape <= 0 {
		c.DefaultShape = 2
	}
	if c.MinShape <= 0 {
		c.MinShape = 0.05
	}
	if c.MaxShape <= 0 {
		c.MaxShape = 16
	}
	return c
}

// WorkerModel is the fitted HA state for one worker: the distinct
// locations of performed tasks, their stationary probabilities, and the
// Pareto shape of the worker's movement lengths.
type WorkerModel struct {
	Locs       []geo.Point
	Stationary []float64
	Shape      float64
}

// Willingness evaluates Equation 2 at the given task location. A worker
// with no history has zero willingness everywhere (they have never
// accepted anything).
func (wm *WorkerModel) Willingness(loc geo.Point) float64 {
	sum := 0.0
	for i, p := range wm.Locs {
		d := geo.Dist(p, loc)
		sum += wm.Stationary[i] * math.Pow(d+1, -wm.Shape)
	}
	return sum
}

// Model holds fitted worker models keyed by stable user id.
type Model struct {
	cfg     Config
	workers map[model.WorkerID]*WorkerModel
}

// Fit builds HA models for every worker with a history, fitting workers
// concurrently on the shared pool (each fit is independent: RWR power
// iteration plus the Pareto MLE, no randomness). Histories must be (or
// will be treated as) ordered by check-in time; Fit sorts defensively.
func Fit(histories map[model.WorkerID]model.History, cfg Config) *Model {
	cfg = cfg.withDefaults()
	ids := make([]model.WorkerID, 0, len(histories))
	for id, h := range histories {
		if len(h) == 0 {
			continue
		}
		ids = append(ids, id)
	}
	// Map iteration order is random; sorting pins item indices so every
	// run fits the same worker under the same index.
	slices.Sort(ids)
	fitted := make([]*WorkerModel, len(ids))
	parallel.For(parallel.Workers(cfg.Parallelism), len(ids), func(_, i int) {
		h := histories[ids[i]]
		h.SortByTime()
		fitted[i] = fitWorker(h, cfg)
	})
	cfg.Parallelism = 0 // runtime knob, not model identity
	m := &Model{cfg: cfg, workers: make(map[model.WorkerID]*WorkerModel, len(ids))}
	for i, id := range ids {
		m.workers[id] = fitted[i]
	}
	return m
}

// Worker returns the fitted model for a user, or nil when the user has no
// history.
func (m *Model) Worker(id model.WorkerID) *WorkerModel { return m.workers[id] }

// Willingness returns Pwil(w, s) for user id and a task location; zero
// when the user has no history.
func (m *Model) Willingness(id model.WorkerID, loc geo.Point) float64 {
	wm := m.workers[id]
	if wm == nil {
		return 0
	}
	return wm.Willingness(loc)
}

// NumWorkers returns how many workers have fitted models.
func (m *Model) NumWorkers() int { return len(m.workers) }

func fitWorker(h model.History, cfg Config) *WorkerModel {
	// Distinct locations in first-visit order; visits counted per venue.
	index := make(map[model.VenueID]int)
	var locs []geo.Point
	visits := []float64{}
	seq := make([]int, len(h)) // per record: its location state index
	for i, c := range h {
		j, ok := index[c.Venue]
		if !ok {
			j = len(locs)
			index[c.Venue] = j
			locs = append(locs, c.Loc)
			visits = append(visits, 0)
		}
		visits[j]++
		seq[i] = j
	}
	n := len(locs)
	wm := &WorkerModel{
		Locs:       locs,
		Stationary: stationaryRWR(n, seq, visits, cfg),
		Shape:      FitParetoShape(movementSamples(h), cfg),
	}
	return wm
}

// movementSamples returns x_i = d(s_i, s_{i+1}) + 1 over consecutive
// performed tasks, the samples Equation 1's MLE consumes.
func movementSamples(h model.History) []float64 {
	if len(h) < 2 {
		return nil
	}
	xs := make([]float64, 0, len(h)-1)
	for i := 0; i+1 < len(h); i++ {
		xs = append(xs, geo.Dist(h[i].Loc, h[i+1].Loc)+1)
	}
	return xs
}

// FitParetoShape implements Equation 1: π = (n)/Σ ln x_i over n samples
// with x_i ≥ 1 (the paper writes |Sw|−1 samples for a history of |Sw|
// records; here n = len(xs) is already that count). When Σ ln x_i = 0 —
// the worker never moved — the paper's formula is undefined and the
// configured default shape is returned. The result is clamped to
// [MinShape, MaxShape] to keep downstream powers stable.
func FitParetoShape(xs []float64, cfg Config) float64 {
	cfg = cfg.withDefaults()
	if len(xs) == 0 {
		return cfg.DefaultShape
	}
	sumLn := 0.0
	for _, x := range xs {
		if x < 1 {
			x = 1
		}
		sumLn += math.Log(x)
	}
	if sumLn <= 0 {
		return cfg.DefaultShape
	}
	pi := float64(len(xs)) / sumLn
	if pi < cfg.MinShape {
		pi = cfg.MinShape
	}
	if pi > cfg.MaxShape {
		pi = cfg.MaxShape
	}
	return pi
}

// stationaryRWR computes the Random Walk with Restart stationary
// distribution over the worker's n distinct locations. The transition
// matrix follows the observed consecutive-visit transitions (row
// normalized); states without outgoing transitions redistribute uniformly
// (standard dangling-node handling). The restart vector is the empirical
// visit distribution.
func stationaryRWR(n int, seq []int, visits []float64, cfg Config) []float64 {
	if n == 1 {
		return []float64{1}
	}
	// Sparse transition counts, folded into per-state adjacency lists
	// sorted by destination before the power iteration: the hot loop
	// never ranges over a map (iteration order is randomized and the
	// dita-lint maporder invariant forbids accumulating under it), and
	// the presorted slices are cheaper to walk per iteration anyway.
	counts := make([]map[int]float64, n)
	outTotal := make([]float64, n)
	for i := 0; i+1 < len(seq); i++ {
		a, b := seq[i], seq[i+1]
		if counts[a] == nil {
			counts[a] = make(map[int]float64)
		}
		counts[a][b]++
		outTotal[a]++
	}
	type edge struct {
		to int
		w  float64
	}
	trans := make([][]edge, n)
	for a, m := range counts {
		for b, w := range m {
			trans[a] = append(trans[a], edge{to: b, w: w})
		}
		slices.SortFunc(trans[a], func(x, y edge) int { return x.to - y.to })
	}
	// Restart vector: empirical visit frequencies.
	restart := make([]float64, n)
	totalVisits := 0.0
	for _, v := range visits {
		totalVisits += v
	}
	for i, v := range visits {
		restart[i] = v / totalVisits
	}

	p := make([]float64, n)
	next := make([]float64, n)
	copy(p, restart)
	c := 1 - cfg.RestartProb // continue probability
	for iter := 0; iter < cfg.MaxIters; iter++ {
		dangling := 0.0
		for i := range next {
			next[i] = 0
		}
		for a := 0; a < n; a++ {
			if outTotal[a] == 0 {
				dangling += p[a]
				continue
			}
			for _, e := range trans[a] {
				next[e.to] += p[a] * e.w / outTotal[a]
			}
		}
		diff := 0.0
		for i := 0; i < n; i++ {
			v := c*(next[i]+dangling/float64(n)) + cfg.RestartProb*restart[i]
			diff += math.Abs(v - p[i])
			next[i] = v
		}
		p, next = next, p
		if diff < cfg.Tolerance {
			break
		}
	}
	// Normalize defensively against floating point drift.
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if sum > 0 {
		for i := range p {
			p[i] /= sum
		}
	}
	return p
}

// WorkerWire is one worker's fitted HA state in serialized form.
type WorkerWire struct {
	ID         model.WorkerID `json:"id"`
	Locs       []geo.Point    `json:"locs"`
	Stationary []float64      `json:"stationary"`
	Shape      float64        `json:"shape"`
}

// Wire is the fitted model's serialized form, part of the framework
// artifact's pinned wire format (see internal/fwio). Workers are listed
// in ascending id order so the encoding is canonical: byte-identical
// runs produce byte-identical artifacts.
type Wire struct {
	Config  Config       `json:"config"`
	Workers []WorkerWire `json:"workers"`
}

// Wire returns the model's serialized form. Per-worker slices alias
// model storage; callers must treat them as read-only.
func (m *Model) Wire() Wire {
	ids := make([]model.WorkerID, 0, len(m.workers))
	for id := range m.workers {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	w := Wire{Config: m.cfg, Workers: make([]WorkerWire, len(ids))}
	for i, id := range ids {
		wm := m.workers[id]
		w.Workers[i] = WorkerWire{ID: id, Locs: wm.Locs, Stationary: wm.Stationary, Shape: wm.Shape}
	}
	return w
}

// FromWire rebuilds a fitted model from its serialized form. Worker ids
// must be strictly ascending (the canonical order Wire emits; it also
// rules out duplicate entries silently overwriting each other) and each
// worker's location and stationary vectors must align. The Parallelism
// knob is forced to zero, as Fit does: it is a runtime choice, not
// model identity.
func FromWire(w Wire) (*Model, error) {
	cfg := w.Config
	cfg.Parallelism = 0
	m := &Model{cfg: cfg, workers: make(map[model.WorkerID]*WorkerModel, len(w.Workers))}
	for i, ww := range w.Workers {
		if i > 0 && ww.ID <= w.Workers[i-1].ID {
			return nil, fmt.Errorf("mobility: wire workers not strictly ascending at index %d (%d after %d)", i, ww.ID, w.Workers[i-1].ID)
		}
		if len(ww.Locs) == 0 {
			return nil, fmt.Errorf("mobility: wire worker %d has no locations (Fit never emits empty models)", ww.ID)
		}
		if len(ww.Locs) != len(ww.Stationary) {
			return nil, fmt.Errorf("mobility: wire worker %d has %d locations but %d stationary probabilities", ww.ID, len(ww.Locs), len(ww.Stationary))
		}
		m.workers[ww.ID] = &WorkerModel{Locs: ww.Locs, Stationary: ww.Stationary, Shape: ww.Shape}
	}
	return m, nil
}
