package mobility

import (
	"fmt"
	"testing"

	"dita/internal/geo"
	"dita/internal/model"
	"dita/internal/randx"
)

func benchHistories(nWorkers, visits int, seed uint64) map[model.WorkerID]model.History {
	rng := randx.New(seed)
	out := make(map[model.WorkerID]model.History, nWorkers)
	for u := 0; u < nWorkers; u++ {
		var h model.History
		pos := geo.Point{X: rng.Float64() * 300, Y: rng.Float64() * 300}
		for i := 0; i < visits; i++ {
			jump := rng.Pareto(1, 1.5)
			pos = geo.Point{X: pos.X + jump, Y: pos.Y + jump/2}
			h = append(h, model.CheckIn{
				User: model.WorkerID(u), Venue: model.VenueID(rng.Intn(visits / 2)),
				Loc: pos, Arrive: float64(i), Complete: float64(i) + 0.5,
			})
		}
		out[model.WorkerID(u)] = h
	}
	return out
}

// BenchmarkFit measures Historical Acceptance fitting (RWR + Pareto MLE)
// for a paper-scale worker population.
func BenchmarkFit(b *testing.B) {
	hists := benchHistories(2400, 30, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fit(hists, Config{})
	}
}

// BenchmarkWillingness measures one Pwil(w, s) evaluation — the inner
// loop of the |W_G|×|S| willingness matrix.
func BenchmarkWillingness(b *testing.B) {
	hists := benchHistories(100, 30, 1)
	m := Fit(hists, Config{})
	loc := geo.Point{X: 150, Y: 150}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Willingness(model.WorkerID(i%100), loc)
	}
}

// BenchmarkFitParallel measures per-worker HA fitting at several pool
// widths over the same histories.
func BenchmarkFitParallel(b *testing.B) {
	hists := benchHistories(2400, 30, 1)
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Fit(hists, Config{Parallelism: par})
			}
		})
	}
}
