package mobility

import (
	"math"
	"testing"
	"testing/quick"

	"dita/internal/geo"
	"dita/internal/model"
	"dita/internal/paralleltest"
	"dita/internal/randx"
)

func record(user model.WorkerID, venue model.VenueID, x, y, t float64) model.CheckIn {
	return model.CheckIn{
		User: user, Venue: venue,
		Loc: geo.Point{X: x, Y: y}, Arrive: t, Complete: t + 0.5,
	}
}

func TestFitParetoShapeRecovers(t *testing.T) {
	// MLE on synthetic Pareto(1, α) samples must recover α. (Equation 1
	// with x ≥ 1, ω = 1.)
	rng := randx.New(1)
	for _, alpha := range []float64{0.8, 1.5, 3.0} {
		xs := make([]float64, 20000)
		for i := range xs {
			xs[i] = rng.Pareto(1, alpha)
		}
		got := FitParetoShape(xs, Config{MaxShape: 100})
		if math.Abs(got-alpha)/alpha > 0.05 {
			t.Errorf("alpha=%v: MLE %v off by more than 5%%", alpha, got)
		}
	}
}

func TestFitParetoShapeDegenerate(t *testing.T) {
	cfg := Config{DefaultShape: 2.5}
	if got := FitParetoShape(nil, cfg); got != 2.5 {
		t.Errorf("empty samples: %v, want default 2.5", got)
	}
	// All x_i = 1 (never moved): Σ ln x = 0 → default.
	if got := FitParetoShape([]float64{1, 1, 1}, cfg); got != 2.5 {
		t.Errorf("zero-movement samples: %v, want default 2.5", got)
	}
	// Values below 1 are clamped to 1 (distance + 1 ≥ 1 by construction,
	// but the API is defensive).
	if got := FitParetoShape([]float64{0.5, 0.1}, cfg); got != 2.5 {
		t.Errorf("sub-1 samples: %v, want default 2.5", got)
	}
}

func TestFitParetoShapeClamped(t *testing.T) {
	cfg := Config{MinShape: 0.5, MaxShape: 4}
	// Huge distances → tiny shape → clamped to MinShape.
	if got := FitParetoShape([]float64{1e9, 1e9}, cfg); got != 0.5 {
		t.Errorf("clamp low: %v, want 0.5", got)
	}
	// Barely-above-1 samples → huge shape → clamped to MaxShape.
	if got := FitParetoShape([]float64{1.0001, 1.0001}, cfg); got != 4 {
		t.Errorf("clamp high: %v, want 4", got)
	}
}

func TestStationaryDistributionSumsToOne(t *testing.T) {
	h := model.History{
		record(0, 0, 0, 0, 1),
		record(0, 1, 5, 0, 2),
		record(0, 0, 0, 0, 3),
		record(0, 2, 0, 5, 4),
		record(0, 1, 5, 0, 5),
	}
	m := Fit(map[model.WorkerID]model.History{0: h}, Config{})
	wm := m.Worker(0)
	if wm == nil {
		t.Fatal("no model fitted")
	}
	if len(wm.Locs) != 3 {
		t.Fatalf("distinct locations = %d, want 3", len(wm.Locs))
	}
	sum := 0.0
	for _, p := range wm.Stationary {
		if p < 0 {
			t.Fatalf("negative stationary probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("stationary distribution sums to %v", sum)
	}
}

func TestStationaryFavorsFrequentLocation(t *testing.T) {
	// Worker visits venue 0 five times and venue 1 once: the stationary
	// probability of venue 0 must dominate.
	h := model.History{
		record(0, 0, 0, 0, 1),
		record(0, 0, 0, 0, 2),
		record(0, 1, 9, 9, 3),
		record(0, 0, 0, 0, 4),
		record(0, 0, 0, 0, 5),
		record(0, 0, 0, 0, 6),
	}
	m := Fit(map[model.WorkerID]model.History{0: h}, Config{})
	wm := m.Worker(0)
	if wm.Stationary[0] <= wm.Stationary[1] {
		t.Errorf("stationary %v does not favor the frequent location", wm.Stationary)
	}
}

func TestWillingnessDecreasesWithDistance(t *testing.T) {
	h := model.History{
		record(0, 0, 0, 0, 1),
		record(0, 1, 2, 0, 2),
		record(0, 0, 0, 0, 3),
	}
	m := Fit(map[model.WorkerID]model.History{0: h}, Config{})
	near := m.Willingness(0, geo.Point{X: 1, Y: 0})
	far := m.Willingness(0, geo.Point{X: 50, Y: 0})
	veryFar := m.Willingness(0, geo.Point{X: 500, Y: 0})
	if !(near > far && far > veryFar) {
		t.Errorf("willingness not decreasing: near %v, far %v, very far %v", near, far, veryFar)
	}
	if veryFar < 0 {
		t.Errorf("willingness negative: %v", veryFar)
	}
}

func TestWillingnessAtVisitedLocationIsStationaryBound(t *testing.T) {
	// At distance 0 the Pareto tail term is (0+1)^(−π) = 1, so the
	// willingness equals Σ_i Pw(i)·(d_i+1)^{−π} ≤ 1 and at least the
	// stationary mass of that exact location.
	h := model.History{
		record(0, 0, 0, 0, 1),
		record(0, 1, 10, 0, 2),
		record(0, 0, 0, 0, 3),
	}
	m := Fit(map[model.WorkerID]model.History{0: h}, Config{})
	wm := m.Worker(0)
	w := wm.Willingness(geo.Point{X: 0, Y: 0})
	if w > 1+1e-9 {
		t.Errorf("willingness %v exceeds 1", w)
	}
	if w < wm.Stationary[0] {
		t.Errorf("willingness %v below the location's own stationary mass %v", w, wm.Stationary[0])
	}
}

func TestWillingnessUnknownWorkerZero(t *testing.T) {
	m := Fit(map[model.WorkerID]model.History{}, Config{})
	if got := m.Willingness(7, geo.Point{}); got != 0 {
		t.Errorf("unknown worker willingness = %v, want 0", got)
	}
	if m.Worker(7) != nil {
		t.Error("unknown worker has a model")
	}
}

func TestSingleVisitWorker(t *testing.T) {
	h := model.History{record(0, 3, 4, 4, 1)}
	m := Fit(map[model.WorkerID]model.History{0: h}, Config{DefaultShape: 2})
	wm := m.Worker(0)
	if len(wm.Locs) != 1 || wm.Stationary[0] != 1 {
		t.Fatalf("single-visit model wrong: %+v", wm)
	}
	if wm.Shape != 2 {
		t.Errorf("single-visit shape %v, want default 2", wm.Shape)
	}
	// Willingness = (d+1)^{-2} exactly.
	got := wm.Willingness(geo.Point{X: 7, Y: 8}) // distance 5
	want := math.Pow(6, -2)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("willingness = %v, want %v", got, want)
	}
}

func TestWillingnessPropertyNonNegativeBounded(t *testing.T) {
	rng := randx.New(5)
	var h model.History
	for i := 0; i < 30; i++ {
		h = append(h, record(0, model.VenueID(rng.Intn(8)),
			rng.Float64()*100, rng.Float64()*100, float64(i)))
	}
	// Venue locations must be consistent per venue id for realism; give
	// each venue a fixed location.
	venueLoc := make(map[model.VenueID]geo.Point)
	for i := range h {
		v := h[i].Venue
		if loc, ok := venueLoc[v]; ok {
			h[i].Loc = loc
		} else {
			venueLoc[v] = h[i].Loc
		}
	}
	m := Fit(map[model.WorkerID]model.History{0: h}, Config{})
	f := func(x, y float64) bool {
		p := geo.Point{X: math.Mod(math.Abs(x), 1000), Y: math.Mod(math.Abs(y), 1000)}
		w := m.Willingness(0, p)
		return w >= 0 && w <= 1+1e-9 && !math.IsNaN(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFitSortsUnorderedHistory(t *testing.T) {
	// Records arrive shuffled; the Pareto shape must be computed on the
	// time-ordered sequence. Distances differ wildly between orders, so
	// compare against a pre-sorted fit.
	unordered := model.History{
		record(0, 2, 100, 0, 3),
		record(0, 0, 0, 0, 1),
		record(0, 1, 1, 0, 2),
	}
	ordered := model.History{
		record(0, 0, 0, 0, 1),
		record(0, 1, 1, 0, 2),
		record(0, 2, 100, 0, 3),
	}
	a := Fit(map[model.WorkerID]model.History{0: unordered}, Config{})
	b := Fit(map[model.WorkerID]model.History{0: ordered}, Config{})
	if math.Abs(a.Worker(0).Shape-b.Worker(0).Shape) > 1e-12 {
		t.Errorf("shape differs between shuffled (%v) and ordered (%v) input",
			a.Worker(0).Shape, b.Worker(0).Shape)
	}
}

func TestNumWorkers(t *testing.T) {
	m := Fit(map[model.WorkerID]model.History{
		0: {record(0, 0, 0, 0, 1)},
		3: {record(3, 1, 2, 2, 1)},
		5: {}, // empty history → no model
	}, Config{})
	if got := m.NumWorkers(); got != 2 {
		t.Errorf("NumWorkers = %d, want 2", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.RestartProb != 0.15 || c.DefaultShape != 2 {
		t.Errorf("unexpected defaults: %+v", c)
	}
	if c.MinShape <= 0 || c.MaxShape <= c.MinShape {
		t.Errorf("shape clamp invalid: %+v", c)
	}
}

func TestFitParallelismInvariant(t *testing.T) {
	// Many workers with structured random histories: the fitted model
	// map must be bit-identical at any pool width.
	rng := randx.New(17)
	histories := make(map[model.WorkerID]model.History, 120)
	for u := 0; u < 120; u++ {
		n := 1 + rng.Intn(12)
		var h model.History
		for i := 0; i < n; i++ {
			h = append(h, record(model.WorkerID(u), model.VenueID(rng.Intn(6)),
				rng.Float64()*200, rng.Float64()*200, float64(n-i))) // reversed times exercise the sort
		}
		histories[model.WorkerID(u)] = h
	}
	paralleltest.Invariant(t, func(par int) any {
		return Fit(histories, Config{Parallelism: par}).workers
	})
}

func TestFitDoesNotRetainParallelism(t *testing.T) {
	m := Fit(map[model.WorkerID]model.History{0: {record(0, 0, 1, 1, 1)}}, Config{Parallelism: 5})
	if m.cfg.Parallelism != 0 {
		t.Errorf("model retained Parallelism %d; the knob is not part of model identity", m.cfg.Parallelism)
	}
}
