// Command propagation demonstrates the worker-propagation component in
// isolation: it builds a scale-free social network, runs the RPO
// algorithm (random reverse-reachable sets with the paper's adaptive
// bounds), cross-checks its estimates against forward Independent
// Cascade Monte Carlo simulation, and prints the most influential
// workers — the people a task issuer would want as seeds.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	"dita/internal/ic"
	"dita/internal/randx"
	"dita/internal/rrr"
	"dita/internal/socialgraph"
)

func main() {
	log.SetFlags(0)
	var (
		n      = flag.Int("n", 400, "workers in the social network")
		m      = flag.Int("m", 3, "friendships per arriving worker (preferential attachment)")
		eps    = flag.Float64("eps", 0.1, "RPO approximation parameter ε")
		trials = flag.Int("trials", 5000, "Monte Carlo IC trials for the cross-check")
		seed   = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	g := socialgraph.GeneratePreferentialAttachment(*n, *m, randx.New(*seed))
	fmt.Printf("social network: %d workers, %d directed edges\n", g.N(), g.M())

	start := time.Now() //dita:wallclock
	coll := rrr.Build(g, rrr.Params{Epsilon: *eps, Seed: *seed})
	st := coll.Stats()
	fmt.Printf("RPO: %d RRR sets in %.2fs (target %d, k_i=%.0f, σ lower bound %.2f, capped=%v)\n\n",
		coll.NumSets(), time.Since(start).Seconds(), st.TargetSets, st.Ki, st.SigmaLower, st.Capped) //dita:wallclock

	// Rank workers by informed range σ(ws).
	type ranked struct {
		w     int32
		sigma float64
	}
	rankings := make([]ranked, g.N())
	for w := int32(0); w < int32(g.N()); w++ {
		rankings[w] = ranked{w, coll.InformedRange(w)}
	}
	sort.Slice(rankings, func(i, j int) bool {
		if rankings[i].sigma != rankings[j].sigma {
			return rankings[i].sigma > rankings[j].sigma
		}
		return rankings[i].w < rankings[j].w
	})

	fmt.Println("top 10 workers by informed range σ(ws) — RPO vs Monte Carlo IC:")
	fmt.Printf("  %6s %10s %12s %12s %10s\n", "worker", "degree", "σ (RPO)", "σ (MC IC)", "|err|")
	model := ic.NewModel(g)
	rng := randx.New(*seed + 1)
	var worst float64
	for _, r := range rankings[:10] {
		mc := model.Spread([]int32{r.w}, *trials, rng)
		err := math.Abs(mc - r.sigma)
		if relErr := err / mc; relErr > worst {
			worst = relErr
		}
		fmt.Printf("  %6d %10d %12.3f %12.3f %10.3f\n",
			r.w, g.OutDegree(r.w), r.sigma, mc, err)
	}
	fmt.Printf("\nworst relative error among the top 10: %.1f%%\n", worst*100)

	// Show one concrete propagation vector: who hears about a task that
	// the top worker accepts?
	top := rankings[0].w
	wp := coll.Propagation(top)
	type reach struct {
		wi int32
		p  float64
	}
	var reaches []reach
	for wi, p := range wp {
		if p > 0 {
			reaches = append(reaches, reach{int32(wi), p})
		}
	}
	sort.Slice(reaches, func(i, j int) bool {
		if reaches[i].p != reaches[j].p {
			return reaches[i].p > reaches[j].p
		}
		return reaches[i].wi < reaches[j].wi
	})
	fmt.Printf("\nworker %d informs %d others with positive probability; strongest links:\n",
		top, len(reaches))
	for i, r := range reaches {
		if i == 8 {
			break
		}
		fmt.Printf("  -> worker %4d with probability %.3f (friend: %v)\n",
			r.wi, r.p, g.HasEdge(top, r.wi))
	}
}
