// Command restaurant recreates the paper's running example (Figure 1):
// two new restaurants publish promotion tasks and want workers who will
// spread the word, not merely the nearest ones.
//
// The program builds a small hand-crafted world — five candidate workers
// w1..w5 with distinct histories and social positions, two tasks s4 and
// s5 — trains the DITA framework on the history, prints the worker-task
// influence table (the analogue of Figure 1's table), and contrasts the
// greedy nearest-worker assignment with the influence-aware one.
package main

import (
	"fmt"
	"log"
	"sort"

	"dita/internal/assign"
	"dita/internal/core"
	"dita/internal/geo"
	"dita/internal/influence"
	"dita/internal/lda"
	"dita/internal/model"
	"dita/internal/socialgraph"
)

const (
	restaurantCategory = 0 // "restaurant" in our tiny taxonomy
	trafficCategory    = 1 // "traffic monitoring"
)

func main() {
	log.SetFlags(0)

	// Social network over 20 users. Users 0..4 are the candidate workers
	// w1..w5 of Figure 1; w4 (index 3) is a social hub connected to the
	// remaining 15 users, so anything w4 knows spreads widely.
	var edges []socialgraph.Edge
	add := func(a, b int32) {
		edges = append(edges, socialgraph.Edge{From: a, To: b}, socialgraph.Edge{From: b, To: a})
	}
	add(0, 1)
	add(1, 2)
	add(2, 4)
	for u := int32(5); u < 20; u++ {
		add(3, u) // w4's fan club
		if u > 5 {
			add(u, u-1)
		}
	}
	add(4, 5)
	graph := socialgraph.MustNew(20, edges)

	// Histories: w4 and the fan club perform restaurant tasks near the
	// city center; w3 monitors traffic on the outskirts; w5 mixes.
	histories := map[model.WorkerID]model.History{}
	docs := make([][]int32, 20)
	addHistory := func(u model.WorkerID, venue model.VenueID, loc geo.Point, hour float64, cat model.CategoryID) {
		histories[u] = append(histories[u], model.CheckIn{
			User: u, Venue: venue, Loc: loc,
			Arrive: hour, Complete: hour + 0.5,
			Categories: []model.CategoryID{cat},
		})
		docs[u] = append(docs[u], int32(cat))
	}
	// w1, w2: a few restaurant visits away from the new venues.
	addHistory(0, 10, geo.Point{X: 0.5, Y: 3.5}, 1, restaurantCategory)
	addHistory(0, 11, geo.Point{X: 1.0, Y: 3.0}, 2, restaurantCategory)
	addHistory(1, 12, geo.Point{X: 0.5, Y: 1.0}, 1, restaurantCategory)
	addHistory(1, 13, geo.Point{X: 1.0, Y: 1.5}, 2, trafficCategory)
	// w3: dedicated traffic monitor (low affinity for restaurant tasks).
	addHistory(2, 14, geo.Point{X: 3.5, Y: 0.5}, 1, trafficCategory)
	addHistory(2, 15, geo.Point{X: 3.0, Y: 1.0}, 2, trafficCategory)
	addHistory(2, 16, geo.Point{X: 3.5, Y: 1.5}, 3, trafficCategory)
	// w4: restaurant enthusiast who roams the center.
	addHistory(3, 17, geo.Point{X: 2.0, Y: 2.0}, 1, restaurantCategory)
	addHistory(3, 18, geo.Point{X: 2.5, Y: 2.5}, 2, restaurantCategory)
	addHistory(3, 19, geo.Point{X: 2.0, Y: 3.0}, 3, restaurantCategory)
	// w5: mixed tastes near the second venue.
	addHistory(4, 20, geo.Point{X: 3.8, Y: 3.8}, 1, restaurantCategory)
	addHistory(4, 21, geo.Point{X: 3.5, Y: 3.5}, 2, trafficCategory)
	// The fan club likes restaurants too, and lives near the center, so
	// w4's propagation lands on willing workers.
	for u := model.WorkerID(5); u < 20; u++ {
		addHistory(u, model.VenueID(22+int(u)), geo.Point{
			X: 1.5 + float64(u%4)*0.5,
			Y: 1.5 + float64(u%3)*0.5,
		}, float64(u%5)+1, restaurantCategory)
	}

	fw, err := core.Train(core.TrainingData{
		Graph:     graph,
		Histories: histories,
		Documents: docs,
		Vocab:     2,
		Records:   flatten(histories),
	}, core.Config{
		LDA: lda.Config{Topics: 2, Alpha: 0.5, TrainIters: 100, Seed: 7},
	})
	if err != nil {
		log.Fatalf("train: %v", err)
	}

	// Time instance t2: tasks s4 (center restaurant) and s5 (north-east
	// restaurant) become available; w1..w5 are online.
	inst := &model.Instance{
		Now: 100,
		Workers: []model.Worker{
			{ID: 0, User: 0, Loc: geo.Point{X: 0.8, Y: 3.2}, Radius: 4},
			{ID: 1, User: 1, Loc: geo.Point{X: 0.8, Y: 1.2}, Radius: 4},
			{ID: 2, User: 2, Loc: geo.Point{X: 2.2, Y: 1.4}, Radius: 4},
			{ID: 3, User: 3, Loc: geo.Point{X: 2.4, Y: 2.4}, Radius: 4},
			{ID: 4, User: 4, Loc: geo.Point{X: 3.6, Y: 3.6}, Radius: 4},
		},
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Point{X: 2.1, Y: 1.9}, Publish: 100, Valid: 5,
				Categories: []model.CategoryID{restaurantCategory}, Venue: 100},
			{ID: 1, Loc: geo.Point{X: 3.9, Y: 3.9}, Publish: 100, Valid: 5,
				Categories: []model.CategoryID{restaurantCategory}, Venue: 101},
		},
	}

	ev := fw.Prepare(inst, influence.All, 1)

	fmt.Println("Worker-task influence at t2 (rows: tasks s4, s5):")
	fmt.Printf("%8s", "")
	for i := range inst.Workers {
		fmt.Printf("%10s", fmt.Sprintf("w%d", i+1))
	}
	fmt.Println()
	for tIdx := range inst.Tasks {
		fmt.Printf("%8s", fmt.Sprintf("s%d", tIdx+4))
		for wIdx := range inst.Workers {
			fmt.Printf("%10.4f", ev.Influence(wIdx, tIdx))
		}
		fmt.Println()
	}

	fmt.Println("\nGreedy (each task to its nearest unassigned worker):")
	greedy := nearestGreedy(inst)
	reportPairs(inst, ev, greedy)

	fmt.Println("\nInfluence-aware (IA):")
	set, _ := fw.AssignPrepared(inst, ev, assign.IA, nil)
	var iaPairs [][2]int
	for _, pr := range set.Pairs {
		iaPairs = append(iaPairs, [2]int{int(pr.Worker), int(pr.Task)})
	}
	reportPairs(inst, ev, iaPairs)

	gSum, iaSum := pairsInfluence(ev, greedy), pairsInfluence(ev, iaPairs)
	fmt.Printf("\ntotal influence: greedy %.4f vs influence-aware %.4f\n", gSum, iaSum)
	if iaSum > gSum {
		fmt.Println("-> the influence-aware assignment promotes the restaurants better")
	}
}

func flatten(hists map[model.WorkerID]model.History) []model.CheckIn {
	var out []model.CheckIn
	ids := make([]model.WorkerID, 0, len(hists))
	for u := range hists {
		ids = append(ids, u)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, u := range ids {
		out = append(out, hists[u]...)
	}
	return out
}

// nearestGreedy assigns each task (in id order) to the nearest feasible
// unassigned worker — the straw-man strategy of the paper's introduction.
func nearestGreedy(inst *model.Instance) [][2]int {
	usedW := make([]bool, len(inst.Workers))
	var pairs [][2]int
	for tIdx, task := range inst.Tasks {
		best, bestD := -1, 0.0
		for wIdx, w := range inst.Workers {
			if usedW[wIdx] || !model.Feasible(w, task, inst.Now, 5) {
				continue
			}
			d := geo.Dist(w.Loc, task.Loc)
			if best < 0 || d < bestD {
				best, bestD = wIdx, d
			}
		}
		if best >= 0 {
			usedW[best] = true
			pairs = append(pairs, [2]int{best, tIdx})
		}
	}
	return pairs
}

func reportPairs(inst *model.Instance, ev *influence.Evaluator, pairs [][2]int) {
	for _, p := range pairs {
		w, s := p[0], p[1]
		fmt.Printf("  s%d -> w%d   influence %.4f, distance %.2f km\n",
			s+4, w+1, ev.Influence(w, s), geo.Dist(inst.Workers[w].Loc, inst.Tasks[s].Loc))
	}
}

func pairsInfluence(ev *influence.Evaluator, pairs [][2]int) float64 {
	sum := 0.0
	for _, p := range pairs {
		sum += ev.Influence(p[0], p[1])
	}
	return sum
}
