// Command quickstart is the smallest end-to-end use of the dita library:
// generate a synthetic geo-social dataset, train the DITA framework on
// its history, take one day's snapshot and assign tasks with the
// influence-aware algorithm, then print the resulting metrics.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"dita"
)

func main() {
	log.SetFlags(0)

	// A small Brightkite-flavoured world so the whole program runs in a
	// few seconds.
	params := dita.BrightkiteLike()
	params.NumUsers = 800
	params.NumVenues = 1000
	params.Days = 14

	start := time.Now() //dita:wallclock
	data, err := dita.Generate(params)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	fmt.Printf("dataset %q: %d users, %d venues, %d check-ins, %d social edges (%.1fs)\n",
		params.Name, params.NumUsers, params.NumVenues, data.NumCheckIns(), data.Graph.M(),
		time.Since(start).Seconds()) //dita:wallclock

	// Train on the first 12 days; evaluate on day 12.
	const evalDay = 12
	start = time.Now() //dita:wallclock
	fw, err := dita.Train(dita.TrainingDataFrom(data, evalDay*24), dita.Config{})
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	fmt.Printf("framework trained: %d RRR sets, %d workers with mobility models (%.1fs)\n",
		fw.Propagation().NumSets(), fw.Mobility().NumWorkers(), time.Since(start).Seconds()) //dita:wallclock

	inst, err := data.Snapshot(dita.SnapshotParams{
		Day:        evalDay,
		NumTasks:   300,
		NumWorkers: 240,
		ValidHours: 5,
		RadiusKm:   25,
		Seed:       1,
	})
	if err != nil {
		log.Fatalf("snapshot: %v", err)
	}

	start = time.Now() //dita:wallclock
	set, metrics := fw.Assign(inst, dita.IA, 1)
	fmt.Printf("influence model + IA assignment in %.1fs\n", time.Since(start).Seconds()) //dita:wallclock

	if err := set.Validate(len(inst.Tasks), len(inst.Workers)); err != nil {
		log.Fatalf("invalid assignment: %v", err)
	}

	fmt.Printf("\nIA on day %d: assigned %d/%d tasks\n", evalDay, metrics.Assigned, len(inst.Tasks))
	fmt.Printf("  average influence    %.4f\n", metrics.AI)
	fmt.Printf("  average propagation  %.4f\n", metrics.AP)
	fmt.Printf("  average travel       %.2f km\n", metrics.TravelKm)
	fmt.Printf("  assignment CPU       %s\n", metrics.CPU)

	fmt.Println("\nfirst assignments:")
	for i, pr := range set.Pairs {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(set.Pairs)-5)
			break
		}
		w := inst.Workers[pr.Worker]
		s := inst.Tasks[pr.Task]
		fmt.Printf("  task %3d at %v -> worker %3d (user %d), influence %.4f, %.1f km away\n",
			pr.Task, s.Loc, pr.Worker, w.User, set.Influence[i], set.TravelKm[i])
	}
	os.Exit(0)
}
