// Command citysim runs a multi-day spatial-crowdsourcing simulation on a
// synthetic FourSquare-like city and compares all five assignment
// algorithms day by day — the library's answer to "which strategy should
// my platform run?". It prints a per-day metric table and a final
// average summary resembling the paper's evaluation output.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"dita"
)

func main() {
	log.SetFlags(0)
	var (
		users   = flag.Int("users", 900, "users in the simulated city")
		venues  = flag.Int("venues", 1100, "venues in the simulated city")
		days    = flag.Int("days", 12, "simulated days (last evalDays are evaluated)")
		evals   = flag.Int("eval-days", 3, "evaluation days at the end of the period")
		tasks   = flag.Int("tasks", 400, "tasks per time instance")
		workers = flag.Int("workers", 320, "workers per time instance")
		valid   = flag.Float64("valid", 5, "task valid time ϕ in hours")
		radius  = flag.Float64("radius", 25, "worker reachable radius r in km")
		seed    = flag.Uint64("seed", 7, "simulation seed")
	)
	flag.Parse()

	params := dita.FoursquareLike()
	params.NumUsers = *users
	params.NumVenues = *venues
	params.Days = *days
	params.Seed = *seed

	start := time.Now() //dita:wallclock
	data, err := dita.Generate(params)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	fmt.Printf("city generated: %d users, %d venues, %d check-ins, %d friendships (%.1fs)\n",
		*users, *venues, data.NumCheckIns(), data.Graph.M()/2, time.Since(start).Seconds()) //dita:wallclock

	firstEval := *days - *evals
	if firstEval < 1 {
		log.Fatalf("need at least one training day before evaluation")
	}
	start = time.Now() //dita:wallclock
	fw, err := dita.Train(dita.TrainingDataFrom(data, float64(firstEval)*24), dita.Config{})
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	fmt.Printf("DITA framework trained on %d days of history (%.1fs)\n\n",
		firstEval, time.Since(start).Seconds()) //dita:wallclock

	algorithms := []dita.Algorithm{dita.MTA, dita.IA, dita.EIA, dita.DIA, dita.MI}
	type agg struct {
		assigned       int
		ai, ap, travel float64
		cpu            time.Duration
		instances      int
	}
	totals := map[dita.Algorithm]*agg{}
	for _, alg := range algorithms {
		totals[alg] = &agg{}
	}

	for day := firstEval; day < *days; day++ {
		inst, err := data.Snapshot(dita.SnapshotParams{
			Day: day, NumTasks: *tasks, NumWorkers: *workers,
			ValidHours: *valid, RadiusKm: *radius, Seed: *seed,
		})
		if err != nil {
			log.Fatalf("snapshot day %d: %v", day, err)
		}
		ev := fw.Prepare(inst, dita.All, uint64(day))
		pairs := dita.FeasiblePairs(inst, 5)
		fmt.Printf("day %d — %d workers, %d tasks, %d feasible pairs\n",
			day, len(inst.Workers), len(inst.Tasks), len(pairs))
		fmt.Printf("  %-5s %9s %9s %9s %11s %10s\n",
			"alg", "assigned", "AI", "AP", "travel(km)", "cpu")
		for _, alg := range algorithms {
			set, m := fw.AssignPrepared(inst, ev, alg, pairs)
			if err := set.Validate(len(inst.Tasks), len(inst.Workers)); err != nil {
				log.Fatalf("%v produced an invalid assignment: %v", alg, err)
			}
			fmt.Printf("  %-5s %9d %9.4f %9.3f %11.2f %10s\n",
				alg, m.Assigned, m.AI, m.AP, m.TravelKm, m.CPU.Round(time.Millisecond))
			a := totals[alg]
			a.assigned += m.Assigned
			a.ai += m.AI
			a.ap += m.AP
			a.travel += m.TravelKm
			a.cpu += m.CPU
			a.instances++
		}
		fmt.Println()
	}

	fmt.Println("averages over all evaluation days:")
	fmt.Printf("  %-5s %9s %9s %9s %11s %10s\n",
		"alg", "assigned", "AI", "AP", "travel(km)", "cpu")
	for _, alg := range algorithms {
		a := totals[alg]
		n := float64(a.instances)
		fmt.Printf("  %-5s %9.1f %9.4f %9.3f %11.2f %10s\n",
			alg,
			float64(a.assigned)/n, a.ai/n, a.ap/n, a.travel/n,
			(a.cpu / time.Duration(a.instances)).Round(time.Millisecond))
	}
}
