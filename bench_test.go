// Benchmarks regenerating every figure of the paper's evaluation
// (Section V). One benchmark per figure: Fig. 5–8 are the influence-
// modeling ablations (IA vs IA-WP/IA-AP/IA-AW), Fig. 9–16 the
// algorithm comparisons (MTA, IA, EIA, DIA, MI) under the four parameter
// sweeps on the BK- and FS-like datasets.
//
// Benchmarks run at "bench scale" (a ~4× reduced world) so the whole
// suite finishes in minutes; run `go run ./cmd/dita-bench` for the
// full Table II scale. Use -v to see each figure's series: every
// benchmark logs the same rows the corresponding figure plots, and
// reports the headline metric via b.ReportMetric.
package dita_test

import (
	"bytes"
	"sync"
	"testing"

	"dita/internal/core"
	"dita/internal/dataset"
	"dita/internal/experiments"
)

// Bench-scale sweeps: same five-point structure as the paper, reduced
// sizes.
var (
	benchTaskSweep   = []int{100, 200, 300, 400, 500}
	benchWorkerSweep = []int{80, 160, 240, 320, 400}
)

func benchParams() experiments.Params {
	return experiments.Params{
		NumTasks:   300,
		NumWorkers: 240,
		ValidHours: 5,
		RadiusKm:   25,
		Days:       []int{10, 11},
		Seed:       42,
	}
}

func benchDataset(name string) dataset.Params {
	var p dataset.Params
	if name == "BK" {
		p = dataset.BrightkiteLike()
		p.NumUsers = 600
		p.NumVenues = 800
	} else {
		p = dataset.FoursquareLike()
		p.NumUsers = 600
		p.NumVenues = 800
	}
	p.Days = 12
	return p
}

var (
	runnersOnce sync.Once
	runners     map[string]*experiments.Runner
	runnersErr  error
)

// getRunner trains one framework per dataset, shared across all
// benchmarks in the binary (training time is excluded from every
// measurement).
func getRunner(b *testing.B, name string) *experiments.Runner {
	b.Helper()
	runnersOnce.Do(func() {
		runners = map[string]*experiments.Runner{}
		for _, n := range []string{"BK", "FS"} {
			data, err := dataset.Generate(benchDataset(n))
			if err != nil {
				runnersErr = err
				return
			}
			r, err := experiments.NewRunner(data, core.Config{TopWillingnessLocations: 8}, benchParams())
			if err != nil {
				runnersErr = err
				return
			}
			runners[n] = r
		}
	})
	if runnersErr != nil {
		b.Fatal(runnersErr)
	}
	return runners[name]
}

// logResult writes the figure's series into the benchmark log (visible
// with -v) — the same rows the paper's figure plots.
func logResult(b *testing.B, res *experiments.Result, metrics []experiments.Metric) {
	b.Helper()
	var buf bytes.Buffer
	res.FormatAll(&buf, metrics)
	b.Log("\n" + buf.String())
}

// reportAI attaches the headline AI value (first algorithm at the
// largest sweep point) as a custom benchmark metric.
func reportAI(b *testing.B, res *experiments.Result) {
	xs := res.Xs()
	if len(xs) == 0 {
		return
	}
	algs := res.Algorithms()
	if len(algs) == 0 {
		return
	}
	if v, ok := res.Value(xs[len(xs)-1], algs[0], experiments.MetricAI); ok {
		b.ReportMetric(v, "AI")
	}
	if v, ok := res.Value(xs[len(xs)-1], algs[0], experiments.MetricAssigned); ok {
		b.ReportMetric(v, "assigned")
	}
}

func runAblationBench(b *testing.B, ds string, run func(*experiments.Runner) (*experiments.Result, error)) {
	r := getRunner(b, ds)
	b.ResetTimer()
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = run(r)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	logResult(b, res, []experiments.Metric{experiments.MetricAI})
	reportAI(b, res)
}

func runComparisonBench(b *testing.B, ds string, run func(*experiments.Runner) (*experiments.Result, error)) {
	r := getRunner(b, ds)
	b.ResetTimer()
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = run(r)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	logResult(b, res, experiments.AllMetrics)
	reportAI(b, res)
}

// Fig. 5 — effect of |S| on AI for IA, IA-WP, IA-AP, IA-AW (panels: BK, FS).

func BenchmarkFig05_AblationTasks_BK(b *testing.B) {
	runAblationBench(b, "BK", func(r *experiments.Runner) (*experiments.Result, error) {
		return r.AblationTasks(benchTaskSweep)
	})
}

func BenchmarkFig05_AblationTasks_FS(b *testing.B) {
	runAblationBench(b, "FS", func(r *experiments.Runner) (*experiments.Result, error) {
		return r.AblationTasks(benchTaskSweep)
	})
}

// Fig. 6 — effect of |W| on AI for the IA variants.

func BenchmarkFig06_AblationWorkers_BK(b *testing.B) {
	runAblationBench(b, "BK", func(r *experiments.Runner) (*experiments.Result, error) {
		return r.AblationWorkers(benchWorkerSweep)
	})
}

func BenchmarkFig06_AblationWorkers_FS(b *testing.B) {
	runAblationBench(b, "FS", func(r *experiments.Runner) (*experiments.Result, error) {
		return r.AblationWorkers(benchWorkerSweep)
	})
}

// Fig. 7 — effect of ϕ on AI for the IA variants.

func BenchmarkFig07_AblationValidTime_BK(b *testing.B) {
	runAblationBench(b, "BK", func(r *experiments.Runner) (*experiments.Result, error) {
		return r.AblationValidTime(experiments.ValidTimeSweep)
	})
}

func BenchmarkFig07_AblationValidTime_FS(b *testing.B) {
	runAblationBench(b, "FS", func(r *experiments.Runner) (*experiments.Result, error) {
		return r.AblationValidTime(experiments.ValidTimeSweep)
	})
}

// Fig. 8 — effect of r on AI for the IA variants.

func BenchmarkFig08_AblationRadius_BK(b *testing.B) {
	runAblationBench(b, "BK", func(r *experiments.Runner) (*experiments.Result, error) {
		return r.AblationRadius(experiments.RadiusSweep)
	})
}

func BenchmarkFig08_AblationRadius_FS(b *testing.B) {
	runAblationBench(b, "FS", func(r *experiments.Runner) (*experiments.Result, error) {
		return r.AblationRadius(experiments.RadiusSweep)
	})
}

// Fig. 9 / Fig. 10 — effect of |S| on all five metrics for the five
// algorithms, on BK and FS respectively.

func BenchmarkFig09_TasksBK(b *testing.B) {
	runComparisonBench(b, "BK", func(r *experiments.Runner) (*experiments.Result, error) {
		return r.CompareTasks(benchTaskSweep)
	})
}

func BenchmarkFig10_TasksFS(b *testing.B) {
	runComparisonBench(b, "FS", func(r *experiments.Runner) (*experiments.Result, error) {
		return r.CompareTasks(benchTaskSweep)
	})
}

// Fig. 11 / Fig. 12 — effect of |W|.

func BenchmarkFig11_WorkersBK(b *testing.B) {
	runComparisonBench(b, "BK", func(r *experiments.Runner) (*experiments.Result, error) {
		return r.CompareWorkers(benchWorkerSweep)
	})
}

func BenchmarkFig12_WorkersFS(b *testing.B) {
	runComparisonBench(b, "FS", func(r *experiments.Runner) (*experiments.Result, error) {
		return r.CompareWorkers(benchWorkerSweep)
	})
}

// Fig. 13 / Fig. 14 — effect of ϕ.

func BenchmarkFig13_ValidTimeBK(b *testing.B) {
	runComparisonBench(b, "BK", func(r *experiments.Runner) (*experiments.Result, error) {
		return r.CompareValidTime(experiments.ValidTimeSweep)
	})
}

func BenchmarkFig14_ValidTimeFS(b *testing.B) {
	runComparisonBench(b, "FS", func(r *experiments.Runner) (*experiments.Result, error) {
		return r.CompareValidTime(experiments.ValidTimeSweep)
	})
}

// Fig. 15 / Fig. 16 — effect of r.

func BenchmarkFig15_RadiusBK(b *testing.B) {
	runComparisonBench(b, "BK", func(r *experiments.Runner) (*experiments.Result, error) {
		return r.CompareRadius(experiments.RadiusSweep)
	})
}

func BenchmarkFig16_RadiusFS(b *testing.B) {
	runComparisonBench(b, "FS", func(r *experiments.Runner) (*experiments.Result, error) {
		return r.CompareRadius(experiments.RadiusSweep)
	})
}

// BenchmarkSweepParallelism compares one full comparison sweep run
// sequentially against the default all-cores fan-out; the rows are
// identical, only wall clock differs.
func BenchmarkSweepParallelism(b *testing.B) {
	for _, bc := range []struct {
		name string
		par  int
	}{{"p=1", 1}, {"p=auto", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			r := *getRunner(b, "BK")
			r.P.Parallelism = bc.par
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.CompareTasks(benchTaskSweep); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
